//===- examples/video_pipeline.cpp ----------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming-analytics scenario: the FFmpeg-style filter pipeline with a
/// PSNR quality target. Demonstrates two things the paper highlights:
///
/// 1. control-flow-aware modeling: the filter order (deflate->edge vs
///    edge->deflate) is an input parameter that changes the control
///    flow; OPPROX's decision-tree classifier routes each input to its
///    own model set (Sec. 3.4, Fig. 7);
/// 2. PSNR budgets: the paper's large/medium/small budgets for FFmpeg
///    are PSNR targets 10/20/30 dB; our psnrToDegradationPercent maps
///    them onto the shared budget interface.
///
/// Build and run:   ./build/examples/video_pipeline [--order 0]
///
//===----------------------------------------------------------------------===//

#include "ExampleSupport.h"
#include "apps/QoSMetrics.h"
#include <cstdio>

using namespace opprox;
using namespace opprox::examples;

int main(int Argc, char **Argv) {
  long Order = 0;
  CommonFlags Common;
  FlagParser Flags;
  Flags.addFlag("order", &Order,
                "filter order: 0 = deflate->edge, 1 = edge->deflate");
  addCommonFlags(Flags, Common);
  if (!Flags.parse(Argc, Argv))
    return 1;

  std::unique_ptr<ApproxApp> App = createAppOrExit("ffmpeg");
  std::printf("training on both filter orders...\n");
  OpproxTrainOptions TrainOpts;
  applyCommonFlags(TrainOpts, Common);
  Opprox Tuner = trainOrLoad(*App, TrainOpts, Common);

  // 30 fps, 5 s, bitrate 4, chosen filter order = 150 frames.
  std::vector<double> Input = {30, 5, 4, static_cast<double>(Order)};
  int ClassId = Tuner.model().classOf(Input);
  std::printf("control-flow class for order=%ld: %d (of %zu trained "
              "classes)\n\n",
              Order, ClassId, Tuner.model().numClasses());

  std::printf("%-16s %-10s %-12s %-10s\n", "psnr target", "speedup",
              "achieved dB", "schedule");
  for (double TargetDb : {10.0, 20.0, 30.0}) {
    double Budget = psnrToDegradationPercent(TargetDb);
    PhaseSchedule S = Tuner.optimize(Input, Budget);
    EvalOutcome Truth = evaluateSchedule(*App, Tuner.golden(), Input, S);
    std::printf("%-16.0f %-10.3f %-12.1f %s\n", TargetDb, Truth.Speedup,
                Truth.Psnr, S.toString().c_str());
  }
  std::printf("\n(the paper's Fig. 14 uses these three targets as its "
              "large/medium/small FFmpeg budgets)\n");
  return 0;
}
