//===- examples/phase_explorer.cpp ----------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interactive exploration of phase-specific sensitivity for any of the
/// five applications: applies one configuration to each phase in turn
/// and prints the ground-truth speedup / QoS / iteration count -- the raw
/// observation behind the whole paper ("in which phase you approximate
/// matters as much as how much"). The phase column uses the offline
/// convention (the iteration space cut into N contiguous near-equal
/// ranges); a second section then segments the same run online, feeding
/// the exact run's per-iteration work signature through the runtime
/// PhaseDetector (src/control) to show where behavior actually shifts.
///
/// Build and run:
/// ./build/examples/phase_explorer --app lulesh --phases 4 --level 3
///
//===----------------------------------------------------------------------===//

#include "ExampleSupport.h"
#include "approx/WorkCounter.h"
#include "control/PhaseDetector.h"
#include <cstdio>

using namespace opprox;
using namespace opprox::examples;

int main(int Argc, char **Argv) {
  std::string Name = "lulesh";
  long Phases = 4, Level = 3;
  TelemetryOptions Telemetry;
  FlagParser Flags;
  Flags.addFlag("app", &Name, "lulesh|comd|ffmpeg|bodytrack|pso");
  Flags.addFlag("phases", &Phases, "number of phases (default 4)");
  Flags.addFlag("level", &Level,
                "approximation level applied to every block (default 3)");
  addTelemetryFlags(Flags, Telemetry);
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (!initTelemetry(Telemetry))
    return 1;

  std::unique_ptr<ApproxApp> App = createAppOrExit(Name);

  const std::vector<double> Input = App->defaultInput();
  RunResult Exact = App->runExact(Input);
  std::printf("%s exact run: %zu iterations, %llu work units\n\n",
              Name.c_str(), Exact.OuterIterations,
              static_cast<unsigned long long>(Exact.WorkUnits));

  std::vector<int> Levels;
  for (int Max : App->maxLevels())
    Levels.push_back(std::min<int>(static_cast<int>(Level), Max));

  std::printf("%-10s %-10s %-14s %-12s\n", "phase", "speedup",
              App->usesPsnr() ? "psnr dB" : "qos %", "iterations");
  auto Report = [&](const char *Label, const PhaseSchedule &S) {
    RunResult R = App->run(Input, S, Exact.OuterIterations);
    double Quality = App->usesPsnr() ? App->psnrValue(Exact, R)
                                     : App->qosDegradation(Exact, R);
    std::printf("%-10s %-10.3f %-14.3f %-12zu\n", Label,
                speedupOf(Exact.WorkUnits, R.WorkUnits), Quality,
                R.OuterIterations);
  };
  for (size_t P = 0; P < static_cast<size_t>(Phases); ++P) {
    std::string Label = "phase-" + std::to_string(P + 1);
    Report(Label.c_str(),
           PhaseSchedule::singlePhase(static_cast<size_t>(Phases), P,
                                      Levels));
  }
  Report("all", PhaseSchedule::uniform(static_cast<size_t>(Phases), Levels));

  // Online detection: run a staircase schedule (each phase at a
  // different level, so each phase does observably different work),
  // chunk the run's per-iteration work signature into short intervals,
  // and let the detector place the boundaries instead of assuming N
  // contiguous near-equal ranges.
  PhaseSchedule Staircase(static_cast<size_t>(Phases), Levels.size());
  for (size_t P = 0; P < static_cast<size_t>(Phases); ++P) {
    std::vector<int> Step;
    for (int Max : App->maxLevels())
      Step.push_back(std::min<int>(
          static_cast<int>(P * static_cast<size_t>(Level + 1) /
                           std::max<size_t>(1, Phases - 1)),
          Max));
    Staircase.setPhaseLevels(P, Step);
  }
  RunResult Stepped = App->run(Input, Staircase, Exact.OuterIterations);
  control::PhaseDetector Detector;
  const size_t Chunk = std::max<size_t>(1, Stepped.OuterIterations / 32);
  for (size_t I = 0; I < Stepped.WorkPerIteration.size(); I += Chunk) {
    control::IntervalSample S;
    size_t End = std::min(I + Chunk, Stepped.WorkPerIteration.size());
    for (size_t J = I; J < End; ++J)
      S.WorkUnits += Stepped.WorkPerIteration[J];
    S.Iterations = End - I;
    Detector.observe(S);
  }
  std::printf("\ndetected phases (work-signature segmentation): %zu\n",
              Detector.numDetectedPhases());
  std::printf("  boundaries at iteration:");
  for (size_t Start : Detector.phaseStarts())
    std::printf(" %zu", Start);
  std::printf("\n  static convention would cut at:");
  for (size_t P = 0; P < static_cast<size_t>(Phases); ++P)
    std::printf(" %zu", P * Exact.OuterIterations /
                            static_cast<size_t>(Phases));
  std::printf("\n");
  return 0;
}
