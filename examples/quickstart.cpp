//===- examples/quickstart.cpp --------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Quickstart: the complete OPPROX loop in ~40 lines.
///
/// 1. Pick an application with tunable approximable blocks (here the
///    PSO benchmark, the cheapest of the five).
/// 2. Train OPPROX offline: it profiles the app across inputs, levels,
///    and phases, then learns per-phase speedup/QoS models.
/// 3. Ask for the most profitable phase-aware schedule under a QoS
///    degradation budget.
/// 4. Run the application under that schedule and verify ground truth.
///
/// Build and run:   ./build/examples/quickstart [--budget 10] [--threads 0]
///
//===----------------------------------------------------------------------===//

#include "ExampleSupport.h"
#include <cstdio>

using namespace opprox;
using namespace opprox::examples;

int main(int Argc, char **Argv) {
  double Budget = 10.0; // Percent QoS degradation the user tolerates.
  CommonFlags Common;
  FlagParser Flags;
  Flags.addFlag("budget", &Budget, "QoS degradation budget in percent");
  addCommonFlags(Flags, Common);
  if (!Flags.parse(Argc, Argv))
    return 1;

  // 1. The application: particle swarm optimization with three
  //    approximable blocks (fitness eval, velocity update, position
  //    update).
  std::unique_ptr<ApproxApp> App = createAppOrExit("pso");
  std::printf("application: %s with %zu approximable blocks\n",
              App->name().c_str(), App->numBlocks());
  for (const ApproximableBlock &AB : App->blocks())
    std::printf("  - %-18s (%s, levels 0..%d)\n", AB.Name.c_str(),
                techniqueName(AB.Technique), AB.MaxLevel);

  // 2. Offline training (Fig. 6 of the paper): profiling plus model
  //    construction. Defaults: 4 phases, the app's own representative
  //    inputs. Training fans out across executors, and the progress
  //    observer reports the sweep as it runs; results are identical for
  //    any thread count.
  OpproxTrainOptions TrainOpts;
  applyCommonFlags(TrainOpts, Common);
  TrainOpts.Profiling.Observer = stdoutObserver();
  std::printf("\ntraining...\n");
  Opprox Tuner = trainOrLoad(*App, TrainOpts, Common);
  std::printf("trained on %zu runs across %zu phases\n",
              Tuner.trainingRuns(), Tuner.numPhases());

  // 3. Optimize for the budget. optimizeValidated() adds a bounded
  //    ground-truth backoff so cross-phase interactions the per-phase
  //    models cannot see never bust the budget.
  const std::vector<double> Input = App->defaultInput();
  OptimizationResult Result = Tuner.optimizeDetailed(Input, Budget);
  std::printf("\nbudget %.1f%% -> model-chosen schedule %s\n", Budget,
              Result.Schedule.toString().c_str());
  for (size_t P = 0; P < Result.Decisions.size(); ++P)
    std::printf("  phase %zu: roi share %.3f, predicted speedup %.2f, "
                "predicted qos %.2f%%\n",
                P + 1, Result.NormalizedRoi[P],
                Result.Decisions[P].PredictedSpeedup,
                Result.Decisions[P].PredictedQos);
  PhaseSchedule Validated = Tuner.optimizeValidated(Input, Budget);
  std::printf("validated schedule: %s\n", Validated.toString().c_str());

  // 4. Ground truth.
  EvalOutcome Truth =
      evaluateSchedule(*App, Tuner.golden(), Input, Validated);
  std::printf("\nmeasured: speedup %.2fx, QoS degradation %.2f%% "
              "(budget %.1f%%)\n",
              Truth.Speedup, Truth.QosDegradation, Budget);
  return 0;
}
