//===- examples/ExampleSupport.h - Shared example scaffolding --*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The boilerplate every example shares, so each .cpp stays focused on
/// the concept it demonstrates: common flags (--threads, --artifact),
/// application lookup with a friendly error, a progress observer, and
/// train-or-load-from-artifact plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_EXAMPLES_EXAMPLESUPPORT_H
#define OPPROX_EXAMPLES_EXAMPLESUPPORT_H

#include "apps/AppRegistry.h"
#include "core/Opprox.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>

namespace opprox {
namespace examples {

/// Flags every example accepts alongside its own.
struct CommonFlags {
  /// Training parallelism: 0 = auto (OPPROX_THREADS, else hardware),
  /// 1 = serial. Results are identical for any value.
  long Threads = 0;
  /// When set, the trained model is cached here as a versioned artifact
  /// and reloaded on the next run instead of retraining.
  std::string Artifact;
  /// Trace/metrics/log-level surface shared with the CLIs and benches.
  TelemetryOptions Telemetry;
};

inline void addCommonFlags(FlagParser &Flags, CommonFlags &Common) {
  Flags.addFlag("threads", &Common.Threads,
                "training parallelism (0 = auto, 1 = serial)");
  Flags.addFlag("artifact", &Common.Artifact,
                "artifact cache path: load the model from here if "
                "present, else train and save");
  addTelemetryFlags(Flags, Common.Telemetry);
}

/// createApp() with a friendly diagnostic-and-exit on unknown names.
inline std::unique_ptr<ApproxApp> createAppOrExit(const std::string &Name) {
  std::unique_ptr<ApproxApp> App = createApp(Name);
  if (!App) {
    std::fprintf(stderr, "error: unknown application '%s' (known: %s)\n",
                 Name.c_str(), join(allAppNames(), ", ").c_str());
    std::exit(1);
  }
  return App;
}

/// A progress observer printing a line every ~50 profiling runs.
inline ProfileObserver stdoutObserver() {
  return [](const ProfileProgress &P) {
    if (P.RunsCompleted % 50 == 0 || P.RunsCompleted == P.TotalRuns)
      std::printf("  profiled %zu/%zu runs (%zu cache hits, %.2fs)\n",
                  P.RunsCompleted, P.TotalRuns, P.GoldenCacheHits,
                  P.ElapsedSeconds);
  };
}

/// Applies the common flags to training options and initializes the
/// telemetry surface (exports are written at process exit). Exits on a
/// malformed --log-level, matching the flag parser's failure mode.
inline void applyCommonFlags(OpproxTrainOptions &Opts, CommonFlags &Common) {
  if (!initTelemetry(Common.Telemetry))
    std::exit(1);
  size_t Threads = static_cast<size_t>(std::max(0l, Common.Threads));
  Opts.Profiling.NumThreads = Threads;
  Opts.ModelBuild.NumThreads = Threads;
}

/// Trains, or reuses the artifact cache when --artifact was given.
/// Exits with a diagnostic when the cache path cannot be written.
inline Opprox trainOrLoad(const ApproxApp &App, const OpproxTrainOptions &Opts,
                          const CommonFlags &Common) {
  if (Common.Artifact.empty())
    return Opprox::train(App, Opts);
  Expected<Opprox> Tuner = Opprox::trainCached(App, Opts, Common.Artifact);
  if (!Tuner) {
    std::fprintf(stderr, "error: %s\n", Tuner.error().message().c_str());
    std::exit(1);
  }
  if (Tuner->trainingData().empty())
    std::printf("loaded cached artifact %s (trained by %s)\n",
                Common.Artifact.c_str(),
                Tuner->artifact().Provenance.LibraryVersion.c_str());
  else
    std::printf("artifact cached to %s\n", Common.Artifact.c_str());
  return std::move(*Tuner);
}

} // namespace examples
} // namespace opprox

#endif // OPPROX_EXAMPLES_EXAMPLESUPPORT_H
