//===- examples/lulesh_autotune.cpp ---------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Sec. 2): phase-aware autotuning of the
/// LULESH shock-hydrodynamics miniapp. Reproduces the Sec. 2 narrative:
///
/// - profile LULESH, build per-phase models;
/// - show the ROI-proportional budget shares (the paper reports
///   0.166/0.17/0.265/0.399 -- later phases earn more budget);
/// - sweep error budgets 20%/10%/5% and report the achieved speedups
///   (the paper: 1.28 / 1.21 / 1.17).
///
/// Build and run:   ./build/examples/lulesh_autotune [--mesh 30 --regions 11]
///
//===----------------------------------------------------------------------===//

#include "ExampleSupport.h"
#include <cstdio>

using namespace opprox;
using namespace opprox::examples;

int main(int Argc, char **Argv) {
  long Mesh = 30, Regions = 11;
  CommonFlags Common;
  FlagParser Flags;
  Flags.addFlag("mesh", &Mesh, "length of cube mesh (default 30)");
  Flags.addFlag("regions", &Regions, "number of material regions");
  addCommonFlags(Flags, Common);
  if (!Flags.parse(Argc, Argv))
    return 1;

  std::unique_ptr<ApproxApp> App = createAppOrExit("lulesh");
  std::vector<double> Input = {static_cast<double>(Mesh),
                               static_cast<double>(Regions)};

  std::printf("profiling LULESH (this runs the hydro a few hundred "
              "times)...\n");
  OpproxTrainOptions TrainOpts;
  applyCommonFlags(TrainOpts, Common);
  Opprox Tuner = trainOrLoad(*App, TrainOpts, Common);
  const RunResult &Exact = Tuner.golden().exactRun(Input);
  std::printf("exact run: %zu outer-loop iterations (paper: 921)\n\n",
              Exact.OuterIterations);

  // ROI shares, the paper's budget-allocation story.
  OptimizationResult Probe = Tuner.optimizeDetailed(Input, 20.0);
  std::printf("ROI-proportional budget shares (paper: 0.166 / 0.17 / "
              "0.265 / 0.399):\n  ");
  for (double Share : Probe.NormalizedRoi)
    std::printf("%.3f  ", Share);
  std::printf("\n\n");

  std::printf("%-8s %-28s %-10s %-10s %-12s\n", "budget", "schedule",
              "speedup", "qos %", "iterations");
  for (double Budget : {20.0, 10.0, 5.0}) {
    PhaseSchedule S = Tuner.optimize(Input, Budget);
    EvalOutcome Truth = evaluateSchedule(*App, Tuner.golden(), Input, S);
    std::printf("%-8.0f %-28s %-10.3f %-10.2f %-12zu\n", Budget,
                S.toString().c_str(), Truth.Speedup, Truth.QosDegradation,
                Truth.OuterIterations);
  }
  std::printf("\npaper reference speedups: 1.28 (20%%), 1.21 (10%%), "
              "1.17 (5%%)\n");
  return 0;
}
