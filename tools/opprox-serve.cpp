//===- tools/opprox-serve.cpp - Network serving tier CLI ------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Serves optimize requests over TCP: the resident-daemon deployment of
// the online half of the pipeline, for hosts that call into OPPROX from
// another process or another machine instead of forking opprox-optimize
// per request. Protocol and operations: docs/SERVING.md.
//
//   opprox-serve --artifact lulesh.opprox.json --port 7657
//   opprox-serve --artifact pso=pso.json,lulesh=lulesh.json
//
// Signals: SIGHUP hot-swaps every artifact from disk (atomically, no
// in-flight request lost); SIGINT/SIGTERM drain and exit.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/CommandLine.h"
#include "support/Signals.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include <csignal>
#include <cstdio>

using namespace opprox;
using namespace opprox::serve;

namespace {

/// Parses one --artifact entry of the form "path" or "name=path".
ServeAppConfig parseAppEntry(const std::string &Entry) {
  ServeAppConfig App;
  size_t Eq = Entry.find('=');
  if (Eq == std::string::npos) {
    App.Path = trim(Entry);
  } else {
    App.Name = trim(Entry.substr(0, Eq));
    App.Path = trim(Entry.substr(Eq + 1));
  }
  return App;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string ArtifactList;
  std::string Bind = "127.0.0.1";
  long Port = 0;
  long Shards = 0;
  long QueueCapacity = 64;
  long MaxConnections = 128;
  long ReadTimeoutMs = 30000;
  long MaxRequestBytes = 1 << 20;
  long LoadRetries = 3;
  double RetryBackoffMs = 10.0;
  bool NoLastGood = false;
  long CacheShards = -1;
  long CacheCapacity = -1;
  bool NoCache = false;
  long ScanThreads = -1;
  long SlowWindow = 256;
  long SlowTop = 3;
  long SlowSeed = 42;
  bool OnlineControl = false;
  TelemetryOptions Telemetry;

  FlagParser Flags;
  Flags.addFlag("artifact", &ArtifactList,
                "Comma-separated artifacts to serve, each 'path' or "
                "'name=path' (default name: the artifact's app name)");
  Flags.addFlag("bind", &Bind, "Listen address (default: loopback only)");
  Flags.addFlag("port", &Port, "TCP port; 0 picks an ephemeral port");
  Flags.addFlag("shards", &Shards,
                "Worker shards; 0 = auto (OPPROX_THREADS, else hardware "
                "threads)");
  Flags.addFlag("queue-capacity", &QueueCapacity,
                "Pipelined requests a shard serves per cycle before "
                "shedding the excess");
  Flags.addFlag("max-connections", &MaxConnections,
                "Connections per shard before new ones are shed");
  Flags.addFlag("read-timeout-ms", &ReadTimeoutMs,
                "Close connections idle longer than this");
  Flags.addFlag("max-request-bytes", &MaxRequestBytes,
                "Hard cap on one request line; larger requests are "
                "answered 'oversized' and the connection closed");
  Flags.addFlag("load-retries", &LoadRetries,
                "Artifact load attempts per (re)load before giving up");
  Flags.addFlag("retry-backoff-ms", &RetryBackoffMs,
                "Initial sleep between load attempts (doubles each retry)");
  Flags.addFlag("no-last-good", &NoLastGood,
                "Do not fall back to the last successfully loaded artifact");
  Flags.addFlag("cache-shards", &CacheShards,
                "Schedule-cache lock shards per artifact (default 8, or "
                "OPPROX_CACHE_SHARDS)");
  Flags.addFlag("cache-capacity", &CacheCapacity,
                "Schedule-cache entries per artifact; 0 caches nothing "
                "(default 4096, or OPPROX_CACHE_CAPACITY)");
  Flags.addFlag("no-cache", &NoCache,
                "Disable the schedule cache entirely (every request runs "
                "the full optimizer)");
  Flags.addFlag("scan-threads", &ScanThreads,
                "Executors for each cache-miss solve's chunked scan: 1 = "
                "serial, 0 = auto (default 1, or OPPROX_SCAN_THREADS); the "
                "shards share one scan pool");
  Flags.addFlag("slow-window", &SlowWindow,
                "Requests per shard between slow-request log flushes; "
                "0 disables the sampler");
  Flags.addFlag("slow-top", &SlowTop,
                "Slowest requests logged per window, with their stage "
                "breakdown");
  Flags.addFlag("online-control", &OnlineControl,
                "Accept the per-request 'feedback' member: observed phase "
                "QoS replayed through an online controller, answering with "
                "the corrected remaining-phase schedule");
  Flags.addFlag("slow-seed", &SlowSeed,
                "Seed of the deterministic per-window spotlight sample");
  addTelemetryFlags(Flags, Telemetry);
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (!initTelemetry(Telemetry))
    return 1;

  std::vector<ServeAppConfig> Apps;
  for (const std::string &Entry : split(ArtifactList, ','))
    if (!trim(Entry).empty())
      Apps.push_back(parseAppEntry(Entry));
  for (const std::string &Entry : Flags.positional())
    Apps.push_back(parseAppEntry(Entry));
  if (Apps.empty()) {
    std::fprintf(stderr, "error: --artifact is required\n");
    Flags.printUsage(Argv[0]);
    return 1;
  }
  if (Port < 0 || Port > 65535) {
    std::fprintf(stderr, "error: --port must be in [0, 65535]\n");
    return 1;
  }
  if (LoadRetries < 1) {
    std::fprintf(stderr, "error: --load-retries must be at least 1\n");
    return 1;
  }
  if (QueueCapacity < 1 || MaxConnections < 1 || MaxRequestBytes < 2 ||
      ReadTimeoutMs < 1) {
    std::fprintf(stderr, "error: capacities and timeouts must be positive\n");
    return 1;
  }

  ServeOptions Opts;
  Opts.BindAddress = Bind;
  Opts.Port = static_cast<uint16_t>(Port);
  Opts.Shards = static_cast<size_t>(Shards);
  Opts.QueueCapacity = static_cast<size_t>(QueueCapacity);
  Opts.MaxConnectionsPerShard = static_cast<size_t>(MaxConnections);
  Opts.ReadTimeoutMs = ReadTimeoutMs;
  Opts.MaxRequestBytes = static_cast<size_t>(MaxRequestBytes);
  Opts.Load.Retry.MaxAttempts = static_cast<size_t>(LoadRetries);
  Opts.Load.Retry.InitialBackoffMs = RetryBackoffMs;
  Opts.Load.UseLastGood = !NoLastGood;
  // Opts.Planner already carries the OPPROX_CACHE_* environment
  // overrides; explicit flags beat the environment.
  if (CacheShards >= 0)
    Opts.Planner.Cache.Shards = static_cast<size_t>(CacheShards);
  if (CacheCapacity >= 0)
    Opts.Planner.Cache.Capacity = static_cast<size_t>(CacheCapacity);
  if (NoCache)
    Opts.Planner.UseCache = false;
  if (ScanThreads >= 0)
    Opts.Planner.ScanThreads = static_cast<size_t>(ScanThreads);
  if (SlowWindow < 0 || SlowTop < 0) {
    std::fprintf(stderr, "error: --slow-window/--slow-top must be >= 0\n");
    return 1;
  }
  Opts.SlowRequestWindow = static_cast<size_t>(SlowWindow);
  Opts.SlowRequestTopN = static_cast<size_t>(SlowTop);
  Opts.SlowRequestSeed = static_cast<uint64_t>(SlowSeed);
  Opts.OnlineControl = OnlineControl;

  // Install the signal plumbing before the server threads exist so every
  // thread inherits the disposition and signals land on the self-pipe.
  SignalWaiter Signals({SIGHUP, SIGINT, SIGTERM});

  Expected<std::unique_ptr<Server>> Srv =
      Server::start(std::move(Apps), Opts);
  if (!Srv) {
    std::fprintf(stderr, "error: %s\n", Srv.error().message().c_str());
    return 1;
  }

  // Readiness line, parsed by the load generator and CI: once this is
  // on stdout the port accepts connections.
  std::printf("opprox-serve: listening on %s:%u (apps: %s)\n", Bind.c_str(),
              static_cast<unsigned>((*Srv)->port()),
              join((*Srv)->appNames(), ", ").c_str());
  std::fflush(stdout);

  for (;;) {
    int Signo = Signals.wait(/*TimeoutMs=*/-1);
    if (Signo == SIGHUP) {
      (*Srv)->hotSwap();
      continue;
    }
    if (Signo == SIGINT || Signo == SIGTERM)
      break;
  }
  (*Srv)->shutdown();
  // Export on the drain path explicitly, not just via the atexit hook: a
  // daemon's telemetry must survive every orderly kill, and the explicit
  // call also captures it should a later teardown step crash the
  // process. Writing twice is idempotent.
  (void)exportTelemetry(Telemetry);
  return 0;
}
