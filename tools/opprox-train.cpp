//===- tools/opprox-train.cpp - Offline training CLI ----------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The offline half of the pipeline as a command-line tool: trains the
// named miniapp and writes a versioned model artifact that
// opprox-optimize (or any OpproxRuntime host) serves schedules from.
//
//   opprox-train --app lulesh --out lulesh.opprox.json
//   opprox-train --app pso --phases 0 --samples 48 --threads 8
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/OfflineTrainer.h"
#include "support/CommandLine.h"
#include "support/Log.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/Version.h"
#include <cstdio>

using namespace opprox;

int main(int Argc, char **Argv) {
  std::string AppName;
  std::string OutPath;
  long NumPhases = 4;
  long JointSamples = 32;
  long Threads = 0;
  long ProfileSeed = -1;
  long SaveRetries = 3;
  bool BudgetGridEnabled = false;
  std::string BudgetGridText;
  bool Quiet = false;
  TelemetryOptions Telemetry;

  FlagParser Flags;
  Flags.addFlag("app", &AppName,
                "Application to train (" + join(allAppNames(), ", ") + ")");
  Flags.addFlag("out", &OutPath,
                "Artifact output path (default <app>.opprox.json)");
  Flags.addFlag("phases", &NumPhases,
                "Phase count; 0 detects it via Algorithm 1");
  Flags.addFlag("samples", &JointSamples,
                "Random joint samples per training input");
  Flags.addFlag("threads", &Threads,
                "Worker threads; 0 = auto (OPPROX_THREADS, else hardware)");
  Flags.addFlag("seed", &ProfileSeed,
                "Profiling seed override; -1 keeps the default");
  Flags.addFlag("save-retries", &SaveRetries,
                "Total artifact save attempts before giving up (a failed "
                "save forfeits the whole training run)");
  Flags.addFlag("budget-grid", &BudgetGridEnabled,
                "Precompute the per-class budget-grid sweep into the "
                "artifact (schema 1.2) so common budgets resolve by lookup");
  Flags.addFlag("budget-grid-points", &BudgetGridText,
                "Comma-separated budget points for --budget-grid "
                "(default: 1,2,5,10,15,20,25,50)");
  Flags.addFlag("quiet", &Quiet, "Suppress progress output");
  addTelemetryFlags(Flags, Telemetry);
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (Quiet && Telemetry.LogLevelText.empty())
    Telemetry.LogLevelText = "quiet";
  if (!initTelemetry(Telemetry))
    return 1;

  if (AppName.empty() && !Flags.positional().empty())
    AppName = Flags.positional().front();
  if (AppName.empty()) {
    std::fprintf(stderr, "error: --app is required\n");
    Flags.printUsage(Argv[0]);
    return 1;
  }
  std::unique_ptr<ApproxApp> App = createApp(AppName);
  if (!App) {
    std::fprintf(stderr, "error: unknown application '%s' (known: %s)\n",
                 AppName.c_str(), join(allAppNames(), ", ").c_str());
    return 1;
  }
  if (OutPath.empty())
    OutPath = AppName + ".opprox.json";

  OpproxTrainOptions Opts;
  Opts.NumPhases = static_cast<size_t>(NumPhases < 0 ? 0 : NumPhases);
  Opts.Profiling.RandomJointSamples = static_cast<size_t>(
      JointSamples < 1 ? 1 : JointSamples);
  Opts.Profiling.NumThreads = static_cast<size_t>(Threads < 0 ? 0 : Threads);
  Opts.ModelBuild.NumThreads = Opts.Profiling.NumThreads;
  if (ProfileSeed >= 0)
    Opts.Profiling.Seed = static_cast<uint64_t>(ProfileSeed);
  Opts.BudgetGrid.Enabled = BudgetGridEnabled || !BudgetGridText.empty();
  if (!BudgetGridText.empty()) {
    Opts.BudgetGrid.Budgets.clear();
    for (const std::string &Field : split(BudgetGridText, ',')) {
      double Value = 0.0;
      if (!parseDouble(trim(Field), Value) || Value < 0.0) {
        std::fprintf(stderr, "error: bad budget-grid point '%s'\n",
                     Field.c_str());
        return 1;
      }
      Opts.BudgetGrid.Budgets.push_back(Value);
    }
  }
  if (currentLogLevel() >= LogLevel::Info) {
    Opts.Profiling.Observer = [](const ProfileProgress &P) {
      if (P.RunsCompleted % 50 != 0 && P.RunsCompleted != P.TotalRuns)
        return;
      logInfo("  profiling %zu/%zu runs, %zu golden hits (%.1fs)",
              P.RunsCompleted, P.TotalRuns, P.GoldenCacheHits,
              P.ElapsedSeconds);
    };
  }

  logInfo("training '%s' with %s...", AppName.c_str(),
          opproxVersion().c_str());
  OfflineTrainer::Result R = OfflineTrainer::train(*App, Opts);
  RetryPolicy SavePolicy;
  SavePolicy.MaxAttempts = static_cast<size_t>(SaveRetries < 1 ? 1 : SaveRetries);
  SavePolicy.InitialBackoffMs = 10.0;
  if (std::optional<Error> E = R.Artifact.save(OutPath, SavePolicy)) {
    std::fprintf(stderr, "error: %s\n", E->message().c_str());
    return 1;
  }

  const OpproxArtifact &A = R.Artifact;
  std::printf("trained %s: %zu phases, %zu classes, %zu blocks, "
              "%zu training runs\n",
              A.AppName.c_str(), A.numPhases(), A.Model.numClasses(),
              A.numBlocks(), A.Provenance.TrainingRuns);
  if (!A.BudgetGrids.empty()) {
    size_t Points = 0;
    for (const BudgetGrid &Grid : A.BudgetGrids)
      Points += Grid.Points.size();
    std::printf("budget grid: %zu precomputed points across %zu classes\n",
                Points, A.BudgetGrids.size());
  }
  std::printf("artifact written to %s (schema %ld.%ld, %zu bytes)\n",
              OutPath.c_str(), OpproxArtifact::SchemaMajor,
              OpproxArtifact::SchemaMinor, A.serialize().size());
  return 0;
}
