//===- tools/opprox-optimize.cpp - Online optimization CLI ----------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The online half of the pipeline as a command-line tool: loads a model
// artifact produced by opprox-train and emits the phase schedule for a
// QoS budget -- no profiling, no application runs, just the model stack
// and Algorithm 2. Typically invoked many times per artifact.
//
//   opprox-optimize --artifact lulesh.opprox.json --budget 10
//   opprox-optimize --artifact lulesh.opprox.json --input 30,5 --json
//
//===----------------------------------------------------------------------===//

#include "control/OnlineController.h"
#include "core/OpproxRuntime.h"
#include "serve/WireProtocol.h"
#include "support/CommandLine.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include <cstdio>

using namespace opprox;

int main(int Argc, char **Argv) {
  std::string ArtifactPath;
  std::string InputText;
  double Budget = 10.0;
  double Confidence = 0.99;
  bool Aggressive = false;
  bool JsonOutput = false;
  long LoadRetries = 3;
  double RetryBackoffMs = 10.0;
  bool NoLastGood = false;
  long CacheShards = -1;
  long CacheCapacity = -1;
  bool NoCache = false;
  bool OnlineControl = false;
  std::string FeedbackText;
  TelemetryOptions Telemetry;

  FlagParser Flags;
  Flags.addFlag("artifact", &ArtifactPath,
                "Model artifact produced by opprox-train");
  Flags.addFlag("budget", &Budget, "QoS degradation budget in percent");
  Flags.addFlag("input", &InputText,
                "Comma-separated input values (default: the artifact's "
                "recorded production input)");
  Flags.addFlag("confidence", &Confidence,
                "Confidence level of conservative predictions");
  Flags.addFlag("aggressive", &Aggressive,
                "Use point predictions instead of conservative bounds");
  Flags.addFlag("json", &JsonOutput, "Emit the result as JSON on stdout");
  Flags.addFlag("load-retries", &LoadRetries,
                "Total artifact load attempts before giving up");
  Flags.addFlag("retry-backoff-ms", &RetryBackoffMs,
                "Initial sleep between load attempts (doubles each retry)");
  Flags.addFlag("no-last-good", &NoLastGood,
                "Do not fall back to the last successfully loaded artifact");
  Flags.addFlag("cache-shards", &CacheShards,
                "Schedule-cache lock shards (default 8, or "
                "OPPROX_CACHE_SHARDS)");
  Flags.addFlag("cache-capacity", &CacheCapacity,
                "Schedule-cache entries; 0 caches nothing (default 4096, "
                "or OPPROX_CACHE_CAPACITY)");
  Flags.addFlag("no-cache", &NoCache,
                "Disable the schedule cache (and precomputed budget-grid "
                "lookups keep working; the cache only memoizes)");
  Flags.addFlag("online-control", &OnlineControl,
                "Run the schedule through the online controller (required "
                "by --feedback)");
  Flags.addFlag("feedback", &FeedbackText,
                "Comma-separated observed per-phase QoS degradations, in "
                "phase order; replayed through the online controller to "
                "correct the remaining phases");
  addTelemetryFlags(Flags, Telemetry);
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (!initTelemetry(Telemetry))
    return 1;

  if (ArtifactPath.empty() && !Flags.positional().empty())
    ArtifactPath = Flags.positional().front();
  if (ArtifactPath.empty()) {
    std::fprintf(stderr, "error: --artifact is required\n");
    Flags.printUsage(Argv[0]);
    return 1;
  }

  if (LoadRetries < 1) {
    std::fprintf(stderr, "error: --load-retries must be at least 1\n");
    return 1;
  }
  ArtifactLoadOptions LoadOpts;
  LoadOpts.Retry.MaxAttempts = static_cast<size_t>(LoadRetries);
  LoadOpts.Retry.InitialBackoffMs = RetryBackoffMs;
  LoadOpts.UseLastGood = !NoLastGood;
  Expected<OpproxRuntime> Runtime =
      OpproxRuntime::loadArtifact(ArtifactPath, LoadOpts);
  if (!Runtime) {
    std::fprintf(stderr, "error: %s\n", Runtime.error().message().c_str());
    return 1;
  }
  PlannerOptions Planner = plannerOptionsFromEnv();
  if (CacheShards >= 0)
    Planner.Cache.Shards = static_cast<size_t>(CacheShards);
  if (CacheCapacity >= 0)
    Planner.Cache.Capacity = static_cast<size_t>(CacheCapacity);
  if (NoCache)
    Planner.UseCache = false;
  Runtime->configurePlanner(Planner);
  const OpproxArtifact &Art = Runtime->artifact();

  std::vector<double> Input = Art.DefaultInput;
  if (!InputText.empty()) {
    Input.clear();
    for (const std::string &Field : split(InputText, ',')) {
      double Value = 0.0;
      if (!parseDouble(trim(Field), Value)) {
        std::fprintf(stderr, "error: bad input value '%s'\n", Field.c_str());
        return 1;
      }
      Input.push_back(Value);
    }
  }
  if (Input.size() != Art.ParameterNames.size()) {
    std::fprintf(stderr,
                 "error: application '%s' expects %zu input values (%s), "
                 "got %zu\n",
                 Art.AppName.c_str(), Art.ParameterNames.size(),
                 join(Art.ParameterNames, ", ").c_str(), Input.size());
    return 1;
  }

  OptimizeOptions Opts;
  Opts.ConfidenceP = Confidence;
  Opts.Conservative = !Aggressive;

  if (!FeedbackText.empty() && !OnlineControl) {
    std::fprintf(stderr, "error: --feedback requires --online-control\n");
    return 1;
  }
  if (OnlineControl) {
    std::vector<double> Feedback;
    for (const std::string &Field : split(FeedbackText, ',')) {
      if (trim(Field).empty())
        continue;
      double Value = 0.0;
      if (!parseDouble(trim(Field), Value)) {
        std::fprintf(stderr, "error: bad feedback value '%s'\n",
                     Field.c_str());
        return 1;
      }
      Feedback.push_back(Value);
    }
    if (Feedback.size() > Art.numPhases()) {
      std::fprintf(stderr,
                   "error: --feedback has %zu entries but the artifact has "
                   "%zu phases\n",
                   Feedback.size(), Art.numPhases());
      return 1;
    }
    control::ControllerOptions CtrlOpts;
    CtrlOpts.Optimize = Opts;
    Expected<control::OnlineController> Ctrl =
        control::OnlineController::start(*Runtime, Input, Budget, CtrlOpts);
    if (!Ctrl) {
      std::fprintf(stderr, "error: %s\n", Ctrl.error().message().c_str());
      return 1;
    }
    for (size_t P = 0; P < Feedback.size(); ++P) {
      control::PhaseObservation Obs;
      Obs.Phase = P;
      Obs.ObservedQos = Feedback[P];
      Ctrl->onPhaseComplete(Obs);
    }
    const control::ControllerStats &Stats = Ctrl->stats();
    if (JsonOutput) {
      Json Out = serve::optimizationResultJson(Art, Budget, Input,
                                               Ctrl->plan());
      Json Control = Json::object();
      Control.set("next_phase", Ctrl->nextPhase());
      Control.set("spent_qos", Ctrl->spentQos());
      Control.set("remaining_budget", Ctrl->remainingBudget());
      Control.set("distrust_ratio", Ctrl->distrustRatio());
      Control.set("distrusts", Stats.Distrusts);
      Control.set("resolves", Stats.Resolves);
      Control.set("corrections", Stats.Corrections);
      Control.set("rejected_resolves", Stats.RejectedResolves);
      Out.set("control", std::move(Control));
      std::printf("%s\n", Out.dump(2).c_str());
      return 0;
    }
    std::printf("%s (online control, %zu/%zu phases observed)\n",
                Art.AppName.c_str(), Ctrl->nextPhase(), Art.numPhases());
    std::printf("budget: %.3g%% degradation (spent %.3g%%, remaining "
                "%.3g%%)\n",
                Budget, Ctrl->spentQos(), Ctrl->remainingBudget());
    std::printf("schedule: %s\n", Ctrl->schedule().toString().c_str());
    std::printf("control: %zu distrusts, %zu re-solves, %zu corrections, "
                "%zu rejected, distrust ratio %.3g\n",
                Stats.Distrusts, Stats.Resolves, Stats.Corrections,
                Stats.RejectedResolves, Ctrl->distrustRatio());
    return 0;
  }

  Expected<OptimizationResult> Optimized =
      Runtime->tryOptimizeDetailed(Input, Budget, Opts);
  if (!Optimized) {
    std::fprintf(stderr, "error: %s\n", Optimized.error().message().c_str());
    return 1;
  }
  OptimizationResult &Result = *Optimized;
  size_t DegradedPhases = Result.DegradedPhases.size();

  if (JsonOutput) {
    // The same document opprox-serve returns in its "result" member;
    // sharing the builder is what keeps the two byte-identical.
    Json Out = serve::optimizationResultJson(Art, Budget, Input, Result);
    std::printf("%s\n", Out.dump(2).c_str());
    return 0;
  }

  std::printf("%s (trained by %s, %zu training runs)\n", Art.AppName.c_str(),
              Art.Provenance.LibraryVersion.c_str(),
              Art.Provenance.TrainingRuns);
  std::printf("input: ");
  for (size_t I = 0; I < Input.size(); ++I)
    std::printf("%s%s=%g", I ? ", " : "", Art.ParameterNames[I].c_str(),
                Input[I]);
  std::printf("\nbudget: %.3g%% degradation\n", Budget);
  std::printf("schedule: %s\n", Result.Schedule.toString().c_str());
  for (size_t P = 0; P < Result.Decisions.size(); ++P) {
    const PhaseDecision &D = Result.Decisions[P];
    std::printf("  phase %zu: allocated budget %.3g%%, predicted speedup "
                "%.3fx, predicted qos %.3g%%\n",
                P, D.AllocatedBudget, D.PredictedSpeedup, D.PredictedQos);
  }
  std::printf("configurations evaluated: %zu\n", Result.ConfigsEvaluated);
  if (DegradedPhases > 0)
    std::printf("degraded phases: %zu (served exact configurations; see "
                "stderr log for causes)\n",
                DegradedPhases);
  return 0;
}
