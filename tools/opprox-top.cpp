//===- tools/opprox-top.cpp - Live terminal monitor for opprox-serve ------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// A curses-free `top` for the serving tier: polls a running opprox-serve
// over its wire probe family ({"health": true} + {"stats": "delta"},
// docs/OBSERVABILITY.md "Live probes") and renders live request rate,
// latency percentiles, per-stage attribution, cache hit ratio, and
// health -- all from *windowed* deltas, so the numbers describe the last
// interval, not the process lifetime.
//
//   opprox-top --port 7657                 # live view, 2s refresh
//   opprox-top --port 7657 --interval-s 1
//   opprox-top --port 7657 --once --json   # one machine-readable sample
//
// The delta window is server-side state shared by all delta pollers:
// run one opprox-top (or other delta poller) per server.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Json.h"
#include "support/Socket.h"
#include "support/StringUtils.h"
#include <chrono>
#include <cstdio>
#include <thread>

using namespace opprox;

namespace {

constexpr const char *Stages[] = {"parse", "plan", "lookup", "compute",
                                  "serialize"};

/// One persistent probe connection speaking the newline-delimited JSON
/// protocol.
class ProbeClient {
public:
  Expected<Json> roundTrip(const Json &Request) {
    if (std::optional<Error> E = sendAll(Sock, Request.dump() + "\n"))
      return *E;
    std::string Line;
    std::string Chunk;
    while (!Framer.next(Line)) {
      Chunk.clear();
      RecvResult R = recvSome(Sock, Chunk);
      if (R.Status != IoStatus::Ok)
        return Error(R.Status == IoStatus::Timeout
                         ? "probe timed out"
                         : "server closed the probe connection");
      if (!Framer.feed(Chunk.data(), Chunk.size()))
        return Error("oversized probe response");
    }
    Expected<Json> Doc = Json::parse(Line);
    if (!Doc)
      return Doc.error();
    const Json *Ok = Doc->find("ok");
    if (!Ok || !Ok->isBool() || !Ok->asBool())
      return Error("probe answered with an error response");
    const Json *Result = Doc->find("result");
    if (!Result)
      return Error("probe response has no result");
    return *Result;
  }

  static Expected<ProbeClient> connect(const std::string &Host, uint16_t Port,
                                       long Retries) {
    for (long Attempt = 0;; ++Attempt) {
      Expected<Socket> Sock = connectTcp(Host, Port);
      if (Sock) {
        if (std::optional<Error> E = setRecvTimeoutMs(*Sock, 10000))
          return *E;
        ProbeClient Client;
        Client.Sock = std::move(*Sock);
        return Client;
      }
      if (Attempt >= Retries)
        return Sock.error();
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }

private:
  Socket Sock;
  LineFramer Framer{1 << 20};
};

const Json *child(const Json *Obj, const std::string &Key) {
  return Obj && Obj->isObject() ? Obj->find(Key) : nullptr;
}

double num(const Json *Obj, const std::string &Key, double Default = 0.0) {
  const Json *V = child(Obj, Key);
  return V && V->isNumber() ? V->asNumber() : Default;
}

std::string text(const Json *Obj, const std::string &Key,
                 const std::string &Default = "?") {
  const Json *V = child(Obj, Key);
  return V && V->isString() ? V->asString() : Default;
}

/// The monitor's derived view of one (health, delta) probe pair: the
/// numbers both render modes share.
struct Sample {
  Json Health; ///< The "health" object.
  Json Delta;  ///< The delta snapshot.

  double rate(const std::string &Counter) const {
    return num(child(&Delta, "rates_per_sec"), Counter);
  }
  double count(const std::string &Counter) const {
    return num(child(&Delta, "counters"), Counter);
  }
  const Json *histogram(const std::string &Name) const {
    return child(child(&Delta, "histograms"), Name);
  }
  double cacheHitRatio() const {
    double Hits = count("cache.hits");
    double Misses = count("cache.misses");
    return Hits + Misses > 0 ? Hits / (Hits + Misses) : 0.0;
  }
  /// Per-stage sums, for attribution shares.
  double stageSumTotal() const {
    double Total = 0.0;
    for (const char *Stage : Stages)
      Total += num(histogram(std::string("serve.stage_ms.") + Stage), "sum");
    return Total;
  }
};

Json derivedJson(const Sample &S) {
  Json LatencyMs = Json::object();
  const Json *ReqMs = S.histogram("serve.request_ms");
  LatencyMs.set("p50", num(ReqMs, "p50"));
  LatencyMs.set("p95", num(ReqMs, "p95"));
  LatencyMs.set("p99", num(ReqMs, "p99"));

  double SumTotal = S.stageSumTotal();
  Json StageMs = Json::object();
  for (const char *Stage : Stages) {
    const Json *H = S.histogram(std::string("serve.stage_ms.") + Stage);
    Json Entry = Json::object();
    Entry.set("count", num(H, "count"));
    Entry.set("sum", num(H, "sum"));
    Entry.set("mean", num(H, "mean"));
    Entry.set("p50", num(H, "p50"));
    Entry.set("p95", num(H, "p95"));
    Entry.set("p99", num(H, "p99"));
    Entry.set("share", SumTotal > 0 ? num(H, "sum") / SumTotal : 0.0);
    StageMs.set(Stage, std::move(Entry));
  }

  Json Derived = Json::object();
  Derived.set("rps", S.rate("serve.requests"));
  Derived.set("probes_per_sec", S.rate("serve.probes"));
  Derived.set("shed_per_sec", S.rate("serve.shed"));
  Derived.set("errors_per_sec", S.rate("serve.errors"));
  Derived.set("latency_ms", std::move(LatencyMs));
  Derived.set("cache_hit_ratio", S.cacheHitRatio());
  Derived.set("stage_ms", std::move(StageMs));
  return Derived;
}

void renderJson(const Sample &S) {
  Json Out = Json::object();
  Out.set("schema", "opprox-top-1");
  Out.set("health", S.Health);
  Out.set("derived", derivedJson(S));
  Out.set("delta", S.Delta);
  std::printf("%s\n", Out.dump(2).c_str());
}

void renderScreen(const Sample &S, const std::string &Host, uint16_t Port,
                  bool Clear) {
  if (Clear)
    std::printf("\x1b[2J\x1b[H"); // Clear screen, home cursor.

  const Json *H = &S.Health;
  std::string Apps;
  if (const Json *AppsArr = child(H, "apps"))
    for (size_t I = 0; I < AppsArr->size(); ++I)
      Apps += (I ? ", " : "") + AppsArr->at(I).asString();
  const Json *Conns = child(H, "connections");
  const Json *Window = child(H, "window");

  std::printf("opprox-top — %s:%u   status: %s   uptime: %.0fs   "
              "generation: %.0f\n",
              Host.c_str(), static_cast<unsigned>(Port),
              text(H, "status").c_str(), num(H, "uptime_s"),
              num(H, "artifact_generation"));
  std::printf("apps: %s   shards: %.0f   conns: %.0f/%.0f   window: %.1fs\n\n",
              Apps.c_str(), num(H, "shards"), num(Conns, "active"),
              num(Conns, "capacity"), num(Window, "interval_s"));

  const Json *ReqMs = S.histogram("serve.request_ms");
  std::printf("  req/s %9.1f    probes/s %6.2f    shed/s %6.2f    "
              "errors/s %6.2f\n",
              S.rate("serve.requests"), S.rate("serve.probes"),
              S.rate("serve.shed"), S.rate("serve.errors"));
  std::printf("  latency_ms   p50 %8.4f   p95 %8.4f   p99 %8.4f\n",
              num(ReqMs, "p50"), num(ReqMs, "p95"), num(ReqMs, "p99"));
  std::printf("  cache hit ratio %.4f   (hits %.0f, misses %.0f, grid %.0f)\n\n",
              S.cacheHitRatio(), S.count("cache.hits"),
              S.count("cache.misses"), S.count("cache.grid_hits"));

  double SumTotal = S.stageSumTotal();
  std::printf("  %-10s %10s %10s %10s %8s\n", "stage", "p50_ms", "p95_ms",
              "p99_ms", "share%");
  for (const char *Stage : Stages) {
    const Json *Hist = S.histogram(std::string("serve.stage_ms.") + Stage);
    double Share = SumTotal > 0 ? 100.0 * num(Hist, "sum") / SumTotal : 0.0;
    std::printf("  %-10s %10.4f %10.4f %10.4f %8.1f\n", Stage,
                num(Hist, "p50"), num(Hist, "p95"), num(Hist, "p99"), Share);
  }
  std::fflush(stdout);
}

} // namespace

int main(int Argc, char **Argv) {
  std::string Host = "127.0.0.1";
  long Port = 0;
  double IntervalS = 2.0;
  long Count = 0;
  bool Once = false;
  bool AsJson = false;
  long ConnectRetries = 50;

  FlagParser Flags;
  Flags.addFlag("host", &Host, "Server host (default 127.0.0.1)");
  Flags.addFlag("port", &Port, "Server port (required)");
  Flags.addFlag("interval-s", &IntervalS,
                "Seconds between probe polls (default 2)");
  Flags.addFlag("count", &Count, "Stop after this many samples; 0 = forever");
  Flags.addFlag("once", &Once,
                "Take a single sample and exit (the window covers the time "
                "since server start or the previous delta probe)");
  Flags.addFlag("json", &AsJson,
                "Emit machine-readable JSON samples instead of the live view");
  Flags.addFlag("connect-retries", &ConnectRetries,
                "Connection attempts before giving up (100ms apart)");
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (Port <= 0 || Port > 65535) {
    std::fprintf(stderr, "error: --port is required (1..65535)\n");
    return 1;
  }
  if (IntervalS <= 0.0) {
    std::fprintf(stderr, "error: --interval-s must be positive\n");
    return 1;
  }
  if (Once)
    Count = 1;

  Expected<ProbeClient> Client = ProbeClient::connect(
      Host, static_cast<uint16_t>(Port), ConnectRetries);
  if (!Client) {
    std::fprintf(stderr, "error: cannot reach %s:%ld: %s\n", Host.c_str(),
                 Port, Client.error().message().c_str());
    return 1;
  }

  Json HealthReq = Json::object();
  HealthReq.set("health", true);
  Json DeltaReq = Json::object();
  DeltaReq.set("stats", "delta");

  for (long Taken = 0; Count == 0 || Taken < Count; ++Taken) {
    if (Taken > 0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(IntervalS));

    Expected<Json> HealthDoc = Client->roundTrip(HealthReq);
    if (!HealthDoc) {
      std::fprintf(stderr, "error: health probe: %s\n",
                   HealthDoc.error().message().c_str());
      return 1;
    }
    Expected<Json> DeltaDoc = Client->roundTrip(DeltaReq);
    if (!DeltaDoc) {
      std::fprintf(stderr, "error: delta probe: %s\n",
                   DeltaDoc.error().message().c_str());
      return 1;
    }

    Sample S;
    const Json *Health = HealthDoc->find("health");
    S.Health = Health ? *Health : Json::object();
    S.Delta = std::move(*DeltaDoc);
    if (AsJson)
      renderJson(S);
    else
      renderScreen(S, Host, static_cast<uint16_t>(Port), /*Clear=*/!Once);
  }
  return 0;
}
