//===- bench/fig15_input_sensitivity.cpp ----------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Fig. 15: phase-specific QoS/speedup characteristics for four different
// input-parameter combinations (Bodytrack and LULESH). The paper's
// point: the phase-aware trend is consistent across inputs, so the
// benefit is not an artifact of one input.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/StringUtils.h"
#include "support/Statistics.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig15",
         "Phase behaviour across four input combinations (paper Fig. 15)");

  for (const std::string &Name : {"bodytrack", "lulesh"}) {
    auto App = createApp(Name);
    GoldenCache Golden(*App);
    std::vector<std::vector<double>> Inputs = App->trainingInputs();
    Inputs.resize(std::min<size_t>(Inputs.size(), 4));
    std::vector<std::vector<int>> Configs =
        defaultProbeConfigs(*App, /*JointCount=*/4, /*Seed=*/0xF15);

    std::printf("--- %s ---\n", Name.c_str());
    Table T({"input", "phase", "mean_qos_pct", "mean_speedup"});
    for (const std::vector<double> &Input : Inputs) {
      std::string InputStr;
      for (size_t I = 0; I < Input.size(); ++I)
        InputStr += (I ? "/" : "") + format("%g", Input[I]);
      std::vector<PhaseProbe> Probes =
          probePhases(*App, Golden, Input, Configs, 4, Bench.Threads);
      for (int Phase = 0; Phase < 4; ++Phase) {
        RunningStats Qos, Speedup;
        for (const PhaseProbe &P : Probes)
          if (P.Phase == Phase) {
            Qos.add(P.QosDegradation);
            Speedup.add(P.Speedup);
          }
        T.beginRow();
        T.addCell(InputStr);
        T.addCell(phaseLabel(Phase));
        T.addCell(Qos.mean(), 3);
        T.addCell(Speedup.mean(), 3);
      }
    }
    emit("fig15_" + Name, T);
  }
  std::printf("expected shape: within every input, phase-1 mean QoS "
              "degradation dominates and later phases shrink\n");
  return 0;
}
