//===- bench/fig09_10_phase_behavior.cpp ----------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Figs. 9a-d and 10a-d: phase-specific QoS degradation (Fig. 9) and
// speedup (Fig. 10) for CoMD, PSO, Bodytrack, and FFmpeg, four phases
// plus the all-phase case. FFmpeg reports PSNR (higher = better), the
// rest percentage QoS degradation (lower = better) -- exactly the
// paper's presentation.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/Statistics.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig09_10",
         "Per-phase QoS degradation (Fig. 9) and speedup (Fig. 10) for "
         "CoMD, PSO, Bodytrack, FFmpeg");

  for (const std::string &Name : {"comd", "pso", "bodytrack", "ffmpeg"}) {
    auto App = createApp(Name);
    GoldenCache Golden(*App);
    const std::vector<double> Input = App->defaultInput();
    std::vector<std::vector<int>> Configs =
        defaultProbeConfigs(*App, /*JointCount=*/6, /*Seed=*/0x910);
    std::vector<PhaseProbe> Probes =
        probePhases(*App, Golden, Input, Configs, 4, Bench.Threads);

    std::printf("--- %s (%s) ---\n", Name.c_str(),
                App->usesPsnr() ? "PSNR dB, higher is better"
                                : "QoS degradation %, lower is better");
    Table T({"phase", "levels", App->usesPsnr() ? "psnr_db" : "qos_pct",
             "speedup", "iterations"});
    for (const PhaseProbe &P : Probes) {
      std::string LevelStr;
      for (size_t B = 0; B < P.Levels.size(); ++B)
        LevelStr += (B ? "," : "") + std::to_string(P.Levels[B]);
      T.beginRow();
      T.addCell(phaseLabel(P.Phase));
      T.addCell(LevelStr);
      T.addCell(App->usesPsnr() ? P.Psnr : P.QosDegradation, 3);
      T.addCell(P.Speedup, 3);
      T.addCell(P.Iterations);
    }
    emit("fig09_10_" + Name, T);

    Table Summary({"phase", App->usesPsnr() ? "mean_psnr_db" : "mean_qos_pct",
                   "mean_speedup"});
    auto AddSummary = [&](int Phase) {
      RunningStats Qos, Speedup;
      for (const PhaseProbe &P : Probes)
        if (P.Phase == Phase) {
          Qos.add(App->usesPsnr() ? P.Psnr : P.QosDegradation);
          Speedup.add(P.Speedup);
        }
      Summary.beginRow();
      Summary.addCell(phaseLabel(Phase));
      Summary.addCell(Qos.mean(), 3);
      Summary.addCell(Speedup.mean(), 3);
    };
    for (int Phase = 0; Phase < 4; ++Phase)
      AddSummary(Phase);
    AddSummary(AllPhases);
    emit("fig09_10_" + Name + "_summary", Summary);
  }
  return 0;
}
