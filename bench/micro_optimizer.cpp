//===- bench/micro_optimizer.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serving-latency micro-benchmark for the optimizer hot path: the naive
/// scalar scan vs. the batched+pruned scan (serial and parallel) on a
/// synthetic 6-block x 4-level model (4096 configurations per phase).
/// Verifies the engines return bit-identical decisions, reports
/// configs/sec and the optimize.ms p50/p99 from the telemetry histogram,
/// sweeps executors x space size for the thread-scaling curve, and
/// writes the machine-readable summary to BENCH_optimizer.json.
///
/// The parallel engine is deliberately oversubscribed when --threads is
/// 0 and the host has fewer than four hardware threads: the point of the
/// bench is the scheduling behavior (chunk geometry, bit-identical
/// reduction) at realistic executor counts, and the JSON records the
/// honest hardware_concurrency so consumers can judge the speedups.
///
/// Run:   ./build/bench/micro_optimizer [--blocks 6] [--levels 3]
///            [--phases 4] [--repeats 5] [--budget 0.5] [--threads 0]
///            [--out BENCH_optimizer.json]
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/ModelArtifact.h"
#include "core/OptimizePlanner.h"
#include "core/Optimizer.h"
#include "core/Sampler.h"
#include "support/CommandLine.h"
#include "support/Json.h"
#include "support/Simd.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <thread>

using namespace opprox;
using namespace opprox::bench;

namespace {

/// Synthetic ground truth with mild block interactions: enough structure
/// for the degree-escalating fits to model well, enough spread that a
/// budget leaves both feasible and infeasible configurations.
double trueSpeedup(const std::vector<int> &Levels, size_t Phase,
                   size_t NumPhases) {
  double Scale =
      0.5 + static_cast<double>(Phase + 1) / static_cast<double>(NumPhases);
  double S = 1.0;
  for (size_t B = 0; B < Levels.size(); ++B)
    S *= 1.0 + 0.05 * Scale * (1.0 + 0.3 * static_cast<double>(B)) *
                   static_cast<double>(Levels[B]);
  return S;
}

double trueQos(const std::vector<int> &Levels, size_t Phase,
               size_t NumPhases) {
  double Scale =
      0.3 + static_cast<double>(NumPhases - Phase) /
                static_cast<double>(NumPhases);
  double Q = 0.0;
  for (size_t B = 0; B < Levels.size(); ++B) {
    double L = static_cast<double>(Levels[B]);
    Q += 0.01 * Scale * (1.0 + 0.2 * static_cast<double>(B)) * L * L;
  }
  return Q;
}

double trueIterations(const std::vector<int> &Levels) {
  double Sum = 0.0;
  for (int L : Levels)
    Sum += static_cast<double>(L);
  return 100.0 + 4.0 * Sum;
}

/// Profiling-shaped synthetic data: the Sec. 3.3 sampling pattern (local
/// sweeps + random joint configs) against the ground truth above, with
/// small multiplicative noise.
TrainingSet makeSyntheticData(size_t NumBlocks, int MaxLevel,
                              size_t NumPhases, size_t JointPerPhase,
                              uint64_t Seed) {
  std::vector<std::vector<double>> Inputs = {{1.0}, {2.0}, {3.0}};
  std::vector<int> MaxLevels(NumBlocks, MaxLevel);
  TrainingSet Set;
  Rng R(Seed);
  for (const std::vector<double> &Input : Inputs) {
    for (size_t Phase = 0; Phase < NumPhases; ++Phase) {
      SamplingPlan Plan = makeSamplingPlan(MaxLevels, JointPerPhase, R);
      Plan.forEach([&](const std::vector<int> &Levels) {
        TrainingSample S;
        S.Input = Input;
        S.Levels = Levels;
        S.Phase = static_cast<int>(Phase);
        S.Speedup = trueSpeedup(Levels, Phase, NumPhases) *
                    (1.0 + R.gaussian(0.0, 0.004));
        S.QosDegradation =
            std::max(0.0, trueQos(Levels, Phase, NumPhases) *
                              (1.0 + R.gaussian(0.0, 0.01)));
        S.OuterIterations = trueIterations(Levels);
        S.ControlFlowClass = 0;
        Set.add(std::move(S));
      });
    }
  }
  return Set;
}

struct EngineResult {
  OptimizationResult Opt;
  double SecondsPerCall = 0.0;
  double ConfigsPerSec = 0.0;
};

EngineResult timeEngine(const AppModel &Model,
                        const std::vector<double> &Input,
                        const std::vector<int> &MaxLevels, double Budget,
                        const OptimizeOptions &Opts, size_t Repeats) {
  EngineResult R;
  Timer Clock;
  size_t Configs = 0;
  for (size_t I = 0; I < Repeats; ++I) {
    R.Opt = optimizeSchedule(Model, Input, MaxLevels, Budget, Opts);
    Configs += R.Opt.ConfigsEvaluated;
  }
  double Elapsed = Clock.seconds();
  R.SecondsPerCall = Elapsed / static_cast<double>(Repeats);
  R.ConfigsPerSec =
      Elapsed > 0.0 ? static_cast<double>(Configs) / Elapsed : 0.0;
  return R;
}

/// Nearest-rank percentile over per-call samples, reported in
/// microseconds (cache-layer latencies are far below the millisecond
/// buckets the engine histograms use).
double percentileUs(std::vector<double> &SamplesNs, double Pct) {
  if (SamplesNs.empty())
    return 0.0;
  std::sort(SamplesNs.begin(), SamplesNs.end());
  size_t Idx = static_cast<size_t>(
      (Pct / 100.0) * static_cast<double>(SamplesNs.size() - 1) + 0.5);
  return SamplesNs[Idx] / 1000.0;
}

bool sameDecisions(const OptimizationResult &A, const OptimizationResult &B) {
  if (A.Decisions.size() != B.Decisions.size())
    return false;
  for (size_t P = 0; P < A.Decisions.size(); ++P) {
    const PhaseDecision &DA = A.Decisions[P];
    const PhaseDecision &DB = B.Decisions[P];
    if (DA.Levels != DB.Levels ||
        DA.PredictedSpeedup != DB.PredictedSpeedup ||
        DA.PredictedQos != DB.PredictedQos ||
        DA.AllocatedBudget != DB.AllocatedBudget)
      return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  long Blocks = 6;
  long Levels = 3; // Per-block max level -> 4 levels including exact.
  long Phases = 4;
  long Repeats = 5;
  long Joint = 48;
  long Threads = 0; // 0 = auto for the parallel engine.
  double Budget = 0.5;
  std::string OutPath = "BENCH_optimizer.json";
  TelemetryOptions Telemetry;
  FlagParser Flags;
  Flags.addFlag("blocks", &Blocks, "approximable block count");
  Flags.addFlag("levels", &Levels, "max approximation level per block");
  Flags.addFlag("phases", &Phases, "phase count");
  Flags.addFlag("repeats", &Repeats, "optimizeSchedule calls per engine");
  Flags.addFlag("joint", &Joint, "random joint samples per (input, phase)");
  Flags.addFlag("threads", &Threads,
                "executors for the parallel engine (0 = auto)");
  Flags.addFlag("budget", &Budget, "QoS degradation budget");
  Flags.addFlag("out", &OutPath, "machine-readable summary path");
  addTelemetryFlags(Flags, Telemetry);
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (!initTelemetry(Telemetry))
    return 1;

  std::vector<int> MaxLevels(static_cast<size_t>(Blocks),
                             static_cast<int>(Levels));
  size_t Space = 1;
  for (int M : MaxLevels)
    Space *= static_cast<size_t>(M) + 1;
  banner("micro_optimizer",
         format("optimizer hot path on a synthetic %ld-block x %ld-level "
                "model (%zu configs/phase, %ld phases)",
                Blocks, Levels + 1, Space, Phases));

  std::printf("training synthetic model...\n");
  TrainingSet Data = makeSyntheticData(
      static_cast<size_t>(Blocks), static_cast<int>(Levels),
      static_cast<size_t>(Phases), static_cast<size_t>(Joint), 0xB16B00);
  ModelBuildOptions BOpts;
  BOpts.NumThreads = 0;
  AppModel Model =
      ModelBuilder::build(Data, static_cast<size_t>(Phases),
                          static_cast<size_t>(Blocks), BOpts);
  std::vector<double> Input = {2.0};

  std::printf("simd tier: %s\n", simd::activeTierName());

  OptimizeOptions Naive;
  Naive.UseNaiveScan = true;
  OptimizeOptions Batched; // Defaults: batched + pruned, serial.
  OptimizeOptions Parallel = Batched;
  // --threads 0 used to resolve through resolveWorkers(0) = 0 workers,
  // so the "parallel" row silently measured a 1-executor pool. Auto now
  // means at least 4 executors (oversubscribed on small hosts; see the
  // file comment), and the reported executor count is the resolved one.
  size_t WantExecutors =
      Threads > 0 ? static_cast<size_t>(Threads)
                  : std::max<size_t>(4, ThreadPool::defaultWorkerCount());
  ThreadPool Pool(ThreadPool::resolveWorkers(WantExecutors));
  Parallel.Pool = &Pool;
  size_t Executors = Pool.numWorkers() + 1;

  // Warm each engine once (thread_local scratch growth, metric handles),
  // then reset the registry so the histograms cover only timed calls.
  (void)optimizeSchedule(Model, Input, MaxLevels, Budget, Naive);
  (void)optimizeSchedule(Model, Input, MaxLevels, Budget, Batched);
  (void)optimizeSchedule(Model, Input, MaxLevels, Budget, Parallel);
  MetricsRegistry::global().reset();

  EngineResult NaiveR =
      timeEngine(Model, Input, MaxLevels, Budget, Naive,
                 static_cast<size_t>(Repeats));
  Histogram &OptimizeMs = MetricsRegistry::global().histogram("optimize.ms");
  double NaiveP50 = OptimizeMs.percentile(50);
  double NaiveP99 = OptimizeMs.percentile(99);

  MetricsRegistry::global().reset();
  EngineResult BatchedR =
      timeEngine(Model, Input, MaxLevels, Budget, Batched,
                 static_cast<size_t>(Repeats));
  double BatchedP50 = OptimizeMs.percentile(50);
  double BatchedP99 = OptimizeMs.percentile(99);

  MetricsRegistry::global().reset();
  EngineResult ParallelR =
      timeEngine(Model, Input, MaxLevels, Budget, Parallel,
                 static_cast<size_t>(Repeats));
  double ParallelP50 = OptimizeMs.percentile(50);
  double ParallelP99 = OptimizeMs.percentile(99);

  bool Identical = sameDecisions(NaiveR.Opt, BatchedR.Opt) &&
                   sameDecisions(NaiveR.Opt, ParallelR.Opt);
  if (!Identical) {
    std::fprintf(stderr,
                 "FAIL: engines disagree on the optimized schedule\n");
    return 1;
  }
  std::printf("determinism: batched and parallel decisions are "
              "bit-identical to the naive scan\n\n");

  size_t TotalConfigs = BatchedR.Opt.ConfigsEvaluated;
  double PrunedFraction =
      TotalConfigs > 0 ? static_cast<double>(BatchedR.Opt.ConfigsPruned) /
                             static_cast<double>(TotalConfigs)
                       : 0.0;

  Table T({"engine", "configs_per_sec", "ms_per_schedule", "p50_ms",
           "p99_ms", "vs_naive"});
  auto Row = [&](const char *Name, const EngineResult &E, double P50,
                 double P99) {
    T.addRow({Name, format("%.0f", E.ConfigsPerSec),
              format("%.3f", E.SecondsPerCall * 1e3), format("%.3f", P50),
              format("%.3f", P99),
              format("%.2fx", E.ConfigsPerSec / NaiveR.ConfigsPerSec)});
  };
  Row("naive_scalar", NaiveR, NaiveP50, NaiveP99);
  Row("batched_serial", BatchedR, BatchedP50, BatchedP99);
  Row(format("parallel_x%zu", Executors).c_str(), ParallelR, ParallelP50,
      ParallelP99);
  emit("micro_optimizer", T);
  std::printf("\npruned %zu of %zu configs (%.1f%%), scored %zu\n",
              BatchedR.Opt.ConfigsPruned, TotalConfigs,
              PrunedFraction * 100.0, BatchedR.Opt.ConfigsScored);

  //===--------------------------------------------------------------------===//
  // Thread-scaling sweep: executors x space size, each space its own
  // trained model (one extra block per step, so the spaces stay inside
  // the trained level range instead of extrapolating). Every point is
  // verified bit-identical to the batched serial scan on the same model
  // before its throughput is reported.
  //===--------------------------------------------------------------------===//

  struct ScalePoint {
    size_t ThreadsRequested = 0;
    size_t Executors = 0;
    double ConfigsPerSec = 0.0;
    double SpeedupVsBatched = 0.0;
    bool Identical = false;
  };
  struct ScaleSpace {
    size_t Blocks = 0;
    size_t Space = 0;
    double BatchedConfigsPerSec = 0.0;
    std::vector<ScalePoint> Points;
  };
  const size_t ThreadCounts[] = {1, 2, 4, 8};
  std::vector<ScaleSpace> Scaling;
  bool ScalingIdentical = true;
  std::printf("\nthread-scaling sweep (threads x space size)...\n");
  for (size_t ExtraBlocks = 0; ExtraBlocks < 3; ++ExtraBlocks) {
    size_t SweepBlocks = static_cast<size_t>(Blocks) + ExtraBlocks;
    std::vector<int> SweepMax(SweepBlocks, static_cast<int>(Levels));
    size_t SweepSpace = 1;
    for (int M : SweepMax)
      SweepSpace *= static_cast<size_t>(M) + 1;
    const AppModel *SweepModel = &Model;
    AppModel Grown;
    if (ExtraBlocks > 0) {
      TrainingSet SweepData = makeSyntheticData(
          SweepBlocks, static_cast<int>(Levels),
          static_cast<size_t>(Phases), static_cast<size_t>(Joint), 0xB16B00);
      Grown = ModelBuilder::build(SweepData, static_cast<size_t>(Phases),
                                  SweepBlocks, BOpts);
      SweepModel = &Grown;
    }

    ScaleSpace SS;
    SS.Blocks = SweepBlocks;
    SS.Space = SweepSpace;
    OptimizeOptions Serial; // Batched + pruned, serial, auto chunking.
    (void)optimizeSchedule(*SweepModel, Input, SweepMax, Budget, Serial);
    EngineResult Base = timeEngine(*SweepModel, Input, SweepMax, Budget,
                                   Serial, static_cast<size_t>(Repeats));
    SS.BatchedConfigsPerSec = Base.ConfigsPerSec;

    for (size_t T : ThreadCounts) {
      OptimizeOptions P = Serial;
      std::unique_ptr<ThreadPool> TP;
      ScalePoint Point;
      Point.ThreadsRequested = T;
      Point.Executors = 1;
      if (T > 1) {
        TP = std::make_unique<ThreadPool>(T - 1);
        P.Pool = TP.get();
        Point.Executors = TP->numWorkers() + 1;
      }
      (void)optimizeSchedule(*SweepModel, Input, SweepMax, Budget, P);
      EngineResult E = timeEngine(*SweepModel, Input, SweepMax, Budget, P,
                                  static_cast<size_t>(Repeats));
      Point.ConfigsPerSec = E.ConfigsPerSec;
      Point.SpeedupVsBatched =
          Base.ConfigsPerSec > 0.0 ? E.ConfigsPerSec / Base.ConfigsPerSec
                                   : 0.0;
      Point.Identical = sameDecisions(E.Opt, Base.Opt);
      ScalingIdentical &= Point.Identical;
      SS.Points.push_back(Point);
    }
    Scaling.push_back(std::move(SS));
  }
  if (!ScalingIdentical) {
    std::fprintf(stderr, "FAIL: a scaling sweep point diverged from the "
                         "batched serial scan\n");
    return 1;
  }
  std::printf("determinism: every sweep point is bit-identical to the "
              "batched serial scan\n\n");

  Table ScaleTable({"space_configs", "threads", "executors",
                    "configs_per_sec", "speedup_vs_batched"});
  for (const ScaleSpace &SS : Scaling)
    for (const ScalePoint &P : SS.Points)
      ScaleTable.addRow({format("%zu", SS.Space),
                         format("%zu", P.ThreadsRequested),
                         format("%zu", P.Executors),
                         format("%.0f", P.ConfigsPerSec),
                         format("%.2fx", P.SpeedupVsBatched)});
  emit("micro_optimizer scaling", ScaleTable);

  //===--------------------------------------------------------------------===//
  // Schedule-cache layer: warm/cold latency by shard count, plus a
  // hit-rate sweep. Every cached response is self-verified bit-identical
  // to the batched engine before any number is reported.
  //===--------------------------------------------------------------------===//

  OpproxArtifact Art;
  Art.AppName = "micro";
  Art.ParameterNames = {"n"};
  Art.MaxLevels = MaxLevels;
  Art.DefaultInput = Input;
  Art.Model = Model;

  bool CacheIdentical = true;
  auto runPlanner = [&](OptimizePlanner &Planner,
                        double B) -> OptimizationResult {
    Expected<OptimizationResult> R = Planner.optimize(Art, Input, B, Batched);
    if (!R) {
      std::fprintf(stderr, "error: %s\n", R.error().message().c_str());
      std::exit(1);
    }
    return std::move(*R);
  };

  struct CacheRow {
    size_t Shards;
    double WarmP50Us, WarmP99Us, ColdP50Us;
  };
  std::vector<CacheRow> CacheRows;
  const size_t WarmIters = 2000, ColdIters = 24;
  for (size_t Shards : {1u, 8u, 16u}) {
    PlannerOptions POpts;
    POpts.Cache.Shards = Shards;
    POpts.Cache.Capacity = 8192;
    OptimizePlanner Planner(POpts);
    CacheIdentical &= sameDecisions(runPlanner(Planner, Budget),
                                    BatchedR.Opt); // Fill (miss path).

    std::vector<double> WarmNs;
    WarmNs.reserve(WarmIters);
    for (size_t I = 0; I < WarmIters; ++I) {
      auto T0 = std::chrono::steady_clock::now();
      OptimizationResult R = runPlanner(Planner, Budget);
      auto T1 = std::chrono::steady_clock::now();
      WarmNs.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
              .count()));
      CacheIdentical &= sameDecisions(R, BatchedR.Opt);
    }

    std::vector<double> ColdNs;
    ColdNs.reserve(ColdIters);
    for (size_t I = 0; I < ColdIters; ++I) {
      // Fresh budget each call: the lookup always misses, so this is
      // the compute path plus the cache's key/probe/insert overhead.
      double B = Budget + 1e-4 * static_cast<double>(I + 1);
      auto T0 = std::chrono::steady_clock::now();
      OptimizationResult R = runPlanner(Planner, B);
      auto T1 = std::chrono::steady_clock::now();
      ColdNs.push_back(static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(T1 - T0)
              .count()));
      if (I == 0)
        CacheIdentical &= sameDecisions(
            R, optimizeSchedule(Model, Input, MaxLevels, B, Batched));
    }
    CacheRows.push_back({Shards, percentileUs(WarmNs, 50),
                         percentileUs(WarmNs, 99), percentileUs(ColdNs, 50)});
  }
  if (!CacheIdentical) {
    std::fprintf(stderr,
                 "FAIL: cached schedules diverge from the batched engine\n");
    return 1;
  }
  std::printf("\ndeterminism: cached schedules are bit-identical to the "
              "batched engine\n\n");

  Table CacheTable({"cache_shards", "warm_p50_us", "warm_p99_us",
                    "cold_p50_us"});
  for (const CacheRow &R : CacheRows)
    CacheTable.addRow({format("%zu", R.Shards), format("%.2f", R.WarmP50Us),
                       format("%.2f", R.WarmP99Us),
                       format("%.1f", R.ColdP50Us)});
  emit("micro_optimizer cache", CacheTable);

  // Hit-rate sweep: a hot set of 8 budgets pre-warmed, then a request
  // mix whose repeat fraction targets each hit rate.
  Counter &CacheHits = MetricsRegistry::global().counter("cache.hits");
  struct SweepRow {
    size_t Shards;
    double Target, Observed, RequestsPerSec;
  };
  std::vector<SweepRow> Sweep;
  const size_t SweepRequests = 400, HotSet = 8;
  size_t UniqueTag = 0;
  for (size_t Shards : {1u, 8u, 16u}) {
    for (double Target : {0.50, 0.90, 0.99}) {
      PlannerOptions POpts;
      POpts.Cache.Shards = Shards;
      POpts.Cache.Capacity = 8192;
      OptimizePlanner Planner(POpts);
      for (size_t H = 0; H < HotSet; ++H)
        (void)runPlanner(Planner, Budget + 0.01 * static_cast<double>(H));
      uint64_t HitsBefore = CacheHits.value();
      Timer SweepClock;
      for (size_t I = 0; I < SweepRequests; ++I) {
        bool Hot = static_cast<double>(I % 100) < Target * 100.0;
        double B = Hot ? Budget + 0.01 * static_cast<double>(I % HotSet)
                       : Budget + 1.0 +
                             1e-3 * static_cast<double>(++UniqueTag);
        (void)runPlanner(Planner, B);
      }
      double Elapsed = SweepClock.seconds();
      Sweep.push_back({Shards, Target,
                       static_cast<double>(CacheHits.value() - HitsBefore) /
                           static_cast<double>(SweepRequests),
                       Elapsed > 0.0 ? static_cast<double>(SweepRequests) /
                                           Elapsed
                                     : 0.0});
    }
  }
  Table SweepTable({"cache_shards", "target_hit_rate", "observed_hit_rate",
                    "requests_per_sec"});
  for (const SweepRow &R : Sweep)
    SweepTable.addRow({format("%zu", R.Shards), format("%.2f", R.Target),
                       format("%.3f", R.Observed),
                       format("%.0f", R.RequestsPerSec)});
  emit("micro_optimizer cache sweep", SweepTable);

  Json Out = Json::object();
  Out.set("schema", "opprox.bench.optimizer.v1");
  Out.set("blocks", Blocks);
  Out.set("max_level", Levels);
  Out.set("phases", Phases);
  Out.set("space_configs", Space);
  Out.set("repeats", Repeats);
  Out.set("budget", Budget);
  Out.set("decisions_bit_identical", Identical);
  Out.set("simd_tier", simd::activeTierName());
  Out.set("configs_pruned", BatchedR.Opt.ConfigsPruned);
  Out.set("configs_scored", BatchedR.Opt.ConfigsScored);
  Out.set("pruned_fraction", PrunedFraction);
  auto Engine = [](const EngineResult &E, double P50, double P99) {
    Json J = Json::object();
    J.set("configs_per_sec", E.ConfigsPerSec);
    J.set("ms_per_schedule", E.SecondsPerCall * 1e3);
    J.set("optimize_ms_p50", P50);
    J.set("optimize_ms_p99", P99);
    return J;
  };
  Out.set("naive", Engine(NaiveR, NaiveP50, NaiveP99));
  Out.set("batched", Engine(BatchedR, BatchedP50, BatchedP99));
  Json ParallelJson = Engine(ParallelR, ParallelP50, ParallelP99);
  ParallelJson.set("executors", Executors);
  Out.set("parallel", std::move(ParallelJson));
  Out.set("speedup_batched_vs_naive",
          BatchedR.ConfigsPerSec / NaiveR.ConfigsPerSec);
  Out.set("speedup_parallel_vs_naive",
          ParallelR.ConfigsPerSec / NaiveR.ConfigsPerSec);
  Json ScalingJson = Json::object();
  ScalingJson.set("hardware_concurrency",
                  static_cast<size_t>(std::thread::hardware_concurrency()));
  ScalingJson.set("repeats", Repeats);
  Json SpacesJson = Json::array();
  for (const ScaleSpace &SS : Scaling) {
    Json SpaceJson = Json::object();
    SpaceJson.set("blocks", SS.Blocks);
    SpaceJson.set("space_configs", SS.Space);
    SpaceJson.set("batched_configs_per_sec", SS.BatchedConfigsPerSec);
    Json Points = Json::array();
    for (const ScalePoint &P : SS.Points) {
      Json PointJson = Json::object();
      PointJson.set("threads", P.ThreadsRequested);
      PointJson.set("executors", P.Executors);
      PointJson.set("configs_per_sec", P.ConfigsPerSec);
      PointJson.set("speedup_vs_batched", P.SpeedupVsBatched);
      PointJson.set("decisions_bit_identical", P.Identical);
      Points.push(std::move(PointJson));
    }
    SpaceJson.set("points", std::move(Points));
    SpacesJson.push(std::move(SpaceJson));
  }
  ScalingJson.set("spaces", std::move(SpacesJson));
  Out.set("scaling", std::move(ScalingJson));
  Json Cached = Json::object();
  Cached.set("bit_identical", CacheIdentical);
  Cached.set("warm_iterations", WarmIters);
  // Headline numbers come from the default shard count (8).
  for (const CacheRow &R : CacheRows) {
    if (R.Shards != 8)
      continue;
    Cached.set("warm_p50_us", R.WarmP50Us);
    Cached.set("warm_p99_us", R.WarmP99Us);
    Cached.set("cold_p50_us", R.ColdP50Us);
  }
  Json ByShards = Json::array();
  for (const CacheRow &R : CacheRows) {
    Json Row = Json::object();
    Row.set("shards", R.Shards);
    Row.set("warm_p50_us", R.WarmP50Us);
    Row.set("warm_p99_us", R.WarmP99Us);
    Row.set("cold_p50_us", R.ColdP50Us);
    ByShards.push(std::move(Row));
  }
  Cached.set("by_shards", std::move(ByShards));
  Json SweepJson = Json::array();
  for (const SweepRow &R : Sweep) {
    Json Row = Json::object();
    Row.set("shards", R.Shards);
    Row.set("target_hit_rate", R.Target);
    Row.set("observed_hit_rate", R.Observed);
    Row.set("requests_per_sec", R.RequestsPerSec);
    SweepJson.push(std::move(Row));
  }
  Cached.set("sweep", std::move(SweepJson));
  Out.set("cached", std::move(Cached));
  if (std::optional<Error> E = writeFile(OutPath, Out.dump(2) + "\n")) {
    std::fprintf(stderr, "error: %s\n", E->message().c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
