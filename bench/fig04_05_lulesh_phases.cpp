//===- bench/fig04_05_lulesh_phases.cpp -----------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Figs. 4 and 5: LULESH QoS degradation (Fig. 4) and speedup (Fig. 5)
// when approximation is confined to one of four phases, vs. applied to
// the whole run. Each row is one configuration probed in one phase.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/Statistics.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig04_05",
         "LULESH: phase-specific QoS degradation (Fig. 4) and speedup "
         "(Fig. 5)");
  auto App = createApp("lulesh");
  GoldenCache Golden(*App);
  const std::vector<double> Input = App->defaultInput();

  std::vector<std::vector<int>> Configs =
      defaultProbeConfigs(*App, /*JointCount=*/8, /*Seed=*/0xF45);
  std::vector<PhaseProbe> Probes =
      probePhases(*App, Golden, Input, Configs, 4, Bench.Threads);

  Table T({"phase", "levels", "qos_degradation_pct", "speedup",
           "iterations"});
  for (const PhaseProbe &P : Probes) {
    std::string LevelStr;
    for (size_t B = 0; B < P.Levels.size(); ++B)
      LevelStr += (B ? "," : "") + std::to_string(P.Levels[B]);
    T.beginRow();
    T.addCell(phaseLabel(P.Phase));
    T.addCell(LevelStr);
    T.addCell(P.QosDegradation, 3);
    T.addCell(P.Speedup, 3);
    T.addCell(P.Iterations);
  }
  emit("fig04_05", T);

  // Per-phase means: the shape the figures show.
  Table Summary({"phase", "mean_qos_pct", "mean_speedup"});
  for (int Phase = 0; Phase < 4; ++Phase) {
    RunningStats Qos, Speedup;
    for (const PhaseProbe &P : Probes)
      if (P.Phase == Phase) {
        Qos.add(P.QosDegradation);
        Speedup.add(P.Speedup);
      }
    Summary.beginRow();
    Summary.addCell(phaseLabel(Phase));
    Summary.addCell(Qos.mean(), 3);
    Summary.addCell(Speedup.mean(), 3);
  }
  RunningStats QosAll, SpeedupAll;
  for (const PhaseProbe &P : Probes)
    if (P.Phase == AllPhases) {
      QosAll.add(P.QosDegradation);
      SpeedupAll.add(P.Speedup);
    }
  Summary.beginRow();
  Summary.addCell(std::string("All"));
  Summary.addCell(QosAll.mean(), 3);
  Summary.addCell(SpeedupAll.mean(), 3);
  emit("fig04_05_summary", Summary);
  return 0;
}
