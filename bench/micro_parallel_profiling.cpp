//===- bench/micro_parallel_profiling.cpp ---------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Micro-benchmark for the parallel training pipeline: wall-clock time of
/// Profiler::collect and ModelBuilder::build at 1 executor vs. N, with a
/// bit-identity check that the parallel sweep produced exactly the serial
/// TrainingSet. This is the scaling evidence behind the README's
/// "Performance" section; Table 2 reports the absolute overhead numbers.
///
/// Run:   ./build/bench/micro_parallel_profiling [--app pso]
///            [--threads 0] [--samples 24] [--phases 4] [--repeats 3]
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include <algorithm>

using namespace opprox;
using namespace opprox::bench;

namespace {

struct Measurement {
  double CollectSeconds = 0.0;
  double BuildSeconds = 0.0;
  std::string Csv; // Serialized TrainingSet for the bit-identity check.
  size_t Runs = 0;
};

Measurement measureOnce(const ApproxApp &App, size_t NumThreads,
                        size_t Samples, size_t Phases, size_t Repeats) {
  Measurement M;
  for (size_t R = 0; R < Repeats; ++R) {
    // Fresh cache per repeat so every trial pays the same golden runs.
    GoldenCache Golden(App);
    Profiler Prof(App, Golden);
    ProfileOptions POpts;
    POpts.NumPhases = Phases;
    POpts.RandomJointSamples = Samples;
    POpts.NumThreads = NumThreads;
    Timer Clock;
    TrainingSet Set = Prof.collect(App.trainingInputs(), POpts);
    M.CollectSeconds += Clock.seconds();

    ModelBuildOptions BOpts;
    BOpts.NumThreads = NumThreads;
    Clock.reset();
    AppModel Model =
        ModelBuilder::build(Set, Phases, App.numBlocks(), BOpts);
    M.BuildSeconds += Clock.seconds();
    (void)Model;

    M.Runs = Set.size();
    std::vector<std::string> BlockNames;
    for (const ApproximableBlock &AB : App.blocks())
      BlockNames.push_back(AB.Name);
    M.Csv = Set.toCsv(App.parameterNames(), BlockNames);
  }
  M.CollectSeconds /= static_cast<double>(Repeats);
  M.BuildSeconds /= static_cast<double>(Repeats);
  return M;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string AppName = "pso";
  long Threads = 0; // 0 = auto (OPPROX_THREADS, else hardware).
  long Samples = 24;
  long Phases = 4;
  long Repeats = 3;
  TelemetryOptions Telemetry;
  FlagParser Flags;
  Flags.addFlag("app", &AppName, "application to profile");
  Flags.addFlag("threads", &Threads, "parallel executor count (0 = auto)");
  Flags.addFlag("samples", &Samples, "random joint samples per input");
  Flags.addFlag("phases", &Phases, "phase count for the sweep");
  Flags.addFlag("repeats", &Repeats, "trials to average per configuration");
  addTelemetryFlags(Flags, Telemetry);
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (!initTelemetry(Telemetry))
    return 1;

  std::unique_ptr<ApproxApp> App = createApp(AppName);
  if (!App) {
    std::fprintf(stderr, "error: unknown application '%s'\n", AppName.c_str());
    return 1;
  }
  size_t Parallel = ThreadPool::resolveWorkers(
                        static_cast<size_t>(std::max(0l, Threads))) +
                    1;
  banner("micro_parallel_profiling",
         format("training-pipeline scaling on %s: 1 vs %zu executors",
                App->name().c_str(), Parallel));

  Measurement Serial = measureOnce(*App, 1, Samples, Phases, Repeats);
  Measurement Wide =
      measureOnce(*App, Parallel, Samples, Phases, Repeats);

  if (Serial.Csv != Wide.Csv) {
    std::fprintf(stderr,
                 "FAIL: parallel TrainingSet differs from serial sweep\n");
    return 1;
  }
  std::printf("determinism: %zu-executor TrainingSet is bit-identical to "
              "serial (%zu runs)\n\n",
              Parallel, Serial.Runs);

  Table T({"stage", "serial_s", "parallel_s", "speedup"});
  auto Row = [&](const char *Stage, double S, double P) {
    T.addRow({Stage, format("%.3f", S), format("%.3f", P),
              format("%.2fx", S / P)});
  };
  Row("profile_collect", Serial.CollectSeconds, Wide.CollectSeconds);
  Row("model_build", Serial.BuildSeconds, Wide.BuildSeconds);
  Row("total", Serial.CollectSeconds + Serial.BuildSeconds,
      Wide.CollectSeconds + Wide.BuildSeconds);
  emit("micro_parallel_profiling", T);
  return 0;
}
