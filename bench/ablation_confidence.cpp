//===- bench/ablation_confidence.cpp --------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Ablation (DESIGN.md Sec. 5): the value of the conservative confidence
// intervals (Sec. 3.6, p = 0.99 upper bound on QoS / lower bound on
// speedup). Raw point predictions pick more aggressive schedules --
// sometimes faster, but with more budget violations.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/StringUtils.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("ablation_confidence",
         "Conservative bounds (p in {0.5, 0.9, 0.99}) vs raw predictions");

  Table T({"app", "budget_pct", "mode", "speedup", "qos_pct",
           "violated_budget"});
  for (const std::string &Name : {"pso", "lulesh", "bodytrack"}) {
    auto App = createApp(Name);
    OpproxTrainOptions TrainOpts;
    TrainOpts.Profiling.RandomJointSamples = 24;
    Opprox Tuner = trainBench(*App, TrainOpts, Bench);
    const std::vector<double> Input = App->defaultInput();

    for (double Budget : {5.0, 20.0}) {
      auto Report = [&](const std::string &Mode,
                        const OptimizeOptions &Opts) {
        PhaseSchedule S = Tuner.optimize(Input, Budget, Opts);
        EvalOutcome E = evaluateSchedule(*App, Tuner.golden(), Input, S);
        T.beginRow();
        T.addCell(Name);
        T.addCell(Budget, 0);
        T.addCell(Mode);
        T.addCell(E.Speedup, 3);
        T.addCell(E.QosDegradation, 2);
        T.addCell(std::string(E.QosDegradation > Budget ? "yes" : "no"));
      };
      OptimizeOptions Raw;
      Raw.Conservative = false;
      Report("raw_prediction", Raw);
      for (double P : {0.5, 0.9, 0.99}) {
        OptimizeOptions Opts;
        Opts.ConfidenceP = P;
        Report(format("conservative_p%.2f", P), Opts);
      }
    }
  }
  emit("ablation_confidence", T);
  return 0;
}
