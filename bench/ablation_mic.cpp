//===- bench/ablation_mic.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Ablation (DESIGN.md Sec. 5): MIC feature filtering (Sec. 3.7) on vs
// off -- effect on model accuracy (cross-validated R^2 of the overall
// models) and on training time.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/Statistics.h"
#include "support/Timer.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("ablation_mic", "MIC feature filtering on/off: model quality and "
                         "training cost");

  Table T({"app", "mic_filter", "mean_cv_r2_speedup", "mean_cv_r2_qos",
           "train_sec"});
  for (const std::string &Name : {"pso", "ffmpeg"}) {
    for (bool UseMic : {true, false}) {
      auto App = createApp(Name);
      OpproxTrainOptions Opts;
      Opts.Profiling.RandomJointSamples = 20;
      Opts.ModelBuild.Selection.MicThreshold = UseMic ? 0.05 : 0.0;
      // train_sec is the measured quantity here, so no artifact cache:
      // a cached load would report load time as training cost.
      applyBenchOptions(Opts, Bench);
      Timer Train;
      Opprox Tuner = Opprox::train(*App, Opts);
      double Sec = Train.seconds();

      RunningStats SpeedupR2, QosR2;
      const std::vector<double> Input = App->defaultInput();
      for (size_t P = 0; P < Tuner.numPhases(); ++P) {
        const PhaseModels &PM = Tuner.model().phaseModels(Input, P);
        SpeedupR2.add(PM.speedupCvR2());
        QosR2.add(PM.qosCvR2());
      }
      T.beginRow();
      T.addCell(Name);
      T.addCell(std::string(UseMic ? "on" : "off"));
      T.addCell(SpeedupR2.mean(), 3);
      T.addCell(QosR2.mean(), 3);
      T.addCell(Sec, 2);
    }
  }
  emit("ablation_mic", T);
  return 0;
}
