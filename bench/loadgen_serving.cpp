//===- bench/loadgen_serving.cpp - Load generator for opprox-serve --------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives an opprox-serve instance with concurrent client connections
/// and reports throughput and latency percentiles, in the style of the
/// classic nperf-family network load generators: a warmup window that is
/// measured but discarded, then a measurement window summarized with
/// confidence intervals, and two traffic shapes --
///
///  - **closed loop** (default): each connection keeps exactly one
///    request in flight, so offered load adapts to server speed and the
///    run measures peak sustainable throughput;
///  - **open loop** (--rate R): requests are paced on a fixed schedule
///    split across connections, and latency is measured from the
///    *scheduled* send time, so queueing delay from a lagging server is
///    charged to the server, not silently absorbed (the coordinated-
///    omission correction).
///
/// Emits BENCH_serving.json (schema opprox.bench.serving.v1) with RPS,
/// p50/p99/p999 latency, the shed rate, and -- when the server speaks
/// the stats probe -- its cache counters and per-stage latency
/// attribution (stage_attribution); docs/SERVING.md explains how to
/// read it for capacity planning.
///
///   loadgen_serving --port 7657 --connections 8 --duration-s 5
///   loadgen_serving --port 7657 --rate 2000 --out BENCH_serving.json
///
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Json.h"
#include "support/Socket.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/Timer.h"
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

using namespace opprox;

namespace {

using Clock = std::chrono::steady_clock;

struct LoadgenOptions {
  std::string Host = "127.0.0.1";
  long Port = 0;
  std::string App;
  double Budget = 10.0;
  std::vector<double> Input;
  double Confidence = 0.99;
  bool Aggressive = false;
  long Connections = 8;
  double DurationS = 5.0;
  double WarmupS = 1.0;
  double Rate = 0.0; ///< Total target RPS; 0 = closed loop.
  long ConnectRetries = 50;
  long RecvTimeoutMs = 10000;
};

/// What one client connection (= one thread) observed during the
/// measurement window.
struct WorkerResult {
  std::vector<double> LatenciesMs;
  RunningStats Stats;
  size_t Sent = 0;
  size_t Ok = 0;
  size_t ErrorResponses = 0; ///< ok=false responses other than shed.
  size_t Shed = 0;           ///< `overloaded` responses.
  size_t TransportErrors = 0;
};

/// Connects with bounded retries so the generator can be started
/// concurrently with the server (the CI smoke job does exactly that).
Expected<Socket> connectWithRetries(const LoadgenOptions &Opts) {
  for (long Attempt = 0;; ++Attempt) {
    Expected<Socket> Sock =
        connectTcp(Opts.Host, static_cast<uint16_t>(Opts.Port));
    if (Sock) {
      if (std::optional<Error> E =
              setRecvTimeoutMs(*Sock, Opts.RecvTimeoutMs))
        return *E;
      return Sock;
    }
    if (Attempt >= Opts.ConnectRetries)
      return Sock;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

std::string requestLine(const LoadgenOptions &Opts, size_t Id) {
  Json Req = Json::object();
  Req.set("id", Id);
  if (!Opts.App.empty())
    Req.set("app", Opts.App);
  Req.set("budget", Opts.Budget);
  if (!Opts.Input.empty())
    Req.set("input", Json::numberArray(Opts.Input));
  Req.set("confidence", Opts.Confidence);
  if (Opts.Aggressive)
    Req.set("aggressive", true);
  return Req.dump() + "\n";
}

/// Reads one response line. Returns false on transport failure.
bool recvLine(const Socket &Sock, LineFramer &Framer, std::string &Line) {
  std::string Chunk;
  while (!Framer.next(Line)) {
    Chunk.clear();
    RecvResult R = recvSome(Sock, Chunk);
    if (R.Status != IoStatus::Ok)
      return false;
    if (!Framer.feed(Chunk.data(), Chunk.size()))
      return false;
  }
  return true;
}

void workerLoop(const LoadgenOptions &Opts, size_t WorkerIndex,
                Clock::time_point WarmupEnd, Clock::time_point Deadline,
                WorkerResult &Out) {
  Expected<Socket> Sock = connectWithRetries(Opts);
  if (!Sock) {
    std::fprintf(stderr, "loadgen: worker %zu: %s\n", WorkerIndex,
                 Sock.error().message().c_str());
    ++Out.TransportErrors;
    return;
  }
  LineFramer Framer(1 << 20);
  std::string Line;
  size_t Id = WorkerIndex << 32;

  // Open-loop pacing: this worker owns every PerWorkerInterval-th slot
  // of the global schedule, offset by its index so workers interleave.
  const bool OpenLoop = Opts.Rate > 0.0;
  const auto Interval =
      OpenLoop ? std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(
                         static_cast<double>(Opts.Connections) / Opts.Rate))
               : Clock::duration::zero();
  Clock::time_point NextSend =
      Clock::now() + (OpenLoop ? Interval * static_cast<int>(WorkerIndex) /
                                     static_cast<int>(Opts.Connections)
                               : Clock::duration::zero());

  while (Clock::now() < Deadline) {
    Clock::time_point ScheduledAt = Clock::now();
    if (OpenLoop) {
      std::this_thread::sleep_until(NextSend);
      ScheduledAt = NextSend; // Charge queueing delay to the server.
      NextSend += Interval;
    }

    std::string Request = requestLine(Opts, ++Id);
    if (std::optional<Error> E = sendAll(*Sock, Request)) {
      ++Out.TransportErrors;
      return;
    }
    if (!recvLine(*Sock, Framer, Line)) {
      ++Out.TransportErrors;
      return;
    }
    Clock::time_point Done = Clock::now();
    if (Done <= WarmupEnd)
      continue; // Warmup: exercised but not measured.

    double LatencyMs =
        std::chrono::duration<double, std::milli>(Done - ScheduledAt).count();
    ++Out.Sent;
    Expected<Json> Response = Json::parse(Line);
    if (!Response || !Response->isObject()) {
      ++Out.ErrorResponses;
      continue;
    }
    Expected<bool> Ok = getBool(*Response, "ok");
    if (Ok && *Ok) {
      ++Out.Ok;
      Out.LatenciesMs.push_back(LatencyMs);
      Out.Stats.add(LatencyMs);
      continue;
    }
    Expected<const Json *> ErrorDoc = getObject(*Response, "error");
    Expected<std::string> Code =
        ErrorDoc ? getString(**ErrorDoc, "code")
                 : Expected<std::string>(Error("no error member"));
    if (Code && *Code == "overloaded")
      ++Out.Shed;
    else
      ++Out.ErrorResponses;
  }
}

} // namespace

int main(int Argc, char **Argv) {
  LoadgenOptions Opts;
  std::string InputText;
  std::string OutPath = "BENCH_serving.json";
  TelemetryOptions Telemetry;

  FlagParser Flags;
  Flags.addFlag("host", &Opts.Host, "Server address");
  Flags.addFlag("port", &Opts.Port, "Server TCP port (required)");
  Flags.addFlag("app", &Opts.App,
                "Application to request (default: the server's sole app)");
  Flags.addFlag("budget", &Opts.Budget, "QoS budget sent in every request");
  Flags.addFlag("input", &InputText,
                "Comma-separated input values (default: the artifact's "
                "recorded production input)");
  Flags.addFlag("confidence", &Opts.Confidence,
                "Confidence level sent in every request");
  Flags.addFlag("aggressive", &Opts.Aggressive,
                "Request point predictions instead of conservative bounds");
  Flags.addFlag("connections", &Opts.Connections,
                "Concurrent client connections (one thread each)");
  Flags.addFlag("duration-s", &Opts.DurationS,
                "Measurement window after warmup");
  Flags.addFlag("warmup-s", &Opts.WarmupS,
                "Traffic sent and discarded before measuring");
  Flags.addFlag("rate", &Opts.Rate,
                "Total offered requests/sec across all connections "
                "(open loop); 0 = closed loop at peak throughput");
  Flags.addFlag("connect-retries", &Opts.ConnectRetries,
                "Connection attempts (100 ms apart) before giving up");
  Flags.addFlag("recv-timeout-ms", &Opts.RecvTimeoutMs,
                "Per-response receive timeout");
  Flags.addFlag("out", &OutPath, "Machine-readable summary path");
  addTelemetryFlags(Flags, Telemetry);
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (!initTelemetry(Telemetry))
    return 1;
  if (Opts.Port <= 0 || Opts.Port > 65535) {
    std::fprintf(stderr, "error: --port is required (1-65535)\n");
    return 1;
  }
  if (Opts.Connections < 1 || Opts.DurationS <= 0.0 || Opts.WarmupS < 0.0) {
    std::fprintf(stderr,
                 "error: --connections must be positive, --duration-s > 0, "
                 "--warmup-s >= 0\n");
    return 1;
  }
  for (const std::string &Field : split(InputText, ',')) {
    if (trim(Field).empty())
      continue;
    double Value = 0.0;
    if (!parseDouble(trim(Field), Value)) {
      std::fprintf(stderr, "error: bad input value '%s'\n", Field.c_str());
      return 1;
    }
    Opts.Input.push_back(Value);
  }

  const bool OpenLoop = Opts.Rate > 0.0;
  std::printf("loadgen: %s loop, %ld connections against %s:%ld, "
              "%.3gs warmup + %.3gs measurement%s\n",
              OpenLoop ? "open" : "closed", Opts.Connections,
              Opts.Host.c_str(), Opts.Port, Opts.WarmupS, Opts.DurationS,
              OpenLoop ? format(" at %.0f req/s", Opts.Rate).c_str() : "");
  std::fflush(stdout);

  Clock::time_point Start = Clock::now();
  Clock::time_point WarmupEnd =
      Start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(Opts.WarmupS));
  Clock::time_point Deadline =
      WarmupEnd + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(Opts.DurationS));

  std::vector<WorkerResult> Results(static_cast<size_t>(Opts.Connections));
  std::vector<std::thread> Workers;
  for (size_t W = 0; W < static_cast<size_t>(Opts.Connections); ++W)
    Workers.emplace_back(workerLoop, std::cref(Opts), W, WarmupEnd, Deadline,
                         std::ref(Results[W]));
  for (std::thread &T : Workers)
    T.join();
  double MeasuredS =
      std::chrono::duration<double>(Clock::now() - WarmupEnd).count();

  WorkerResult Total;
  for (const WorkerResult &R : Results) {
    Total.LatenciesMs.insert(Total.LatenciesMs.end(), R.LatenciesMs.begin(),
                             R.LatenciesMs.end());
    Total.Stats.merge(R.Stats);
    Total.Sent += R.Sent;
    Total.Ok += R.Ok;
    Total.ErrorResponses += R.ErrorResponses;
    Total.Shed += R.Shed;
    Total.TransportErrors += R.TransportErrors;
  }
  if (Total.Ok == 0) {
    std::fprintf(stderr,
                 "error: no successful responses measured (%zu transport "
                 "errors, %zu error responses, %zu shed)\n",
                 Total.TransportErrors, Total.ErrorResponses, Total.Shed);
    return 1;
  }

  double Rps = static_cast<double>(Total.Ok) / MeasuredS;
  double ShedRate = Total.Sent
                        ? static_cast<double>(Total.Shed) /
                              static_cast<double>(Total.Sent)
                        : 0.0;
  double P50 = quantile(Total.LatenciesMs, 0.50);
  double P90 = quantile(Total.LatenciesMs, 0.90);
  double P99 = quantile(Total.LatenciesMs, 0.99);
  double P999 = quantile(Total.LatenciesMs, 0.999);
  // 95% confidence half-width of the mean latency, the nperf-style
  // "is this run long enough" indicator: rerun longer when it is not
  // small against the mean.
  double Ci95 = Total.Stats.count() > 1
                    ? 1.96 * Total.Stats.stddev() /
                          std::sqrt(static_cast<double>(Total.Stats.count()))
                    : 0.0;

  std::printf("requests: %zu ok, %zu shed, %zu errors, %zu transport "
              "errors\n",
              Total.Ok, Total.Shed, Total.ErrorResponses,
              Total.TransportErrors);
  std::printf("throughput: %.0f req/s over %.3gs\n", Rps, MeasuredS);
  std::printf("latency ms: mean %.3f +- %.3f (95%% CI), p50 %.3f, p90 %.3f, "
              "p99 %.3f, p999 %.3f, max %.3f\n",
              Total.Stats.mean(), Ci95, P50, P90, P99, P999,
              Total.Stats.max());
  if (ShedRate > 0.0)
    std::printf("shed rate: %.2f%% -- offered load exceeds capacity\n",
                ShedRate * 100.0);

  Json LatencyMs = Json::object();
  LatencyMs.set("mean", Total.Stats.mean());
  LatencyMs.set("ci95_halfwidth", Ci95);
  LatencyMs.set("stddev", Total.Stats.stddev());
  LatencyMs.set("min", Total.Stats.min());
  LatencyMs.set("max", Total.Stats.max());
  LatencyMs.set("p50", P50);
  LatencyMs.set("p90", P90);
  LatencyMs.set("p99", P99);
  LatencyMs.set("p999", P999);

  // Server-side cache effectiveness: one stats request on a fresh
  // connection after the run. Omitted (not fatal) when the server
  // predates the stats verb.
  Json ServerCache;
  Json StageAttribution;
  {
    Expected<Socket> StatsSock = connectWithRetries(Opts);
    if (StatsSock) {
      Json StatsReq = Json::object();
      StatsReq.set("id", static_cast<long>(0));
      StatsReq.set("stats", true);
      LineFramer Framer(1 << 20);
      std::string Line;
      if (!sendAll(*StatsSock, StatsReq.dump() + "\n").has_value() &&
          recvLine(*StatsSock, Framer, Line)) {
        Expected<Json> Response = Json::parse(Line);
        if (Response) {
          if (const Json *Result = Response->find("result")) {
            // Server-side stage attribution (docs/OBSERVABILITY.md): the
            // serve.stage_ms.* histograms partition serve.request_ms, so
            // their sums say where server time went during the run.
            // Lifetime counters, not run-windowed, like server_cache.
            if (const Json *Hists = Result->find("histograms")) {
              static constexpr const char *StageNames[] = {
                  "parse", "plan", "lookup", "compute", "serialize"};
              Json Stages = Json::object();
              double SumTotal = 0.0;
              for (const char *Stage : StageNames)
                if (const Json *H = Hists->find(
                        std::string("serve.stage_ms.") + Stage))
                  if (const Json *Sum = H->find("sum"))
                    SumTotal += Sum->asNumber();
              for (const char *Stage : StageNames) {
                const Json *H =
                    Hists->find(std::string("serve.stage_ms.") + Stage);
                if (!H)
                  continue;
                Json Entry = Json::object();
                for (const char *Key :
                     {"count", "sum", "mean", "p50", "p95", "p99"})
                  if (const Json *V = H->find(Key))
                    Entry.set(Key, V->asNumber());
                double Sum = 0.0;
                if (const Json *V = H->find("sum"))
                  Sum = V->asNumber();
                Entry.set("share", SumTotal > 0.0 ? Sum / SumTotal : 0.0);
                Stages.set(Stage, std::move(Entry));
              }
              if (Stages.size() > 0) {
                StageAttribution = std::move(Stages);
                std::printf("server stages:");
                for (const auto &[Stage, Entry] :
                     StageAttribution.members()) {
                  const Json *Share = Entry.find("share");
                  std::printf(" %s %.1f%%", Stage.c_str(),
                              (Share ? Share->asNumber() : 0.0) * 100.0);
                }
                std::printf("\n");
              }
            }
            if (const Json *Cache = Result->find("cache")) {
              double Hits = 0.0, Misses = 0.0;
              if (const Json *H = Cache->find("hits"))
                Hits = H->asNumber();
              if (const Json *M = Cache->find("misses"))
                Misses = M->asNumber();
              ServerCache = *Cache;
              ServerCache.set("hit_rate", Hits + Misses > 0.0
                                              ? Hits / (Hits + Misses)
                                              : 0.0);
              std::printf("server cache: %.0f hits, %.0f misses "
                          "(hit rate %.3f)\n",
                          Hits, Misses,
                          Hits + Misses > 0.0 ? Hits / (Hits + Misses)
                                              : 0.0);
            }
          }
        }
      }
    }
  }

  Json Out = Json::object();
  Out.set("schema", "opprox.bench.serving.v1");
  Out.set("mode", OpenLoop ? "open" : "closed");
  Out.set("connections", Opts.Connections);
  Out.set("target_rps", Opts.Rate);
  Out.set("warmup_s", Opts.WarmupS);
  Out.set("duration_s", MeasuredS);
  Out.set("requests", Total.Sent);
  Out.set("ok", Total.Ok);
  Out.set("shed", Total.Shed);
  Out.set("errors", Total.ErrorResponses);
  Out.set("transport_errors", Total.TransportErrors);
  Out.set("rps", Rps);
  Out.set("shed_rate", ShedRate);
  Out.set("latency_ms", std::move(LatencyMs));
  if (ServerCache.isObject())
    Out.set("server_cache", std::move(ServerCache));
  if (StageAttribution.isObject())
    Out.set("stage_attribution", std::move(StageAttribution));
  if (std::optional<Error> E = writeFile(OutPath, Out.dump(2) + "\n")) {
    std::fprintf(stderr, "error: %s\n", E->message().c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());
  return 0;
}
