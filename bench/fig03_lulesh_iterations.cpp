//===- bench/fig03_lulesh_iterations.cpp ----------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Fig. 3: variation in the number of outer-loop iterations of LULESH
// under different approximation-level combinations. The exact run is
// calibrated near the paper's 921; approximate runs move both below and
// above it.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Sampler.h"
#include "support/Statistics.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig03",
         "LULESH: outer-loop iteration count vs. approximation setting "
         "(paper Fig. 3; exact run = 921 iterations there)");
  auto App = createApp("lulesh");
  GoldenCache Golden(*App);
  const std::vector<double> Input = App->defaultInput();
  const RunResult &Exact = Golden.exactRun(Input);
  std::printf("exact run: %zu iterations\n\n", Exact.OuterIterations);

  Rng R(0xF193);
  SamplingPlan Plan = makeSamplingPlan(App->maxLevels(), 40, R);

  Table T({"config", "levels", "outer_iterations", "delta_vs_exact"});
  RunningStats Stats;
  size_t Above = 0, Below = 0;
  size_t Index = 0;
  Plan.forEach([&](const std::vector<int> &Levels) {
    PhaseSchedule S = PhaseSchedule::uniform(1, Levels);
    RunResult Run = App->run(Input, S, Exact.OuterIterations);
    long Delta = static_cast<long>(Run.OuterIterations) -
                 static_cast<long>(Exact.OuterIterations);
    Above += Delta > 0;
    Below += Delta < 0;
    Stats.add(static_cast<double>(Run.OuterIterations));
    std::string LevelStr;
    for (size_t B = 0; B < Levels.size(); ++B)
      LevelStr += (B ? "," : "") + std::to_string(Levels[B]);
    T.beginRow();
    T.addCell(static_cast<long>(Index++));
    T.addCell(LevelStr);
    T.addCell(Run.OuterIterations);
    T.addCell(Delta);
  });
  emit("fig03", T);
  std::printf("iteration range across %zu configs: [%.0f, %.0f] "
              "(exact %zu); %zu configs above, %zu below\n",
              Stats.count(), Stats.min(), Stats.max(),
              Exact.OuterIterations, Above, Below);
  return 0;
}
