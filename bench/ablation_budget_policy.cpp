//===- bench/ablation_budget_policy.cpp -----------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Ablation (DESIGN.md Sec. 5): the paper allocates the QoS budget across
// phases proportional to ROI (Eq. 1) and calls the split a replaceable
// policy. This bench compares ROI-proportional allocation against a
// uniform split and a greedy highest-ROI-takes-all policy on ground
// truth.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/StringUtils.h"
#include "core/Optimizer.h"

using namespace opprox;
using namespace opprox::bench;

namespace {

/// Re-implements the outer loop of Algorithm 2 with a pluggable share
/// function so alternative policies reuse the same per-phase search.
PhaseSchedule optimizeWithShares(const Opprox &Tuner,
                                 const std::vector<double> &Input,
                                 double Budget,
                                 const std::vector<double> &Shares) {
  const AppModel &Model = Tuner.model();
  std::vector<int> MaxLevels = Tuner.app().maxLevels();
  PhaseSchedule S(Model.numPhases(), MaxLevels.size());
  size_t Evaluated = 0;
  OptimizeOptions Opts;
  for (size_t P = 0; P < Model.numPhases(); ++P) {
    PhaseDecision D =
        optimizePhase(Model.phaseModels(Input, P), Input, MaxLevels,
                      Budget * Shares[P], Opts, Evaluated);
    S.setPhaseLevels(P, D.Levels);
  }
  return S;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("ablation_budget_policy",
         "Budget-split policies: ROI-proportional (paper) vs uniform vs "
         "greedy, ground-truth outcomes");

  Table T({"app", "budget_pct", "policy", "speedup", "qos_pct"});
  for (const std::string &Name : {"pso", "lulesh", "ffmpeg"}) {
    auto App = createApp(Name);
    OpproxTrainOptions Opts;
    Opts.Profiling.RandomJointSamples = 24;
    Opprox Tuner = trainBench(*App, Opts, Bench);
    const std::vector<double> Input = App->defaultInput();
    size_t N = Tuner.numPhases();

    for (double Budget : {5.0, 20.0}) {
      // Paper policy: ROI-proportional with leftover redistribution.
      {
        PhaseSchedule S = Tuner.optimize(Input, Budget);
        EvalOutcome E = evaluateSchedule(*App, Tuner.golden(), Input, S);
        T.addRow({Name, format("%.0f", Budget), "roi_proportional",
                  format("%.3f", E.Speedup),
                  format("%.2f", E.QosDegradation)});
      }
      // Uniform split.
      {
        std::vector<double> Shares(N, 1.0 / static_cast<double>(N));
        PhaseSchedule S = optimizeWithShares(Tuner, Input, Budget, Shares);
        EvalOutcome E = evaluateSchedule(*App, Tuner.golden(), Input, S);
        T.addRow({Name, format("%.0f", Budget), "uniform",
                  format("%.3f", E.Speedup),
                  format("%.2f", E.QosDegradation)});
      }
      // Greedy: the highest-ROI phase takes the entire budget.
      {
        std::vector<double> Shares(N, 0.0);
        size_t Best = 0;
        for (size_t P = 1; P < N; ++P)
          if (Tuner.model().phaseModels(Input, P).roi() >
              Tuner.model().phaseModels(Input, Best).roi())
            Best = P;
        Shares[Best] = 1.0;
        PhaseSchedule S = optimizeWithShares(Tuner, Input, Budget, Shares);
        EvalOutcome E = evaluateSchedule(*App, Tuner.golden(), Input, S);
        T.addRow({Name, format("%.0f", Budget), "greedy_top_roi",
                  format("%.3f", E.Speedup),
                  format("%.2f", E.QosDegradation)});
      }
    }
  }
  emit("ablation_budget_policy", T);
  return 0;
}
