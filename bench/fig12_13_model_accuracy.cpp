//===- bench/fig12_13_model_accuracy.cpp ----------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Figs. 12 and 13: prediction accuracy of the QoS-degradation and
// speedup models. As in the paper, profiled data is split 50/50 into
// train/test; models fit on the first half predict the second, and we
// report actual-vs-predicted pairs plus the R^2 per application.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/AppModel.h"
#include "core/Profiler.h"
#include "ml/CrossValidation.h"
#include "support/Statistics.h"
#include <cmath>

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig12_13",
         "Actual vs. predicted QoS degradation (Fig. 12) and speedup "
         "(Fig. 13), 50/50 train/test split");

  Table Summary({"app", "r2_qos", "r2_speedup", "r2_qos_log",
                 "r2_speedup_log", "test_samples"});
  for (const std::string &Name : allAppNames()) {
    auto App = createApp(Name);
    GoldenCache Golden(*App);
    Profiler Prof(*App, Golden);
    ProfileOptions POpts;
    POpts.NumPhases = 4;
    POpts.RandomJointSamples = 24;
    POpts.NumThreads = Bench.Threads;
    TrainingSet All = Prof.collect(App->trainingInputs(), POpts);

    // 50/50 split, per the paper's Sec. 5.2.
    Rng SplitRng(0xF1213);
    std::vector<size_t> TrainIdx, TestIdx;
    trainTestSplit(All.size(), 0.5, SplitRng, TrainIdx, TestIdx);
    TrainingSet Train, Test;
    for (size_t I : TrainIdx)
      Train.add(All[I]);
    for (size_t I : TestIdx)
      Test.add(All[I]);

    AppModel Model =
        ModelBuilder::build(Train, 4, App->numBlocks(), ModelBuildOptions());

    std::vector<double> ActualQos, PredQos, ActualSp, PredSp;
    Table Points({"phase", "actual_qos", "predicted_qos", "actual_speedup",
                  "predicted_speedup"});
    for (size_t I = 0; I < Test.size(); ++I) {
      const TrainingSample &S = Test[I];
      if (S.Phase == AllPhases)
        continue; // The per-phase models do not cover uniform runs.
      const PhaseModels &PM = Model.phaseModelsForClass(
          S.ControlFlowClass, static_cast<size_t>(S.Phase));
      double PQ = PM.predictQos(S.Input, S.Levels);
      double PS = PM.predictSpeedup(S.Input, S.Levels);
      ActualQos.push_back(S.QosDegradation);
      PredQos.push_back(PQ);
      ActualSp.push_back(S.Speedup);
      PredSp.push_back(PS);
      Points.beginRow();
      Points.addCell(static_cast<long>(S.Phase));
      Points.addCell(S.QosDegradation, 3);
      Points.addCell(PQ, 3);
      Points.addCell(S.Speedup, 3);
      Points.addCell(PS, 3);
    }
    emit("fig12_13_" + Name + "_points", Points);

    // Log-space R^2 matches the space the models are fit in and is not
    // dominated by a handful of cliff outliers.
    auto LogAll = [](std::vector<double> V) {
      for (double &X : V)
        X = std::log1p(std::max(X, 0.0));
      return V;
    };
    Summary.beginRow();
    Summary.addCell(Name);
    Summary.addCell(r2Score(ActualQos, PredQos), 3);
    Summary.addCell(r2Score(ActualSp, PredSp), 3);
    Summary.addCell(r2Score(LogAll(ActualQos), LogAll(PredQos)), 3);
    Summary.addCell(r2Score(LogAll(ActualSp), LogAll(PredSp)), 3);
    Summary.addCell(static_cast<long>(ActualQos.size()));
  }
  emit("fig12_13_summary", Summary);
  std::printf("paper reference: speedup models very accurate everywhere; "
              "QoS models weaker for LULESH, Bodytrack, CoMD (Fig. 12)\n");
  return 0;
}
