//===- bench/fig14_budget_comparison.cpp ----------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Fig. 14 -- the headline experiment: OPPROX's phase-aware optimization
// vs. the phase-agnostic exhaustive oracle of prior work, at the
// small/medium/large QoS budgets (5% / 10% / 20%; for FFmpeg the paper
// uses PSNR targets 30/20/10 dB, which our PSNR<->degradation mapping
// makes the same three budgets). Speedups are ground truth: the chosen
// schedule/configuration is actually executed.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/OracleBaseline.h"
#include "support/Statistics.h"
#include "support/Timer.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig14",
         "OPPROX (phase-aware) vs. phase-agnostic exhaustive oracle at "
         "5/10/20% budgets (paper Fig. 14)");

  const std::vector<double> Budgets = {5.0, 10.0, 20.0};
  Table T({"app", "budget_pct", "opprox_speedup", "opprox_qos_pct",
           "oracle_speedup", "oracle_qos_pct", "oracle_found"});
  // speedup-percent = (speedup - 1) * 100, the paper's "X% speedup".
  std::map<double, RunningStats> OpproxPct, OraclePct;

  for (const std::string &Name : allAppNames()) {
    auto App = createApp(Name);
    Timer Train;
    OpproxTrainOptions Opts;
    Opprox Tuner = trainBench(*App, Opts, Bench);
    std::printf("[%s] trained in %.1fs (%zu runs, %zu phases)\n",
                Name.c_str(), Train.seconds(), Tuner.trainingRuns(),
                Tuner.numPhases());

    const std::vector<double> Input = App->defaultInput();
    Timer OracleTimer;
    std::vector<MeasuredConfig> Measured =
        measureAllUniformConfigs(*App, Tuner.golden(), Input);
    std::printf("[%s] oracle measured %zu uniform configs in %.1fs\n",
                Name.c_str(), Measured.size(), OracleTimer.seconds());

    for (double Budget : Budgets) {
      // Validated optimization: per-phase models assume cross-phase
      // additivity; the validation pass (see Opprox::optimizeValidated)
      // withdraws over-budget phases using at most a handful of runs.
      PhaseSchedule S = Tuner.optimizeValidated(Input, Budget);
      EvalOutcome Truth =
          evaluateSchedule(*App, Tuner.golden(), Input, S);
      OracleResult Oracle = selectOracle(Measured, Budget);
      T.beginRow();
      T.addCell(Name);
      T.addCell(Budget, 0);
      T.addCell(Truth.Speedup, 3);
      T.addCell(Truth.QosDegradation, 2);
      T.addCell(Oracle.Best.Speedup, 3);
      T.addCell(Oracle.Best.QosDegradation, 2);
      T.addCell(std::string(Oracle.FoundNonTrivial ? "yes" : "no"));
      OpproxPct[Budget].add(100.0 * (Truth.Speedup - 1.0));
      OraclePct[Budget].add(100.0 * (Oracle.Best.Speedup - 1.0));
    }
  }
  emit("fig14", T);

  Table Avg({"budget_pct", "opprox_mean_speedup_pct",
             "oracle_mean_speedup_pct"});
  for (double Budget : Budgets) {
    Avg.beginRow();
    Avg.addCell(Budget, 0);
    Avg.addCell(OpproxPct[Budget].mean(), 1);
    Avg.addCell(OraclePct[Budget].mean(), 1);
  }
  emit("fig14_average", Avg);
  std::printf("paper reference: 14%% vs 2%% at the 5%% budget, 42%% vs 37%% "
              "at the 20%% budget (average across apps)\n");
  return 0;
}
