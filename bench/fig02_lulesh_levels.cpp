//===- bench/fig02_lulesh_levels.cpp --------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Fig. 2: both speedup and error increase with the approximation level
// of each LULESH block (each block swept individually, all others
// exact, applied uniformly across the run).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "approx/WorkCounter.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig02",
         "LULESH: speedup and QoS degradation vs. per-block approximation "
         "level (paper Fig. 2)");
  auto App = createApp("lulesh");
  GoldenCache Golden(*App);
  const std::vector<double> Input = App->defaultInput();
  const RunResult &Exact = Golden.exactRun(Input);

  Table T({"block", "level", "speedup", "qos_degradation_pct",
           "outer_iterations"});
  for (size_t B = 0; B < App->numBlocks(); ++B) {
    for (int L = 0; L <= App->blocks()[B].MaxLevel; ++L) {
      std::vector<int> Levels(App->numBlocks(), 0);
      Levels[B] = L;
      PhaseSchedule S = PhaseSchedule::uniform(1, Levels);
      RunResult R = App->run(Input, S, Exact.OuterIterations);
      T.beginRow();
      T.addCell(App->blocks()[B].Name);
      T.addCell(static_cast<long>(L));
      T.addCell(speedupOf(Exact.WorkUnits, R.WorkUnits), 3);
      T.addCell(App->qosDegradation(Exact, R), 3);
      T.addCell(R.OuterIterations);
    }
  }
  emit("fig02", T);
  return 0;
}
