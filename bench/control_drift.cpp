//===- bench/control_drift.cpp - Online-controller drift sweep ------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// The control loop's headline experiment: inject mid-run QoS drift that
// the offline schedule cannot see, and measure how the online controller
// (src/control) recovers versus the untouched offline schedule, across
// every mini-app. Three records per app:
//
//  - a drift sweep (sudden + gradual x magnitudes) over the scripted
//    model-space simulator: offline vs controlled final QoS,
//    within-budget flags, and the controller's correction counts;
//  - the zero-drift no-op check: with no drift the controller must leave
//    the offline schedule bit-identical (and make zero corrections);
//  - the detected-vs-static comparison: a drifted ground-truth run
//    delivered through the runtime PhaseDetector as interval samples
//    instead of at known static boundaries.
//
// The sweep deliberately runs the *model-trusting* regime: aggressive
// point-prediction planning (so the schedule actually packs the budget
// across phases -- conservative planning at bench-sized training leaves
// most phases exact, and a drifted exact phase observes nothing),
// DistrustFactor 0 (pure point tracking: the cheap models' confidence
// intervals are vacuously wide, so any CI-scaled band is deaf by
// construction), and RatioAlpha 1 (a constant multiplicative drift is
// fully discounted at the first correction). The runtime defaults stay
// conservative; these are experiment knobs, all plumbed through
// ControllerOptions.
//
// Every simulated quantity is a pure function of (artifact, input,
// budget, DriftSpec), so reruns at the same seed reproduce the same
// numbers bit for bit. The machine-readable summary (--out, default
// BENCH_control.json, schema opprox.bench.control.v1) is what the CI
// control-smoke job asserts on: corrections > 0 under injected drift,
// corrections == 0 and bit-identity without.
//
//   control_drift [--apps pso,comd] [--samples 8] [--budget 10]
//                 [--out BENCH_control.json]
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "control/ControlSim.h"
#include "support/CommandLine.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

using namespace opprox;
using namespace opprox::bench;
using namespace opprox::control;

namespace {

const char *kindName(DriftSpec::Kind K) {
  switch (K) {
  case DriftSpec::Kind::None:
    return "none";
  case DriftSpec::Kind::Sudden:
    return "sudden";
  case DriftSpec::Kind::Gradual:
    return "gradual";
  case DriftSpec::Kind::Noise:
    return "noise";
  case DriftSpec::Kind::Misclassify:
    return "misclassify";
  }
  return "?";
}

Json statsJson(const ControllerStats &S) {
  Json Out = Json::object();
  Out.set("observations", S.Observations);
  Out.set("distrusts", S.Distrusts);
  Out.set("resolves", S.Resolves);
  Out.set("corrections", S.Corrections);
  Out.set("rejected_resolves", S.RejectedResolves);
  Out.set("dropped_observations", S.DroppedObservations);
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  std::string AppsText;
  std::string OutPath = "BENCH_control.json";
  double Budget = 10.0;
  long Samples = 0; // 0 keeps the trainer's default sampling density.
  long Threads = 0;
  std::string ArtifactDir;
  TelemetryOptions Telemetry;

  FlagParser Flags;
  Flags.addFlag("apps", &AppsText,
                "comma-separated mini-app subset (default: all five)");
  Flags.addFlag("budget", &Budget, "QoS degradation budget in percent");
  Flags.addFlag("samples", &Samples,
                "random joint samples per training input (0 = default; "
                "lower it for smoke runs)");
  Flags.addFlag("threads", &Threads,
                "measurement/fit parallelism (0 = auto via OPPROX_THREADS)");
  Flags.addFlag("artifact-dir", &ArtifactDir,
                "cache trained models here as versioned artifacts");
  Flags.addFlag("out", &OutPath, "machine-readable summary path");
  addTelemetryFlags(Flags, Telemetry);
  if (!Flags.parse(Argc, Argv))
    return 1;
  if (!initTelemetry(Telemetry))
    return 1;

  BenchOptions Bench;
  Bench.Threads = static_cast<size_t>(Threads < 0 ? 0 : Threads);
  Bench.ArtifactDir = ArtifactDir;
  if (const char *Dir = std::getenv("OPPROX_ARTIFACT_DIR"))
    if (Bench.ArtifactDir.empty())
      Bench.ArtifactDir = Dir;

  std::vector<std::string> Apps;
  if (AppsText.empty()) {
    Apps = allAppNames();
  } else {
    for (const std::string &Field : split(AppsText, ','))
      Apps.push_back(trim(Field));
  }

  banner("control_drift",
         format("online controller vs offline schedule under injected QoS "
                "drift, %.3g%% budget", Budget));

  const std::vector<DriftSpec::Kind> Kinds = {DriftSpec::Kind::Sudden,
                                              DriftSpec::Kind::Gradual};
  // Up to 16x: apps whose remaining-phase QoS is tiny (lulesh packs
  // nearly everything into phase 0) need extreme drift before the
  // offline schedule violates at all.
  const std::vector<double> Magnitudes = {0.0, 0.25, 0.5, 1.0,
                                          2.0, 4.0,  8.0, 16.0};
  // Drift beginning at the first phase vs mid-run: both sunk-cost
  // overruns (nothing left to withdraw) and correctable tails appear.
  const std::vector<double> Onsets = {0.0, 0.5};

  Table T({"app", "drift", "onset", "magnitude", "offline_qos_pct",
           "controlled_qos_pct", "offline_in_budget", "controlled_in_budget",
           "resolves", "corrections"});
  Json Out = Json::object();
  Out.set("schema", "opprox.bench.control.v1");
  Out.set("budget", Budget);
  Json AppDocs = Json::array();

  size_t CorrectionsUnderDrift = 0;
  size_t CorrectionsZeroDrift = 0;
  bool AllZeroDriftIdentical = true;
  bool AllAppsRecovered = true;
  int Failures = 0;

  for (const std::string &Name : Apps) {
    auto App = createApp(Name);
    if (!App) {
      std::fprintf(stderr, "error: unknown app '%s'\n", Name.c_str());
      return 1;
    }
    Timer Train;
    OpproxTrainOptions TrainOpts;
    if (Samples > 0)
      TrainOpts.Profiling.RandomJointSamples = static_cast<size_t>(Samples);
    Opprox Tuner = trainBench(*App, TrainOpts, Bench);
    std::printf("[%s] trained in %.1fs (%zu runs, %zu phases)\n",
                Name.c_str(), Train.seconds(), Tuner.trainingRuns(),
                Tuner.numPhases());
    const std::vector<double> Input = App->defaultInput();
    const OpproxRuntime &Rt = Tuner.runtime();

    Json AppDoc = Json::object();
    AppDoc.set("app", Name);
    AppDoc.set("phases", Tuner.numPhases());

    // The sweep's controller configuration: the model-trusting regime
    // described in the file comment.
    ControllerOptions Ctrl;
    Ctrl.Optimize.Conservative = false;
    Ctrl.DistrustFactor = 0.0;
    Ctrl.RatioAlpha = 1.0;

    // Zero-drift no-op: the scripted simulator feeds back exactly the
    // model's own point predictions, so the controller must never leave
    // its trust band -- final schedule bit-identical to offline, zero
    // corrections.
    DriftSpec NoDrift;
    Expected<SimOutcome> Clean =
        runScriptedSim(Rt, Input, Budget, NoDrift, Ctrl);
    if (!Clean) {
      std::fprintf(stderr, "error: [%s] %s\n", Name.c_str(),
                   Clean.error().message().c_str());
      return 1;
    }
    bool Identical = Clean->FinalSchedule.toString() ==
                     Clean->OfflineSchedule.toString();
    AllZeroDriftIdentical = AllZeroDriftIdentical && Identical;
    CorrectionsZeroDrift += Clean->Stats.Corrections;
    AppDoc.set("zero_drift_bit_identical", Identical);
    AppDoc.set("zero_drift", statsJson(Clean->Stats));

    // The drift sweep, in model space: observed QoS is the model's own
    // point prediction under the levels each phase actually runs, times
    // the injected drift factor -- every row a pure function of
    // (artifact, input, budget, spec).
    Json Sweep = Json::array();
    // Does some scenario the offline schedule violates come back within
    // budget under control? This is the headline recovery claim; rows
    // where the overrun is sunk cost (one drifted phase blows the whole
    // budget by itself, leaving nothing to withdraw) legitimately stay
    // over, which is why the claim is existential per app.
    bool Recovered = false;
    for (DriftSpec::Kind Kind : Kinds) {
      for (double Onset : Onsets) {
        for (double Magnitude : Magnitudes) {
          if (Magnitude == 0.0 && Onset != Onsets.front())
            continue; // Zero drift is onset-independent; one row suffices.
          DriftSpec Drift;
          Drift.DriftKind = Kind;
          Drift.Magnitude = Magnitude;
          Drift.Onset = Onset;
          Expected<SimOutcome> Sim =
              runScriptedSim(Rt, Input, Budget, Drift, Ctrl);
          if (!Sim) {
            std::fprintf(stderr, "error: [%s] %s\n", Name.c_str(),
                         Sim.error().message().c_str());
            return 1;
          }
          bool OfflineIn = Sim->OfflineQos <= Budget;
          bool ControlledIn = Sim->ControlledQos <= Budget;
          Recovered = Recovered || (!OfflineIn && ControlledIn);
          if (Magnitude > 0.0)
            CorrectionsUnderDrift += Sim->Stats.Corrections;
          else
            CorrectionsZeroDrift += Sim->Stats.Corrections;

          T.beginRow();
          T.addCell(Name);
          T.addCell(std::string(kindName(Kind)));
          T.addCell(Onset, 2);
          T.addCell(Magnitude, 2);
          T.addCell(Sim->OfflineQos, 3);
          T.addCell(Sim->ControlledQos, 3);
          T.addCell(std::string(OfflineIn ? "yes" : "NO"));
          T.addCell(std::string(ControlledIn ? "yes" : "NO"));
          T.addCell(Sim->Stats.Resolves);
          T.addCell(Sim->Stats.Corrections);

          Json Row = Json::object();
          Row.set("kind", kindName(Kind));
          Row.set("onset", Onset);
          Row.set("magnitude", Magnitude);
          Row.set("offline_qos", Sim->OfflineQos);
          Row.set("controlled_qos", Sim->ControlledQos);
          Row.set("offline_within_budget", OfflineIn);
          Row.set("controlled_within_budget", ControlledIn);
          Row.set("distrust_ratio", Sim->DistrustRatio);
          Row.set("stats", statsJson(Sim->Stats));
          Sweep.push(std::move(Row));
        }
      }
    }
    AppDoc.set("sweep", std::move(Sweep));
    AppDoc.set("recovered_a_violated_run", Recovered);
    AllAppsRecovered = AllAppsRecovered && Recovered;

    // Detected-vs-static: the same sudden drift, once at known static
    // phase boundaries and once chunked into interval samples the
    // PhaseDetector has to segment itself.
    DriftSpec Sudden;
    Sudden.DriftKind = DriftSpec::Kind::Sudden;
    Sudden.Magnitude = 1.0;
    Expected<SimOutcome> Static =
        runGroundTruthSim(*App, Tuner.golden(), Rt, Input, Budget, Sudden);
    Expected<SimOutcome> Detected =
        runDetectedSim(*App, Tuner.golden(), Rt, Input, Budget, Sudden);
    if (!Static || !Detected) {
      const Error &E = !Static ? Static.error() : Detected.error();
      std::fprintf(stderr, "error: [%s] %s\n", Name.c_str(),
                   E.message().c_str());
      return 1;
    }
    Json Compare = Json::object();
    Compare.set("drift_kind", kindName(Sudden.DriftKind));
    Compare.set("drift_magnitude", Sudden.Magnitude);
    Compare.set("static_controlled_qos", Static->ControlledQos);
    Compare.set("detected_controlled_qos", Detected->ControlledQos);
    Compare.set("detected_phases", Detected->DetectedPhases);
    Compare.set("model_phases", Tuner.numPhases());
    Compare.set("static_stats", statsJson(Static->Stats));
    Compare.set("detected_stats", statsJson(Detected->Stats));
    AppDoc.set("detected_vs_static", std::move(Compare));
    std::printf("[%s] detected %zu phases (model has %zu); controlled qos "
                "%.3g%% detected vs %.3g%% static\n",
                Name.c_str(), Detected->DetectedPhases, Tuner.numPhases(),
                Detected->ControlledQos, Static->ControlledQos);

    AppDocs.push(std::move(AppDoc));
  }
  emit("control_drift", T);

  Out.set("apps", std::move(AppDocs));
  Out.set("corrections_under_drift", CorrectionsUnderDrift);
  Out.set("corrections_zero_drift", CorrectionsZeroDrift);
  Out.set("zero_drift_bit_identical", AllZeroDriftIdentical);
  Out.set("all_apps_recovered", AllAppsRecovered);
  if (std::optional<Error> E = writeFile(OutPath, Out.dump(2) + "\n")) {
    std::fprintf(stderr, "error: %s\n", E->message().c_str());
    return 1;
  }
  std::printf("wrote %s\n", OutPath.c_str());

  if (!AllZeroDriftIdentical) {
    std::fprintf(stderr, "FAIL: a zero-drift run changed the schedule\n");
    ++Failures;
  }
  if (CorrectionsZeroDrift != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu corrections without drift (expected none)\n",
                 CorrectionsZeroDrift);
    ++Failures;
  }
  if (!AllAppsRecovered) {
    std::fprintf(stderr, "FAIL: an app never recovered a violated run to "
                         "within budget\n");
    ++Failures;
  }
  std::printf("controller corrections under drift: %zu (zero-drift: %zu)\n",
              CorrectionsUnderDrift, CorrectionsZeroDrift);
  return Failures == 0 ? 0 : 1;
}
