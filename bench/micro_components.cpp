//===- bench/micro_components.cpp -----------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Google-benchmark micro-benchmarks for the building blocks whose cost
// dominates training and optimization: polynomial regression fits,
// decision trees, MIC, per-application runs, and the per-phase discrete
// search.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/Sampler.h"
#include "ml/DecisionTree.h"
#include "ml/Mic.h"
#include "ml/PolynomialRegression.h"
#include <benchmark/benchmark.h>

using namespace opprox;

static void BM_PolynomialFit(benchmark::State &State) {
  Rng R(1);
  Dataset D({"a", "b", "c"});
  for (int I = 0; I < 500; ++I) {
    double A = R.uniform(), B = R.uniform(), C = R.uniform();
    D.addSample({A, B, C}, A + B * C + R.gaussian(0, 0.01));
  }
  PolynomialRegression::Options O;
  O.Degree = static_cast<int>(State.range(0));
  for (auto _ : State) {
    PolynomialRegression M = PolynomialRegression::fit(D, O);
    benchmark::DoNotOptimize(M.predict({0.5, 0.5, 0.5}));
  }
}
BENCHMARK(BM_PolynomialFit)->Arg(2)->Arg(4)->Arg(6);

static void BM_DecisionTreeFit(benchmark::State &State) {
  Rng R(2);
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int I = 0; I < static_cast<int>(State.range(0)); ++I) {
    double A = R.uniform(), B = R.uniform();
    X.push_back({A, B});
    Y.push_back(A + B > 1.0 ? 1 : 0);
  }
  for (auto _ : State) {
    DecisionTree T = DecisionTree::fit(X, Y);
    benchmark::DoNotOptimize(T.predict({0.3, 0.3}));
  }
}
BENCHMARK(BM_DecisionTreeFit)->Arg(100)->Arg(1000);

static void BM_Mic(benchmark::State &State) {
  Rng R(3);
  std::vector<double> X, Y;
  for (int I = 0; I < static_cast<int>(State.range(0)); ++I) {
    double V = R.uniform(-2, 2);
    X.push_back(V);
    Y.push_back(V * V + R.gaussian(0, 0.1));
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(mic(X, Y));
}
BENCHMARK(BM_Mic)->Arg(200)->Arg(1000);

static void BM_AppExactRun(benchmark::State &State,
                           const std::string &Name) {
  auto App = createApp(Name);
  for (auto _ : State)
    benchmark::DoNotOptimize(App->runExact(App->defaultInput()).WorkUnits);
}
BENCHMARK_CAPTURE(BM_AppExactRun, lulesh, std::string("lulesh"));
BENCHMARK_CAPTURE(BM_AppExactRun, comd, std::string("comd"));
BENCHMARK_CAPTURE(BM_AppExactRun, ffmpeg, std::string("ffmpeg"));
BENCHMARK_CAPTURE(BM_AppExactRun, bodytrack, std::string("bodytrack"));
BENCHMARK_CAPTURE(BM_AppExactRun, pso, std::string("pso"));

static void BM_EnumerateConfigs(benchmark::State &State) {
  std::vector<int> MaxLevels(static_cast<size_t>(State.range(0)), 5);
  for (auto _ : State)
    benchmark::DoNotOptimize(enumerateAllConfigs(MaxLevels).size());
}
BENCHMARK(BM_EnumerateConfigs)->Arg(3)->Arg(4);
