//===- bench/table2_overhead.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Table 2: OPPROX's training and optimization times as the phase
// granularity grows (1, 2, 4, 8 phases). Training cost grows with the
// number of phases (more per-phase probing runs and more models);
// optimization stays fast since each phase's discrete space is searched
// independently.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("table2",
         "Training and optimization time vs. phase granularity (paper "
         "Table 2)");

  Table T({"app", "phases", "training_sec", "optimization_sec",
           "training_runs"});
  for (const std::string &Name : allAppNames()) {
    for (size_t NumPhases : {1u, 2u, 4u, 8u}) {
      auto App = createApp(Name);
      OpproxTrainOptions Opts;
      Opts.NumPhases = NumPhases;
      Opts.Profiling.RandomJointSamples = 16;
      // training_sec is the measured quantity here, so no artifact
      // cache: a cached load would report load time as training cost.
      applyBenchOptions(Opts, Bench);
      // Table 2 reads the same instruments users get (train.total_ms,
      // optimize.ms) instead of a private stopwatch: the sum delta of
      // each histogram across the call is the stage's wall-clock.
      Histogram &TrainMs = MetricsRegistry::global().histogram("train.total_ms");
      Histogram &OptMs = MetricsRegistry::global().histogram("optimize.ms");
      double TrainBefore = TrainMs.sum();
      Opprox Tuner = Opprox::train(*App, Opts);
      double TrainSec = (TrainMs.sum() - TrainBefore) / 1e3;

      double OptBefore = OptMs.sum();
      (void)Tuner.optimize(App->defaultInput(), 10.0);
      double OptSec = (OptMs.sum() - OptBefore) / 1e3;

      T.beginRow();
      T.addCell(Name);
      T.addCell(static_cast<long>(NumPhases));
      T.addCell(TrainSec, 2);
      T.addCell(OptSec, 4);
      T.addCell(static_cast<long>(Tuner.trainingRuns()));
    }
  }
  emit("table2", T);
  std::printf("paper reference: training 165s-16038s, optimization "
              "1.3s-41.7s on their testbed; shapes (growth with phase "
              "count) are what transfers\n");
  return 0;
}
