//===- bench/table1_search_space.cpp --------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Table 1: application input parameters, approximation techniques used,
// and the size of the explored search space. Following the paper's
// accounting, the space is (#input combinations) x (per-phase level
// combinations) x (#phases + 1 for the uniform case).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "support/StringUtils.h"
#include <set>

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("table1",
         "Input parameters, techniques, and search-space sizes (paper "
         "Table 1)");

  Table T({"app", "input_parameters", "approx_techniques", "num_abs",
           "levels_per_ab", "search_space"});
  for (const std::string &Name : allAppNames()) {
    auto App = createApp(Name);
    std::string Params = join(App->parameterNames(), ", ");
    std::set<std::string> Techniques;
    for (const ApproximableBlock &AB : App->blocks())
      Techniques.insert(techniqueName(AB.Technique));
    std::string Tech =
        join(std::vector<std::string>(Techniques.begin(), Techniques.end()),
             ", ");
    unsigned long long PerPhase = configurationCount(App->blocks());
    size_t NumInputs = App->trainingInputs().size();
    size_t NumPhases = 4;
    unsigned long long Space =
        PerPhase * NumInputs * (NumPhases + 1);
    std::string LevelStr;
    for (size_t B = 0; B < App->numBlocks(); ++B)
      LevelStr += (B ? "," : "") +
                  std::to_string(App->blocks()[B].numLevels());
    T.beginRow();
    T.addCell(Name);
    T.addCell(Params);
    T.addCell(Tech);
    T.addCell(static_cast<long>(App->numBlocks()));
    T.addCell(LevelStr);
    T.addCell(format("%llu", Space));
  }
  emit("table1", T);
  std::printf("paper reference: LULESH 699,840 / FFmpeg 207,360 / Bodytrack "
              "1,966,080 / PSO 14,400 / CoMD 229,500 settings explored\n");
  return 0;
}
