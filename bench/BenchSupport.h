//===- bench/BenchSupport.h - Shared benchmark harness glue ----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure/table benchmark binaries: standard
/// banners, per-phase probing sweeps, and CSV export of every printed
/// table (so the series can be re-plotted). Each binary regenerates one
/// table or figure of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_BENCH_BENCHSUPPORT_H
#define OPPROX_BENCH_BENCHSUPPORT_H

#include "apps/AppRegistry.h"
#include "core/Opprox.h"
#include "support/Table.h"
#include "support/Telemetry.h"

namespace opprox {
namespace bench {

/// Command-line options shared by every per-figure binary.
struct BenchOptions {
  /// Measurement and model-fit parallelism: 0 = auto (OPPROX_THREADS,
  /// else hardware concurrency), 1 = serial. Results are bit-identical
  /// for any value.
  size_t Threads = 0;
  /// Directory for cached model artifacts; empty (the default, unless
  /// OPPROX_ARTIFACT_DIR is set) trains from scratch every run.
  std::string ArtifactDir;
  /// Trace/metrics/log-level surface shared with the CLIs (--trace-out,
  /// --metrics-out, --log-level and their environment fallbacks).
  TelemetryOptions Telemetry;
};

/// Parses the shared flags (--threads, --artifact-dir, plus the
/// telemetry trio) from argv and initializes telemetry: exports are
/// written at process exit when configured. Returns false when the
/// binary should exit (bad flag or --help).
bool parseBenchFlags(int Argc, const char *const *Argv, BenchOptions &Opts);

/// Applies the shared options to training options (thread counts).
void applyBenchOptions(OpproxTrainOptions &Train, const BenchOptions &Opts);

/// Opprox::train with the shared options applied and, when an artifact
/// directory is configured, transparent caching: the model is stored as
/// "<dir>/<app>-<key>.opprox.json" where the key encodes every training
/// option that changes the model, so distinct sweeps (phase counts,
/// sampling densities, MIC settings) get distinct cache entries. A
/// stale or unwritable cache degrades to plain training with a warning,
/// never a failure.
Opprox trainBench(const ApproxApp &App, OpproxTrainOptions Train,
                  const BenchOptions &Opts);

/// Prints the standard experiment banner.
void banner(const std::string &Id, const std::string &Description);

/// Prints \p T and, when OPPROX_BENCH_CSV_DIR is set in the environment,
/// also writes "<dir>/<Id>.csv".
void emit(const std::string &Id, const Table &T);

/// One probe measurement: a configuration applied to one phase (or all).
struct PhaseProbe {
  std::vector<int> Levels;
  int Phase = AllPhases; ///< AllPhases means uniform application.
  double Speedup = 1.0;
  double QosDegradation = 0.0;
  double Psnr = 0.0; ///< Only for PSNR apps.
  size_t Iterations = 0;
};

/// Runs \p Configs against every phase in [0, NumPhases) plus the
/// uniform all-phase variant, measuring ground truth. \p NumThreads
/// parallelizes the measurements (0 = auto per the OPPROX_THREADS
/// convention); every probe writes an indexed slot, so the result is
/// bit-identical for any thread count.
std::vector<PhaseProbe> probePhases(const ApproxApp &App, GoldenCache &Golden,
                                    const std::vector<double> &Input,
                                    const std::vector<std::vector<int>> &Configs,
                                    size_t NumPhases, size_t NumThreads = 1);

/// A small default set of probe configurations: per-block levels
/// {1,3,5} plus a few joint combinations.
std::vector<std::vector<int>> defaultProbeConfigs(const ApproxApp &App,
                                                  size_t JointCount,
                                                  uint64_t Seed);

/// Phase label for tables: "phase-1".."phase-N" or "All".
std::string phaseLabel(int Phase);

/// Returns a ProfileObserver that prints a throttled progress line to
/// stderr (roughly every 10% of the sweep, plus the final run):
/// "  [label] 120/540 runs, 37 golden-cache hits, 1.24s". Assign it to
/// ProfileOptions::Observer to watch long profiling sweeps; the profiler
/// serializes observer calls, so the shared throttle state needs no lock.
ProfileObserver progressObserver(const std::string &Label);

} // namespace bench
} // namespace opprox

#endif // OPPROX_BENCH_BENCHSUPPORT_H
