//===- bench/BenchSupport.h - Shared benchmark harness glue ----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure/table benchmark binaries: standard
/// banners, per-phase probing sweeps, and CSV export of every printed
/// table (so the series can be re-plotted). Each binary regenerates one
/// table or figure of the paper.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_BENCH_BENCHSUPPORT_H
#define OPPROX_BENCH_BENCHSUPPORT_H

#include "apps/AppRegistry.h"
#include "core/Opprox.h"
#include "support/Table.h"

namespace opprox {
namespace bench {

/// Prints the standard experiment banner.
void banner(const std::string &Id, const std::string &Description);

/// Prints \p T and, when OPPROX_BENCH_CSV_DIR is set in the environment,
/// also writes "<dir>/<Id>.csv".
void emit(const std::string &Id, const Table &T);

/// One probe measurement: a configuration applied to one phase (or all).
struct PhaseProbe {
  std::vector<int> Levels;
  int Phase = AllPhases; ///< AllPhases means uniform application.
  double Speedup = 1.0;
  double QosDegradation = 0.0;
  double Psnr = 0.0; ///< Only for PSNR apps.
  size_t Iterations = 0;
};

/// Runs \p Configs against every phase in [0, NumPhases) plus the
/// uniform all-phase variant, measuring ground truth.
std::vector<PhaseProbe> probePhases(const ApproxApp &App, GoldenCache &Golden,
                                    const std::vector<double> &Input,
                                    const std::vector<std::vector<int>> &Configs,
                                    size_t NumPhases);

/// A small default set of probe configurations: per-block levels
/// {1,3,5} plus a few joint combinations.
std::vector<std::vector<int>> defaultProbeConfigs(const ApproxApp &App,
                                                  size_t JointCount,
                                                  uint64_t Seed);

/// Phase label for tables: "phase-1".."phase-N" or "All".
std::string phaseLabel(int Phase);

/// Returns a ProfileObserver that prints a throttled progress line to
/// stderr (roughly every 10% of the sweep, plus the final run):
/// "  [label] 120/540 runs, 37 golden-cache hits, 1.24s". Assign it to
/// ProfileOptions::Observer to watch long profiling sweeps; the profiler
/// serializes observer calls, so the shared throttle state needs no lock.
ProfileObserver progressObserver(const std::string &Label);

} // namespace bench
} // namespace opprox

#endif // OPPROX_BENCH_BENCHSUPPORT_H
