//===- bench/fig07_ffmpeg_order.cpp ---------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Fig. 7: changing the order of the FFmpeg deflate and edge-detection
// filters significantly changes the QoS degradation of the same
// approximation settings -- the motivation for control-flow-specific
// models (Sec. 3.4).
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "approx/WorkCounter.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig07",
         "FFmpeg: swapping deflate and edge-detection changes QoS for the "
         "same approximation settings (paper Fig. 7)");
  auto App = createApp("ffmpeg");
  GoldenCache Golden(*App);

  // Same fps/duration/bitrate; only the filter order differs.
  std::vector<double> OrderA = {30, 3, 4, 0}; // deflate -> edge.
  std::vector<double> OrderB = {30, 3, 4, 1}; // edge -> deflate.
  const RunResult &ExactA = Golden.exactRun(OrderA);
  const RunResult &ExactB = Golden.exactRun(OrderB);
  std::printf("control flow A (deflate->edge): %s\n",
              ExactA.ControlFlowSignature.c_str());
  std::printf("control flow B (edge->deflate): %s\n\n",
              ExactB.ControlFlowSignature.c_str());

  Table T({"levels", "psnr_deflate_first_db", "psnr_edge_first_db",
           "qos_pct_deflate_first", "qos_pct_edge_first"});
  std::vector<std::vector<int>> Configs = {
      {1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {2, 2, 2}, {3, 0, 3},
      {0, 3, 3}, {5, 5, 5}, {1, 3, 5}};
  for (const std::vector<int> &Levels : Configs) {
    PhaseSchedule S = PhaseSchedule::uniform(1, Levels);
    RunResult RA = App->run(OrderA, S, ExactA.OuterIterations);
    RunResult RB = App->run(OrderB, S, ExactB.OuterIterations);
    std::string LevelStr;
    for (size_t B = 0; B < Levels.size(); ++B)
      LevelStr += (B ? "," : "") + std::to_string(Levels[B]);
    T.beginRow();
    T.addCell(LevelStr);
    T.addCell(App->psnrValue(ExactA, RA), 2);
    T.addCell(App->psnrValue(ExactB, RB), 2);
    T.addCell(App->qosDegradation(ExactA, RA), 3);
    T.addCell(App->qosDegradation(ExactB, RB), 3);
  }
  emit("fig07", T);
  return 0;
}
