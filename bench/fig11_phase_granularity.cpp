//===- bench/fig11_phase_granularity.cpp ----------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// Fig. 11: QoS degradation characteristics when the execution is divided
// into 2, 4, and 8 phases (Bodytrack and LULESH). With 8 phases the
// distinction between adjacent phases blurs -- the motivation for
// Algorithm 1's granularity search, which this bench also runs.
//
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "core/PhaseDetector.h"
#include "support/Statistics.h"

using namespace opprox;
using namespace opprox::bench;

int main(int Argc, char **Argv) {
  BenchOptions Bench;
  if (!parseBenchFlags(Argc, Argv, Bench))
    return 1;
  banner("fig11",
         "QoS degradation for 2/4/8-phase splits (paper Fig. 11) plus "
         "Algorithm 1's detected granularity");

  for (const std::string &Name : {"bodytrack", "lulesh"}) {
    auto App = createApp(Name);
    GoldenCache Golden(*App);
    const std::vector<double> Input = App->defaultInput();
    std::vector<std::vector<int>> Configs =
        defaultProbeConfigs(*App, /*JointCount=*/4, /*Seed=*/0xF11);

    std::printf("--- %s ---\n", Name.c_str());
    Table T({"num_phases", "phase", "mean_qos_pct", "max_qos_pct"});
    for (size_t NumPhases : {2u, 4u, 8u}) {
      std::vector<PhaseProbe> Probes =
          probePhases(*App, Golden, Input, Configs, NumPhases,
                      Bench.Threads);
      for (size_t Phase = 0; Phase < NumPhases; ++Phase) {
        RunningStats Qos;
        for (const PhaseProbe &P : Probes)
          if (P.Phase == static_cast<int>(Phase))
            Qos.add(P.QosDegradation);
        T.beginRow();
        T.addCell(static_cast<long>(NumPhases));
        T.addCell(phaseLabel(static_cast<int>(Phase)));
        T.addCell(Qos.mean(), 3);
        T.addCell(Qos.max(), 3);
      }
    }
    emit("fig11_" + Name, T);

    // Algorithm 1 on this application.
    Profiler Prof(*App, Golden);
    PhaseDetectOptions Opts;
    Opts.ProbeConfigs = 4;
    Opts.NumThreads = Bench.Threads;
    size_t Detected = detectPhaseCount(Prof, Input, Opts);
    std::printf("Algorithm 1 detected N = %zu phases (threshold %.1f%%)\n\n",
                Detected, Opts.Threshold);
  }
  return 0;
}
