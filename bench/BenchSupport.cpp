//===- bench/BenchSupport.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the shared benchmark harness: banners, CSV export,
/// ground-truth phase probing, and the profiling progress observer.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "approx/WorkCounter.h"
#include "core/Sampler.h"
#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include <cstdlib>
#include <memory>

using namespace opprox;
using namespace opprox::bench;

bool opprox::bench::parseBenchFlags(int Argc, const char *const *Argv,
                                    BenchOptions &Opts) {
  if (const char *Dir = std::getenv("OPPROX_ARTIFACT_DIR"))
    Opts.ArtifactDir = Dir;
  long Threads = static_cast<long>(Opts.Threads);
  FlagParser Flags;
  Flags.addFlag("threads", &Threads,
                "measurement/fit parallelism (0 = auto via OPPROX_THREADS, "
                "1 = serial)");
  Flags.addFlag("artifact-dir", &Opts.ArtifactDir,
                "cache trained models here as versioned artifacts");
  addTelemetryFlags(Flags, Opts.Telemetry);
  if (!Flags.parse(Argc, Argv))
    return false;
  if (!initTelemetry(Opts.Telemetry))
    return false;
  Opts.Threads = static_cast<size_t>(Threads < 0 ? 0 : Threads);
  return true;
}

void opprox::bench::applyBenchOptions(OpproxTrainOptions &Train,
                                      const BenchOptions &Opts) {
  Train.Profiling.NumThreads = Opts.Threads;
  Train.ModelBuild.NumThreads = Opts.Threads;
}

Opprox opprox::bench::trainBench(const ApproxApp &App,
                                 OpproxTrainOptions Train,
                                 const BenchOptions &Opts) {
  applyBenchOptions(Train, Opts);
  if (Opts.ArtifactDir.empty())
    return Opprox::train(App, Train);
  // Cache key: every option that changes the trained model. Thread
  // counts are deliberately absent -- results are identical across them.
  std::string Key = format(
      "%s-p%zu-s%zu-mic%g-ps%llu-ms%llu%s", App.name().c_str(),
      Train.NumPhases, Train.Profiling.RandomJointSamples,
      Train.ModelBuild.Selection.MicThreshold,
      static_cast<unsigned long long>(Train.Profiling.Seed),
      static_cast<unsigned long long>(Train.ModelBuild.Seed),
      Train.Profiling.IncludeAllPhaseRuns ? "" : "-nouni");
  std::string Path = Opts.ArtifactDir + "/" + Key + ".opprox.json";
  Expected<Opprox> Tuner = Opprox::trainCached(App, Train, Path);
  if (!Tuner) {
    std::fprintf(stderr, "warning: artifact cache %s unusable (%s); "
                 "training without cache\n",
                 Path.c_str(), Tuner.error().message().c_str());
    return Opprox::train(App, Train);
  }
  if (Tuner->trainingData().empty())
    std::fprintf(stderr, "  [%s] loaded cached artifact %s\n",
                 App.name().c_str(), Path.c_str());
  return std::move(*Tuner);
}

void opprox::bench::banner(const std::string &Id,
                           const std::string &Description) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", Id.c_str(), Description.c_str());
  std::printf("==============================================================="
              "=\n");
}

void opprox::bench::emit(const std::string &Id, const Table &T) {
  T.print();
  std::printf("\n");
  if (const char *Dir = std::getenv("OPPROX_BENCH_CSV_DIR")) {
    std::string Path = std::string(Dir) + "/" + Id + ".csv";
    if (!T.writeCsv(Path))
      std::fprintf(stderr, "warning: could not write %s\n", Path.c_str());
  }
}

std::vector<PhaseProbe> opprox::bench::probePhases(
    const ApproxApp &App, GoldenCache &Golden,
    const std::vector<double> &Input,
    const std::vector<std::vector<int>> &Configs, size_t NumPhases,
    size_t NumThreads) {
  const RunResult &Exact = Golden.exactRun(Input);
  auto Measure = [&](const std::vector<int> &Levels, int Phase) {
    PhaseSchedule S =
        Phase == AllPhases
            ? PhaseSchedule::uniform(NumPhases, Levels)
            : PhaseSchedule::singlePhase(NumPhases,
                                         static_cast<size_t>(Phase), Levels);
    RunResult R = App.run(Input, S, Exact.OuterIterations);
    PhaseProbe P;
    P.Levels = Levels;
    P.Phase = Phase;
    P.Speedup = speedupOf(Exact.WorkUnits, R.WorkUnits);
    P.QosDegradation = App.qosDegradation(Exact, R);
    if (App.usesPsnr())
      P.Psnr = App.psnrValue(Exact, R);
    P.Iterations = R.OuterIterations;
    return P;
  };
  // One slot per (config, phase-or-All) measurement, filled by index:
  // output order and values are independent of scheduling.
  std::vector<PhaseProbe> Out(Configs.size() * (NumPhases + 1));
  ThreadPool Pool(ThreadPool::resolveWorkers(NumThreads));
  Pool.parallelFor(Out.size(), [&](size_t I) {
    size_t Config = I / (NumPhases + 1);
    size_t Phase = I % (NumPhases + 1);
    Out[I] = Measure(Configs[Config], Phase == NumPhases
                                          ? AllPhases
                                          : static_cast<int>(Phase));
  });
  return Out;
}

std::vector<std::vector<int>> opprox::bench::defaultProbeConfigs(
    const ApproxApp &App, size_t JointCount, uint64_t Seed) {
  std::vector<std::vector<int>> Configs;
  std::vector<int> Max = App.maxLevels();
  for (size_t B = 0; B < Max.size(); ++B)
    for (int L : {1, 3, 5}) {
      if (L > Max[B])
        continue;
      std::vector<int> Config(Max.size(), 0);
      Config[B] = L;
      Configs.push_back(Config);
    }
  Rng R(Seed);
  SamplingPlan Plan = makeSamplingPlan(Max, JointCount, R);
  for (auto &Config : Plan.JointConfigs)
    Configs.push_back(std::move(Config));
  return Configs;
}

std::string opprox::bench::phaseLabel(int Phase) {
  if (Phase == AllPhases)
    return "All";
  return format("phase-%d", Phase + 1);
}

ProfileObserver opprox::bench::progressObserver(const std::string &Label) {
  // ProfileObserver is copyable, so the throttle lives behind a
  // shared_ptr. The profiler serializes calls; no lock needed here.
  auto LastDecile = std::make_shared<size_t>(0);
  return [Label, LastDecile](const ProfileProgress &P) {
    size_t Decile =
        P.TotalRuns == 0 ? 10 : P.RunsCompleted * 10 / P.TotalRuns;
    if (Decile <= *LastDecile && P.RunsCompleted != P.TotalRuns)
      return;
    *LastDecile = Decile;
    std::fprintf(stderr, "  [%s] %zu/%zu runs, %zu golden-cache hits, %.2fs\n",
                 Label.c_str(), P.RunsCompleted, P.TotalRuns,
                 P.GoldenCacheHits, P.ElapsedSeconds);
  };
}
