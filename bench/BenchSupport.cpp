//===- bench/BenchSupport.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of the shared benchmark harness: banners, CSV export,
/// ground-truth phase probing, and the profiling progress observer.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"
#include "approx/WorkCounter.h"
#include "core/Sampler.h"
#include "support/StringUtils.h"
#include <cstdlib>
#include <memory>

using namespace opprox;
using namespace opprox::bench;

void opprox::bench::banner(const std::string &Id,
                           const std::string &Description) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", Id.c_str(), Description.c_str());
  std::printf("==============================================================="
              "=\n");
}

void opprox::bench::emit(const std::string &Id, const Table &T) {
  T.print();
  std::printf("\n");
  if (const char *Dir = std::getenv("OPPROX_BENCH_CSV_DIR")) {
    std::string Path = std::string(Dir) + "/" + Id + ".csv";
    if (!T.writeCsv(Path))
      std::fprintf(stderr, "warning: could not write %s\n", Path.c_str());
  }
}

std::vector<PhaseProbe> opprox::bench::probePhases(
    const ApproxApp &App, GoldenCache &Golden,
    const std::vector<double> &Input,
    const std::vector<std::vector<int>> &Configs, size_t NumPhases) {
  const RunResult &Exact = Golden.exactRun(Input);
  std::vector<PhaseProbe> Out;
  auto Measure = [&](const std::vector<int> &Levels, int Phase) {
    PhaseSchedule S =
        Phase == AllPhases
            ? PhaseSchedule::uniform(NumPhases, Levels)
            : PhaseSchedule::singlePhase(NumPhases,
                                         static_cast<size_t>(Phase), Levels);
    RunResult R = App.run(Input, S, Exact.OuterIterations);
    PhaseProbe P;
    P.Levels = Levels;
    P.Phase = Phase;
    P.Speedup = speedupOf(Exact.WorkUnits, R.WorkUnits);
    P.QosDegradation = App.qosDegradation(Exact, R);
    if (App.usesPsnr())
      P.Psnr = App.psnrValue(Exact, R);
    P.Iterations = R.OuterIterations;
    return P;
  };
  for (const std::vector<int> &Levels : Configs) {
    for (size_t Phase = 0; Phase < NumPhases; ++Phase)
      Out.push_back(Measure(Levels, static_cast<int>(Phase)));
    Out.push_back(Measure(Levels, AllPhases));
  }
  return Out;
}

std::vector<std::vector<int>> opprox::bench::defaultProbeConfigs(
    const ApproxApp &App, size_t JointCount, uint64_t Seed) {
  std::vector<std::vector<int>> Configs;
  std::vector<int> Max = App.maxLevels();
  for (size_t B = 0; B < Max.size(); ++B)
    for (int L : {1, 3, 5}) {
      if (L > Max[B])
        continue;
      std::vector<int> Config(Max.size(), 0);
      Config[B] = L;
      Configs.push_back(Config);
    }
  Rng R(Seed);
  SamplingPlan Plan = makeSamplingPlan(Max, JointCount, R);
  for (auto &Config : Plan.JointConfigs)
    Configs.push_back(std::move(Config));
  return Configs;
}

std::string opprox::bench::phaseLabel(int Phase) {
  if (Phase == AllPhases)
    return "All";
  return format("phase-%d", Phase + 1);
}

ProfileObserver opprox::bench::progressObserver(const std::string &Label) {
  // ProfileObserver is copyable, so the throttle lives behind a
  // shared_ptr. The profiler serializes calls; no lock needed here.
  auto LastDecile = std::make_shared<size_t>(0);
  return [Label, LastDecile](const ProfileProgress &P) {
    size_t Decile =
        P.TotalRuns == 0 ? 10 : P.RunsCompleted * 10 / P.TotalRuns;
    if (Decile <= *LastDecile && P.RunsCompleted != P.TotalRuns)
      return;
    *LastDecile = Decile;
    std::fprintf(stderr, "  [%s] %zu/%zu runs, %zu golden-cache hits, %.2fs\n",
                 Label.c_str(), P.RunsCompleted, P.TotalRuns,
                 P.GoldenCacheHits, P.ElapsedSeconds);
  };
}
