#!/usr/bin/env python3
"""Markdown link-and-anchor checker for the docs tree.

Walks README.md, ROADMAP.md, and docs/**/*.md, extracts every inline
markdown link, and verifies that

  - relative file targets exist (resolved against the linking file),
  - `#anchor` fragments -- both same-file and `file.md#anchor` -- match a
    heading in the target file, using GitHub's slug rules,
  - http(s) targets are left alone (no network access in CI).

Exit status is the number of broken links, so CI fails on the first rot.
Run locally from the repository root: python3 scripts/check_doc_links.py
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parent.parent

# Inline links [text](target); images ![alt](target) match too, which is
# what we want. Targets with spaces or nested parens do not occur here.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
FENCE_RE = re.compile(r"^(```|~~~)")


def doc_files():
    files = [REPO / "README.md", REPO / "ROADMAP.md"]
    files += sorted((REPO / "docs").rglob("*.md"))
    return [f for f in files if f.is_file()]


def strip_code(text: str) -> list[str]:
    """Drops fenced code blocks and inline code spans, keeping line
    structure so headings keep their positions."""
    lines, in_fence = [], False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            lines.append("")
            continue
        lines.append("" if in_fence else re.sub(r"`[^`]*`", "``", line))
    return lines


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, spaces to hyphens, drop anything
    that is not alphanumeric, hyphen, or underscore."""
    heading = re.sub(r"[*_`]", "", heading).strip().lower()
    heading = heading.replace(" ", "-")
    return re.sub(r"[^a-z0-9\-_]", "", heading)


def anchors_of(path: pathlib.Path, cache={}) -> set[str]:
    if path not in cache:
        slugs: dict[str, int] = {}
        out = set()
        for line in strip_code(path.read_text(encoding="utf-8")):
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            n = slugs.get(slug, 0)
            slugs[slug] = n + 1
            out.add(slug if n == 0 else f"{slug}-{n}")
        cache[path] = out
    return cache[path]


def main() -> int:
    broken = []
    checked = 0
    for doc in doc_files():
        lines = strip_code(doc.read_text(encoding="utf-8"))
        for lineno, line in enumerate(lines, start=1):
            for target in LINK_RE.findall(line):
                checked += 1
                where = f"{doc.relative_to(REPO)}:{lineno}"
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part, _, fragment = target.partition("#")
                dest = doc if not path_part else (
                    doc.parent / path_part).resolve()
                if not dest.exists():
                    broken.append(f"{where}: missing file: {target}")
                    continue
                if not fragment:
                    continue
                if dest.suffix != ".md":
                    broken.append(
                        f"{where}: anchor on non-markdown target: {target}")
                    continue
                if fragment not in anchors_of(dest):
                    broken.append(f"{where}: missing anchor: {target}")
    for b in broken:
        print(f"BROKEN  {b}", file=sys.stderr)
    print(f"{checked} links checked across {len(doc_files())} files, "
          f"{len(broken)} broken")
    return len(broken)


if __name__ == "__main__":
    sys.exit(main())
