//===- ml/CrossValidation.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/CrossValidation.h"
#include "support/Statistics.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include <numeric>

using namespace opprox;

std::vector<std::vector<size_t>> opprox::kFoldIndices(size_t N, size_t K,
                                                      Rng &Rng) {
  assert(N > 0 && K > 0 && "empty fold request");
  K = std::min(K, N);
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  Rng.shuffle(Order);
  std::vector<std::vector<size_t>> Folds(K);
  for (size_t I = 0; I < N; ++I)
    Folds[I % K].push_back(Order[I]);
  return Folds;
}

double opprox::crossValidatedR2(const Dataset &Data,
                                const PolynomialRegression::Options &Opts,
                                size_t K, Rng &Rng, ThreadPool *Pool) {
  size_t N = Data.numSamples();
  if (N < 3)
    return -1e9;
  std::vector<std::vector<size_t>> Folds = kFoldIndices(N, K, Rng);

  // Each fold fits and predicts independently into its own slot; the
  // slots are pooled in fold order below, so the score is identical
  // whether the fits ran serially or across a pool.
  struct FoldResult {
    std::vector<double> Actual, Predicted;
  };
  std::vector<FoldResult> Results(Folds.size());
  static Counter &FoldCounter = MetricsRegistry::global().counter("ml.cv.folds");
  static Histogram &FoldMs = MetricsRegistry::global().histogram("ml.cv.fold_ms");
  auto RunFold = [&](size_t F) {
    TraceSpan FoldSpan("ml.cv.fold", "ml");
    const std::vector<size_t> &TestFold = Folds[F];
    std::vector<bool> InTest(N, false);
    for (size_t I : TestFold)
      InTest[I] = true;
    std::vector<size_t> TrainIdx;
    TrainIdx.reserve(N - TestFold.size());
    for (size_t I = 0; I < N; ++I)
      if (!InTest[I])
        TrainIdx.push_back(I);
    if (TrainIdx.empty())
      return;
    PolynomialRegression Model =
        PolynomialRegression::fit(Data.selectRows(TrainIdx), Opts);
    for (size_t I : TestFold) {
      Results[F].Actual.push_back(Data.target(I));
      Results[F].Predicted.push_back(Model.predict(Data.sample(I)));
    }
    FoldCounter.add();
    FoldMs.record(FoldSpan.seconds() * 1e3);
  };
  if (Pool)
    Pool->parallelFor(Folds.size(), RunFold);
  else
    for (size_t F = 0; F < Folds.size(); ++F)
      RunFold(F);

  std::vector<double> Actual, Predicted;
  Actual.reserve(N);
  Predicted.reserve(N);
  for (const FoldResult &R : Results) {
    Actual.insert(Actual.end(), R.Actual.begin(), R.Actual.end());
    Predicted.insert(Predicted.end(), R.Predicted.begin(), R.Predicted.end());
  }
  if (Actual.empty())
    return -1e9;
  return r2Score(Actual, Predicted);
}

void opprox::trainTestSplit(size_t N, double TestFraction, Rng &Rng,
                            std::vector<size_t> &TrainIdx,
                            std::vector<size_t> &TestIdx) {
  assert(TestFraction >= 0.0 && TestFraction <= 1.0 &&
         "test fraction outside [0,1]");
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  Rng.shuffle(Order);
  size_t NumTest = static_cast<size_t>(TestFraction * static_cast<double>(N));
  TestIdx.assign(Order.begin(), Order.begin() + NumTest);
  TrainIdx.assign(Order.begin() + NumTest, Order.end());
}
