//===- ml/Dataset.h - Feature matrix plus target ---------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A supervised-learning dataset: named feature columns and one numeric
/// target. The profiling pipeline materializes TrainingSample records
/// into Datasets before model fitting.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_ML_DATASET_H
#define OPPROX_ML_DATASET_H

#include <cassert>
#include <string>
#include <vector>

namespace opprox {

/// Rows of features plus a target value per row.
class Dataset {
public:
  Dataset() = default;
  explicit Dataset(std::vector<std::string> FeatureNames)
      : FeatureNames(std::move(FeatureNames)) {}

  size_t numSamples() const { return Targets.size(); }
  size_t numFeatures() const { return FeatureNames.size(); }
  bool empty() const { return Targets.empty(); }

  const std::vector<std::string> &featureNames() const { return FeatureNames; }

  /// Appends one sample. \p Features must match numFeatures().
  void addSample(std::vector<double> Features, double Target);

  const std::vector<double> &sample(size_t I) const {
    assert(I < Rows.size() && "sample index out of range");
    return Rows[I];
  }
  double target(size_t I) const {
    assert(I < Targets.size() && "sample index out of range");
    return Targets[I];
  }
  const std::vector<std::vector<double>> &samples() const { return Rows; }
  const std::vector<double> &targets() const { return Targets; }

  /// One feature as a column vector.
  std::vector<double> featureColumn(size_t Feature) const;

  /// A new dataset keeping only the features in \p Keep (order preserved).
  Dataset selectFeatures(const std::vector<size_t> &Keep) const;

  /// A new dataset keeping only the rows in \p RowIndices.
  Dataset selectRows(const std::vector<size_t> &RowIndices) const;

  /// Index of the named feature; asserts if absent.
  size_t featureIndex(const std::string &Name) const;

private:
  std::vector<std::string> FeatureNames;
  std::vector<std::vector<double>> Rows;
  std::vector<double> Targets;
};

} // namespace opprox

#endif // OPPROX_ML_DATASET_H
