//===- ml/ModelSelection.h - OPPROX model-building policy ------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model-construction policy of paper Sec. 3.7:
///   1. MIC-filter features with no association to the target;
///   2. escalate the polynomial degree until 10-fold cross-validated R^2
///      reaches the target (or the degree cap);
///   3. when even the best degree misses the target, split the samples
///      into magnitude-ordered subcategories of the most informative
///      feature and fit one sub-model per subcategory;
///   4. wrap everything with an empirical confidence interval so callers
///      can ask for conservative bounds (Sec. 3.6).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_ML_MODELSELECTION_H
#define OPPROX_ML_MODELSELECTION_H

#include "ml/ConfidenceInterval.h"
#include "ml/Dataset.h"
#include "ml/PolynomialRegression.h"
#include "support/AlignedBuffer.h"
#include "support/Random.h"
#include <limits>

namespace opprox {

struct ModelSelectOptions {
  /// Cross-validated R^2 considered "good" (paper uses > 0.9).
  double TargetR2 = 0.9;
  /// Degrees tried, lowest first (paper saw 2..6 selected).
  int MinDegree = 1;
  int MaxDegree = 6;
  /// Folds for cross-validation (paper: 10).
  size_t Folds = 10;
  /// Features whose MIC with the target falls below this are dropped.
  /// Set to 0 to disable filtering.
  double MicThreshold = 0.05;
  /// Maximum subcategories when splitting poorly-modeled data.
  size_t MaxSubcategories = 3;
  /// Minimum samples per subcategory; fewer and we refuse to split.
  size_t MinSubcategorySamples = 20;
};

class ThreadPool;
class Json;

/// A trained predictor: possibly several polynomial sub-models selected by
/// a split feature, plus feature filtering and a confidence interval.
class SelectedModel {
public:
  /// Trains per the Sec. 3.7 policy. \p Rng drives fold shuffling. A
  /// non-null \p Pool parallelizes the cross-validation folds (identical
  /// result either way; when called from inside a pool task the folds
  /// simply stay serial within that task).
  static SelectedModel train(const Dataset &Data,
                             const ModelSelectOptions &Opts, Rng &Rng,
                             ThreadPool *Pool = nullptr);

  /// Point prediction for a raw (unfiltered) feature vector.
  double predict(const std::vector<double> &X) const;

  /// Caller-owned workspace for predictBatch; reuse across calls to keep
  /// the batch path allocation-free at steady state. The batch flows
  /// through as 64-byte-aligned per-feature columns end to end (see
  /// docs/ARCHITECTURE.md, "Optimizer hot path").
  struct BatchScratch {
    AlignedBuffer<double> Filtered; ///< keptFeatures raw columns.
    AlignedBuffer<double> GroupX;   ///< Columns gathered for one submodel.
    std::vector<size_t> GroupRows;  ///< Original indices of gathered rows.
    std::vector<double> GroupOut;   ///< Submodel outputs before scatter.
    PolynomialRegression::Scratch Poly;
  };

  /// Predicts every row of \p X (one raw feature vector per row) into
  /// \p Out, resized to X.rows(). Rows are MIC-filtered into contiguous
  /// per-feature columns, routed to their subcategory sub-model, and
  /// evaluated in per-submodel columnar batches; each row's result is
  /// bit-identical to predict() on that row.
  void predictBatch(const Matrix &X, std::vector<double> &Out,
                    BatchScratch &S) const;

  /// Certified bounds on predict() over the axis-aligned box
  /// [Lo[i], Hi[i]] of raw (unfiltered) features: the hull of the
  /// reachable sub-models' polynomial bounds, widened for floating-point
  /// rounding (see PolynomialRegression::boundsOver), so comparisons
  /// against exact predict() values may safely prune on them.
  std::pair<double, double> boundsOver(const std::vector<double> &Lo,
                                       const std::vector<double> &Hi) const;

  /// Conservative bounds using the training-residual distribution.
  double upperBound(const std::vector<double> &X, double P) const {
    return Interval.upperBound(predict(X), P);
  }
  double lowerBound(const std::vector<double> &X, double P) const {
    return Interval.lowerBound(predict(X), P);
  }

  /// Cross-validated R^2 achieved during selection.
  double cvR2() const { return BestCvR2; }

  /// Degree of the (first) selected polynomial.
  int degree() const;

  /// Indices of the raw features kept after MIC filtering.
  const std::vector<size_t> &keptFeatures() const { return KeptFeatures; }

  size_t numSubmodels() const { return Submodels.size(); }

  const ConfidenceInterval &confidence() const { return Interval; }

  /// Artifact serialization: MIC feature mask, subcategory split,
  /// sub-models, confidence interval, and the selection-time CV score.
  Json toJson() const;
  static Expected<SelectedModel> fromJson(const Json &Value);

private:
  std::vector<double> filterFeatures(const std::vector<double> &X) const;
  size_t submodelFor(const std::vector<double> &Filtered) const;

  std::vector<size_t> KeptFeatures;
  // Submodel I handles filtered SplitFeature values < SplitBoundaries[I];
  // the last submodel handles everything above. Empty boundaries means a
  // single model.
  size_t SplitFeature = 0;
  std::vector<double> SplitBoundaries;
  std::vector<PolynomialRegression> Submodels;
  ConfidenceInterval Interval;
  double BestCvR2 = -std::numeric_limits<double>::infinity();
};

} // namespace opprox

#endif // OPPROX_ML_MODELSELECTION_H
