//===- ml/ConfidenceInterval.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/ConfidenceInterval.h"
#include "support/Json.h"
#include <algorithm>
#include <cassert>
#include <cmath>

using namespace opprox;

ConfidenceInterval
ConfidenceInterval::fromResiduals(const std::vector<double> &Residuals) {
  ConfidenceInterval CI;
  CI.SortedAbsResiduals.reserve(Residuals.size());
  for (double R : Residuals)
    CI.SortedAbsResiduals.push_back(std::fabs(R));
  std::sort(CI.SortedAbsResiduals.begin(), CI.SortedAbsResiduals.end());
  return CI;
}

double ConfidenceInterval::halfWidth(double P) const {
  assert(P >= 0.0 && P <= 1.0 && "coverage outside [0,1]");
  if (SortedAbsResiduals.empty())
    return 0.0;
  // Smallest e covering ceil(P * n) residuals.
  size_t N = SortedAbsResiduals.size();
  size_t Need = static_cast<size_t>(
      std::ceil(P * static_cast<double>(N)));
  if (Need == 0)
    return 0.0;
  return SortedAbsResiduals[Need - 1];
}

Json ConfidenceInterval::toJson() const {
  Json Out = Json::object();
  Out.set("abs_residuals", Json::numberArray(SortedAbsResiduals));
  return Out;
}

Expected<ConfidenceInterval> ConfidenceInterval::fromJson(const Json &Value) {
  Expected<std::vector<double>> Residuals =
      getNumberVector(Value, "abs_residuals");
  if (!Residuals)
    return Residuals.error();
  ConfidenceInterval CI;
  CI.SortedAbsResiduals = std::move(*Residuals);
  if (!std::is_sorted(CI.SortedAbsResiduals.begin(),
                      CI.SortedAbsResiduals.end()))
    return Error("confidence interval residuals are not sorted");
  return CI;
}
