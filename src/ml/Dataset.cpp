//===- ml/Dataset.cpp -----------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/Dataset.h"
#include "support/Compiler.h"

using namespace opprox;

void Dataset::addSample(std::vector<double> Features, double Target) {
  assert(Features.size() == FeatureNames.size() &&
         "feature count mismatch");
  Rows.push_back(std::move(Features));
  Targets.push_back(Target);
}

std::vector<double> Dataset::featureColumn(size_t Feature) const {
  assert(Feature < FeatureNames.size() && "feature index out of range");
  std::vector<double> Column(Rows.size());
  for (size_t I = 0; I < Rows.size(); ++I)
    Column[I] = Rows[I][Feature];
  return Column;
}

Dataset Dataset::selectFeatures(const std::vector<size_t> &Keep) const {
  std::vector<std::string> Names;
  Names.reserve(Keep.size());
  for (size_t F : Keep) {
    assert(F < FeatureNames.size() && "feature index out of range");
    Names.push_back(FeatureNames[F]);
  }
  Dataset Out(std::move(Names));
  for (size_t I = 0; I < Rows.size(); ++I) {
    std::vector<double> Features;
    Features.reserve(Keep.size());
    for (size_t F : Keep)
      Features.push_back(Rows[I][F]);
    Out.addSample(std::move(Features), Targets[I]);
  }
  return Out;
}

Dataset Dataset::selectRows(const std::vector<size_t> &RowIndices) const {
  Dataset Out(FeatureNames);
  for (size_t I : RowIndices) {
    assert(I < Rows.size() && "row index out of range");
    Out.addSample(Rows[I], Targets[I]);
  }
  return Out;
}

size_t Dataset::featureIndex(const std::string &Name) const {
  for (size_t I = 0; I < FeatureNames.size(); ++I)
    if (FeatureNames[I] == Name)
      return I;
  OPPROX_UNREACHABLE("unknown feature name");
}
