//===- ml/ConfidenceInterval.h - Empirical prediction intervals -*- C++ -*-=//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Empirical confidence intervals around model predictions (paper
/// Sec. 3.6, adapting Mitra et al., PACT 2015): if p fraction of the
/// modeling error stays within e, the true value lies in
/// [prediction - e, prediction + e]. OPPROX uses the p=0.99 upper bound
/// for QoS degradation (conservative) and the lower bound for speedup.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_ML_CONFIDENCEINTERVAL_H
#define OPPROX_ML_CONFIDENCEINTERVAL_H

#include "support/Error.h"
#include <cstddef>
#include <vector>

namespace opprox {

class Json;

/// Distribution of absolute modeling residuals; answers "how wide must an
/// interval be to cover fraction p of the observed errors".
class ConfidenceInterval {
public:
  ConfidenceInterval() = default;

  /// Builds from prediction residuals (prediction - actual).
  static ConfidenceInterval fromResiduals(const std::vector<double> &Residuals);

  /// Half-width e such that fraction \p P of |residuals| were <= e.
  /// Returns 0 when no residuals were recorded.
  double halfWidth(double P) const;

  /// Conservative upper bound on the true value: Prediction +
  /// halfWidth(P). Use for QoS degradation so the optimizer never
  /// underestimates error.
  double upperBound(double Prediction, double P) const {
    return Prediction + halfWidth(P);
  }

  /// Conservative lower bound: Prediction - halfWidth(P). Use for
  /// speedup so the optimizer never overestimates benefit.
  double lowerBound(double Prediction, double P) const {
    return Prediction - halfWidth(P);
  }

  size_t numResiduals() const { return SortedAbsResiduals.size(); }

  /// Artifact serialization: the sorted residual distribution, exactly.
  Json toJson() const;
  static Expected<ConfidenceInterval> fromJson(const Json &Value);

private:
  std::vector<double> SortedAbsResiduals;
};

} // namespace opprox

#endif // OPPROX_ML_CONFIDENCEINTERVAL_H
