//===- ml/CrossValidation.h - K-fold cross-validation ----------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic k-fold cross-validation (paper Sec. 3.7 uses 10-fold to
/// pick the polynomial degree). The pooled out-of-fold R^2 is the score:
/// every sample is predicted exactly once by a model that never saw it.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_ML_CROSSVALIDATION_H
#define OPPROX_ML_CROSSVALIDATION_H

#include "ml/Dataset.h"
#include "ml/PolynomialRegression.h"
#include "support/Random.h"

namespace opprox {

class ThreadPool;

/// Partitions [0, N) into \p K near-equal shuffled folds. K is clamped to
/// N so every fold is nonempty.
std::vector<std::vector<size_t>> kFoldIndices(size_t N, size_t K, Rng &Rng);

/// Pooled out-of-fold R^2 of polynomial regression with \p Opts on
/// \p Data. Returns a large negative value when Data is too small to
/// split (fewer than 3 samples). Fold assignment draws from \p Rng
/// up front; when \p Pool is non-null the per-fold fits then run
/// concurrently (results are pooled in fold order, so the score is
/// identical with or without a pool).
double crossValidatedR2(const Dataset &Data,
                        const PolynomialRegression::Options &Opts, size_t K,
                        Rng &Rng, ThreadPool *Pool = nullptr);

/// Splits row indices of a dataset into train/test of the given test
/// fraction (deterministic shuffle).
void trainTestSplit(size_t N, double TestFraction, Rng &Rng,
                    std::vector<size_t> &TrainIdx,
                    std::vector<size_t> &TestIdx);

} // namespace opprox

#endif // OPPROX_ML_CROSSVALIDATION_H
