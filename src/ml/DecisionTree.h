//===- ml/DecisionTree.h - CART classifier ---------------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CART-style decision-tree classifier over numeric features with Gini
/// impurity splits. OPPROX uses it to predict the control-flow class (the
/// call-context signature of approximable blocks) from input parameters
/// (paper Sec. 3.4, citing Quinlan's induction of decision trees).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_ML_DECISIONTREE_H
#define OPPROX_ML_DECISIONTREE_H

#include "support/Error.h"
#include <cstddef>
#include <string>
#include <vector>

namespace opprox {

class Json;

/// A fitted classification tree. Labels are small non-negative ints.
class DecisionTree {
public:
  struct Options {
    size_t MaxDepth = 12;
    size_t MinSamplesLeaf = 1;
    /// Stop splitting when a node's Gini impurity is below this.
    double MinImpurity = 1e-9;
  };

  /// Learns a tree from rows of numeric features and integer labels.
  static DecisionTree fit(const std::vector<std::vector<double>> &X,
                          const std::vector<int> &Labels,
                          const Options &Opts);
  static DecisionTree fit(const std::vector<std::vector<double>> &X,
                          const std::vector<int> &Labels) {
    return fit(X, Labels, Options());
  }

  /// Predicted label for one feature vector.
  int predict(const std::vector<double> &X) const;

  /// Fraction of rows in (X, Labels) predicted correctly.
  double accuracy(const std::vector<std::vector<double>> &X,
                  const std::vector<int> &Labels) const;

  size_t numNodes() const { return Nodes.size(); }
  size_t numLeaves() const;
  size_t depth() const;

  /// Indented textual dump for debugging, one node per line.
  std::string dump(const std::vector<std::string> &FeatureNames = {}) const;

  /// Artifact serialization: each node as the compact array
  /// [feature, threshold, label, left, right]. fromJson re-checks the
  /// builder's structural invariants (children strictly after parents)
  /// so traversal of a loaded tree always terminates.
  Json toJson() const;
  static Expected<DecisionTree> fromJson(const Json &Value);

private:
  struct Node {
    // Leaf when Feature < 0; then Label holds the prediction.
    int Feature = -1;
    double Threshold = 0.0;
    int Label = 0;
    int Left = -1;  // Index of the <= Threshold child.
    int Right = -1; // Index of the > Threshold child.
  };

  int buildNode(const std::vector<std::vector<double>> &X,
                const std::vector<int> &Labels,
                const std::vector<size_t> &Indices, size_t Depth,
                const Options &Opts);
  size_t depthFrom(int NodeIdx) const;

  std::vector<Node> Nodes;
  size_t NumFeatures = 0;
};

} // namespace opprox

#endif // OPPROX_ML_DECISIONTREE_H
