//===- ml/PolynomialFeatures.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/PolynomialFeatures.h"
#include "support/StringUtils.h"
#include <cassert>
#include <cmath>

using namespace opprox;

static void enumerateExponents(size_t Feature, size_t NumFeatures,
                               int Remaining, std::vector<int> &Current,
                               std::vector<std::vector<int>> &Out) {
  if (Feature == NumFeatures) {
    Out.push_back(Current);
    return;
  }
  for (int E = 0; E <= Remaining; ++E) {
    Current[Feature] = E;
    enumerateExponents(Feature + 1, NumFeatures, Remaining - E, Current, Out);
  }
  Current[Feature] = 0;
}

PolynomialFeatures::PolynomialFeatures(size_t NumFeatures, int Degree,
                                       size_t MaxTerms)
    : NumFeatures(NumFeatures), Degree(Degree) {
  assert(Degree >= 0 && "negative polynomial degree");
  assert(countTerms(NumFeatures, Degree) <= MaxTerms &&
         "polynomial basis too large; lower the degree or filter features");
  std::vector<int> Current(NumFeatures, 0);
  enumerateExponents(0, NumFeatures, Degree, Current, Exponents);
}

std::vector<double>
PolynomialFeatures::expand(const std::vector<double> &X) const {
  assert(X.size() == NumFeatures && "input length mismatch");
  std::vector<double> Out(Exponents.size());
  expandInto(X.data(), Out.data());
  return Out;
}

void PolynomialFeatures::expandInto(const double *X, double *Out) const {
  for (size_t T = 0; T < Exponents.size(); ++T) {
    const std::vector<int> &Exp = Exponents[T];
    double Term = 1.0;
    for (size_t F = 0; F < NumFeatures; ++F) {
      for (int E = 0; E < Exp[F]; ++E)
        Term *= X[F];
    }
    Out[T] = Term;
  }
}

std::string
PolynomialFeatures::termName(size_t Term,
                             const std::vector<std::string> &Names) const {
  assert(Term < Exponents.size() && "term index out of range");
  const std::vector<int> &Exp = Exponents[Term];
  std::string Out;
  for (size_t F = 0; F < NumFeatures; ++F) {
    if (Exp[F] == 0)
      continue;
    if (!Out.empty())
      Out += "*";
    std::string Var =
        F < Names.size() ? Names[F] : format("x%zu", F);
    Out += Var;
    if (Exp[F] > 1)
      Out += format("^%d", Exp[F]);
  }
  return Out.empty() ? "1" : Out;
}

size_t PolynomialFeatures::countTerms(size_t NumFeatures, int Degree) {
  // C(NumFeatures + Degree, Degree), computed incrementally to stay exact
  // for the small arguments we use.
  size_t Count = 1;
  for (int I = 1; I <= Degree; ++I) {
    Count = Count * (NumFeatures + static_cast<size_t>(I)) /
            static_cast<size_t>(I);
  }
  return Count;
}
