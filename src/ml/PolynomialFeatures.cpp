//===- ml/PolynomialFeatures.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/PolynomialFeatures.h"
#include "support/Simd.h"
#include "support/StringUtils.h"
#include <algorithm>
#include <cassert>
#include <cmath>

using namespace opprox;

static void enumerateExponents(size_t Feature, size_t NumFeatures,
                               int Remaining, std::vector<int> &Current,
                               std::vector<std::vector<int>> &Out) {
  if (Feature == NumFeatures) {
    Out.push_back(Current);
    return;
  }
  for (int E = 0; E <= Remaining; ++E) {
    Current[Feature] = E;
    enumerateExponents(Feature + 1, NumFeatures, Remaining - E, Current, Out);
  }
  Current[Feature] = 0;
}

PolynomialFeatures::PolynomialFeatures(size_t NumFeatures, int Degree,
                                       size_t MaxTerms)
    : NumFeatures(NumFeatures), Degree(Degree) {
  assert(Degree >= 0 && "negative polynomial degree");
  assert(countTerms(NumFeatures, Degree) <= MaxTerms &&
         "polynomial basis too large; lower the degree or filter features");
  std::vector<int> Current(NumFeatures, 0);
  enumerateExponents(0, NumFeatures, Degree, Current, Exponents);

  // Flatten each term's multiply chain for the batch kernel.
  ChainBegin.reserve(Exponents.size() + 1);
  ChainBegin.push_back(0);
  for (const std::vector<int> &Exp : Exponents) {
    for (size_t F = 0; F < NumFeatures; ++F)
      for (int E = 0; E < Exp[F]; ++E)
        ChainFeatures.push_back(static_cast<uint32_t>(F));
    ChainBegin.push_back(static_cast<uint32_t>(ChainFeatures.size()));
  }
}

std::vector<double>
PolynomialFeatures::expand(const std::vector<double> &X) const {
  assert(X.size() == NumFeatures && "input length mismatch");
  std::vector<double> Out(Exponents.size());
  expandInto(X.data(), Out.data());
  return Out;
}

void PolynomialFeatures::expandInto(const double *X, double *Out) const {
  // Walks the precomputed chains: the same left-to-right multiply
  // sequence as the original per-exponent loops (zero exponents never
  // multiplied anything), so values are unchanged bit for bit.
  for (size_t T = 0; T < Exponents.size(); ++T) {
    double Term = 1.0;
    for (uint32_t I = ChainBegin[T]; I < ChainBegin[T + 1]; ++I)
      Term *= X[ChainFeatures[I]];
    Out[T] = Term;
  }
}

void PolynomialFeatures::evaluateColumns(const double *Cols, size_t Stride,
                                         size_t N, const double *Coeffs,
                                         double *Out,
                                         double *TermScratch) const {
  std::fill(Out, Out + N, 0.0);
  for (size_t T = 0; T < Exponents.size(); ++T) {
    uint32_t Begin = ChainBegin[T], End = ChainBegin[T + 1];
    double C = Coeffs[T];
    if (Begin == End) {
      // Constant term: scalar path adds C * 1.0 == C exactly.
      simd::addScalar(Out, C, N);
      continue;
    }
    const double *First = Cols + ChainFeatures[Begin] * Stride;
    if (End - Begin == 1) {
      // Degree-1 term: the chain is the column itself (1.0 * x == x).
      simd::axpy(Out, C, First, N);
      continue;
    }
    // Left-to-right column product, replaying the scalar chain
    // (((x_a * x_b) * x_c) ...); 1.0 * x_a == x_a exactly, so starting
    // from the first column drops no bits.
    simd::mul(TermScratch, First, Cols + ChainFeatures[Begin + 1] * Stride,
              N);
    for (uint32_t I = Begin + 2; I < End; ++I)
      simd::mul(TermScratch, TermScratch, Cols + ChainFeatures[I] * Stride,
                N);
    simd::axpy(Out, C, TermScratch, N);
  }
}

std::string
PolynomialFeatures::termName(size_t Term,
                             const std::vector<std::string> &Names) const {
  assert(Term < Exponents.size() && "term index out of range");
  const std::vector<int> &Exp = Exponents[Term];
  std::string Out;
  for (size_t F = 0; F < NumFeatures; ++F) {
    if (Exp[F] == 0)
      continue;
    if (!Out.empty())
      Out += "*";
    std::string Var =
        F < Names.size() ? Names[F] : format("x%zu", F);
    Out += Var;
    if (Exp[F] > 1)
      Out += format("^%d", Exp[F]);
  }
  return Out.empty() ? "1" : Out;
}

size_t PolynomialFeatures::countTerms(size_t NumFeatures, int Degree) {
  // C(NumFeatures + Degree, Degree), computed incrementally to stay exact
  // for the small arguments we use.
  size_t Count = 1;
  for (int I = 1; I <= Degree; ++I) {
    Count = Count * (NumFeatures + static_cast<size_t>(I)) /
            static_cast<size_t>(I);
  }
  return Count;
}
