//===- ml/Mic.cpp ---------------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/Mic.h"
#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

using namespace opprox;

std::vector<size_t> opprox::equalFrequencyBins(
    const std::vector<double> &Values, size_t NumBins, size_t &BinsUsed) {
  assert(NumBins >= 1 && "need at least one bin");
  size_t N = Values.size();
  std::vector<size_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  std::sort(Order.begin(), Order.end(),
            [&](size_t A, size_t B) { return Values[A] < Values[B]; });

  std::vector<size_t> Bins(N, 0);
  size_t Base = N / NumBins;
  size_t Extra = N % NumBins;
  auto TargetFor = [&](size_t Bin) {
    return std::max<size_t>(1, Base + (Bin < Extra ? 1 : 0));
  };
  size_t CurrentBin = 0;
  size_t FilledInBin = 0;
  for (size_t Pos = 0; Pos < N; ++Pos) {
    // Ties must share a bin so equal values stay in one cell.
    bool TieWithPrev =
        Pos > 0 && Values[Order[Pos]] == Values[Order[Pos - 1]];
    if (FilledInBin >= TargetFor(CurrentBin) && !TieWithPrev &&
        CurrentBin + 1 < NumBins) {
      ++CurrentBin;
      FilledInBin = 0;
    }
    Bins[Order[Pos]] = CurrentBin;
    ++FilledInBin;
  }
  BinsUsed = CurrentBin + 1;
  return Bins;
}

double opprox::mutualInformation(const std::vector<size_t> &BinsX,
                                 const std::vector<size_t> &BinsY,
                                 size_t NumBinsX, size_t NumBinsY) {
  assert(BinsX.size() == BinsY.size() && "mismatched series");
  size_t N = BinsX.size();
  if (N == 0)
    return 0.0;
  std::vector<double> Joint(NumBinsX * NumBinsY, 0.0);
  std::vector<double> MarginalX(NumBinsX, 0.0), MarginalY(NumBinsY, 0.0);
  double W = 1.0 / static_cast<double>(N);
  for (size_t I = 0; I < N; ++I) {
    assert(BinsX[I] < NumBinsX && BinsY[I] < NumBinsY && "bin out of range");
    Joint[BinsX[I] * NumBinsY + BinsY[I]] += W;
    MarginalX[BinsX[I]] += W;
    MarginalY[BinsY[I]] += W;
  }
  double Info = 0.0;
  for (size_t BX = 0; BX < NumBinsX; ++BX) {
    for (size_t BY = 0; BY < NumBinsY; ++BY) {
      double P = Joint[BX * NumBinsY + BY];
      if (P <= 0.0)
        continue;
      Info += P * std::log2(P / (MarginalX[BX] * MarginalY[BY]));
    }
  }
  return std::max(Info, 0.0);
}

double opprox::mic(const std::vector<double> &X, const std::vector<double> &Y,
                   const MicOptions &Opts) {
  assert(X.size() == Y.size() && "mismatched series");
  size_t N = X.size();
  if (N < 8)
    return 0.0;

  double Budget = std::pow(static_cast<double>(N), Opts.Alpha);
  size_t MaxAxis =
      std::min<size_t>(Opts.MaxBins, static_cast<size_t>(Budget / 2.0));
  if (MaxAxis < 2)
    MaxAxis = 2;

  double Best = 0.0;
  for (size_t A = 2; A <= MaxAxis; ++A) {
    for (size_t B = 2; B <= MaxAxis; ++B) {
      if (static_cast<double>(A) * static_cast<double>(B) > Budget)
        continue;
      size_t UsedA = 0, UsedB = 0;
      std::vector<size_t> BinsX = equalFrequencyBins(X, A, UsedA);
      std::vector<size_t> BinsY = equalFrequencyBins(Y, B, UsedB);
      if (UsedA < 2 || UsedB < 2)
        continue; // A constant axis carries no information.
      double Info = mutualInformation(BinsX, BinsY, UsedA, UsedB);
      double Normalizer = std::log2(static_cast<double>(std::min(UsedA,
                                                                 UsedB)));
      if (Normalizer <= 0.0)
        continue;
      Best = std::max(Best, Info / Normalizer);
    }
  }
  return std::min(Best, 1.0);
}
