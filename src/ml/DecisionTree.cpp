//===- ml/DecisionTree.cpp ------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/DecisionTree.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <numeric>

using namespace opprox;

/// Gini impurity of the label multiset described by \p Counts over
/// \p Total samples.
static double giniFromCounts(const std::map<int, size_t> &Counts,
                             size_t Total) {
  if (Total == 0)
    return 0.0;
  double Sum = 0.0;
  for (const auto &[Label, Count] : Counts) {
    double P = static_cast<double>(Count) / static_cast<double>(Total);
    Sum += P * P;
  }
  return 1.0 - Sum;
}

static int majorityLabel(const std::map<int, size_t> &Counts) {
  assert(!Counts.empty() && "majority of empty node");
  int Best = Counts.begin()->first;
  size_t BestCount = 0;
  for (const auto &[Label, Count] : Counts) {
    if (Count > BestCount) {
      Best = Label;
      BestCount = Count;
    }
  }
  return Best;
}

DecisionTree DecisionTree::fit(const std::vector<std::vector<double>> &X,
                               const std::vector<int> &Labels,
                               const Options &Opts) {
  assert(!X.empty() && X.size() == Labels.size() &&
         "empty or mismatched training data");
  DecisionTree Tree;
  Tree.NumFeatures = X.front().size();
  std::vector<size_t> AllIndices(X.size());
  std::iota(AllIndices.begin(), AllIndices.end(), 0);
  Tree.buildNode(X, Labels, AllIndices, 0, Opts);
  return Tree;
}

int DecisionTree::buildNode(const std::vector<std::vector<double>> &X,
                            const std::vector<int> &Labels,
                            const std::vector<size_t> &Indices, size_t Depth,
                            const Options &Opts) {
  std::map<int, size_t> Counts;
  for (size_t I : Indices)
    ++Counts[Labels[I]];
  double Impurity = giniFromCounts(Counts, Indices.size());

  int NodeIdx = static_cast<int>(Nodes.size());
  Nodes.emplace_back();
  Nodes[NodeIdx].Label = majorityLabel(Counts);

  if (Depth >= Opts.MaxDepth || Impurity <= Opts.MinImpurity ||
      Indices.size() < 2 * Opts.MinSamplesLeaf)
    return NodeIdx;

  // Find the (feature, threshold) split minimizing weighted child Gini.
  double BestScore = Impurity;
  int BestFeature = -1;
  double BestThreshold = 0.0;
  for (size_t F = 0; F < NumFeatures; ++F) {
    // Sort this node's samples by the feature value.
    std::vector<size_t> Sorted = Indices;
    std::sort(Sorted.begin(), Sorted.end(), [&](size_t A, size_t B) {
      return X[A][F] < X[B][F];
    });
    std::map<int, size_t> LeftCounts;
    std::map<int, size_t> RightCounts = Counts;
    for (size_t Pos = 0; Pos + 1 < Sorted.size(); ++Pos) {
      int Label = Labels[Sorted[Pos]];
      ++LeftCounts[Label];
      auto It = RightCounts.find(Label);
      if (--It->second == 0)
        RightCounts.erase(It);
      double Lo = X[Sorted[Pos]][F], Hi = X[Sorted[Pos + 1]][F];
      if (Lo == Hi)
        continue; // No threshold separates equal values.
      size_t NL = Pos + 1, NR = Sorted.size() - NL;
      if (NL < Opts.MinSamplesLeaf || NR < Opts.MinSamplesLeaf)
        continue;
      double Score =
          (static_cast<double>(NL) * giniFromCounts(LeftCounts, NL) +
           static_cast<double>(NR) * giniFromCounts(RightCounts, NR)) /
          static_cast<double>(Sorted.size());
      if (Score + 1e-12 < BestScore) {
        BestScore = Score;
        BestFeature = static_cast<int>(F);
        BestThreshold = 0.5 * (Lo + Hi);
      }
    }
  }

  if (BestFeature < 0)
    return NodeIdx; // No useful split; stay a leaf.

  std::vector<size_t> LeftIdx, RightIdx;
  for (size_t I : Indices) {
    if (X[I][static_cast<size_t>(BestFeature)] <= BestThreshold)
      LeftIdx.push_back(I);
    else
      RightIdx.push_back(I);
  }
  assert(!LeftIdx.empty() && !RightIdx.empty() && "degenerate split");

  Nodes[NodeIdx].Feature = BestFeature;
  Nodes[NodeIdx].Threshold = BestThreshold;
  int Left = buildNode(X, Labels, LeftIdx, Depth + 1, Opts);
  int Right = buildNode(X, Labels, RightIdx, Depth + 1, Opts);
  Nodes[NodeIdx].Left = Left;
  Nodes[NodeIdx].Right = Right;
  return NodeIdx;
}

int DecisionTree::predict(const std::vector<double> &X) const {
  assert(!Nodes.empty() && "predict on unfitted tree");
  assert(X.size() == NumFeatures && "feature count mismatch");
  int Idx = 0;
  while (Nodes[static_cast<size_t>(Idx)].Feature >= 0) {
    const Node &N = Nodes[static_cast<size_t>(Idx)];
    Idx = X[static_cast<size_t>(N.Feature)] <= N.Threshold ? N.Left : N.Right;
  }
  return Nodes[static_cast<size_t>(Idx)].Label;
}

double DecisionTree::accuracy(const std::vector<std::vector<double>> &X,
                              const std::vector<int> &Labels) const {
  assert(X.size() == Labels.size() && "mismatched data");
  if (X.empty())
    return 1.0;
  size_t Correct = 0;
  for (size_t I = 0; I < X.size(); ++I)
    if (predict(X[I]) == Labels[I])
      ++Correct;
  return static_cast<double>(Correct) / static_cast<double>(X.size());
}

size_t DecisionTree::numLeaves() const {
  size_t Leaves = 0;
  for (const Node &N : Nodes)
    if (N.Feature < 0)
      ++Leaves;
  return Leaves;
}

size_t DecisionTree::depthFrom(int NodeIdx) const {
  const Node &N = Nodes[static_cast<size_t>(NodeIdx)];
  if (N.Feature < 0)
    return 0;
  return 1 + std::max(depthFrom(N.Left), depthFrom(N.Right));
}

size_t DecisionTree::depth() const {
  return Nodes.empty() ? 0 : depthFrom(0);
}

Json DecisionTree::toJson() const {
  Json Out = Json::object();
  Out.set("num_features", NumFeatures);
  Json NodeList = Json::array();
  for (const Node &N : Nodes) {
    Json Entry = Json::array();
    Entry.push(N.Feature);
    Entry.push(N.Threshold);
    Entry.push(N.Label);
    Entry.push(N.Left);
    Entry.push(N.Right);
    NodeList.push(std::move(Entry));
  }
  Out.set("nodes", std::move(NodeList));
  return Out;
}

/// Reads element \p I of a node entry as an integer-valued number.
static Expected<long> nodeInt(const Json &Entry, size_t NodeIdx, size_t I) {
  const Json &V = Entry.at(I);
  if (!V.isNumber() || V.asNumber() != std::floor(V.asNumber()))
    return Error(format("tree node %zu field %zu is not an integer", NodeIdx,
                        I));
  return static_cast<long>(V.asNumber());
}

Expected<DecisionTree> DecisionTree::fromJson(const Json &Value) {
  Expected<size_t> NumFeatures = getSize(Value, "num_features");
  if (!NumFeatures)
    return NumFeatures.error();
  Expected<const Json *> NodeList = getArray(Value, "nodes");
  if (!NodeList)
    return NodeList.error();
  if ((*NodeList)->size() == 0)
    return Error("decision tree has no nodes");

  DecisionTree Tree;
  Tree.NumFeatures = *NumFeatures;
  size_t Count = (*NodeList)->size();
  for (size_t I = 0; I < Count; ++I) {
    const Json &Entry = (*NodeList)->at(I);
    if (!Entry.isArray() || Entry.size() != 5)
      return Error(format("tree node %zu is not a 5-element array", I));
    Expected<long> Feature = nodeInt(Entry, I, 0);
    if (!Feature)
      return Feature.error();
    if (!Entry.at(1).isNumber())
      return Error(format("tree node %zu threshold is not a number", I));
    double Threshold = Entry.at(1).asNumber();
    Expected<long> Label = nodeInt(Entry, I, 2);
    if (!Label)
      return Label.error();
    Expected<long> Left = nodeInt(Entry, I, 3);
    if (!Left)
      return Left.error();
    Expected<long> Right = nodeInt(Entry, I, 4);
    if (!Right)
      return Right.error();

    Node N;
    if (*Feature >= 0) {
      // Interior node. The builder always places children after their
      // parent, and predict() relies on that to terminate; enforce it
      // here so a corrupted artifact cannot produce a traversal cycle.
      if (static_cast<size_t>(*Feature) >= Tree.NumFeatures)
        return Error(format("tree node %zu splits on feature %ld of %zu", I,
                            *Feature, Tree.NumFeatures));
      bool ChildrenValid =
          *Left > static_cast<long>(I) && *Right > static_cast<long>(I) &&
          static_cast<size_t>(*Left) < Count &&
          static_cast<size_t>(*Right) < Count;
      if (!ChildrenValid)
        return Error(format("tree node %zu has out-of-order children", I));
      N.Feature = static_cast<int>(*Feature);
      N.Threshold = Threshold;
      N.Left = static_cast<int>(*Left);
      N.Right = static_cast<int>(*Right);
    } else if (*Left != -1 || *Right != -1) {
      return Error(format("tree leaf %zu has children", I));
    }
    if (*Label < 0)
      return Error(format("tree node %zu has negative class label", I));
    N.Label = static_cast<int>(*Label);
    Tree.Nodes.push_back(N);
  }
  return Tree;
}

std::string
DecisionTree::dump(const std::vector<std::string> &FeatureNames) const {
  std::string Out;
  // Depth-first dump mirroring predict()'s traversal order.
  struct StackEntry {
    int Idx;
    size_t Indent;
  };
  std::vector<StackEntry> Stack = {{0, 0}};
  while (!Stack.empty()) {
    auto [Idx, Indent] = Stack.back();
    Stack.pop_back();
    const Node &N = Nodes[static_cast<size_t>(Idx)];
    Out += std::string(Indent * 2, ' ');
    if (N.Feature < 0) {
      Out += format("leaf -> class %d\n", N.Label);
      continue;
    }
    std::string Name =
        static_cast<size_t>(N.Feature) < FeatureNames.size()
            ? FeatureNames[static_cast<size_t>(N.Feature)]
            : format("f%d", N.Feature);
    Out += format("%s <= %.6g ?\n", Name.c_str(), N.Threshold);
    Stack.push_back({N.Right, Indent + 1});
    Stack.push_back({N.Left, Indent + 1});
  }
  return Out;
}
