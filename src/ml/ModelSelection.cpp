//===- ml/ModelSelection.cpp ----------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/ModelSelection.h"
#include "ml/CrossValidation.h"
#include "ml/Mic.h"
#include "support/Json.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <numeric>

using namespace opprox;

/// Picks the best degree by cross-validated R^2, stopping early once the
/// target is reached. Returns (degree, cvR2).
static std::pair<int, double> pickDegree(const Dataset &Data,
                                         const ModelSelectOptions &Opts,
                                         Rng &Rng, ThreadPool *Pool) {
  int BestDegree = Opts.MinDegree;
  double BestR2 = -1e18;
  for (int Degree = Opts.MinDegree; Degree <= Opts.MaxDegree; ++Degree) {
    // Guard against combinatorial blow-up of the basis.
    if (PolynomialFeatures::countTerms(Data.numFeatures(), Degree) >
        std::max<size_t>(Data.numSamples(), 64))
      break;
    PolynomialRegression::Options FitOpts;
    FitOpts.Degree = Degree;
    double R2 = crossValidatedR2(Data, FitOpts, Opts.Folds, Rng, Pool);
    if (R2 > BestR2) {
      BestR2 = R2;
      BestDegree = Degree;
    }
    if (R2 >= Opts.TargetR2)
      break;
  }
  return {BestDegree, BestR2};
}

SelectedModel SelectedModel::train(const Dataset &Data,
                                   const ModelSelectOptions &Opts, Rng &Rng,
                                   ThreadPool *Pool) {
  assert(!Data.empty() && "cannot train on empty data");
  SelectedModel Model;

  // Step 1: MIC feature filtering. Keep every feature whose association
  // with the target clears the threshold; if none does (pathological),
  // keep them all rather than fit a constant.
  std::vector<double> MicScores(Data.numFeatures(), 1.0);
  if (Opts.MicThreshold > 0.0) {
    for (size_t F = 0; F < Data.numFeatures(); ++F)
      MicScores[F] = mic(Data.featureColumn(F), Data.targets());
  }
  for (size_t F = 0; F < Data.numFeatures(); ++F)
    if (MicScores[F] >= Opts.MicThreshold)
      Model.KeptFeatures.push_back(F);
  if (Model.KeptFeatures.empty()) {
    Model.KeptFeatures.resize(Data.numFeatures());
    std::iota(Model.KeptFeatures.begin(), Model.KeptFeatures.end(), 0);
  }
  {
    static Counter &Kept =
        MetricsRegistry::global().counter("ml.mic.features_kept");
    static Counter &Dropped =
        MetricsRegistry::global().counter("ml.mic.features_dropped");
    Kept.add(Model.KeptFeatures.size());
    Dropped.add(Data.numFeatures() - Model.KeptFeatures.size());
  }
  Dataset Filtered = Data.selectFeatures(Model.KeptFeatures);

  // Step 2: degree escalation with cross-validation.
  auto [Degree, CvR2] = pickDegree(Filtered, Opts, Rng, Pool);
  Model.BestCvR2 = CvR2;

  PolynomialRegression::Options FitOpts;
  FitOpts.Degree = Degree;

  // Step 3: subcategory splitting when the global model is weak. Split
  // along the filtered feature with the highest MIC into magnitude-ordered
  // subsets (Sec. 3.7: "splits the values of a feature put in magnitude
  // order into k subsets").
  bool TrySplit =
      CvR2 < Opts.TargetR2 && Opts.MaxSubcategories >= 2 &&
      Filtered.numSamples() >=
          Opts.MaxSubcategories * Opts.MinSubcategorySamples &&
      Filtered.numFeatures() >= 1;
  if (TrySplit) {
    // Most informative kept feature.
    size_t BestF = 0;
    double BestMic = -1.0;
    for (size_t F = 0; F < Model.KeptFeatures.size(); ++F) {
      double Score = MicScores[Model.KeptFeatures[F]];
      if (Score > BestMic) {
        BestMic = Score;
        BestF = F;
      }
    }
    std::vector<double> Column = Filtered.featureColumn(BestF);
    std::vector<double> Sorted = Column;
    std::sort(Sorted.begin(), Sorted.end());
    size_t K = Opts.MaxSubcategories;
    std::vector<double> Boundaries;
    for (size_t I = 1; I < K; ++I) {
      double Boundary = Sorted[I * Sorted.size() / K];
      if (Boundaries.empty() || Boundary > Boundaries.back())
        Boundaries.push_back(Boundary);
    }
    if (!Boundaries.empty()) {
      // Partition rows by boundary.
      std::vector<std::vector<size_t>> Parts(Boundaries.size() + 1);
      for (size_t I = 0; I < Column.size(); ++I) {
        size_t Part = Boundaries.size();
        for (size_t B = 0; B < Boundaries.size(); ++B) {
          if (Column[I] < Boundaries[B]) {
            Part = B;
            break;
          }
        }
        Parts[Part].push_back(I);
      }
      bool AllViable = true;
      for (const auto &Part : Parts)
        AllViable = AllViable && Part.size() >= Opts.MinSubcategorySamples;
      if (AllViable) {
        Model.SplitFeature = BestF;
        Model.SplitBoundaries = Boundaries;
        for (const auto &Part : Parts)
          Model.Submodels.push_back(
              PolynomialRegression::fit(Filtered.selectRows(Part), FitOpts));
      }
    }
  }

  // Single global model when no split happened.
  if (Model.Submodels.empty())
    Model.Submodels.push_back(PolynomialRegression::fit(Filtered, FitOpts));

  // Step 4: the confidence interval comes from *out-of-fold* residuals
  // (each sample predicted by a model that never saw it). Training
  // residuals would be optimistically small and the optimizer, which
  // picks the most favourable-looking configurations, would
  // systematically bust its QoS budget (winner's curse).
  std::vector<double> Residuals;
  Residuals.reserve(Data.numSamples());
  if (Data.numSamples() >= 6) {
    for (const std::vector<size_t> &TestFold :
         kFoldIndices(Data.numSamples(), Opts.Folds, Rng)) {
      std::vector<bool> InTest(Data.numSamples(), false);
      for (size_t I : TestFold)
        InTest[I] = true;
      std::vector<size_t> TrainIdx;
      for (size_t I = 0; I < Data.numSamples(); ++I)
        if (!InTest[I])
          TrainIdx.push_back(I);
      if (TrainIdx.empty())
        continue;
      PolynomialRegression FoldModel =
          PolynomialRegression::fit(Filtered.selectRows(TrainIdx), FitOpts);
      for (size_t I : TestFold)
        Residuals.push_back(FoldModel.predict(Filtered.sample(I)) -
                            Data.target(I));
    }
  } else {
    for (size_t I = 0; I < Data.numSamples(); ++I)
      Residuals.push_back(Model.predict(Data.sample(I)) - Data.target(I));
  }
  Model.Interval = ConfidenceInterval::fromResiduals(Residuals);
  return Model;
}

std::vector<double>
SelectedModel::filterFeatures(const std::vector<double> &X) const {
  std::vector<double> Filtered;
  Filtered.reserve(KeptFeatures.size());
  for (size_t F : KeptFeatures) {
    assert(F < X.size() && "feature vector too short");
    Filtered.push_back(X[F]);
  }
  return Filtered;
}

size_t SelectedModel::submodelFor(const std::vector<double> &Filtered) const {
  if (SplitBoundaries.empty())
    return 0;
  double Value = Filtered[SplitFeature];
  for (size_t B = 0; B < SplitBoundaries.size(); ++B)
    if (Value < SplitBoundaries[B])
      return B;
  return SplitBoundaries.size();
}

double SelectedModel::predict(const std::vector<double> &X) const {
  assert(!Submodels.empty() && "predict on untrained model");
  std::vector<double> Filtered = filterFeatures(X);
  return Submodels[submodelFor(Filtered)].predict(Filtered);
}

void SelectedModel::predictBatch(const Matrix &X, std::vector<double> &Out,
                                 BatchScratch &S) const {
  assert(!Submodels.empty() && "predict on untrained model");
  size_t N = X.rows();
  size_t NumKept = KeptFeatures.size();
  size_t Stride = AlignedBuffer<double>::paddedStride(N);
  // MIC filter as a transpose: kept feature F becomes the contiguous
  // column Filtered + F * Stride, which the polynomial kernels consume
  // directly.
  double *Filtered = S.Filtered.ensure(NumKept * Stride);
  for (size_t F = 0; F < NumKept; ++F) {
    assert(KeptFeatures[F] < X.cols() && "feature vector too short");
    double *Dst = Filtered + F * Stride;
    for (size_t R = 0; R < N; ++R)
      Dst[R] = X.at(R, KeptFeatures[F]);
  }
  if (SplitBoundaries.empty()) {
    Submodels.front().predictBatchColumns(Filtered, Stride, N, Out, S.Poly);
    return;
  }
  // Subcategory models: gather each sub-model's points into contiguous
  // columns, evaluate, and scatter results back. Point results do not
  // depend on which other points share the batch, so this matches the
  // scalar path bit for bit.
  Out.resize(N);
  const double *SplitCol = Filtered + SplitFeature * Stride;
  for (size_t M = 0; M < Submodels.size(); ++M) {
    S.GroupRows.clear();
    for (size_t R = 0; R < N; ++R) {
      double Value = SplitCol[R];
      size_t Part = SplitBoundaries.size();
      for (size_t B = 0; B < SplitBoundaries.size(); ++B) {
        if (Value < SplitBoundaries[B]) {
          Part = B;
          break;
        }
      }
      if (Part == M)
        S.GroupRows.push_back(R);
    }
    if (S.GroupRows.empty())
      continue;
    size_t GroupN = S.GroupRows.size();
    size_t GroupStride = AlignedBuffer<double>::paddedStride(GroupN);
    double *GroupX = S.GroupX.ensure(NumKept * GroupStride);
    for (size_t F = 0; F < NumKept; ++F) {
      const double *Src = Filtered + F * Stride;
      double *Dst = GroupX + F * GroupStride;
      for (size_t I = 0; I < GroupN; ++I)
        Dst[I] = Src[S.GroupRows[I]];
    }
    Submodels[M].predictBatchColumns(GroupX, GroupStride, GroupN, S.GroupOut,
                                     S.Poly);
    for (size_t I = 0; I < GroupN; ++I)
      Out[S.GroupRows[I]] = S.GroupOut[I];
  }
}

std::pair<double, double>
SelectedModel::boundsOver(const std::vector<double> &Lo,
                          const std::vector<double> &Hi) const {
  assert(!Submodels.empty() && "bounds on untrained model");
  std::vector<double> FLo = filterFeatures(Lo);
  std::vector<double> FHi = filterFeatures(Hi);
  if (SplitBoundaries.empty())
    return Submodels.front().boundsOver(FLo, FHi);

  // With subcategory splitting only some sub-models can fire inside the
  // box; hull their bounds. submodelFor routes value V to the first
  // boundary with V < B[m] (or the last sub-model), so sub-model m is
  // reachable iff some V in [VLo, VHi] takes that branch.
  double VLo = FLo[SplitFeature];
  double VHi = FHi[SplitFeature];
  double HullLo = std::numeric_limits<double>::infinity();
  double HullHi = -std::numeric_limits<double>::infinity();
  for (size_t M = 0; M <= SplitBoundaries.size(); ++M) {
    bool Reachable;
    if (M == 0)
      Reachable = VLo < SplitBoundaries[0];
    else if (M == SplitBoundaries.size())
      Reachable = VHi >= SplitBoundaries.back();
    else
      Reachable = VHi >= SplitBoundaries[M - 1] && VLo < SplitBoundaries[M];
    if (!Reachable)
      continue;
    auto [BLo, BHi] = Submodels[M].boundsOver(FLo, FHi);
    HullLo = std::min(HullLo, BLo);
    HullHi = std::max(HullHi, BHi);
  }
  assert(HullLo <= HullHi && "no reachable submodel over a non-empty box");
  return {HullLo, HullHi};
}

int SelectedModel::degree() const {
  assert(!Submodels.empty() && "degree of untrained model");
  return Submodels.front().degree();
}

Json SelectedModel::toJson() const {
  Json Out = Json::object();
  Out.set("kept_features", Json::numberArray(KeptFeatures));
  Out.set("split_feature", SplitFeature);
  Out.set("split_boundaries", Json::numberArray(SplitBoundaries));
  Json Models = Json::array();
  for (const PolynomialRegression &Sub : Submodels)
    Models.push(Sub.toJson());
  Out.set("submodels", std::move(Models));
  Out.set("confidence", Interval.toJson());
  Out.set("cv_r2", BestCvR2);
  return Out;
}

Expected<SelectedModel> SelectedModel::fromJson(const Json &Value) {
  Expected<std::vector<size_t>> Kept = getSizeVector(Value, "kept_features");
  if (!Kept)
    return Kept.error();
  Expected<size_t> SplitFeature = getSize(Value, "split_feature");
  if (!SplitFeature)
    return SplitFeature.error();
  Expected<std::vector<double>> Boundaries =
      getNumberVector(Value, "split_boundaries");
  if (!Boundaries)
    return Boundaries.error();
  Expected<const Json *> Submodels = getArray(Value, "submodels");
  if (!Submodels)
    return Submodels.error();
  Expected<const Json *> Confidence = getObject(Value, "confidence");
  if (!Confidence)
    return Confidence.error();
  Expected<double> CvR2 = getNumber(Value, "cv_r2");
  if (!CvR2)
    return CvR2.error();

  SelectedModel Model;
  Model.KeptFeatures = std::move(*Kept);
  Model.SplitFeature = *SplitFeature;
  Model.SplitBoundaries = std::move(*Boundaries);
  Model.BestCvR2 = *CvR2;
  for (size_t I = 0; I < (*Submodels)->size(); ++I) {
    Expected<PolynomialRegression> Sub =
        PolynomialRegression::fromJson((*Submodels)->at(I));
    if (!Sub)
      return Error(format("submodel %zu: %s", I,
                          Sub.error().message().c_str()));
    Model.Submodels.push_back(std::move(*Sub));
  }
  Expected<ConfidenceInterval> Interval =
      ConfidenceInterval::fromJson(**Confidence);
  if (!Interval)
    return Interval.error();
  Model.Interval = std::move(*Interval);

  // Cross-validate the structural invariants predict() relies on so a
  // corrupted artifact fails load, not prediction.
  if (Model.Submodels.empty())
    return Error("selected model has no submodels");
  if (Model.Submodels.size() != Model.SplitBoundaries.size() + 1)
    return Error(format("selected model has %zu submodels but %zu split "
                        "boundaries",
                        Model.Submodels.size(),
                        Model.SplitBoundaries.size()));
  if (!Model.SplitBoundaries.empty() &&
      Model.SplitFeature >= Model.KeptFeatures.size())
    return Error("split feature index out of range");
  for (const PolynomialRegression &Sub : Model.Submodels)
    if (Sub.numInputs() != Model.KeptFeatures.size())
      return Error("submodel input arity does not match kept features");
  return Model;
}
