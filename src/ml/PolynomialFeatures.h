//===- ml/PolynomialFeatures.h - Multivariate monomial expansion -*- C++ -*-=//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Expands raw feature vectors into all monomials of total degree up to a
/// bound, e.g. degree-2 over (s1, s2) yields 1, s1, s2, s1*s2, s1^2, s2^2
/// -- exactly the basis the paper's degree-2 speedup model example uses
/// (Sec. 3.6).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_ML_POLYNOMIALFEATURES_H
#define OPPROX_ML_POLYNOMIALFEATURES_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace opprox {

/// The monomial basis of total degree <= Degree over NumFeatures inputs.
class PolynomialFeatures {
public:
  /// Builds the exponent table. Term count is C(NumFeatures+Degree,
  /// Degree); asserts it stays under \p MaxTerms to catch runaway bases.
  PolynomialFeatures(size_t NumFeatures, int Degree, size_t MaxTerms = 4096);

  size_t numInputs() const { return NumFeatures; }
  size_t numTerms() const { return Exponents.size(); }
  int degree() const { return Degree; }

  /// Evaluates every monomial at \p X (length numInputs()).
  std::vector<double> expand(const std::vector<double> &X) const;

  /// expand() into a caller-owned buffer of numTerms() doubles; performs
  /// no allocation. Each term is computed by the same repeated
  /// multiplications as expand(), so the two produce bit-identical
  /// values.
  void expandInto(const double *X, double *Out) const;

  /// The structure-of-arrays batch kernel: evaluates the full polynomial
  /// sum(Coeffs[t] * term_t) over \p N points laid out as contiguous
  /// per-feature columns (column F at Cols + F * Stride), writing one
  /// value per point into \p Out.
  ///
  /// Every point is evaluated with the exact operation sequence of the
  /// scalar path -- each term's column product replays expandInto()'s
  /// left-to-right multiply chain, and coefficient accumulation runs in
  /// ascending term order -- so Out[i] is bit-identical to expanding
  /// point i scalar-wise and dotting with \p Coeffs. The column ops
  /// dispatch through support/Simd.h.
  ///
  /// \p TermScratch must hold at least \p N doubles (ideally 64-byte
  /// aligned, see support/AlignedBuffer.h); it stages one term-product
  /// column at a time.
  void evaluateColumns(const double *Cols, size_t Stride, size_t N,
                       const double *Coeffs, double *Out,
                       double *TermScratch) const;

  /// Exponent vector of term \p Term (length numInputs()).
  const std::vector<int> &exponents(size_t Term) const {
    return Exponents[Term];
  }

  /// Human-readable monomial, e.g. "x0^2*x1", using \p Names when given.
  std::string termName(size_t Term,
                       const std::vector<std::string> &Names = {}) const;

  /// Number of monomials of total degree <= Degree over NumFeatures
  /// variables: C(NumFeatures + Degree, Degree).
  static size_t countTerms(size_t NumFeatures, int Degree);

private:
  size_t NumFeatures;
  int Degree;
  std::vector<std::vector<int>> Exponents;
  /// Flattened multiply chains: term T multiplies the feature columns
  /// ChainFeatures[ChainBegin[T] .. ChainBegin[T+1]) left to right --
  /// feature F appears Exponents[T][F] times, in feature order. This is
  /// exactly the sequence expandInto() walks, precomputed so the batch
  /// kernel skips zero exponents without branching per feature.
  std::vector<uint32_t> ChainFeatures;
  std::vector<uint32_t> ChainBegin; // numTerms() + 1 offsets.
};

} // namespace opprox

#endif // OPPROX_ML_POLYNOMIALFEATURES_H
