//===- ml/PolynomialRegression.cpp ----------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/PolynomialRegression.h"
#include "linalg/LeastSquares.h"
#include "support/Json.h"
#include "support/Simd.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include <cmath>

using namespace opprox;

PolynomialRegression PolynomialRegression::fit(const Dataset &Data,
                                               const Options &Opts) {
  assert(!Data.empty() && "cannot fit on an empty dataset");
  size_t NumInputs = Data.numFeatures();
  PolynomialRegression Model(Opts, NumInputs);

  // Standardization statistics.
  Model.Mean.assign(NumInputs, 0.0);
  Model.Scale.assign(NumInputs, 1.0);
  if (Opts.Standardize) {
    for (size_t F = 0; F < NumInputs; ++F) {
      RunningStats S;
      for (const auto &Row : Data.samples())
        S.add(Row[F]);
      Model.Mean[F] = S.mean();
      double Sd = S.stddev();
      Model.Scale[F] = Sd > 1e-12 ? Sd : 1.0;
    }
  }

  // Design matrix in the expanded basis.
  size_t N = Data.numSamples();
  size_t Terms = Model.Basis.numTerms();
  Matrix A(N, Terms);
  for (size_t I = 0; I < N; ++I) {
    std::vector<double> Expanded =
        Model.Basis.expand(Model.standardize(Data.sample(I)));
    for (size_t T = 0; T < Terms; ++T)
      A.at(I, T) = Expanded[T];
  }

  if (N >= Terms) {
    if (std::optional<std::vector<double>> Beta =
            solveLeastSquares(A, Data.targets())) {
      Model.Coefficients = std::move(*Beta);
      return Model;
    }
  }
  // Underdetermined or rank deficient: ridge keeps the fit well-posed.
  Model.Coefficients = solveRidge(A, Data.targets(), Opts.Ridge);
  return Model;
}

std::vector<double>
PolynomialRegression::standardize(const std::vector<double> &X) const {
  assert(X.size() == Mean.size() && "feature count mismatch");
  std::vector<double> Z(X.size());
  for (size_t F = 0; F < X.size(); ++F)
    Z[F] = (X[F] - Mean[F]) / Scale[F];
  return Z;
}

double PolynomialRegression::predict(const std::vector<double> &X) const {
  std::vector<double> Expanded = Basis.expand(standardize(X));
  double Sum = 0.0;
  for (size_t T = 0; T < Expanded.size(); ++T)
    Sum += Coefficients[T] * Expanded[T];
  return Sum;
}

void PolynomialRegression::predictBatch(const Matrix &X,
                                        std::vector<double> &Out,
                                        Scratch &S) const {
  assert(X.cols() == Mean.size() && "feature count mismatch");
  size_t N = X.rows();
  size_t NumInputs = Mean.size();
  size_t Stride = AlignedBuffer<double>::paddedStride(N);
  // Transpose the row-major batch into raw feature columns, then run
  // the columnar pipeline. The gather stages one contiguous column at a
  // time so standardization stays a vector op.
  double *Z = S.Z.ensure(NumInputs * Stride);
  double *Staged = S.Gather.ensure(Stride);
  for (size_t F = 0; F < NumInputs; ++F) {
    for (size_t R = 0; R < N; ++R)
      Staged[R] = X.at(R, F);
    // Same expression as standardize(); keeps the batch path bit-exact.
    simd::standardize(Z + F * Stride, Staged, Mean[F], Scale[F], N);
  }
  Out.resize(N);
  Basis.evaluateColumns(Z, Stride, N, Coefficients.data(), Out.data(),
                        S.Term.ensure(Stride));
}

void PolynomialRegression::predictBatchColumns(const double *Cols,
                                               size_t Stride, size_t N,
                                               std::vector<double> &Out,
                                               Scratch &S) const {
  size_t NumInputs = Mean.size();
  size_t ZStride = AlignedBuffer<double>::paddedStride(N);
  double *Z = S.Z.ensure(NumInputs * ZStride);
  for (size_t F = 0; F < NumInputs; ++F)
    simd::standardize(Z + F * ZStride, Cols + F * Stride, Mean[F], Scale[F],
                      N);
  Out.resize(N);
  Basis.evaluateColumns(Z, ZStride, N, Coefficients.data(), Out.data(),
                        S.Term.ensure(ZStride));
}

namespace {
/// Bounds of x^e over [Lo, Hi] in real arithmetic.
void powerBounds(double Lo, double Hi, int E, double &PLo, double &PHi) {
  if (E == 0) {
    PLo = PHi = 1.0;
    return;
  }
  double PowLo = std::pow(Lo, E);
  double PowHi = std::pow(Hi, E);
  if (E % 2 != 0) { // Odd powers are monotone.
    PLo = PowLo;
    PHi = PowHi;
  } else if (Lo >= 0.0) {
    PLo = PowLo;
    PHi = PowHi;
  } else if (Hi <= 0.0) {
    PLo = PowHi;
    PHi = PowLo;
  } else { // Interval straddles zero: even power touches 0.
    PLo = 0.0;
    PHi = std::max(PowLo, PowHi);
  }
}

/// Interval product (ALo,AHi) * (BLo,BHi).
void intervalMul(double &ALo, double &AHi, double BLo, double BHi) {
  double P1 = ALo * BLo, P2 = ALo * BHi, P3 = AHi * BLo, P4 = AHi * BHi;
  ALo = std::min(std::min(P1, P2), std::min(P3, P4));
  AHi = std::max(std::max(P1, P2), std::max(P3, P4));
}
} // namespace

std::pair<double, double>
PolynomialRegression::boundsOver(const std::vector<double> &Lo,
                                 const std::vector<double> &Hi) const {
  assert(Lo.size() == Mean.size() && Hi.size() == Mean.size() &&
         "box arity mismatch");
  size_t NumInputs = Mean.size();
  std::vector<double> ZLo(NumInputs), ZHi(NumInputs);
  for (size_t F = 0; F < NumInputs; ++F) {
    assert(Lo[F] <= Hi[F] && "inverted box");
    // Scale is strictly positive (enforced at fit and load time), so the
    // affine map preserves interval orientation.
    ZLo[F] = (Lo[F] - Mean[F]) / Scale[F];
    ZHi[F] = (Hi[F] - Mean[F]) / Scale[F];
  }

  double SumLo = 0.0, SumHi = 0.0;
  // Total |coefficient| * |term| mass, bounding the magnitude of every
  // partial sum the scalar evaluation can form; the rounding slack below
  // scales with it.
  double AbsMass = 0.0;
  for (size_t T = 0; T < Basis.numTerms(); ++T) {
    const std::vector<int> &Exp = Basis.exponents(T);
    double TLo = 1.0, THi = 1.0;
    for (size_t F = 0; F < NumInputs; ++F) {
      if (Exp[F] == 0)
        continue;
      double PLo, PHi;
      powerBounds(ZLo[F], ZHi[F], Exp[F], PLo, PHi);
      intervalMul(TLo, THi, PLo, PHi);
    }
    double C = Coefficients[T];
    SumLo += C >= 0.0 ? C * TLo : C * THi;
    SumHi += C >= 0.0 ? C * THi : C * TLo;
    AbsMass += std::fabs(C) * std::max(std::fabs(TLo), std::fabs(THi));
  }
  // The interval math above is real-valued; the scalar evaluation rounds
  // at every operation. Its accumulated error is bounded by roughly
  // numTerms * machine-epsilon * AbsMass (~1e-12 * AbsMass for the
  // largest supported basis); 1e-9 * AbsMass leaves a 1000x margin.
  double Slack = 1e-9 * AbsMass + 1e-12;
  return {SumLo - Slack, SumHi + Slack};
}

std::vector<double>
PolynomialRegression::predictAll(const Dataset &Data) const {
  std::vector<double> Out;
  Out.reserve(Data.numSamples());
  for (const auto &Row : Data.samples())
    Out.push_back(predict(Row));
  return Out;
}

double PolynomialRegression::r2(const Dataset &Data) const {
  return r2Score(Data.targets(), predictAll(Data));
}

Json PolynomialRegression::toJson() const {
  Json Out = Json::object();
  Out.set("degree", Opts.Degree);
  Out.set("ridge", Opts.Ridge);
  Out.set("standardize", Opts.Standardize);
  Out.set("mean", Json::numberArray(Mean));
  Out.set("scale", Json::numberArray(Scale));
  Out.set("coefficients", Json::numberArray(Coefficients));
  return Out;
}

Expected<PolynomialRegression>
PolynomialRegression::fromJson(const Json &Value) {
  Expected<long> Degree = getInt(Value, "degree");
  if (!Degree)
    return Degree.error();
  Expected<double> Ridge = getNumber(Value, "ridge");
  if (!Ridge)
    return Ridge.error();
  Expected<bool> Standardize = getBool(Value, "standardize");
  if (!Standardize)
    return Standardize.error();
  Expected<std::vector<double>> Mean = getNumberVector(Value, "mean");
  if (!Mean)
    return Mean.error();
  Expected<std::vector<double>> Scale = getNumberVector(Value, "scale");
  if (!Scale)
    return Scale.error();
  Expected<std::vector<double>> Coefficients =
      getNumberVector(Value, "coefficients");
  if (!Coefficients)
    return Coefficients.error();

  if (*Degree < 0 || *Degree > 64)
    return Error(format("polynomial degree %ld out of range", *Degree));
  if (Mean->size() != Scale->size())
    return Error("mean/scale length mismatch in polynomial model");
  size_t Terms =
      PolynomialFeatures::countTerms(Mean->size(), static_cast<int>(*Degree));
  if (Terms > 4096)
    return Error(format("polynomial basis of %zu terms exceeds the supported "
                        "maximum",
                        Terms));
  if (Coefficients->size() != Terms)
    return Error(format("polynomial model expects %zu coefficients, found "
                        "%zu",
                        Terms, Coefficients->size()));
  for (double S : *Scale)
    if (S == 0.0)
      return Error("zero standardization scale in polynomial model");

  Options Opts;
  Opts.Degree = static_cast<int>(*Degree);
  Opts.Ridge = *Ridge;
  Opts.Standardize = *Standardize;
  PolynomialRegression Model(Opts, Mean->size());
  Model.Mean = std::move(*Mean);
  Model.Scale = std::move(*Scale);
  Model.Coefficients = std::move(*Coefficients);
  return Model;
}
