//===- ml/PolynomialRegression.cpp ----------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/PolynomialRegression.h"
#include "linalg/LeastSquares.h"
#include "support/Json.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include <cmath>

using namespace opprox;

PolynomialRegression PolynomialRegression::fit(const Dataset &Data,
                                               const Options &Opts) {
  assert(!Data.empty() && "cannot fit on an empty dataset");
  size_t NumInputs = Data.numFeatures();
  PolynomialRegression Model(Opts, NumInputs);

  // Standardization statistics.
  Model.Mean.assign(NumInputs, 0.0);
  Model.Scale.assign(NumInputs, 1.0);
  if (Opts.Standardize) {
    for (size_t F = 0; F < NumInputs; ++F) {
      RunningStats S;
      for (const auto &Row : Data.samples())
        S.add(Row[F]);
      Model.Mean[F] = S.mean();
      double Sd = S.stddev();
      Model.Scale[F] = Sd > 1e-12 ? Sd : 1.0;
    }
  }

  // Design matrix in the expanded basis.
  size_t N = Data.numSamples();
  size_t Terms = Model.Basis.numTerms();
  Matrix A(N, Terms);
  for (size_t I = 0; I < N; ++I) {
    std::vector<double> Expanded =
        Model.Basis.expand(Model.standardize(Data.sample(I)));
    for (size_t T = 0; T < Terms; ++T)
      A.at(I, T) = Expanded[T];
  }

  if (N >= Terms) {
    if (std::optional<std::vector<double>> Beta =
            solveLeastSquares(A, Data.targets())) {
      Model.Coefficients = std::move(*Beta);
      return Model;
    }
  }
  // Underdetermined or rank deficient: ridge keeps the fit well-posed.
  Model.Coefficients = solveRidge(A, Data.targets(), Opts.Ridge);
  return Model;
}

std::vector<double>
PolynomialRegression::standardize(const std::vector<double> &X) const {
  assert(X.size() == Mean.size() && "feature count mismatch");
  std::vector<double> Z(X.size());
  for (size_t F = 0; F < X.size(); ++F)
    Z[F] = (X[F] - Mean[F]) / Scale[F];
  return Z;
}

double PolynomialRegression::predict(const std::vector<double> &X) const {
  std::vector<double> Expanded = Basis.expand(standardize(X));
  double Sum = 0.0;
  for (size_t T = 0; T < Expanded.size(); ++T)
    Sum += Coefficients[T] * Expanded[T];
  return Sum;
}

std::vector<double>
PolynomialRegression::predictAll(const Dataset &Data) const {
  std::vector<double> Out;
  Out.reserve(Data.numSamples());
  for (const auto &Row : Data.samples())
    Out.push_back(predict(Row));
  return Out;
}

double PolynomialRegression::r2(const Dataset &Data) const {
  return r2Score(Data.targets(), predictAll(Data));
}

Json PolynomialRegression::toJson() const {
  Json Out = Json::object();
  Out.set("degree", Opts.Degree);
  Out.set("ridge", Opts.Ridge);
  Out.set("standardize", Opts.Standardize);
  Out.set("mean", Json::numberArray(Mean));
  Out.set("scale", Json::numberArray(Scale));
  Out.set("coefficients", Json::numberArray(Coefficients));
  return Out;
}

Expected<PolynomialRegression>
PolynomialRegression::fromJson(const Json &Value) {
  Expected<long> Degree = getInt(Value, "degree");
  if (!Degree)
    return Degree.error();
  Expected<double> Ridge = getNumber(Value, "ridge");
  if (!Ridge)
    return Ridge.error();
  Expected<bool> Standardize = getBool(Value, "standardize");
  if (!Standardize)
    return Standardize.error();
  Expected<std::vector<double>> Mean = getNumberVector(Value, "mean");
  if (!Mean)
    return Mean.error();
  Expected<std::vector<double>> Scale = getNumberVector(Value, "scale");
  if (!Scale)
    return Scale.error();
  Expected<std::vector<double>> Coefficients =
      getNumberVector(Value, "coefficients");
  if (!Coefficients)
    return Coefficients.error();

  if (*Degree < 0 || *Degree > 64)
    return Error(format("polynomial degree %ld out of range", *Degree));
  if (Mean->size() != Scale->size())
    return Error("mean/scale length mismatch in polynomial model");
  size_t Terms =
      PolynomialFeatures::countTerms(Mean->size(), static_cast<int>(*Degree));
  if (Terms > 4096)
    return Error(format("polynomial basis of %zu terms exceeds the supported "
                        "maximum",
                        Terms));
  if (Coefficients->size() != Terms)
    return Error(format("polynomial model expects %zu coefficients, found "
                        "%zu",
                        Terms, Coefficients->size()));
  for (double S : *Scale)
    if (S == 0.0)
      return Error("zero standardization scale in polynomial model");

  Options Opts;
  Opts.Degree = static_cast<int>(*Degree);
  Opts.Ridge = *Ridge;
  Opts.Standardize = *Standardize;
  PolynomialRegression Model(Opts, Mean->size());
  Model.Mean = std::move(*Mean);
  Model.Scale = std::move(*Scale);
  Model.Coefficients = std::move(*Coefficients);
  return Model;
}
