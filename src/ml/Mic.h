//===- ml/Mic.h - Maximal Information Coefficient --------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Maximal Information Coefficient (Reshef et al., Science 2011). OPPROX
/// uses MIC to drop input features with no association to the modeling
/// target before polynomial regression (paper Sec. 3.7).
///
/// This is the standard grid-search approximation: for every grid shape
/// (a, b) with a*b <= B(n) = n^Alpha we place equal-frequency bins on
/// each axis and take max I(a,b) / log2(min(a,b)). The exact MINE
/// dynamic-programming partition optimization is replaced by
/// equal-frequency partitions -- a slight underestimate of MIC that
/// preserves the property needed here: ~0 for independent variables and
/// near 1 for (noiseless) functional relationships.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_ML_MIC_H
#define OPPROX_ML_MIC_H

#include <cstddef>
#include <vector>

namespace opprox {

struct MicOptions {
  /// Grid budget exponent: B(n) = n^Alpha.
  double Alpha = 0.6;
  /// Hard cap on bins per axis.
  size_t MaxBins = 16;
};

/// MIC score in [0, 1] between two equal-length series. Returns 0 for
/// fewer than 8 samples or a constant series.
double mic(const std::vector<double> &X, const std::vector<double> &Y,
           const MicOptions &Opts = MicOptions());

/// Mutual information (in bits) of the discrete joint distribution given
/// by pre-binned labels in [0, NumBinsX) x [0, NumBinsY). Exposed for
/// testing.
double mutualInformation(const std::vector<size_t> &BinsX,
                         const std::vector<size_t> &BinsY, size_t NumBinsX,
                         size_t NumBinsY);

/// Equal-frequency binning of \p Values into at most \p NumBins bins.
/// Ties share a bin; the actual number of bins used is written to
/// \p BinsUsed. Exposed for testing.
std::vector<size_t> equalFrequencyBins(const std::vector<double> &Values,
                                       size_t NumBins, size_t &BinsUsed);

} // namespace opprox

#endif // OPPROX_ML_MIC_H
