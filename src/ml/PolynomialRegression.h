//===- ml/PolynomialRegression.h - Polynomial regression -------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Polynomial regression (paper Sec. 3.6): raw features are standardized,
/// expanded into the monomial basis of a chosen total degree, and fit by
/// least squares (QR with a small ridge fallback for collinear bases).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_ML_POLYNOMIALREGRESSION_H
#define OPPROX_ML_POLYNOMIALREGRESSION_H

#include "linalg/Matrix.h"
#include "ml/Dataset.h"
#include "ml/PolynomialFeatures.h"
#include "support/AlignedBuffer.h"
#include "support/Error.h"
#include <memory>
#include <utility>

namespace opprox {

class Json;

/// A fitted polynomial regression model.
class PolynomialRegression {
public:
  struct Options {
    /// Total degree of the monomial basis.
    int Degree = 2;
    /// Ridge penalty used when plain least squares is rank deficient.
    double Ridge = 1e-6;
    /// Standardize raw features to zero mean / unit variance before
    /// expansion; improves conditioning for high degrees.
    bool Standardize = true;
  };

  /// Fits on \p Data. Requires at least one sample; degenerate bases fall
  /// back to ridge so fitting always succeeds.
  static PolynomialRegression fit(const Dataset &Data, const Options &Opts);

  /// Predicts the target for one raw feature vector.
  double predict(const std::vector<double> &X) const;

  /// Caller-owned workspace for the batch paths: 64-byte-aligned
  /// structure-of-arrays columns (see docs/ARCHITECTURE.md, "Optimizer
  /// hot path"). Reusing one across calls makes the batch path
  /// allocation-free once the buffers have grown to the largest batch
  /// shape.
  struct Scratch {
    AlignedBuffer<double> Z;      ///< numInputs standardized columns.
    AlignedBuffer<double> Gather; ///< Stages one column of row-major input.
    AlignedBuffer<double> Term;   ///< One term-product column.
  };

  /// Predicts every row of \p X (one raw feature vector per row) into
  /// \p Out, resized to X.rows(). Rows are transposed into per-feature
  /// columns and evaluated by the columnar kernel; each row's result is
  /// bit-identical to predict() on that row, independent of batch size,
  /// composition, or SIMD dispatch tier.
  void predictBatch(const Matrix &X, std::vector<double> &Out,
                    Scratch &S) const;

  /// The structure-of-arrays entry point: \p Cols holds numInputs()
  /// contiguous raw (unstandardized) feature columns, column F starting
  /// at Cols + F * Stride, each \p N values long. Standardizes every
  /// column and evaluates the monomial sum per point; bit-identical to
  /// predict() on each point, for any stride and any SIMD tier.
  void predictBatchColumns(const double *Cols, size_t Stride, size_t N,
                           std::vector<double> &Out, Scratch &S) const;

  /// Certified bounds on predict() over the axis-aligned box
  /// [Lo[i], Hi[i]] of raw features: every prediction for a point in the
  /// box lies within the returned {lower, upper} pair. Computed by
  /// interval arithmetic over the monomial basis, widened by a slack
  /// generously covering floating-point rounding, so the bounds are safe
  /// to prune against exact predict() comparisons.
  std::pair<double, double> boundsOver(const std::vector<double> &Lo,
                                       const std::vector<double> &Hi) const;

  /// Predictions for every sample of \p Data.
  std::vector<double> predictAll(const Dataset &Data) const;

  /// R^2 of this model on \p Data (can be negative on unseen data).
  double r2(const Dataset &Data) const;

  int degree() const { return Opts.Degree; }
  const std::vector<double> &coefficients() const { return Coefficients; }
  size_t numInputs() const { return Mean.size(); }

  /// Artifact serialization. The monomial basis is not stored; it is
  /// rebuilt from (numInputs, degree), so predictions round-trip
  /// bit-identically from the standardization vectors and coefficients.
  Json toJson() const;
  static Expected<PolynomialRegression> fromJson(const Json &Value);

private:
  PolynomialRegression(Options Opts, size_t NumInputs)
      : Opts(Opts), Basis(NumInputs, Opts.Degree) {}

  std::vector<double> standardize(const std::vector<double> &X) const;

  Options Opts;
  PolynomialFeatures Basis;
  std::vector<double> Mean;     // Per-raw-feature standardization mean.
  std::vector<double> Scale;    // Per-raw-feature standardization scale.
  std::vector<double> Coefficients; // One per basis term.
};

} // namespace opprox

#endif // OPPROX_ML_POLYNOMIALREGRESSION_H
