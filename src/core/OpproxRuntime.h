//===- core/OpproxRuntime.h - Fig. 6 online half ---------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online half of the paper's Fig. 6 pipeline: loads a trained
/// OpproxArtifact and serves per-budget schedule optimization
/// (Algorithm 2). Deliberately lean -- no profiler, golden cache, or
/// application handle -- so a production host links only the model
/// stack and the optimizer. Because artifacts round-trip models
/// bit-exactly, a runtime loaded from disk emits schedules
/// bit-identical to the trainer that produced the artifact.
///
/// \code
///   Expected<OpproxRuntime> Rt = OpproxRuntime::load("lulesh.opprox.json");
///   if (!Rt) { ... Rt.error().message() ... }
///   PhaseSchedule S = Rt->optimize(Input, /*QosBudget=*/10.0);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_OPPROXRUNTIME_H
#define OPPROX_CORE_OPPROXRUNTIME_H

#include "core/ModelArtifact.h"
#include "core/OptimizePlanner.h"
#include "core/Optimizer.h"

namespace opprox {

/// How loadArtifact() responds to load failures: the first two rungs of
/// the serving degradation ladder (docs/RELIABILITY.md). The third --
/// per-phase fallback to the exact configuration -- lives in
/// optimizeSchedule and needs no artifact at all.
struct ArtifactLoadOptions {
  /// Rung 1: bounded retry with exponential backoff. The default (3
  /// attempts, 10 ms then 20 ms) rides out transient I/O failures
  /// without stalling a serving process noticeably.
  RetryPolicy Retry{/*MaxAttempts=*/3, /*InitialBackoffMs=*/10.0,
                    /*Multiplier=*/2.0};
  /// Rung 2: when every attempt fails, serve the last artifact that
  /// loaded successfully from the same path in this process.
  bool UseLastGood = true;
};

/// Serves Algorithm 2 from a loaded artifact.
class OpproxRuntime {
public:
  /// Wraps an already-parsed artifact (validated during parsing).
  static OpproxRuntime fromArtifact(OpproxArtifact Artifact);

  /// Reads, parses, and schema-checks an artifact file. One attempt, no
  /// fallback: a failure is reported as-is (offline tools want that).
  static Expected<OpproxRuntime> load(const std::string &Path);

  /// load() hardened for serving: retries per \p Opts.Retry (each retry
  /// counted into runtime.artifact_retries), then falls back to the
  /// last artifact successfully loaded from \p Path (counted into
  /// runtime.artifact_last_good). Fails only when every rung is
  /// exhausted.
  static Expected<OpproxRuntime>
  loadArtifact(const std::string &Path, const ArtifactLoadOptions &Opts = {});

  /// Finds the most profitable phase schedule for \p Input under
  /// \p QosBudget percent degradation (Algorithm 2).
  PhaseSchedule optimize(const std::vector<double> &Input, double QosBudget,
                         const OptimizeOptions &Opts = {}) const;

  /// optimize() plus the per-phase decisions and ROI shares.
  OptimizationResult optimizeDetailed(const std::vector<double> &Input,
                                      double QosBudget,
                                      const OptimizeOptions &Opts = {}) const;

  /// optimizeDetailed() for request-driven hosts: a malformed request
  /// (negative or non-finite budget, wrong input arity) comes back as
  /// an Error instead of terminating the process, since request values
  /// are the caller's data, not program invariants. \p Stages (nullable)
  /// receives the planner's lookup/compute attribution; the default null
  /// keeps latency-critical callers free of the extra clock reads.
  Expected<OptimizationResult>
  tryOptimizeDetailed(const std::vector<double> &Input, double QosBudget,
                      const OptimizeOptions &Opts = {},
                      PlannerStageBreakdown *Stages = nullptr) const;

  /// The online controller's feedback hook: re-solves phases
  /// [FirstPhase, numPhases) under \p QosBudget (the budget still
  /// unspent after the phases a run has executed), leaving earlier
  /// phases exact in the returned schedule. Routed through the planner,
  /// so identical (input, budget, first-phase) re-solves hit the
  /// schedule cache and stay bit-deterministic. FirstPhase == 0 is
  /// exactly tryOptimizeDetailed.
  Expected<OptimizationResult>
  tryOptimizeTail(const std::vector<double> &Input, double QosBudget,
                  size_t FirstPhase, const OptimizeOptions &Opts = {},
                  PlannerStageBreakdown *Stages = nullptr) const;

  /// Replaces the planner (and with it the schedule cache) with one
  /// built from \p Opts. Hosts call this once after loading, before the
  /// runtime goes concurrent; the cache then lives exactly as long as
  /// this runtime serves this artifact, which is what keeps hot swaps
  /// stale-free (a swapped-in runtime starts with an empty cache).
  void configurePlanner(const PlannerOptions &Opts);

  /// The plan/lookup/compute pipeline every optimize call routes
  /// through.
  const OptimizePlanner &planner() const { return *Planner; }

  // -- Introspection ----------------------------------------------------

  const OpproxArtifact &artifact() const { return Art; }
  const AppModel &model() const { return Art.Model; }
  const std::string &appName() const { return Art.AppName; }
  size_t numPhases() const { return Art.numPhases(); }
  size_t numBlocks() const { return Art.numBlocks(); }

private:
  friend class Opprox; // The facade embeds an initially-empty runtime.
  OpproxRuntime() = default;

  OpproxArtifact Art;
  /// shared_ptr so runtime copies stay cheap and share one cache: every
  /// copy serves the same artifact, so shared entries are still
  /// bit-identical for all of them.
  std::shared_ptr<OptimizePlanner> Planner;
};

} // namespace opprox

#endif // OPPROX_CORE_OPPROXRUNTIME_H
