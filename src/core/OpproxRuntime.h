//===- core/OpproxRuntime.h - Fig. 6 online half ---------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The online half of the paper's Fig. 6 pipeline: loads a trained
/// OpproxArtifact and serves per-budget schedule optimization
/// (Algorithm 2). Deliberately lean -- no profiler, golden cache, or
/// application handle -- so a production host links only the model
/// stack and the optimizer. Because artifacts round-trip models
/// bit-exactly, a runtime loaded from disk emits schedules
/// bit-identical to the trainer that produced the artifact.
///
/// \code
///   Expected<OpproxRuntime> Rt = OpproxRuntime::load("lulesh.opprox.json");
///   if (!Rt) { ... Rt.error().message() ... }
///   PhaseSchedule S = Rt->optimize(Input, /*QosBudget=*/10.0);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_OPPROXRUNTIME_H
#define OPPROX_CORE_OPPROXRUNTIME_H

#include "core/ModelArtifact.h"
#include "core/Optimizer.h"

namespace opprox {

/// Serves Algorithm 2 from a loaded artifact.
class OpproxRuntime {
public:
  /// Wraps an already-parsed artifact (validated during parsing).
  static OpproxRuntime fromArtifact(OpproxArtifact Artifact);

  /// Reads, parses, and schema-checks an artifact file.
  static Expected<OpproxRuntime> load(const std::string &Path);

  /// Finds the most profitable phase schedule for \p Input under
  /// \p QosBudget percent degradation (Algorithm 2).
  PhaseSchedule optimize(const std::vector<double> &Input, double QosBudget,
                         const OptimizeOptions &Opts = {}) const;

  /// optimize() plus the per-phase decisions and ROI shares.
  OptimizationResult optimizeDetailed(const std::vector<double> &Input,
                                      double QosBudget,
                                      const OptimizeOptions &Opts = {}) const;

  // -- Introspection ----------------------------------------------------

  const OpproxArtifact &artifact() const { return Art; }
  const AppModel &model() const { return Art.Model; }
  const std::string &appName() const { return Art.AppName; }
  size_t numPhases() const { return Art.numPhases(); }
  size_t numBlocks() const { return Art.numBlocks(); }

private:
  friend class Opprox; // The facade embeds an initially-empty runtime.
  OpproxRuntime() = default;

  OpproxArtifact Art;
};

} // namespace opprox

#endif // OPPROX_CORE_OPPROXRUNTIME_H
