//===- core/Profiler.h - Training-data collection --------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an application across (training inputs x sampled configurations
/// x phases) and materializes TrainingSamples (paper Secs. 3.3 and
/// Fig. 6's "phase based sampling of configurations"). Also maintains the
/// signature registry mapping call-context signatures to control-flow
/// class ids (Sec. 3.4).
///
/// The sweep is embarrassingly parallel and collect() fans it across a
/// ThreadPool: every (input, configuration, phase) measurement is an
/// independent task whose result lands in a preassigned slot, so the
/// returned TrainingSet is bit-identical for any worker count (see
/// docs/ARCHITECTURE.md, "Determinism contract").
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_PROFILER_H
#define OPPROX_CORE_PROFILER_H

#include "apps/ApproxApp.h"
#include "core/Sampler.h"
#include "core/TrainingData.h"
#include <atomic>
#include <functional>
#include <map>
#include <mutex>

namespace opprox {

/// Maps control-flow signatures to dense class ids in first-seen order.
/// Thread-safe: concurrent classOf()/lookup() calls are serialized by an
/// internal mutex. Id determinism under parallel profiling is arranged
/// by the caller (Profiler::collect registers every golden signature in
/// input order *before* fanning out measurements, so worker interleaving
/// can only re-observe already-registered signatures).
class SignatureRegistry {
public:
  /// Class id of \p Signature, registering it when new.
  int classOf(const std::string &Signature);

  /// Class id if registered, otherwise -1.
  int lookup(const std::string &Signature) const;

  size_t numClasses() const;

private:
  mutable std::mutex Mutex;
  std::map<std::string, int> Classes;
};

/// Progress snapshot handed to a ProfileObserver after each completed
/// measurement run. Every field is read from the same lock-free atomics
/// the telemetry layer exports (profiler.runs, profiler.golden_cache.*,
/// the collect span's clock), so a snapshot never takes a profiler lock;
/// the observer is a consumer of the metrics/trace instrumentation, not
/// a separate accounting path.
struct ProfileProgress {
  size_t RunsCompleted = 0;     ///< Measurement runs finished so far.
  size_t TotalRuns = 0;         ///< Runs the sweep will perform in total.
  size_t GoldenCacheHits = 0;   ///< Golden-cache hits so far (cheap reuses).
  size_t GoldenCacheMisses = 0; ///< Golden-cache misses so far (exact runs).
  double ElapsedSeconds = 0;    ///< Wall-clock since collect() started.
};

/// Progress/trace hook for long profiling sweeps.
///
/// Threading contract:
///  - The observer fires after every completed measurement run, from
///    whichever pool worker (or the caller thread) finished it.
///  - Calls are serialized under a dedicated observer mutex, so the
///    callback itself need not be thread-safe.
///  - The profiler guarantees that **no internal lock is held** while
///    the observer runs: not the SignatureRegistry mutex, not the
///    ThreadPool queue mutex, and no golden-cache entry latch. The
///    progress snapshot is assembled from atomics beforehand. An
///    observer may therefore block, log, or take its own locks without
///    risking deadlock -- but it still sits on the sweep's critical
///    path, so keep it fast.
///  - Do not call back into the profiler from the observer; collect()
///    is not reentrant.
using ProfileObserver = std::function<void(const ProfileProgress &)>;

struct ProfileOptions {
  /// Phases to attribute approximation to.
  size_t NumPhases = 4;
  /// Random joint configurations per (input, phase).
  size_t RandomJointSamples = 32;
  /// Also collect uniform (all-phase) samples, one per configuration.
  bool IncludeAllPhaseRuns = true;
  /// Base seed for the sampling RNG. Input number I draws its sampling
  /// plan from deriveSeed(Seed, I), so each input's plan is independent
  /// of every other input's and of the worker count.
  uint64_t Seed = 0x0991;
  /// Measurement parallelism: 1 = serial, N = N executors, 0 = auto
  /// (the OPPROX_THREADS environment variable when set, otherwise
  /// hardware concurrency). Any value produces identical TrainingSets.
  size_t NumThreads = 0;
  /// Optional progress hook; see ProfileObserver.
  ProfileObserver Observer;
};

/// Profiling driver. Holds the golden cache and signature registry so
/// repeated collections share exact runs and class ids.
class Profiler {
public:
  Profiler(const ApproxApp &App, GoldenCache &Golden)
      : App(App), Golden(Golden) {}

  /// Collects training data for every input in \p Inputs, fanning the
  /// (input, configuration, phase) sweep across Opts.NumThreads
  /// executors. The result is identical for every thread count.
  TrainingSet collect(const std::vector<std::vector<double>> &Inputs,
                      const ProfileOptions &Opts);

  /// Executes one configuration in one phase (or AllPhases) and builds
  /// the sample. Exposed for tests and the phase detector. Thread-safe:
  /// may be called concurrently from pool workers.
  TrainingSample measure(const std::vector<double> &Input,
                         const std::vector<int> &Levels, int Phase,
                         size_t NumPhases);

  SignatureRegistry &signatures() { return Registry; }
  GoldenCache &golden() { return Golden; }
  const ApproxApp &app() const { return App; }

  /// Total application runs performed so far (golden runs excluded).
  size_t runsPerformed() const {
    return RunCount.load(std::memory_order_relaxed);
  }

private:
  const ApproxApp &App;
  GoldenCache &Golden;
  SignatureRegistry Registry;
  /// Incremented from worker threads during parallel collection.
  std::atomic<size_t> RunCount{0};
};

} // namespace opprox

#endif // OPPROX_CORE_PROFILER_H
