//===- core/Profiler.h - Training-data collection --------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an application across (training inputs x sampled configurations
/// x phases) and materializes TrainingSamples (paper Secs. 3.3 and
/// Fig. 6's "phase based sampling of configurations"). Also maintains the
/// signature registry mapping call-context signatures to control-flow
/// class ids (Sec. 3.4).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_PROFILER_H
#define OPPROX_CORE_PROFILER_H

#include "apps/ApproxApp.h"
#include "core/Sampler.h"
#include "core/TrainingData.h"
#include <map>

namespace opprox {

/// Maps control-flow signatures to dense class ids in first-seen order.
class SignatureRegistry {
public:
  /// Class id of \p Signature, registering it when new.
  int classOf(const std::string &Signature);

  /// Class id if registered, otherwise -1.
  int lookup(const std::string &Signature) const;

  size_t numClasses() const { return Classes.size(); }

private:
  std::map<std::string, int> Classes;
};

struct ProfileOptions {
  /// Phases to attribute approximation to.
  size_t NumPhases = 4;
  /// Random joint configurations per (input, phase).
  size_t RandomJointSamples = 32;
  /// Also collect uniform (all-phase) samples, one per configuration.
  bool IncludeAllPhaseRuns = true;
  /// Seed for the sampling RNG.
  uint64_t Seed = 0x0991;
};

/// Profiling driver. Holds the golden cache and signature registry so
/// repeated collections share exact runs and class ids.
class Profiler {
public:
  Profiler(const ApproxApp &App, GoldenCache &Golden)
      : App(App), Golden(Golden) {}

  /// Collects training data for every input in \p Inputs.
  TrainingSet collect(const std::vector<std::vector<double>> &Inputs,
                      const ProfileOptions &Opts);

  /// Executes one configuration in one phase (or AllPhases) and builds
  /// the sample. Exposed for tests and the phase detector.
  TrainingSample measure(const std::vector<double> &Input,
                         const std::vector<int> &Levels, int Phase,
                         size_t NumPhases);

  SignatureRegistry &signatures() { return Registry; }
  GoldenCache &golden() { return Golden; }
  const ApproxApp &app() const { return App; }

  /// Total application runs performed so far (golden runs excluded).
  size_t runsPerformed() const { return RunCount; }

private:
  const ApproxApp &App;
  GoldenCache &Golden;
  SignatureRegistry Registry;
  size_t RunCount = 0;
};

} // namespace opprox

#endif // OPPROX_CORE_PROFILER_H
