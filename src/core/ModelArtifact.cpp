//===- core/ModelArtifact.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ModelArtifact.h"
#include "apps/ApproxApp.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/Log.h"
#include "support/StringUtils.h"
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <unistd.h>

using namespace opprox;

/// Document type tag; the very first member of every artifact, so a
/// wrong or truncated file fails with an immediate, specific message.
static const char *const kFormatTag = "opprox-artifact";

/// 64-bit seeds exceed the exactly-representable double range, so they
/// travel as decimal strings.
static Expected<uint64_t> getSeed(const Json &Obj, const std::string &Key) {
  Expected<std::string> Text = getString(Obj, Key);
  if (!Text)
    return Text.error();
  if (Text->empty() || Text->find_first_not_of("0123456789") != std::string::npos)
    return Error(format("field '%s' is not a decimal seed string",
                        Key.c_str()));
  errno = 0;
  uint64_t Seed = std::strtoull(Text->c_str(), nullptr, 10);
  if (errno == ERANGE)
    return Error(format("seed '%s' overflows 64 bits", Text->c_str()));
  return Seed;
}

Json OpproxArtifact::toJson() const {
  Json Out = Json::object();
  Out.set("format", kFormatTag);
  Json Schema = Json::object();
  Schema.set("major", SchemaMajor);
  Schema.set("minor", SchemaMinor);
  Out.set("schema_version", std::move(Schema));

  Json App = Json::object();
  App.set("name", AppName);
  Json Params = Json::array();
  for (const std::string &Name : ParameterNames)
    Params.push(Name);
  App.set("parameters", std::move(Params));
  App.set("max_levels", Json::numberArray(MaxLevels));
  App.set("default_input", Json::numberArray(DefaultInput));
  Out.set("app", std::move(App));

  Json Prov = Json::object();
  Prov.set("library_version", Provenance.LibraryVersion);
  Prov.set("profile_seed", std::to_string(Provenance.ProfileSeed));
  Prov.set("model_seed", std::to_string(Provenance.ModelSeed));
  Prov.set("training_runs", Provenance.TrainingRuns);
  Prov.set("random_joint_samples", Provenance.RandomJointSamples);
  Prov.set("phase_count_detected", Provenance.PhaseCountDetected);
  if (!Provenance.TrainingMetrics.empty()) {
    // Optional since schema 1.1: the monotone telemetry diff across
    // training. Already name-sorted, so serialization is deterministic.
    Json Metrics = Json::object();
    for (const auto &[Name, Value] : Provenance.TrainingMetrics)
      Metrics.set(Name, Value);
    Prov.set("training_metrics", std::move(Metrics));
  }
  Out.set("provenance", std::move(Prov));

  Out.set("model", Model.toJson());
  if (!BudgetGrids.empty()) {
    // Optional since schema 1.2: precomputed per-class budget sweeps.
    Json Grids = Json::array();
    for (const BudgetGrid &Grid : BudgetGrids)
      Grids.push(Grid.toJson());
    Out.set("budget_grids", std::move(Grids));
  }
  return Out;
}

/// Parses the optional 1.2 "budget_grids" section. Unlike every other
/// section, malformed grids degrade to "no grids" instead of failing the
/// load: grids only accelerate lookups the miss path serves correctly
/// anyway, so refusing a model over a bad acceleration table would trade
/// availability for nothing.
static std::vector<BudgetGrid> readBudgetGrids(const Json &Value) {
  const Json *Grids = Value.find("budget_grids");
  if (!Grids)
    return {};
  Counter &LoadErrors =
      MetricsRegistry::global().counter("cache.grid_load_errors");
  if (!Grids->isArray()) {
    LoadErrors.add();
    logInfo("artifact budget_grids section is not an array; continuing "
            "without precomputed grids");
    return {};
  }
  std::vector<BudgetGrid> Out;
  for (size_t I = 0; I < Grids->size(); ++I) {
    Expected<BudgetGrid> Grid = BudgetGrid::fromJson(Grids->at(I));
    if (!Grid) {
      LoadErrors.add();
      logInfo("artifact budget grid %zu is malformed (%s); continuing "
              "without precomputed grids",
              I, Grid.error().message().c_str());
      return {};
    }
    Out.push_back(std::move(*Grid));
  }
  return Out;
}

Expected<OpproxArtifact> OpproxArtifact::fromJson(const Json &Value) {
  if (!Value.isObject())
    return Error("artifact document is not a JSON object");
  Expected<std::string> Format = getString(Value, "format");
  if (!Format)
    return Format.error();
  if (*Format != kFormatTag)
    return Error(format("not an OPPROX artifact (format tag '%s')",
                        Format->c_str()));

  Expected<const Json *> Schema = getObject(Value, "schema_version");
  if (!Schema)
    return Schema.error();
  Expected<long> Major = getInt(**Schema, "major");
  if (!Major)
    return Major.error();
  Expected<long> Minor = getInt(**Schema, "minor");
  if (!Minor)
    return Minor.error();
  if (*Major != SchemaMajor)
    return Error(format("artifact schema version %ld.%ld is not supported; "
                        "this library reads major version %ld",
                        *Major, *Minor, SchemaMajor));

  Expected<const Json *> App = getObject(Value, "app");
  if (!App)
    return App.error();
  Expected<std::string> Name = getString(**App, "name");
  if (!Name)
    return Name.error();
  Expected<const Json *> Params = getArray(**App, "parameters");
  if (!Params)
    return Params.error();
  Expected<std::vector<int>> MaxLevels = getIntVector(**App, "max_levels");
  if (!MaxLevels)
    return MaxLevels.error();
  Expected<std::vector<double>> DefaultInput =
      getNumberVector(**App, "default_input");
  if (!DefaultInput)
    return DefaultInput.error();

  Expected<const Json *> Prov = getObject(Value, "provenance");
  if (!Prov)
    return Prov.error();
  Expected<std::string> LibraryVersion = getString(**Prov, "library_version");
  if (!LibraryVersion)
    return LibraryVersion.error();
  Expected<uint64_t> ProfileSeed = getSeed(**Prov, "profile_seed");
  if (!ProfileSeed)
    return ProfileSeed.error();
  Expected<uint64_t> ModelSeed = getSeed(**Prov, "model_seed");
  if (!ModelSeed)
    return ModelSeed.error();
  Expected<size_t> TrainingRuns = getSize(**Prov, "training_runs");
  if (!TrainingRuns)
    return TrainingRuns.error();
  Expected<size_t> JointSamples = getSize(**Prov, "random_joint_samples");
  if (!JointSamples)
    return JointSamples.error();
  Expected<bool> Detected = getBool(**Prov, "phase_count_detected");
  if (!Detected)
    return Detected.error();

  Expected<const Json *> ModelJson = getObject(Value, "model");
  if (!ModelJson)
    return ModelJson.error();
  Expected<AppModel> Model = AppModel::fromJson(**ModelJson);
  if (!Model)
    return Error(format("model: %s", Model.error().message().c_str()));

  OpproxArtifact Artifact;
  Artifact.AppName = std::move(*Name);
  for (size_t I = 0; I < (*Params)->size(); ++I) {
    const Json &Param = (*Params)->at(I);
    if (!Param.isString())
      return Error(format("parameter name %zu is not a string", I));
    Artifact.ParameterNames.push_back(Param.asString());
  }
  Artifact.MaxLevels = std::move(*MaxLevels);
  Artifact.DefaultInput = std::move(*DefaultInput);
  Artifact.Model = std::move(*Model);
  Artifact.BudgetGrids = readBudgetGrids(Value);
  Artifact.Provenance.LibraryVersion = std::move(*LibraryVersion);
  Artifact.Provenance.ProfileSeed = *ProfileSeed;
  Artifact.Provenance.ModelSeed = *ModelSeed;
  Artifact.Provenance.TrainingRuns = *TrainingRuns;
  Artifact.Provenance.RandomJointSamples = *JointSamples;
  Artifact.Provenance.PhaseCountDetected = *Detected;
  if (const Json *Metrics = (*Prov)->find("training_metrics")) {
    if (!Metrics->isObject())
      return Error("provenance training_metrics is not an object");
    for (const auto &[MetricName, MetricValue] : Metrics->members()) {
      if (!MetricValue.isNumber())
        return Error(format("training metric '%s' is not a number",
                            MetricName.c_str()));
      Artifact.Provenance.TrainingMetrics.emplace_back(MetricName,
                                                       MetricValue.asNumber());
    }
  }

  for (int Level : Artifact.MaxLevels)
    if (Level < 0)
      return Error("negative maximum level in artifact");
  if (Artifact.Model.numBlocks() != Artifact.MaxLevels.size())
    return Error(format("artifact models %zu blocks but lists %zu level "
                        "ranges",
                        Artifact.Model.numBlocks(),
                        Artifact.MaxLevels.size()));
  return Artifact;
}

std::string OpproxArtifact::serialize() const { return toJson().dump(2) + "\n"; }

Expected<OpproxArtifact> OpproxArtifact::deserialize(const std::string &Text) {
  // The corruption site truncates the document mid-file rather than
  // returning a synthetic error, so the injected failure exercises the
  // real parse-error path a half-written artifact would hit.
  if (faultPoint(faults::ArtifactCorrupt)) {
    Expected<Json> Doc = Json::parse(Text.substr(0, Text.size() / 2));
    if (!Doc)
      return Doc.error();
    return fromJson(*Doc);
  }
  Expected<Json> Doc = Json::parse(Text);
  if (!Doc)
    return Doc.error();
  return fromJson(*Doc);
}

std::optional<Error> OpproxArtifact::save(const std::string &Path) const {
  if (faultPoint(faults::ArtifactWrite))
    return Error(format("fault injection: simulated write failure saving "
                        "'%s'",
                        Path.c_str()));
  // Write-then-rename: a reader (most importantly a hot-swapping server
  // reloading this path on SIGHUP) must never observe a half-written
  // artifact. The temp name carries the pid so concurrent savers of the
  // same path never collide; rename within a directory is atomic.
  std::string Tmp =
      format("%s.tmp.%ld", Path.c_str(), static_cast<long>(::getpid()));
  if (std::optional<Error> E = writeFile(Tmp, serialize()))
    return E;
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Error E(format("cannot rename '%s' into place: %s", Tmp.c_str(),
                   std::strerror(errno)));
    std::remove(Tmp.c_str());
    return E;
  }
  return std::nullopt;
}

std::optional<Error> OpproxArtifact::save(const std::string &Path,
                                          const RetryPolicy &Policy) const {
  Counter &Retries =
      MetricsRegistry::global().counter("train.artifact_save_retries");
  Expected<bool> Result = retryWithBackoff(
      Policy,
      [&]() -> Expected<bool> {
        if (std::optional<Error> E = save(Path))
          return *E;
        return true;
      },
      [&](size_t Attempt, const Error &E) {
        Retries.add();
        logInfo("artifact save attempt %zu failed (%s); retrying",
                Attempt, E.message().c_str());
      });
  if (!Result)
    return Result.error();
  return std::nullopt;
}

Expected<OpproxArtifact> OpproxArtifact::load(const std::string &Path) {
  Expected<std::string> Text = readFile(Path);
  if (!Text)
    return Text.error();
  Expected<OpproxArtifact> Artifact = deserialize(*Text);
  if (!Artifact)
    return Error(format("%s: %s", Path.c_str(),
                        Artifact.error().message().c_str()));
  return Artifact;
}

std::optional<Error> OpproxArtifact::validateFor(const ApproxApp &App) const {
  if (AppName != App.name())
    return Error(format("artifact was trained for application '%s', not "
                        "'%s'",
                        AppName.c_str(), App.name().c_str()));
  if (MaxLevels != App.maxLevels())
    return Error(format("artifact level ranges do not match application "
                        "'%s' (artifact has %zu blocks, application %zu)",
                        AppName.c_str(), MaxLevels.size(),
                        App.numBlocks()));
  if (ParameterNames != App.parameterNames())
    return Error(format("artifact parameter names do not match application "
                        "'%s'",
                        AppName.c_str()));
  return std::nullopt;
}
