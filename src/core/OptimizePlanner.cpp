//===- core/OptimizePlanner.cpp -------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/OptimizePlanner.h"
#include "core/BudgetGrid.h"
#include "support/StringUtils.h"
#include "support/ThreadPool.h"
#include <chrono>
#include <cmath>
#include <cstdlib>

using namespace opprox;

/// Class id used in keys for requests too malformed to classify (the
/// classifier expects a well-formed input vector). Real classes are
/// >= 0, so negative-entry keys can never collide with result keys.
static constexpr int kUnclassified = -1;

static std::optional<size_t> envSize(const char *Name) {
  const char *Value = std::getenv(Name);
  if (!Value || !*Value)
    return std::nullopt;
  char *End = nullptr;
  unsigned long long Parsed = std::strtoull(Value, &End, 10);
  if (End == Value || *End != '\0')
    return std::nullopt;
  return static_cast<size_t>(Parsed);
}

PlannerOptions opprox::plannerOptionsFromEnv() {
  PlannerOptions Opts;
  if (std::optional<size_t> Shards = envSize("OPPROX_CACHE_SHARDS"))
    Opts.Cache.Shards = *Shards;
  if (std::optional<size_t> Capacity = envSize("OPPROX_CACHE_CAPACITY"))
    Opts.Cache.Capacity = *Capacity;
  if (const char *Disable = std::getenv("OPPROX_CACHE_DISABLE"))
    if (*Disable && std::string(Disable) != "0")
      Opts.UseCache = false;
  if (std::optional<size_t> ScanThreads = envSize("OPPROX_SCAN_THREADS"))
    Opts.ScanThreads = *ScanThreads;
  return Opts;
}

OptimizePlanner::OptimizePlanner(const PlannerOptions &Opts) : Opts(Opts) {
  if (Opts.UseCache)
    Cache = std::make_unique<ScheduleCache>(Opts.Cache);
  size_t Executors = Opts.ScanThreads ? Opts.ScanThreads
                                      : ThreadPool::defaultWorkerCount();
  if (Executors > 1)
    ScanPool = std::make_unique<ThreadPool>(Executors - 1);
}

OptimizePlanner::~OptimizePlanner() = default;

size_t OptimizePlanner::scanExecutors() const {
  return ScanPool ? ScanPool->numWorkers() + 1 : 1;
}

OptimizationResult
OptimizePlanner::lookupOrCompute(const OpproxArtifact &Art, int ClassId,
                                 const std::vector<double> &Input,
                                 double QosBudget, size_t FirstPhase,
                                 const OptimizeOptions &Opts,
                                 PlannerStageBreakdown *Stages) const {
  using Clock = std::chrono::steady_clock;
  Clock::time_point LookupStart;
  if (Stages)
    LookupStart = Clock::now();
  auto finishLookup = [&](bool CacheHit, bool GridHit) {
    if (!Stages)
      return;
    Stages->LookupMs =
        std::chrono::duration<double, std::milli>(Clock::now() - LookupStart)
            .count();
    Stages->CacheHit = CacheHit;
    Stages->GridHit = GridHit;
  };

  ScheduleCache::Key Key;
  if (Cache) {
    Key = ScheduleCache::makeKey(ClassId, Input, QosBudget, Opts, FirstPhase);
    if (std::optional<ScheduleCache::CachedValue> Hit = Cache->lookup(Key))
      if (!Hit->Negative) {
        finishLookup(/*CacheHit=*/true, /*GridHit=*/false);
        return std::move(Hit->Result);
      }
  }
  // Budget grids precompute full-schedule solves; a tail re-solve can
  // only be answered by the cache or the compute layer.
  if (this->Opts.UseGrids && FirstPhase == 0)
    if (const OptimizationResult *Grid =
            findGridResult(Art.BudgetGrids, ClassId, Input, QosBudget, Opts)) {
      if (Cache)
        Cache->insert(Key, *Grid);
      finishLookup(/*CacheHit=*/false, /*GridHit=*/true);
      return *Grid;
    }
  finishLookup(/*CacheHit=*/false, /*GridHit=*/false);

  Clock::time_point ComputeStart;
  if (Stages)
    ComputeStart = Clock::now();
  // Cache miss: the full solve. When the planner owns a scan pool and
  // the caller did not bring its own, fan the chunked scan across it --
  // this is how serve shards (workers of the *server's* pool) reach
  // real scan parallelism; cross-pool parallelFor fans out (see
  // support/ThreadPool.h). Decision-irrelevant, so cache keys ignore it.
  OptimizeOptions ComputeOpts = Opts;
  if (ScanPool && ComputeOpts.Pool == nullptr)
    ComputeOpts.Pool = ScanPool.get();
  OptimizationResult R = optimizeScheduleTail(
      Art.Model, Input, Art.MaxLevels, QosBudget, FirstPhase, ComputeOpts);
  // A degraded result is the fault ladder's answer for *this* request;
  // memoizing it would keep serving the fallback after the fault clears.
  if (Cache && R.DegradedPhases.empty())
    Cache->insert(Key, R);
  if (Stages)
    Stages->ComputeMs =
        std::chrono::duration<double, std::milli>(Clock::now() - ComputeStart)
            .count();
  return R;
}

Expected<OptimizationResult>
OptimizePlanner::optimize(const OpproxArtifact &Art,
                          const std::vector<double> &Input, double QosBudget,
                          const OptimizeOptions &Opts,
                          PlannerStageBreakdown *Stages) const {
  return optimizeTail(Art, Input, QosBudget, /*FirstPhase=*/0, Opts, Stages);
}

Expected<OptimizationResult>
OptimizePlanner::optimizeTail(const OpproxArtifact &Art,
                              const std::vector<double> &Input,
                              double QosBudget, size_t FirstPhase,
                              const OptimizeOptions &Opts,
                              PlannerStageBreakdown *Stages) const {
  // Plan layer: the same request checks (and the same messages) the
  // pre-pipeline tryOptimizeDetailed performed, with rejections
  // memoized so repeated malformed requests cost one lookup.
  bool BudgetValid = std::isfinite(QosBudget) && QosBudget >= 0.0;
  bool ArityValid = Art.ParameterNames.empty() ||
                    Input.size() == Art.ParameterNames.size();
  bool FirstPhaseValid = FirstPhase == 0 || FirstPhase < Art.numPhases();
  if (!BudgetValid || !ArityValid || !FirstPhaseValid) {
    ScheduleCache::Key Key;
    if (Cache) {
      Key = ScheduleCache::makeKey(kUnclassified, Input, QosBudget, Opts,
                                   FirstPhase);
      if (std::optional<ScheduleCache::CachedValue> Hit = Cache->lookup(Key))
        if (Hit->Negative)
          return Error(Hit->ErrorMessage);
    }
    Error E = !BudgetValid
                  ? Error(format("QoS budget %g is not a non-negative "
                                 "finite number",
                                 QosBudget))
              : !ArityValid
                  ? Error(format("request has %zu input values but the "
                                 "artifact expects %zu",
                                 Input.size(), Art.ParameterNames.size()))
                  : Error(format("first phase %zu is out of range for a "
                                 "%zu-phase artifact",
                                 FirstPhase, Art.numPhases()));
    if (Cache)
      Cache->insertNegative(Key, E.message());
    return E;
  }
  return lookupOrCompute(Art, Art.Model.classOf(Input), Input, QosBudget,
                         FirstPhase, Opts, Stages);
}

OptimizationResult
OptimizePlanner::optimizeTrusted(const OpproxArtifact &Art,
                                 const std::vector<double> &Input,
                                 double QosBudget,
                                 const OptimizeOptions &Opts) const {
  if (!(std::isfinite(QosBudget) && QosBudget >= 0.0))
    // Preserve the trusted-path contract: the compute layer terminates
    // with the canonical fatal diagnostic.
    return optimizeSchedule(Art.Model, Input, Art.MaxLevels, QosBudget, Opts);
  return lookupOrCompute(Art, Art.Model.classOf(Input), Input, QosBudget,
                         /*FirstPhase=*/0, Opts, /*Stages=*/nullptr);
}
