//===- core/OptimizePlanner.h - Plan/lookup/compute facade -----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single entry point of the layered optimize pipeline
/// (docs/ARCHITECTURE.md, "Layered optimize pipeline"). Every caller --
/// OpproxRuntime, opprox-optimize, the opprox-serve shards -- routes
/// requests through one OptimizePlanner instead of calling the
/// optimizer directly:
///
///  1. **Plan**: validate and normalize the request (budget finiteness,
///     input arity) and derive the canonical cache key from the
///     control-flow class, the raw input/budget bits, and the
///     decision-relevant options.
///  2. **Lookup**: consult the sharded ScheduleCache (positive and
///     negative entries), then the artifact's precomputed budget grids.
///  3. **Compute**: fall through to the existing pruned/batched
///     Algorithm-2 search, and memoize the result.
///
/// The contract is bit-identity: a result served from any layer is
/// byte-for-byte what the compute layer would have produced for the
/// same request (proven by OptimizerEquivalenceTests). Results whose
/// solve degraded (non-empty DegradedPhases) are never cached, so a
/// fault-degraded schedule cannot outlive the fault that caused it.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_OPTIMIZEPLANNER_H
#define OPPROX_CORE_OPTIMIZEPLANNER_H

#include "core/ModelArtifact.h"
#include "core/ScheduleCache.h"

namespace opprox {

struct PlannerOptions {
  ScheduleCacheOptions Cache;
  /// False disables the schedule cache entirely: no lookups, no
  /// insertions, no cache.* traffic (--no-cache / OPPROX_CACHE_DISABLE).
  bool UseCache = true;
  /// False ignores the artifact's precomputed budget grids.
  bool UseGrids = true;
  /// Executors for the compute layer's chunked scan: 1 = serial (the
  /// default -- cache-miss solves run inline on the calling thread),
  /// 0 = auto-detect (OPPROX_THREADS, else hardware concurrency), N =
  /// exactly N. Above 1 the planner owns one shared ThreadPool that
  /// every compute-layer solve fans its chunks across -- including
  /// solves issued from other pools' workers, like the opprox-serve
  /// shards (--scan-threads / OPPROX_SCAN_THREADS). Decision-
  /// irrelevant: the scan is bit-identical for every executor count.
  size_t ScanThreads = 1;
};

/// PlannerOptions with the OPPROX_CACHE_SHARDS / OPPROX_CACHE_CAPACITY /
/// OPPROX_CACHE_DISABLE environment overrides applied on top of the
/// defaults. Unparsable values are ignored.
PlannerOptions plannerOptionsFromEnv();

/// Per-request latency attribution filled in by the planner when the
/// caller hands one in (the serving tier's serve.stage_ms.* histograms).
/// The out-param is optional precisely so the warm-cache hot path pays
/// zero extra clock reads when nobody is watching: with a null pointer
/// the planner takes no timestamps at all.
struct PlannerStageBreakdown {
  double LookupMs = 0.0;  ///< Key building + cache probe + grid probe.
  double ComputeMs = 0.0; ///< Full Algorithm-2 solve + memoization.
  bool CacheHit = false;  ///< Served from the schedule cache.
  bool GridHit = false;   ///< Served from a precomputed budget grid.
};

/// The plan -> lookup -> compute pipeline for one artifact's requests.
/// The planner owns the schedule cache; its lifetime *is* the cache
/// lifetime, which is what makes hot swaps safe -- a new runtime gets a
/// new planner, so entries from the old artifact are unreachable by
/// construction. Thread-safe: both optimize entry points may be called
/// concurrently from any number of threads.
class OptimizePlanner {
public:
  explicit OptimizePlanner(const PlannerOptions &Opts = {});
  ~OptimizePlanner(); // Out of line: ThreadPool is incomplete here.

  /// Request-driven entry point (serving, CLI with untrusted input):
  /// malformed requests (negative or non-finite budget, wrong input
  /// arity) come back as an Error -- memoized as a negative cache entry
  /// so repeat offenders skip revalidation. When \p Stages is non-null
  /// the lookup/compute intervals and hit flags are reported through it;
  /// validation time is the caller-visible residual.
  Expected<OptimizationResult>
  optimize(const OpproxArtifact &Art, const std::vector<double> &Input,
           double QosBudget, const OptimizeOptions &Opts,
           PlannerStageBreakdown *Stages = nullptr) const;

  /// Trusted entry point (in-process callers whose budget is a program
  /// invariant): an invalid budget falls through to the compute layer,
  /// which terminates via reportFatalError exactly as the un-layered
  /// path did. No negative caching.
  OptimizationResult optimizeTrusted(const OpproxArtifact &Art,
                                     const std::vector<double> &Input,
                                     double QosBudget,
                                     const OptimizeOptions &Opts) const;

  /// The online controller's re-solve entry point: Algorithm 2 over
  /// phases [FirstPhase, numPhases) only, with phases the run already
  /// executed pinned to the exact configuration. Same plan/lookup/
  /// compute pipeline as optimize() -- tail results are memoized under
  /// keys that include FirstPhase, so a controller replaying the same
  /// feedback stream hits the cache and stays bit-deterministic -- but
  /// the budget-grid layer is skipped for FirstPhase > 0 (grids
  /// precompute full-schedule solves only). FirstPhase == 0 is exactly
  /// optimize(); FirstPhase >= numPhases is rejected as an Error.
  Expected<OptimizationResult>
  optimizeTail(const OpproxArtifact &Art, const std::vector<double> &Input,
               double QosBudget, size_t FirstPhase,
               const OptimizeOptions &Opts,
               PlannerStageBreakdown *Stages = nullptr) const;

  bool cacheEnabled() const { return Cache != nullptr; }
  /// The owned cache; null when UseCache was false.
  ScheduleCache *cache() const { return Cache.get(); }
  /// The owned scan pool; null when ScanThreads resolved to serial.
  ThreadPool *scanPool() const { return ScanPool.get(); }
  /// Executors a compute-layer solve engages: the scan pool's workers
  /// plus the calling thread, or 1 when solves run serially.
  size_t scanExecutors() const;
  const PlannerOptions &options() const { return Opts; }

private:
  /// Lookup + compute for a validated request: cache, then grids (full
  /// solves only -- FirstPhase must be 0 for a grid hit), then the
  /// (possibly tail-restricted) solve. \p Stages (nullable) receives the
  /// layer timings.
  OptimizationResult lookupOrCompute(const OpproxArtifact &Art, int ClassId,
                                     const std::vector<double> &Input,
                                     double QosBudget, size_t FirstPhase,
                                     const OptimizeOptions &Opts,
                                     PlannerStageBreakdown *Stages) const;

  PlannerOptions Opts;
  std::unique_ptr<ScheduleCache> Cache;
  /// Shared across all concurrent compute-layer solves; parallelFor is
  /// safe from any number of callers, and chunk tasks from concurrent
  /// requests simply interleave in the FIFO queue.
  std::unique_ptr<ThreadPool> ScanPool;
};

} // namespace opprox

#endif // OPPROX_CORE_OPTIMIZEPLANNER_H
