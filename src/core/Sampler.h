//===- core/Sampler.h - AL-space sampling plans ----------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampling strategy of paper Sec. 3.3: exhaustively cover each block's
/// own level range while every other block stays exact (for the local
/// models), then add sparse random joint configurations (to capture
/// interactions for the overall models).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_SAMPLER_H
#define OPPROX_CORE_SAMPLER_H

#include "support/Random.h"
#include <vector>

namespace opprox {

/// The configurations one profiling pass will execute.
struct SamplingPlan {
  /// One block approximated at a time, every level 1..max (exhaustive
  /// local coverage). The all-exact configuration is not included; the
  /// golden run covers it.
  std::vector<std::vector<int>> LocalConfigs;

  /// Random joint configurations with arbitrary levels in every block.
  std::vector<std::vector<int>> JointConfigs;

  /// Local followed by joint configurations.
  std::vector<std::vector<int>> all() const;

  size_t size() const { return LocalConfigs.size() + JointConfigs.size(); }
};

/// Builds a plan over blocks with the given per-block maximum levels.
/// \p NumRandomJoint random joint configs are drawn via \p Rng (all-zero
/// draws are rerolled).
SamplingPlan makeSamplingPlan(const std::vector<int> &MaxLevels,
                              size_t NumRandomJoint, Rng &Rng);

/// Enumerates every level combination (cartesian product), all-exact
/// first -- the phase-agnostic oracle's search space. Asserts the space
/// stays under \p Limit configurations.
std::vector<std::vector<int>>
enumerateAllConfigs(const std::vector<int> &MaxLevels,
                    size_t Limit = 2'000'000);

} // namespace opprox

#endif // OPPROX_CORE_SAMPLER_H
