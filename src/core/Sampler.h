//===- core/Sampler.h - AL-space sampling plans ----------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sampling strategy of paper Sec. 3.3: exhaustively cover each block's
/// own level range while every other block stays exact (for the local
/// models), then add sparse random joint configurations (to capture
/// interactions for the overall models).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_SAMPLER_H
#define OPPROX_CORE_SAMPLER_H

#include "support/Error.h"
#include "support/Random.h"
#include <vector>

namespace opprox {

/// The configurations one profiling pass will execute.
struct SamplingPlan {
  /// One block approximated at a time, every level 1..max (exhaustive
  /// local coverage). The all-exact configuration is not included; the
  /// golden run covers it.
  std::vector<std::vector<int>> LocalConfigs;

  /// Random joint configurations with arbitrary levels in every block.
  std::vector<std::vector<int>> JointConfigs;

  /// Local followed by joint configurations. Copies every config; prefer
  /// forEach when the caller only needs to visit them.
  std::vector<std::vector<int>> all() const;

  /// Visits every configuration (local then joint) without copying.
  template <typename Fn> void forEach(Fn &&Visit) const {
    for (const std::vector<int> &Config : LocalConfigs)
      Visit(Config);
    for (const std::vector<int> &Config : JointConfigs)
      Visit(Config);
  }

  size_t size() const { return LocalConfigs.size() + JointConfigs.size(); }
};

/// Builds a plan over blocks with the given per-block maximum levels.
/// \p NumRandomJoint random joint configs are drawn via \p Rng (all-zero
/// draws are rerolled).
SamplingPlan makeSamplingPlan(const std::vector<int> &MaxLevels,
                              size_t NumRandomJoint, Rng &Rng);

/// Size of the full level cartesian product, i.e. prod(MaxLevels[b]+1).
/// Errors (instead of overflowing or exhausting memory) when the space
/// exceeds \p Limit.
Expected<size_t> configSpaceSize(const std::vector<int> &MaxLevels,
                                 size_t Limit = 2'000'000);

/// Streaming odometer over the level cartesian product, in the same
/// order as enumerateAllConfigs (block 0 is the fastest digit; all-exact
/// first). One reused levels buffer replaces materializing the whole
/// space, and the global enumeration index gives random access (seek)
/// for sharding plus subtree skips for pruned search.
class ConfigCursor {
public:
  /// Positions the cursor at the all-exact configuration (index 0).
  /// Hard-fails in every build type when the space exceeds \p Limit.
  explicit ConfigCursor(std::vector<int> MaxLevels,
                        size_t Limit = 2'000'000);

  /// Total number of configurations in the space.
  size_t spaceSize() const { return Total; }

  bool done() const { return Done; }

  /// Current configuration; valid only while !done().
  const std::vector<int> &levels() const { return Current; }

  /// Zero-based position of the current configuration in enumeration
  /// order; valid only while !done().
  size_t index() const { return Position; }

  /// Advances to the next configuration in enumeration order.
  void next();

  /// Jumps to the configuration at \p Index in enumeration order; an
  /// index >= spaceSize() marks the cursor done.
  void seek(size_t Index);

  /// Skips every remaining configuration sharing the current values of
  /// digits Digit and above with lower digits not yet exhausted -- i.e.
  /// advances digit \p Digit by one, zeroing digits below it (with carry
  /// into higher digits). Used to discard a whole subtree once a bound
  /// proves digit Digit's current level infeasible.
  void skipSubtree(size_t Digit);

private:
  std::vector<int> MaxLevels;
  std::vector<int> Current;
  /// Stride[B]: index distance between consecutive values of digit B.
  std::vector<size_t> Stride;
  size_t Total = 0;
  size_t Position = 0;
  bool Done = false;
};

/// Enumerates every level combination (cartesian product), all-exact
/// first -- the phase-agnostic oracle's search space. Hard-fails in
/// every build type when the space exceeds \p Limit configurations;
/// callers that must recover should check configSpaceSize first.
std::vector<std::vector<int>>
enumerateAllConfigs(const std::vector<int> &MaxLevels,
                    size_t Limit = 2'000'000);

} // namespace opprox

#endif // OPPROX_CORE_SAMPLER_H
