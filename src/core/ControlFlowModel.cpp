//===- core/ControlFlowModel.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ControlFlowModel.h"
#include "support/Json.h"
#include <cassert>

using namespace opprox;

ControlFlowModel
ControlFlowModel::train(const std::vector<std::vector<double>> &Inputs,
                        const std::vector<int> &Classes) {
  assert(!Inputs.empty() && Inputs.size() == Classes.size() &&
         "empty or mismatched classifier data");
  ControlFlowModel Model;
  Model.Tree = DecisionTree::fit(Inputs, Classes);
  return Model;
}

int ControlFlowModel::predictClass(const std::vector<double> &Input) const {
  return Tree.predict(Input);
}

Json ControlFlowModel::toJson() const { return Tree.toJson(); }

Expected<ControlFlowModel> ControlFlowModel::fromJson(const Json &Value) {
  Expected<DecisionTree> Tree = DecisionTree::fromJson(Value);
  if (!Tree)
    return Tree.error();
  ControlFlowModel Model;
  Model.Tree = std::move(*Tree);
  return Model;
}
