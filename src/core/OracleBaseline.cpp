//===- core/OracleBaseline.cpp --------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/OracleBaseline.h"
#include "approx/WorkCounter.h"
#include "core/Sampler.h"

using namespace opprox;

std::vector<MeasuredConfig>
opprox::measureAllUniformConfigs(const ApproxApp &App, GoldenCache &Golden,
                                 const std::vector<double> &Input) {
  const RunResult &Exact = Golden.exactRun(Input);
  std::vector<MeasuredConfig> Out;
  // Stream the space instead of materializing it: the cursor reuses one
  // levels buffer, and index 0 is the all-exact configuration.
  ConfigCursor Cursor(App.maxLevels());
  Out.reserve(Cursor.spaceSize());
  for (; !Cursor.done(); Cursor.next()) {
    const std::vector<int> &Levels = Cursor.levels();
    MeasuredConfig M;
    M.Levels = Levels;
    if (Cursor.index() == 0) {
      M.Speedup = 1.0;
      M.QosDegradation = 0.0;
      M.OuterIterations = Exact.OuterIterations;
    } else {
      PhaseSchedule Schedule = PhaseSchedule::uniform(1, Levels);
      RunResult R = App.run(Input, Schedule, Exact.OuterIterations);
      M.Speedup = speedupOf(Exact.WorkUnits, R.WorkUnits);
      M.QosDegradation = App.qosDegradation(Exact, R);
      M.OuterIterations = R.OuterIterations;
    }
    Out.push_back(std::move(M));
  }
  return Out;
}

OracleResult opprox::selectOracle(const std::vector<MeasuredConfig> &Measured,
                                  double QosBudget) {
  OracleResult Result;
  Result.ConfigsSearched = Measured.size();
  Result.Best.Speedup = 1.0;
  Result.Best.QosDegradation = 0.0;
  if (!Measured.empty())
    Result.Best.Levels.assign(Measured.front().Levels.size(), 0);

  for (const MeasuredConfig &M : Measured) {
    if (M.QosDegradation > QosBudget)
      continue;
    if (M.Speedup > Result.Best.Speedup) {
      Result.Best = M;
      Result.FoundNonTrivial = true;
    }
  }
  return Result;
}
