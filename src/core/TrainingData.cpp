//===- core/TrainingData.cpp ----------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/TrainingData.h"
#include "support/StringUtils.h"
#include <cassert>

using namespace opprox;

TrainingSet TrainingSet::filter(
    const std::function<bool(const TrainingSample &)> &Keep) const {
  TrainingSet Out;
  for (const TrainingSample &S : Samples)
    if (Keep(S))
      Out.add(S);
  return Out;
}

TrainingSet TrainingSet::forPhase(int Phase) const {
  return filter([Phase](const TrainingSample &S) { return S.Phase == Phase; });
}

TrainingSet TrainingSet::forClass(int ControlFlowClass) const {
  return filter([ControlFlowClass](const TrainingSample &S) {
    return S.ControlFlowClass == ControlFlowClass;
  });
}

std::string
TrainingSet::toCsv(const std::vector<std::string> &InputNames,
                   const std::vector<std::string> &BlockNames) const {
  std::vector<std::string> Header;
  for (const std::string &Name : InputNames)
    Header.push_back("in_" + Name);
  for (const std::string &Name : BlockNames)
    Header.push_back("al_" + Name);
  Header.push_back("phase");
  Header.push_back("speedup");
  Header.push_back("qos_degradation");
  Header.push_back("outer_iterations");
  Header.push_back("cf_class");

  std::string Out = join(Header, ",") + "\n";
  for (const TrainingSample &S : Samples) {
    assert(S.Input.size() == InputNames.size() && "input width mismatch");
    assert(S.Levels.size() == BlockNames.size() && "level width mismatch");
    std::vector<std::string> Row;
    for (double V : S.Input)
      Row.push_back(format("%.17g", V));
    for (int L : S.Levels)
      Row.push_back(format("%d", L));
    Row.push_back(format("%d", S.Phase));
    Row.push_back(format("%.17g", S.Speedup));
    Row.push_back(format("%.17g", S.QosDegradation));
    Row.push_back(format("%.17g", S.OuterIterations));
    Row.push_back(format("%d", S.ControlFlowClass));
    Out += join(Row, ",") + "\n";
  }
  return Out;
}

Expected<TrainingSet> TrainingSet::fromCsv(const std::string &Csv,
                                           size_t NumInputs,
                                           size_t NumBlocks) {
  TrainingSet Out;
  std::vector<std::string> Lines = split(Csv, '\n');
  size_t ExpectedCols = NumInputs + NumBlocks + 5;
  for (size_t LineNo = 1; LineNo < Lines.size(); ++LineNo) {
    const std::string &Line = Lines[LineNo];
    if (trim(Line).empty())
      continue;
    std::vector<std::string> Cols = split(Line, ',');
    if (Cols.size() != ExpectedCols)
      return makeError("line %zu: expected %zu columns, found %zu", LineNo + 1,
                       ExpectedCols, Cols.size());
    TrainingSample S;
    size_t C = 0;
    auto TakeDouble = [&](double &Target) {
      return parseDouble(Cols[C++], Target);
    };
    auto TakeInt = [&](int &Target) {
      long L;
      if (!parseInt(Cols[C++], L))
        return false;
      Target = static_cast<int>(L);
      return true;
    };
    bool Ok = true;
    S.Input.resize(NumInputs);
    for (size_t I = 0; I < NumInputs && Ok; ++I)
      Ok = TakeDouble(S.Input[I]);
    S.Levels.resize(NumBlocks);
    for (size_t I = 0; I < NumBlocks && Ok; ++I)
      Ok = TakeInt(S.Levels[I]);
    Ok = Ok && TakeInt(S.Phase) && TakeDouble(S.Speedup) &&
         TakeDouble(S.QosDegradation) && TakeDouble(S.OuterIterations) &&
         TakeInt(S.ControlFlowClass);
    if (!Ok)
      return makeError("line %zu: malformed numeric field", LineNo + 1);
    Out.add(std::move(S));
  }
  return Out;
}
