//===- core/ModelArtifact.h - Versioned trained-model artifact -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk boundary between offline training and online
/// optimization (paper Fig. 6): everything the per-budget optimizer
/// needs -- the full per-(class, phase) model stack, the application's
/// identity and level ranges -- plus the training provenance required to
/// reproduce or audit it, in one schema-versioned JSON document.
///
/// Compatibility contract: a reader accepts any artifact whose schema
/// *major* version matches its own (minor bumps add optional fields);
/// anything else is rejected with a descriptive Error, never a crash.
/// Serialization is deterministic and doubles round-trip bit-exactly,
/// so a loaded artifact optimizes bit-identically to the trainer that
/// saved it.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_MODELARTIFACT_H
#define OPPROX_CORE_MODELARTIFACT_H

#include "core/AppModel.h"
#include "core/BudgetGrid.h"
#include "support/Error.h"
#include "support/Retry.h"
#include "support/Telemetry.h"
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace opprox {

class ApproxApp;
class Json;

/// How an artifact's model was trained: enough to re-run the exact same
/// training (seeds, sampling density) and to trace the producing
/// library build. Informational -- the runtime never branches on it.
struct ArtifactProvenance {
  /// Library build that trained the model (see opproxVersion()).
  std::string LibraryVersion;
  /// Base seed of the profiling sweep (ProfileOptions::Seed).
  uint64_t ProfileSeed = 0;
  /// Base seed of model fitting (ModelBuildOptions::Seed).
  uint64_t ModelSeed = 0;
  /// Application runs the profiling sweep performed.
  size_t TrainingRuns = 0;
  /// Joint-sampling density of the sweep (ProfileOptions).
  size_t RandomJointSamples = 0;
  /// True when the phase count came from Algorithm 1 rather than being
  /// fixed by the caller.
  bool PhaseCountDetected = false;
  /// What this training cost: the name-sorted diff of the monotone
  /// telemetry metrics (counters, histogram counts/sums) across
  /// OfflineTrainer::train -- golden-cache traffic, run counts, stage
  /// times. Optional in the schema (added in 1.1); empty when absent.
  MetricsSummary TrainingMetrics;
};

/// A complete, self-describing trained model for one application.
struct OpproxArtifact {
  /// Readers reject a different major; minor bumps stay readable.
  /// 1.1 added the optional provenance "training_metrics" object;
  /// 1.2 added the optional "budget_grids" precomputed sweeps.
  static constexpr long SchemaMajor = 1;
  static constexpr long SchemaMinor = 2;

  /// Application identity, used to refuse cross-application loads.
  std::string AppName;
  /// Input-parameter names, in the order optimize() expects values.
  std::vector<std::string> ParameterNames;
  /// Per-block maximum approximation levels (the optimizer's search
  /// ranges).
  std::vector<int> MaxLevels;
  /// The application's representative production input, so a runtime
  /// host can optimize without linking the application at all.
  std::vector<double> DefaultInput;
  /// The trained per-(class, phase) model stack.
  AppModel Model;
  /// Optional (schema 1.2) precomputed budget-grid sweeps, one per
  /// control-flow class the trainer could reach. Empty on 1.0/1.1
  /// artifacts and when training ran without --budget-grid. A corrupt
  /// grid section degrades to empty (counted in cache.grid_load_errors)
  /// rather than failing the load -- grids are an acceleration, never a
  /// correctness dependency.
  std::vector<BudgetGrid> BudgetGrids;
  ArtifactProvenance Provenance;

  size_t numPhases() const { return Model.numPhases(); }
  size_t numBlocks() const { return MaxLevels.size(); }

  Json toJson() const;
  static Expected<OpproxArtifact> fromJson(const Json &Value);

  /// The canonical serialized form (pretty-printed, trailing newline).
  std::string serialize() const;
  static Expected<OpproxArtifact> deserialize(const std::string &Text);

  /// Whole-file convenience wrappers around serialize()/deserialize().
  std::optional<Error> save(const std::string &Path) const;
  static Expected<OpproxArtifact> load(const std::string &Path);

  /// save() with bounded retry: transient write failures are retried
  /// per \p Policy, each retry counted into train.artifact_save_retries
  /// and logged. Returns the last attempt's Error when all attempts
  /// fail.
  std::optional<Error> save(const std::string &Path,
                            const RetryPolicy &Policy) const;

  /// Checks this artifact drives \p App: same name, block count, and
  /// level ranges. nullopt when compatible.
  std::optional<Error> validateFor(const ApproxApp &App) const;
};

} // namespace opprox

#endif // OPPROX_CORE_MODELARTIFACT_H
