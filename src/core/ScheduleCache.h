//===- core/ScheduleCache.h - Sharded LRU schedule cache -------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lookup layer of the optimize pipeline (docs/ARCHITECTURE.md,
/// "Layered optimize pipeline"): a sharded LRU cache from canonical
/// request keys to finished OptimizationResults, plus negative entries
/// that memoize the Error a malformed request produced.
///
/// Correctness contract: a key covers *every* value the optimizer's
/// decision depends on -- the raw bits of the full input vector and the
/// budget, the decision-relevant OptimizeOptions (ConfidenceP,
/// Conservative; the engine/geometry knobs are proven decision-
/// irrelevant by OptimizerEquivalenceTests), and the control-flow class
/// -- so a hit is bit-identical to what the compute layer would have
/// returned. Keys are exact, never quantized: two budgets that differ
/// in one mantissa bit are two entries.
///
/// Concurrency: N independently-locked shards selected by key hash.
/// Every method is safe from any thread; a shard's mutex is held only
/// for the map/list operation, never across model evaluation.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_SCHEDULECACHE_H
#define OPPROX_CORE_SCHEDULECACHE_H

#include "core/Optimizer.h"
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace opprox {

struct ScheduleCacheOptions {
  /// Independently-locked shards. More shards reduce lock contention
  /// between serving threads; the bit-identity contract holds for any
  /// count (OPPROX_CACHE_SHARDS / --cache-shards).
  size_t Shards = 8;
  /// Total entries across all shards, positive and negative together.
  /// 0 disables insertion entirely, turning every lookup into a miss
  /// (OPPROX_CACHE_CAPACITY / --cache-capacity).
  size_t Capacity = 4096;
};

/// Sharded LRU map from canonical optimize-request keys to results.
class ScheduleCache {
public:
  /// A canonical request key: the FNV-1a hash (shard selection) over the
  /// canonical byte encoding, plus the bytes themselves (full compare on
  /// lookup, so hash collisions can never alias two requests).
  struct Key {
    uint64_t Hash = 0;
    std::string Bytes;
  };

  /// Canonical encoding of everything the decision depends on: class id,
  /// raw budget bits, raw ConfidenceP bits, the Conservative flag, the
  /// first phase the solve covers (0 for full-schedule solves, the
  /// resume phase for online tail re-solves), and the raw bits of every
  /// input value. \p ClassId is the model's control-flow class for the
  /// input (pass a negative sentinel for requests too malformed to
  /// classify).
  static Key makeKey(int ClassId, const std::vector<double> &Input,
                     double Budget, const OptimizeOptions &Opts,
                     size_t FirstPhase = 0);

  explicit ScheduleCache(const ScheduleCacheOptions &Opts = {});

  /// What a successful lookup found: either a finished result or the
  /// memoized rejection of a malformed request.
  struct CachedValue {
    bool Negative = false;
    OptimizationResult Result;  ///< Valid when !Negative.
    std::string ErrorMessage;   ///< Valid when Negative.
  };

  /// Finds \p K, refreshing its LRU position. Counts cache.hits,
  /// cache.negative_hits, or cache.misses, and records the lookup
  /// latency into cache.lookup_ns.
  std::optional<CachedValue> lookup(const Key &K);

  /// Inserts (or refreshes) a positive entry. Evicting the LRU tail to
  /// make room counts cache.evictions. No-op when Capacity is 0.
  void insert(const Key &K, const OptimizationResult &Result);

  /// Inserts a negative entry memoizing a malformed request's Error.
  void insertNegative(const Key &K, const std::string &ErrorMessage);

  /// Drops every entry in every shard (counts are not reset).
  void clear();

  size_t size() const;
  size_t numShards() const { return Shards.size(); }
  size_t capacity() const { return TotalCapacity; }

private:
  struct Entry {
    std::string KeyBytes;
    CachedValue Value;
  };
  struct Shard {
    mutable std::mutex Mutex;
    std::list<Entry> Lru; ///< Front = most recently used.
    std::unordered_map<std::string, std::list<Entry>::iterator> Map;
  };

  Shard &shardFor(const Key &K) { return *Shards[K.Hash % Shards.size()]; }
  void insertValue(const Key &K, CachedValue Value);

  std::vector<std::unique_ptr<Shard>> Shards;
  size_t TotalCapacity;
  size_t PerShardCapacity;
};

} // namespace opprox

#endif // OPPROX_CORE_SCHEDULECACHE_H
