//===- core/ScheduleCache.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/ScheduleCache.h"
#include "support/Telemetry.h"
#include <chrono>
#include <cstring>

using namespace opprox;

namespace {

/// Cached instrument handles (see docs/OBSERVABILITY.md, "cache.*"):
/// the lookup hot path touches only relaxed atomics.
struct CacheMetrics {
  Counter &Hits = MetricsRegistry::global().counter("cache.hits");
  Counter &Misses = MetricsRegistry::global().counter("cache.misses");
  Counter &NegativeHits =
      MetricsRegistry::global().counter("cache.negative_hits");
  Counter &Evictions = MetricsRegistry::global().counter("cache.evictions");
  Histogram &LookupNs = MetricsRegistry::global().histogram(
      "cache.lookup_ns", Histogram::latencyBoundsNs());

  static CacheMetrics &get() {
    static CacheMetrics M;
    return M;
  }
};

void appendRaw(std::string &Out, const void *Data, size_t Size) {
  Out.append(static_cast<const char *>(Data), Size);
}

/// FNV-1a over the canonical bytes: cheap, deterministic across
/// processes, and good enough for shard spreading -- exactness comes
/// from the full-key compare, never from the hash.
uint64_t fnv1a(const std::string &Bytes) {
  uint64_t Hash = 1469598103934665603ull;
  for (unsigned char C : Bytes) {
    Hash ^= C;
    Hash *= 1099511628211ull;
  }
  return Hash;
}

} // namespace

ScheduleCache::Key ScheduleCache::makeKey(int ClassId,
                                          const std::vector<double> &Input,
                                          double Budget,
                                          const OptimizeOptions &Opts,
                                          size_t FirstPhase) {
  Key K;
  K.Bytes.reserve(2 * sizeof(double) + sizeof(int32_t) + sizeof(uint32_t) + 1 +
                  Input.size() * sizeof(double));
  int32_t Class = static_cast<int32_t>(ClassId);
  appendRaw(K.Bytes, &Class, sizeof(Class));
  uint32_t First = static_cast<uint32_t>(FirstPhase);
  appendRaw(K.Bytes, &First, sizeof(First));
  // Raw bit patterns, not values: -0.0 vs 0.0 and distinct NaN payloads
  // are distinct keys, which is what keeps a hit bit-identical to the
  // compute path for *this exact* request.
  appendRaw(K.Bytes, &Budget, sizeof(Budget));
  appendRaw(K.Bytes, &Opts.ConfidenceP, sizeof(Opts.ConfidenceP));
  K.Bytes.push_back(Opts.Conservative ? '\1' : '\0');
  for (double V : Input)
    appendRaw(K.Bytes, &V, sizeof(V));
  K.Hash = fnv1a(K.Bytes);
  return K;
}

ScheduleCache::ScheduleCache(const ScheduleCacheOptions &Opts)
    : TotalCapacity(Opts.Capacity) {
  size_t NumShards = Opts.Shards == 0 ? 1 : Opts.Shards;
  Shards.reserve(NumShards);
  for (size_t S = 0; S < NumShards; ++S)
    Shards.push_back(std::make_unique<Shard>());
  PerShardCapacity =
      TotalCapacity == 0 ? 0 : std::max<size_t>(1, TotalCapacity / NumShards);
}

std::optional<ScheduleCache::CachedValue>
ScheduleCache::lookup(const Key &K) {
  CacheMetrics &M = CacheMetrics::get();
  auto Start = std::chrono::steady_clock::now();
  std::optional<CachedValue> Found;
  {
    Shard &S = shardFor(const_cast<Key &>(K));
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(K.Bytes);
    if (It != S.Map.end()) {
      S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
      Found = It->second->Value;
    }
  }
  M.LookupNs.record(static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - Start)
          .count()));
  if (!Found) {
    M.Misses.add();
    return std::nullopt;
  }
  if (Found->Negative)
    M.NegativeHits.add();
  else
    M.Hits.add();
  return Found;
}

void ScheduleCache::insertValue(const Key &K, CachedValue Value) {
  if (PerShardCapacity == 0)
    return;
  CacheMetrics &M = CacheMetrics::get();
  Shard &S = shardFor(const_cast<Key &>(K));
  std::lock_guard<std::mutex> Lock(S.Mutex);
  auto It = S.Map.find(K.Bytes);
  if (It != S.Map.end()) {
    // A concurrent miss already computed this entry; both values are
    // bit-identical by construction, so refreshing is enough.
    It->second->Value = std::move(Value);
    S.Lru.splice(S.Lru.begin(), S.Lru, It->second);
    return;
  }
  while (S.Lru.size() >= PerShardCapacity) {
    S.Map.erase(S.Lru.back().KeyBytes);
    S.Lru.pop_back();
    M.Evictions.add();
  }
  S.Lru.push_front(Entry{K.Bytes, std::move(Value)});
  S.Map.emplace(K.Bytes, S.Lru.begin());
}

void ScheduleCache::insert(const Key &K, const OptimizationResult &Result) {
  CachedValue Value;
  Value.Negative = false;
  Value.Result = Result;
  insertValue(K, std::move(Value));
}

void ScheduleCache::insertNegative(const Key &K,
                                   const std::string &ErrorMessage) {
  CachedValue Value;
  Value.Negative = true;
  Value.ErrorMessage = ErrorMessage;
  insertValue(K, std::move(Value));
}

void ScheduleCache::clear() {
  for (auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    S->Map.clear();
    S->Lru.clear();
  }
}

size_t ScheduleCache::size() const {
  size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Lock(S->Mutex);
    Total += S->Lru.size();
  }
  return Total;
}
