//===- core/PhaseDetector.h - Phase-granularity search ---------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 1 of the paper: starting from N=2 phases, keep doubling
/// while the "max difference between mean QoS degradations of
/// consecutive phases" still moves by more than a threshold. Large N
/// captures phase structure at finer grain but inflates the search space
/// exponentially, so the search stops as soon as refinement stops paying.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_PHASEDETECTOR_H
#define OPPROX_CORE_PHASEDETECTOR_H

#include "core/Profiler.h"

namespace opprox {

struct PhaseDetectOptions {
  /// Stop when |maxDiff(N) - maxDiff(2N)| falls below this (percent QoS).
  double Threshold = 2.0;
  /// Hard cap on phases (the paper explores up to 8).
  size_t MaxPhases = 8;
  /// Probe configurations per phase for getMaxQoSDiff.
  size_t ProbeConfigs = 5;
  /// Seed for the probe-configuration RNG (one stream per maxQosDiff
  /// call, so every phase granularity probes the same configurations).
  uint64_t Seed = 0xA160;
  /// Probe parallelism: 1 = serial, 0 = auto (OPPROX_THREADS, else
  /// hardware concurrency). The detected phase count is identical for
  /// any value; see docs/ARCHITECTURE.md.
  size_t NumThreads = 0;
};

/// Helper of Algorithm 1: with \p NumPhases phases, probes a few
/// configurations in each phase and returns the maximum difference
/// between the mean QoS degradations of consecutive phases.
double maxQosDiff(Profiler &Prof, const std::vector<double> &Input,
                  size_t NumPhases, const PhaseDetectOptions &Opts);

/// Algorithm 1: the phase count at which refinement stops changing the
/// inter-phase QoS contrast.
size_t detectPhaseCount(Profiler &Prof, const std::vector<double> &Input,
                        const PhaseDetectOptions &Opts);

} // namespace opprox

#endif // OPPROX_CORE_PHASEDETECTOR_H
