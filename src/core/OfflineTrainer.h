//===- core/OfflineTrainer.h - Fig. 6 offline half -------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The offline half of the paper's Fig. 6 pipeline: phase detection
/// (Algorithm 1), the profiling sweep over representative inputs
/// (Sec. 3.3), and model construction (Secs. 3.4, 3.6-3.7), packaged as
/// a versioned OpproxArtifact that an OpproxRuntime -- possibly in a
/// different process, days later -- serves optimizations from.
///
/// Train-once / serve-many:
/// \code
///   OfflineTrainer::Result R = OfflineTrainer::train(App, Opts);
///   R.Artifact.save("lulesh.opprox.json").  // inspect/ship/cache
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_OFFLINETRAINER_H
#define OPPROX_CORE_OFFLINETRAINER_H

#include "core/ModelArtifact.h"
#include "core/Opprox.h"
#include <memory>

namespace opprox {

/// Runs training and emits the artifact plus the training-time state
/// (profiled samples, golden cache) that is useful in-process but never
/// serialized.
class OfflineTrainer {
public:
  struct Result {
    OpproxArtifact Artifact;
    /// The profiled samples the models were fit on (evaluation,
    /// introspection; not part of the artifact).
    TrainingSet Data;
    /// Exact-run cache populated during profiling; reusable by
    /// evaluators so they do not redo golden runs.
    std::unique_ptr<GoldenCache> Golden;
  };

  /// Offline training (Fig. 6, left half). Runs the application many
  /// times; see ProfileOptions to control the cost. Deterministic for
  /// any thread count.
  static Result train(const ApproxApp &App, const OpproxTrainOptions &Opts);
};

} // namespace opprox

#endif // OPPROX_CORE_OFFLINETRAINER_H
