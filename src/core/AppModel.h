//===- core/AppModel.h - Trained speedup/QoS model stack -------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The trained model stack of paper Sec. 3.6, per (control-flow class,
/// phase):
///
///  - local per-AB speedup and QoS models s_b(a_b, P), q_b(a_b, P);
///  - an outer-loop iteration estimator I(A, P);
///  - overall models S(s_1..s_M, I) and Q(q_1..q_M, I) that take the
///    local predictions and the iteration estimate as features;
///  - per-phase ROI (Eq. 1) for budget allocation;
///
/// plus the decision-tree control-flow classifier selecting which class's
/// models apply to a production input (Sec. 3.4). Conservative
/// predictions use the confidence interval bounds of Sec. 3.6.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_APPMODEL_H
#define OPPROX_CORE_APPMODEL_H

#include "core/ControlFlowModel.h"
#include "core/TrainingData.h"
#include "ml/ModelSelection.h"
#include <optional>

namespace opprox {

class PhaseModels;

/// Precomputed per-(input, phase, confidence-mode) state for batched
/// prediction over the level space. Everything here is read-only during
/// the scan and shared across worker threads.
struct PhaseEvalPlan {
  std::vector<double> Input;
  std::vector<int> MaxLevels;
  bool Conservative = false;
  /// halfWidth(Confidence) of the overall models; 0 when !Conservative.
  double SpeedupHalfWidth = 0.0;
  double QosHalfWidth = 0.0;
  /// Local model predictions memoized per (block, level): the overall
  /// models' features depend on Levels only through these values and the
  /// iteration estimate, so they are computed once by the same scalar
  /// predict calls the naive path makes.
  std::vector<std::vector<double>> LocalSpeedupTab; // [Block][Level]
  std::vector<std::vector<double>> LocalQosTab;     // [Block][Level]
  /// Certified lower bound on the (conservative, when enabled) QoS
  /// degradation over every configuration with the given block pinned at
  /// the given level. When this exceeds the budget the whole odometer
  /// subtree is infeasible and can be skipped without changing the scan
  /// result.
  std::vector<std::vector<double>> QosFloor; // [Block][Level]
};

/// Per-thread workspace for the batched prediction kernels; reuse across
/// calls to keep the hot path allocation-free at steady state.
struct PredictScratch {
  Matrix IterX;                ///< Batch x (inputs + blocks) iteration rows.
  std::vector<double> IterOut; ///< Iteration estimates.
  Matrix OverallX;             ///< Batch x (blocks + 1) overall rows.
  std::vector<double> LogOut;  ///< Overall model outputs before transform.
  SelectedModel::BatchScratch Model;
};

/// Models for one (control-flow class, phase) pair.
class PhaseModels {
public:
  /// Point estimate of the application speedup when \p Levels are applied
  /// in this phase for \p Input.
  double predictSpeedup(const std::vector<double> &Input,
                        const std::vector<int> &Levels) const;

  /// Conservative (lower-bound) speedup at confidence \p P.
  double conservativeSpeedup(const std::vector<double> &Input,
                             const std::vector<int> &Levels, double P) const;

  /// Point estimate of the QoS degradation.
  double predictQos(const std::vector<double> &Input,
                    const std::vector<int> &Levels) const;

  /// Conservative (upper-bound) QoS degradation at confidence \p P.
  double conservativeQos(const std::vector<double> &Input,
                         const std::vector<int> &Levels, double P) const;

  /// Predicted outer-loop iteration count.
  double predictIterations(const std::vector<double> &Input,
                           const std::vector<int> &Levels) const;

  /// Builds the shared evaluation state for scanning the level space
  /// [0, MaxLevels[b]] per block for \p Input: local prediction tables,
  /// confidence half-widths, and the certified per-(block, level) QoS
  /// floors used for subtree pruning.
  PhaseEvalPlan makeEvalPlan(const std::vector<double> &Input,
                             const std::vector<int> &MaxLevels,
                             bool Conservative, double Confidence) const;

  /// Iteration estimates for \p N level rows, row-major
  /// \p N x numBlocks() in \p Levels, into \p Out. Both overall models
  /// consume this estimate; computing it once per batch and passing it
  /// to the IterEst-taking predict overloads halves the iteration-model
  /// work on the scan hot path without changing any bit (per-row results
  /// are independent of batch composition).
  void predictIterationsBatch(const PhaseEvalPlan &Plan, const int *Levels,
                              size_t N, std::vector<double> &Out,
                              PredictScratch &S) const;

  /// Predicted (or conservative, per \p Plan) speedup for \p N level
  /// rows, row-major \p N x numBlocks() in \p Levels, into \p Out. Each
  /// row's value is bit-identical to predictSpeedup /
  /// conservativeSpeedup on that row, independent of batch size or
  /// composition.
  void predictSpeedupBatch(const PhaseEvalPlan &Plan, const int *Levels,
                           size_t N, std::vector<double> &Out,
                           PredictScratch &S) const;

  /// predictSpeedupBatch with the per-row iteration estimates already
  /// computed (\p IterEst, one per row, from predictIterationsBatch on
  /// the same rows).
  void predictSpeedupBatch(const PhaseEvalPlan &Plan, const int *Levels,
                           const double *IterEst, size_t N,
                           std::vector<double> &Out, PredictScratch &S) const;

  /// Batched counterpart of predictQos / conservativeQos; same contract
  /// as predictSpeedupBatch.
  void predictQosBatch(const PhaseEvalPlan &Plan, const int *Levels,
                       size_t N, std::vector<double> &Out,
                       PredictScratch &S) const;

  /// predictQosBatch with precomputed iteration estimates.
  void predictQosBatch(const PhaseEvalPlan &Plan, const int *Levels,
                       const double *IterEst, size_t N,
                       std::vector<double> &Out, PredictScratch &S) const;

  /// ROI of this phase: mean speedup-per-unit-QoS over its training
  /// samples (Eq. 1).
  double roi() const { return Roi; }

  /// Cross-validated R^2 of the overall models (introspection).
  double speedupCvR2() const { return OverallSpeedup->cvR2(); }
  double qosCvR2() const { return OverallQos->cvR2(); }

  /// Number of approximable blocks this stack models.
  size_t numBlocks() const { return LocalSpeedup.size(); }

  /// Artifact serialization: all five model groups plus the phase ROI.
  Json toJson() const;
  static Expected<PhaseModels> fromJson(const Json &Value);

private:
  friend class ModelBuilder;

  /// Features for the overall speedup model: local speedup predictions
  /// plus the iteration estimate. Part of the self-contained scalar path
  /// (see the .cpp comment); the batch kernels assemble the same values
  /// from the eval plan's memoized tables instead.
  std::vector<double> overallFeatures(const std::vector<double> &Input,
                                      const std::vector<int> &Levels) const;

  /// Batched log-space overall-model outputs (no transform applied) for
  /// \p N row-major level rows, using the plan's memoized local tables
  /// and the precomputed per-row iteration estimates \p IterEst.
  void overallLogBatch(const PhaseEvalPlan &Plan, const int *Levels,
                       const double *IterEst, size_t N, bool Qos,
                       std::vector<double> &Out, PredictScratch &S) const;

  std::vector<SelectedModel> LocalSpeedup; // One per AB.
  std::vector<SelectedModel> LocalQos;     // One per AB.
  std::optional<SelectedModel> IterationModel;
  std::optional<SelectedModel> OverallSpeedup;
  std::optional<SelectedModel> OverallQos;
  double Roi = 1.0;
};

/// All models for one application: classifier + per-class per-phase
/// model stacks.
class AppModel {
public:
  size_t numPhases() const { return NumPhases; }
  size_t numClasses() const { return Classes.size(); }

  /// Control-flow class predicted for \p Input.
  int classOf(const std::vector<double> &Input) const;

  /// Models of (class predicted for \p Input, \p Phase).
  const PhaseModels &phaseModels(const std::vector<double> &Input,
                                 size_t Phase) const;

  /// Models of an explicit class id (introspection, benches).
  const PhaseModels &phaseModelsForClass(int ClassId, size_t Phase) const;

  /// Number of approximable blocks (from any class's phase-0 stack).
  size_t numBlocks() const;

  /// Artifact serialization: classifier + the full per-(class, phase)
  /// model grid. fromJson enforces a rectangular grid with a consistent
  /// block count so a loaded model can never index out of range.
  Json toJson() const;
  static Expected<AppModel> fromJson(const Json &Value);

private:
  friend class ModelBuilder;

  size_t NumPhases = 0;
  ControlFlowModel Classifier;
  // Classes[ClassId][Phase].
  std::vector<std::vector<PhaseModels>> Classes;
};

/// Options controlling model construction.
struct ModelBuildOptions {
  /// Model-selection policy (degrees, folds, MIC threshold; Sec. 3.7).
  ModelSelectOptions Selection;
  /// Floor applied to QoS degradation in the ROI denominator so
  /// error-free phases get large-but-finite ROI.
  double RoiQosFloor = 0.05;
  /// Base seed for fold shuffling. The (class, phase) model-fit task
  /// draws its RNG from deriveSeed(Seed, ClassId, Phase), so each task's
  /// stream is independent of scheduling and worker count. (The "2"
  /// marks the per-task derivation scheme that replaced the old shared
  /// sequential stream.)
  uint64_t Seed = 0xB111D2;
  /// Fit parallelism across (class, phase) tasks: 1 = serial, 0 = auto
  /// (OPPROX_THREADS, else hardware concurrency). The built model is
  /// identical for any value.
  size_t NumThreads = 0;
};

/// Builds an AppModel from profiled training data (Secs. 3.4, 3.6, 3.7).
class ModelBuilder {
public:
  /// \p Data must contain per-phase samples for every phase in
  /// [0, NumPhases). All-phase (uniform) samples are ignored here; they
  /// serve the oracle comparison. Fits the per-(class, phase) model
  /// stacks concurrently across Opts.NumThreads executors.
  static AppModel build(const TrainingSet &Data, size_t NumPhases,
                        size_t NumBlocks, const ModelBuildOptions &Opts);
};

} // namespace opprox

#endif // OPPROX_CORE_APPMODEL_H
