//===- core/BudgetGrid.h - Precomputed per-class budget sweeps -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optional precomputed budget-grid sweeps carried by schema-1.2
/// artifacts: for each control-flow class, the trainer solves the full
/// Algorithm-2 search once per common budget point and stores the
/// finished OptimizationResult. At serving time a request whose
/// (class, input, budget, decision options) match a grid point bitwise
/// resolves by copying the stored result instead of re-running the
/// search -- the grid was produced by the very optimizer the miss path
/// would run, so a grid hit is bit-identical by construction.
///
/// Grids are strictly an acceleration: requests off the grid fall
/// through to the compute layer, and a corrupt grid section in an
/// artifact degrades to "no grids" (counted in cache.grid_load_errors)
/// rather than failing the load.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_BUDGETGRID_H
#define OPPROX_CORE_BUDGETGRID_H

#include "core/Optimizer.h"
#include "support/Error.h"

namespace opprox {

class Json;

/// One solved budget point: the budget it was solved for (exact bits)
/// and the optimizer's full result.
struct BudgetGridPoint {
  double Budget = 0.0;
  OptimizationResult Result;
};

/// The precomputed sweep for one control-flow class, solved for one
/// representative input under one decision-relevant option set. A grid
/// point applies to a request only when class id, every input value,
/// the budget, ConfidenceP, and Conservative all match bitwise.
struct BudgetGrid {
  int ClassId = 0;
  std::vector<double> Input;
  double ConfidenceP = 0.99;
  bool Conservative = true;
  std::vector<BudgetGridPoint> Points;

  Json toJson() const;
  static Expected<BudgetGrid> fromJson(const Json &Value);
};

/// Controls the trainer's grid sweep (opprox-train --budget-grid).
struct BudgetGridOptions {
  bool Enabled = false;
  /// Budget points to solve per class, in percent QoS degradation.
  /// Covers the common serving budgets; off-grid budgets simply miss.
  std::vector<double> Budgets = {1.0,  2.0,  5.0,  10.0,
                                 15.0, 20.0, 25.0, 50.0};
  /// Decision options the sweep is solved under (must match the
  /// request's options bitwise for a grid point to apply).
  double ConfidenceP = 0.99;
  bool Conservative = true;
};

/// Solves the sweep for every control-flow class of \p Model. Each
/// class's representative input is \p DefaultInput when it classifies
/// into that class, else the first of \p CandidateInputs that does;
/// classes no candidate reaches get no grid. Points whose solve
/// degraded (non-empty DegradedPhases) are dropped -- a fault-degraded
/// result must not be baked into the artifact.
std::vector<BudgetGrid>
computeBudgetGrids(const AppModel &Model, const std::vector<int> &MaxLevels,
                   const std::vector<double> &DefaultInput,
                   const std::vector<std::vector<double>> &CandidateInputs,
                   const BudgetGridOptions &Opts);

/// Looks up the grid point matching (\p ClassId, \p Input, \p Budget,
/// \p Opts) bitwise. Null when off the grid. Counts cache.grid_hits on
/// a match.
const OptimizationResult *
findGridResult(const std::vector<BudgetGrid> &Grids, int ClassId,
               const std::vector<double> &Input, double Budget,
               const OptimizeOptions &Opts);

} // namespace opprox

#endif // OPPROX_CORE_BUDGETGRID_H
