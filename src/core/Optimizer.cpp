//===- core/Optimizer.cpp -------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"
#include "core/Sampler.h"
#include <algorithm>
#include <numeric>

using namespace opprox;

PhaseDecision opprox::optimizePhase(const PhaseModels &Models,
                                    const std::vector<double> &Input,
                                    const std::vector<int> &MaxLevels,
                                    double Budget,
                                    const OptimizeOptions &Opts,
                                    size_t &ConfigsEvaluated) {
  PhaseDecision Best;
  Best.Levels.assign(MaxLevels.size(), 0);
  Best.AllocatedBudget = Budget;

  for (const std::vector<int> &Levels : enumerateAllConfigs(MaxLevels)) {
    ++ConfigsEvaluated;
    // The all-exact configuration is the baseline Best already (known
    // speedup 1, QoS 0); never route it through the models.
    if (std::all_of(Levels.begin(), Levels.end(),
                    [](int L) { return L == 0; }))
      continue;
    double Qos = Opts.Conservative
                     ? Models.conservativeQos(Input, Levels, Opts.ConfidenceP)
                     : Models.predictQos(Input, Levels);
    if (Qos > Budget)
      continue;
    double Speedup =
        Opts.Conservative
            ? Models.conservativeSpeedup(Input, Levels, Opts.ConfidenceP)
            : Models.predictSpeedup(Input, Levels);
    if (Speedup > Best.PredictedSpeedup) {
      Best.Levels = Levels;
      Best.PredictedSpeedup = Speedup;
      Best.PredictedQos = Qos;
    }
  }
  return Best;
}

OptimizationResult opprox::optimizeSchedule(const AppModel &Model,
                                            const std::vector<double> &Input,
                                            const std::vector<int> &MaxLevels,
                                            double QosBudget,
                                            const OptimizeOptions &Opts) {
  assert(QosBudget >= 0.0 && "negative QoS budget");
  size_t NumPhases = Model.numPhases();

  OptimizationResult Result;
  Result.Schedule = PhaseSchedule(NumPhases, MaxLevels.size());
  Result.Decisions.resize(NumPhases);

  // Phase ROIs and the initial normalized shares the paper reports.
  std::vector<double> Roi(NumPhases);
  double RoiSum = 0.0;
  for (size_t P = 0; P < NumPhases; ++P) {
    Roi[P] = std::max(Model.phaseModels(Input, P).roi(), 0.0);
    RoiSum += Roi[P];
  }
  Result.NormalizedRoi.resize(NumPhases, 1.0 / static_cast<double>(NumPhases));
  if (RoiSum > 0.0)
    for (size_t P = 0; P < NumPhases; ++P)
      Result.NormalizedRoi[P] = Roi[P] / RoiSum;

  // Visit phases in decreasing ROI; each gets the share of the budget
  // still unspent, proportional to its ROI among the remaining phases.
  // Unused allocation therefore flows to later (lower-ROI) phases.
  std::vector<size_t> Order(NumPhases);
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return Roi[A] > Roi[B]; });

  double RemainingBudget = QosBudget;
  double RemainingRoiSum = RoiSum;
  for (size_t Rank = 0; Rank < Order.size(); ++Rank) {
    size_t Phase = Order[Rank];
    double Share = RemainingRoiSum > 0.0
                       ? Roi[Phase] / RemainingRoiSum
                       : 1.0 / static_cast<double>(NumPhases - Rank);
    double PhaseBudget = RemainingBudget * Share;

    PhaseDecision Decision =
        optimizePhase(Model.phaseModels(Input, Phase), Input, MaxLevels,
                      PhaseBudget, Opts, Result.ConfigsEvaluated);
    Result.Schedule.setPhaseLevels(Phase, Decision.Levels);
    Result.Decisions[Phase] = Decision;

    RemainingBudget = std::max(0.0, RemainingBudget - Decision.PredictedQos);
    RemainingRoiSum -= Roi[Phase];
  }
  return Result;
}
