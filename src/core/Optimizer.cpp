//===- core/Optimizer.cpp -------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// Per-phase search over the level space. Two interchangeable engines:
//
//  - the naive reference: one scalar model evaluation per configuration,
//    in enumeration order -- the semantic ground truth;
//  - the serving path: configurations stream from a ConfigCursor into
//    reused batch buffers, certified-infeasible odometer subtrees are
//    skipped, feasibility (QoS) and scoring (speedup) run as batched
//    matrix kernels, and fixed-size index chunks fan out across a thread
//    pool.
//
// The serving path reproduces the reference bit for bit: batch kernels
// evaluate each row with the exact operation sequence of the scalar
// predicts, pruning discharges only configurations whose certified QoS
// floor already exceeds the budget (which the reference would reject
// anyway), and the chunk reduction replays the reference's
// first-strictly-greater tie-break in enumeration order.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"
#include "core/Sampler.h"
#include "support/Log.h"
#include "support/Simd.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <stdexcept>

using namespace opprox;

namespace {
/// Thrown by the scan engines when a model emits a value outside its
/// clamped output range (NaN, infinity, or out of bounds). Such a value
/// can only come from a defective artifact or an injected fault, and it
/// must not steer the scan: a NaN QoS compares false against the budget
/// and would silently pass feasibility. optimizeSchedule catches this
/// per phase and degrades that phase to the exact configuration.
struct InvalidPrediction : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The predicted-speedup transform clamps into [0.01, 50] (AppModel.cpp);
/// anything else is invalid by construction.
void checkSpeedup(double V) {
  if (!(std::isfinite(V) && V >= 0.01 && V <= 50.0))
    throw InvalidPrediction(
        format("speedup prediction %g outside [0.01, 50]", V));
}

/// The QoS transform clamps into [0, 1000].
void checkQos(double V) {
  if (!(std::isfinite(V) && V >= 0.0 && V <= 1000.0))
    throw InvalidPrediction(
        format("QoS prediction %g outside [0, 1000]", V));
}

/// Iteration estimates are unclamped but must at least be finite to
/// feed the overall models.
void checkIterations(double V) {
  if (!std::isfinite(V))
    throw InvalidPrediction(format("non-finite iteration estimate %g", V));
}
/// Online-side instruments (see docs/OBSERVABILITY.md). Cached once; the
/// optimizer may sit on a per-request serving path.
struct OptimizerMetrics {
  Counter &Calls;
  Counter &ConfigsEvaluated;
  Counter &ConfigsPruned;
  Counter &LeftoverRedistributed;
  Counter &DegradedPhases;
  Gauge &ConfigsPerSec;
  Gauge &SimdTier;
  Gauge &ScanExecutors;
  Histogram &BatchSize;
  Histogram &ExecutorUtilizationPct;
  Histogram &PhaseBudgetPct;
  Histogram &OptimizeMs;

  static OptimizerMetrics &get() {
    static OptimizerMetrics M{
        MetricsRegistry::global().counter("optimize.calls"),
        MetricsRegistry::global().counter("optimize.configs_evaluated"),
        MetricsRegistry::global().counter("optimize.configs_pruned"),
        MetricsRegistry::global().counter("optimize.leftover_redistributed"),
        MetricsRegistry::global().counter("runtime.degraded_phases"),
        MetricsRegistry::global().gauge("optimize.configs_per_sec"),
        MetricsRegistry::global().gauge("optimize.simd_tier"),
        MetricsRegistry::global().gauge("optimize.scan_executors"),
        MetricsRegistry::global().histogram("optimize.batch_size",
                                            {1, 8, 32, 64, 128, 256, 512,
                                             1024}),
        MetricsRegistry::global().histogram(
            "optimize.executor_utilization_pct",
            Histogram::percentBounds()),
        MetricsRegistry::global().histogram("optimize.phase_budget_pct",
                                            Histogram::percentBounds()),
        MetricsRegistry::global().histogram("optimize.ms")};
    return M;
  }
};

/// Best-so-far state of one scan range, reduced across ranges in
/// ascending enumeration order.
struct RangeBest {
  std::vector<int> Levels;
  double Speedup = 1.0; // The all-exact baseline the reference starts at.
  double Qos = 0.0;
  bool Found = false; // Whether any config strictly beat the baseline.
  size_t Pruned = 0;
  size_t Scored = 0;
  double Seconds = 0.0; // Chunk execution time, for utilization metrics.
};

/// Reused buffers for one scan task; thread_local so concurrent chunks
/// never share them and steady-state scans allocate nothing.
struct ScanScratch {
  std::vector<int> BatchLevels;    // BatchSize x numBlocks, row-major.
  std::vector<int> FeasibleLevels; // Rows with QoS within budget.
  std::vector<size_t> FeasibleRows;
  std::vector<double> Iter;         // Iteration estimates, whole batch.
  std::vector<double> FeasibleIter; // Gathered for the feasible rows.
  std::vector<double> Qos;
  std::vector<double> Speedup;
  PredictScratch Predict;
};

/// The reference engine: scalar model calls, one configuration at a
/// time, in enumeration order. Every other engine must match its
/// decisions bitwise.
PhaseDecision naiveScan(const PhaseModels &Models,
                        const std::vector<double> &Input,
                        const std::vector<int> &MaxLevels, double Budget,
                        const OptimizeOptions &Opts, PhaseSearchStats &Stats) {
  PhaseDecision Best;
  Best.Levels.assign(MaxLevels.size(), 0);
  Best.AllocatedBudget = Budget;

  for (ConfigCursor Cursor(MaxLevels); !Cursor.done(); Cursor.next()) {
    const std::vector<int> &Levels = Cursor.levels();
    ++Stats.ConfigsEvaluated;
    // The all-exact configuration is the baseline Best already (known
    // speedup 1, QoS 0); never route it through the models.
    if (Cursor.index() == 0)
      continue;
    ++Stats.ConfigsScored;
    double Qos = Opts.Conservative
                     ? Models.conservativeQos(Input, Levels, Opts.ConfidenceP)
                     : Models.predictQos(Input, Levels);
    checkQos(Qos);
    if (Qos > Budget)
      continue;
    double Speedup =
        Opts.Conservative
            ? Models.conservativeSpeedup(Input, Levels, Opts.ConfidenceP)
            : Models.predictSpeedup(Input, Levels);
    checkSpeedup(Speedup);
    if (Speedup > Best.PredictedSpeedup) {
      Best.Levels = Levels;
      Best.PredictedSpeedup = Speedup;
      Best.PredictedQos = Qos;
    }
  }
  return Best;
}

/// Scans enumeration indices [Lo, Hi): streams configurations from a
/// cursor, skips certified-infeasible subtrees, and pushes the rest
/// through the batched kernels. Within the range the first strictly
/// better configuration wins, matching the reference's scan order.
void scanRange(const PhaseModels &Models, const PhaseEvalPlan &Plan,
               double Budget, const OptimizeOptions &Opts, size_t Lo,
               size_t Hi, RangeBest &R, ScanScratch &S,
               OptimizerMetrics &Metrics) {
  size_t NumBlocks = Plan.MaxLevels.size();
  size_t BatchSize = std::max<size_t>(Opts.BatchSize, 1);
  ConfigCursor Cursor(Plan.MaxLevels);
  Cursor.seek(Lo);

  while (!Cursor.done() && Cursor.index() < Hi) {
    // Assemble the next batch, pruning as we stream.
    S.BatchLevels.clear();
    size_t Rows = 0;
    while (!Cursor.done() && Cursor.index() < Hi && Rows < BatchSize) {
      const std::vector<int> &Levels = Cursor.levels();
      if (Cursor.index() == 0) { // All-exact baseline; already Best.
        Cursor.next();
        continue;
      }
      if (Opts.Prune) {
        // Highest digit whose (block, level) QoS floor busts the budget
        // discharges the largest subtree.
        size_t SkipDigit = NumBlocks;
        for (size_t B = NumBlocks; B-- > 0;) {
          if (Plan.QosFloor[B][static_cast<size_t>(Levels[B])] > Budget) {
            SkipDigit = B;
            break;
          }
        }
        if (SkipDigit != NumBlocks) {
          size_t Before = Cursor.index();
          Cursor.skipSubtree(SkipDigit);
          size_t After = Cursor.done() ? Cursor.spaceSize() : Cursor.index();
          R.Pruned += std::min(After, Hi) - Before;
          continue;
        }
      }
      S.BatchLevels.insert(S.BatchLevels.end(), Levels.begin(), Levels.end());
      ++Rows;
      Cursor.next();
    }
    if (Rows == 0)
      continue;
    R.Scored += Rows;
    Metrics.BatchSize.record(static_cast<double>(Rows));

    // Both overall models consume the same per-row iteration estimate;
    // compute it once per batch and reuse it, which drops no bits (each
    // row's estimate is independent of batch composition).
    Models.predictIterationsBatch(Plan, S.BatchLevels.data(), Rows, S.Iter,
                                  S.Predict);
    for (size_t I = 0; I < Rows; ++I)
      checkIterations(S.Iter[I]);
    // Feasibility first; the speedup model runs only on rows within
    // budget, exactly like the reference's early continue.
    Models.predictQosBatch(Plan, S.BatchLevels.data(), S.Iter.data(), Rows,
                           S.Qos, S.Predict);
    for (size_t I = 0; I < Rows; ++I)
      checkQos(S.Qos[I]);
    S.FeasibleRows.clear();
    S.FeasibleLevels.clear();
    S.FeasibleIter.clear();
    for (size_t I = 0; I < Rows; ++I) {
      if (S.Qos[I] <= Budget) {
        S.FeasibleRows.push_back(I);
        const int *Row = S.BatchLevels.data() + I * NumBlocks;
        S.FeasibleLevels.insert(S.FeasibleLevels.end(), Row, Row + NumBlocks);
        S.FeasibleIter.push_back(S.Iter[I]);
      }
    }
    if (S.FeasibleRows.empty())
      continue;
    Models.predictSpeedupBatch(Plan, S.FeasibleLevels.data(),
                               S.FeasibleIter.data(), S.FeasibleRows.size(),
                               S.Speedup, S.Predict);
    for (size_t J = 0; J < S.FeasibleRows.size(); ++J)
      checkSpeedup(S.Speedup[J]);
    for (size_t J = 0; J < S.FeasibleRows.size(); ++J) {
      if (S.Speedup[J] > R.Speedup) {
        R.Found = true;
        R.Speedup = S.Speedup[J];
        R.Qos = S.Qos[S.FeasibleRows[J]];
        const int *Row = S.FeasibleLevels.data() + J * NumBlocks;
        R.Levels.assign(Row, Row + NumBlocks);
      }
    }
  }
}

/// Executors the scan will engage: the pool's workers plus the
/// participating caller when one is supplied, otherwise the NumThreads
/// request (0 = auto via OPPROX_THREADS / hardware concurrency).
size_t resolveScanExecutors(const OptimizeOptions &Opts) {
  if (Opts.Pool != nullptr)
    return Opts.Pool->numWorkers() + 1;
  return std::max<size_t>(
      1, Opts.NumThreads ? Opts.NumThreads : ThreadPool::defaultWorkerCount());
}

/// Chunk geometry for one phase scan. An explicit ChunkSize pins it;
/// 0 (auto) sizes chunks off the space and the executor count: about
/// four chunks per executor -- enough slack for dynamic balancing when
/// pruning makes chunk costs uneven -- rounded up to whole batches, and
/// one single chunk when the scan is serial anyway. Decisions and stats
/// are chunking-invariant (see batchedScan), so this is purely a
/// throughput knob.
size_t resolveChunkSize(size_t Total, size_t Executors,
                        const OptimizeOptions &Opts) {
  if (Opts.ChunkSize != 0)
    return Opts.ChunkSize;
  if (Executors <= 1 || Total == 0)
    return std::max<size_t>(Total, 1);
  size_t TargetChunks = Executors * 4;
  size_t Chunk = (Total + TargetChunks - 1) / TargetChunks;
  Chunk = std::max(Chunk, Opts.BatchSize);
  return (Chunk + Opts.BatchSize - 1) / Opts.BatchSize * Opts.BatchSize;
}

/// The serving engine: batched, pruned, and (for > 1 executor) chunked
/// across the pool.
PhaseDecision batchedScan(const PhaseModels &Models,
                          const std::vector<double> &Input,
                          const std::vector<int> &MaxLevels, double Budget,
                          const OptimizeOptions &Opts,
                          PhaseSearchStats &Stats) {
  // A zero batch would turn the scan loop into silent no-progress
  // spinning; it is a caller bug on par with a negative budget.
  if (Opts.BatchSize == 0)
    reportFatalError("OptimizeOptions::BatchSize must be positive");
  OptimizerMetrics &Metrics = OptimizerMetrics::get();
  PhaseEvalPlan Plan =
      Models.makeEvalPlan(Input, MaxLevels, Opts.Conservative,
                          Opts.ConfidenceP);
  size_t Total = ConfigCursor(MaxLevels).spaceSize();
  Stats.ConfigsEvaluated += Total;

  size_t Executors = resolveScanExecutors(Opts);
  size_t ChunkSize = resolveChunkSize(Total, Executors, Opts);
  size_t NumChunks = (Total + ChunkSize - 1) / ChunkSize;
  std::vector<RangeBest> Chunks(NumChunks);
  Metrics.ScanExecutors.set(static_cast<double>(Executors));

  // Chunk boundaries depend only on the resolved geometry, each chunk
  // writes its own slot, and the reduction below runs in ascending
  // order -- so the result is identical for every worker count,
  // including zero. Worker count *may* shift the auto boundaries, but
  // that too is decision- and stats-invariant: the reduction replays
  // the serial first-best-wins order, and a pruned subtree clipped at a
  // boundary is re-pruned from the next chunk's first configuration, so
  // the per-config pruned/scored partition is unchanged.
  using Clock = std::chrono::steady_clock;
  auto RunChunk = [&](size_t C) {
    thread_local ScanScratch Scratch;
    Clock::time_point Start = Clock::now();
    scanRange(Models, Plan, Budget, Opts, C * ChunkSize,
              std::min((C + 1) * ChunkSize, Total), Chunks[C], Scratch,
              Metrics);
    Chunks[C].Seconds =
        std::chrono::duration<double>(Clock::now() - Start).count();
  };
  Clock::time_point ScanStart = Clock::now();
  if (Opts.Pool != nullptr) {
    Opts.Pool->parallelFor(NumChunks, RunChunk);
  } else if (Executors == 1 || NumChunks <= 1) {
    for (size_t C = 0; C < NumChunks; ++C)
      RunChunk(C);
  } else {
    ThreadPool Pool(Executors - 1);
    Pool.parallelFor(NumChunks, RunChunk);
  }
  double ScanSeconds =
      std::chrono::duration<double>(Clock::now() - ScanStart).count();

  PhaseDecision Best;
  Best.Levels.assign(MaxLevels.size(), 0);
  Best.AllocatedBudget = Budget;
  double BusySeconds = 0.0;
  for (const RangeBest &R : Chunks) {
    Stats.ConfigsPruned += R.Pruned;
    Stats.ConfigsScored += R.Scored;
    BusySeconds += R.Seconds;
    // Strict > replays the reference's earliest-wins tie-break: a later
    // chunk only displaces an earlier equal-speedup configuration if the
    // sequential scan would have, i.e. never.
    if (R.Found && R.Speedup > Best.PredictedSpeedup) {
      Best.Levels = R.Levels;
      Best.PredictedSpeedup = R.Speedup;
      Best.PredictedQos = R.Qos;
    }
  }
  // How much of the executors' combined capacity the chunks filled:
  // 100% means every executor was busy for the whole scan wall time.
  if (Executors > 1 && NumChunks > 1 && ScanSeconds > 0.0)
    Metrics.ExecutorUtilizationPct.record(
        std::min(100.0, BusySeconds /
                            (static_cast<double>(Executors) * ScanSeconds) *
                            100.0));
  return Best;
}
} // namespace

PhaseDecision opprox::optimizePhase(const PhaseModels &Models,
                                    const std::vector<double> &Input,
                                    const std::vector<int> &MaxLevels,
                                    double Budget,
                                    const OptimizeOptions &Opts,
                                    PhaseSearchStats &Stats) {
  if (Opts.UseNaiveScan)
    return naiveScan(Models, Input, MaxLevels, Budget, Opts, Stats);
  return batchedScan(Models, Input, MaxLevels, Budget, Opts, Stats);
}

PhaseDecision opprox::optimizePhase(const PhaseModels &Models,
                                    const std::vector<double> &Input,
                                    const std::vector<int> &MaxLevels,
                                    double Budget,
                                    const OptimizeOptions &Opts,
                                    size_t &ConfigsEvaluated) {
  PhaseSearchStats Stats;
  PhaseDecision Decision =
      optimizePhase(Models, Input, MaxLevels, Budget, Opts, Stats);
  ConfigsEvaluated += Stats.ConfigsEvaluated;
  return Decision;
}

/// Shared Algorithm 2 engine over phases [FirstPhase, numPhases).
/// optimizeSchedule calls with FirstPhase == 0; every statement below is
/// written so that case executes the exact operation sequence the
/// full-schedule solver always ran (the bit-identity contract).
static OptimizationResult
optimizeScheduleImpl(const AppModel &Model, const std::vector<double> &Input,
                     const std::vector<int> &MaxLevels, double QosBudget,
                     size_t FirstPhase, const OptimizeOptions &Opts) {
  // A negative (or NaN) budget is a caller bug that would silently yield
  // the all-exact schedule in release builds; fail loudly everywhere.
  if (!(QosBudget >= 0.0))
    reportFatalError(format("optimizeSchedule requires a non-negative QoS "
                            "budget, got %g",
                            QosBudget));
  size_t NumPhases = Model.numPhases();
  if (FirstPhase != 0 && FirstPhase >= NumPhases)
    reportFatalError(format("optimizeScheduleTail first phase %zu is out of "
                            "range for a %zu-phase model",
                            FirstPhase, NumPhases));
  size_t TailCount = NumPhases - FirstPhase;
  OptimizerMetrics &Metrics = OptimizerMetrics::get();
  Metrics.Calls.add();
  // Which kernel tier the batch predictions dispatch to (0 = generic,
  // 1 = avx2, 2 = neon); decision-irrelevant by the bit-identity
  // contract, exported so operators can confirm what a host runs.
  Metrics.SimdTier.set(static_cast<double>(simd::activeTier()));
  TraceSpan ScheduleSpan("optimize.schedule", "optimize");
  ScheduleSpan.arg("phases", static_cast<double>(NumPhases));
  ScheduleSpan.arg("qos_budget", QosBudget);
  if (FirstPhase > 0)
    ScheduleSpan.arg("first_phase", static_cast<double>(FirstPhase));

  OptimizationResult Result;
  Result.Schedule = PhaseSchedule(NumPhases, MaxLevels.size());
  Result.Decisions.resize(NumPhases);

  // Phase ROIs and the normalized shares the paper reports; already-run
  // phases keep zero ROI and stay at the exact (all-zero) levels the
  // schedule was constructed with.
  std::vector<double> Roi(NumPhases, 0.0);
  double RoiSum = 0.0;
  for (size_t P = FirstPhase; P < NumPhases; ++P) {
    Roi[P] = std::max(Model.phaseModels(Input, P).roi(), 0.0);
    RoiSum += Roi[P];
  }
  Result.NormalizedRoi.resize(NumPhases, 0.0);
  for (size_t P = FirstPhase; P < NumPhases; ++P)
    Result.NormalizedRoi[P] = RoiSum > 0.0
                                  ? Roi[P] / RoiSum
                                  : 1.0 / static_cast<double>(TailCount);

  // Visit phases in decreasing ROI; each gets the share of the budget
  // still unspent, proportional to its ROI among the remaining phases.
  // Unused allocation therefore flows to later (lower-ROI) phases.
  std::vector<size_t> Order(TailCount);
  std::iota(Order.begin(), Order.end(), FirstPhase);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return Roi[A] > Roi[B]; });

  double RemainingBudget = QosBudget;
  double RemainingRoiSum = RoiSum;
  PhaseSearchStats Stats;
  for (size_t Rank = 0; Rank < Order.size(); ++Rank) {
    size_t Phase = Order[Rank];
    double Share = RemainingRoiSum > 0.0
                       ? Roi[Phase] / RemainingRoiSum
                       : 1.0 / static_cast<double>(Order.size() - Rank);
    double PhaseBudget = RemainingBudget * Share;
    // The Eq. 1 allocation decision, as a share of the overall budget.
    if (QosBudget > 0.0)
      Metrics.PhaseBudgetPct.record(PhaseBudget / QosBudget * 100.0);

    TraceSpan PhaseSpan("optimize.phase", "optimize");
    PhaseSpan.arg("phase", static_cast<double>(Phase));
    PhaseSpan.arg("budget", PhaseBudget);
    PhaseDecision Decision;
    try {
      Decision = optimizePhase(Model.phaseModels(Input, Phase), Input,
                               MaxLevels, PhaseBudget, Opts, Stats);
    } catch (const std::exception &Ex) {
      // Invalid predictions (InvalidPrediction) or dying scan tasks
      // (e.g. FaultInjectedError through parallelFor) must not take the
      // serving process down: this phase falls back to the exact
      // configuration, which needs no model and spends no budget.
      Decision = PhaseDecision();
      Decision.Levels.assign(MaxLevels.size(), 0);
      Decision.AllocatedBudget = PhaseBudget;
      Result.DegradedPhases.push_back(Phase);
      Metrics.DegradedPhases.add();
      TraceRecorder::global().instant("optimize.phase_degraded", "optimize");
      logInfo("phase %zu degraded to the exact configuration: %s", Phase,
              Ex.what());
    }
    Result.Schedule.setPhaseLevels(Phase, Decision.Levels);
    Result.Decisions[Phase] = Decision;

    // Leftover: the phase spent less than its allocation, so the
    // difference flows to the remaining (lower-ROI) phases.
    if (Rank + 1 < Order.size() && Decision.PredictedQos < PhaseBudget) {
      Metrics.LeftoverRedistributed.add();
      TraceRecorder::global().instant("optimize.leftover_redistributed",
                                      "optimize");
    }
    RemainingBudget = std::max(0.0, RemainingBudget - Decision.PredictedQos);
    RemainingRoiSum -= Roi[Phase];
  }
  // Phases were visited in ROI order; report degradations in phase
  // order so the result is stable for callers that serialize it.
  std::sort(Result.DegradedPhases.begin(), Result.DegradedPhases.end());
  Result.ConfigsEvaluated = Stats.ConfigsEvaluated;
  Result.ConfigsPruned = Stats.ConfigsPruned;
  Result.ConfigsScored = Stats.ConfigsScored;
  Metrics.ConfigsEvaluated.add(Stats.ConfigsEvaluated);
  Metrics.ConfigsPruned.add(Stats.ConfigsPruned);
  double Elapsed = ScheduleSpan.seconds();
  if (Elapsed > 0.0)
    Metrics.ConfigsPerSec.set(static_cast<double>(Stats.ConfigsEvaluated) /
                              Elapsed);
  Metrics.OptimizeMs.record(Elapsed * 1e3);
  return Result;
}

OptimizationResult opprox::optimizeSchedule(const AppModel &Model,
                                            const std::vector<double> &Input,
                                            const std::vector<int> &MaxLevels,
                                            double QosBudget,
                                            const OptimizeOptions &Opts) {
  return optimizeScheduleImpl(Model, Input, MaxLevels, QosBudget,
                              /*FirstPhase=*/0, Opts);
}

OptimizationResult opprox::optimizeScheduleTail(
    const AppModel &Model, const std::vector<double> &Input,
    const std::vector<int> &MaxLevels, double QosBudget, size_t FirstPhase,
    const OptimizeOptions &Opts) {
  return optimizeScheduleImpl(Model, Input, MaxLevels, QosBudget, FirstPhase,
                              Opts);
}
