//===- core/Optimizer.cpp -------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Optimizer.h"
#include "core/Sampler.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <numeric>

using namespace opprox;

namespace {
/// Online-side instruments (see docs/OBSERVABILITY.md). Cached once; the
/// optimizer may sit on a per-request serving path.
struct OptimizerMetrics {
  Counter &Calls;
  Counter &ConfigsEvaluated;
  Counter &LeftoverRedistributed;
  Histogram &PhaseBudgetPct;
  Histogram &OptimizeMs;

  static OptimizerMetrics &get() {
    static OptimizerMetrics M{
        MetricsRegistry::global().counter("optimize.calls"),
        MetricsRegistry::global().counter("optimize.configs_evaluated"),
        MetricsRegistry::global().counter("optimize.leftover_redistributed"),
        MetricsRegistry::global().histogram("optimize.phase_budget_pct",
                                            Histogram::percentBounds()),
        MetricsRegistry::global().histogram("optimize.ms")};
    return M;
  }
};
} // namespace

PhaseDecision opprox::optimizePhase(const PhaseModels &Models,
                                    const std::vector<double> &Input,
                                    const std::vector<int> &MaxLevels,
                                    double Budget,
                                    const OptimizeOptions &Opts,
                                    size_t &ConfigsEvaluated) {
  PhaseDecision Best;
  Best.Levels.assign(MaxLevels.size(), 0);
  Best.AllocatedBudget = Budget;

  for (const std::vector<int> &Levels : enumerateAllConfigs(MaxLevels)) {
    ++ConfigsEvaluated;
    // The all-exact configuration is the baseline Best already (known
    // speedup 1, QoS 0); never route it through the models.
    if (std::all_of(Levels.begin(), Levels.end(),
                    [](int L) { return L == 0; }))
      continue;
    double Qos = Opts.Conservative
                     ? Models.conservativeQos(Input, Levels, Opts.ConfidenceP)
                     : Models.predictQos(Input, Levels);
    if (Qos > Budget)
      continue;
    double Speedup =
        Opts.Conservative
            ? Models.conservativeSpeedup(Input, Levels, Opts.ConfidenceP)
            : Models.predictSpeedup(Input, Levels);
    if (Speedup > Best.PredictedSpeedup) {
      Best.Levels = Levels;
      Best.PredictedSpeedup = Speedup;
      Best.PredictedQos = Qos;
    }
  }
  return Best;
}

OptimizationResult opprox::optimizeSchedule(const AppModel &Model,
                                            const std::vector<double> &Input,
                                            const std::vector<int> &MaxLevels,
                                            double QosBudget,
                                            const OptimizeOptions &Opts) {
  assert(QosBudget >= 0.0 && "negative QoS budget");
  size_t NumPhases = Model.numPhases();
  OptimizerMetrics &Metrics = OptimizerMetrics::get();
  Metrics.Calls.add();
  TraceSpan ScheduleSpan("optimize.schedule", "optimize");
  ScheduleSpan.arg("phases", static_cast<double>(NumPhases));
  ScheduleSpan.arg("qos_budget", QosBudget);

  OptimizationResult Result;
  Result.Schedule = PhaseSchedule(NumPhases, MaxLevels.size());
  Result.Decisions.resize(NumPhases);

  // Phase ROIs and the initial normalized shares the paper reports.
  std::vector<double> Roi(NumPhases);
  double RoiSum = 0.0;
  for (size_t P = 0; P < NumPhases; ++P) {
    Roi[P] = std::max(Model.phaseModels(Input, P).roi(), 0.0);
    RoiSum += Roi[P];
  }
  Result.NormalizedRoi.resize(NumPhases, 1.0 / static_cast<double>(NumPhases));
  if (RoiSum > 0.0)
    for (size_t P = 0; P < NumPhases; ++P)
      Result.NormalizedRoi[P] = Roi[P] / RoiSum;

  // Visit phases in decreasing ROI; each gets the share of the budget
  // still unspent, proportional to its ROI among the remaining phases.
  // Unused allocation therefore flows to later (lower-ROI) phases.
  std::vector<size_t> Order(NumPhases);
  std::iota(Order.begin(), Order.end(), 0);
  std::stable_sort(Order.begin(), Order.end(),
                   [&](size_t A, size_t B) { return Roi[A] > Roi[B]; });

  double RemainingBudget = QosBudget;
  double RemainingRoiSum = RoiSum;
  size_t ConfigsBefore = Result.ConfigsEvaluated;
  for (size_t Rank = 0; Rank < Order.size(); ++Rank) {
    size_t Phase = Order[Rank];
    double Share = RemainingRoiSum > 0.0
                       ? Roi[Phase] / RemainingRoiSum
                       : 1.0 / static_cast<double>(NumPhases - Rank);
    double PhaseBudget = RemainingBudget * Share;
    // The Eq. 1 allocation decision, as a share of the overall budget.
    if (QosBudget > 0.0)
      Metrics.PhaseBudgetPct.record(PhaseBudget / QosBudget * 100.0);

    TraceSpan PhaseSpan("optimize.phase", "optimize");
    PhaseSpan.arg("phase", static_cast<double>(Phase));
    PhaseSpan.arg("budget", PhaseBudget);
    PhaseDecision Decision =
        optimizePhase(Model.phaseModels(Input, Phase), Input, MaxLevels,
                      PhaseBudget, Opts, Result.ConfigsEvaluated);
    Result.Schedule.setPhaseLevels(Phase, Decision.Levels);
    Result.Decisions[Phase] = Decision;

    // Leftover: the phase spent less than its allocation, so the
    // difference flows to the remaining (lower-ROI) phases.
    if (Rank + 1 < Order.size() && Decision.PredictedQos < PhaseBudget) {
      Metrics.LeftoverRedistributed.add();
      TraceRecorder::global().instant("optimize.leftover_redistributed",
                                      "optimize");
    }
    RemainingBudget = std::max(0.0, RemainingBudget - Decision.PredictedQos);
    RemainingRoiSum -= Roi[Phase];
  }
  Metrics.ConfigsEvaluated.add(Result.ConfigsEvaluated - ConfigsBefore);
  Metrics.OptimizeMs.record(ScheduleSpan.seconds() * 1e3);
  return Result;
}
