//===- core/Opprox.cpp ----------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Opprox.h"
#include "core/OfflineTrainer.h"

using namespace opprox;

Opprox Opprox::train(const ApproxApp &App, const OpproxTrainOptions &Opts) {
  OfflineTrainer::Result R = OfflineTrainer::train(App, Opts);
  Opprox Instance;
  Instance.App = &App;
  Instance.Golden = std::move(R.Golden);
  Instance.Data = std::move(R.Data);
  Instance.Runtime = OpproxRuntime::fromArtifact(std::move(R.Artifact));
  return Instance;
}

Expected<Opprox> Opprox::trainCached(const ApproxApp &App,
                                     const OpproxTrainOptions &Opts,
                                     const std::string &Path) {
  if (Expected<OpproxArtifact> Cached = OpproxArtifact::load(Path)) {
    if (!Cached->validateFor(App)) {
      Opprox Instance;
      Instance.App = &App;
      Instance.Golden = std::make_unique<GoldenCache>(App);
      Instance.Runtime = OpproxRuntime::fromArtifact(std::move(*Cached));
      return Instance;
    }
    // Trained for a different application or level ranges: fall through
    // and retrain rather than serve a wrong model.
  }
  Opprox Instance = train(App, Opts);
  if (std::optional<Error> E = Instance.artifact().save(Path))
    return std::move(*E);
  return Instance;
}

PhaseSchedule Opprox::optimize(const std::vector<double> &Input,
                               double QosBudget,
                               const OptimizeOptions &Opts) const {
  return Runtime.optimize(Input, QosBudget, Opts);
}

OptimizationResult
Opprox::optimizeDetailed(const std::vector<double> &Input, double QosBudget,
                         const OptimizeOptions &Opts) const {
  return Runtime.optimizeDetailed(Input, QosBudget, Opts);
}

PhaseSchedule Opprox::optimizeValidated(const std::vector<double> &Input,
                                        double QosBudget,
                                        const OptimizeOptions &Opts) const {
  assert(App && "optimize on an untrained Opprox");
  const AppModel &Model = Runtime.model();
  PhaseSchedule Schedule = optimize(Input, QosBudget, Opts);

  // Backoff bound: in the worst case every (phase, block) level steps
  // down to zero one notch at a time.
  size_t MaxAttempts = 0;
  for (size_t P = 0; P < Schedule.numPhases(); ++P)
    for (size_t B = 0; B < Schedule.numBlocks(); ++B)
      MaxAttempts += static_cast<size_t>(Schedule.level(P, B));

  for (size_t Attempt = 0; Attempt <= MaxAttempts; ++Attempt) {
    if (Schedule.isExact())
      break;
    EvalOutcome Truth = evaluateSchedule(*App, *Golden, Input, Schedule);
    if (Truth.QosDegradation <= QosBudget && Truth.Speedup >= 1.0)
      break;
    // De-escalate the approximated phase with the lowest ROI by one
    // level notch per block: least predicted benefit per unit of error,
    // and in practice the error-dominant early phase.
    size_t Worst = Model.numPhases();
    double WorstRoi = 0.0;
    for (size_t P = 0; P < Model.numPhases(); ++P) {
      bool Approximated = false;
      for (size_t B = 0; B < Schedule.numBlocks(); ++B)
        Approximated |= Schedule.level(P, B) != 0;
      if (!Approximated)
        continue;
      double Roi = Model.phaseModels(Input, P).roi();
      if (Worst == Model.numPhases() || Roi < WorstRoi) {
        Worst = P;
        WorstRoi = Roi;
      }
    }
    if (Worst == Model.numPhases())
      break;
    for (size_t B = 0; B < Schedule.numBlocks(); ++B)
      Schedule.setLevel(Worst, B,
                        std::max(0, Schedule.level(Worst, B) - 1));
  }
  return Schedule;
}
