//===- core/Opprox.cpp ----------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Opprox.h"

using namespace opprox;

Opprox Opprox::train(const ApproxApp &App, const OpproxTrainOptions &Opts) {
  Opprox Instance;
  Instance.App = &App;
  Instance.Golden = std::make_unique<GoldenCache>(App);

  Profiler Prof(App, *Instance.Golden);

  std::vector<std::vector<double>> Inputs = Opts.TrainingInputs.empty()
                                                ? App.trainingInputs()
                                                : Opts.TrainingInputs;
  assert(!Inputs.empty() && "no training inputs");

  // Phase count: fixed or detected via Algorithm 1 on the first
  // representative input.
  size_t NumPhases = Opts.NumPhases;
  if (NumPhases == 0)
    NumPhases = detectPhaseCount(Prof, Inputs.front(), Opts.PhaseDetection);

  ProfileOptions ProfileOpts = Opts.Profiling;
  ProfileOpts.NumPhases = NumPhases;
  Instance.Data = Prof.collect(Inputs, ProfileOpts);
  Instance.TrainingRuns = Prof.runsPerformed();

  Instance.Model = ModelBuilder::build(Instance.Data, NumPhases,
                                       App.numBlocks(), Opts.ModelBuild);
  return Instance;
}

PhaseSchedule Opprox::optimize(const std::vector<double> &Input,
                               double QosBudget,
                               const OptimizeOptions &Opts) const {
  return optimizeDetailed(Input, QosBudget, Opts).Schedule;
}

OptimizationResult
Opprox::optimizeDetailed(const std::vector<double> &Input, double QosBudget,
                         const OptimizeOptions &Opts) const {
  assert(App && "optimize on an untrained Opprox");
  return optimizeSchedule(Model, Input, App->maxLevels(), QosBudget, Opts);
}

PhaseSchedule Opprox::optimizeValidated(const std::vector<double> &Input,
                                        double QosBudget,
                                        const OptimizeOptions &Opts) const {
  assert(App && "optimize on an untrained Opprox");
  PhaseSchedule Schedule = optimize(Input, QosBudget, Opts);

  // Backoff bound: in the worst case every (phase, block) level steps
  // down to zero one notch at a time.
  size_t MaxAttempts = 0;
  for (size_t P = 0; P < Schedule.numPhases(); ++P)
    for (size_t B = 0; B < Schedule.numBlocks(); ++B)
      MaxAttempts += static_cast<size_t>(Schedule.level(P, B));

  for (size_t Attempt = 0; Attempt <= MaxAttempts; ++Attempt) {
    if (Schedule.isExact())
      break;
    EvalOutcome Truth = evaluateSchedule(*App, *Golden, Input, Schedule);
    if (Truth.QosDegradation <= QosBudget && Truth.Speedup >= 1.0)
      break;
    // De-escalate the approximated phase with the lowest ROI by one
    // level notch per block: least predicted benefit per unit of error,
    // and in practice the error-dominant early phase.
    size_t Worst = Model.numPhases();
    double WorstRoi = 0.0;
    for (size_t P = 0; P < Model.numPhases(); ++P) {
      bool Approximated = false;
      for (size_t B = 0; B < Schedule.numBlocks(); ++B)
        Approximated |= Schedule.level(P, B) != 0;
      if (!Approximated)
        continue;
      double Roi = Model.phaseModels(Input, P).roi();
      if (Worst == Model.numPhases() || Roi < WorstRoi) {
        Worst = P;
        WorstRoi = Roi;
      }
    }
    if (Worst == Model.numPhases())
      break;
    for (size_t B = 0; B < Schedule.numBlocks(); ++B)
      Schedule.setLevel(Worst, B,
                        std::max(0, Schedule.level(Worst, B) - 1));
  }
  return Schedule;
}
