//===- core/Evaluator.cpp -------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Evaluator.h"
#include "approx/WorkCounter.h"

using namespace opprox;

EvalOutcome opprox::evaluateSchedule(const ApproxApp &App, GoldenCache &Golden,
                                     const std::vector<double> &Input,
                                     const PhaseSchedule &Schedule) {
  const RunResult &Exact = Golden.exactRun(Input);
  RunResult Approx = App.run(Input, Schedule, Exact.OuterIterations);

  EvalOutcome Out;
  Out.Speedup = speedupOf(Exact.WorkUnits, Approx.WorkUnits);
  Out.QosDegradation = App.qosDegradation(Exact, Approx);
  Out.OuterIterations = Approx.OuterIterations;
  if (App.usesPsnr())
    Out.Psnr = App.psnrValue(Exact, Approx);
  return Out;
}
