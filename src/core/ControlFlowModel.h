//===- core/ControlFlowModel.h - Input -> control-flow class ---*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decision-tree prediction of the control-flow class an input will take
/// (paper Sec. 3.4): OPPROX builds one set of speedup/QoS models per
/// distinct control flow, and at optimization time uses this classifier
/// to pick the right set for a production input.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_CONTROLFLOWMODEL_H
#define OPPROX_CORE_CONTROLFLOWMODEL_H

#include "ml/DecisionTree.h"
#include <vector>

namespace opprox {

/// Wraps a DecisionTree specialized to (input parameters -> class id).
class ControlFlowModel {
public:
  ControlFlowModel() = default;

  /// Trains on (input, class) pairs; one pair per training input is
  /// enough when inputs repeat per class.
  static ControlFlowModel train(const std::vector<std::vector<double>> &Inputs,
                                const std::vector<int> &Classes);

  /// Predicted control-flow class for \p Input.
  int predictClass(const std::vector<double> &Input) const;

  /// Training accuracy, as a sanity check.
  double accuracy(const std::vector<std::vector<double>> &Inputs,
                  const std::vector<int> &Classes) const {
    return Tree.accuracy(Inputs, Classes);
  }

  size_t numNodes() const { return Tree.numNodes(); }

  /// Artifact serialization: delegates to the underlying tree.
  Json toJson() const;
  static Expected<ControlFlowModel> fromJson(const Json &Value);

private:
  DecisionTree Tree;
};

} // namespace opprox

#endif // OPPROX_CORE_CONTROLFLOWMODEL_H
