//===- core/BudgetGrid.cpp ------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/BudgetGrid.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include <cstring>

using namespace opprox;

/// Grid applicability is bitwise, mirroring the schedule cache's
/// raw-bits key: value equality (0.0 == -0.0) would let a point apply
/// to a request whose compute path sees different input bits.
static bool bitsEqual(double A, double B) {
  return std::memcmp(&A, &B, sizeof(double)) == 0;
}

static bool bitsEqual(const std::vector<double> &A,
                      const std::vector<double> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (!bitsEqual(A[I], B[I]))
      return false;
  return true;
}

//===----------------------------------------------------------------------===//
// OptimizationResult serialization
//===----------------------------------------------------------------------===//

// The full struct round-trips (doubles bit-exactly via the Json layer's
// %.17g contract) so a grid hit is indistinguishable from the solve that
// produced the point -- including the search-effort counters.

static Json resultToJson(const OptimizationResult &R) {
  Json Out = Json::object();
  Out.set("schedule", R.Schedule.toJson());
  Json Decisions = Json::array();
  for (const PhaseDecision &D : R.Decisions) {
    Json Decision = Json::object();
    Decision.set("levels", Json::numberArray(D.Levels));
    Decision.set("predicted_speedup", D.PredictedSpeedup);
    Decision.set("predicted_qos", D.PredictedQos);
    Decision.set("allocated_budget", D.AllocatedBudget);
    Decisions.push(std::move(Decision));
  }
  Out.set("decisions", std::move(Decisions));
  Out.set("normalized_roi", Json::numberArray(R.NormalizedRoi));
  Out.set("degraded_phases", Json::numberArray(R.DegradedPhases));
  Out.set("configs_evaluated", R.ConfigsEvaluated);
  Out.set("configs_pruned", R.ConfigsPruned);
  Out.set("configs_scored", R.ConfigsScored);
  return Out;
}

static Expected<OptimizationResult> resultFromJson(const Json &Value) {
  if (!Value.isObject())
    return Error("grid result is not an object");
  Expected<const Json *> ScheduleJson = getObject(Value, "schedule");
  if (!ScheduleJson)
    return ScheduleJson.error();
  Expected<PhaseSchedule> Schedule = PhaseSchedule::fromJson(**ScheduleJson);
  if (!Schedule)
    return Schedule.error();
  Expected<const Json *> Decisions = getArray(Value, "decisions");
  if (!Decisions)
    return Decisions.error();
  Expected<std::vector<double>> Roi = getNumberVector(Value, "normalized_roi");
  if (!Roi)
    return Roi.error();
  Expected<std::vector<size_t>> Degraded =
      getSizeVector(Value, "degraded_phases");
  if (!Degraded)
    return Degraded.error();
  Expected<size_t> Evaluated = getSize(Value, "configs_evaluated");
  if (!Evaluated)
    return Evaluated.error();
  Expected<size_t> Pruned = getSize(Value, "configs_pruned");
  if (!Pruned)
    return Pruned.error();
  Expected<size_t> Scored = getSize(Value, "configs_scored");
  if (!Scored)
    return Scored.error();

  OptimizationResult R;
  R.Schedule = std::move(*Schedule);
  for (size_t I = 0; I < (*Decisions)->size(); ++I) {
    const Json &Decision = (*Decisions)->at(I);
    if (!Decision.isObject())
      return Error(format("grid decision %zu is not an object", I));
    Expected<std::vector<int>> Levels = getIntVector(Decision, "levels");
    if (!Levels)
      return Levels.error();
    Expected<double> Speedup = getNumber(Decision, "predicted_speedup");
    if (!Speedup)
      return Speedup.error();
    Expected<double> Qos = getNumber(Decision, "predicted_qos");
    if (!Qos)
      return Qos.error();
    Expected<double> Allocated = getNumber(Decision, "allocated_budget");
    if (!Allocated)
      return Allocated.error();
    PhaseDecision D;
    D.Levels = std::move(*Levels);
    D.PredictedSpeedup = *Speedup;
    D.PredictedQos = *Qos;
    D.AllocatedBudget = *Allocated;
    R.Decisions.push_back(std::move(D));
  }
  R.NormalizedRoi = std::move(*Roi);
  R.DegradedPhases = std::move(*Degraded);
  R.ConfigsEvaluated = *Evaluated;
  R.ConfigsPruned = *Pruned;
  R.ConfigsScored = *Scored;
  return R;
}

//===----------------------------------------------------------------------===//
// BudgetGrid
//===----------------------------------------------------------------------===//

Json BudgetGrid::toJson() const {
  Json Out = Json::object();
  Out.set("class_id", static_cast<long>(ClassId));
  Out.set("input", Json::numberArray(Input));
  Out.set("confidence_p", ConfidenceP);
  Out.set("conservative", Conservative);
  Json PointsJson = Json::array();
  for (const BudgetGridPoint &P : Points) {
    Json Point = Json::object();
    Point.set("budget", P.Budget);
    Point.set("result", resultToJson(P.Result));
    PointsJson.push(std::move(Point));
  }
  Out.set("points", std::move(PointsJson));
  return Out;
}

Expected<BudgetGrid> BudgetGrid::fromJson(const Json &Value) {
  if (!Value.isObject())
    return Error("budget grid is not an object");
  Expected<long> ClassId = getInt(Value, "class_id");
  if (!ClassId)
    return ClassId.error();
  Expected<std::vector<double>> Input = getNumberVector(Value, "input");
  if (!Input)
    return Input.error();
  Expected<double> ConfidenceP = getNumber(Value, "confidence_p");
  if (!ConfidenceP)
    return ConfidenceP.error();
  Expected<bool> Conservative = getBool(Value, "conservative");
  if (!Conservative)
    return Conservative.error();
  Expected<const Json *> PointsJson = getArray(Value, "points");
  if (!PointsJson)
    return PointsJson.error();

  BudgetGrid Grid;
  Grid.ClassId = static_cast<int>(*ClassId);
  Grid.Input = std::move(*Input);
  Grid.ConfidenceP = *ConfidenceP;
  Grid.Conservative = *Conservative;
  for (size_t I = 0; I < (*PointsJson)->size(); ++I) {
    const Json &Point = (*PointsJson)->at(I);
    if (!Point.isObject())
      return Error(format("grid point %zu is not an object", I));
    Expected<double> Budget = getNumber(Point, "budget");
    if (!Budget)
      return Budget.error();
    Expected<const Json *> ResultJson = getObject(Point, "result");
    if (!ResultJson)
      return ResultJson.error();
    Expected<OptimizationResult> Result = resultFromJson(**ResultJson);
    if (!Result)
      return Error(format("grid point %zu: %s", I,
                          Result.error().message().c_str()));
    BudgetGridPoint P;
    P.Budget = *Budget;
    P.Result = std::move(*Result);
    Grid.Points.push_back(std::move(P));
  }
  return Grid;
}

std::vector<BudgetGrid>
opprox::computeBudgetGrids(const AppModel &Model,
                           const std::vector<int> &MaxLevels,
                   const std::vector<double> &DefaultInput,
                   const std::vector<std::vector<double>> &CandidateInputs,
                   const BudgetGridOptions &Opts) {
  std::vector<BudgetGrid> Grids;
  if (!Opts.Enabled || Model.numPhases() == 0)
    return Grids;

  OptimizeOptions Solve;
  Solve.ConfidenceP = Opts.ConfidenceP;
  Solve.Conservative = Opts.Conservative;

  for (size_t Class = 0; Class < Model.numClasses(); ++Class) {
    int ClassId = static_cast<int>(Class);
    // The representative input: prefer the application's default
    // production input when it lands in this class, else the first
    // training input that does. A class no input reaches gets no grid
    // (its requests just take the miss path).
    const std::vector<double> *Rep = nullptr;
    if (!DefaultInput.empty() && Model.classOf(DefaultInput) == ClassId)
      Rep = &DefaultInput;
    for (const std::vector<double> &Candidate : CandidateInputs) {
      if (Rep)
        break;
      if (!Candidate.empty() && Model.classOf(Candidate) == ClassId)
        Rep = &Candidate;
    }
    if (!Rep)
      continue;

    BudgetGrid Grid;
    Grid.ClassId = ClassId;
    Grid.Input = *Rep;
    Grid.ConfidenceP = Opts.ConfidenceP;
    Grid.Conservative = Opts.Conservative;
    for (double Budget : Opts.Budgets) {
      OptimizationResult R =
          optimizeSchedule(Model, *Rep, MaxLevels, Budget, Solve);
      // A degraded solve is the fault ladder talking, not the model;
      // baking it into the artifact would outlive the fault.
      if (!R.DegradedPhases.empty())
        continue;
      Grid.Points.push_back(BudgetGridPoint{Budget, std::move(R)});
    }
    if (!Grid.Points.empty())
      Grids.push_back(std::move(Grid));
  }
  return Grids;
}

const OptimizationResult *
opprox::findGridResult(const std::vector<BudgetGrid> &Grids, int ClassId,
               const std::vector<double> &Input, double Budget,
               const OptimizeOptions &Opts) {
  for (const BudgetGrid &Grid : Grids) {
    if (Grid.ClassId != ClassId || Grid.Conservative != Opts.Conservative ||
        !bitsEqual(Grid.ConfidenceP, Opts.ConfidenceP) ||
        !bitsEqual(Grid.Input, Input))
      continue;
    for (const BudgetGridPoint &P : Grid.Points) {
      if (bitsEqual(P.Budget, Budget)) {
        MetricsRegistry::global().counter("cache.grid_hits").add();
        return &P.Result;
      }
    }
  }
  return nullptr;
}
