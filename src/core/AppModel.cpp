//===- core/AppModel.cpp --------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/AppModel.h"
#include "support/FaultInjection.h"
#include "support/Json.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"
#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <set>

using namespace opprox;

/// Replaces \p V with quiet NaN / +infinity when the prediction fault
/// sites fire. Applied at prediction-output returns -- after the range
/// clamps -- so injected garbage reaches consumers through exactly the
/// value path a defective model artifact would use.
static double injectPredictionFault(double V) {
  if (faultPoint(faults::PredictNan))
    return std::numeric_limits<double>::quiet_NaN();
  if (faultPoint(faults::PredictInf))
    return std::numeric_limits<double>::infinity();
  return V;
}

/// Per-row fault gate for the batch kernels; free when disarmed.
static void injectPredictionFaults(std::vector<double> &Out, size_t N) {
  if (OPPROX_LIKELY(
          !detail::GlobalFaultsArmed.load(std::memory_order_relaxed)))
    return;
  for (size_t R = 0; R < N; ++R)
    Out[R] = injectPredictionFault(Out[R]);
}

//===----------------------------------------------------------------------===//
// PhaseModels
//===----------------------------------------------------------------------===//

// The scalar entry points below are the original self-contained
// implementations (per-call feature assembly through the scalar model
// predicts). They stay independent of the batch kernels on purpose: the
// optimizer's naive reference engine uses them, so the equivalence tests
// compare two genuinely distinct code paths bit for bit rather than one
// kernel against itself.

std::vector<double>
PhaseModels::overallFeatures(const std::vector<double> &Input,
                             const std::vector<int> &Levels) const {
  assert(Levels.size() == LocalSpeedup.size() && "level count mismatch");
  std::vector<double> Features;
  Features.reserve(LocalSpeedup.size() + 1);
  for (size_t B = 0; B < LocalSpeedup.size(); ++B) {
    std::vector<double> LocalX = Input;
    LocalX.push_back(static_cast<double>(Levels[B]));
    Features.push_back(LocalSpeedup[B].predict(LocalX));
  }
  Features.push_back(predictIterations(Input, Levels));
  return Features;
}

double PhaseModels::predictIterations(const std::vector<double> &Input,
                                      const std::vector<int> &Levels) const {
  assert(IterationModel && "model stack not built");
  std::vector<double> X = Input;
  for (int L : Levels)
    X.push_back(static_cast<double>(L));
  return injectPredictionFault(IterationModel->predict(X));
}

double PhaseModels::predictSpeedup(const std::vector<double> &Input,
                                   const std::vector<int> &Levels) const {
  assert(OverallSpeedup && "model stack not built");
  // Models live in log space (see ModelBuilder); transform back, clamped
  // to a physically meaningful range so extrapolation cannot overflow.
  double LogPred = OverallSpeedup->predict(overallFeatures(Input, Levels));
  // Cap at ~50x: no configuration of these transformations can exceed
  // that, so anything larger is extrapolation noise.
  return injectPredictionFault(
      std::clamp(std::exp(std::min(LogPred, 4.0)), 0.01, 50.0));
}

double PhaseModels::conservativeSpeedup(const std::vector<double> &Input,
                                        const std::vector<int> &Levels,
                                        double P) const {
  assert(OverallSpeedup && "model stack not built");
  double Lower = OverallSpeedup->lowerBound(overallFeatures(Input, Levels), P);
  return injectPredictionFault(
      std::clamp(std::exp(std::min(Lower, 4.0)), 0.01, 50.0));
}

double PhaseModels::predictQos(const std::vector<double> &Input,
                               const std::vector<int> &Levels) const {
  assert(OverallQos && "model stack not built");
  // The QoS overall model consumes the *QoS* local predictions.
  std::vector<double> Features;
  Features.reserve(LocalQos.size() + 1);
  for (size_t B = 0; B < LocalQos.size(); ++B) {
    std::vector<double> LocalX = Input;
    LocalX.push_back(static_cast<double>(Levels[B]));
    Features.push_back(LocalQos[B].predict(LocalX));
  }
  Features.push_back(predictIterations(Input, Levels));
  double LogPred = std::min(OverallQos->predict(Features), 7.0);
  return injectPredictionFault(
      std::clamp(std::expm1(LogPred), 0.0, 1000.0));
}

double PhaseModels::conservativeQos(const std::vector<double> &Input,
                                    const std::vector<int> &Levels,
                                    double P) const {
  assert(OverallQos && "model stack not built");
  std::vector<double> Features;
  Features.reserve(LocalQos.size() + 1);
  for (size_t B = 0; B < LocalQos.size(); ++B) {
    std::vector<double> LocalX = Input;
    LocalX.push_back(static_cast<double>(Levels[B]));
    Features.push_back(LocalQos[B].predict(LocalX));
  }
  Features.push_back(predictIterations(Input, Levels));
  double LogUpper = std::min(OverallQos->upperBound(Features, P), 7.0);
  return injectPredictionFault(
      std::clamp(std::expm1(LogUpper), 0.0, 1000.0));
}

void PhaseModels::predictIterationsBatch(const PhaseEvalPlan &Plan,
                                         const int *Levels, size_t N,
                                         std::vector<double> &Out,
                                         PredictScratch &S) const {
  assert(IterationModel && "model stack not built");
  size_t NumBlocks = LocalSpeedup.size();
  size_t NumInputs = Plan.Input.size();
  S.IterX.reshape(N, NumInputs + NumBlocks);
  for (size_t R = 0; R < N; ++R) {
    double *Row = S.IterX.rowData(R);
    std::copy(Plan.Input.begin(), Plan.Input.end(), Row);
    const int *Config = Levels + R * NumBlocks;
    for (size_t B = 0; B < NumBlocks; ++B)
      Row[NumInputs + B] = static_cast<double>(Config[B]);
  }
  IterationModel->predictBatch(S.IterX, Out, S.Model);
  injectPredictionFaults(Out, N);
}

void PhaseModels::overallLogBatch(const PhaseEvalPlan &Plan,
                                  const int *Levels, const double *IterEst,
                                  size_t N, bool Qos,
                                  std::vector<double> &Out,
                                  PredictScratch &S) const {
  assert(IterationModel && OverallSpeedup && OverallQos &&
         "model stack not built");
  size_t NumBlocks = LocalSpeedup.size();
  const std::vector<std::vector<double>> &Tab =
      Qos ? Plan.LocalQosTab : Plan.LocalSpeedupTab;
  S.OverallX.reshape(N, NumBlocks + 1);
  for (size_t R = 0; R < N; ++R) {
    double *Row = S.OverallX.rowData(R);
    const int *Config = Levels + R * NumBlocks;
    for (size_t B = 0; B < NumBlocks; ++B)
      Row[B] = Tab[B][static_cast<size_t>(Config[B])];
    Row[NumBlocks] = IterEst[R];
  }
  (Qos ? *OverallQos : *OverallSpeedup).predictBatch(S.OverallX, Out, S.Model);
}

void PhaseModels::predictSpeedupBatch(const PhaseEvalPlan &Plan,
                                      const int *Levels, const double *IterEst,
                                      size_t N, std::vector<double> &Out,
                                      PredictScratch &S) const {
  overallLogBatch(Plan, Levels, IterEst, N, /*Qos=*/false, S.LogOut, S);
  Out.resize(N);
  for (size_t R = 0; R < N; ++R) {
    double P = S.LogOut[R];
    if (Plan.Conservative)
      P -= Plan.SpeedupHalfWidth;
    Out[R] = std::clamp(std::exp(std::min(P, 4.0)), 0.01, 50.0);
  }
  injectPredictionFaults(Out, N);
}

void PhaseModels::predictSpeedupBatch(const PhaseEvalPlan &Plan,
                                      const int *Levels, size_t N,
                                      std::vector<double> &Out,
                                      PredictScratch &S) const {
  predictIterationsBatch(Plan, Levels, N, S.IterOut, S);
  predictSpeedupBatch(Plan, Levels, S.IterOut.data(), N, Out, S);
}

void PhaseModels::predictQosBatch(const PhaseEvalPlan &Plan,
                                  const int *Levels, const double *IterEst,
                                  size_t N, std::vector<double> &Out,
                                  PredictScratch &S) const {
  overallLogBatch(Plan, Levels, IterEst, N, /*Qos=*/true, S.LogOut, S);
  Out.resize(N);
  for (size_t R = 0; R < N; ++R) {
    double P = S.LogOut[R];
    if (Plan.Conservative)
      P += Plan.QosHalfWidth;
    Out[R] = std::clamp(std::expm1(std::min(P, 7.0)), 0.0, 1000.0);
  }
  injectPredictionFaults(Out, N);
}

void PhaseModels::predictQosBatch(const PhaseEvalPlan &Plan,
                                  const int *Levels, size_t N,
                                  std::vector<double> &Out,
                                  PredictScratch &S) const {
  predictIterationsBatch(Plan, Levels, N, S.IterOut, S);
  predictQosBatch(Plan, Levels, S.IterOut.data(), N, Out, S);
}

PhaseEvalPlan PhaseModels::makeEvalPlan(const std::vector<double> &Input,
                                        const std::vector<int> &MaxLevels,
                                        bool Conservative,
                                        double Confidence) const {
  assert(IterationModel && OverallSpeedup && OverallQos &&
         "model stack not built");
  size_t NumBlocks = LocalSpeedup.size();
  assert(MaxLevels.size() == NumBlocks && "level count mismatch");
  size_t NumInputs = Input.size();

  PhaseEvalPlan Plan;
  Plan.Input = Input;
  Plan.MaxLevels = MaxLevels;
  Plan.Conservative = Conservative;
  if (Conservative) {
    Plan.SpeedupHalfWidth = OverallSpeedup->confidence().halfWidth(Confidence);
    Plan.QosHalfWidth = OverallQos->confidence().halfWidth(Confidence);
  }

  // Local predictions per (block, level), by the same scalar calls the
  // naive path makes, so table lookups reproduce its bits exactly.
  Plan.LocalSpeedupTab.resize(NumBlocks);
  Plan.LocalQosTab.resize(NumBlocks);
  std::vector<double> LocalX = Input;
  LocalX.push_back(0.0);
  for (size_t B = 0; B < NumBlocks; ++B) {
    for (int L = 0; L <= MaxLevels[B]; ++L) {
      LocalX.back() = static_cast<double>(L);
      Plan.LocalSpeedupTab[B].push_back(LocalSpeedup[B].predict(LocalX));
      Plan.LocalQosTab[B].push_back(LocalQos[B].predict(LocalX));
    }
  }

  // Certified QoS floor per (block, level): interval bounds on the
  // overall QoS model over every configuration with that block pinned.
  // The overall features reach only finitely many values per coordinate
  // -- the table entries -- so their hull is an exact box; the iteration
  // estimate is bounded by interval arithmetic over its own box.
  std::vector<double> IterLo(NumInputs + NumBlocks);
  std::vector<double> IterHi(NumInputs + NumBlocks);
  std::copy(Input.begin(), Input.end(), IterLo.begin());
  std::copy(Input.begin(), Input.end(), IterHi.begin());
  for (size_t B = 0; B < NumBlocks; ++B) {
    IterLo[NumInputs + B] = 0.0;
    IterHi[NumInputs + B] = static_cast<double>(MaxLevels[B]);
  }
  std::vector<double> QLo(NumBlocks), QHi(NumBlocks);
  for (size_t B = 0; B < NumBlocks; ++B) {
    auto [MinIt, MaxIt] = std::minmax_element(Plan.LocalQosTab[B].begin(),
                                              Plan.LocalQosTab[B].end());
    QLo[B] = *MinIt;
    QHi[B] = *MaxIt;
  }
  Plan.QosFloor.resize(NumBlocks);
  std::vector<double> FLo(NumBlocks + 1), FHi(NumBlocks + 1);
  for (size_t B = 0; B < NumBlocks; ++B) {
    for (int L = 0; L <= MaxLevels[B]; ++L) {
      IterLo[NumInputs + B] = static_cast<double>(L);
      IterHi[NumInputs + B] = static_cast<double>(L);
      auto [ItLo, ItHi] = IterationModel->boundsOver(IterLo, IterHi);
      for (size_t C = 0; C < NumBlocks; ++C) {
        FLo[C] = C == B ? Plan.LocalQosTab[B][static_cast<size_t>(L)]
                        : QLo[C];
        FHi[C] = C == B ? Plan.LocalQosTab[B][static_cast<size_t>(L)]
                        : QHi[C];
      }
      FLo[NumBlocks] = ItLo;
      FHi[NumBlocks] = ItHi;
      double LogLo = OverallQos->boundsOver(FLo, FHi).first;
      if (Conservative)
        LogLo += Plan.QosHalfWidth;
      double Floor =
          std::clamp(std::expm1(std::min(LogLo, 7.0)), 0.0, 1000.0);
      // Guard against any non-monotone rounding in the transform chain;
      // vastly larger than 1 ulp at every reachable magnitude.
      Floor -= 1e-9 * std::fabs(Floor) + 1e-12;
      Plan.QosFloor[B].push_back(Floor);
    }
    IterLo[NumInputs + B] = 0.0;
    IterHi[NumInputs + B] = static_cast<double>(MaxLevels[B]);
  }
  return Plan;
}

Json PhaseModels::toJson() const {
  Json Out = Json::object();
  Json Speedups = Json::array();
  for (const SelectedModel &M : LocalSpeedup)
    Speedups.push(M.toJson());
  Out.set("local_speedup", std::move(Speedups));
  Json Qos = Json::array();
  for (const SelectedModel &M : LocalQos)
    Qos.push(M.toJson());
  Out.set("local_qos", std::move(Qos));
  assert(IterationModel && OverallSpeedup && OverallQos &&
         "serializing an unbuilt model stack");
  Out.set("iterations", IterationModel->toJson());
  Out.set("overall_speedup", OverallSpeedup->toJson());
  Out.set("overall_qos", OverallQos->toJson());
  Out.set("roi", Roi);
  return Out;
}

/// Parses an array of SelectedModel values from member \p Key of \p Obj.
static Expected<std::vector<SelectedModel>>
modelVector(const Json &Obj, const std::string &Key) {
  Expected<const Json *> List = getArray(Obj, Key);
  if (!List)
    return List.error();
  std::vector<SelectedModel> Models;
  for (size_t I = 0; I < (*List)->size(); ++I) {
    Expected<SelectedModel> M = SelectedModel::fromJson((*List)->at(I));
    if (!M)
      return Error(format("%s[%zu]: %s", Key.c_str(), I,
                          M.error().message().c_str()));
    Models.push_back(std::move(*M));
  }
  return Models;
}

/// Parses one SelectedModel from object member \p Key of \p Obj.
static Expected<SelectedModel> modelMember(const Json &Obj,
                                           const std::string &Key) {
  Expected<const Json *> Member = getObject(Obj, Key);
  if (!Member)
    return Member.error();
  Expected<SelectedModel> M = SelectedModel::fromJson(**Member);
  if (!M)
    return Error(format("%s: %s", Key.c_str(), M.error().message().c_str()));
  return M;
}

Expected<PhaseModels> PhaseModels::fromJson(const Json &Value) {
  Expected<std::vector<SelectedModel>> LocalSpeedup =
      modelVector(Value, "local_speedup");
  if (!LocalSpeedup)
    return LocalSpeedup.error();
  Expected<std::vector<SelectedModel>> LocalQos =
      modelVector(Value, "local_qos");
  if (!LocalQos)
    return LocalQos.error();
  Expected<SelectedModel> Iterations = modelMember(Value, "iterations");
  if (!Iterations)
    return Iterations.error();
  Expected<SelectedModel> OverallSpeedup =
      modelMember(Value, "overall_speedup");
  if (!OverallSpeedup)
    return OverallSpeedup.error();
  Expected<SelectedModel> OverallQos = modelMember(Value, "overall_qos");
  if (!OverallQos)
    return OverallQos.error();
  Expected<double> Roi = getNumber(Value, "roi");
  if (!Roi)
    return Roi.error();

  if (LocalSpeedup->size() != LocalQos->size())
    return Error(format("model stack has %zu local speedup models but %zu "
                        "local QoS models",
                        LocalSpeedup->size(), LocalQos->size()));
  PhaseModels PM;
  PM.LocalSpeedup = std::move(*LocalSpeedup);
  PM.LocalQos = std::move(*LocalQos);
  PM.IterationModel = std::move(*Iterations);
  PM.OverallSpeedup = std::move(*OverallSpeedup);
  PM.OverallQos = std::move(*OverallQos);
  PM.Roi = *Roi;
  return PM;
}

//===----------------------------------------------------------------------===//
// AppModel
//===----------------------------------------------------------------------===//

int AppModel::classOf(const std::vector<double> &Input) const {
  int ClassId = Classifier.predictClass(Input);
  // A never-seen class cannot have models; fall back to class 0.
  if (ClassId < 0 || static_cast<size_t>(ClassId) >= Classes.size())
    return 0;
  return ClassId;
}

const PhaseModels &AppModel::phaseModels(const std::vector<double> &Input,
                                         size_t Phase) const {
  return phaseModelsForClass(classOf(Input), Phase);
}

const PhaseModels &AppModel::phaseModelsForClass(int ClassId,
                                                 size_t Phase) const {
  assert(ClassId >= 0 && static_cast<size_t>(ClassId) < Classes.size() &&
         "unknown control-flow class");
  assert(Phase < NumPhases && "phase out of range");
  return Classes[static_cast<size_t>(ClassId)][Phase];
}

size_t AppModel::numBlocks() const {
  assert(!Classes.empty() && !Classes.front().empty() && "empty model");
  return Classes.front().front().numBlocks();
}

Json AppModel::toJson() const {
  Json Out = Json::object();
  Out.set("num_phases", NumPhases);
  Out.set("classifier", Classifier.toJson());
  Json ClassList = Json::array();
  for (const std::vector<PhaseModels> &PerPhase : Classes) {
    Json PhaseList = Json::array();
    for (const PhaseModels &PM : PerPhase)
      PhaseList.push(PM.toJson());
    ClassList.push(std::move(PhaseList));
  }
  Out.set("classes", std::move(ClassList));
  return Out;
}

Expected<AppModel> AppModel::fromJson(const Json &Value) {
  Expected<size_t> NumPhases = getSize(Value, "num_phases");
  if (!NumPhases)
    return NumPhases.error();
  Expected<const Json *> ClassifierJson = getObject(Value, "classifier");
  if (!ClassifierJson)
    return ClassifierJson.error();
  Expected<const Json *> ClassList = getArray(Value, "classes");
  if (!ClassList)
    return ClassList.error();

  if (*NumPhases == 0)
    return Error("model needs at least one phase");
  Expected<ControlFlowModel> Classifier =
      ControlFlowModel::fromJson(**ClassifierJson);
  if (!Classifier)
    return Error(format("classifier: %s",
                        Classifier.error().message().c_str()));
  if ((*ClassList)->size() == 0)
    return Error("model has no control-flow classes");

  AppModel Model;
  Model.NumPhases = *NumPhases;
  Model.Classifier = std::move(*Classifier);
  for (size_t C = 0; C < (*ClassList)->size(); ++C) {
    const Json &PhaseList = (*ClassList)->at(C);
    if (!PhaseList.isArray())
      return Error(format("class %zu is not an array of phase models", C));
    if (PhaseList.size() != *NumPhases)
      return Error(format("class %zu has %zu phase stacks, expected %zu", C,
                          PhaseList.size(), *NumPhases));
    std::vector<PhaseModels> PerPhase;
    for (size_t P = 0; P < PhaseList.size(); ++P) {
      Expected<PhaseModels> PM = PhaseModels::fromJson(PhaseList.at(P));
      if (!PM)
        return Error(format("class %zu phase %zu: %s", C, P,
                            PM.error().message().c_str()));
      PerPhase.push_back(std::move(*PM));
    }
    Model.Classes.push_back(std::move(PerPhase));
  }

  // The optimizer indexes every stack with one block count; a ragged
  // grid would fault at prediction time, so reject it at load time.
  size_t Blocks = Model.Classes.front().front().numBlocks();
  for (const std::vector<PhaseModels> &PerPhase : Model.Classes)
    for (const PhaseModels &PM : PerPhase)
      if (PM.numBlocks() != Blocks)
        return Error("inconsistent block counts across model stacks");
  return Model;
}

//===----------------------------------------------------------------------===//
// ModelBuilder
//===----------------------------------------------------------------------===//

/// Builds the feature-name vector "in_0.., al" used by local models.
static std::vector<std::string> localFeatureNames(size_t NumInputs) {
  std::vector<std::string> Names;
  for (size_t I = 0; I < NumInputs; ++I)
    Names.push_back(format("in_%zu", I));
  Names.push_back("al");
  return Names;
}

static std::vector<std::string> iterFeatureNames(size_t NumInputs,
                                                 size_t NumBlocks) {
  std::vector<std::string> Names;
  for (size_t I = 0; I < NumInputs; ++I)
    Names.push_back(format("in_%zu", I));
  for (size_t B = 0; B < NumBlocks; ++B)
    Names.push_back(format("al_%zu", B));
  return Names;
}

/// True when only block \p B carries a nonzero level.
static bool onlyBlockApproximated(const TrainingSample &S, size_t B) {
  for (size_t J = 0; J < S.Levels.size(); ++J) {
    if (J == B)
      continue;
    if (S.Levels[J] != 0)
      return false;
  }
  return true;
}

AppModel ModelBuilder::build(const TrainingSet &Data, size_t NumPhases,
                             size_t NumBlocks,
                             const ModelBuildOptions &Opts) {
  assert(!Data.empty() && "no training data");
  size_t NumInputs = Data[0].Input.size();

  AppModel Model;
  Model.NumPhases = NumPhases;

  // Classifier over every sample's (input -> class).
  {
    std::vector<std::vector<double>> Inputs;
    std::vector<int> Labels;
    for (const TrainingSample &S : Data.samples()) {
      Inputs.push_back(S.Input);
      Labels.push_back(S.ControlFlowClass);
    }
    Model.Classifier = ControlFlowModel::train(Inputs, Labels);
  }

  std::set<int> ClassIds;
  for (const TrainingSample &S : Data.samples())
    ClassIds.insert(S.ControlFlowClass);
  assert(!ClassIds.empty() && "no control-flow classes");
  int MaxClass = *ClassIds.rbegin();
  Model.Classes.resize(static_cast<size_t>(MaxClass) + 1);

  // Per-class context shared by that class's phase tasks, precomputed
  // serially so the parallel section below only reads it.
  struct ClassContext {
    TrainingSet ClassData;
    /// Distinct inputs of the class anchor the level-0 behaviour:
    /// speedup 1, degradation 0, nominal iterations.
    std::set<std::vector<double>> DistinctInputs;
    std::map<std::vector<double>, double> NominalIterations;
  };
  std::map<int, ClassContext> Contexts;
  for (int ClassId : ClassIds) {
    ClassContext &Ctx = Contexts[ClassId];
    Ctx.ClassData = Data.forClass(ClassId);
    Model.Classes[static_cast<size_t>(ClassId)].resize(NumPhases);
    for (const TrainingSample &S : Ctx.ClassData.samples()) {
      Ctx.DistinctInputs.insert(S.Input);
      // The per-phase nominal count: every exact-phase sample of a
      // fixed-count app reports it; for adaptive apps the median of
      // observed counts is a serviceable anchor.
      Ctx.NominalIterations[S.Input] = S.OuterIterations;
    }
  }

  // Every (class, phase) model stack fits independently into its
  // preallocated slot, each with an RNG derived from (Seed, ClassId,
  // Phase) -- identical results for any worker count.
  struct FitTask {
    int ClassId;
    size_t Phase;
  };
  std::vector<FitTask> Fits;
  for (int ClassId : ClassIds)
    for (size_t Phase = 0; Phase < NumPhases; ++Phase)
      Fits.push_back({ClassId, Phase});

  Counter &FitCounter = MetricsRegistry::global().counter("train.fits");
  Histogram &FitMs = MetricsRegistry::global().histogram("train.fit_ms");
  ThreadPool Pool(ThreadPool::resolveWorkers(Opts.NumThreads));
  Pool.parallelFor(Fits.size(), [&](size_t T) {
    int ClassId = Fits[T].ClassId;
    size_t Phase = Fits[T].Phase;
    TraceSpan FitSpan("train.fit", "train");
    FitSpan.arg("class", static_cast<double>(ClassId));
    FitSpan.arg("phase", static_cast<double>(Phase));
    const ClassContext &Ctx = Contexts.at(ClassId);
    const std::set<std::vector<double>> &DistinctInputs = Ctx.DistinctInputs;
    const std::map<std::vector<double>, double> &NominalIterations =
        Ctx.NominalIterations;
    Rng BuildRng(deriveSeed(Opts.Seed, static_cast<uint64_t>(ClassId), Phase));

    {
      TrainingSet PhaseData = Ctx.ClassData.forPhase(static_cast<int>(Phase));
      assert(!PhaseData.empty() && "no samples for a (class, phase) pair");
      PhaseModels &PM =
          Model.Classes[static_cast<size_t>(ClassId)][Phase];

      // --- Local per-AB models (step 1 of Sec. 3.6) --------------------
      for (size_t B = 0; B < NumBlocks; ++B) {
        Dataset SpeedupData(localFeatureNames(NumInputs));
        Dataset QosData(localFeatureNames(NumInputs));
        for (const TrainingSample &S : PhaseData.samples()) {
          if (!onlyBlockApproximated(S, B))
            continue;
          std::vector<double> X = S.Input;
          X.push_back(static_cast<double>(S.Levels[B]));
          // Log-space targets: speedups and QoS degradations are
          // heavy-tailed (premature convergence, saturated instability),
          // and multiplicative structure is what the overall model
          // composes anyway.
          SpeedupData.addSample(X, std::log(std::max(S.Speedup, 1e-3)));
          QosData.addSample(X, std::log1p(S.QosDegradation));
        }
        // Anchor the exact configuration.
        for (const std::vector<double> &Input : DistinctInputs) {
          std::vector<double> X = Input;
          X.push_back(0.0);
          SpeedupData.addSample(X, 0.0); // log(1)
          QosData.addSample(X, 0.0);     // log1p(0)
        }
        PM.LocalSpeedup.push_back(
            SelectedModel::train(SpeedupData, Opts.Selection, BuildRng, &Pool));
        PM.LocalQos.push_back(
            SelectedModel::train(QosData, Opts.Selection, BuildRng, &Pool));
      }

      // --- Iteration estimator ------------------------------------------
      {
        Dataset IterData(iterFeatureNames(NumInputs, NumBlocks));
        for (const TrainingSample &S : PhaseData.samples()) {
          std::vector<double> X = S.Input;
          for (int L : S.Levels)
            X.push_back(static_cast<double>(L));
          IterData.addSample(X, S.OuterIterations);
        }
        for (const std::vector<double> &Input : DistinctInputs) {
          std::vector<double> X = Input;
          X.resize(NumInputs + NumBlocks, 0.0);
          IterData.addSample(X, NominalIterations.at(Input));
        }
        PM.IterationModel =
            SelectedModel::train(IterData, Opts.Selection, BuildRng, &Pool);
      }

      // --- Overall models (step 2 of Sec. 3.6) --------------------------
      {
        std::vector<std::string> Names;
        for (size_t B = 0; B < NumBlocks; ++B)
          Names.push_back(format("local_%zu", B));
        Names.push_back("iter_est");

        Dataset SpeedupData(Names), QosData(Names);
        for (const TrainingSample &S : PhaseData.samples()) {
          // Speedup features: local speedup predictions + iter estimate.
          std::vector<double> SFeat;
          std::vector<double> QFeat;
          for (size_t B = 0; B < NumBlocks; ++B) {
            std::vector<double> LocalX = S.Input;
            LocalX.push_back(static_cast<double>(S.Levels[B]));
            SFeat.push_back(PM.LocalSpeedup[B].predict(LocalX));
            QFeat.push_back(PM.LocalQos[B].predict(LocalX));
          }
          double IterEst = PM.predictIterations(S.Input, S.Levels);
          SFeat.push_back(IterEst);
          QFeat.push_back(IterEst);
          SpeedupData.addSample(SFeat, std::log(std::max(S.Speedup, 1e-3)));
          QosData.addSample(QFeat, std::log1p(S.QosDegradation));
        }
        // Anchor the exact configuration so the polynomial cannot run
        // wild at the all-zero corner, which joint sampling rarely
        // visits.
        std::vector<int> ZeroLevels(NumBlocks, 0);
        for (const std::vector<double> &Input : DistinctInputs) {
          std::vector<double> SFeat, QFeat;
          for (size_t B = 0; B < NumBlocks; ++B) {
            std::vector<double> LocalX = Input;
            LocalX.push_back(0.0);
            SFeat.push_back(PM.LocalSpeedup[B].predict(LocalX));
            QFeat.push_back(PM.LocalQos[B].predict(LocalX));
          }
          double IterEst = PM.predictIterations(Input, ZeroLevels);
          SFeat.push_back(IterEst);
          QFeat.push_back(IterEst);
          for (int Copy = 0; Copy < 3; ++Copy) {
            SpeedupData.addSample(SFeat, 0.0);
            QosData.addSample(QFeat, 0.0);
          }
        }
        PM.OverallSpeedup =
            SelectedModel::train(SpeedupData, Opts.Selection, BuildRng, &Pool);
        PM.OverallQos =
            SelectedModel::train(QosData, Opts.Selection, BuildRng, &Pool);
      }

      // --- ROI (Eq. 1) ---------------------------------------------------
      {
        double Sum = 0.0;
        for (const TrainingSample &S : PhaseData.samples())
          Sum += S.Speedup / std::max(S.QosDegradation, Opts.RoiQosFloor);
        PM.Roi = Sum / static_cast<double>(PhaseData.size());
      }
    }
    FitCounter.add();
    FitMs.record(FitSpan.seconds() * 1e3);
  });

  // Classes that never occurred get copies of class 0's models so
  // phaseModelsForClass never dereferences an empty slot.
  size_t FirstClass = static_cast<size_t>(*ClassIds.begin());
  for (auto &PerPhase : Model.Classes)
    if (PerPhase.empty())
      PerPhase = Model.Classes[FirstClass];

  return Model;
}
