//===- core/OpproxRuntime.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/OpproxRuntime.h"
#include "support/Telemetry.h"

using namespace opprox;

OpproxRuntime OpproxRuntime::fromArtifact(OpproxArtifact Artifact) {
  OpproxRuntime Runtime;
  Runtime.Art = std::move(Artifact);
  return Runtime;
}

Expected<OpproxRuntime> OpproxRuntime::load(const std::string &Path) {
  TraceSpan Span("runtime.artifact_load", "runtime");
  Expected<OpproxArtifact> Artifact = OpproxArtifact::load(Path);
  MetricsRegistry::global().counter("runtime.artifact_loads").add();
  MetricsRegistry::global()
      .histogram("runtime.artifact_load_ms")
      .record(Span.seconds() * 1e3);
  if (!Artifact)
    return Artifact.error();
  return fromArtifact(std::move(*Artifact));
}

PhaseSchedule OpproxRuntime::optimize(const std::vector<double> &Input,
                                      double QosBudget,
                                      const OptimizeOptions &Opts) const {
  return optimizeDetailed(Input, QosBudget, Opts).Schedule;
}

OptimizationResult
OpproxRuntime::optimizeDetailed(const std::vector<double> &Input,
                                double QosBudget,
                                const OptimizeOptions &Opts) const {
  assert(Art.Model.numPhases() > 0 && "optimize on an empty runtime");
  return optimizeSchedule(Art.Model, Input, Art.MaxLevels, QosBudget, Opts);
}
