//===- core/OpproxRuntime.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/OpproxRuntime.h"
#include "support/FaultInjection.h"
#include "support/Log.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include <cmath>
#include <map>
#include <mutex>

using namespace opprox;

namespace {
/// Per-path cache of the last artifact that loaded successfully in this
/// process: rung 2 of the degradation ladder. Guarded by its own mutex;
/// loads are rare next to optimize calls, so a copy per hit is fine.
struct LastGoodCache {
  std::mutex Mutex;
  std::map<std::string, OpproxArtifact> ByPath;

  static LastGoodCache &get() {
    static LastGoodCache Cache;
    return Cache;
  }

  void store(const std::string &Path, const OpproxArtifact &Artifact) {
    std::lock_guard<std::mutex> Lock(Mutex);
    ByPath[Path] = Artifact;
  }

  std::optional<OpproxArtifact> find(const std::string &Path) {
    std::lock_guard<std::mutex> Lock(Mutex);
    auto It = ByPath.find(Path);
    if (It == ByPath.end())
      return std::nullopt;
    return It->second;
  }
};
} // namespace

OpproxRuntime OpproxRuntime::fromArtifact(OpproxArtifact Artifact) {
  OpproxRuntime Runtime;
  Runtime.Art = std::move(Artifact);
  Runtime.Planner = std::make_shared<OptimizePlanner>();
  return Runtime;
}

void OpproxRuntime::configurePlanner(const PlannerOptions &Opts) {
  Planner = std::make_shared<OptimizePlanner>(Opts);
}

Expected<OpproxRuntime> OpproxRuntime::load(const std::string &Path) {
  TraceSpan Span("runtime.artifact_load", "runtime");
  Expected<OpproxArtifact> Artifact = OpproxArtifact::load(Path);
  MetricsRegistry::global().counter("runtime.artifact_loads").add();
  MetricsRegistry::global()
      .histogram("runtime.artifact_load_ms")
      .record(Span.seconds() * 1e3);
  if (!Artifact)
    return Artifact.error();
  return fromArtifact(std::move(*Artifact));
}

Expected<OpproxRuntime>
OpproxRuntime::loadArtifact(const std::string &Path,
                            const ArtifactLoadOptions &Opts) {
  Counter &Retries =
      MetricsRegistry::global().counter("runtime.artifact_retries");
  Expected<OpproxRuntime> Runtime = retryWithBackoff(
      Opts.Retry,
      [&]() -> Expected<OpproxRuntime> {
        if (faultPoint(faults::RuntimeLoad))
          return Error(format("fault injection: simulated load failure for "
                              "'%s'",
                              Path.c_str()));
        return load(Path);
      },
      [&](size_t Attempt, const Error &E) {
        Retries.add();
        logInfo("artifact load attempt %zu failed (%s); retrying", Attempt,
                E.message().c_str());
      });
  if (Runtime) {
    LastGoodCache::get().store(Path, Runtime->artifact());
    return Runtime;
  }
  if (Opts.UseLastGood) {
    if (std::optional<OpproxArtifact> Cached = LastGoodCache::get().find(Path)) {
      MetricsRegistry::global().counter("runtime.artifact_last_good").add();
      TraceRecorder::global().instant("runtime.artifact_last_good", "runtime");
      logInfo("artifact load failed (%s); serving last-known-good artifact "
              "for '%s'",
              Runtime.error().message().c_str(), Path.c_str());
      return fromArtifact(std::move(*Cached));
    }
  }
  return Runtime.error();
}

PhaseSchedule OpproxRuntime::optimize(const std::vector<double> &Input,
                                      double QosBudget,
                                      const OptimizeOptions &Opts) const {
  return optimizeDetailed(Input, QosBudget, Opts).Schedule;
}

OptimizationResult
OpproxRuntime::optimizeDetailed(const std::vector<double> &Input,
                                double QosBudget,
                                const OptimizeOptions &Opts) const {
  assert(Art.Model.numPhases() > 0 && "optimize on an empty runtime");
  return Planner->optimizeTrusted(Art, Input, QosBudget, Opts);
}

Expected<OptimizationResult>
OpproxRuntime::tryOptimizeDetailed(const std::vector<double> &Input,
                                   double QosBudget,
                                   const OptimizeOptions &Opts,
                                   PlannerStageBreakdown *Stages) const {
  assert(Art.Model.numPhases() > 0 && "optimize on an empty runtime");
  return Planner->optimize(Art, Input, QosBudget, Opts, Stages);
}

Expected<OptimizationResult>
OpproxRuntime::tryOptimizeTail(const std::vector<double> &Input,
                               double QosBudget, size_t FirstPhase,
                               const OptimizeOptions &Opts,
                               PlannerStageBreakdown *Stages) const {
  assert(Art.Model.numPhases() > 0 && "optimize on an empty runtime");
  return Planner->optimizeTail(Art, Input, QosBudget, FirstPhase, Opts,
                               Stages);
}
