//===- core/Profiler.cpp --------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "approx/WorkCounter.h"

using namespace opprox;

int SignatureRegistry::classOf(const std::string &Signature) {
  auto It = Classes.find(Signature);
  if (It != Classes.end())
    return It->second;
  int Id = static_cast<int>(Classes.size());
  Classes.emplace(Signature, Id);
  return Id;
}

int SignatureRegistry::lookup(const std::string &Signature) const {
  auto It = Classes.find(Signature);
  return It == Classes.end() ? -1 : It->second;
}

TrainingSample Profiler::measure(const std::vector<double> &Input,
                                 const std::vector<int> &Levels, int Phase,
                                 size_t NumPhases) {
  const RunResult &Exact = Golden.exactRun(Input);
  size_t Nominal = Exact.OuterIterations;

  PhaseSchedule Schedule =
      Phase == AllPhases
          ? PhaseSchedule::uniform(NumPhases, Levels)
          : PhaseSchedule::singlePhase(NumPhases,
                                       static_cast<size_t>(Phase), Levels);
  RunResult Approx = App.run(Input, Schedule, Nominal);
  ++RunCount;

  TrainingSample S;
  S.Input = Input;
  S.Levels = Levels;
  S.Phase = Phase;
  S.Speedup = speedupOf(Exact.WorkUnits, Approx.WorkUnits);
  S.QosDegradation = App.qosDegradation(Exact, Approx);
  S.OuterIterations = static_cast<double>(Approx.OuterIterations);
  S.ControlFlowClass = Registry.classOf(Exact.ControlFlowSignature);
  return S;
}

TrainingSet Profiler::collect(const std::vector<std::vector<double>> &Inputs,
                              const ProfileOptions &Opts) {
  assert(Opts.NumPhases >= 1 && "need at least one phase");
  TrainingSet Set;
  Rng SampleRng(Opts.Seed);

  for (const std::vector<double> &Input : Inputs) {
    // Register this input's control flow up front so classifier training
    // sees every class even if a config crashes out later.
    (void)Registry.classOf(Golden.exactRun(Input).ControlFlowSignature);

    SamplingPlan Plan = makeSamplingPlan(App.maxLevels(),
                                         Opts.RandomJointSamples, SampleRng);
    std::vector<std::vector<int>> Configs = Plan.all();

    for (const std::vector<int> &Levels : Configs) {
      for (size_t Phase = 0; Phase < Opts.NumPhases; ++Phase)
        Set.add(measure(Input, Levels, static_cast<int>(Phase),
                        Opts.NumPhases));
      if (Opts.IncludeAllPhaseRuns)
        Set.add(measure(Input, Levels, AllPhases, Opts.NumPhases));
    }
  }
  return Set;
}
