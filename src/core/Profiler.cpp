//===- core/Profiler.cpp --------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Profiler.h"
#include "approx/WorkCounter.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

using namespace opprox;

namespace {
/// Profiling instruments, cached once (see Telemetry.h: handles are
/// stable, so the hot path touches relaxed atomics only).
struct ProfilerMetrics {
  Counter &Runs;
  Counter &GoldenHits;
  Counter &GoldenMisses;
  Histogram &RunMs;
  Histogram &CollectMs;

  static ProfilerMetrics &get() {
    static ProfilerMetrics M{
        MetricsRegistry::global().counter("profiler.runs"),
        MetricsRegistry::global().counter("profiler.golden_cache.hits"),
        MetricsRegistry::global().counter("profiler.golden_cache.misses"),
        MetricsRegistry::global().histogram("profiler.run_ms"),
        MetricsRegistry::global().histogram("profiler.collect_ms")};
    return M;
  }
};
} // namespace

int SignatureRegistry::classOf(const std::string &Signature) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Classes.find(Signature);
  if (It != Classes.end())
    return It->second;
  int Id = static_cast<int>(Classes.size());
  Classes.emplace(Signature, Id);
  return Id;
}

int SignatureRegistry::lookup(const std::string &Signature) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Classes.find(Signature);
  return It == Classes.end() ? -1 : It->second;
}

size_t SignatureRegistry::numClasses() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Classes.size();
}

TrainingSample Profiler::measure(const std::vector<double> &Input,
                                 const std::vector<int> &Levels, int Phase,
                                 size_t NumPhases) {
  TraceSpan Span("profiler.measure", "profiler");
  Span.arg("phase", static_cast<double>(Phase));

  const RunResult &Exact = Golden.exactRun(Input);
  size_t Nominal = Exact.OuterIterations;

  PhaseSchedule Schedule =
      Phase == AllPhases
          ? PhaseSchedule::uniform(NumPhases, Levels)
          : PhaseSchedule::singlePhase(NumPhases,
                                       static_cast<size_t>(Phase), Levels);
  RunResult Approx = App.run(Input, Schedule, Nominal);
  RunCount.fetch_add(1, std::memory_order_relaxed);
  ProfilerMetrics::get().Runs.add();
  ProfilerMetrics::get().RunMs.record(Span.seconds() * 1e3);

  TrainingSample S;
  S.Input = Input;
  S.Levels = Levels;
  S.Phase = Phase;
  S.Speedup = speedupOf(Exact.WorkUnits, Approx.WorkUnits);
  S.QosDegradation = App.qosDegradation(Exact, Approx);
  S.OuterIterations = static_cast<double>(Approx.OuterIterations);
  S.ControlFlowClass = Registry.classOf(Exact.ControlFlowSignature);
  return S;
}

TrainingSet Profiler::collect(const std::vector<std::vector<double>> &Inputs,
                              const ProfileOptions &Opts) {
  assert(Opts.NumPhases >= 1 && "need at least one phase");
  ProfilerMetrics &Metrics = ProfilerMetrics::get();
  TraceSpan CollectSpan("profiler.collect", "profiler");
  CollectSpan.arg("inputs", static_cast<double>(Inputs.size()));
  size_t HitsBefore = Golden.hits();
  size_t MissesBefore = Golden.misses();
  ThreadPool Pool(ThreadPool::resolveWorkers(Opts.NumThreads));

  // Golden runs first, in parallel across inputs: they are the serial
  // bottleneck of the sweep (every measurement needs its input's exact
  // run) and each is computed once under the cache's entry latch.
  {
    TraceSpan GoldenSpan("profiler.golden_prologue", "profiler");
    Pool.parallelFor(Inputs.size(),
                     [&](size_t I) { (void)Golden.exactRun(Inputs[I]); });
  }

  // Register control flow in input order so class ids are deterministic
  // (first-seen order must not depend on worker interleaving). This also
  // ensures classifier training sees every class even if a config
  // crashes out later.
  for (const std::vector<double> &Input : Inputs)
    (void)Registry.classOf(Golden.exactRun(Input).ControlFlowSignature);

  // Materialize the whole sweep as an indexed task list, consuming the
  // sampling RNG sequentially in input order. Plans are fixed before any
  // measurement runs, so they cannot depend on execution order.
  struct MeasureTask {
    const std::vector<double> *Input;
    std::vector<int> Levels;
    int Phase;
  };
  std::vector<MeasureTask> Tasks;
  Rng SampleRng(Opts.Seed);
  for (size_t I = 0; I < Inputs.size(); ++I) {
    SamplingPlan Plan =
        makeSamplingPlan(App.maxLevels(), Opts.RandomJointSamples, SampleRng);
    Plan.forEach([&](const std::vector<int> &Levels) {
      for (size_t Phase = 0; Phase < Opts.NumPhases; ++Phase)
        Tasks.push_back({&Inputs[I], Levels, static_cast<int>(Phase)});
      if (Opts.IncludeAllPhaseRuns)
        Tasks.push_back({&Inputs[I], Levels, AllPhases});
    });
  }

  // Fan the measurements out. Each task writes its preassigned slot, so
  // the assembled set is in task order regardless of completion order.
  std::vector<TrainingSample> Samples(Tasks.size());
  std::atomic<size_t> Completed{0};
  std::mutex ObserverMutex;
  Pool.parallelFor(Tasks.size(), [&](size_t T) {
    const MeasureTask &Task = Tasks[T];
    Samples[T] = measure(*Task.Input, Task.Levels, Task.Phase, Opts.NumPhases);
    if (Opts.Observer) {
      // The snapshot is assembled entirely from atomics -- the same ones
      // the telemetry layer exports -- before ObserverMutex is taken, so
      // the callback runs with no profiler-internal lock held (see the
      // threading contract on ProfileObserver in Profiler.h).
      size_t Done = Completed.fetch_add(1, std::memory_order_relaxed) + 1;
      ProfileProgress Progress;
      Progress.RunsCompleted = Done;
      Progress.TotalRuns = Tasks.size();
      Progress.GoldenCacheHits = Golden.hits();
      Progress.GoldenCacheMisses = Golden.misses();
      Progress.ElapsedSeconds = CollectSpan.seconds();
      std::lock_guard<std::mutex> Lock(ObserverMutex);
      Opts.Observer(Progress);
    }
  });

  Metrics.GoldenHits.add(Golden.hits() - HitsBefore);
  Metrics.GoldenMisses.add(Golden.misses() - MissesBefore);
  Metrics.CollectMs.record(CollectSpan.seconds() * 1e3);
  CollectSpan.arg("tasks", static_cast<double>(Tasks.size()));

  TrainingSet Set;
  for (TrainingSample &S : Samples)
    Set.add(std::move(S));
  return Set;
}
