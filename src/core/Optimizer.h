//===- core/Optimizer.h - Budget allocation + phase search -----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 2 of the paper: sort phases by ROI, hand each a share of
/// the remaining QoS degradation budget proportional to its normalized
/// ROI, exhaustively search that phase's discrete level space for the
/// predicted-speedup-maximizing configuration whose conservative QoS
/// stays within the sub-budget, and let unused budget flow to later
/// phases.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_OPTIMIZER_H
#define OPPROX_CORE_OPTIMIZER_H

#include "core/AppModel.h"
#include "approx/PhaseSchedule.h"

namespace opprox {

class ThreadPool;

struct OptimizeOptions {
  /// Confidence level for the conservative bounds (paper: p = 0.99).
  double ConfidenceP = 0.99;
  /// Use conservative bounds (upper QoS / lower speedup). Turning this
  /// off is the ablation of Sec. "confidence analysis".
  bool Conservative = true;
  /// Run the retained scalar reference scan instead of the batched one.
  /// Exists for equivalence testing and benchmarking; both paths return
  /// bit-identical decisions.
  bool UseNaiveScan = false;
  /// Skip odometer subtrees whose certified QoS floor exceeds the
  /// budget. Pruning only removes provably infeasible configurations,
  /// so it never changes the decision; off is for diagnostics.
  bool Prune = true;
  /// Configurations predicted per model-batch call. Must be positive;
  /// 0 is a caller bug and fails loudly (reportFatalError) in every
  /// build type.
  size_t BatchSize = 256;
  /// Enumeration-index span each scan task claims. 0 (the default)
  /// auto-sizes chunks from the space size and the resolved executor
  /// count -- enough chunks that every executor gets several, rounded
  /// to whole batches -- so large spaces actually engage the whole
  /// pool. A positive value pins the geometry explicitly. Either way
  /// the decision (and the search stats) are chunking-invariant: the
  /// reduction replays the serial scan's first-best-wins order, and a
  /// subtree clipped at a chunk boundary is re-pruned from the next
  /// chunk's start.
  size_t ChunkSize = 0;
  /// Worker threads for the per-phase scan when \c Pool is null:
  /// 1 = serial, 0 = auto (OPPROX_THREADS, else hardware concurrency).
  size_t NumThreads = 1;
  /// Externally owned pool to run the scan on (serving processes keep
  /// one warm pool instead of spawning threads per request).
  ThreadPool *Pool = nullptr;
};

/// What the optimizer decided for one phase.
struct PhaseDecision {
  std::vector<int> Levels;
  double PredictedSpeedup = 1.0;
  double PredictedQos = 0.0;
  double AllocatedBudget = 0.0;
};

/// Search-effort accounting for one or more phase scans.
struct PhaseSearchStats {
  /// Configurations covered by the search (the full space, whether
  /// visited individually or discharged by a subtree skip).
  size_t ConfigsEvaluated = 0;
  /// Configurations discharged by certified subtree pruning.
  size_t ConfigsPruned = 0;
  /// Configurations actually routed through the prediction models.
  size_t ConfigsScored = 0;
};

/// Full optimization outcome.
struct OptimizationResult {
  PhaseSchedule Schedule{1, 1};
  std::vector<PhaseDecision> Decisions; // Indexed by phase.
  /// Initial normalized ROI share per phase (the paper reports these,
  /// e.g. 0.166/0.17/0.265/0.399 for LULESH).
  std::vector<double> NormalizedRoi;
  /// Phases that fell back to the exact configuration (rung 3 of the
  /// degradation ladder, docs/RELIABILITY.md), in ascending phase
  /// order. Carried per result -- not just in the process-wide
  /// runtime.degraded_phases counter -- so concurrent hosts (the
  /// opprox-serve shards) can report degradation per response without
  /// racing on counter deltas.
  std::vector<size_t> DegradedPhases;
  size_t ConfigsEvaluated = 0;
  size_t ConfigsPruned = 0;
  size_t ConfigsScored = 0;
};

/// Searches one phase: maximize predicted speedup subject to the
/// conservative QoS staying within \p Budget. Returns the all-exact
/// decision when nothing fits. The decision is identical -- bit for bit,
/// including ties, which resolve to the earliest configuration in
/// enumeration order -- for every combination of Opts.UseNaiveScan,
/// Prune, BatchSize, ChunkSize, and worker count.
PhaseDecision optimizePhase(const PhaseModels &Models,
                            const std::vector<double> &Input,
                            const std::vector<int> &MaxLevels, double Budget,
                            const OptimizeOptions &Opts,
                            PhaseSearchStats &Stats);

/// Back-compat wrapper tracking only the evaluated-config count.
PhaseDecision optimizePhase(const PhaseModels &Models,
                            const std::vector<double> &Input,
                            const std::vector<int> &MaxLevels, double Budget,
                            const OptimizeOptions &Opts,
                            size_t &ConfigsEvaluated);

/// Algorithm 2 over all phases.
OptimizationResult optimizeSchedule(const AppModel &Model,
                                    const std::vector<double> &Input,
                                    const std::vector<int> &MaxLevels,
                                    double QosBudget,
                                    const OptimizeOptions &Opts);

/// Algorithm 2 restricted to phases [FirstPhase, numPhases): the online
/// controller's re-solve primitive. Phases before \p FirstPhase -- the
/// ones a run has already executed -- come back exact (level 0,
/// default-constructed decisions, zero ROI share); ROI normalization,
/// the visiting order, and budget flow-down all operate over the tail
/// only. With FirstPhase == 0 this is bit-identical to
/// optimizeSchedule (same operations in the same order), and
/// FirstPhase >= numPhases is a caller bug reported fatally.
OptimizationResult optimizeScheduleTail(const AppModel &Model,
                                        const std::vector<double> &Input,
                                        const std::vector<int> &MaxLevels,
                                        double QosBudget, size_t FirstPhase,
                                        const OptimizeOptions &Opts);

} // namespace opprox

#endif // OPPROX_CORE_OPTIMIZER_H
