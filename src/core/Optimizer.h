//===- core/Optimizer.h - Budget allocation + phase search -----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Algorithm 2 of the paper: sort phases by ROI, hand each a share of
/// the remaining QoS degradation budget proportional to its normalized
/// ROI, exhaustively search that phase's discrete level space for the
/// predicted-speedup-maximizing configuration whose conservative QoS
/// stays within the sub-budget, and let unused budget flow to later
/// phases.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_OPTIMIZER_H
#define OPPROX_CORE_OPTIMIZER_H

#include "core/AppModel.h"
#include "approx/PhaseSchedule.h"

namespace opprox {

struct OptimizeOptions {
  /// Confidence level for the conservative bounds (paper: p = 0.99).
  double ConfidenceP = 0.99;
  /// Use conservative bounds (upper QoS / lower speedup). Turning this
  /// off is the ablation of Sec. "confidence analysis".
  bool Conservative = true;
};

/// What the optimizer decided for one phase.
struct PhaseDecision {
  std::vector<int> Levels;
  double PredictedSpeedup = 1.0;
  double PredictedQos = 0.0;
  double AllocatedBudget = 0.0;
};

/// Full optimization outcome.
struct OptimizationResult {
  PhaseSchedule Schedule{1, 1};
  std::vector<PhaseDecision> Decisions; // Indexed by phase.
  /// Initial normalized ROI share per phase (the paper reports these,
  /// e.g. 0.166/0.17/0.265/0.399 for LULESH).
  std::vector<double> NormalizedRoi;
  size_t ConfigsEvaluated = 0;
};

/// Searches one phase: maximize predicted speedup subject to the
/// conservative QoS staying within \p Budget. Returns the all-exact
/// decision when nothing fits.
PhaseDecision optimizePhase(const PhaseModels &Models,
                            const std::vector<double> &Input,
                            const std::vector<int> &MaxLevels, double Budget,
                            const OptimizeOptions &Opts,
                            size_t &ConfigsEvaluated);

/// Algorithm 2 over all phases.
OptimizationResult optimizeSchedule(const AppModel &Model,
                                    const std::vector<double> &Input,
                                    const std::vector<int> &MaxLevels,
                                    double QosBudget,
                                    const OptimizeOptions &Opts);

} // namespace opprox

#endif // OPPROX_CORE_OPTIMIZER_H
