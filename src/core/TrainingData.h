//===- core/TrainingData.h - Profiling samples -----------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The training records OPPROX collects while profiling an application
/// (paper Sec. 3.3): per run, the input parameters, the approximation
/// levels applied, the phase they were applied in, and the measured
/// speedup / QoS degradation / outer-loop iteration count.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_TRAININGDATA_H
#define OPPROX_CORE_TRAININGDATA_H

#include "support/Error.h"
#include <functional>
#include <string>
#include <vector>

namespace opprox {

/// Phase value meaning "approximation applied across all phases".
constexpr int AllPhases = -1;

/// One profiled run.
struct TrainingSample {
  std::vector<double> Input; ///< Application input parameters.
  std::vector<int> Levels;   ///< ALs applied in the approximated phase.
  int Phase = AllPhases;     ///< Phase approximated; AllPhases = uniform.
  double Speedup = 1.0;
  double QosDegradation = 0.0;
  double OuterIterations = 0.0;
  int ControlFlowClass = 0;
};

/// A bag of training samples with filtering and CSV round-trip.
class TrainingSet {
public:
  void add(TrainingSample Sample) { Samples.push_back(std::move(Sample)); }

  size_t size() const { return Samples.size(); }
  bool empty() const { return Samples.empty(); }
  const TrainingSample &operator[](size_t I) const { return Samples[I]; }
  const std::vector<TrainingSample> &samples() const { return Samples; }

  /// Samples satisfying \p Keep, as a new set.
  TrainingSet filter(
      const std::function<bool(const TrainingSample &)> &Keep) const;

  /// Samples approximated in \p Phase (use AllPhases for uniform runs).
  TrainingSet forPhase(int Phase) const;

  /// Samples with the given control-flow class.
  TrainingSet forClass(int ControlFlowClass) const;

  /// CSV with a header naming every column. \p InputNames and
  /// \p BlockNames label the input and level columns.
  std::string toCsv(const std::vector<std::string> &InputNames,
                    const std::vector<std::string> &BlockNames) const;

  /// Parses a CSV produced by toCsv. Fails on malformed rows.
  static Expected<TrainingSet> fromCsv(const std::string &Csv,
                                       size_t NumInputs, size_t NumBlocks);

private:
  std::vector<TrainingSample> Samples;
};

} // namespace opprox

#endif // OPPROX_CORE_TRAININGDATA_H
