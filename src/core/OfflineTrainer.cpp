//===- core/OfflineTrainer.cpp --------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/OfflineTrainer.h"
#include "support/Log.h"
#include "support/Telemetry.h"
#include "support/Version.h"

using namespace opprox;

OfflineTrainer::Result OfflineTrainer::train(const ApproxApp &App,
                                             const OpproxTrainOptions &Opts) {
  // The before/after diff of the monotone metrics becomes the artifact's
  // training_metrics provenance: what this training actually cost.
  MetricsSummary Before = MetricsRegistry::global().monotoneSummary();
  TraceSpan TrainSpan("train.total", "train");

  Result R;
  R.Golden = std::make_unique<GoldenCache>(App);

  Profiler Prof(App, *R.Golden);

  std::vector<std::vector<double>> Inputs = Opts.TrainingInputs.empty()
                                                ? App.trainingInputs()
                                                : Opts.TrainingInputs;
  assert(!Inputs.empty() && "no training inputs");

  // Phase count: fixed or detected via Algorithm 1 on the first
  // representative input.
  size_t NumPhases = Opts.NumPhases;
  if (NumPhases == 0) {
    TraceSpan Span("train.phase_detect", "train");
    NumPhases = detectPhaseCount(Prof, Inputs.front(), Opts.PhaseDetection);
    logDebug("phase detection settled on %zu phases", NumPhases);
  }

  ProfileOptions ProfileOpts = Opts.Profiling;
  ProfileOpts.NumPhases = NumPhases;
  {
    TraceSpan Span("train.profile", "train");
    R.Data = Prof.collect(Inputs, ProfileOpts);
  }
  logDebug("profiling produced %zu samples from %zu runs", R.Data.size(),
           Prof.runsPerformed());

  R.Artifact.AppName = App.name();
  R.Artifact.ParameterNames = App.parameterNames();
  R.Artifact.MaxLevels = App.maxLevels();
  R.Artifact.DefaultInput = App.defaultInput();
  {
    TraceSpan Span("train.model_build", "train");
    R.Artifact.Model = ModelBuilder::build(R.Data, NumPhases, App.numBlocks(),
                                           Opts.ModelBuild);
  }
  if (Opts.BudgetGrid.Enabled) {
    // Schema 1.2: solve the common-budget sweep per control-flow class
    // now so serving resolves those budgets by lookup. Each point is the
    // same Algorithm-2 search the runtime's miss path runs, which is
    // what makes grid hits bit-identical.
    TraceSpan Span("train.budget_grid", "train");
    R.Artifact.BudgetGrids =
        computeBudgetGrids(R.Artifact.Model, R.Artifact.MaxLevels,
                           R.Artifact.DefaultInput, Inputs, Opts.BudgetGrid);
    size_t Points = 0;
    for (const BudgetGrid &Grid : R.Artifact.BudgetGrids)
      Points += Grid.Points.size();
    logDebug("budget-grid sweep stored %zu points across %zu classes",
             Points, R.Artifact.BudgetGrids.size());
  }

  R.Artifact.Provenance.LibraryVersion = opproxVersion();
  R.Artifact.Provenance.ProfileSeed = Opts.Profiling.Seed;
  R.Artifact.Provenance.ModelSeed = Opts.ModelBuild.Seed;
  R.Artifact.Provenance.TrainingRuns = Prof.runsPerformed();
  R.Artifact.Provenance.RandomJointSamples = Opts.Profiling.RandomJointSamples;
  R.Artifact.Provenance.PhaseCountDetected = Opts.NumPhases == 0;

  MetricsRegistry::global()
      .histogram("train.total_ms")
      .record(TrainSpan.seconds() * 1e3);
  R.Artifact.Provenance.TrainingMetrics = MetricsRegistry::diffSummary(
      Before, MetricsRegistry::global().monotoneSummary());
  return R;
}
