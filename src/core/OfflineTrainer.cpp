//===- core/OfflineTrainer.cpp --------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/OfflineTrainer.h"
#include "support/Version.h"

using namespace opprox;

OfflineTrainer::Result OfflineTrainer::train(const ApproxApp &App,
                                             const OpproxTrainOptions &Opts) {
  Result R;
  R.Golden = std::make_unique<GoldenCache>(App);

  Profiler Prof(App, *R.Golden);

  std::vector<std::vector<double>> Inputs = Opts.TrainingInputs.empty()
                                                ? App.trainingInputs()
                                                : Opts.TrainingInputs;
  assert(!Inputs.empty() && "no training inputs");

  // Phase count: fixed or detected via Algorithm 1 on the first
  // representative input.
  size_t NumPhases = Opts.NumPhases;
  if (NumPhases == 0)
    NumPhases = detectPhaseCount(Prof, Inputs.front(), Opts.PhaseDetection);

  ProfileOptions ProfileOpts = Opts.Profiling;
  ProfileOpts.NumPhases = NumPhases;
  R.Data = Prof.collect(Inputs, ProfileOpts);

  R.Artifact.AppName = App.name();
  R.Artifact.ParameterNames = App.parameterNames();
  R.Artifact.MaxLevels = App.maxLevels();
  R.Artifact.DefaultInput = App.defaultInput();
  R.Artifact.Model = ModelBuilder::build(R.Data, NumPhases, App.numBlocks(),
                                         Opts.ModelBuild);
  R.Artifact.Provenance.LibraryVersion = opproxVersion();
  R.Artifact.Provenance.ProfileSeed = Opts.Profiling.Seed;
  R.Artifact.Provenance.ModelSeed = Opts.ModelBuild.Seed;
  R.Artifact.Provenance.TrainingRuns = Prof.runsPerformed();
  R.Artifact.Provenance.RandomJointSamples = Opts.Profiling.RandomJointSamples;
  R.Artifact.Provenance.PhaseCountDetected = Opts.NumPhases == 0;
  return R;
}
