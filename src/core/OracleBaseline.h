//===- core/OracleBaseline.h - Phase-agnostic oracle search ----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline of paper Sec. 5.3: a phase-agnostic
/// exhaustive search (as in Sidiroglou et al. and Capri) that *actually
/// runs* every level combination uniformly across the whole execution
/// and picks the best true speedup whose true QoS degradation fits the
/// budget. It is an oracle -- it sees ground truth, not models -- so
/// beating it at tight budgets demonstrates the value of phase
/// awareness, not of better prediction.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_ORACLEBASELINE_H
#define OPPROX_CORE_ORACLEBASELINE_H

#include "apps/ApproxApp.h"

namespace opprox {

/// Ground-truth measurement of one uniform configuration.
struct MeasuredConfig {
  std::vector<int> Levels;
  double Speedup = 1.0;
  double QosDegradation = 0.0;
  size_t OuterIterations = 0;
};

/// Runs every level combination uniformly (phase-agnostic) and records
/// ground truth. The all-exact configuration comes first. Expensive:
/// one application run per configuration.
std::vector<MeasuredConfig>
measureAllUniformConfigs(const ApproxApp &App, GoldenCache &Golden,
                         const std::vector<double> &Input);

/// Result of the oracle selection.
struct OracleResult {
  bool FoundNonTrivial = false; ///< A config beating speedup 1 fit.
  MeasuredConfig Best;          ///< All-exact when nothing fit.
  size_t ConfigsSearched = 0;
};

/// Picks the measured configuration with maximum speedup subject to
/// QosDegradation <= \p QosBudget.
OracleResult selectOracle(const std::vector<MeasuredConfig> &Measured,
                          double QosBudget);

} // namespace opprox

#endif // OPPROX_CORE_ORACLEBASELINE_H
