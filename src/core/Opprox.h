//===- core/Opprox.h - The OPPROX facade -----------------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end OPPROX system (paper Fig. 6): offline training --
/// phase detection (Algorithm 1), profiling over representative inputs
/// (Sec. 3.3), control-flow classification (Sec. 3.4), and model
/// construction (Secs. 3.6-3.7) -- followed by per-budget optimization
/// (Algorithm 2) that emits a PhaseSchedule for a production input.
///
/// This facade is a thin convenience wrapper over the two halves of the
/// pipeline: OfflineTrainer (which produces a versioned OpproxArtifact)
/// and OpproxRuntime (which serves optimizations from one). Use the
/// halves directly to train and optimize in separate processes; use the
/// facade when both happen in one program, or trainCached() to
/// transparently reuse an artifact file across program runs.
///
/// Typical use:
/// \code
///   MiniLulesh App;
///   OpproxTrainOptions Opts;           // Defaults are sensible.
///   Opprox Tuner = Opprox::train(App, Opts);
///   PhaseSchedule S = Tuner.optimize(App.defaultInput(), /*budget=*/10.0);
///   EvalOutcome Truth =
///       evaluateSchedule(App, Tuner.golden(), App.defaultInput(), S);
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_OPPROX_H
#define OPPROX_CORE_OPPROX_H

#include "core/AppModel.h"
#include "core/BudgetGrid.h"
#include "core/Evaluator.h"
#include "core/Optimizer.h"
#include "core/OpproxRuntime.h"
#include "core/PhaseDetector.h"
#include "core/Profiler.h"
#include <memory>

namespace opprox {

struct OpproxTrainOptions {
  /// Phase count; 0 runs Algorithm 1 to detect it automatically.
  size_t NumPhases = 4;
  /// Algorithm 1 settings, used only when NumPhases == 0.
  PhaseDetectOptions PhaseDetection;
  /// Profiling-sweep settings: sampling density, base seed, measurement
  /// parallelism (ProfileOptions::NumThreads / OPPROX_THREADS), and the
  /// optional ProfileObserver progress hook.
  ProfileOptions Profiling;
  /// Model-construction settings: Sec.-3.7 selection policy, ROI floor,
  /// fold-shuffle seed, and fit parallelism. Seeds are derived per task
  /// (see deriveSeed), so training is deterministic for any thread
  /// count.
  ModelBuildOptions ModelBuild;
  /// Training inputs; empty uses the application's own representative
  /// set.
  std::vector<std::vector<double>> TrainingInputs;
  /// Precomputed budget-grid sweep (schema 1.2, opprox-train
  /// --budget-grid). Off by default: each grid point costs one full
  /// Algorithm-2 solve per control-flow class at training time.
  BudgetGridOptions BudgetGrid;
};

/// A trained OPPROX instance for one application.
class Opprox {
public:
  /// Offline training (Fig. 6, left half). Runs the application many
  /// times; see ProfileOptions to control the cost.
  static Opprox train(const ApproxApp &App, const OpproxTrainOptions &Opts);

  /// Loads the artifact at \p Path when it exists and matches \p App;
  /// otherwise trains from scratch and saves the artifact there. A
  /// stale or corrupt cache file is retrained and overwritten, never an
  /// error; only an unwritable path fails. Instances served from the
  /// cache have an empty trainingData() (the samples are not part of
  /// the artifact) and a fresh golden cache.
  static Expected<Opprox> trainCached(const ApproxApp &App,
                                      const OpproxTrainOptions &Opts,
                                      const std::string &Path);

  /// Finds the most profitable phase schedule for \p Input under
  /// \p QosBudget percent degradation (Algorithm 2).
  PhaseSchedule optimize(const std::vector<double> &Input, double QosBudget,
                         const OptimizeOptions &Opts = {}) const;

  /// optimize() plus the per-phase decisions and ROI shares.
  OptimizationResult optimizeDetailed(const std::vector<double> &Input,
                                      double QosBudget,
                                      const OptimizeOptions &Opts = {}) const;

  /// optimize() followed by a ground-truth validation-and-backoff pass:
  /// the assembled schedule is executed once; while its measured QoS
  /// degradation exceeds the budget, approximation is withdrawn from the
  /// lowest-ROI approximated phase and the schedule re-measured. This
  /// guards against cross-phase interactions the per-phase models cannot
  /// see (the paper optimizes each phase independently and implicitly
  /// assumes per-phase errors compose additively; on cliff-shaped QoS
  /// surfaces such as PSO's premature convergence that assumption can
  /// fail badly). An engineering extension beyond the paper -- costs at
  /// most numPhases()+1 extra application runs.
  PhaseSchedule optimizeValidated(const std::vector<double> &Input,
                                  double QosBudget,
                                  const OptimizeOptions &Opts = {}) const;

  // -- Introspection ----------------------------------------------------

  size_t numPhases() const { return Runtime.numPhases(); }
  const AppModel &model() const { return Runtime.model(); }
  const TrainingSet &trainingData() const { return Data; }
  const ApproxApp &app() const { return *App; }
  GoldenCache &golden() const { return *Golden; }
  size_t trainingRuns() const {
    return Runtime.artifact().Provenance.TrainingRuns;
  }

  /// The versioned artifact this instance optimizes from; save() it to
  /// serve the model from an OpproxRuntime elsewhere.
  const OpproxArtifact &artifact() const { return Runtime.artifact(); }

  /// The embedded online half.
  const OpproxRuntime &runtime() const { return Runtime; }

private:
  Opprox() = default;

  const ApproxApp *App = nullptr;
  std::unique_ptr<GoldenCache> Golden;
  TrainingSet Data;
  OpproxRuntime Runtime;
};

} // namespace opprox

#endif // OPPROX_CORE_OPPROX_H
