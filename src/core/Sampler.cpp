//===- core/Sampler.cpp ---------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Sampler.h"
#include "support/StringUtils.h"
#include <algorithm>
#include <cassert>

using namespace opprox;

std::vector<std::vector<int>> SamplingPlan::all() const {
  std::vector<std::vector<int>> Out;
  Out.reserve(size());
  Out.insert(Out.end(), LocalConfigs.begin(), LocalConfigs.end());
  Out.insert(Out.end(), JointConfigs.begin(), JointConfigs.end());
  return Out;
}

SamplingPlan opprox::makeSamplingPlan(const std::vector<int> &MaxLevels,
                                      size_t NumRandomJoint, Rng &Rng) {
  assert(!MaxLevels.empty() && "no blocks to sample");
  SamplingPlan Plan;

  for (size_t B = 0; B < MaxLevels.size(); ++B) {
    assert(MaxLevels[B] >= 1 && "block without approximation levels");
    for (int L = 1; L <= MaxLevels[B]; ++L) {
      std::vector<int> Config(MaxLevels.size(), 0);
      Config[B] = L;
      Plan.LocalConfigs.push_back(std::move(Config));
    }
  }

  for (size_t I = 0; I < NumRandomJoint; ++I) {
    std::vector<int> Config(MaxLevels.size(), 0);
    bool AllZero = true;
    do {
      AllZero = true;
      for (size_t B = 0; B < MaxLevels.size(); ++B) {
        Config[B] = static_cast<int>(Rng.range(0, MaxLevels[B]));
        AllZero = AllZero && Config[B] == 0;
      }
    } while (AllZero);
    Plan.JointConfigs.push_back(std::move(Config));
  }
  return Plan;
}

Expected<size_t> opprox::configSpaceSize(const std::vector<int> &MaxLevels,
                                         size_t Limit) {
  size_t Total = 1;
  for (size_t B = 0; B < MaxLevels.size(); ++B) {
    if (MaxLevels[B] < 0)
      return Error(format("block %zu has negative max level %d", B,
                          MaxLevels[B]));
    size_t Options = static_cast<size_t>(MaxLevels[B]) + 1;
    // Total * Options <= Limit, phrased without the overflowing product.
    if (Total > Limit / Options)
      return Error(format("configuration space exceeds the limit of %zu "
                          "configs at block %zu",
                          Limit, B));
    Total *= Options;
  }
  return Total;
}

ConfigCursor::ConfigCursor(std::vector<int> Max, size_t Limit)
    : MaxLevels(std::move(Max)), Current(MaxLevels.size(), 0),
      Stride(MaxLevels.size(), 1) {
  Expected<size_t> Size = configSpaceSize(MaxLevels, Limit);
  if (!Size)
    reportFatalError(Size.error());
  Total = *Size;
  for (size_t B = 1; B < MaxLevels.size(); ++B)
    Stride[B] =
        Stride[B - 1] * (static_cast<size_t>(MaxLevels[B - 1]) + 1);
}

void ConfigCursor::next() {
  assert(!Done && "next past the end");
  size_t B = 0;
  while (B < Current.size()) {
    if (Current[B] < MaxLevels[B]) {
      ++Current[B];
      std::fill(Current.begin(),
                Current.begin() + static_cast<std::ptrdiff_t>(B), 0);
      break;
    }
    ++B;
  }
  if (B == Current.size()) {
    Done = true;
    return;
  }
  ++Position;
}

void ConfigCursor::seek(size_t Index) {
  if (Index >= Total) {
    Done = true;
    return;
  }
  Done = false;
  Position = Index;
  for (size_t B = 0; B < Current.size(); ++B)
    Current[B] = static_cast<int>(
        Index / Stride[B] % (static_cast<size_t>(MaxLevels[B]) + 1));
}

void ConfigCursor::skipSubtree(size_t Digit) {
  assert(!Done && "skip past the end");
  assert(Digit < Current.size() && "skip digit out of range");
  // Next multiple of Stride[Digit] strictly above the current position:
  // zeroes digits below Digit and bumps Digit (with carry).
  seek((Position / Stride[Digit] + 1) * Stride[Digit]);
}

std::vector<std::vector<int>>
opprox::enumerateAllConfigs(const std::vector<int> &MaxLevels, size_t Limit) {
  Expected<size_t> Total = configSpaceSize(MaxLevels, Limit);
  if (!Total)
    reportFatalError(Total.error());
  std::vector<std::vector<int>> Out;
  Out.reserve(*Total);
  for (ConfigCursor Cursor(MaxLevels, Limit); !Cursor.done(); Cursor.next())
    Out.push_back(Cursor.levels());
  assert(Out.size() == *Total && "enumeration miscounted");
  return Out;
}
