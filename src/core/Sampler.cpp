//===- core/Sampler.cpp ---------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/Sampler.h"
#include <algorithm>
#include <cassert>

using namespace opprox;

std::vector<std::vector<int>> SamplingPlan::all() const {
  std::vector<std::vector<int>> Out = LocalConfigs;
  Out.insert(Out.end(), JointConfigs.begin(), JointConfigs.end());
  return Out;
}

SamplingPlan opprox::makeSamplingPlan(const std::vector<int> &MaxLevels,
                                      size_t NumRandomJoint, Rng &Rng) {
  assert(!MaxLevels.empty() && "no blocks to sample");
  SamplingPlan Plan;

  for (size_t B = 0; B < MaxLevels.size(); ++B) {
    assert(MaxLevels[B] >= 1 && "block without approximation levels");
    for (int L = 1; L <= MaxLevels[B]; ++L) {
      std::vector<int> Config(MaxLevels.size(), 0);
      Config[B] = L;
      Plan.LocalConfigs.push_back(std::move(Config));
    }
  }

  for (size_t I = 0; I < NumRandomJoint; ++I) {
    std::vector<int> Config(MaxLevels.size(), 0);
    bool AllZero = true;
    do {
      AllZero = true;
      for (size_t B = 0; B < MaxLevels.size(); ++B) {
        Config[B] = static_cast<int>(Rng.range(0, MaxLevels[B]));
        AllZero = AllZero && Config[B] == 0;
      }
    } while (AllZero);
    Plan.JointConfigs.push_back(std::move(Config));
  }
  return Plan;
}

std::vector<std::vector<int>>
opprox::enumerateAllConfigs(const std::vector<int> &MaxLevels, size_t Limit) {
  size_t Total = 1;
  for (int M : MaxLevels) {
    assert(M >= 0 && "negative max level");
    Total *= static_cast<size_t>(M) + 1;
    assert(Total <= Limit && "configuration space too large to enumerate");
  }
  std::vector<std::vector<int>> Out;
  Out.reserve(Total);
  std::vector<int> Current(MaxLevels.size(), 0);
  for (;;) {
    Out.push_back(Current);
    // Odometer increment.
    size_t B = 0;
    while (B < Current.size()) {
      if (Current[B] < MaxLevels[B]) {
        ++Current[B];
        std::fill(Current.begin(), Current.begin() +
                                       static_cast<std::ptrdiff_t>(B),
                  0);
        break;
      }
      ++B;
    }
    if (B == Current.size())
      break;
  }
  assert(Out.size() == Total && "enumeration miscounted");
  return Out;
}
