//===- core/PhaseDetector.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "core/PhaseDetector.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"
#include <cmath>

using namespace opprox;

double opprox::maxQosDiff(Profiler &Prof, const std::vector<double> &Input,
                          size_t NumPhases, const PhaseDetectOptions &Opts) {
  // Use the same probe configurations in every phase so phase-to-phase
  // differences reflect the phase, not the configuration.
  Rng ProbeRng(Opts.Seed);
  SamplingPlan Plan =
      makeSamplingPlan(Prof.app().maxLevels(), Opts.ProbeConfigs, ProbeRng);
  const std::vector<std::vector<int>> &Configs = Plan.JointConfigs;

  // Probe every (phase, config) pair concurrently into indexed slots,
  // then reduce serially in index order so the means are bit-identical
  // to the serial sweep.
  std::vector<double> ProbeQos(NumPhases * Configs.size(), 0.0);
  ThreadPool Pool(ThreadPool::resolveWorkers(Opts.NumThreads));
  Pool.parallelFor(ProbeQos.size(), [&](size_t T) {
    size_t Phase = T / Configs.size();
    const std::vector<int> &Levels = Configs[T % Configs.size()];
    ProbeQos[T] =
        Prof.measure(Input, Levels, static_cast<int>(Phase), NumPhases)
            .QosDegradation;
  });

  std::vector<double> MeanQosPerPhase(NumPhases, 0.0);
  for (size_t Phase = 0; Phase < NumPhases; ++Phase) {
    RunningStats Stats;
    for (size_t C = 0; C < Configs.size(); ++C)
      Stats.add(ProbeQos[Phase * Configs.size() + C]);
    MeanQosPerPhase[Phase] = Stats.mean();
  }

  double MaxDiff = 0.0;
  for (size_t Phase = 0; Phase + 1 < NumPhases; ++Phase)
    MaxDiff = std::max(MaxDiff, std::fabs(MeanQosPerPhase[Phase + 1] -
                                          MeanQosPerPhase[Phase]));
  return MaxDiff;
}

size_t opprox::detectPhaseCount(Profiler &Prof,
                                const std::vector<double> &Input,
                                const PhaseDetectOptions &Opts) {
  size_t N = 2;
  double PrevDiff = maxQosDiff(Prof, Input, N, Opts);
  while (2 * N <= Opts.MaxPhases) {
    double NewDiff = maxQosDiff(Prof, Input, 2 * N, Opts);
    if (std::fabs(PrevDiff - NewDiff) <= Opts.Threshold)
      break;
    N *= 2;
    PrevDiff = NewDiff;
  }
  return N;
}
