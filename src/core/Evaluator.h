//===- core/Evaluator.h - Ground-truth schedule evaluation -----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs an application under a concrete PhaseSchedule and reports the
/// true speedup and QoS degradation -- the measurements the evaluation
/// figures plot.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CORE_EVALUATOR_H
#define OPPROX_CORE_EVALUATOR_H

#include "apps/ApproxApp.h"

namespace opprox {

/// Ground-truth outcome of running one schedule.
struct EvalOutcome {
  double Speedup = 1.0;
  double QosDegradation = 0.0;
  size_t OuterIterations = 0;
  /// Native PSNR for PSNR-metric apps; 0 otherwise.
  double Psnr = 0.0;
};

/// Executes \p Schedule on \p Input and measures against the golden run.
EvalOutcome evaluateSchedule(const ApproxApp &App, GoldenCache &Golden,
                             const std::vector<double> &Input,
                             const PhaseSchedule &Schedule);

} // namespace opprox

#endif // OPPROX_CORE_EVALUATOR_H
