//===- serve/Server.h - Multi-threaded optimize-request server -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The network serving tier (ROADMAP item 1): a TCP server that answers
/// optimize requests over the newline-delimited JSON protocol of
/// serve/WireProtocol.h, embedded by tools/opprox-serve and driven
/// directly by the serving tests. Operational semantics -- hot swap,
/// shedding, drain, capacity planning -- are documented in
/// docs/SERVING.md.
///
/// Architecture (one box per thread, all on one ThreadPool):
///
///   acceptor ──round-robin──> shard 0 ── poll loop over its connections
///                             shard 1 ── parse -> tryOptimizeDetailed
///                             ...        -> respond, strictly in order
///
///  - **Shards.** Each accepted connection is pinned to one worker
///    shard; a shard owns its connections outright, so request handling
///    needs no locks on the hot path and responses on one connection
///    are always in request order.
///  - **Bounded queues + shedding.** The acceptor sheds new connections
///    when every shard is at MaxConnectionsPerShard, and a shard sheds
///    pipelined requests beyond QueueCapacity -- both as structured
///    `overloaded` error responses, counted into serve.shed. Overload
///    degrades throughput, never latency of admitted work.
///  - **Hostile-client bounds.** Per-connection read timeouts
///    (serve.timeouts) and a per-request size cap (serve.oversized)
///    guarantee a stalled or streaming client cannot pin a shard.
///  - **Atomic hot swap.** hotSwap() reloads every resident artifact
///    through OpproxRuntime::loadArtifact (bounded retry, then the
///    last-known-good cache) and swaps the app->runtime table in one
///    shared_ptr store. In-flight requests keep the table they started
///    with: a swap under load loses no requests.
///  - **Drain on shutdown.** shutdown() stops the acceptor, lets every
///    shard answer the requests already buffered on its connections,
///    then closes and joins.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SERVE_SERVER_H
#define OPPROX_SERVE_SERVER_H

#include "core/OpproxRuntime.h"
#include "support/Socket.h"
#include <memory>
#include <string>
#include <vector>

namespace opprox {
namespace serve {

/// One artifact to serve: the application name clients address in the
/// "app" request member, and the artifact path reloaded on hot swap.
/// An empty Name takes the AppName recorded inside the artifact.
struct ServeAppConfig {
  std::string Name;
  std::string Path;
};

struct ServeOptions {
  /// Listen address. The default serves loopback only; widen it
  /// deliberately (docs/SERVING.md, "Capacity planning and exposure").
  std::string BindAddress = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back with port()).
  uint16_t Port = 0;
  /// Worker shards; 0 = auto (OPPROX_THREADS, else hardware threads).
  size_t Shards = 0;
  /// Pipelined requests a shard accepts per poll cycle before shedding
  /// the excess with `overloaded` responses.
  size_t QueueCapacity = 64;
  /// Connections a shard owns before the acceptor sheds new ones.
  size_t MaxConnectionsPerShard = 128;
  /// A connection idle longer than this is closed (serve.timeouts).
  long ReadTimeoutMs = 30000;
  /// Hard per-request size cap; beyond it the connection is answered
  /// with `oversized` and closed (serve.oversized).
  size_t MaxRequestBytes = 1 << 20;
  /// Artifact (re)load policy: bounded retry, then last-known-good.
  ArtifactLoadOptions Load;
  /// Schedule-cache configuration applied to every loaded runtime (and
  /// to every runtime a hot swap loads). Defaults honor the
  /// OPPROX_CACHE_* environment overrides; the CLI flags override both.
  /// Each artifact's cache lives exactly as long as its runtime, so a
  /// hot swap starts cold instead of ever serving a stale schedule.
  PlannerOptions Planner = plannerOptionsFromEnv();
  /// Base optimizer options for every request; the request's
  /// confidence/aggressive members override the corresponding fields.
  /// Request-level options stay serial (NumThreads is forced to 1):
  /// request concurrency comes from shards. Cache-miss solves can still
  /// fan their chunked scan across the planner's shared scan pool when
  /// Planner.ScanThreads asks for one (--scan-threads); the pool is
  /// injected at the compute layer, below the per-request options.
  OptimizeOptions Optimize;
  /// Slow-request sampling: every shard logs its SlowRequestTopN slowest
  /// requests per SlowRequestWindow served requests, with the full
  /// parse/plan/lookup/compute/serialize breakdown, plus one
  /// seed-deterministic spotlight request per window as an unbiased
  /// baseline. Window 0 disables the sampler.
  size_t SlowRequestWindow = 256;
  size_t SlowRequestTopN = 3;
  uint64_t SlowRequestSeed = 42;
  /// Opt-in for the per-request "feedback" member (--online-control):
  /// when set, a request carrying observed per-phase QoS values is
  /// replayed through an OnlineController over the resident artifact
  /// and answered with the corrected remaining-phase schedule. Off by
  /// default -- feedback ingestion costs a controller replay per
  /// request, and hosts that never send feedback should not expose the
  /// surface.
  bool OnlineControl = false;
};

/// A running server. Construction through start() binds, loads every
/// artifact, and spawns the acceptor + shard threads; the destructor
/// drains and joins.
class Server {
public:
  /// Loads all \p Apps (failing fast if any artifact is unreadable or
  /// two share a name) and starts serving.
  static Expected<std::unique_ptr<Server>> start(std::vector<ServeAppConfig> Apps,
                                                 ServeOptions Opts);

  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// The bound TCP port (resolves ephemeral Port = 0).
  uint16_t port() const;
  size_t numShards() const;

  /// Resident application names, sorted.
  std::vector<std::string> appNames() const;

  /// Reloads every resident artifact from its configured path and
  /// atomically publishes the new table; requests already dispatched
  /// keep the old one. An artifact whose reload fails every rung keeps
  /// its current version (counted into serve.hot_swap_failures).
  /// Returns the number of artifacts that reloaded.
  size_t hotSwap();

  /// Drains and stops: no new connections, buffered requests answered,
  /// then all threads joined. Idempotent.
  void shutdown();

private:
  struct Impl;
  explicit Server(std::unique_ptr<Impl> Impl);
  std::unique_ptr<Impl> I;
};

} // namespace serve
} // namespace opprox

#endif // OPPROX_SERVE_SERVER_H
