//===- serve/WireProtocol.h - opprox-serve wire protocol -------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The newline-delimited JSON wire protocol of the serving tier. One
/// request per line, one response line per request, in order. The full
/// specification -- field semantics, error codes, framing rules -- is
/// docs/SERVING.md; this header is its implementation.
///
/// Request:
///
///   {"budget": 10, "app": "pso", "input": [30,5], "id": 7,
///    "confidence": 0.99, "aggressive": false}
///
/// Success response ("result" is byte-identical to the JSON document
/// `opprox-optimize --json` prints for the same artifact and request,
/// because both sides build it with optimizationResultJson()):
///
///   {"id": 7, "ok": true, "result": {...}}
///
/// Error response:
///
///   {"id": 7, "ok": false, "error": {"code": "bad_request",
///    "message": "..."}}
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SERVE_WIREPROTOCOL_H
#define OPPROX_SERVE_WIREPROTOCOL_H

#include "core/ModelArtifact.h"
#include "core/Optimizer.h"
#include "support/Json.h"
#include <optional>
#include <string>
#include <vector>

namespace opprox {
namespace serve {

/// Machine-readable failure classes of an error response. String values
/// are part of the wire contract (docs/SERVING.md) -- never renumber or
/// rename.
namespace errc {
inline constexpr const char *ParseError = "parse_error";   ///< Line is not valid JSON.
inline constexpr const char *BadRequest = "bad_request";   ///< Schema/value violation.
inline constexpr const char *UnknownApp = "unknown_app";   ///< No resident artifact.
inline constexpr const char *Overloaded = "overloaded";    ///< Shed by a full queue.
inline constexpr const char *Oversized = "oversized";      ///< Request exceeded the frame cap.
inline constexpr const char *Internal = "internal";        ///< Unexpected server-side failure.
} // namespace errc

/// One parsed optimize request.
struct ServeRequest {
  /// Echoed verbatim into the response ("id" member; null when absent).
  Json Id;
  /// Target application; empty selects the server's sole resident
  /// artifact (an error when several are resident).
  std::string App;
  /// QoS degradation budget in percent. Required.
  double Budget = 0.0;
  /// Input values; empty means the artifact's recorded DefaultInput.
  std::vector<double> Input;
  /// Confidence level of conservative predictions. Absent defers to the
  /// server's configured base OptimizeOptions (ServeOptions::Optimize),
  /// which is what makes the embedder's ConfidenceP a real default
  /// rather than one a member-less request silently overrides.
  std::optional<double> Confidence;
  /// Point predictions instead of conservative bounds; absent defers to
  /// the server's configured base OptimizeOptions.
  std::optional<bool> Aggressive;
  /// `"stats": true` turns the line into a statistics probe: the server
  /// answers with the full metrics snapshot (plus a "cache" rollup)
  /// instead of running an optimization, and the otherwise-required
  /// budget is waived.
  bool Stats = false;
  /// `"stats": "delta"` asks for the windowed snapshot since the
  /// previous delta probe (MetricsRegistry::deltaJson) instead of the
  /// lifetime one. Implies Stats.
  bool StatsDelta = false;
  /// `"health": true` turns the line into a health probe: uptime,
  /// artifact generation, shard/connection state, and windowed shed/
  /// degraded rates summarized as ok|degraded|overloaded.
  bool Health = false;
  /// `"feedback": [qos0, qos1, ...]` -- observed per-phase QoS
  /// degradations for the phases a run has already executed, in phase
  /// order. The server replays them through an OnlineController over
  /// the resident artifact and answers with the corrected
  /// remaining-phase schedule plus a "control" member. Requires the
  /// server's --online-control opt-in; rejected as bad_request
  /// otherwise.
  std::vector<double> Feedback;
  bool HasFeedback = false;

  /// True for any probe line (stats, delta, health). Probes bypass the
  /// optimizer and are accounted in serve.probes, never in
  /// serve.requests / serve.request_ms.
  bool isProbe() const { return Stats || Health; }
};

/// Parses one request line. Malformed JSON or a schema violation comes
/// back as an Error whose message starts with the wire error code
/// followed by ": " (requestErrorCode() recovers the code), so callers
/// can build the error response without a second classification pass.
Expected<ServeRequest> parseServeRequest(const std::string &Line);

/// Splits the "code: detail" convention of parseServeRequest errors.
/// Unrecognized messages map to errc::Internal.
std::string requestErrorCode(const Error &E);

/// The canonical result document for one served optimization -- the
/// single source of truth shared by `opprox-optimize --json` and the
/// server's success responses, which is what makes the two byte-
/// identical for the same artifact and request (the equivalence suite
/// cross-checks this over a real socket).
Json optimizationResultJson(const OpproxArtifact &Artifact, double Budget,
                            const std::vector<double> &Input,
                            const OptimizationResult &Result);

/// The process-wide schedule-cache counter rollup embedded in every
/// `"stats": true` response (and usable standalone): {"cache": {"hits",
/// "misses", "negative_hits", "evictions", "grid_hits"}}.
Json cacheStatsJson();

/// Builds the success response envelope around a result document.
std::string successResponseLine(const Json &Id, Json ResultDoc);

/// Builds an error response line. \p Id may be null (unparsable
/// requests have no id to echo).
std::string errorResponseLine(const Json &Id, const std::string &Code,
                              const std::string &Message);

} // namespace serve
} // namespace opprox

#endif // OPPROX_SERVE_WIREPROTOCOL_H
