//===- serve/Server.cpp ---------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "control/OnlineController.h"
#include "serve/Observability.h"
#include "serve/WireProtocol.h"
#include "support/Log.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fcntl.h>
#include <future>
#include <map>
#include <mutex>
#include <poll.h>
#include <unistd.h>

using namespace opprox;
using namespace opprox::serve;

namespace {

using Clock = std::chrono::steady_clock;

/// The immutable app -> runtime table a hot swap republishes. Requests
/// copy the shared_ptr once and keep that snapshot for their whole
/// lifetime, which is what makes a swap lossless for in-flight work.
struct RuntimeTable {
  std::map<std::string, std::shared_ptr<const OpproxRuntime>> ByApp;
};

/// One client connection, owned by exactly one shard thread.
struct Conn {
  Socket Sock;
  LineFramer Framer;
  Clock::time_point LastActivity;

  Conn(Socket S, size_t MaxFrame)
      : Sock(std::move(S)), Framer(MaxFrame), LastActivity(Clock::now()) {}
};

/// Self-pipe a shard polls alongside its connections so the acceptor
/// (new connection) and shutdown() can interrupt a sleeping poll.
struct WakePipe {
  Socket ReadEnd;
  Socket WriteEnd;

  std::optional<Error> init() {
    int Fds[2];
    if (::pipe(Fds) != 0)
      return Error("wake pipe: pipe() failed");
    ::fcntl(Fds[0], F_SETFL, O_NONBLOCK);
    ::fcntl(Fds[1], F_SETFL, O_NONBLOCK);
    ReadEnd = Socket(Fds[0]);
    WriteEnd = Socket(Fds[1]);
    return std::nullopt;
  }

  void wake() {
    char Byte = 1;
    (void)!::write(WriteEnd.fd(), &Byte, 1);
  }

  void drain() {
    char Buf[64];
    while (::read(ReadEnd.fd(), Buf, sizeof(Buf)) > 0) {
    }
  }
};

void setNonBlocking(const Socket &Sock) {
  int Flags = ::fcntl(Sock.fd(), F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Sock.fd(), F_SETFL, Flags | O_NONBLOCK);
}

/// Strips the "code: " prefix parseServeRequest errors carry, leaving
/// the human-readable detail for the wire message field.
std::string errorDetail(const Error &E) {
  const std::string &Message = E.message();
  size_t Colon = Message.find(": ");
  std::string Code = requestErrorCode(E);
  if (Colon != std::string::npos && Message.compare(0, Colon, Code) == 0)
    return Message.substr(Colon + 2);
  return Message;
}

} // namespace

struct Server::Impl {
  ServeOptions Opts;
  std::vector<ServeAppConfig> Apps; ///< Names resolved, order preserved.
  Socket Listener;
  uint16_t Port = 0;

  std::mutex TableMutex; ///< Guards the Table pointer, not the table.
  std::shared_ptr<const RuntimeTable> Table;
  std::mutex SwapMutex; ///< Serializes concurrent hotSwap() calls.
  size_t Generation = 0;

  struct Shard {
    std::mutex IncomingMutex;
    std::vector<Socket> Incoming; ///< Handed over by the acceptor.
    WakePipe Wake;
    /// Owned + queued connections; read by the acceptor for placement.
    std::atomic<size_t> NumConns{0};
    std::vector<Conn> Conns; ///< Shard-thread private.
    /// Shard-thread private, like Conns: observe() needs no locks.
    std::unique_ptr<SlowRequestSampler> Sampler;
  };
  std::vector<std::unique_ptr<Shard>> Shards;

  /// Shutdown is two-phase: AcceptStopping stops (and shutdown() joins)
  /// the acceptor first, so no connection can be handed to a shard after
  /// that shard's final drain pass; only then does Stopping start the
  /// shard drains.
  std::atomic<bool> AcceptStopping{false};
  std::atomic<bool> Stopping{false};
  bool Joined = false;
  std::mutex JoinMutex;
  std::unique_ptr<ThreadPool> Pool;
  std::future<void> AcceptorLoop;
  std::vector<std::future<void>> Loops; ///< One per shard.

  // Cached instrument handles: the hot path touches only atomics.
  Counter &Requests = MetricsRegistry::global().counter("serve.requests");
  Counter &ShedCount = MetricsRegistry::global().counter("serve.shed");
  Counter &ErrorCount = MetricsRegistry::global().counter("serve.errors");
  Counter &Timeouts = MetricsRegistry::global().counter("serve.timeouts");
  Counter &OversizedCount =
      MetricsRegistry::global().counter("serve.oversized");
  Counter &HotSwaps = MetricsRegistry::global().counter("serve.hot_swaps");
  Counter &HotSwapFailures =
      MetricsRegistry::global().counter("serve.hot_swap_failures");
  Counter &Accepted = MetricsRegistry::global().counter("serve.connections");
  Gauge &ActiveConns =
      MetricsRegistry::global().gauge("serve.active_connections");
  Gauge &GenerationGauge =
      MetricsRegistry::global().gauge("serve.artifact_generation");
  Histogram &RequestMs =
      MetricsRegistry::global().histogram("serve.request_ms");
  /// Probe lines (stats/health) are counted here and deliberately kept
  /// out of serve.requests / serve.request_ms, so a monitoring poller
  /// cannot skew the latency statistics it reads.
  Counter &ProbeCount = MetricsRegistry::global().counter("serve.probes");
  /// Per-request stage attribution on the fine-grained sub-microsecond
  /// grid: the five stages exactly partition each request's wall clock.
  Histogram &StageParseMs = MetricsRegistry::global().histogram(
      "serve.stage_ms.parse", Histogram::stageBoundsMs());
  Histogram &StagePlanMs = MetricsRegistry::global().histogram(
      "serve.stage_ms.plan", Histogram::stageBoundsMs());
  Histogram &StageLookupMs = MetricsRegistry::global().histogram(
      "serve.stage_ms.lookup", Histogram::stageBoundsMs());
  Histogram &StageComputeMs = MetricsRegistry::global().histogram(
      "serve.stage_ms.compute", Histogram::stageBoundsMs());
  Histogram &StageSerializeMs = MetricsRegistry::global().histogram(
      "serve.stage_ms.serialize", Histogram::stageBoundsMs());
  std::atomic<size_t> TotalConns{0};

  Clock::time_point StartTime = Clock::now();
  /// Delta/health probe baselines; seeded at construction so the first
  /// probe after startup covers the window since the server came up.
  ServerProbes ProbeState;

  std::shared_ptr<const RuntimeTable> table() {
    std::lock_guard<std::mutex> Lock(TableMutex);
    return Table;
  }

  void publish(std::shared_ptr<const RuntimeTable> NewTable) {
    std::lock_guard<std::mutex> Lock(TableMutex);
    Table = std::move(NewTable);
  }

  void connOpened() {
    ActiveConns.set(static_cast<double>(
        TotalConns.fetch_add(1, std::memory_order_relaxed) + 1));
  }
  void connClosed() {
    ActiveConns.set(static_cast<double>(
        TotalConns.fetch_sub(1, std::memory_order_relaxed) - 1));
  }

  void acceptLoop();
  void shardLoop(size_t Index);
  bool handleLine(Conn &C, const std::string &Line, Shard &S,
                  size_t &CycleBudget);
  bool handleProbe(Conn &C, const ServeRequest &Req);
  bool respond(Conn &C, const std::string &Line);
};

//===----------------------------------------------------------------------===//
// Accept loop
//===----------------------------------------------------------------------===//

void Server::Impl::acceptLoop() {
  while (!AcceptStopping.load(std::memory_order_relaxed)) {
    pollfd Pfd{};
    Pfd.fd = Listener.fd();
    Pfd.events = POLLIN;
    int Rc = ::poll(&Pfd, 1, /*timeout=*/100);
    if (Rc <= 0)
      continue;

    Socket Client;
    RecvResult R = acceptConnection(Listener, Client);
    if (R.Status == IoStatus::Timeout)
      continue;
    if (R.Status != IoStatus::Ok) {
      logInfo("serve: %s", R.Message.c_str());
      continue;
    }
    Accepted.add();
    setNonBlocking(Client);

    // Round-robin placement, probing past full shards. Every shard at
    // capacity means the process is saturated: shed the connection with
    // a structured response instead of letting it queue unboundedly.
    static std::atomic<size_t> NextShard{0};
    size_t Start = NextShard.fetch_add(1, std::memory_order_relaxed);
    Shard *Target = nullptr;
    for (size_t Probe = 0; Probe < Shards.size(); ++Probe) {
      Shard &S = *Shards[(Start + Probe) % Shards.size()];
      if (S.NumConns.load(std::memory_order_relaxed) <
          Opts.MaxConnectionsPerShard) {
        Target = &S;
        break;
      }
    }
    if (!Target) {
      ShedCount.add();
      (void)sendAll(Client, errorResponseLine(Json(), errc::Overloaded,
                                              "server at connection "
                                              "capacity"));
      continue; // Client destructor closes.
    }
    Target->NumConns.fetch_add(1, std::memory_order_relaxed);
    connOpened();
    {
      std::lock_guard<std::mutex> Lock(Target->IncomingMutex);
      Target->Incoming.push_back(std::move(Client));
    }
    Target->Wake.wake();
  }
}

//===----------------------------------------------------------------------===//
// Shard loop
//===----------------------------------------------------------------------===//

bool Server::Impl::respond(Conn &C, const std::string &Line) {
  return !sendAll(C.Sock, Line).has_value();
}

/// Answers a stats/health probe line. Probes bypass the optimizer, the
/// latency histograms, and serve.requests: a monitoring poller must not
/// skew the statistics it reads. They are counted in serve.probes.
bool Server::Impl::handleProbe(Conn &C, const ServeRequest &Req) {
  ProbeCount.add();
  Json Doc;
  if (Req.Health) {
    HealthContext Ctx;
    Ctx.UptimeS =
        std::chrono::duration<double>(Clock::now() - StartTime).count();
    Ctx.ArtifactGeneration = static_cast<size_t>(GenerationGauge.value());
    Ctx.Shards = Shards.size();
    Ctx.ActiveConnections = TotalConns.load(std::memory_order_relaxed);
    Ctx.ConnectionCapacity = Shards.size() * Opts.MaxConnectionsPerShard;
    for (const auto &[Name, Unused] : table()->ByApp)
      Ctx.Apps.push_back(Name);
    Doc = ProbeState.health(Ctx);
  } else if (Req.StatsDelta) {
    Doc = ProbeState.statsDelta();
  } else {
    Doc = statsSnapshotJson();
  }
  return respond(C, successResponseLine(Req.Id, std::move(Doc)));
}

/// Parses and serves one request line, or sheds it when the shard's
/// per-cycle budget is spent. Never throws; every outcome is a response
/// line. Returns false when the response could not be (fully) written:
/// the peer may hold a truncated line, so the caller must close the
/// connection -- appending anything after a partial write would corrupt
/// the in-order response stream.
///
/// Latency accounting: four timestamps partition the request exactly.
/// T0..T1 is parse, T1..T2 is the optimize interval (the planner
/// reports its lookup and compute layers precisely; the residual is
/// "plan": validation, app resolution, option merging), and T2..T3 is
/// serialize (response construction + the socket write). The stage
/// histograms therefore sum to serve.request_ms by construction.
bool Server::Impl::handleLine(Conn &C, const std::string &Line, Shard &S,
                              size_t &CycleBudget) {
  if (CycleBudget == 0) {
    Requests.add();
    ShedCount.add();
    return respond(C, errorResponseLine(Json(), errc::Overloaded,
                                        format("shard request queue full "
                                               "(capacity %zu)",
                                               Opts.QueueCapacity)));
  }
  --CycleBudget;

  TraceSpan Span("serve.request", "serve");
  Clock::time_point T0 = Clock::now();
  Expected<ServeRequest> Req = parseServeRequest(Line);
  Clock::time_point T1 = Clock::now();

  if (Req && Req->isProbe()) {
    Span.arg("probe", 1.0);
    return handleProbe(C, *Req);
  }
  Requests.add();

  // Every non-probe outcome funnels through here. \p T2 is taken by the
  // caller *before* building the response line, so serialize covers
  // construction and the write.
  PlannerStageBreakdown PB;
  auto Finish = [&](const Json &Id, Clock::time_point T2, bool IsError,
                    const std::string &Response) -> bool {
    if (IsError)
      ErrorCount.add();
    bool Sent = respond(C, Response);
    Clock::time_point T3 = Clock::now();
    auto MsBetween = [](Clock::time_point A, Clock::time_point B) {
      return std::chrono::duration<double, std::milli>(B - A).count();
    };
    double ParseMs = MsBetween(T0, T1);
    double PlanMs =
        std::max(0.0, MsBetween(T1, T2) - PB.LookupMs - PB.ComputeMs);
    double SerializeMs = MsBetween(T2, T3);
    double TotalMs = MsBetween(T0, T3);
    RequestMs.record(TotalMs);
    StageParseMs.record(ParseMs);
    StagePlanMs.record(PlanMs);
    StageLookupMs.record(PB.LookupMs);
    StageComputeMs.record(PB.ComputeMs);
    StageSerializeMs.record(SerializeMs);
    if (Span.recording()) {
      Span.arg("parse_ms", ParseMs);
      Span.arg("plan_ms", PlanMs);
      Span.arg("lookup_ms", PB.LookupMs);
      Span.arg("compute_ms", PB.ComputeMs);
      Span.arg("serialize_ms", SerializeMs);
      Span.arg("cache_hit", PB.CacheHit ? 1.0 : 0.0);
      Span.arg("grid_hit", PB.GridHit ? 1.0 : 0.0);
    }
    if (S.Sampler) {
      StageSample Sample;
      Sample.Id = Id.dump();
      Sample.TotalMs = TotalMs;
      Sample.ParseMs = ParseMs;
      Sample.PlanMs = PlanMs;
      Sample.LookupMs = PB.LookupMs;
      Sample.ComputeMs = PB.ComputeMs;
      Sample.SerializeMs = SerializeMs;
      S.Sampler->observe(Sample);
    }
    if (IsError)
      logDebug("serve: request id=%s answered with an error after %.3f ms",
               Id.dump().c_str(), TotalMs);
    return Sent;
  };

  if (!Req) {
    // Echo the caller's id even when the request is rejected: re-parse
    // the raw line for it (error path only, so no hot-path cost).
    Json Id;
    if (Expected<Json> Doc = Json::parse(Line))
      if (const Json *IdField = Doc->find("id"))
        Id = *IdField;
    Clock::time_point T2 = Clock::now();
    return Finish(Id, T2, /*IsError=*/true,
                  errorResponseLine(Id, requestErrorCode(Req.error()),
                                    errorDetail(Req.error())));
  }

  std::shared_ptr<const RuntimeTable> Snapshot = table();
  std::shared_ptr<const OpproxRuntime> Rt;
  if (Req->App.empty()) {
    if (Snapshot->ByApp.size() == 1) {
      Rt = Snapshot->ByApp.begin()->second;
    } else {
      Clock::time_point T2 = Clock::now();
      return Finish(Req->Id, T2, /*IsError=*/true,
                    errorResponseLine(Req->Id, errc::BadRequest,
                                      format("'app' is required when %zu "
                                             "artifacts are resident",
                                             Snapshot->ByApp.size())));
    }
  } else {
    auto It = Snapshot->ByApp.find(Req->App);
    if (It == Snapshot->ByApp.end()) {
      std::vector<std::string> Names;
      for (const auto &[Name, Unused] : Snapshot->ByApp)
        Names.push_back(Name);
      Clock::time_point T2 = Clock::now();
      return Finish(Req->Id, T2, /*IsError=*/true,
                    errorResponseLine(Req->Id, errc::UnknownApp,
                                      format("no artifact for '%s' "
                                             "(resident: %s)",
                                             Req->App.c_str(),
                                             join(Names, ", ").c_str())));
    }
    Rt = It->second;
  }

  const std::vector<double> &Input =
      Req->Input.empty() ? Rt->artifact().DefaultInput : Req->Input;
  // The server-configured options are the default; the request only
  // overrides the members it actually supplied.
  OptimizeOptions OptimizeOpts = Opts.Optimize;
  if (Req->Confidence)
    OptimizeOpts.ConfidenceP = *Req->Confidence;
  if (Req->Aggressive)
    OptimizeOpts.Conservative = !*Req->Aggressive;

  if (Req->HasFeedback) {
    // Online-control path: replay the observed per-phase QoS values
    // through a controller over this runtime -- its initial solve and
    // every tail re-solve route through the same shared planner as
    // plain requests, so identical feedback streams hit the schedule
    // cache and stay bit-deterministic.
    Clock::time_point T2;
    if (!Opts.OnlineControl) {
      T2 = Clock::now();
      return Finish(Req->Id, T2, /*IsError=*/true,
                    errorResponseLine(Req->Id, errc::BadRequest,
                                      "'feedback' requires the server's "
                                      "--online-control opt-in"));
    }
    if (Req->Feedback.size() > Rt->numPhases()) {
      T2 = Clock::now();
      return Finish(Req->Id, T2, /*IsError=*/true,
                    errorResponseLine(
                        Req->Id, errc::BadRequest,
                        format("'feedback' has %zu entries but the artifact "
                               "has %zu phases",
                               Req->Feedback.size(), Rt->numPhases())));
    }
    control::ControllerOptions CtrlOpts;
    CtrlOpts.Optimize = OptimizeOpts;
    Expected<control::OnlineController> Ctrl = control::OnlineController::start(
        *Rt, Input, Req->Budget, CtrlOpts);
    T2 = Clock::now();
    if (!Ctrl)
      return Finish(Req->Id, T2, /*IsError=*/true,
                    errorResponseLine(Req->Id, errc::BadRequest,
                                      Ctrl.error().message()));
    for (size_t P = 0; P < Req->Feedback.size(); ++P) {
      control::PhaseObservation Obs;
      Obs.Phase = P;
      Obs.ObservedQos = Req->Feedback[P];
      Ctrl->onPhaseComplete(Obs);
    }
    Json Doc = optimizationResultJson(Rt->artifact(), Req->Budget, Input,
                                      Ctrl->plan());
    Json Control = Json::object();
    Control.set("next_phase", Ctrl->nextPhase());
    Control.set("spent_qos", Ctrl->spentQos());
    Control.set("remaining_budget", Ctrl->remainingBudget());
    Control.set("distrust_ratio", Ctrl->distrustRatio());
    Control.set("distrusts", Ctrl->stats().Distrusts);
    Control.set("resolves", Ctrl->stats().Resolves);
    Control.set("corrections", Ctrl->stats().Corrections);
    Control.set("rejected_resolves", Ctrl->stats().RejectedResolves);
    Doc.set("control", std::move(Control));
    T2 = Clock::now();
    return Finish(Req->Id, T2, /*IsError=*/false,
                  successResponseLine(Req->Id, std::move(Doc)));
  }

  Expected<OptimizationResult> Result =
      Rt->tryOptimizeDetailed(Input, Req->Budget, OptimizeOpts, &PB);
  Clock::time_point T2 = Clock::now();
  if (!Result)
    return Finish(Req->Id, T2, /*IsError=*/true,
                  errorResponseLine(Req->Id, errc::BadRequest,
                                    Result.error().message()));
  return Finish(Req->Id, T2, /*IsError=*/false,
                successResponseLine(Req->Id,
                                    optimizationResultJson(Rt->artifact(),
                                                           Req->Budget, Input,
                                                           *Result)));
}

void Server::Impl::shardLoop(size_t Index) {
  Shard &S = *Shards[Index];
  std::vector<pollfd> Pfds;
  std::string Line;

  auto CloseConn = [&](size_t I) {
    S.Conns.erase(S.Conns.begin() + static_cast<long>(I));
    S.NumConns.fetch_sub(1, std::memory_order_relaxed);
    connClosed();
  };

  // A connection streaming fast enough that every recv returns a full
  // chunk must not pin the shard: cap the bytes one connection may read
  // per poll cycle so the loop always returns to poll() and its
  // siblings (and the idle-timeout pass) keep making progress. Whatever
  // is left stays in the kernel buffer and is served next cycle.
  constexpr size_t MaxReadBytesPerCycle = 64 * 1024;

  // One read-and-serve pass over connection I. Returns false when the
  // connection must close (EOF, error, oversized frame, or a failed
  // response write -- after a partial write the stream is unrecoverable).
  auto ServeReadable = [&](size_t I, size_t &CycleBudget) -> bool {
    Conn &C = S.Conns[I];
    std::string Chunk;
    size_t BytesThisCycle = 0;
    for (;;) {
      Chunk.clear();
      RecvResult R = recvSome(C.Sock, Chunk);
      if (R.Status == IoStatus::Timeout)
        break; // Drained the kernel buffer.
      if (R.Status == IoStatus::Eof)
        return false;
      if (R.Status == IoStatus::Failed) {
        logDebug("serve: dropping connection: %s", R.Message.c_str());
        return false;
      }
      C.LastActivity = Clock::now();
      BytesThisCycle += R.Bytes;
      if (!C.Framer.feed(Chunk.data(), Chunk.size())) {
        OversizedCount.add();
        respond(C, errorResponseLine(Json(), errc::Oversized,
                                     format("request exceeds %zu bytes",
                                            Opts.MaxRequestBytes)));
        return false;
      }
      while (C.Framer.next(Line))
        if (!handleLine(C, Line, S, CycleBudget)) {
          logDebug("serve: closing connection after failed response write");
          return false;
        }
      if (R.Bytes < 4096)
        break; // Short read: nothing more buffered right now.
      if (CycleBudget == 0 || BytesThisCycle >= MaxReadBytesPerCycle)
        break; // Fairness bound: let the other connections run.
    }
    return true;
  };

  while (true) {
    bool Draining = Stopping.load(std::memory_order_relaxed);

    // Adopt connections the acceptor handed over.
    {
      std::lock_guard<std::mutex> Lock(S.IncomingMutex);
      for (Socket &Sock : S.Incoming)
        S.Conns.emplace_back(std::move(Sock), Opts.MaxRequestBytes);
      S.Incoming.clear();
    }

    size_t CycleBudget = Opts.QueueCapacity;
    if (Draining) {
      // Final pass: answer whatever has fully arrived, then leave.
      for (size_t I = S.Conns.size(); I-- > 0;) {
        if (!ServeReadable(I, CycleBudget))
          CloseConn(I);
      }
      while (!S.Conns.empty())
        CloseConn(S.Conns.size() - 1);
      return;
    }

    Pfds.clear();
    pollfd WakePfd{};
    WakePfd.fd = S.Wake.ReadEnd.fd();
    WakePfd.events = POLLIN;
    Pfds.push_back(WakePfd);
    for (const Conn &C : S.Conns) {
      pollfd Pfd{};
      Pfd.fd = C.Sock.fd();
      Pfd.events = POLLIN;
      Pfds.push_back(Pfd);
    }
    ::poll(Pfds.data(), Pfds.size(), /*timeout=*/100);
    S.Wake.drain();

    // Serve readable connections; iterate backwards so closing one
    // never shifts an index we still need. Pfds[I + 1] pairs Conns[I].
    for (size_t I = S.Conns.size(); I-- > 0;) {
      short Re = Pfds[I + 1].revents;
      if (!(Re & (POLLIN | POLLERR | POLLHUP)))
        continue;
      if (!ServeReadable(I, CycleBudget))
        CloseConn(I);
    }

    // Enforce the read timeout on whoever is left.
    Clock::time_point Now = Clock::now();
    for (size_t I = S.Conns.size(); I-- > 0;) {
      auto IdleMs = std::chrono::duration_cast<std::chrono::milliseconds>(
                        Now - S.Conns[I].LastActivity)
                        .count();
      if (IdleMs > Opts.ReadTimeoutMs) {
        Timeouts.add();
        logDebug("serve: closing connection idle for %lld ms",
                 static_cast<long long>(IdleMs));
        CloseConn(I);
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Server lifecycle
//===----------------------------------------------------------------------===//

Server::Server(std::unique_ptr<Impl> Impl) : I(std::move(Impl)) {}

Expected<std::unique_ptr<Server>> Server::start(std::vector<ServeAppConfig> Apps,
                                                ServeOptions Opts) {
  if (Apps.empty())
    return Error("opprox-serve needs at least one artifact to serve");
  Opts.Optimize.NumThreads = 1;
  Opts.Optimize.Pool = nullptr;
  if (Opts.QueueCapacity == 0 || Opts.MaxConnectionsPerShard == 0)
    return Error("queue capacity and connection limit must be positive");

  auto ImplPtr = std::make_unique<Impl>();
  ImplPtr->Opts = Opts;

  // Load every artifact up front; a server that cannot serve its
  // configured apps should fail fast, not at the first request.
  auto NewTable = std::make_shared<RuntimeTable>();
  for (ServeAppConfig &App : Apps) {
    Expected<OpproxRuntime> Rt = OpproxRuntime::loadArtifact(App.Path,
                                                             Opts.Load);
    if (!Rt)
      return Error(format("artifact '%s': %s", App.Path.c_str(),
                          Rt.error().message().c_str()));
    Rt->configurePlanner(Opts.Planner);
    if (App.Name.empty())
      App.Name = Rt->appName();
    auto [It, Inserted] = NewTable->ByApp.emplace(
        App.Name, std::make_shared<const OpproxRuntime>(std::move(*Rt)));
    if (!Inserted)
      return Error(format("two artifacts both serve application '%s'",
                          App.Name.c_str()));
  }
  ImplPtr->Apps = std::move(Apps);
  ImplPtr->publish(std::move(NewTable));
  ImplPtr->GenerationGauge.set(0.0);

  Expected<Socket> Listener = listenTcp(Opts.BindAddress, Opts.Port);
  if (!Listener)
    return Listener.error();
  ImplPtr->Listener = std::move(*Listener);
  Expected<uint16_t> Port = boundPort(ImplPtr->Listener);
  if (!Port)
    return Port.error();
  ImplPtr->Port = *Port;

  size_t NumShards =
      Opts.Shards ? Opts.Shards : ThreadPool::defaultWorkerCount();
  for (size_t S = 0; S < NumShards; ++S) {
    auto Sh = std::make_unique<Impl::Shard>();
    if (std::optional<Error> E = Sh->Wake.init())
      return *E;
    // No sampler object at all when disabled: the request loop gates
    // its StageSample (and the id serialization) on the pointer.
    if (Opts.SlowRequestWindow > 0 && Opts.SlowRequestTopN > 0)
      Sh->Sampler = std::make_unique<SlowRequestSampler>(
          Opts.SlowRequestWindow, Opts.SlowRequestTopN, Opts.SlowRequestSeed,
          S);
    ImplPtr->Shards.push_back(std::move(Sh));
  }

  // One worker per shard plus the acceptor; the pool is dedicated to
  // these long-lived loops, so its FIFO queue is never contended.
  ImplPtr->Pool = std::make_unique<ThreadPool>(NumShards + 1);
  Impl *Raw = ImplPtr.get();
  ImplPtr->AcceptorLoop = Raw->Pool->submit([Raw] { Raw->acceptLoop(); });
  for (size_t S = 0; S < NumShards; ++S)
    ImplPtr->Loops.push_back(
        Raw->Pool->submit([Raw, S] { Raw->shardLoop(S); }));

  logInfo("serve: listening on %s:%u with %zu shards, %zu artifacts",
          Opts.BindAddress.c_str(), static_cast<unsigned>(ImplPtr->Port),
          NumShards, ImplPtr->Apps.size());
  return std::unique_ptr<Server>(new Server(std::move(ImplPtr)));
}

Server::~Server() { shutdown(); }

uint16_t Server::port() const { return I->Port; }

size_t Server::numShards() const { return I->Shards.size(); }

std::vector<std::string> Server::appNames() const {
  std::shared_ptr<const RuntimeTable> Snapshot = I->table();
  std::vector<std::string> Names;
  for (const auto &[Name, Unused] : Snapshot->ByApp)
    Names.push_back(Name);
  return Names;
}

size_t Server::hotSwap() {
  std::lock_guard<std::mutex> SwapLock(I->SwapMutex);
  std::shared_ptr<const RuntimeTable> Old = I->table();
  auto NewTable = std::make_shared<RuntimeTable>();
  size_t Reloaded = 0;
  for (const ServeAppConfig &App : I->Apps) {
    // loadArtifact walks the reliability ladder itself: bounded retry,
    // then the last-known-good cache (which startup populated), so a
    // transiently bad file on disk still reloads "successfully" with
    // the previous bytes.
    Expected<OpproxRuntime> Rt =
        OpproxRuntime::loadArtifact(App.Path, I->Opts.Load);
    if (Rt) {
      // A fresh runtime owns a fresh planner and cache: entries keyed
      // under the outgoing artifact die with it, so the swapped-in
      // model can never serve a schedule the old model computed.
      Rt->configurePlanner(I->Opts.Planner);
      NewTable->ByApp[App.Name] =
          std::make_shared<const OpproxRuntime>(std::move(*Rt));
      ++Reloaded;
    } else {
      I->HotSwapFailures.add();
      logInfo("serve: hot swap kept current '%s' artifact: %s",
              App.Name.c_str(), Rt.error().message().c_str());
      NewTable->ByApp[App.Name] = Old->ByApp.at(App.Name);
    }
  }
  I->publish(std::move(NewTable));
  I->HotSwaps.add();
  I->GenerationGauge.set(static_cast<double>(++I->Generation));
  logInfo("serve: hot swap complete, %zu/%zu artifacts reloaded "
          "(generation %zu)",
          Reloaded, I->Apps.size(), I->Generation);
  return Reloaded;
}

void Server::shutdown() {
  std::lock_guard<std::mutex> Lock(I->JoinMutex);
  if (I->Joined)
    return;
  // Stop and join the acceptor before any shard starts its final drain
  // pass: otherwise a connection accepted in the gap could land on
  // Shard::Incoming after that shard's last adoption, and be destroyed
  // with its buffered requests unanswered and its connOpened() never
  // balanced by connClosed().
  I->AcceptStopping.store(true, std::memory_order_relaxed);
  I->AcceptorLoop.wait();
  I->Stopping.store(true, std::memory_order_relaxed);
  for (auto &S : I->Shards)
    S->Wake.wake();
  for (std::future<void> &Loop : I->Loops)
    Loop.wait();
  I->Pool.reset();
  I->Joined = true;
  logInfo("serve: drained and stopped");
}
