//===- serve/Observability.cpp --------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "serve/Observability.h"
#include "serve/WireProtocol.h"
#include "support/Log.h"
#include "support/StringUtils.h"
#include <algorithm>

using namespace opprox;
using namespace opprox::serve;

Json serve::statsSnapshotJson() {
  Json Out = MetricsRegistry::global().snapshotJson();
  // Keep the document alive past the find(): the pointer aims into it.
  Json CacheDoc = cacheStatsJson();
  const Json *Cache = CacheDoc.find("cache");
  Out.set("cache", Cache ? *Cache : Json::object());
  return Out;
}

//===----------------------------------------------------------------------===//
// ServerProbes
//===----------------------------------------------------------------------===//

ServerProbes::ServerProbes()
    : DeltaBase(MetricsRegistry::global().captureBaseline()),
      HealthBase(MetricsRegistry::global().captureBaseline()) {}

Json ServerProbes::statsDelta() {
  std::lock_guard<std::mutex> Lock(Mutex);
  return MetricsRegistry::global().deltaJson(DeltaBase);
}

const char *ServerProbes::statusFor(double ShedRate, uint64_t DegradedPhases,
                                    uint64_t HotSwapFailures,
                                    uint64_t LastGoodLoads) {
  if (ShedRate > 0.05)
    return "overloaded";
  if (DegradedPhases > 0 || HotSwapFailures > 0 || LastGoodLoads > 0)
    return "degraded";
  return "ok";
}

Json ServerProbes::health(const HealthContext &Ctx) {
  MetricsBaseline Now;
  MetricsBaseline Prev;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Now = MetricsRegistry::global().captureBaseline();
    Prev = std::move(HealthBase);
    HealthBase = Now;
  }
  auto Windowed = [&](const char *Name) -> uint64_t {
    auto NowIt = Now.Counters.find(Name);
    if (NowIt == Now.Counters.end())
      return 0;
    auto PrevIt = Prev.Counters.find(Name);
    uint64_t Base = PrevIt == Prev.Counters.end() ? 0 : PrevIt->second;
    return NowIt->second >= Base ? NowIt->second - Base : 0;
  };

  double IntervalS =
      std::chrono::duration<double>(Now.TakenAt - Prev.TakenAt).count();
  uint64_t Requests = Windowed("serve.requests");
  uint64_t Shed = Windowed("serve.shed");
  uint64_t Errors = Windowed("serve.errors");
  uint64_t Degraded = Windowed("runtime.degraded_phases");
  uint64_t SwapFailures = Windowed("serve.hot_swap_failures");
  uint64_t LastGood = Windowed("runtime.artifact_last_good");
  // Shed *lines* are counted in serve.requests, but accept-time
  // connection sheds are not, so the rate uses the larger of the two as
  // denominator: a window of nothing but connection sheds still reads
  // as fully overloaded instead of dividing by zero.
  double ShedRate = Shed > 0 ? static_cast<double>(Shed) /
                                   static_cast<double>(std::max(Requests, Shed))
                             : 0.0;

  Json Window = Json::object();
  Window.set("interval_s", IntervalS);
  Window.set("requests", static_cast<double>(Requests));
  Window.set("shed", static_cast<double>(Shed));
  Window.set("errors", static_cast<double>(Errors));
  Window.set("shed_rate", ShedRate);
  Window.set("degraded_phases", static_cast<double>(Degraded));
  Window.set("hot_swap_failures", static_cast<double>(SwapFailures));
  Window.set("artifact_last_good", static_cast<double>(LastGood));

  Json Connections = Json::object();
  Connections.set("active", static_cast<double>(Ctx.ActiveConnections));
  Connections.set("capacity", static_cast<double>(Ctx.ConnectionCapacity));

  Json Health = Json::object();
  Health.set("status", statusFor(ShedRate, Degraded, SwapFailures, LastGood));
  Health.set("uptime_s", Ctx.UptimeS);
  Health.set("artifact_generation",
             static_cast<double>(Ctx.ArtifactGeneration));
  Health.set("shards", static_cast<double>(Ctx.Shards));
  Json Apps = Json::array();
  for (const std::string &App : Ctx.Apps)
    Apps.push(App);
  Health.set("apps", std::move(Apps));
  Health.set("connections", std::move(Connections));
  Health.set("window", std::move(Window));

  Json Out = Json::object();
  Out.set("health", std::move(Health));
  return Out;
}

//===----------------------------------------------------------------------===//
// SlowRequestSampler
//===----------------------------------------------------------------------===//

SlowRequestSampler::SlowRequestSampler(size_t WindowSize, size_t TopN,
                                       uint64_t Seed, size_t ShardIndex,
                                       Sink Out)
    : WindowSize(WindowSize), TopN(TopN), ShardIndex(ShardIndex),
      Out(std::move(Out)) {
  // Distinct shards with the same seed must not pick the same in-window
  // indexes in lockstep; fold the shard in, and keep the state nonzero
  // (xorshift's fixed point).
  State = Seed ^ (0x9E3779B97F4A7C15ull * (ShardIndex + 1));
  if (State == 0)
    State = 0x2545F4914F6CDD1Dull;
  if (WindowSize)
    SpotlightIndex = static_cast<size_t>(nextRandom() % WindowSize);
}

uint64_t SlowRequestSampler::nextRandom() {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1Dull;
}

void SlowRequestSampler::observe(const StageSample &S) {
  if (WindowSize == 0 || TopN == 0)
    return;
  if (SeenInWindow == SpotlightIndex) {
    Spotlight = S;
    HaveSpotlight = true;
  }
  if (Slowest.size() < TopN) {
    Slowest.push_back(S);
  } else {
    auto MinIt =
        std::min_element(Slowest.begin(), Slowest.end(),
                         [](const StageSample &A, const StageSample &B) {
                           return A.TotalMs < B.TotalMs;
                         });
    if (S.TotalMs > MinIt->TotalMs)
      *MinIt = S;
  }
  if (++SeenInWindow >= WindowSize)
    flush();
}

void SlowRequestSampler::flush() {
  // Slowest-first; break latency ties by id text so replays log
  // identically.
  std::sort(Slowest.begin(), Slowest.end(),
            [](const StageSample &A, const StageSample &B) {
              if (A.TotalMs != B.TotalMs)
                return A.TotalMs > B.TotalMs;
              return A.Id < B.Id;
            });
  auto Emit = [&](const std::string &Line) {
    if (Out)
      Out(Line);
    else
      logInfo("%s", Line.c_str());
  };
  auto Describe = [&](const char *Kind, size_t Rank, const StageSample &S) {
    return format("serve: %s shard=%zu window=%llu rank=%zu/%zu id=%s "
                  "total_ms=%.4f parse_ms=%.4f plan_ms=%.4f lookup_ms=%.4f "
                  "compute_ms=%.4f serialize_ms=%.4f",
                  Kind, ShardIndex, static_cast<unsigned long long>(Windows),
                  Rank, Slowest.size(), S.Id.c_str(), S.TotalMs, S.ParseMs,
                  S.PlanMs, S.LookupMs, S.ComputeMs, S.SerializeMs);
  };
  for (size_t I = 0; I < Slowest.size(); ++I)
    Emit(Describe("slow-request", I + 1, Slowest[I]));
  if (HaveSpotlight)
    Emit(Describe("sample-request", 0, Spotlight));

  ++Windows;
  SeenInWindow = 0;
  Slowest.clear();
  HaveSpotlight = false;
  SpotlightIndex = static_cast<size_t>(nextRandom() % WindowSize);
}
