//===- serve/Observability.h - Live serving observability ------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime-observability surface of the serving tier (docs/
/// OBSERVABILITY.md, "Live probes"): the response builders behind the
/// `{"stats": true}` / `{"stats": "delta"}` / `{"health": true}` wire
/// probes, and the seed-deterministic slow-request sampler that logs the
/// N slowest requests per window with their full stage breakdown.
///
/// Everything here reads the process-wide MetricsRegistry; the serving
/// loop stays the only writer of serve.* instruments.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SERVE_OBSERVABILITY_H
#define OPPROX_SERVE_OBSERVABILITY_H

#include "support/Json.h"
#include "support/Telemetry.h"
#include <functional>
#include <mutex>
#include <string>
#include <vector>

namespace opprox {
namespace serve {

/// The `{"stats": true}` response document: the full lifetime metrics
/// snapshot (schema "opprox-metrics-1", byte-identical to what
/// --metrics-out writes) plus the legacy "cache" counter rollup, so
/// existing stats consumers keep reading result.cache.* unchanged.
Json statsSnapshotJson();

/// Server-side facts only the Server knows, folded into every health
/// response alongside the windowed rates.
struct HealthContext {
  double UptimeS = 0.0;
  size_t ArtifactGeneration = 0;
  size_t Shards = 0;
  size_t ActiveConnections = 0;
  size_t ConnectionCapacity = 0; ///< Shards x MaxConnectionsPerShard.
  std::vector<std::string> Apps;
};

/// Baseline state behind the delta and health probes. One instance per
/// Server; construction seeds both baselines, so the first probe after
/// startup reports the window since the server came up (which is what
/// lets `opprox-top --once` work without a warmup poll). The two probes
/// keep independent baselines: a health poller does not shrink a stats
/// poller's window or vice versa. Windows are server-global -- multiple
/// concurrent pollers of the *same* probe split the traffic between
/// their windows, so run one monitoring poller per probe.
class ServerProbes {
public:
  ServerProbes();

  /// The `{"stats": "delta"}` response: MetricsRegistry::deltaJson()
  /// since the previous delta probe (schema "opprox-metrics-delta-1").
  Json statsDelta();

  /// The `{"health": true}` response: static server facts from \p Ctx
  /// plus a "window" object of per-interval counts and the derived
  /// ok|degraded|overloaded status.
  Json health(const HealthContext &Ctx);

  /// The status rule, exposed for tests: "overloaded" when the windowed
  /// shed rate exceeds 5% (and anything was shed), else "degraded" when
  /// the window saw degraded phases, hot-swap failures, or last-good
  /// artifact fallbacks, else "ok".
  static const char *statusFor(double ShedRate, uint64_t DegradedPhases,
                               uint64_t HotSwapFailures,
                               uint64_t LastGoodLoads);

private:
  std::mutex Mutex; ///< Probes are rare; contention is irrelevant.
  MetricsBaseline DeltaBase;
  MetricsBaseline HealthBase;
};

/// One served request's latency attribution, as fed to the slow-request
/// sampler and recorded into the serve.stage_ms.* histograms. The five
/// stages partition the request's wall clock exactly: parse + plan +
/// lookup + compute + serialize == total (plan is the residual between
/// parsing and the planner's measured layers, serialize covers response
/// building and the socket write).
struct StageSample {
  std::string Id; ///< The wire request id, serialized; "null" when absent.
  double TotalMs = 0.0;
  double ParseMs = 0.0;
  double PlanMs = 0.0;
  double LookupMs = 0.0;
  double ComputeMs = 0.0;
  double SerializeMs = 0.0;
};

/// Logs the N slowest requests of every fixed-size window with their
/// full stage breakdown, plus one seed-deterministically chosen
/// "spotlight" request per window as an unbiased baseline sample. Not
/// thread-safe: each serve shard owns one instance (samplers are cheap;
/// the log lines carry the shard index). Determinism contract: the same
/// request stream through the same (seed, window, shard) produces the
/// same spotlight picks and the same log lines, so incidents replay.
class SlowRequestSampler {
public:
  /// Lines are emitted through \p Out; the default sink is logInfo.
  /// \p WindowSize == 0 disables the sampler entirely.
  using Sink = std::function<void(const std::string &)>;
  SlowRequestSampler(size_t WindowSize, size_t TopN, uint64_t Seed,
                     size_t ShardIndex, Sink Out = {});

  /// Feeds one completed request; flushes the window's log lines when it
  /// fills.
  void observe(const StageSample &S);

  uint64_t windowsCompleted() const { return Windows; }

private:
  void flush();
  uint64_t nextRandom(); ///< xorshift64*; seeded per (seed, shard).

  size_t WindowSize;
  size_t TopN;
  size_t ShardIndex;
  Sink Out;
  uint64_t State; ///< PRNG state; never 0.
  uint64_t Windows = 0;
  size_t SeenInWindow = 0;
  size_t SpotlightIndex = 0;
  std::vector<StageSample> Slowest; ///< At most TopN, unsorted until flush.
  StageSample Spotlight;
  bool HaveSpotlight = false;
};

} // namespace serve
} // namespace opprox

#endif // OPPROX_SERVE_OBSERVABILITY_H
