//===- serve/WireProtocol.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "serve/WireProtocol.h"
#include "support/StringUtils.h"
#include <cmath>

using namespace opprox;
using namespace opprox::serve;

namespace {

Error codedError(const char *Code, const std::string &Detail) {
  return Error(std::string(Code) + ": " + Detail);
}

} // namespace

Expected<ServeRequest> serve::parseServeRequest(const std::string &Line) {
  Expected<Json> Doc = Json::parse(Line);
  if (!Doc)
    return codedError(errc::ParseError, Doc.error().message());
  if (!Doc->isObject())
    return codedError(errc::BadRequest, "request must be a JSON object");

  ServeRequest Req;
  bool SawBudget = false;
  for (const auto &[Key, Value] : Doc->members()) {
    if (Key == "id") {
      Req.Id = Value;
    } else if (Key == "app") {
      if (!Value.isString())
        return codedError(errc::BadRequest, "'app' must be a string");
      Req.App = Value.asString();
    } else if (Key == "budget") {
      if (!Value.isNumber())
        return codedError(errc::BadRequest, "'budget' must be a number");
      Req.Budget = Value.asNumber();
      SawBudget = true;
    } else if (Key == "input") {
      if (!Value.isArray())
        return codedError(errc::BadRequest,
                          "'input' must be an array of numbers");
      for (size_t I = 0; I < Value.size(); ++I) {
        if (!Value.at(I).isNumber())
          return codedError(errc::BadRequest,
                            format("'input'[%zu] must be a number", I));
        Req.Input.push_back(Value.at(I).asNumber());
      }
    } else if (Key == "confidence") {
      if (!Value.isNumber())
        return codedError(errc::BadRequest, "'confidence' must be a number");
      double Confidence = Value.asNumber();
      if (!(std::isfinite(Confidence) && Confidence > 0.0 &&
            Confidence < 1.0))
        return codedError(errc::BadRequest,
                          "'confidence' must be strictly between 0 and 1");
      Req.Confidence = Confidence;
    } else if (Key == "aggressive") {
      if (!Value.isBool())
        return codedError(errc::BadRequest, "'aggressive' must be a boolean");
      Req.Aggressive = Value.asBool();
    } else if (Key == "stats") {
      if (Value.isBool()) {
        Req.Stats = Value.asBool();
      } else if (Value.isString() && Value.asString() == "delta") {
        Req.Stats = true;
        Req.StatsDelta = true;
      } else {
        return codedError(errc::BadRequest,
                          "'stats' must be a boolean or the string \"delta\"");
      }
    } else if (Key == "health") {
      if (!Value.isBool())
        return codedError(errc::BadRequest, "'health' must be a boolean");
      Req.Health = Value.asBool();
    } else if (Key == "feedback") {
      if (!Value.isArray())
        return codedError(errc::BadRequest,
                          "'feedback' must be an array of numbers");
      for (size_t I = 0; I < Value.size(); ++I) {
        if (!Value.at(I).isNumber() ||
            !std::isfinite(Value.at(I).asNumber()))
          return codedError(
              errc::BadRequest,
              format("'feedback'[%zu] must be a finite number", I));
        Req.Feedback.push_back(Value.at(I).asNumber());
      }
      Req.HasFeedback = true;
    } else {
      // Unknown members are rejected, mirroring the CLI's unknown-flag
      // policy: a typo must not silently change a request's meaning.
      return codedError(errc::BadRequest,
                        format("unknown request member '%s'", Key.c_str()));
    }
  }
  if (!SawBudget && !Req.isProbe())
    return codedError(errc::BadRequest, "missing required member 'budget'");
  return Req;
}

std::string serve::requestErrorCode(const Error &E) {
  const std::string &Message = E.message();
  for (const char *Code : {errc::ParseError, errc::BadRequest,
                           errc::UnknownApp, errc::Overloaded,
                           errc::Oversized, errc::Internal})
    if (startsWith(Message, std::string(Code) + ": "))
      return Code;
  return errc::Internal;
}

Json serve::optimizationResultJson(const OpproxArtifact &Artifact,
                                   double Budget,
                                   const std::vector<double> &Input,
                                   const OptimizationResult &Result) {
  Json Out = Json::object();
  Out.set("app", Artifact.AppName);
  Out.set("budget", Budget);
  Out.set("input", Json::numberArray(Input));
  Out.set("schedule", Result.Schedule.toJson());
  Out.set("configs_evaluated", Result.ConfigsEvaluated);
  Out.set("degraded_phases", Result.DegradedPhases.size());
  return Out;
}

Json serve::cacheStatsJson() {
  MetricsRegistry &Registry = MetricsRegistry::global();
  Json Cache = Json::object();
  Cache.set("hits", Registry.counter("cache.hits").value());
  Cache.set("misses", Registry.counter("cache.misses").value());
  Cache.set("negative_hits", Registry.counter("cache.negative_hits").value());
  Cache.set("evictions", Registry.counter("cache.evictions").value());
  Cache.set("grid_hits", Registry.counter("cache.grid_hits").value());
  Json Out = Json::object();
  Out.set("cache", std::move(Cache));
  return Out;
}

std::string serve::successResponseLine(const Json &Id, Json ResultDoc) {
  Json Response = Json::object();
  Response.set("id", Id);
  Response.set("ok", true);
  Response.set("result", std::move(ResultDoc));
  return Response.dump() + "\n";
}

std::string serve::errorResponseLine(const Json &Id, const std::string &Code,
                                     const std::string &Message) {
  Json Detail = Json::object();
  Detail.set("code", Code);
  Detail.set("message", Message);
  Json Response = Json::object();
  Response.set("id", Id);
  Response.set("ok", false);
  Response.set("error", std::move(Detail));
  return Response.dump() + "\n";
}
