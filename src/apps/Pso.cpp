//===- apps/Pso.cpp -------------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/Pso.h"
#include "apps/QoSMetrics.h"
#include "approx/CallContextLog.h"
#include "approx/Techniques.h"
#include "approx/WorkCounter.h"
#include "support/Random.h"
#include <algorithm>
#include <cmath>

using namespace opprox;

namespace {

constexpr size_t MaxIterations = 400;
// A lenient stagnation detector is what makes PSO's convergence loop
// vulnerable to premature convergence under stale fitness -- the
// phase-dependent speedup/error behaviour of Figs. 9b/10b.
constexpr size_t StagnationPatience = 12;
constexpr double StagnationTolerance = 2e-4;
constexpr double Inertia = 0.72;
constexpr double CognitiveCoeff = 1.49;
constexpr double SocialCoeff = 1.49;
constexpr double DomainHalfWidth = 2.0;

constexpr uint64_t FitnessWork = 4;  // Per dimension.
constexpr uint64_t VelocityWork = 3; // Per dimension.
constexpr uint64_t PositionWork = 1; // Per dimension.

/// Rosenbrock function; global minimum 0 at (1, ..., 1).
double rosenbrock(const std::vector<double> &X, WorkCounter &WC) {
  double Sum = 0.0;
  for (size_t D = 0; D + 1 < X.size(); ++D) {
    double A = X[D + 1] - X[D] * X[D];
    double B = 1.0 - X[D];
    Sum += 100.0 * A * A + B * B;
  }
  WC.add(FitnessWork * X.size());
  return Sum;
}

/// Counter-based uniform in [0, 1): hashing (iteration, particle, salt)
/// keeps the stochastic coefficients identical no matter which particles
/// a perforated loop skips, so approximation changes *coverage*, not the
/// random sequence.
double hashUniform(uint64_t Iter, uint64_t Particle, uint64_t Salt) {
  uint64_t X = Iter * 0x9e3779b97f4a7c15ULL ^ Particle * 0xbf58476d1ce4e5b9ULL ^
               Salt * 0x94d049bb133111ebULL;
  X ^= X >> 30;
  X *= 0xbf58476d1ce4e5b9ULL;
  X ^= X >> 27;
  X *= 0x94d049bb133111ebULL;
  X ^= X >> 31;
  return static_cast<double>(X >> 11) * 0x1.0p-53;
}

} // namespace

Pso::Pso() {
  Blocks = {
      {"fitness_eval", ApproxTechniqueKind::LoopPerforation, 5},
      {"velocity_update", ApproxTechniqueKind::Memoization, 5},
      {"position_update", ApproxTechniqueKind::LoopPerforation, 5},
  };
}

std::vector<std::string> Pso::parameterNames() const {
  return {"swarm_size", "dimension"};
}

std::vector<std::vector<double>> Pso::trainingInputs() const {
  return {{30, 5}, {30, 8}, {45, 6}, {60, 5}, {60, 8}};
}

std::vector<double> Pso::defaultInput() const { return {45, 6}; }

RunResult Pso::run(const std::vector<double> &Input,
                   const PhaseSchedule &Schedule,
                   size_t NominalIterations) const {
  assert(Input.size() == 2 && "pso expects [swarm_size, dimension]");
  assert(Schedule.numBlocks() == Blocks.size() && "block count mismatch");
  size_t Swarm = static_cast<size_t>(Input[0]);
  size_t Dim = static_cast<size_t>(Input[1]);
  assert(Swarm >= 4 && Dim >= 2 && "degenerate swarm");

  Rng InitRng(0x9050ULL ^ (Swarm * 2654435761ULL) ^ (Dim * 40503ULL));

  std::vector<std::vector<double>> Pos(Swarm, std::vector<double>(Dim));
  std::vector<std::vector<double>> Vel(Swarm, std::vector<double>(Dim, 0.0));
  std::vector<std::vector<double>> BestPos(Swarm);
  std::vector<double> Fitness(Swarm, 0.0);
  std::vector<double> BestFitness(Swarm, 1e30);

  WorkCounter WC;
  for (size_t P = 0; P < Swarm; ++P) {
    for (size_t D = 0; D < Dim; ++D)
      Pos[P][D] = InitRng.uniform(-DomainHalfWidth, DomainHalfWidth);
    Fitness[P] = rosenbrock(Pos[P], WC);
    BestPos[P] = Pos[P];
    BestFitness[P] = Fitness[P];
  }
  size_t GlobalBest = 0;
  for (size_t P = 1; P < Swarm; ++P)
    if (BestFitness[P] < BestFitness[GlobalBest])
      GlobalBest = P;

  CallContextLog Log;
  PhaseMap PM(NominalIterations ? NominalIterations : MaxIterations,
              Schedule.numPhases());

  auto MeanBest = [&]() {
    double Sum = 0.0;
    for (double F : BestFitness)
      Sum += std::log1p(F);
    return Sum / static_cast<double>(Swarm);
  };
  // Convergence watches the *mean* personal-best fitness: when most of
  // the swarm stops improving (because it converged -- or because
  // perforation froze its fitness), the loop terminates. This is the
  // premature-convergence hazard that makes early-phase approximation so
  // profitable and so dangerous (Figs. 9b/10b).
  double PreviousBest = MeanBest();
  size_t StagnantStreak = 0;
  size_t Iter = 0;
  // Global-best trajectory, one entry per iteration; the QoS compares
  // runs by their convergence curves.
  std::vector<double> BestHistory;
  while (Iter < MaxIterations && StagnantStreak < StagnationPatience) {
    Log.beginIteration();
    size_t Phase = PM.phaseOf(Iter);

    // --- velocity_update (memoization of stochastic coefficients) -----
    {
      int Level = Schedule.level(Phase, VelocityUpdate);
      uint64_t Mark = WC.total();
      struct CoeffPair {
        double R1 = 0.5, R2 = 0.5;
      };
      memoizedLoop<CoeffPair>(
          Swarm, Level,
          [&](size_t P) {
            CoeffPair C;
            C.R1 = hashUniform(Iter, P, 1);
            C.R2 = hashUniform(Iter, P, 2);
            for (size_t D = 0; D < Dim; ++D) {
              Vel[P][D] = Inertia * Vel[P][D] +
                          CognitiveCoeff * C.R1 * (BestPos[P][D] - Pos[P][D]) +
                          SocialCoeff * C.R2 *
                              (BestPos[GlobalBest][D] - Pos[P][D]);
              WC.add(VelocityWork);
            }
            return C;
          },
          [&](size_t P, const CoeffPair &C) {
            // Reused coefficients: cheaper, but particles move in
            // lockstep, draining swarm diversity.
            for (size_t D = 0; D < Dim; ++D) {
              Vel[P][D] = Inertia * Vel[P][D] +
                          CognitiveCoeff * C.R1 * (BestPos[P][D] - Pos[P][D]) +
                          SocialCoeff * C.R2 *
                              (BestPos[GlobalBest][D] - Pos[P][D]);
              WC.add(VelocityWork / 3);
            }
          });
      Log.recordBlock(VelocityUpdate, WC.since(Mark));
    }

    // --- position_update (perforation) ---------------------------------
    {
      int Level = Schedule.level(Phase, PositionUpdate);
      uint64_t Mark = WC.total();
      perforatedLoop(Swarm, Level, [&](size_t P) {
        for (size_t D = 0; D < Dim; ++D) {
          Pos[P][D] += Vel[P][D];
          Pos[P][D] = std::clamp(Pos[P][D], -DomainHalfWidth * 2,
                                 DomainHalfWidth * 2);
          WC.add(PositionWork);
        }
      });
      Log.recordBlock(PositionUpdate, WC.since(Mark));
    }

    // --- fitness_eval (perforation) -------------------------------------
    {
      int Level = Schedule.level(Phase, FitnessEval);
      uint64_t Mark = WC.total();
      // Skipped particles keep stale fitness, so their pbest (and hence
      // the gbest) cannot improve -- the premature-convergence hazard.
      perforatedLoop(Swarm, Level, [&](size_t P) {
        Fitness[P] = rosenbrock(Pos[P], WC);
        if (Fitness[P] < BestFitness[P]) {
          BestFitness[P] = Fitness[P];
          BestPos[P] = Pos[P];
        }
      });
      for (size_t P = 0; P < Swarm; ++P)
        if (BestFitness[P] < BestFitness[GlobalBest])
          GlobalBest = P;
      Log.recordBlock(FitnessEval, WC.since(Mark));
    }

    // --- convergence check ----------------------------------------------
    double Current = MeanBest();
    double Improvement = (PreviousBest - Current) /
                         std::max(std::fabs(PreviousBest), 1e-12);
    if (Improvement < StagnationTolerance)
      ++StagnantStreak;
    else
      StagnantStreak = 0;
    PreviousBest = Current;
    BestHistory.push_back(BestFitness[GlobalBest]);
    ++Iter;
  }

  RunResult R;
  R.WorkUnits = WC.total();
  R.OuterIterations = Iter;
  // Output: each particle's best fitness (the paper's QoS basis) plus
  // the global best position.
  // Output: the per-particle best fitness values (log-compressed; the
  // paper's QoS basis) plus the global-best convergence curve sampled at
  // 20 checkpoints of the *nominal* iteration count. A run that stopped
  // early flatlines at its last value, so premature convergence shows up
  // as a curve offset; a run corrupted early but recovered shows the
  // detour. Checkpoints use the nominal count so exact and approximate
  // runs align.
  R.Output.reserve(Swarm + 20);
  for (double F : BestFitness)
    R.Output.push_back(std::log1p(F));
  size_t CurveBase = NominalIterations ? NominalIterations : Iter;
  for (size_t K = 1; K <= 20; ++K) {
    size_t At = std::min(K * CurveBase / 20, BestHistory.size()) - 1;
    R.Output.push_back(std::log1p(BestHistory[std::min(
        At, BestHistory.size() - 1)]));
  }
  R.ControlFlowSignature = Log.signature();
  R.WorkPerIteration.reserve(Iter);
  for (size_t I = 0; I < Iter; ++I)
    R.WorkPerIteration.push_back(Log.workInIteration(I));
  return R;
}

double Pso::qosDegradation(const RunResult &Exact,
                           const RunResult &Approx) const {
  // Average difference of the per-particle best-fitness values (paper
  // Sec. 4.1), in log-space to stay meaningful near convergence. The
  // x30 scale maps "stuck one order of magnitude short" to ~30%.
  assert(Exact.Output.size() == Approx.Output.size() && "output mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < Exact.Output.size(); ++I)
    Sum += std::fabs(Exact.Output[I] - Approx.Output[I]);
  double Mean = Sum / static_cast<double>(Exact.Output.size());
  return std::min(30.0 * Mean, 1000.0);
}
