//===- apps/ApproxApp.cpp -------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/ApproxApp.h"
#include "support/Compiler.h"

using namespace opprox;

ApproxApp::~ApproxApp() = default;

double ApproxApp::psnrValue(const RunResult &Exact,
                            const RunResult &Approx) const {
  OPPROX_UNREACHABLE("psnrValue queried on a non-PSNR application");
}

RunResult ApproxApp::runExact(const std::vector<double> &Input) const {
  PhaseSchedule Exact(1, numBlocks());
  return run(Input, Exact, 0);
}

std::vector<int> ApproxApp::maxLevels() const {
  std::vector<int> Levels;
  Levels.reserve(blocks().size());
  for (const ApproximableBlock &AB : blocks())
    Levels.push_back(AB.MaxLevel);
  return Levels;
}

const RunResult &GoldenCache::exactRun(const std::vector<double> &Input) {
  auto It = Cache.find(Input);
  if (It == Cache.end())
    It = Cache.emplace(Input, App.runExact(Input)).first;
  return It->second;
}

size_t GoldenCache::nominalIterations(const std::vector<double> &Input) {
  return exactRun(Input).OuterIterations;
}
