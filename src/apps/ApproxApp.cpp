//===- apps/ApproxApp.cpp -------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/ApproxApp.h"
#include "support/Compiler.h"

using namespace opprox;

ApproxApp::~ApproxApp() = default;

double ApproxApp::psnrValue(const RunResult &Exact,
                            const RunResult &Approx) const {
  OPPROX_UNREACHABLE("psnrValue queried on a non-PSNR application");
}

RunResult ApproxApp::runExact(const std::vector<double> &Input) const {
  PhaseSchedule Exact(1, numBlocks());
  return run(Input, Exact, 0);
}

std::vector<int> ApproxApp::maxLevels() const {
  std::vector<int> Levels;
  Levels.reserve(blocks().size());
  for (const ApproximableBlock &AB : blocks())
    Levels.push_back(AB.MaxLevel);
  return Levels;
}

const RunResult &GoldenCache::exactRun(const std::vector<double> &Input) {
  Entry *E;
  bool Created = false;
  {
    std::lock_guard<std::mutex> Lock(MapMutex);
    std::unique_ptr<Entry> &Slot = Cache[Input];
    if (!Slot) {
      Slot = std::make_unique<Entry>();
      Created = true;
    }
    E = Slot.get();
  }
  // The application runs outside the map lock: distinct inputs compute
  // concurrently, and racers on the same input block here until the
  // first caller's run completes.
  std::call_once(E->Once, [&] { E->Result = App.runExact(Input); });
  if (Created)
    Misses.fetch_add(1, std::memory_order_relaxed);
  else
    Hits.fetch_add(1, std::memory_order_relaxed);
  return E->Result;
}

size_t GoldenCache::numCached() const {
  std::lock_guard<std::mutex> Lock(MapMutex);
  return Cache.size();
}

size_t GoldenCache::nominalIterations(const std::vector<double> &Input) {
  return exactRun(Input).OuterIterations;
}
