//===- apps/Pso.h - Particle swarm optimization ----------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Particle swarm optimization on a continuous objective (Rosenbrock),
/// the paper's fifth benchmark (Sec. 4.1). The outer loop is a genuine
/// convergence loop: it stops once the global best has stagnated, so
/// approximating early phases both corrupts the search *and* triggers
/// premature convergence -- large speedup, large error -- while
/// late-phase approximation barely shortens an almost-finished run
/// (the Fig. 9b / 10b shapes).
///
/// Approximable blocks (paper techniques: perforation + memoization):
/// fitness evaluation (perforation over particles, stale fitness),
/// velocity update (memoization of the stochastic coefficients), and
/// position update (perforation; skipped particles do not move).
///
/// QoS: average relative difference of each particle's best fitness
/// value vs. the exact run.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPS_PSO_H
#define OPPROX_APPS_PSO_H

#include "apps/ApproxApp.h"

namespace opprox {

/// PSO application. See file comment.
class Pso : public ApproxApp {
public:
  Pso();

  std::string name() const override { return "pso"; }
  const std::vector<ApproximableBlock> &blocks() const override {
    return Blocks;
  }
  std::vector<std::string> parameterNames() const override;
  std::vector<std::vector<double>> trainingInputs() const override;
  std::vector<double> defaultInput() const override;
  RunResult run(const std::vector<double> &Input,
                const PhaseSchedule &Schedule,
                size_t NominalIterations) const override;
  double qosDegradation(const RunResult &Exact,
                        const RunResult &Approx) const override;

  enum BlockId : size_t {
    FitnessEval = 0,
    VelocityUpdate = 1,
    PositionUpdate = 2,
  };

private:
  std::vector<ApproximableBlock> Blocks;
};

} // namespace opprox

#endif // OPPROX_APPS_PSO_H
