//===- apps/MiniComd.cpp --------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/MiniComd.h"
#include "apps/QoSMetrics.h"
#include "approx/CallContextLog.h"
#include "approx/Techniques.h"
#include "approx/WorkCounter.h"
#include "support/Random.h"
#include <algorithm>
#include <cmath>

using namespace opprox;

namespace {

constexpr double TimestepLength = 0.002; // LJ reduced units.
constexpr double Cutoff = 2.5;           // LJ cutoff radius (sigma units).
// A warm FCC crystal: weakly chaotic, so a perturbation injected early
// has the whole remaining trajectory to grow (the paper's "ripple
// effect", Sec. 5.1.1), while one injected late barely moves the final
// energies. The temperature sets the chaos rate.
constexpr double InitTemperature = 0.5;

constexpr uint64_t PairWork = 3;
constexpr uint64_t ForceSetupWork = 2;
constexpr uint64_t AdvanceWork = 3;

struct Vec3 {
  double X = 0, Y = 0, Z = 0;
};

/// Minimum-image displacement in a cubic periodic box of side \p Box.
Vec3 minimumImage(const Vec3 &A, const Vec3 &B, double Box) {
  auto Wrap = [Box](double D) {
    if (D > 0.5 * Box)
      return D - Box;
    if (D < -0.5 * Box)
      return D + Box;
    return D;
  };
  return {Wrap(A.X - B.X), Wrap(A.Y - B.Y), Wrap(A.Z - B.Z)};
}

} // namespace

MiniComd::MiniComd() {
  Blocks = {
      {"compute_forces", ApproxTechniqueKind::LoopPerforation, 5},
      {"pair_scan", ApproxTechniqueKind::LoopTruncation, 5},
      {"advance_atoms", ApproxTechniqueKind::LoopPerforation, 5},
  };
}

std::vector<std::string> MiniComd::parameterNames() const {
  return {"unit_cells", "lattice_param", "num_timesteps"};
}

std::vector<std::vector<double>> MiniComd::trainingInputs() const {
  // Unit cells per dimension, FCC lattice constant (equilibrium ~1.56
  // sigma), timesteps.
  return {{3, 1.52, 150}, {3, 1.60, 250}, {4, 1.52, 250},
          {4, 1.60, 150}, {3, 1.56, 200}};
}

std::vector<double> MiniComd::defaultInput() const { return {3, 1.56, 200}; }

RunResult MiniComd::run(const std::vector<double> &Input,
                        const PhaseSchedule &Schedule,
                        size_t NominalIterations) const {
  assert(Input.size() == 3 &&
         "comd expects [unit_cells, lattice_param, num_timesteps]");
  assert(Schedule.numBlocks() == Blocks.size() && "block count mismatch");
  size_t Cells = static_cast<size_t>(Input[0]);
  double Lattice = Input[1];
  size_t Steps = static_cast<size_t>(Input[2]);
  assert(Cells >= 2 && Lattice > 1.4 && "unphysical lattice");
  size_t N = 4 * Cells * Cells * Cells; // FCC: 4 atoms per unit cell.
  double Box = static_cast<double>(Cells) * Lattice;

  // Deterministic initial velocities keyed by the input so every run of
  // the same input sees the same trajectory.
  Rng SeedRng(0xC0FFEEULL ^ (Cells * 1315423911ULL) ^
              static_cast<uint64_t>(Lattice * 1e6) ^ (Steps * 2654435761ULL));

  std::vector<Vec3> Pos(N), Vel(N), Force(N);
  std::vector<double> PotentialPerAtom(N, 0.0);
  // Time-averaged per-atom energies: the thermodynamic observables CoMD
  // reports. Averaging over the trajectory means an error injected early
  // contaminates every later step's contribution, so early-phase
  // approximation dominates the final QoS (Fig. 9a).
  std::vector<double> AvgKe(N, 0.0), AvgPe(N, 0.0);
  // FCC basis within each unit cell.
  const double Basis[4][3] = {
      {0.0, 0.0, 0.0}, {0.5, 0.5, 0.0}, {0.5, 0.0, 0.5}, {0.0, 0.5, 0.5}};
  size_t Idx = 0;
  for (size_t X = 0; X < Cells; ++X)
    for (size_t Y = 0; Y < Cells; ++Y)
      for (size_t Z = 0; Z < Cells; ++Z)
        for (const auto &B : Basis) {
          Pos[Idx] = {(static_cast<double>(X) + B[0]) * Lattice,
                      (static_cast<double>(Y) + B[1]) * Lattice,
                      (static_cast<double>(Z) + B[2]) * Lattice};
          ++Idx;
        }
  double Sigma = std::sqrt(InitTemperature);
  Vec3 Drift;
  for (Vec3 &V : Vel) {
    V = {SeedRng.gaussian(0, Sigma), SeedRng.gaussian(0, Sigma),
         SeedRng.gaussian(0, Sigma)};
    Drift.X += V.X;
    Drift.Y += V.Y;
    Drift.Z += V.Z;
  }
  for (Vec3 &V : Vel) { // Remove center-of-mass motion.
    V.X -= Drift.X / static_cast<double>(N);
    V.Y -= Drift.Y / static_cast<double>(N);
    V.Z -= Drift.Z / static_cast<double>(N);
  }

  WorkCounter WC;
  CallContextLog Log;
  PhaseMap PM(NominalIterations ? NominalIterations : Steps,
              Schedule.numPhases());

  double CutoffSq = Cutoff * Cutoff;
  for (size_t Step = 0; Step < Steps; ++Step) {
    Log.beginIteration();
    size_t Phase = PM.phaseOf(Step);

    // --- compute_forces (perforation) + pair_scan (truncation) --------
    {
      int ForceLevel = Schedule.level(Phase, ComputeForces);
      int PairLevel = Schedule.level(Phase, PairScan);
      uint64_t Mark = WC.total();
      // Perforated atoms keep their stale force from the previous step.
      rotatingPerforatedLoop(N, ForceLevel, Step, [&](size_t I) {
        Vec3 F;
        double Pot = 0.0;
        WC.add(ForceSetupWork);
        // The partner scan is itself an AB: truncation drops trailing
        // partners, systematically under-counting interactions.
        truncatedLoop(N, PairLevel, Blocks[PairScan].MaxLevel,
                      [&](size_t J) {
                        if (I == J)
                          return;
                        Vec3 D = minimumImage(Pos[I], Pos[J], Box);
                        double R2 = D.X * D.X + D.Y * D.Y + D.Z * D.Z;
                        WC.add(PairWork);
                        if (R2 >= CutoffSq || R2 < 1e-12)
                          return;
                        double Inv2 = 1.0 / R2;
                        double Inv6 = Inv2 * Inv2 * Inv2;
                        // LJ: F = 24 eps (2 (s/r)^12 - (s/r)^6) / r^2 * d.
                        double Scale = 24.0 * Inv2 * Inv6 * (2.0 * Inv6 - 1.0);
                        F.X += Scale * D.X;
                        F.Y += Scale * D.Y;
                        F.Z += Scale * D.Z;
                        Pot += 2.0 * Inv6 * (Inv6 - 1.0); // Half of 4eps(..).
                      });
        Force[I] = F;
        PotentialPerAtom[I] = Pot;
      });
      Log.recordBlock(ComputeForces, WC.since(Mark));
      Log.recordBlock(PairScan, 0);
    }

    // --- advance_atoms (perforation) -----------------------------------
    {
      int Level = Schedule.level(Phase, AdvanceAtoms);
      uint64_t Mark = WC.total();
      // Perforated atoms coast: stale velocity, no force application.
      rotatingPerforatedLoop(N, Level, Step, [&](size_t I) {
        Vel[I].X += TimestepLength * Force[I].X;
        Vel[I].Y += TimestepLength * Force[I].Y;
        Vel[I].Z += TimestepLength * Force[I].Z;
        WC.add(AdvanceWork);
      });
      for (size_t I = 0; I < N; ++I) {
        Pos[I].X += TimestepLength * Vel[I].X;
        Pos[I].Y += TimestepLength * Vel[I].Y;
        Pos[I].Z += TimestepLength * Vel[I].Z;
        // Periodic wraparound.
        auto Wrap = [Box](double &C) {
          if (C < 0)
            C += Box;
          else if (C >= Box)
            C -= Box;
        };
        Wrap(Pos[I].X);
        Wrap(Pos[I].Y);
        Wrap(Pos[I].Z);
      }
      Log.recordBlock(AdvanceAtoms, WC.since(Mark));
    }

    for (size_t I = 0; I < N; ++I) {
      AvgKe[I] += 0.5 * (Vel[I].X * Vel[I].X + Vel[I].Y * Vel[I].Y +
                         Vel[I].Z * Vel[I].Z);
      AvgPe[I] += PotentialPerAtom[I];
    }
  }

  // Output: per-atom kinetic and potential energy (the paper's QoS:
  // energy difference vs. the exact run, averaged across atoms). A
  // perturbation injected early has the rest of the weakly chaotic
  // trajectory to grow, so early-phase approximation shows the largest
  // final difference -- provided the run stays below full decorrelation
  // (the small timestep keeps per-step approximation error tiny).
  RunResult R;
  R.Output.reserve(2 * N);
  double Steps_d = static_cast<double>(Steps);
  for (size_t I = 0; I < N; ++I)
    R.Output.push_back(AvgKe[I] / Steps_d);
  for (size_t I = 0; I < N; ++I)
    R.Output.push_back(AvgPe[I] / Steps_d);
  R.WorkUnits = WC.total();
  R.OuterIterations = Steps;
  R.ControlFlowSignature = Log.signature();
  R.WorkPerIteration.reserve(Steps);
  for (size_t I = 0; I < Steps; ++I)
    R.WorkPerIteration.push_back(Log.workInIteration(I));
  return R;
}

double MiniComd::qosDegradation(const RunResult &Exact,
                                const RunResult &Approx) const {
  return relativeDistortionPercent(Exact.Output, Approx.Output);
}
