//===- apps/AppRegistry.h - Application factory ----------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name-based access to the five benchmark applications, for tools and
/// benches that take an application name on the command line.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPS_APPREGISTRY_H
#define OPPROX_APPS_APPREGISTRY_H

#include "apps/ApproxApp.h"
#include <memory>

namespace opprox {

/// Creates the application registered under \p Name ("lulesh", "comd",
/// "ffmpeg", "bodytrack", "pso"), or null for unknown names.
std::unique_ptr<ApproxApp> createApp(const std::string &Name);

/// All registered application names, in the paper's presentation order.
std::vector<std::string> allAppNames();

/// Creates every registered application.
std::vector<std::unique_ptr<ApproxApp>> createAllApps();

} // namespace opprox

#endif // OPPROX_APPS_APPREGISTRY_H
