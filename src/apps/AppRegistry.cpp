//===- apps/AppRegistry.cpp -----------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "apps/MiniBodytrack.h"
#include "apps/MiniComd.h"
#include "apps/MiniFfmpeg.h"
#include "apps/MiniLulesh.h"
#include "apps/Pso.h"

using namespace opprox;

std::unique_ptr<ApproxApp> opprox::createApp(const std::string &Name) {
  if (Name == "lulesh")
    return std::make_unique<MiniLulesh>();
  if (Name == "comd")
    return std::make_unique<MiniComd>();
  if (Name == "ffmpeg")
    return std::make_unique<MiniFfmpeg>();
  if (Name == "bodytrack")
    return std::make_unique<MiniBodytrack>();
  if (Name == "pso")
    return std::make_unique<Pso>();
  return nullptr;
}

std::vector<std::string> opprox::allAppNames() {
  return {"lulesh", "comd", "ffmpeg", "bodytrack", "pso"};
}

std::vector<std::unique_ptr<ApproxApp>> opprox::createAllApps() {
  std::vector<std::unique_ptr<ApproxApp>> Apps;
  for (const std::string &Name : allAppNames())
    Apps.push_back(createApp(Name));
  return Apps;
}
