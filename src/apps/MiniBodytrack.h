//===- apps/MiniBodytrack.h - Annealed particle filter ---------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An annealed-particle-filter tracker standing in for PARSEC Bodytrack
/// (paper Sec. 4.1): a synthetic 5-component articulated pose follows
/// smooth trajectories; per video frame the tracker extracts noisy
/// image features and refines a particle population through annealing
/// layers. The outer loop enumerates (frame, layer) pairs, so its count
/// is fixed by the inputs (#frames x #annealing layers); early-phase
/// approximation corrupts the particle population that every later frame
/// inherits.
///
/// Approximable blocks mirror the paper's technique mix (perforation +
/// input tuning): likelihood evaluation (perforation over particles),
/// particle perturbation (perforation), feature extraction (perforation
/// over image cells), and a min-particles knob (parameter tuning).
///
/// QoS: magnitude-weighted distortion of the estimated pose vectors
/// (Sec. 4.1: larger body components weigh more).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPS_MINIBODYTRACK_H
#define OPPROX_APPS_MINIBODYTRACK_H

#include "apps/ApproxApp.h"

namespace opprox {

/// Bodytrack-style annealed particle filter. See file comment.
class MiniBodytrack : public ApproxApp {
public:
  MiniBodytrack();

  std::string name() const override { return "bodytrack"; }
  const std::vector<ApproximableBlock> &blocks() const override {
    return Blocks;
  }
  std::vector<std::string> parameterNames() const override;
  std::vector<std::vector<double>> trainingInputs() const override;
  std::vector<double> defaultInput() const override;
  RunResult run(const std::vector<double> &Input,
                const PhaseSchedule &Schedule,
                size_t NominalIterations) const override;
  double qosDegradation(const RunResult &Exact,
                        const RunResult &Approx) const override;

  enum BlockId : size_t {
    LikelihoodEval = 0,
    ParticlePerturb = 1,
    FeatureExtract = 2,
    MinParticlesKnob = 3,
  };

private:
  std::vector<ApproximableBlock> Blocks;
};

} // namespace opprox

#endif // OPPROX_APPS_MINIBODYTRACK_H
