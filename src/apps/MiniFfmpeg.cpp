//===- apps/MiniFfmpeg.cpp ------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/MiniFfmpeg.h"
#include "apps/QoSMetrics.h"
#include "approx/CallContextLog.h"
#include "approx/Techniques.h"
#include "approx/WorkCounter.h"
#include <algorithm>
#include <cmath>

using namespace opprox;

namespace {

constexpr size_t Width = 48;
constexpr size_t Height = 32;
constexpr double Peak = 255.0;

constexpr uint64_t DecodeWork = 2;  // Per pixel.
constexpr uint64_t BlurWork = 9;    // 3x3 kernel per pixel.
constexpr uint64_t EdgeWork = 8;    // Sobel per pixel.
constexpr uint64_t DeflateWork = 5; // Morphological min per pixel.
constexpr uint64_t EncodeWork = 3;  // Per pixel.

using Frame = std::vector<double>; // Height * Width, row-major.

double &pixel(Frame &F, size_t Row, size_t Col) {
  return F[Row * Width + Col];
}
double pixelAt(const Frame &F, size_t Row, size_t Col) {
  return F[Row * Width + Col];
}

/// Synthetic scene: a moving bright box over a drifting sinusoidal
/// texture. Deterministic in (frame index, total frames).
Frame decodeFrame(size_t FrameIdx, size_t TotalFrames) {
  Frame F(Width * Height);
  double T = static_cast<double>(FrameIdx) /
             static_cast<double>(std::max<size_t>(TotalFrames, 1));
  size_t BoxCol = static_cast<size_t>(T * static_cast<double>(Width - 12));
  size_t BoxRow = static_cast<size_t>(
      (0.5 + 0.4 * std::sin(6.28318 * T)) * static_cast<double>(Height - 10));
  for (size_t R = 0; R < Height; ++R) {
    for (size_t C = 0; C < Width; ++C) {
      double Texture =
          96.0 + 64.0 * std::sin(0.5 * static_cast<double>(C) + 8.0 * T) *
                     std::cos(0.4 * static_cast<double>(R) - 5.0 * T);
      bool InBox = R >= BoxRow && R < BoxRow + 10 && C >= BoxCol &&
                   C < BoxCol + 12;
      pixel(F, R, C) = InBox ? 230.0 : Texture;
    }
  }
  return F;
}

/// 3x3 box blur with clamped borders; perforation skips rows, which copy
/// the previously blurred row.
Frame blurFilter(const Frame &In, int Level, WorkCounter &WC) {
  Frame Out(Width * Height, 0.0);
  size_t LastDone = 0;
  perforatedLoop(Height, Level, [&](size_t R) {
    for (size_t C = 0; C < Width; ++C) {
      double Sum = 0.0;
      for (int DR = -1; DR <= 1; ++DR) {
        for (int DC = -1; DC <= 1; ++DC) {
          size_t RR = std::min<size_t>(
              Height - 1,
              static_cast<size_t>(std::max<long>(
                  0, static_cast<long>(R) + DR)));
          size_t CC = std::min<size_t>(
              Width - 1, static_cast<size_t>(std::max<long>(
                             0, static_cast<long>(C) + DC)));
          Sum += pixelAt(In, RR, CC);
        }
      }
      pixel(Out, R, C) = Sum / 9.0;
      WC.add(BlurWork);
    }
    // Backfill rows skipped since the last executed row.
    for (size_t Fill = LastDone + 1; Fill < R; ++Fill)
      for (size_t C = 0; C < Width; ++C)
        pixel(Out, Fill, C) = pixelAt(Out, R, C);
    LastDone = R;
  });
  // Rows after the last executed row reuse it.
  for (size_t Fill = LastDone + 1; Fill < Height; ++Fill)
    for (size_t C = 0; C < Width; ++C)
      pixel(Out, Fill, C) = pixelAt(Out, LastDone, C);
  return Out;
}

/// Sobel edge magnitude blended over the input; perforation skips rows
/// (copied from the nearest processed row).
Frame edgeFilter(const Frame &In, int Level, WorkCounter &WC) {
  Frame Out = In;
  size_t LastDone = 0;
  perforatedLoop(Height, Level, [&](size_t R) {
    for (size_t C = 0; C < Width; ++C) {
      size_t RU = R > 0 ? R - 1 : 0, RD = std::min(R + 1, Height - 1);
      size_t CL = C > 0 ? C - 1 : 0, CR = std::min(C + 1, Width - 1);
      double GX = pixelAt(In, R, CR) - pixelAt(In, R, CL);
      double GY = pixelAt(In, RD, C) - pixelAt(In, RU, C);
      double Magnitude = std::sqrt(GX * GX + GY * GY);
      pixel(Out, R, C) =
          std::min(Peak, 0.6 * pixelAt(In, R, C) + 1.2 * Magnitude);
      WC.add(EdgeWork);
    }
    for (size_t Fill = LastDone + 1; Fill < R; ++Fill)
      for (size_t C = 0; C < Width; ++C)
        pixel(Out, Fill, C) = pixelAt(Out, R, C);
    LastDone = R;
  });
  for (size_t Fill = LastDone + 1; Fill < Height; ++Fill)
    for (size_t C = 0; C < Width; ++C)
      pixel(Out, Fill, C) = pixelAt(Out, LastDone, C);
  return Out;
}

/// Deflate (morphological erosion: 3x3 minimum). Memoization computes
/// the true minimum every (Level+1)-th row band and reuses the cached
/// row's values for the rows in between.
Frame deflateFilter(const Frame &In, int Level, WorkCounter &WC) {
  Frame Out = In;
  std::vector<double> CachedRow(Width, 0.0);
  memoizedLoop<int>(
      Height, Level,
      [&](size_t R) {
        for (size_t C = 0; C < Width; ++C) {
          double Min = 1e30;
          size_t RU = R > 0 ? R - 1 : 0, RD = std::min(R + 1, Height - 1);
          size_t CL = C > 0 ? C - 1 : 0, CR = std::min(C + 1, Width - 1);
          for (size_t RR = RU; RR <= RD; ++RR)
            for (size_t CC = CL; CC <= CR; ++CC)
              Min = std::min(Min, pixelAt(In, RR, CC));
          pixel(Out, R, C) = Min;
          CachedRow[C] = Min;
          WC.add(DeflateWork);
        }
        return 0;
      },
      [&](size_t R, int) {
        for (size_t C = 0; C < Width; ++C)
          pixel(Out, R, C) = CachedRow[C];
      });
  return Out;
}

} // namespace

MiniFfmpeg::MiniFfmpeg() {
  Blocks = {
      {"blur", ApproxTechniqueKind::LoopPerforation, 5},
      {"edge_detect", ApproxTechniqueKind::LoopPerforation, 5},
      {"deflate", ApproxTechniqueKind::Memoization, 5},
  };
}

std::vector<std::string> MiniFfmpeg::parameterNames() const {
  return {"fps", "duration", "bitrate", "filter_order"};
}

std::vector<std::vector<double>> MiniFfmpeg::trainingInputs() const {
  // fps, duration (s), bitrate (quantizer), filter order (0/1).
  return {{15, 4, 4, 0}, {15, 4, 4, 1}, {30, 5, 4, 0}, {30, 5, 4, 1},
          {30, 3, 8, 0}, {30, 3, 8, 1}};
}

std::vector<double> MiniFfmpeg::defaultInput() const {
  // 150 frames, as in the paper's experiment.
  return {30, 5, 4, 0};
}

RunResult MiniFfmpeg::run(const std::vector<double> &Input,
                          const PhaseSchedule &Schedule,
                          size_t NominalIterations) const {
  assert(Input.size() == 4 &&
         "ffmpeg expects [fps, duration, bitrate, filter_order]");
  assert(Schedule.numBlocks() == Blocks.size() && "block count mismatch");
  size_t Fps = static_cast<size_t>(Input[0]);
  size_t Duration = static_cast<size_t>(Input[1]);
  double Bitrate = Input[2];
  bool DeflateFirst = Input[3] < 0.5;
  size_t Frames = Fps * Duration;
  assert(Frames > 0 && "empty video");
  // Coarse dead-zone quantization: filtered-value changes below the step
  // are never re-sent, so approximation errors smaller than the step
  // persist in the reconstruction until the content moves -- the
  // inter-frame propagation behind Fig. 9d.
  double QuantStep = std::max(2.0, 48.0 / Bitrate);

  WorkCounter WC;
  CallContextLog Log;
  PhaseMap PM(NominalIterations ? NominalIterations : Frames,
              Schedule.numPhases());

  Frame PreviousFiltered(Width * Height, 0.0);
  Frame Reconstructed(Width * Height, 0.0);
  RunResult R;
  R.Output.reserve(Frames * Width * Height);

  for (size_t FrameIdx = 0; FrameIdx < Frames; ++FrameIdx) {
    Log.beginIteration();
    size_t Phase = PM.phaseOf(FrameIdx);

    Frame Raw = decodeFrame(FrameIdx, Frames);
    WC.add(DecodeWork * Width * Height);

    uint64_t Mark = WC.total();
    Frame Blurred = blurFilter(Raw, Schedule.level(Phase, BlurFilter), WC);
    Log.recordBlock(BlurFilter, WC.since(Mark));

    // Filter order is an input parameter: deflate->edge vs edge->deflate
    // (Fig. 7). The call-context log captures the difference.
    Frame Filtered;
    if (DeflateFirst) {
      Mark = WC.total();
      Frame Deflated =
          deflateFilter(Blurred, Schedule.level(Phase, DeflateFilter), WC);
      Log.recordBlock(DeflateFilter, WC.since(Mark));
      Mark = WC.total();
      Filtered = edgeFilter(Deflated, Schedule.level(Phase, EdgeFilter), WC);
      Log.recordBlock(EdgeFilter, WC.since(Mark));
    } else {
      Mark = WC.total();
      Frame Edged = edgeFilter(Blurred, Schedule.level(Phase, EdgeFilter), WC);
      Log.recordBlock(EdgeFilter, WC.since(Mark));
      Mark = WC.total();
      Filtered =
          deflateFilter(Edged, Schedule.level(Phase, DeflateFilter), WC);
      Log.recordBlock(DeflateFilter, WC.since(Mark));
    }

    // Open-loop DPCM encoder: each frame transmits the quantized change
    // relative to the previous *filtered* frame, with a dead zone --
    // sub-threshold changes are dropped and never corrected, so any
    // reconstruction offset accumulated while a phase was approximated
    // persists through every remaining frame (the paper's Sec. 5.1.1
    // explanation: "the second encoded frame only keeps the information
    // relative to the first").
    for (size_t P = 0; P < Width * Height; ++P) {
      if (FrameIdx == 0) {
        Reconstructed[P] = QuantStep * std::round(Filtered[P] / QuantStep);
      } else {
        double Delta = Filtered[P] - PreviousFiltered[P];
        if (std::fabs(Delta) >= QuantStep)
          Reconstructed[P] += QuantStep * std::round(Delta / QuantStep);
      }
      Reconstructed[P] = std::clamp(Reconstructed[P], 0.0, Peak);
      PreviousFiltered[P] = Filtered[P];
      WC.add(EncodeWork);
    }
    R.Output.insert(R.Output.end(), Reconstructed.begin(),
                    Reconstructed.end());
  }

  R.WorkUnits = WC.total();
  R.OuterIterations = Frames;
  R.ControlFlowSignature = Log.signature();
  R.WorkPerIteration.reserve(Frames);
  for (size_t I = 0; I < Frames; ++I)
    R.WorkPerIteration.push_back(Log.workInIteration(I));
  return R;
}

double MiniFfmpeg::qosDegradation(const RunResult &Exact,
                                  const RunResult &Approx) const {
  return psnrToDegradationPercent(psnrValue(Exact, Approx));
}

double MiniFfmpeg::psnrValue(const RunResult &Exact,
                             const RunResult &Approx) const {
  return psnr(Exact.Output, Approx.Output, Peak);
}
