//===- apps/MiniLulesh.cpp ------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
//
// The physics: a gamma-law gas on [0, 1] with the blast energy deposited
// in the leftmost element (Sedov problem). Staggered Lagrangian scheme:
// pressure/energy/density live on elements, velocity/position on nodes.
// Each step computes element stress (pressure + artificial viscosity),
// nodal forces from stress differences, integrates nodes, recomputes
// element geometry/strain, and closes with an exact energy/EOS update.
// The timestep obeys a Courant scan over elements. Approximations
// perturb the state, which perturbs dt, which changes how many outer
// iterations reach the fixed end time -- exactly the feedback the paper
// observes on LULESH (921 exact iterations vs. up to 965 approximated).
//
//===----------------------------------------------------------------------===//

#include "apps/MiniLulesh.h"
#include "apps/QoSMetrics.h"
#include "approx/CallContextLog.h"
#include "approx/Techniques.h"
#include "approx/WorkCounter.h"
#include <algorithm>
#include <cmath>

using namespace opprox;

namespace {

constexpr double Gamma = 1.4;        // Ideal-gas ratio of specific heats.
constexpr double BlastEnergy = 0.09; // Deposited in the first element.
// Low Courant factor: stability margin is what lets perforated
// (stale-by-up-to-6-steps) integration degrade gracefully instead of
// detonating -- the paper's premise that chosen ABs withstand
// approximation.
constexpr double CourantFactor = 0.15;
constexpr double EndTime = 0.12;     // Calibrated for ~921 exact steps at
                                     // the default input (mesh 30).
// Energy-output coarsening: the QoS metric compares region-averaged
// energies (LULESH reports per-element energy of a 3-D mesh; our 1-D
// stand-in averages runs of elements so a slightly displaced shock front
// degrades QoS smoothly instead of binarily).
constexpr size_t OutputBins = 30;
constexpr size_t MaxIterations = 4000;
constexpr double EnergyFloor = 1e-9;
// Runaway guard: specific energy above any physical shock value for the
// blast sizes we simulate. Corrupted runs saturate here instead of
// overflowing.
constexpr double EnergyCeiling = 50.0;
constexpr double VolumeFloor = 1e-9;
// Velocity ceiling (a few times any physical flow speed here): corrupted
// integrations saturate instead of producing inf/NaN cascades.
constexpr double VelocityCeiling = 20.0;

// Work units charged per element visit, per kernel. The force kernel
// additionally scales with the region count (LULESH evaluates per-region
// EOS tables).
constexpr uint64_t ForceWork = 6;
constexpr uint64_t PositionWork = 3;
constexpr uint64_t StrainWork = 4;
constexpr uint64_t TimeConstraintWork = 2;
constexpr uint64_t EnergyWork = 5; // Exact epilogue, never approximated.

struct HydroState {
  std::vector<double> NodePos, NodeVel, NodeForce, NodeAccel;
  std::vector<double> ElemEnergy, ElemDensity, ElemPressure, ElemViscosity,
      ElemMass, ElemVolume, ElemStress, ElemStrainRate;
};

} // namespace

MiniLulesh::MiniLulesh() {
  Blocks = {
      {"forces_on_elements", ApproxTechniqueKind::LoopPerforation, 5},
      {"position_of_elements", ApproxTechniqueKind::LoopPerforation, 5},
      {"strain_of_elements", ApproxTechniqueKind::Memoization, 5},
      {"calculate_timeconstraints", ApproxTechniqueKind::LoopTruncation, 5},
  };
}

std::vector<std::string> MiniLulesh::parameterNames() const {
  return {"mesh_size", "num_regions"};
}

std::vector<std::vector<double>> MiniLulesh::trainingInputs() const {
  // Length of cube mesh and number of regions, as in the paper (Sec. 2).
  return {{20, 8}, {20, 16}, {30, 8}, {30, 16}, {40, 8}, {40, 16}};
}

std::vector<double> MiniLulesh::defaultInput() const { return {30, 11}; }

RunResult MiniLulesh::run(const std::vector<double> &Input,
                          const PhaseSchedule &Schedule,
                          size_t NominalIterations) const {
  assert(Input.size() == 2 && "lulesh expects [mesh_size, num_regions]");
  assert(Schedule.numBlocks() == Blocks.size() && "block count mismatch");
  size_t Mesh = static_cast<size_t>(Input[0]);
  size_t Regions = static_cast<size_t>(Input[1]);
  assert(Mesh >= 4 && "mesh too small");
  size_t N = Mesh * 10; // Elements.

  // Region loops in LULESH make force evaluation costlier as regions
  // grow; model that as extra work per element.
  uint64_t ForceWorkPerElem = ForceWork + Regions / 4;

  HydroState S;
  S.NodePos.resize(N + 1);
  S.NodeVel.assign(N + 1, 0.0);
  S.NodeForce.assign(N + 1, 0.0);
  S.NodeAccel.assign(N + 1, 0.0);
  double Dx = 1.0 / static_cast<double>(N);
  for (size_t I = 0; I <= N; ++I)
    S.NodePos[I] = static_cast<double>(I) * Dx;
  S.ElemVolume.assign(N, Dx);
  S.ElemDensity.assign(N, 1.0);
  S.ElemMass.assign(N, Dx);
  S.ElemEnergy.assign(N, EnergyFloor);
  S.ElemEnergy[0] = BlastEnergy / Dx; // Specific energy spike (Sedov).
  S.ElemPressure.assign(N, 0.0);
  S.ElemViscosity.assign(N, 0.0);
  S.ElemStress.assign(N, 0.0);
  S.ElemStrainRate.assign(N, 0.0);
  for (size_t E = 0; E < N; ++E)
    S.ElemPressure[E] = (Gamma - 1.0) * S.ElemDensity[E] * S.ElemEnergy[E];

  WorkCounter WC;
  CallContextLog Log;
  PhaseMap PM(NominalIterations ? NominalIterations : MaxIterations,
              Schedule.numPhases());

  // Initial timestep from the initial Courant constraint so the run
  // starts in the physically active regime rather than ramping up
  // through dozens of inert iterations.
  double InitialSoundSpeed =
      std::sqrt(Gamma * S.ElemPressure[0] / S.ElemDensity[0]);
  double SimTime = 0.0;
  double Dt = CourantFactor * Dx / InitialSoundSpeed;
  size_t Iter = 0;
  while (SimTime < EndTime && Iter < MaxIterations) {
    Log.beginIteration();
    size_t Phase = PM.phaseOf(Iter);

    // --- calculate_timeconstraints (truncation) -----------------------
    {
      int Level = Schedule.level(Phase, CalculateTimeConstraints);
      double MinRatio = 1e30;
      uint64_t Mark = WC.total();
      // The scan walks right-to-left, so truncation drops the *leftmost*
      // elements -- where the blast lives early on. Truncating in early
      // phases therefore misses the governing constraint (dt too large,
      // mild instability); by late phases the shock has moved into the
      // scanned region and truncation is nearly free.
      truncatedLoop(N, Level, Blocks[CalculateTimeConstraints].MaxLevel,
                    [&](size_t ScanIdx) {
                      size_t E = N - 1 - ScanIdx;
                      double C = std::sqrt(std::max(
                          Gamma * S.ElemPressure[E] / S.ElemDensity[E],
                          1e-12));
                      double Width = std::max(S.ElemVolume[E], VolumeFloor);
                      MinRatio = std::min(MinRatio, Width / C);
                      WC.add(TimeConstraintWork);
                    });
      double NewDt = CourantFactor * MinRatio;
      // Standard hydro dt governors: bounded growth, an absolute band
      // (so corrupted runs change the iteration count without running
      // away), and never overshooting the end time.
      NewDt = std::min(NewDt, Dt * 1.1);
      NewDt = std::clamp(NewDt, EndTime / 1060.0, EndTime / 922.0);
      Dt = std::min(NewDt, EndTime - SimTime + 1e-12);
      Log.recordBlock(CalculateTimeConstraints, WC.since(Mark));
    }

    // --- forces_on_elements (perforation) ------------------------------
    {
      int Level = Schedule.level(Phase, ForcesOnElements);
      uint64_t Mark = WC.total();
      // The expensive part of the force kernel is the artificial
      // viscosity / material-model evaluation (scaled by the region
      // count, like LULESH's per-region EOS loops). Perforated elements
      // keep last step's viscosity -- a one-step-stale q is a mild,
      // stable approximation because the shock front moves slowly
      // relative to the timestep.
      rotatingPerforatedLoop(N, Level, Iter, [&](size_t E) {
        double DuAcross = S.NodeVel[E + 1] - S.NodeVel[E];
        double Q = 0.0;
        if (DuAcross < 0.0) {
          double C = std::sqrt(std::max(
              Gamma * S.ElemPressure[E] / S.ElemDensity[E], 1e-12));
          Q = S.ElemDensity[E] *
              (2.0 * DuAcross * DuAcross + 0.6 * C * std::fabs(DuAcross));
        }
        S.ElemViscosity[E] = Q;
        WC.add(ForceWorkPerElem);
      });
      // Stress assembly and nodal forces (cheap, always exact).
      for (size_t E = 0; E < N; ++E)
        S.ElemStress[E] = S.ElemPressure[E] + S.ElemViscosity[E];
      S.NodeForce[0] = 0.0;
      S.NodeForce[N] = 0.0;
      for (size_t I = 1; I < N; ++I)
        S.NodeForce[I] = S.ElemStress[I - 1] - S.ElemStress[I];
      Log.recordBlock(ForcesOnElements, WC.since(Mark));
    }

    // --- position_of_elements (perforation) ----------------------------
    {
      int Level = Schedule.level(Phase, PositionOfElements);
      uint64_t Mark = WC.total();
      // Perforated nodes integrate with their *previous* acceleration
      // (one-or-more-steps stale); every node still moves, so the mesh
      // deforms smoothly with a slightly lagged force response.
      rotatingPerforatedLoop(N + 1, Level, Iter, [&](size_t I) {
        double NodeMass =
            0.5 * (S.ElemMass[I > 0 ? I - 1 : 0] +
                   S.ElemMass[I < N ? I : N - 1]);
        S.NodeAccel[I] = S.NodeForce[I] / NodeMass;
        WC.add(PositionWork);
      });
      for (size_t I = 0; I <= N; ++I) {
        double V = S.NodeVel[I] + Dt * S.NodeAccel[I];
        if (!std::isfinite(V))
          V = 0.0;
        S.NodeVel[I] = std::clamp(V, -VelocityCeiling, VelocityCeiling);
        S.NodePos[I] += Dt * S.NodeVel[I];
      }
      // Untangle any mesh inversions approximation may cause.
      for (size_t I = 1; I <= N; ++I)
        if (S.NodePos[I] <= S.NodePos[I - 1])
          S.NodePos[I] = S.NodePos[I - 1] + VolumeFloor;
      Log.recordBlock(PositionOfElements, WC.since(Mark));
    }

    // --- strain_of_elements (memoization) -------------------------------
    {
      int Level = Schedule.level(Phase, StrainOfElements);
      uint64_t Mark = WC.total();
      // Memoization over timesteps (the paper's cache-and-reuse pattern
      // applied to the outer loop): the full strain-rate kernel runs
      // every (Level+1)-th iteration and intermediate steps reuse the
      // cached rates. Volumes always follow the mesh so mass stays
      // consistent.
      bool RecomputeStrain =
          Level == 0 || Iter % (static_cast<size_t>(Level) + 1) == 0;
      for (size_t E = 0; E < N; ++E) {
        double NewVolume =
            std::max(S.NodePos[E + 1] - S.NodePos[E], VolumeFloor);
        S.ElemVolume[E] = NewVolume;
        S.ElemDensity[E] = S.ElemMass[E] / NewVolume;
        if (RecomputeStrain) {
          S.ElemStrainRate[E] =
              (S.NodeVel[E + 1] - S.NodeVel[E]) / NewVolume;
          WC.add(StrainWork);
        } else {
          WC.add(1); // Geometry bookkeeping still costs a little.
        }
      }
      Log.recordBlock(StrainOfElements, WC.since(Mark));
    }

    // --- energy + EOS update (exact epilogue) ---------------------------
    for (size_t E = 0; E < N; ++E) {
      // Compression work: de = -(p + q) * dV / mass, rate-limited so a
      // corrupted state degrades the answer instead of blowing up the
      // integration (real hydro codes bound de/dt similarly).
      double DVolume = S.ElemStrainRate[E] * S.ElemVolume[E] * Dt;
      double DEnergy = -(S.ElemPressure[E] + S.ElemViscosity[E]) * DVolume /
                       S.ElemMass[E];
      if (!std::isfinite(DEnergy))
        DEnergy = 0.0;
      S.ElemEnergy[E] = std::clamp(S.ElemEnergy[E] + DEnergy, EnergyFloor,
                                   EnergyCeiling);
      S.ElemPressure[E] =
          (Gamma - 1.0) * S.ElemDensity[E] * S.ElemEnergy[E];
      WC.add(EnergyWork);
    }

    SimTime += Dt;
    ++Iter;
  }

  RunResult R;
  R.WorkUnits = WC.total();
  R.OuterIterations = Iter;
  // Region-averaged final energies (see OutputBins comment above).
  size_t BinSize = std::max<size_t>(1, N / OutputBins);
  for (size_t Begin = 0; Begin < N; Begin += BinSize) {
    size_t End = std::min(Begin + BinSize, N);
    double Sum = 0.0;
    for (size_t E = Begin; E < End; ++E)
      Sum += S.ElemEnergy[E];
    R.Output.push_back(Sum / static_cast<double>(End - Begin));
  }
  R.ControlFlowSignature = Log.signature();
  R.WorkPerIteration.reserve(Iter);
  for (size_t I = 0; I < Iter; ++I)
    R.WorkPerIteration.push_back(Log.workInIteration(I));
  return R;
}

double MiniLulesh::qosDegradation(const RunResult &Exact,
                                  const RunResult &Approx) const {
  // Final energy difference averaged across elements (paper Sec. 2).
  return relativeDistortionPercent(Exact.Output, Approx.Output);
}
