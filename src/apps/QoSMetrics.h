//===- apps/QoSMetrics.h - Quality-of-service metrics ----------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The QoS metrics of paper Secs. 3.1 and 4.1: the default relative
/// distortion (Rinard, ICS 2006) for numeric outputs, PSNR for video,
/// and a magnitude-weighted distortion for Bodytrack's pose vectors.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPS_QOSMETRICS_H
#define OPPROX_APPS_QOSMETRICS_H

#include <cstddef>
#include <vector>

namespace opprox {

/// Default distortion: mean over outputs of |approx - exact| scaled by
/// the exact magnitude, as a percentage. Clamped to [0, 1000] to keep
/// diverged runs finite.
double relativeDistortionPercent(const std::vector<double> &Exact,
                                 const std::vector<double> &Approx);

/// Magnitude-weighted distortion (Bodytrack, Sec. 4.1): component errors
/// weighted by the exact component's magnitude so large body parts count
/// more. Returned as a percentage.
double weightedDistortionPercent(const std::vector<double> &Exact,
                                 const std::vector<double> &Approx);

/// Peak signal-to-noise ratio in dB against \p PeakValue. Identical
/// signals return 99 dB (a finite stand-in for infinity).
double psnr(const std::vector<double> &Reference,
            const std::vector<double> &Test, double PeakValue);

/// Maps PSNR to an equivalent degradation percentage via the normalized
/// RMSE identity 100 * 10^(-PSNR/20): ~32% at 10 dB, 10% at 20 dB, ~3%
/// at 30 dB. This lets PSNR-metric applications share the optimizer's
/// "degradation budget" interface; the paper's PSNR targets 10/20/30
/// correspond to its large/medium/small budgets the same way.
double psnrToDegradationPercent(double PsnrDb);

/// Inverse of psnrToDegradationPercent.
double degradationPercentToPsnr(double Percent);

} // namespace opprox

#endif // OPPROX_APPS_QOSMETRICS_H
