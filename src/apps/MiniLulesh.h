//===- apps/MiniLulesh.h - Lagrangian shock hydrodynamics ------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A 1-D Lagrangian explicit shock-hydrodynamics miniapp standing in for
/// LULESH (paper Sec. 2): a Sedov-style blast in a gamma-law gas on a
/// staggered mesh, advanced with an adaptive Courant timestep until a
/// fixed simulation end time. Matches LULESH's computation pattern in
/// the respects the paper relies on:
///
///  - a while-style outer loop whose iteration count depends on the
///    evolving state (approximation changes dt, so the number of
///    iterations rises or falls vs. the exact run -- Fig. 3);
///  - four approximable blocks mirroring the paper's choices:
///    forces_on_elements (perforation), position_of_elements
///    (perforation), strain_of_elements (memoization), and
///    calculate_timeconstraints (truncation);
///  - QoS = relative difference in final per-element energy.
///
/// Input parameters: mesh size (elements = 10x) and number of material
/// regions (scales force-kernel cost, as LULESH's region loops do).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPS_MINILULESH_H
#define OPPROX_APPS_MINILULESH_H

#include "apps/ApproxApp.h"

namespace opprox {

/// LULESH-style shock-hydro application. See file comment.
class MiniLulesh : public ApproxApp {
public:
  MiniLulesh();

  std::string name() const override { return "lulesh"; }
  const std::vector<ApproximableBlock> &blocks() const override {
    return Blocks;
  }
  std::vector<std::string> parameterNames() const override;
  std::vector<std::vector<double>> trainingInputs() const override;
  std::vector<double> defaultInput() const override;
  RunResult run(const std::vector<double> &Input,
                const PhaseSchedule &Schedule,
                size_t NominalIterations) const override;
  double qosDegradation(const RunResult &Exact,
                        const RunResult &Approx) const override;

  /// Block indices, for readable schedules in tests and benches.
  enum BlockId : size_t {
    ForcesOnElements = 0,
    PositionOfElements = 1,
    StrainOfElements = 2,
    CalculateTimeConstraints = 3,
  };

private:
  std::vector<ApproximableBlock> Blocks;
};

} // namespace opprox

#endif // OPPROX_APPS_MINILULESH_H
