//===- apps/QoSMetrics.cpp ------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/QoSMetrics.h"
#include <algorithm>
#include <cassert>
#include <cmath>

using namespace opprox;

static double clampPercent(double P) {
  if (!std::isfinite(P))
    return 1000.0;
  return std::clamp(P, 0.0, 1000.0);
}

double opprox::relativeDistortionPercent(const std::vector<double> &Exact,
                                         const std::vector<double> &Approx) {
  assert(Exact.size() == Approx.size() && "output length mismatch");
  if (Exact.empty())
    return 0.0;
  // Scale each component by its own magnitude, floored at the mean
  // magnitude: near-zero components (elements the shock never reached,
  // converged residuals) must not turn rounding noise into huge
  // "relative" error.
  double MeanAbs = 0.0;
  for (double E : Exact)
    MeanAbs += std::fabs(E);
  MeanAbs = std::max(MeanAbs / static_cast<double>(Exact.size()), 1e-12);
  double Sum = 0.0;
  for (size_t I = 0; I < Exact.size(); ++I) {
    double Scale = std::max(std::fabs(Exact[I]), MeanAbs);
    Sum += std::fabs(Approx[I] - Exact[I]) / Scale;
  }
  return clampPercent(100.0 * Sum / static_cast<double>(Exact.size()));
}

double opprox::weightedDistortionPercent(const std::vector<double> &Exact,
                                         const std::vector<double> &Approx) {
  assert(Exact.size() == Approx.size() && "output length mismatch");
  if (Exact.empty())
    return 0.0;
  double WeightSum = 0.0, ErrorSum = 0.0;
  for (size_t I = 0; I < Exact.size(); ++I) {
    double W = std::fabs(Exact[I]);
    WeightSum += W;
    double Scale = std::max(std::fabs(Exact[I]), 1e-9);
    ErrorSum += W * std::fabs(Approx[I] - Exact[I]) / Scale;
  }
  if (WeightSum <= 0.0)
    return relativeDistortionPercent(Exact, Approx);
  return clampPercent(100.0 * ErrorSum / WeightSum);
}

double opprox::psnr(const std::vector<double> &Reference,
                    const std::vector<double> &Test, double PeakValue) {
  assert(Reference.size() == Test.size() && "signal length mismatch");
  assert(PeakValue > 0.0 && "peak must be positive");
  if (Reference.empty())
    return 99.0;
  double Mse = 0.0;
  for (size_t I = 0; I < Reference.size(); ++I) {
    double D = Reference[I] - Test[I];
    Mse += D * D;
  }
  Mse /= static_cast<double>(Reference.size());
  if (Mse <= 1e-12)
    return 99.0;
  double Value = 10.0 * std::log10(PeakValue * PeakValue / Mse);
  return std::clamp(Value, 0.0, 99.0);
}

double opprox::psnrToDegradationPercent(double PsnrDb) {
  return 100.0 * std::pow(10.0, -PsnrDb / 20.0);
}

double opprox::degradationPercentToPsnr(double Percent) {
  assert(Percent > 0.0 && "cannot invert zero degradation");
  return -20.0 * std::log10(Percent / 100.0);
}
