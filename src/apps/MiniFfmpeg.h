//===- apps/MiniFfmpeg.h - Video filter pipeline ---------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A video filter pipeline standing in for FFmpeg (paper Sec. 4.1): a
/// synthetic grayscale scene is decoded frame by frame, passed through a
/// blur / edge-detection / deflate filter chain, then re-encoded with a
/// delta encoder that only keeps changes relative to the previously
/// *reconstructed* frame -- precisely the inter-frame dependency the
/// paper blames for first-phase errors propagating through all 150
/// frames (Sec. 5.1.1). The outer loop enumerates frames, so its
/// iteration count is input-determined and speedup is phase-invariant.
///
/// The `filter_order` input swaps the deflate and edge-detection stages,
/// reproducing Fig. 7's control-flow-dependent QoS and giving the
/// decision-tree classifier a genuinely input-dependent control flow.
///
/// QoS metric: PSNR (higher is better), exposed to the budget interface
/// via psnrToDegradationPercent.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPS_MINIFFMPEG_H
#define OPPROX_APPS_MINIFFMPEG_H

#include "apps/ApproxApp.h"

namespace opprox {

/// FFmpeg-style filter-pipeline application. See file comment.
class MiniFfmpeg : public ApproxApp {
public:
  MiniFfmpeg();

  std::string name() const override { return "ffmpeg"; }
  const std::vector<ApproximableBlock> &blocks() const override {
    return Blocks;
  }
  std::vector<std::string> parameterNames() const override;
  std::vector<std::vector<double>> trainingInputs() const override;
  std::vector<double> defaultInput() const override;
  RunResult run(const std::vector<double> &Input,
                const PhaseSchedule &Schedule,
                size_t NominalIterations) const override;
  double qosDegradation(const RunResult &Exact,
                        const RunResult &Approx) const override;
  bool usesPsnr() const override { return true; }
  double psnrValue(const RunResult &Exact,
                   const RunResult &Approx) const override;

  enum BlockId : size_t {
    BlurFilter = 0,
    EdgeFilter = 1,
    DeflateFilter = 2,
  };

private:
  std::vector<ApproximableBlock> Blocks;
};

} // namespace opprox

#endif // OPPROX_APPS_MINIFFMPEG_H
