//===- apps/MiniBodytrack.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/MiniBodytrack.h"
#include "apps/QoSMetrics.h"
#include "approx/CallContextLog.h"
#include "approx/Techniques.h"
#include "approx/WorkCounter.h"
#include "support/Random.h"
#include <algorithm>
#include <cmath>

using namespace opprox;

namespace {

constexpr size_t PoseDim = 5;     // Torso, head, two arms, two legs - 1.
constexpr size_t FeatureCells = 32;

constexpr uint64_t LikelihoodWork = 4; // Per particle per pose component.
constexpr uint64_t PerturbWork = 3;    // Per particle per pose component.
constexpr uint64_t FeatureWork = 5;    // Per image cell.
constexpr uint64_t ResampleWork = 2;   // Per particle.

/// Ground-truth pose component K at time T: smooth periodic motion with
/// per-component amplitude and frequency. Components are ordered by
/// magnitude so the weighted QoS metric emphasizes the torso.
double truePose(size_t K, double T) {
  double Amplitude = 4.0 / (1.0 + static_cast<double>(K));
  double Frequency = 1.0 + 0.7 * static_cast<double>(K);
  double Offset = 2.0 + static_cast<double>(PoseDim - K);
  return Offset + Amplitude * std::sin(Frequency * T + 0.3 * static_cast<double>(K));
}

} // namespace

MiniBodytrack::MiniBodytrack() {
  Blocks = {
      {"likelihood_eval", ApproxTechniqueKind::LoopPerforation, 5},
      {"particle_perturb", ApproxTechniqueKind::LoopPerforation, 5},
      {"feature_extract", ApproxTechniqueKind::LoopPerforation, 5},
      {"min_particles", ApproxTechniqueKind::ParameterTuning, 5},
  };
}

std::vector<std::string> MiniBodytrack::parameterNames() const {
  return {"annealing_layers", "num_particles", "num_frames"};
}

std::vector<std::vector<double>> MiniBodytrack::trainingInputs() const {
  return {{3, 96, 10}, {3, 160, 14}, {4, 96, 14}, {4, 160, 10},
          {5, 128, 12}};
}

std::vector<double> MiniBodytrack::defaultInput() const {
  return {4, 128, 12};
}

RunResult MiniBodytrack::run(const std::vector<double> &Input,
                             const PhaseSchedule &Schedule,
                             size_t NominalIterations) const {
  assert(Input.size() == 3 &&
         "bodytrack expects [annealing_layers, num_particles, num_frames]");
  assert(Schedule.numBlocks() == Blocks.size() && "block count mismatch");
  size_t Layers = static_cast<size_t>(Input[0]);
  size_t NumParticles = static_cast<size_t>(Input[1]);
  size_t Frames = static_cast<size_t>(Input[2]);
  assert(Layers >= 1 && NumParticles >= 8 && Frames >= 1 &&
         "degenerate configuration");
  size_t TotalIterations = Frames * Layers;

  // Deterministic streams: one for observation noise, one for particle
  // dynamics, both keyed by the input so trajectories are reproducible.
  uint64_t Seed = 0xB0D7ULL ^ (Layers * 2654435761ULL) ^
                  (NumParticles * 40503ULL) ^ (Frames * 69069ULL);
  Rng InitRng(Seed);
  // Counter-based noise: hashing (seed, iteration, entity, salt) keeps
  // every random draw identical no matter which loop iterations a
  // perforated kernel skips, so QoS differences reflect dynamics, not a
  // shifted random stream.
  auto HashNormal = [Seed](uint64_t A, uint64_t B, uint64_t Salt) {
    uint64_t X = Seed ^ (A * 0x9e3779b97f4a7c15ULL) ^
                 (B * 0xbf58476d1ce4e5b9ULL) ^ (Salt * 0x94d049bb133111ebULL);
    X ^= X >> 30;
    X *= 0xbf58476d1ce4e5b9ULL;
    X ^= X >> 27;
    X *= 0x94d049bb133111ebULL;
    X ^= X >> 31;
    double U1 = std::max(
        static_cast<double>(X >> 11) * 0x1.0p-53, 1e-300);
    uint64_t Y = X * 0xd1b54a32d192ed03ULL + 0x9e3779b97f4a7c15ULL;
    Y ^= Y >> 29;
    double U2 = static_cast<double>(Y >> 11) * 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
  };

  WorkCounter WC;
  CallContextLog Log;
  PhaseMap PM(NominalIterations ? NominalIterations : TotalIterations,
              Schedule.numPhases());

  // Particle population, initialized around the first true pose.
  std::vector<std::vector<double>> Particles(
      NumParticles, std::vector<double>(PoseDim, 0.0));
  std::vector<double> Weights(NumParticles, 1.0);
  for (size_t P = 0; P < NumParticles; ++P)
    for (size_t K = 0; K < PoseDim; ++K)
      Particles[P][K] = truePose(K, 0.0) + 0.5 * InitRng.gaussian();

  std::vector<double> Estimates; // Frames x PoseDim.
  Estimates.reserve(Frames * PoseDim);

  size_t Iter = 0;
  for (size_t Frame = 0; Frame < Frames; ++Frame) {
    double T = 0.2 * static_cast<double>(Frame);

    // Observation for this frame, extracted once per frame in the first
    // layer iteration below.
    std::vector<double> Observation(PoseDim, 0.0);

    for (size_t Layer = 0; Layer < Layers; ++Layer) {
      Log.beginIteration();
      size_t Phase = PM.phaseOf(Iter);

      // Annealing temperature: later layers peak the likelihood. The
      // base is deliberately soft -- a broad likelihood makes the filter
      // lean on temporal continuity, so a corrupted population takes
      // several frames to re-acquire the target (early-phase errors
      // cascade, Fig. 9c).
      double Beta =
          0.15 * std::pow(2.0, static_cast<double>(Layer));

      // --- feature_extract (perforation over image cells) ------------
      if (Layer == 0) {
        int Level = Schedule.level(Phase, FeatureExtract);
        uint64_t Mark = WC.total();
        // Each cell contributes a noisy vote per pose component; the
        // observation is the average of processed cells. Skipping cells
        // coarsens the observation.
        std::vector<double> Acc(PoseDim, 0.0);
        size_t Used = 0;
        perforatedLoop(FeatureCells, Level, [&](size_t Cell) {
          for (size_t K = 0; K < PoseDim; ++K) {
            // Each cell has a fixed calibration offset plus per-frame
            // noise. Averaging over *all* cells cancels the offsets;
            // perforation averages a subset, leaving a systematic bias
            // that drags the observation -- and with it the particle
            // population -- off target for the whole phase.
            double CellBias = 1.6 * HashNormal(Cell, K, 23);
            double FrameNoise = 0.4 * HashNormal(Frame * 100 + Cell, K, 11);
            Acc[K] += truePose(K, T) + CellBias + FrameNoise;
          }
          ++Used;
          WC.add(FeatureWork);
        });
        for (size_t K = 0; K < PoseDim; ++K)
          Observation[K] = Acc[K] / static_cast<double>(Used);
        Log.recordBlock(FeatureExtract, WC.since(Mark));
      }

      // --- min_particles knob (parameter tuning) ----------------------
      // Higher levels shrink the active particle set, reducing all
      // downstream work at the cost of tracking robustness.
      size_t ActiveParticles = tunedParameter(
          NumParticles, Schedule.level(Phase, MinParticlesKnob));

      // --- particle_perturb (perforation) -----------------------------
      {
        int Level = Schedule.level(Phase, ParticlePerturb);
        uint64_t Mark = WC.total();
        double Spread = 0.18 / std::sqrt(Beta);
        perforatedLoop(ActiveParticles, Level, [&](size_t P) {
          for (size_t K = 0; K < PoseDim; ++K) {
            Particles[P][K] += Spread * HashNormal(Iter, P, K + 17);
            WC.add(PerturbWork);
          }
        });
        Log.recordBlock(ParticlePerturb, WC.since(Mark));
      }

      // --- likelihood_eval (perforation) -------------------------------
      {
        int Level = Schedule.level(Phase, LikelihoodEval);
        uint64_t Mark = WC.total();
        // Perforated particles keep their stale weight.
        perforatedLoop(ActiveParticles, Level, [&](size_t P) {
          double Err2 = 0.0;
          for (size_t K = 0; K < PoseDim; ++K) {
            double D = Particles[P][K] - Observation[K];
            Err2 += D * D;
            WC.add(LikelihoodWork);
          }
          Weights[P] = std::exp(-Beta * Err2);
        });
        Log.recordBlock(LikelihoodEval, WC.since(Mark));
      }

      // --- systematic resampling (exact epilogue) ----------------------
      {
        double WeightSum = 0.0;
        for (size_t P = 0; P < ActiveParticles; ++P)
          WeightSum += Weights[P];
        if (WeightSum > 1e-300) {
          std::vector<std::vector<double>> Resampled;
          Resampled.reserve(ActiveParticles);
          double Step = WeightSum / static_cast<double>(ActiveParticles);
          double Position = 0.5 * Step;
          double Cumulative = Weights[0];
          size_t Src = 0;
          for (size_t P = 0; P < ActiveParticles; ++P) {
            while (Cumulative < Position && Src + 1 < ActiveParticles)
              Cumulative += Weights[++Src];
            Resampled.push_back(Particles[Src]);
            Position += Step;
            WC.add(ResampleWork);
          }
          for (size_t P = 0; P < ActiveParticles; ++P)
            Particles[P] = Resampled[P];
        }
      }

      ++Iter;
    }

    // Frame estimate: mean of the (resampled, hence equal-weight)
    // particle population.
    for (size_t K = 0; K < PoseDim; ++K) {
      double Sum = 0.0;
      for (size_t P = 0; P < NumParticles; ++P)
        Sum += Particles[P][K];
      Estimates.push_back(Sum / static_cast<double>(NumParticles));
    }
  }

  RunResult R;
  R.WorkUnits = WC.total();
  R.OuterIterations = Iter;
  R.Output = std::move(Estimates);
  R.ControlFlowSignature = Log.signature();
  R.WorkPerIteration.reserve(Iter);
  for (size_t I = 0; I < Iter; ++I)
    R.WorkPerIteration.push_back(Log.workInIteration(I));
  return R;
}

double MiniBodytrack::qosDegradation(const RunResult &Exact,
                                     const RunResult &Approx) const {
  return weightedDistortionPercent(Exact.Output, Approx.Output);
}
