//===- apps/ApproxApp.h - Tunable-application interface --------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The contract between OPPROX and an application with tunable
/// approximable blocks (paper Sec. 3.1). An application declares its
/// input parameters and ABs, and can execute under any PhaseSchedule,
/// reporting deterministic work, outer-loop iteration count, output
/// values, and a control-flow signature.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPS_APPROXAPP_H
#define OPPROX_APPS_APPROXAPP_H

#include "approx/ApproximableBlock.h"
#include "approx/PhaseSchedule.h"
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace opprox {

/// Everything one application execution produces.
struct RunResult {
  /// Abstract work units executed (the paper's "instructions executed").
  uint64_t WorkUnits = 0;
  /// Outer-loop iterations performed.
  size_t OuterIterations = 0;
  /// Raw output values for QoS computation (energies, pixels, ...).
  std::vector<double> Output;
  /// Control-flow signature from the call-context log.
  std::string ControlFlowSignature;
  /// Work charged per outer iteration (for phase attribution).
  std::vector<uint64_t> WorkPerIteration;
};

/// Abstract application with approximable blocks.
class ApproxApp {
public:
  virtual ~ApproxApp();

  /// Short identifier, e.g. "lulesh".
  virtual std::string name() const = 0;

  /// The application's approximable blocks, in kernel order.
  virtual const std::vector<ApproximableBlock> &blocks() const = 0;

  /// Names of the input parameters, in the order run() expects them.
  virtual std::vector<std::string> parameterNames() const = 0;

  /// Representative training input combinations (paper Sec. 3.3).
  virtual std::vector<std::vector<double>> trainingInputs() const = 0;

  /// The production input used by the evaluation benches.
  virtual std::vector<double> defaultInput() const = 0;

  /// Executes under \p Schedule. \p NominalIterations anchors the phase
  /// boundaries and must be the exact run's iteration count for this
  /// input; it may be 0 only when the schedule is exact (single golden
  /// runs) or the application's iteration count is fixed by the input.
  virtual RunResult run(const std::vector<double> &Input,
                        const PhaseSchedule &Schedule,
                        size_t NominalIterations) const = 0;

  /// QoS degradation of \p Approx vs. \p Exact as a percentage
  /// (0 = identical, larger = worse). PSNR-metric applications convert
  /// via psnrToDegradationPercent so every app shares this interface.
  virtual double qosDegradation(const RunResult &Exact,
                                const RunResult &Approx) const = 0;

  /// True when the native QoS metric is PSNR (higher = better).
  virtual bool usesPsnr() const { return false; }

  /// Native PSNR in dB; only meaningful when usesPsnr().
  virtual double psnrValue(const RunResult &Exact,
                           const RunResult &Approx) const;

  // -- Convenience helpers (non-virtual) -------------------------------

  size_t numBlocks() const { return blocks().size(); }

  /// Runs with the all-exact single-phase schedule.
  RunResult runExact(const std::vector<double> &Input) const;

  /// Per-block maximum levels, for samplers and search-space counting.
  std::vector<int> maxLevels() const;
};

/// Caches exact (golden) runs per input so profilers and evaluators do
/// not repeat them; the exact run also supplies the nominal iteration
/// count that anchors phase boundaries.
///
/// Thread-safe: concurrent exactRun() calls for *different* inputs
/// compute their golden runs in parallel, while concurrent calls for the
/// *same* input compute it exactly once -- the first caller runs the
/// application under a per-entry std::call_once latch and everyone else
/// blocks until the result is ready. Returned references stay valid for
/// the cache's lifetime (entries are heap-allocated and never evicted).
class GoldenCache {
public:
  explicit GoldenCache(const ApproxApp &App) : App(App) {}

  /// The exact run for \p Input, computing and caching on first use.
  const RunResult &exactRun(const std::vector<double> &Input);

  /// Nominal (exact-run) outer-loop iteration count for \p Input.
  size_t nominalIterations(const std::vector<double> &Input);

  size_t numCached() const;

  /// Lookups served from an already-latched entry (no application run).
  size_t hits() const { return Hits.load(std::memory_order_relaxed); }

  /// Lookups that created the entry and ran the application.
  size_t misses() const { return Misses.load(std::memory_order_relaxed); }

private:
  /// A cached run with its compute-once latch. The latch lives outside
  /// the map lock so a slow golden run never blocks unrelated lookups.
  struct Entry {
    std::once_flag Once;
    RunResult Result;
  };

  const ApproxApp &App;
  mutable std::mutex MapMutex; ///< Guards Cache structure, not entries.
  std::map<std::vector<double>, std::unique_ptr<Entry>> Cache;
  std::atomic<size_t> Hits{0};
  std::atomic<size_t> Misses{0};
};

} // namespace opprox

#endif // OPPROX_APPS_APPROXAPP_H
