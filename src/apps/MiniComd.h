//===- apps/MiniComd.h - Molecular-dynamics miniapp ------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Lennard-Jones molecular-dynamics miniapp standing in for CoMD
/// (paper Sec. 4.1): a simple-cubic crystal in a periodic box advanced
/// with velocity-Verlet for a fixed number of timesteps. The outer loop
/// is a classic timestep loop -- its iteration count is an input
/// parameter and never depends on approximation, so speedup is
/// phase-invariant while early-phase errors ripple through the
/// trajectory (Figs. 9a/10a).
///
/// Approximable blocks: force computation (perforation over atoms),
/// pair-list scan (truncation of each atom's partner loop), and the
/// position/velocity advance (perforation over atoms).
///
/// Input parameters: unit cells per dimension, lattice parameter, and
/// the number of timesteps.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPS_MINICOMD_H
#define OPPROX_APPS_MINICOMD_H

#include "apps/ApproxApp.h"

namespace opprox {

/// CoMD-style molecular dynamics application. See file comment.
class MiniComd : public ApproxApp {
public:
  MiniComd();

  std::string name() const override { return "comd"; }
  const std::vector<ApproximableBlock> &blocks() const override {
    return Blocks;
  }
  std::vector<std::string> parameterNames() const override;
  std::vector<std::vector<double>> trainingInputs() const override;
  std::vector<double> defaultInput() const override;
  RunResult run(const std::vector<double> &Input,
                const PhaseSchedule &Schedule,
                size_t NominalIterations) const override;
  double qosDegradation(const RunResult &Exact,
                        const RunResult &Approx) const override;

  enum BlockId : size_t {
    ComputeForces = 0,
    PairScan = 1,
    AdvanceAtoms = 2,
  };

private:
  std::vector<ApproximableBlock> Blocks;
};

} // namespace opprox

#endif // OPPROX_APPS_MINICOMD_H
