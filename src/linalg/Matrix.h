//===- linalg/Matrix.h - Dense matrices and vectors ------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dense row-major double matrix and free vector helpers. Sized for the
/// regression problems OPPROX solves (hundreds to a few thousand rows,
/// tens of columns), so the implementation favours clarity over blocking.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_LINALG_MATRIX_H
#define OPPROX_LINALG_MATRIX_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace opprox {

/// Dense row-major matrix of doubles.
class Matrix {
public:
  Matrix() = default;

  /// Creates a Rows x Cols matrix initialized to \p Fill.
  Matrix(size_t Rows, size_t Cols, double Fill = 0.0)
      : NumRows(Rows), NumCols(Cols), Data(Rows * Cols, Fill) {}

  /// Builds a matrix from rows; every row must have equal length.
  static Matrix fromRows(const std::vector<std::vector<double>> &Rows);

  /// The N x N identity matrix.
  static Matrix identity(size_t N);

  size_t rows() const { return NumRows; }
  size_t cols() const { return NumCols; }
  bool empty() const { return Data.empty(); }

  /// Resizes to Rows x Cols reusing the existing storage (contents become
  /// unspecified). Shrinking never reallocates, so scratch matrices sized
  /// once for the largest batch stay allocation-free afterwards.
  void reshape(size_t Rows, size_t Cols) {
    NumRows = Rows;
    NumCols = Cols;
    Data.resize(Rows * Cols);
  }

  double &at(size_t R, size_t C) {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }
  double at(size_t R, size_t C) const {
    assert(R < NumRows && C < NumCols && "matrix index out of range");
    return Data[R * NumCols + C];
  }

  /// Pointer to the start of row \p R (contiguous NumCols doubles).
  double *rowData(size_t R) {
    assert(R < NumRows && "row out of range");
    return Data.data() + R * NumCols;
  }
  const double *rowData(size_t R) const {
    assert(R < NumRows && "row out of range");
    return Data.data() + R * NumCols;
  }

  /// Copies row \p R into a vector.
  std::vector<double> row(size_t R) const;

  /// Copies column \p C into a vector.
  std::vector<double> col(size_t C) const;

  /// Matrix transpose.
  Matrix transposed() const;

  /// Matrix product; cols() must equal Other.rows().
  Matrix multiply(const Matrix &Other) const;

  /// Matrix-vector product; V.size() must equal cols().
  std::vector<double> multiply(const std::vector<double> &V) const;

  /// Matrix-vector product into a caller-owned buffer (resized to
  /// rows()); performs no other allocation. Each row accumulates in
  /// ascending column order, bit-identical to a scalar
  /// sum(Row[C] * V[C]) loop -- the batched prediction path relies on
  /// this to match per-sample evaluation exactly.
  void multiplyInto(const std::vector<double> &V,
                    std::vector<double> &Out) const;

  /// Max absolute element difference against \p Other (same shape).
  double maxAbsDiff(const Matrix &Other) const;

private:
  size_t NumRows = 0;
  size_t NumCols = 0;
  std::vector<double> Data;
};

/// Dot product of equal-length vectors.
double dot(const std::vector<double> &A, const std::vector<double> &B);

/// Euclidean norm.
double norm2(const std::vector<double> &V);

/// Component-wise A + Scale * B.
std::vector<double> axpy(const std::vector<double> &A,
                         const std::vector<double> &B, double Scale);

} // namespace opprox

#endif // OPPROX_LINALG_MATRIX_H
