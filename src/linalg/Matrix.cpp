//===- linalg/Matrix.cpp --------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Matrix.h"
#include <cmath>

using namespace opprox;

Matrix Matrix::fromRows(const std::vector<std::vector<double>> &Rows) {
  if (Rows.empty())
    return Matrix();
  Matrix M(Rows.size(), Rows.front().size());
  for (size_t R = 0; R < Rows.size(); ++R) {
    assert(Rows[R].size() == M.cols() && "ragged rows");
    for (size_t C = 0; C < M.cols(); ++C)
      M.at(R, C) = Rows[R][C];
  }
  return M;
}

Matrix Matrix::identity(size_t N) {
  Matrix M(N, N);
  for (size_t I = 0; I < N; ++I)
    M.at(I, I) = 1.0;
  return M;
}

std::vector<double> Matrix::row(size_t R) const {
  const double *Begin = rowData(R);
  return std::vector<double>(Begin, Begin + NumCols);
}

std::vector<double> Matrix::col(size_t C) const {
  assert(C < NumCols && "column out of range");
  std::vector<double> Column(NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    Column[R] = at(R, C);
  return Column;
}

Matrix Matrix::transposed() const {
  Matrix T(NumCols, NumRows);
  for (size_t R = 0; R < NumRows; ++R)
    for (size_t C = 0; C < NumCols; ++C)
      T.at(C, R) = at(R, C);
  return T;
}

Matrix Matrix::multiply(const Matrix &Other) const {
  assert(NumCols == Other.rows() && "inner dimension mismatch");
  Matrix Out(NumRows, Other.cols());
  for (size_t R = 0; R < NumRows; ++R) {
    for (size_t K = 0; K < NumCols; ++K) {
      double V = at(R, K);
      if (V == 0.0)
        continue;
      const double *OtherRow = Other.rowData(K);
      double *OutRow = Out.rowData(R);
      for (size_t C = 0; C < Other.cols(); ++C)
        OutRow[C] += V * OtherRow[C];
    }
  }
  return Out;
}

std::vector<double> Matrix::multiply(const std::vector<double> &V) const {
  assert(V.size() == NumCols && "vector length mismatch");
  std::vector<double> Out(NumRows, 0.0);
  for (size_t R = 0; R < NumRows; ++R) {
    const double *Row = rowData(R);
    double Sum = 0.0;
    for (size_t C = 0; C < NumCols; ++C)
      Sum += Row[C] * V[C];
    Out[R] = Sum;
  }
  return Out;
}

void Matrix::multiplyInto(const std::vector<double> &V,
                          std::vector<double> &Out) const {
  assert(V.size() == NumCols && "vector length mismatch");
  Out.resize(NumRows);
  for (size_t R = 0; R < NumRows; ++R) {
    const double *Row = rowData(R);
    double Sum = 0.0;
    for (size_t C = 0; C < NumCols; ++C)
      Sum += Row[C] * V[C];
    Out[R] = Sum;
  }
}

double Matrix::maxAbsDiff(const Matrix &Other) const {
  assert(NumRows == Other.rows() && NumCols == Other.cols() &&
         "shape mismatch");
  double Max = 0.0;
  for (size_t I = 0; I < Data.size(); ++I)
    Max = std::max(Max, std::fabs(Data[I] - Other.Data[I]));
  return Max;
}

double opprox::dot(const std::vector<double> &A,
                   const std::vector<double> &B) {
  assert(A.size() == B.size() && "dot length mismatch");
  double Sum = 0.0;
  for (size_t I = 0; I < A.size(); ++I)
    Sum += A[I] * B[I];
  return Sum;
}

double opprox::norm2(const std::vector<double> &V) {
  return std::sqrt(dot(V, V));
}

std::vector<double> opprox::axpy(const std::vector<double> &A,
                                 const std::vector<double> &B, double Scale) {
  assert(A.size() == B.size() && "axpy length mismatch");
  std::vector<double> Out(A.size());
  for (size_t I = 0; I < A.size(); ++I)
    Out[I] = A[I] + Scale * B[I];
  return Out;
}
