//===- linalg/Decompositions.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Decompositions.h"
#include <cmath>

using namespace opprox;

QrDecomposition::QrDecomposition(const Matrix &A) : Factors(A) {
  size_t M = A.rows(), N = A.cols();
  assert(M >= N && "QR requires at least as many rows as columns");
  TauDiag.resize(N, 0.0);

  for (size_t K = 0; K < N; ++K) {
    // Compute the norm of the k-th column below (and including) the
    // diagonal.
    double Norm = 0.0;
    for (size_t I = K; I < M; ++I)
      Norm = std::hypot(Norm, Factors.at(I, K));
    if (Norm == 0.0) {
      FullRank = false;
      TauDiag[K] = 0.0;
      continue;
    }
    // LINPACK convention: give Norm the sign of the diagonal so the
    // Householder vector's leading entry lands in (1, 2] -- no
    // cancellation.
    if (Factors.at(K, K) < 0)
      Norm = -Norm;
    for (size_t I = K; I < M; ++I)
      Factors.at(I, K) /= Norm;
    Factors.at(K, K) += 1.0;

    // Apply the reflector to the remaining columns.
    for (size_t J = K + 1; J < N; ++J) {
      double S = 0.0;
      for (size_t I = K; I < M; ++I)
        S += Factors.at(I, K) * Factors.at(I, J);
      S = -S / Factors.at(K, K);
      for (size_t I = K; I < M; ++I)
        Factors.at(I, J) += S * Factors.at(I, K);
    }
    // The R diagonal this reflector produced.
    TauDiag[K] = -Norm;
  }

  // Rank check: a tiny diagonal of R relative to the largest entry means
  // numerically rank deficient.
  double MaxDiag = 0.0;
  for (double D : TauDiag)
    MaxDiag = std::max(MaxDiag, std::fabs(D));
  for (double D : TauDiag)
    if (std::fabs(D) <= 1e-12 * std::max(MaxDiag, 1.0))
      FullRank = false;
}

std::vector<double>
QrDecomposition::applyQTranspose(const std::vector<double> &B) const {
  size_t M = Factors.rows(), N = Factors.cols();
  assert(B.size() == M && "rhs length mismatch");
  std::vector<double> Y = B;
  for (size_t K = 0; K < N; ++K) {
    if (TauDiag[K] == 0.0)
      continue;
    double S = 0.0;
    for (size_t I = K; I < M; ++I)
      S += Factors.at(I, K) * Y[I];
    S = -S / Factors.at(K, K);
    for (size_t I = K; I < M; ++I)
      Y[I] += S * Factors.at(I, K);
  }
  return Y;
}

std::optional<std::vector<double>>
QrDecomposition::solveUpper(const std::vector<double> &Y) const {
  size_t N = Factors.cols();
  assert(Y.size() >= N && "rhs too short");
  std::vector<double> X(N, 0.0);
  for (size_t KPlus1 = N; KPlus1 > 0; --KPlus1) {
    size_t K = KPlus1 - 1;
    if (TauDiag[K] == 0.0)
      return std::nullopt;
    double Sum = Y[K];
    for (size_t J = K + 1; J < N; ++J)
      Sum -= Factors.at(K, J) * X[J];
    X[K] = Sum / TauDiag[K];
  }
  return X;
}

std::optional<std::vector<double>>
QrDecomposition::solve(const std::vector<double> &B) const {
  if (!FullRank)
    return std::nullopt;
  return solveUpper(applyQTranspose(B));
}

Matrix QrDecomposition::rFactor() const {
  size_t N = Factors.cols();
  Matrix R(N, N);
  for (size_t I = 0; I < N; ++I) {
    R.at(I, I) = TauDiag[I];
    for (size_t J = I + 1; J < N; ++J)
      R.at(I, J) = Factors.at(I, J);
  }
  return R;
}

std::optional<Matrix> opprox::cholesky(const Matrix &A) {
  assert(A.rows() == A.cols() && "Cholesky needs a square matrix");
  size_t N = A.rows();
  Matrix L(N, N);
  for (size_t I = 0; I < N; ++I) {
    for (size_t J = 0; J <= I; ++J) {
      double Sum = A.at(I, J);
      for (size_t K = 0; K < J; ++K)
        Sum -= L.at(I, K) * L.at(J, K);
      if (I == J) {
        if (Sum <= 0.0)
          return std::nullopt;
        L.at(I, I) = std::sqrt(Sum);
      } else {
        L.at(I, J) = Sum / L.at(J, J);
      }
    }
  }
  return L;
}

std::vector<double> opprox::choleskySolve(const Matrix &L,
                                          const std::vector<double> &B) {
  size_t N = L.rows();
  assert(B.size() == N && "rhs length mismatch");
  // Forward substitution: L y = b.
  std::vector<double> Y(N);
  for (size_t I = 0; I < N; ++I) {
    double Sum = B[I];
    for (size_t K = 0; K < I; ++K)
      Sum -= L.at(I, K) * Y[K];
    Y[I] = Sum / L.at(I, I);
  }
  // Back substitution: L^T x = y.
  std::vector<double> X(N);
  for (size_t IPlus1 = N; IPlus1 > 0; --IPlus1) {
    size_t I = IPlus1 - 1;
    double Sum = Y[I];
    for (size_t K = I + 1; K < N; ++K)
      Sum -= L.at(K, I) * X[K];
    X[I] = Sum / L.at(I, I);
  }
  return X;
}
