//===- linalg/LeastSquares.cpp --------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "linalg/LeastSquares.h"
#include "linalg/Decompositions.h"

using namespace opprox;

std::optional<std::vector<double>>
opprox::solveLeastSquares(const Matrix &A, const std::vector<double> &B) {
  assert(A.rows() == B.size() && "rhs length mismatch");
  if (A.rows() < A.cols())
    return std::nullopt;
  QrDecomposition Qr(A);
  return Qr.solve(B);
}

std::vector<double> opprox::solveRidge(const Matrix &A,
                                       const std::vector<double> &B,
                                       double Lambda) {
  assert(A.rows() == B.size() && "rhs length mismatch");
  assert(Lambda > 0.0 && "ridge penalty must be positive");
  size_t N = A.cols();
  // Normal equations: (A^T A + Lambda I) x = A^T B.
  Matrix At = A.transposed();
  Matrix AtA = At.multiply(A);
  for (size_t I = 0; I < N; ++I)
    AtA.at(I, I) += Lambda;
  std::vector<double> AtB = At.multiply(B);
  std::optional<Matrix> L = cholesky(AtA);
  // Lambda > 0 makes AtA positive definite up to rounding; if rounding
  // still defeats Cholesky, escalate the penalty rather than crash.
  double Penalty = Lambda;
  while (!L) {
    Penalty *= 10.0;
    Matrix Regularized = AtA;
    for (size_t I = 0; I < N; ++I)
      Regularized.at(I, I) += Penalty;
    L = cholesky(Regularized);
  }
  return choleskySolve(*L, AtB);
}
