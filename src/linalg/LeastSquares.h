//===- linalg/LeastSquares.h - OLS and ridge solvers -----------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Least-squares solvers behind polynomial regression (paper Sec. 3.6).
/// Ordinary least squares via Householder QR with a ridge fallback: the
/// exhaustive+sparse sampling of approximation levels often produces
/// collinear polynomial features, and a small L2 penalty keeps the fit
/// well-posed instead of failing.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_LINALG_LEASTSQUARES_H
#define OPPROX_LINALG_LEASTSQUARES_H

#include "linalg/Matrix.h"
#include <optional>

namespace opprox {

/// Minimizes ||A x - B||_2 via QR. Returns std::nullopt when A is rank
/// deficient (use ridge in that case).
std::optional<std::vector<double>> solveLeastSquares(const Matrix &A,
                                                     const std::vector<double> &B);

/// Minimizes ||A x - B||^2 + Lambda ||x||^2 via the normal equations with
/// Cholesky. Lambda > 0 guarantees a solution for any A.
std::vector<double> solveRidge(const Matrix &A, const std::vector<double> &B,
                               double Lambda);

} // namespace opprox

#endif // OPPROX_LINALG_LEASTSQUARES_H
