//===- linalg/Decompositions.h - QR and Cholesky ---------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Householder QR and Cholesky factorizations. QR backs the least-squares
/// solver used by polynomial regression; Cholesky backs the ridge normal
/// equations and doubles as a positive-definiteness check.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_LINALG_DECOMPOSITIONS_H
#define OPPROX_LINALG_DECOMPOSITIONS_H

#include "linalg/Matrix.h"
#include <optional>

namespace opprox {

/// Householder QR of an m x n matrix with m >= n. Stores the factors in
/// compact form and exposes the operations least-squares needs.
class QrDecomposition {
public:
  /// Factorizes \p A (copied). Requires A.rows() >= A.cols().
  explicit QrDecomposition(const Matrix &A);

  /// True when A had (numerically) full column rank.
  bool isFullRank() const { return FullRank; }

  /// Applies Q^T to \p B (length m), returning a length-m vector.
  std::vector<double> applyQTranspose(const std::vector<double> &B) const;

  /// Solves R x = y for the top n entries of \p Y by back substitution.
  /// Returns std::nullopt when R is singular.
  std::optional<std::vector<double>>
  solveUpper(const std::vector<double> &Y) const;

  /// Convenience: least-squares solution of A x ~= B, or nullopt when A is
  /// rank deficient.
  std::optional<std::vector<double>>
  solve(const std::vector<double> &B) const;

  /// Reconstructs the explicit R factor (n x n upper triangle).
  Matrix rFactor() const;

private:
  Matrix Factors;              // Householder vectors below diag, R on/above.
  std::vector<double> TauDiag; // Diagonal of R (signed).
  bool FullRank = true;
};

/// Cholesky factorization A = L L^T of a symmetric positive-definite
/// matrix. Returns std::nullopt when A is not positive definite.
std::optional<Matrix> cholesky(const Matrix &A);

/// Solves A x = B given the Cholesky factor \p L of A.
std::vector<double> choleskySolve(const Matrix &L,
                                  const std::vector<double> &B);

} // namespace opprox

#endif // OPPROX_LINALG_DECOMPOSITIONS_H
