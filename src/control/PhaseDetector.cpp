//===- control/PhaseDetector.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "control/PhaseDetector.h"
#include "approx/PhaseSchedule.h"
#include "support/Telemetry.h"
#include <cmath>

using namespace opprox;
using namespace opprox::control;

/// Relative divergence floor: centroid magnitudes below this are treated
/// as this, so a near-zero centroid does not turn every fluctuation into
/// an infinite relative distance.
static constexpr double kEps = 1e-9;

static double relativeDistance(double X, double C) {
  return std::fabs(X - C) / std::max(std::fabs(C), kEps);
}

PhaseDetector::PhaseDetector(const PhaseDetectorOptions &Opts) : Opts(Opts) {}

bool PhaseDetector::observe(const IntervalSample &S) {
  size_t Iters = S.Iterations == 0 ? 1 : S.Iterations;
  double WorkPerIter = static_cast<double>(S.WorkUnits) /
                       static_cast<double>(Iters);
  double QosPerIter = S.QosDelta / static_cast<double>(Iters);

  bool Boundary = false;
  if (Starts.empty()) {
    // The first interval opens phase 0 by definition; not a boundary.
    Starts.push_back(0);
  } else if (Opts.StaticPhases > 0) {
    // Fallback: replay the offline PhaseMap slicing. A boundary fires
    // when this interval's first iteration falls in a later static
    // phase than the previous interval's.
    PhaseMap Map(Opts.NominalIterations, Opts.StaticPhases);
    if (Map.phaseOf(IterSeen) > Map.phaseOf(Starts.back()) &&
        Starts.size() < Opts.MaxPhases)
      Boundary = true;
  } else if (IntervalsInPhase >= Opts.MinIntervalsPerPhase &&
             Starts.size() < Opts.MaxPhases) {
    double Dist = std::max(relativeDistance(WorkPerIter, CentroidWork),
                           relativeDistance(QosPerIter, CentroidQos));
    Boundary = Dist > Opts.BoundaryThreshold;
  }

  if (Boundary) {
    Starts.push_back(IterSeen);
    IntervalsInPhase = 0;
    MetricsRegistry::global().counter("control.detected_phases").add();
  }
  // Fold this interval's signature into the (possibly fresh) phase
  // centroid.
  double N = static_cast<double>(IntervalsInPhase);
  CentroidWork = (CentroidWork * N + WorkPerIter) / (N + 1.0);
  CentroidQos = (CentroidQos * N + QosPerIter) / (N + 1.0);
  ++IntervalsInPhase;
  IterSeen += Iters;
  return Boundary;
}
