//===- control/PhaseDetector.h - Online phase-boundary detection -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Online counterpart of the offline phase-count search (Algorithm 1,
/// core/PhaseDetector.h): instead of slicing the run into N fixed
/// near-equal ranges up front, this detector watches the metrics a run
/// actually produces -- work counters and QoS-proxy deltas, delivered as
/// per-interval samples -- builds a signature vector per interval, and
/// flags a phase boundary whenever an interval's signature diverges from
/// the running centroid of the current phase. The phase-classification
/// literature calls this signature-vector change-point detection; here
/// it is deliberately minimal and, above all, deterministic: boundaries
/// are a pure function of the sample stream and the options, so a
/// replayed trace detects bit-identical boundaries.
///
/// A static-N fallback (StaticPhases > 0) reproduces the offline
/// PhaseMap slicing exactly, so hosts can run the same ingestion code
/// path with detection disabled.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CONTROL_PHASEDETECTOR_H
#define OPPROX_CONTROL_PHASEDETECTOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace opprox {
namespace control {

/// One observation interval: a contiguous slice of outer-loop
/// iterations with the metrics accumulated over it. Hosts produce these
/// with WorkCounter::takeInterval() plus whatever QoS proxy they track.
struct IntervalSample {
  /// Abstract work units charged during the interval.
  uint64_t WorkUnits = 0;
  /// Outer-loop iterations the interval covers (must be > 0).
  size_t Iterations = 0;
  /// QoS-proxy degradation accrued over the interval, in the same
  /// percent units the models predict.
  double QosDelta = 0.0;
};

struct PhaseDetectorOptions {
  /// Relative per-dimension divergence (|x - c| / max(|c|, eps)) beyond
  /// which an interval no longer belongs to the current phase.
  double BoundaryThreshold = 0.25;
  /// Hysteresis: a phase must absorb this many intervals before the
  /// next boundary can fire, so one noisy interval cannot split a
  /// phase.
  size_t MinIntervalsPerPhase = 2;
  /// Hard cap on detected phases; past it the detector stops flagging.
  size_t MaxPhases = 16;
  /// Fallback: when > 0, signatures are ignored and boundaries replay
  /// the offline PhaseMap slicing of NominalIterations into this many
  /// near-equal ranges.
  size_t StaticPhases = 0;
  /// Nominal (exact-run) iteration count; required by the static
  /// fallback, ignored by signature detection.
  size_t NominalIterations = 0;
};

/// Streaming phase-boundary detector. Not thread-safe; one instance
/// belongs to one run.
class PhaseDetector {
public:
  explicit PhaseDetector(const PhaseDetectorOptions &Opts = {});

  /// Ingests one interval. Returns true when this interval *starts* a
  /// new phase (its signature diverged from the current phase's
  /// centroid, or a static-fallback boundary was crossed). The first
  /// interval starts phase 0 and never flags. Each flagged boundary
  /// counts control.detected_phases.
  bool observe(const IntervalSample &S);

  /// Index of the phase the most recent interval belongs to.
  size_t currentPhase() const { return Starts.empty() ? 0 : Starts.size() - 1; }

  /// Phases seen so far (currentPhase() + 1 once observing began).
  size_t numDetectedPhases() const { return Starts.size(); }

  /// Start iteration of every detected phase; Starts[0] == 0.
  const std::vector<size_t> &phaseStarts() const { return Starts; }

  /// Iterations ingested so far.
  size_t iterationsSeen() const { return IterSeen; }

private:
  PhaseDetectorOptions Opts;
  std::vector<size_t> Starts;
  size_t IterSeen = 0;
  /// Running per-dimension centroid of the current phase's signatures
  /// (work per iteration, QoS delta per iteration).
  double CentroidWork = 0.0;
  double CentroidQos = 0.0;
  size_t IntervalsInPhase = 0;
};

} // namespace control
} // namespace opprox

#endif // OPPROX_CONTROL_PHASEDETECTOR_H
