//===- control/OnlineController.cpp ---------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "control/OnlineController.h"
#include "support/FaultInjection.h"
#include "support/Log.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <cmath>

using namespace opprox;
using namespace opprox::control;

namespace {
struct ControlMetrics {
  Counter &Resolves;
  Counter &Corrections;
  Counter &Distrusts;
  Counter &RejectedResolves;
  Counter &DroppedObservations;
  Gauge &DistrustRatio;

  static ControlMetrics &get() {
    static ControlMetrics M{
        MetricsRegistry::global().counter("control.resolves"),
        MetricsRegistry::global().counter("control.corrections"),
        MetricsRegistry::global().counter("control.model_distrust"),
        MetricsRegistry::global().counter("control.rejected_resolves"),
        MetricsRegistry::global().counter("control.dropped_observations"),
        MetricsRegistry::global().gauge("control.distrust_ratio")};
    return M;
  }
};

bool allZero(const std::vector<int> &Levels) {
  for (int L : Levels)
    if (L != 0)
      return false;
  return true;
}
} // namespace

Expected<OnlineController>
OnlineController::start(const OpproxRuntime &Rt, std::vector<double> Input,
                        double QosBudget, const ControllerOptions &Opts) {
  // The initial plan is the plain offline solve -- same planner entry,
  // same cache keys -- so a run that never distrusts executes exactly
  // what the offline pipeline would have handed it.
  Expected<OptimizationResult> Initial =
      Rt.tryOptimizeDetailed(Input, QosBudget, Opts.Optimize);
  if (!Initial)
    return Initial.error();
  OnlineController C(Rt, std::move(Input), QosBudget, Opts);
  C.Plan = std::move(*Initial);
  return C;
}

OnlineController::OnlineController(const OpproxRuntime &Rt,
                                   std::vector<double> Input, double QosBudget,
                                   const ControllerOptions &Opts)
    : Rt(&Rt), Input(std::move(Input)), TotalBudget(QosBudget), Opts(Opts),
      Detector([&] {
        PhaseDetectorOptions D = Opts.Detect;
        if (D.NominalIterations == 0)
          D.NominalIterations = Opts.NominalIterations;
        return D;
      }()) {}

double OnlineController::remainingBudget() const {
  return std::max(0.0, TotalBudget - SpentQos);
}

/// Point prediction and half-width for one phase under the levels the
/// current schedule assigns it. Exact (all-zero) levels predict zero by
/// the same convention the optimizer uses: the level-0 baseline is known
/// ground truth, not a model output.
static void phasePrediction(const OpproxRuntime &Rt,
                            const std::vector<double> &Input,
                            const OptimizationResult &Plan, size_t Phase,
                            double ConfidenceP, double &Point,
                            double &HalfWidth) {
  std::vector<int> Levels = Plan.Schedule.phaseLevels(Phase);
  if (allZero(Levels)) {
    Point = 0.0;
    HalfWidth = 0.0;
    return;
  }
  const PhaseModels &PM = Rt.model().phaseModels(Input, Phase);
  Point = PM.predictQos(Input, Levels);
  HalfWidth =
      std::max(PM.conservativeQos(Input, Levels, ConfidenceP) - Point, 0.0);
}

void OnlineController::predictRange(size_t Begin, size_t End, double &Point,
                                    double &HalfWidth) const {
  Point = 0.0;
  HalfWidth = 0.0;
  size_t N = numPhases();
  PhaseMap Map(Opts.NominalIterations, N);
  for (size_t P = 0; P < N; ++P) {
    auto Range = Map.phaseRange(P);
    size_t PhaseEnd = Range.second;
    // Iterations past the nominal count belong to the final phase
    // (PhaseMap::phaseOf), so its overlap window is open-ended; the
    // pro-rating denominator stays the nominal length, letting an
    // overrunning segment scale the final phase's prediction up
    // proportionally.
    size_t OverlapEnd = (P + 1 == N) ? End : std::min(End, PhaseEnd);
    size_t OverlapBegin = std::max(Begin, Range.first);
    if (OverlapEnd <= OverlapBegin || Range.second <= Range.first)
      continue;
    double Frac = static_cast<double>(OverlapEnd - OverlapBegin) /
                  static_cast<double>(Range.second - Range.first);
    double PPoint = 0.0, PHalf = 0.0;
    phasePrediction(*Rt, Input, Plan, P, Opts.Optimize.ConfidenceP, PPoint,
                    PHalf);
    Point += Frac * PPoint;
    HalfWidth += Frac * PHalf;
  }
}

/// The reactive core: account the observation, apply the distrust rule,
/// and re-solve the tail when the model lost credibility. \p Point and
/// \p HalfWidth are the prediction for exactly what the observation
/// covers; \p ResumePhase is the first model phase with no executed
/// iterations (numPhases() when the run is over).
ControlAction OnlineController::observeRange(size_t ResumePhase,
                                             double Point, double HalfWidth,
                                             const PhaseObservation &Obs) {
  ControlMetrics &M = ControlMetrics::get();
  ControlAction A;
  ++Stats.Observations;
  SpentQos += std::max(Obs.ObservedQos, 0.0);
  NextPhase = std::max(NextPhase, std::min(ResumePhase, numPhases()));
  A.SpentQos = SpentQos;
  A.RemainingBudget = remainingBudget();

  double Band = Opts.DistrustFactor * HalfWidth + Opts.QosSlack;
  bool Overrun = Obs.ObservedQos > Point + Band;
  bool Underrun = Obs.ObservedQos < Point - Band;
  A.Distrusted = Overrun || (Opts.CorrectUnderruns && Underrun);
  if (!A.Distrusted)
    return A;

  ++Stats.Distrusts;
  M.Distrusts.add();
  // How far off the model is, as a multiplicative factor; the EWMA is
  // what rescales every later re-solve's budget. The floor keeps a
  // drifting observation over a near-zero prediction from exploding the
  // ratio.
  double Floor = std::max(Opts.QosSlack, 1e-6);
  double Ratio = std::max(Obs.ObservedQos, 0.0) / std::max(Point, Floor);
  DistrustRatio =
      (1.0 - Opts.RatioAlpha) * DistrustRatio + Opts.RatioAlpha * Ratio;
  M.DistrustRatio.set(DistrustRatio);

  if (NextPhase >= numPhases() || Stats.Resolves >= Opts.MaxResolves)
    return A;

  // Re-solve the remaining phases with the unspent budget, discounted by
  // the distrust ratio: if observations run Ratio x the predictions, a
  // schedule planned under Remaining / Ratio is expected to *observe*
  // within Remaining.
  double Scale = std::max(DistrustRatio, 1.0 / Opts.MaxBudgetGrowth);
  double Effective = remainingBudget() / Scale;
  ++Stats.Resolves;
  M.Resolves.add();
  A.Resolved = true;
  Expected<OptimizationResult> Tail =
      Rt->tryOptimizeTail(Input, Effective, NextPhase, Opts.Optimize);
  if (!Tail || !Tail->DegradedPhases.empty()) {
    // The re-solve itself failed or degraded (fault ladder): the last
    // valid schedule stays in force. Any runtime.degraded_phases
    // accounting happened inside the solve; rejecting the result here
    // must not add to it.
    ++Stats.RejectedResolves;
    M.RejectedResolves.add();
    A.RejectedDegraded = true;
    if (!Tail)
      logInfo("online re-solve from phase %zu rejected: %s", NextPhase,
              Tail.error().message().c_str());
    else
      logInfo("online re-solve from phase %zu degraded; keeping the last "
              "valid schedule",
              NextPhase);
    return A;
  }

  bool Changed = false;
  for (size_t P = NextPhase; P < numPhases() && !Changed; ++P)
    Changed = Tail->Schedule.phaseLevels(P) != Plan.Schedule.phaseLevels(P);
  if (Changed) {
    Plan.Schedule.overlayTail(Tail->Schedule, NextPhase);
    for (size_t P = NextPhase; P < numPhases(); ++P)
      Plan.Decisions[P] = Tail->Decisions[P];
    ++Stats.Corrections;
    M.Corrections.add();
    A.Corrected = true;
  }
  return A;
}

ControlAction OnlineController::onPhaseComplete(const PhaseObservation &Obs) {
  ControlAction A;
  if (faultPoint(faults::ControlObserve) || Obs.Phase != NextPhase ||
      NextPhase >= numPhases()) {
    // Lost, out-of-order, or post-run feedback: observations are run
    // data, not invariants -- drop and count, never crash. A dropped
    // observation is invisible to budget accounting by design.
    ++Stats.DroppedObservations;
    ControlMetrics::get().DroppedObservations.add();
    A.Dropped = true;
    A.SpentQos = SpentQos;
    A.RemainingBudget = remainingBudget();
    return A;
  }
  double Point = 0.0, HalfWidth = 0.0;
  phasePrediction(*Rt, Input, Plan, Obs.Phase, Opts.Optimize.ConfidenceP,
                  Point, HalfWidth);
  return observeRange(Obs.Phase + 1, Point, HalfWidth, Obs);
}

ControlAction OnlineController::onInterval(const IntervalSample &S) {
  ControlAction A;
  size_t Iters = S.Iterations == 0 ? 1 : S.Iterations;
  bool Boundary = Detector.observe(S);
  if (Boundary && SegmentOpen)
    A = closeSegment();
  if (!SegmentOpen) {
    Segment = PhaseObservation();
    Segment.Phase = NextPhase;
    SegmentOpen = true;
  }
  Segment.ObservedQos += S.QosDelta;
  Segment.WorkUnits += S.WorkUnits;
  Segment.Iterations += Iters;
  return A;
}

ControlAction OnlineController::finishRun() {
  if (!SegmentOpen) {
    ControlAction A;
    A.SpentQos = SpentQos;
    A.RemainingBudget = remainingBudget();
    return A;
  }
  return closeSegment();
}

ControlAction OnlineController::closeSegment() {
  ControlAction A;
  size_t End = SegmentBegin + Segment.Iterations;
  if (faultPoint(faults::ControlObserve)) {
    ++Stats.DroppedObservations;
    ControlMetrics::get().DroppedObservations.add();
    A.Dropped = true;
    A.SpentQos = SpentQos;
    A.RemainingBudget = remainingBudget();
  } else {
    double Point = 0.0, HalfWidth = 0.0;
    predictRange(SegmentBegin, End, Point, HalfWidth);
    // Resume at the first phase with no executed iterations; a segment
    // ending mid-phase leaves that phase's levels alone (it is already
    // running) and re-plans from the next one.
    size_t N = numPhases();
    PhaseMap Map(Opts.NominalIterations, N);
    size_t Resume;
    if (End >= Opts.NominalIterations)
      Resume = N;
    else {
      size_t P = Map.phaseOf(End);
      Resume = Map.phaseRange(P).first == End ? P : P + 1;
    }
    A = observeRange(Resume, Point, HalfWidth, Segment);
  }
  SegmentOpen = false;
  SegmentBegin = End;
  Segment = PhaseObservation();
  return A;
}
