//===- control/ControlSim.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "control/ControlSim.h"
#include "support/Random.h"
#include <algorithm>
#include <cmath>
#include <map>

using namespace opprox;
using namespace opprox::control;

static bool allZero(const std::vector<int> &Levels) {
  for (int L : Levels)
    if (L != 0)
      return false;
  return true;
}

double control::driftFactor(const DriftSpec &Spec, double Fraction,
                            size_t Phase) {
  switch (Spec.DriftKind) {
  case DriftSpec::Kind::None:
  case DriftSpec::Kind::Misclassify:
    // Misclassification drifts through the feedback *source* (the
    // shadow class's models), not a multiplier.
    return 1.0;
  case DriftSpec::Kind::Sudden:
    return Fraction >= Spec.Onset ? 1.0 + Spec.Magnitude : 1.0;
  case DriftSpec::Kind::Gradual: {
    if (Fraction < Spec.Onset)
      return 1.0;
    double Span = std::max(1.0 - Spec.Onset, 1e-9);
    double Ramp = std::min((Fraction - Spec.Onset) / Span, 1.0);
    return 1.0 + Spec.Magnitude * Ramp;
  }
  case DriftSpec::Kind::Noise: {
    // Per-phase draw from an order-independent stream: phase 3's jitter
    // is the same whether or not anyone sampled phase 2.
    Rng Stream(deriveSeed(Spec.Seed, static_cast<uint64_t>(Phase) + 1));
    return 1.0 + Spec.Magnitude * (2.0 * Stream.uniform() - 1.0);
  }
  }
  return 1.0;
}

Expected<SimOutcome> control::runScriptedSim(const OpproxRuntime &Rt,
                                             const std::vector<double> &Input,
                                             double QosBudget,
                                             const DriftSpec &Drift,
                                             const ControllerOptions &Opts) {
  size_t N = Rt.numPhases();
  // The fake app's observation for one phase under one schedule: the
  // model's own point prediction at the levels the phase runs (from the
  // shadow input's class under Misclassify), times the drift factor.
  // With Kind::None this is exactly the point prediction, which sits at
  // the center of the controller's trust band -- the no-op case.
  const std::vector<double> &Source =
      Drift.DriftKind == DriftSpec::Kind::Misclassify &&
              !Drift.ShadowInput.empty()
          ? Drift.ShadowInput
          : Input;
  auto observedFor = [&](const PhaseSchedule &S, size_t P) {
    std::vector<int> Levels = S.phaseLevels(P);
    if (allZero(Levels))
      return 0.0;
    double Point = Rt.model().phaseModels(Source, P).predictQos(Source, Levels);
    double Fraction = (static_cast<double>(P) + 0.5) / static_cast<double>(N);
    return Point * driftFactor(Drift, Fraction, P);
  };

  Expected<OptimizationResult> Offline =
      Rt.tryOptimizeDetailed(Input, QosBudget, Opts.Optimize);
  if (!Offline)
    return Offline.error();
  SimOutcome O;
  O.OfflineSchedule = Offline->Schedule;
  for (size_t P = 0; P < N; ++P)
    O.OfflineQos += observedFor(Offline->Schedule, P);

  Expected<OnlineController> C =
      OnlineController::start(Rt, Input, QosBudget, Opts);
  if (!C)
    return C.error();
  for (size_t P = 0; P < N; ++P) {
    PhaseObservation Obs;
    Obs.Phase = P;
    Obs.ObservedQos = observedFor(C->schedule(), P);
    Obs.WorkUnits = 1000 * (P + 1);
    Obs.Iterations = 100;
    // The phase has executed by the time feedback arrives: its QoS is
    // spent whether or not the controller hears about it.
    O.ControlledQos += Obs.ObservedQos;
    C->onPhaseComplete(Obs);
    O.ScheduleTrace.push_back(C->schedule().toString());
  }
  O.FinalSchedule = C->schedule();
  O.Stats = C->stats();
  O.DistrustRatio = C->distrustRatio();
  return O;
}

namespace {
/// Lazily measured per-phase ground truth: the QoS degradation of
/// approximating \p Phase alone under \p Levels, memoized per (phase,
/// levels) since corrections revisit the same configurations.
class PhaseTruth {
public:
  PhaseTruth(const ApproxApp &App, GoldenCache &Golden,
             const std::vector<double> &Input, size_t NumPhases)
      : App(App), Golden(Golden), Input(Input), NumPhases(NumPhases) {}

  double qosOf(size_t Phase, const std::vector<int> &Levels) {
    if (allZero(Levels))
      return 0.0;
    auto Key = std::make_pair(Phase, Levels);
    auto It = Cache.find(Key);
    if (It != Cache.end())
      return It->second;
    EvalOutcome Out = evaluateSchedule(
        App, Golden, Input, PhaseSchedule::singlePhase(NumPhases, Phase,
                                                       Levels));
    double Qos = Out.QosDegradation;
    Cache.emplace(std::move(Key), Qos);
    return Qos;
  }

private:
  const ApproxApp &App;
  GoldenCache &Golden;
  const std::vector<double> &Input;
  size_t NumPhases;
  std::map<std::pair<size_t, std::vector<int>>, double> Cache;
};
} // namespace

Expected<SimOutcome> control::runGroundTruthSim(
    const ApproxApp &App, GoldenCache &Golden, const OpproxRuntime &Rt,
    const std::vector<double> &Input, double QosBudget,
    const DriftSpec &Drift, const ControllerOptions &Opts) {
  size_t N = Rt.numPhases();
  size_t Nominal = Golden.nominalIterations(Input);
  PhaseMap Map(Nominal, N);
  PhaseTruth Truth(App, Golden, Input, N);
  auto observedFor = [&](const PhaseSchedule &S, size_t P) {
    auto Range = Map.phaseRange(P);
    double Fraction = Nominal == 0
                          ? 0.0
                          : (static_cast<double>(Range.first + Range.second) /
                             2.0) /
                                static_cast<double>(Nominal);
    return Truth.qosOf(P, S.phaseLevels(P)) * driftFactor(Drift, Fraction, P);
  };

  Expected<OptimizationResult> Offline =
      Rt.tryOptimizeDetailed(Input, QosBudget, Opts.Optimize);
  if (!Offline)
    return Offline.error();
  SimOutcome O;
  O.OfflineSchedule = Offline->Schedule;
  for (size_t P = 0; P < N; ++P)
    O.OfflineQos += observedFor(Offline->Schedule, P);

  Expected<OnlineController> C =
      OnlineController::start(Rt, Input, QosBudget, Opts);
  if (!C)
    return C.error();
  for (size_t P = 0; P < N; ++P) {
    auto Range = Map.phaseRange(P);
    PhaseObservation Obs;
    Obs.Phase = P;
    Obs.ObservedQos = observedFor(C->schedule(), P);
    Obs.Iterations = Range.second - Range.first;
    O.ControlledQos += Obs.ObservedQos;
    C->onPhaseComplete(Obs);
    O.ScheduleTrace.push_back(C->schedule().toString());
  }
  O.FinalSchedule = C->schedule();
  O.Stats = C->stats();
  O.DistrustRatio = C->distrustRatio();
  return O;
}

Expected<SimOutcome> control::runDetectedSim(
    const ApproxApp &App, GoldenCache &Golden, const OpproxRuntime &Rt,
    const std::vector<double> &Input, double QosBudget,
    const DriftSpec &Drift, ControllerOptions Opts,
    size_t IntervalsPerPhase) {
  size_t N = Rt.numPhases();
  size_t Nominal = Golden.nominalIterations(Input);
  if (Nominal == 0)
    return Error("detected-mode simulation needs a nonzero nominal "
                 "iteration count");
  if (IntervalsPerPhase == 0)
    IntervalsPerPhase = 1;
  Opts.NominalIterations = Nominal;
  PhaseMap Map(Nominal, N);
  PhaseTruth Truth(App, Golden, Input, N);

  Expected<OptimizationResult> Offline =
      Rt.tryOptimizeDetailed(Input, QosBudget, Opts.Optimize);
  if (!Offline)
    return Offline.error();
  // One real run under the offline schedule supplies the per-iteration
  // work trace the detector's signatures are built from; corrections
  // shift QoS contributions but the work *shape* of each phase is the
  // application's own.
  RunResult Trace = App.run(Input, Offline->Schedule, Nominal);

  auto sliceWork = [&](size_t Begin, size_t End) {
    uint64_t W = 0;
    for (size_t I = Begin; I < End && I < Trace.WorkPerIteration.size(); ++I)
      W += Trace.WorkPerIteration[I];
    return W;
  };

  SimOutcome O;
  O.OfflineSchedule = Offline->Schedule;
  auto contribution = [&](const PhaseSchedule &S, size_t P, size_t Begin,
                          size_t End) {
    auto Range = Map.phaseRange(P);
    double PhaseLen = static_cast<double>(Range.second - Range.first);
    double Frac = PhaseLen > 0.0
                      ? static_cast<double>(End - Begin) / PhaseLen
                      : 0.0;
    double Mid = (static_cast<double>(Begin + End) / 2.0) /
                 static_cast<double>(Nominal);
    return Truth.qosOf(P, S.phaseLevels(P)) * Frac *
           driftFactor(Drift, std::min(Mid, 1.0), P);
  };

  // Interval boundaries: each model phase's nominal range in
  // IntervalsPerPhase near-equal slices; iterations the approximate run
  // executes past the nominal count extend the final slice.
  struct Interval {
    size_t Phase;
    size_t Begin;
    size_t End;
  };
  std::vector<Interval> Intervals;
  for (size_t P = 0; P < N; ++P) {
    auto Range = Map.phaseRange(P);
    size_t Len = Range.second - Range.first;
    size_t Slices = std::max<size_t>(1, std::min(IntervalsPerPhase, Len));
    for (size_t S = 0; S < Slices; ++S) {
      size_t B = Range.first + Len * S / Slices;
      size_t E = Range.first + Len * (S + 1) / Slices;
      if (E > B)
        Intervals.push_back({P, B, E});
    }
  }
  if (!Intervals.empty() && Trace.WorkPerIteration.size() > Nominal)
    Intervals.back().End = Trace.WorkPerIteration.size();

  for (const Interval &I : Intervals)
    O.OfflineQos += contribution(Offline->Schedule, I.Phase, I.Begin, I.End);

  Expected<OnlineController> C =
      OnlineController::start(Rt, Input, QosBudget, Opts);
  if (!C)
    return C.error();
  for (const Interval &I : Intervals) {
    IntervalSample S;
    S.WorkUnits = sliceWork(I.Begin, I.End);
    S.Iterations = I.End - I.Begin;
    S.QosDelta = contribution(C->schedule(), I.Phase, I.Begin, I.End);
    O.ControlledQos += S.QosDelta;
    ControlAction A = C->onInterval(S);
    if (A.Resolved || A.Corrected || A.Distrusted)
      O.ScheduleTrace.push_back(C->schedule().toString());
  }
  C->finishRun();
  O.FinalSchedule = C->schedule();
  O.Stats = C->stats();
  O.DistrustRatio = C->distrustRatio();
  O.DetectedPhases = C->detector().numDetectedPhases();
  return O;
}
