//===- control/OnlineController.h - Reactive schedule control --*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Closes the loop the offline pipeline leaves open (docs/CONTROL.md).
/// The offline solver plans a full phase schedule once and replays it
/// blind; this controller wraps an OpproxRuntime, consumes observed
/// per-phase QoS/work feedback at phase boundaries, and reacts when the
/// observations leave the model's confidence band:
///
///  1. **Distrust rule**: each completed phase's observed QoS is
///     compared against the model's point prediction for the levels the
///     phase actually ran, widened by DistrustFactor confidence-interval
///     half-widths plus QosSlack. An observation outside that band
///     means the model is wrong for this run (drift, input shift, or a
///     misclassified control-flow class).
///  2. **Budget correction**: a running observed/predicted ratio
///     (EWMA, the control.distrust_ratio gauge) estimates how far off
///     the model is; the unspent budget is rescaled by it so a model
///     that under-reports QoS cost gets a proportionally smaller budget
///     to re-spend (and an over-reporter a larger one, capped by
///     MaxBudgetGrowth).
///  3. **Re-solve**: the remaining phases are re-planned through
///     OptimizePlanner::optimizeTail -- the same plan/lookup/compute
///     pipeline as every other optimize call, so re-solves hit the
///     schedule cache and an identical feedback stream reproduces
///     bit-identical decisions.
///
/// Observations inside the band change nothing: with zero observed
/// drift the final schedule is bit-identical to the offline path (the
/// no-op guarantee, enforced by PropertyTests). A re-solve that comes
/// back degraded (non-empty DegradedPhases -- the fault ladder fired
/// mid-solve) is discarded and the last valid schedule stays in force.
///
/// Ingestion comes in two shapes: onPhaseComplete() for hosts that keep
/// the offline static-N phase boundaries, and onInterval() feeding a
/// PhaseDetector for hosts that discover boundaries online. Instances
/// are not thread-safe; one controller steers one run.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CONTROL_ONLINECONTROLLER_H
#define OPPROX_CONTROL_ONLINECONTROLLER_H

#include "control/PhaseDetector.h"
#include "core/OpproxRuntime.h"

namespace opprox {
namespace control {

/// Feedback for one completed phase, in model-phase space.
struct PhaseObservation {
  size_t Phase = 0;
  /// Observed QoS degradation attributed to the phase, in the percent
  /// units the models predict.
  double ObservedQos = 0.0;
  /// Abstract work units the phase executed (informational).
  uint64_t WorkUnits = 0;
  /// Outer-loop iterations the phase executed (informational).
  size_t Iterations = 0;
};

struct ControllerOptions {
  /// Decision-relevant optimizer options, shared by the initial solve
  /// and every re-solve (they key the schedule cache).
  OptimizeOptions Optimize;
  /// Width of the trust band in confidence-interval half-widths.
  double DistrustFactor = 1.0;
  /// Absolute band slack in percent QoS, so near-zero predictions with
  /// near-zero half-widths do not distrust on rounding noise.
  double QosSlack = 0.05;
  /// React when a phase spends *less* than predicted too (reclaims
  /// headroom for the remaining phases). Overspends always react.
  bool CorrectUnderruns = true;
  /// Cap on re-solves per run; SIZE_MAX = unlimited.
  size_t MaxResolves = SIZE_MAX;
  /// Upper clamp on the budget rescale when the model over-reported
  /// cost (distrust ratio < 1): the effective budget never exceeds
  /// MaxBudgetGrowth x the unspent budget.
  double MaxBudgetGrowth = 4.0;
  /// EWMA weight of the newest observed/predicted ratio sample.
  double RatioAlpha = 0.5;
  /// Boundary detection for onInterval() ingestion. Leave StaticPhases
  /// at 0 for signature detection; set it (plus NominalIterations) to
  /// replay the offline slicing through the same code path.
  PhaseDetectorOptions Detect;
  /// Nominal (exact-run) iteration count; required by onInterval()
  /// ingestion to map detected segments onto model phases. 0 keeps
  /// onPhaseComplete()-only operation.
  size_t NominalIterations = 0;
};

/// What one ingested observation caused.
struct ControlAction {
  bool Distrusted = false;       ///< Observation left the trust band.
  bool Resolved = false;         ///< A tail re-solve was issued.
  bool Corrected = false;        ///< The re-solve changed remaining levels.
  bool RejectedDegraded = false; ///< Degraded re-solve discarded.
  bool Dropped = false;          ///< Observation lost (fault injection).
  double SpentQos = 0.0;         ///< Cumulative observed QoS so far.
  double RemainingBudget = 0.0;  ///< Unspent budget after this phase.
};

/// Per-run decision counts, mirrored into the control.* telemetry.
struct ControllerStats {
  size_t Observations = 0;
  size_t Distrusts = 0;
  size_t Resolves = 0;
  size_t Corrections = 0;
  size_t RejectedResolves = 0;
  size_t DroppedObservations = 0;
};

class OnlineController {
public:
  /// Solves the initial schedule through the runtime's planner -- the
  /// exact offline optimize path -- and arms the controller. Fails for
  /// the same malformed requests tryOptimizeDetailed rejects.
  static Expected<OnlineController> start(const OpproxRuntime &Rt,
                                          std::vector<double> Input,
                                          double QosBudget,
                                          const ControllerOptions &Opts = {});

  /// Static-boundary ingestion: feedback for the next un-observed model
  /// phase. Out-of-order phases are dropped (counted, never fatal):
  /// feedback is run data, not a program invariant.
  ControlAction onPhaseComplete(const PhaseObservation &Obs);

  /// Interval-driven ingestion: feeds the phase detector; when an
  /// interval starts a new detected phase, the closed segment becomes
  /// one observation attributed to the model phases its iterations
  /// span (predictions pro-rated by nominal-range overlap). Requires
  /// ControllerOptions::NominalIterations.
  ControlAction onInterval(const IntervalSample &S);

  /// Flushes the trailing detected segment at end of run.
  ControlAction finishRun();

  /// The schedule the run should execute from here on: the initial plan
  /// with every adopted correction overlaid.
  const PhaseSchedule &schedule() const { return Plan.Schedule; }

  /// The full plan (decisions for executed phases keep their original
  /// values; corrected phases carry the re-solve's).
  const OptimizationResult &plan() const { return Plan; }

  /// First model phase no observation has covered yet.
  size_t nextPhase() const { return NextPhase; }

  double spentQos() const { return SpentQos; }
  double remainingBudget() const;
  /// Current observed/predicted EWMA ratio (1 = model trusted).
  double distrustRatio() const { return DistrustRatio; }
  const ControllerStats &stats() const { return Stats; }
  const PhaseDetector &detector() const { return Detector; }
  size_t numPhases() const { return Rt->numPhases(); }

private:
  OnlineController(const OpproxRuntime &Rt, std::vector<double> Input,
                   double QosBudget, const ControllerOptions &Opts);

  /// Shared ingestion core: accounts one observation whose prediction
  /// is (\p Point, \p HalfWidth), applies the distrust rule, and
  /// re-solves from \p ResumePhase when the model lost credibility.
  ControlAction observeRange(size_t ResumePhase, double Point,
                             double HalfWidth, const PhaseObservation &Obs);
  /// Point prediction and CI half-width for the current schedule over
  /// nominal iterations [Begin, End), pro-rated per model phase.
  void predictRange(size_t Begin, size_t End, double &Point,
                    double &HalfWidth) const;
  ControlAction closeSegment();

  const OpproxRuntime *Rt;
  std::vector<double> Input;
  double TotalBudget = 0.0;
  ControllerOptions Opts;
  OptimizationResult Plan;
  size_t NextPhase = 0;
  double SpentQos = 0.0;
  double DistrustRatio = 1.0;
  ControllerStats Stats;

  // onInterval() segment state.
  PhaseDetector Detector;
  size_t SegmentBegin = 0;
  PhaseObservation Segment;
  bool SegmentOpen = false;
};

} // namespace control
} // namespace opprox

#endif // OPPROX_CONTROL_ONLINECONTROLLER_H
