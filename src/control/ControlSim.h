//===- control/ControlSim.h - Deterministic control-loop sims --*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulation side of the control loop's test story: seeded drift
/// traces replayed against an OnlineController, with every quantity --
/// drift factors, observations, re-solves -- a pure function of
/// (artifact, input, budget, DriftSpec, ControllerOptions). The same
/// spec therefore reproduces the same reactive decisions bit for bit,
/// which is what lets ControllerSimTests assert on them and the drift
/// bench (bench/control_drift.cpp) publish them.
///
/// Three harnesses, sharing one drift model:
///
///  - runScriptedSim: model-space fake app. A phase's observed QoS is
///    the model's own point prediction under the levels the phase
///    actually runs, times the drift factor -- fast, artifact-only, and
///    with Kind::None *exactly* inside the controller's trust band, so
///    the no-op guarantee is testable in isolation.
///  - runGroundTruthSim: real mini-app. A phase's observed QoS is the
///    measured degradation of approximating that phase alone (the
///    paper's per-phase probing model, evaluateSchedule on a
///    singlePhase schedule), times the drift factor.
///  - runDetectedSim: runGroundTruthSim delivered as per-interval
///    samples through the PhaseDetector instead of at known static
///    boundaries -- the detected-vs-static comparison.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_CONTROL_CONTROLSIM_H
#define OPPROX_CONTROL_CONTROLSIM_H

#include "control/OnlineController.h"
#include "core/Evaluator.h"

namespace opprox {
namespace control {

/// A seeded, injected QoS drift: how far and in what shape the run's
/// observed behavior departs from what the models were trained on.
struct DriftSpec {
  enum class Kind {
    None,       ///< Observations match the model exactly.
    Sudden,     ///< A step: phases past Onset inflate by Magnitude.
    Gradual,    ///< A ramp from Onset to the end of the run.
    Noise,      ///< Seeded per-phase jitter of amplitude Magnitude.
    Misclassify ///< Observations come from ShadowInput's control-flow
                ///< class while the controller plans for the real input.
  };
  Kind DriftKind = Kind::None;
  /// Fractional QoS inflation at full strength (0.5 = observations run
  /// 50% hotter than truth); for Noise, the jitter amplitude.
  double Magnitude = 0.0;
  /// Fraction of the run where Sudden/Gradual drift begins.
  double Onset = 0.5;
  /// Noise stream seed; per-phase draws are independent of visit order.
  uint64_t Seed = 0;
  /// Misclassify only: the input whose class generates the feedback.
  std::vector<double> ShadowInput;
};

/// Multiplier on the true QoS contribution of a phase whose midpoint
/// sits at \p Fraction (in [0, 1]) of the run. Deterministic in
/// (Spec, Fraction, Phase).
double driftFactor(const DriftSpec &Spec, double Fraction, size_t Phase);

/// What one simulated run produced, offline and controlled side by side.
struct SimOutcome {
  /// Final QoS of the untouched offline schedule under the drift.
  double OfflineQos = 0.0;
  /// Final QoS with the controller reacting at boundaries.
  double ControlledQos = 0.0;
  PhaseSchedule OfflineSchedule{1, 1};
  PhaseSchedule FinalSchedule{1, 1};
  ControllerStats Stats;
  double DistrustRatio = 1.0;
  /// Phases the detector flagged (runDetectedSim only; 0 otherwise).
  size_t DetectedPhases = 0;
  /// schedule().toString() after each ingested boundary, for bit-level
  /// replay assertions.
  std::vector<std::string> ScheduleTrace;
};

/// Model-space scripted simulation; needs no application.
Expected<SimOutcome> runScriptedSim(const OpproxRuntime &Rt,
                                    const std::vector<double> &Input,
                                    double QosBudget, const DriftSpec &Drift,
                                    const ControllerOptions &Opts = {});

/// Ground-truth simulation over a real mini-app with static (model)
/// phase boundaries.
Expected<SimOutcome> runGroundTruthSim(const ApproxApp &App,
                                       GoldenCache &Golden,
                                       const OpproxRuntime &Rt,
                                       const std::vector<double> &Input,
                                       double QosBudget,
                                       const DriftSpec &Drift,
                                       const ControllerOptions &Opts = {});

/// Ground-truth simulation delivered as interval samples through the
/// phase detector: each model phase is sliced into \p IntervalsPerPhase
/// intervals carrying the app's real per-iteration work signature.
Expected<SimOutcome> runDetectedSim(const ApproxApp &App, GoldenCache &Golden,
                                    const OpproxRuntime &Rt,
                                    const std::vector<double> &Input,
                                    double QosBudget, const DriftSpec &Drift,
                                    ControllerOptions Opts = {},
                                    size_t IntervalsPerPhase = 4);

} // namespace control
} // namespace opprox

#endif // OPPROX_CONTROL_CONTROLSIM_H
