//===- support/Error.cpp --------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <vector>

using namespace opprox;

void opprox::reportFatalError(const Error &E) {
  reportFatalError(E.message());
}

void opprox::reportFatalError(const std::string &Message) {
  std::fprintf(stderr, "fatal error: %s\n", Message.c_str());
  std::abort();
}

Error opprox::makeError(const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  std::va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Size >= 0 && "vsnprintf failed on error format string");
  std::vector<char> Buf(static_cast<size_t>(Size) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Error(std::string(Buf.data(), static_cast<size_t>(Size)));
}
