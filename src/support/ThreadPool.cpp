//===- support/ThreadPool.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"
#include "support/FaultInjection.h"
#include "support/Telemetry.h"
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

using namespace opprox;

/// Pool-wide instruments. One fetch_add per *task* (parallelFor enqueues
/// one drain task per helper, not one per index), so the cost is
/// invisible next to task execution itself.
static Counter &tasksExecuted() {
  static Counter &C = MetricsRegistry::global().counter(
      "threadpool.tasks_executed");
  return C;
}

static Gauge &queueDepthMax() {
  static Gauge &G =
      MetricsRegistry::global().gauge("threadpool.queue_depth.max");
  return G;
}

/// The pool that spawned the current thread, for the whole thread
/// lifetime (null on non-worker threads). Workers only ever run their
/// own pool's tasks, so a thread-lifetime pointer is equivalent to an
/// "executing a task of pool P" flag and cheaper to maintain. Tracking
/// the owner -- not just a boolean -- is what lets parallelFor() on a
/// *different* pool fan out instead of inlining: the serving tier's
/// shard threads (workers of the server's pool) hand scan chunks to the
/// planner's dedicated scan pool this way.
static thread_local const ThreadPool *CurrentWorkerPool = nullptr;

ThreadPool::ThreadPool(size_t NumWorkers) {
  Workers.reserve(NumWorkers);
  for (size_t I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Stopping = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  CurrentWorkerPool = this;
  for (;;) {
    std::packaged_task<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(QueueMutex);
      QueueCv.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    tasksExecuted().add();
    Task(); // Exceptions land in the task's future.
  }
}

bool ThreadPool::insideWorker() { return CurrentWorkerPool != nullptr; }

bool ThreadPool::insideThisPool() const { return CurrentWorkerPool == this; }

std::future<void> ThreadPool::submit(std::function<void()> Task) {
  // The fault fires inside the packaged task so the injected death takes
  // the same route to the caller a real task exception would: the future.
  std::packaged_task<void()> Packaged([Task = std::move(Task)] {
    throwOnFault(faults::ThreadPoolTask);
    Task();
  });
  std::future<void> Future = Packaged.get_future();
  if (Workers.empty()) {
    tasksExecuted().add();
    Packaged(); // Inline mode: complete before returning.
    return Future;
  }
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    Queue.push_back(std::move(Packaged));
    queueDepthMax().setMax(static_cast<double>(Queue.size()));
  }
  QueueCv.notify_one();
  return Future;
}

void ThreadPool::parallelFor(size_t N,
                             const std::function<void(size_t)> &Body) {
  if (N == 0)
    return;
  // Inline when there is nothing to fan out to, or when already on one
  // of *this* pool's workers (same-pool nesting; see the header's design
  // rules). A worker of a different pool fans out normally -- cross-pool
  // handoff is how serve shards reach the planner's scan pool.
  if (Workers.empty() || insideThisPool() || N == 1) {
    tasksExecuted().add(); // The caller's drain is one executor turn.
    for (size_t I = 0; I < N; ++I) {
      throwOnFault(faults::ThreadPoolTask);
      Body(I);
    }
    return;
  }

  struct LoopState {
    std::atomic<size_t> NextIndex{0};
    std::atomic<size_t> ActiveHelpers{0};
    std::mutex Mutex;
    std::condition_variable Done;
    std::exception_ptr FirstError;
    size_t N = 0;
    const std::function<void(size_t)> *Body = nullptr;
  };
  auto State = std::make_shared<LoopState>();
  State->N = N;
  State->Body = &Body;

  // Executors (caller + helpers) claim indices dynamically; on the first
  // exception the remaining unclaimed indices are abandoned.
  auto Drain = [](LoopState &S) {
    for (;;) {
      size_t I = S.NextIndex.fetch_add(1, std::memory_order_relaxed);
      if (I >= S.N)
        return;
      try {
        throwOnFault(faults::ThreadPoolTask);
        (*S.Body)(I);
      } catch (...) {
        std::lock_guard<std::mutex> Lock(S.Mutex);
        if (!S.FirstError)
          S.FirstError = std::current_exception();
        S.NextIndex.store(S.N, std::memory_order_relaxed);
      }
    }
  };

  size_t NumHelpers = std::min(Workers.size(), N - 1);
  State->ActiveHelpers.store(NumHelpers, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> Lock(QueueMutex);
    for (size_t H = 0; H < NumHelpers; ++H)
      Queue.emplace_back([State, Drain] {
        Drain(*State);
        if (State->ActiveHelpers.fetch_sub(1, std::memory_order_acq_rel) ==
            1) {
          std::lock_guard<std::mutex> Lock(State->Mutex);
          State->Done.notify_all();
        }
      });
    queueDepthMax().setMax(static_cast<double>(Queue.size()));
  }
  QueueCv.notify_all();

  tasksExecuted().add(); // The caller participates as one more executor.
  Drain(*State);
  std::unique_lock<std::mutex> Lock(State->Mutex);
  State->Done.wait(Lock, [&] {
    return State->ActiveHelpers.load(std::memory_order_acquire) == 0;
  });
  if (State->FirstError)
    std::rethrow_exception(State->FirstError);
}

size_t ThreadPool::defaultWorkerCount() {
  if (const char *Env = std::getenv("OPPROX_THREADS")) {
    char *End = nullptr;
    long Requested = std::strtol(Env, &End, 10);
    if (End != Env && *End == '\0' && Requested >= 1)
      return static_cast<size_t>(Requested);
  }
  unsigned Hw = std::thread::hardware_concurrency();
  return Hw >= 1 ? Hw : 1;
}

size_t ThreadPool::resolveWorkers(size_t RequestedThreads) {
  size_t Executors =
      RequestedThreads ? RequestedThreads : defaultWorkerCount();
  return Executors - 1; // The caller is always one of the executors.
}
