//===- support/Signals.h - Self-pipe signal waiting ------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Signal handling for long-lived serving processes (tools/opprox-serve):
/// a SignalWaiter installs handlers for a chosen set of signals and
/// reports their arrival through the classic self-pipe trick, so the
/// main thread consumes signals as ordinary poll()-able events instead
/// of doing work inside a handler. The handler itself only write()s one
/// byte -- async-signal-safe by construction.
///
/// Only one SignalWaiter may exist at a time (it owns the process-wide
/// handler slots); the destructor restores the previous dispositions.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_SIGNALS_H
#define OPPROX_SUPPORT_SIGNALS_H

#include "support/Socket.h"
#include <csignal>
#include <initializer_list>
#include <vector>

namespace opprox {

/// Installs handlers for \p Signals and turns their delivery into
/// readable bytes on an internal pipe.
///
/// \code
///   SignalWaiter Signals({SIGHUP, SIGINT, SIGTERM});
///   while (int Signo = Signals.wait(250)) {
///     if (Signo == SIGHUP) server.hotSwap();
///     else break; // SIGINT/SIGTERM: drain and exit.
///   }
/// \endcode
class SignalWaiter {
public:
  explicit SignalWaiter(std::initializer_list<int> Signals);
  ~SignalWaiter();

  SignalWaiter(const SignalWaiter &) = delete;
  SignalWaiter &operator=(const SignalWaiter &) = delete;

  /// Blocks up to \p TimeoutMs for a handled signal; returns its number,
  /// or 0 on timeout. A negative timeout blocks indefinitely. Signals
  /// queue: each delivery is returned exactly once, in arrival order.
  int wait(int TimeoutMs);

private:
  struct Saved {
    int Signo;
    struct sigaction Action;
  };
  Socket ReadEnd;
  std::vector<Saved> SavedActions;
};

} // namespace opprox

#endif // OPPROX_SUPPORT_SIGNALS_H
