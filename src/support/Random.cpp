//===- support/Random.cpp -------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Random.h"
#include <cmath>

using namespace opprox;

static uint64_t splitMix64(uint64_t &X) {
  X += 0x9e3779b97f4a7c15ULL;
  uint64_t Z = X;
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

static uint64_t rotl(uint64_t X, int K) { return (X << K) | (X >> (64 - K)); }

Rng::Rng(uint64_t Seed) {
  // Expand the seed into four nonzero state words via SplitMix64, per the
  // xoshiro authors' recommendation.
  uint64_t S = Seed;
  for (uint64_t &Word : State)
    Word = splitMix64(S);
}

uint64_t Rng::next() {
  uint64_t Result = rotl(State[1] * 5, 7) * 9;
  uint64_t T = State[1] << 17;
  State[2] ^= State[0];
  State[3] ^= State[1];
  State[1] ^= State[2];
  State[0] ^= State[3];
  State[2] ^= T;
  State[3] = rotl(State[3], 45);
  return Result;
}

double Rng::uniform() {
  // 53 high bits give a uniform double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double Lo, double Hi) {
  assert(Lo <= Hi && "empty uniform range");
  return Lo + (Hi - Lo) * uniform();
}

uint64_t Rng::below(uint64_t Bound) {
  assert(Bound > 0 && "below(0) is meaningless");
  // Rejection sampling to avoid modulo bias.
  uint64_t Threshold = -Bound % Bound;
  for (;;) {
    uint64_t R = next();
    if (R >= Threshold)
      return R % Bound;
  }
}

int64_t Rng::range(int64_t Lo, int64_t Hi) {
  assert(Lo <= Hi && "empty integer range");
  uint64_t Span = static_cast<uint64_t>(Hi - Lo) + 1;
  return Lo + static_cast<int64_t>(below(Span));
}

double Rng::gaussian() {
  if (HasSpareGaussian) {
    HasSpareGaussian = false;
    return SpareGaussian;
  }
  double U1;
  do
    U1 = uniform();
  while (U1 <= 1e-300);
  double U2 = uniform();
  double R = std::sqrt(-2.0 * std::log(U1));
  double Theta = 2.0 * M_PI * U2;
  SpareGaussian = R * std::sin(Theta);
  HasSpareGaussian = true;
  return R * std::cos(Theta);
}

double Rng::gaussian(double Mean, double Stddev) {
  assert(Stddev >= 0 && "negative standard deviation");
  return Mean + Stddev * gaussian();
}

Rng Rng::split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

uint64_t opprox::deriveSeed(uint64_t Base, uint64_t Stream,
                            uint64_t Substream) {
  // Run each identifier through a full SplitMix64 round so adjacent
  // stream ids (0, 1, 2, ...) land in unrelated regions of seed space.
  uint64_t X = Base;
  (void)splitMix64(X);
  X ^= Stream + 0x632be59bd9b4e019ULL;
  (void)splitMix64(X);
  X ^= Substream + 0x9e6c63d0a9de2b43ULL;
  return splitMix64(X);
}
