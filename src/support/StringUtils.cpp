//===- support/StringUtils.cpp --------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/StringUtils.h"
#include <cassert>
#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace opprox;

std::vector<std::string> opprox::split(const std::string &Text, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Parts.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

std::string opprox::join(const std::vector<std::string> &Parts,
                         const std::string &Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I)
      Result += Sep;
    Result += Parts[I];
  }
  return Result;
}

std::string opprox::trim(const std::string &Text) {
  size_t Begin = 0, End = Text.size();
  while (Begin < End && std::isspace(static_cast<unsigned char>(Text[Begin])))
    ++Begin;
  while (End > Begin &&
         std::isspace(static_cast<unsigned char>(Text[End - 1])))
    --End;
  return Text.substr(Begin, End - Begin);
}

std::string opprox::format(const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  std::va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Size = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  assert(Size >= 0 && "vsnprintf failed");
  std::vector<char> Buf(static_cast<size_t>(Size) + 1);
  std::vsnprintf(Buf.data(), Buf.size(), Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return std::string(Buf.data(), static_cast<size_t>(Size));
}

bool opprox::startsWith(const std::string &Text, const std::string &Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool opprox::parseDouble(const std::string &Text, double &Out) {
  std::string Trimmed = trim(Text);
  if (Trimmed.empty())
    return false;
  char *End = nullptr;
  double Value = std::strtod(Trimmed.c_str(), &End);
  if (End != Trimmed.c_str() + Trimmed.size())
    return false;
  Out = Value;
  return true;
}

bool opprox::parseInt(const std::string &Text, long &Out) {
  std::string Trimmed = trim(Text);
  if (Trimmed.empty())
    return false;
  char *End = nullptr;
  long Value = std::strtol(Trimmed.c_str(), &End, 10);
  if (End != Trimmed.c_str() + Trimmed.size())
    return false;
  Out = Value;
  return true;
}
