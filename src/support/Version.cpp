//===- support/Version.cpp ------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Version.h"

using namespace opprox;

// The build system injects the current commit via OPPROX_GIT_DESCRIBE
// (see src/support/CMakeLists.txt); a plain compile without it still
// produces a usable, if less precise, version string.
#ifndef OPPROX_GIT_DESCRIBE
#define OPPROX_GIT_DESCRIBE ""
#endif

std::string opprox::opproxVersion() {
  std::string Version = "opprox-0.3.0";
  constexpr const char *Describe = OPPROX_GIT_DESCRIBE;
  if (Describe[0] != '\0')
    Version += std::string("+") + Describe;
  return Version;
}
