//===- support/Table.h - Console tables and CSV output ---------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned console tables (for the benchmark harnesses that
/// regenerate the paper's tables and figure series) plus CSV export so
/// the series can be re-plotted.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_TABLE_H
#define OPPROX_SUPPORT_TABLE_H

#include <cstdio>
#include <string>
#include <vector>

namespace opprox {

/// A simple row/column table with a header. Cells are strings; numeric
/// convenience adders format with sensible precision.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Starts a new row. Must be filled with exactly one cell per column.
  void beginRow();

  void addCell(std::string Text);
  void addCell(double Value, int Precision = 4);
  void addCell(long Value);
  void addCell(int Value) { addCell(static_cast<long>(Value)); }
  void addCell(size_t Value) { addCell(static_cast<long>(Value)); }

  /// Convenience: adds a full row at once.
  void addRow(std::vector<std::string> Cells);

  size_t numRows() const { return Rows.size(); }
  size_t numColumns() const { return Header.size(); }

  /// Renders with aligned columns to \p Out (default stdout).
  void print(std::FILE *Out = stdout) const;

  /// Renders as CSV (header + rows). Commas inside cells are quoted.
  std::string toCsv() const;

  /// Writes the CSV rendering to \p Path; returns false on I/O failure.
  bool writeCsv(const std::string &Path) const;

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

} // namespace opprox

#endif // OPPROX_SUPPORT_TABLE_H
