//===- support/Simd.cpp ---------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Simd.h"
#include "support/Log.h"
#include <atomic>
#include <cstdlib>
#include <cstring>

#if !defined(OPPROX_DISABLE_SIMD) && (defined(__x86_64__) || defined(__i386__))
#define OPPROX_SIMD_HAVE_AVX2 1
#include <immintrin.h>
#endif
#if !defined(OPPROX_DISABLE_SIMD) && defined(__aarch64__)
#define OPPROX_SIMD_HAVE_NEON 1
#include <arm_neon.h>
#endif

using namespace opprox;
using simd::Tier;

//===----------------------------------------------------------------------===//
// Generic kernels: the semantic reference. Plain element-wise loops the
// specializations must match bit for bit (same per-element operation
// sequence; -ffp-contract=off keeps the compiler from fusing the axpy
// multiply-add on targets that have FMA).
//===----------------------------------------------------------------------===//

namespace {

void mulGeneric(double *Dst, const double *A, const double *B, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = A[I] * B[I];
}

void axpyGeneric(double *Out, double C, const double *T, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Out[I] += C * T[I];
}

void addScalarGeneric(double *Out, double C, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Out[I] += C;
}

void standardizeGeneric(double *Dst, const double *Src, double Mean,
                        double Scale, size_t N) {
  for (size_t I = 0; I < N; ++I)
    Dst[I] = (Src[I] - Mean) / Scale;
}

//===----------------------------------------------------------------------===//
// AVX2: 4-wide double lanes. Explicit mul/add/sub/div intrinsics only --
// intrinsics are never contracted, so each lane performs exactly the
// generic loop's two-rounding sequence. Tails fall through to the same
// scalar expressions.
//===----------------------------------------------------------------------===//

#ifdef OPPROX_SIMD_HAVE_AVX2

__attribute__((target("avx2"))) void mulAvx2(double *Dst, const double *A,
                                             const double *B, size_t N) {
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256d Va = _mm256_loadu_pd(A + I);
    __m256d Vb = _mm256_loadu_pd(B + I);
    _mm256_storeu_pd(Dst + I, _mm256_mul_pd(Va, Vb));
  }
  for (; I < N; ++I)
    Dst[I] = A[I] * B[I];
}

__attribute__((target("avx2"))) void axpyAvx2(double *Out, double C,
                                              const double *T, size_t N) {
  __m256d Vc = _mm256_set1_pd(C);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256d Vo = _mm256_loadu_pd(Out + I);
    __m256d Vt = _mm256_loadu_pd(T + I);
    // mul then add, matching the unfused generic expression.
    _mm256_storeu_pd(Out + I, _mm256_add_pd(Vo, _mm256_mul_pd(Vc, Vt)));
  }
  for (; I < N; ++I)
    Out[I] += C * T[I];
}

__attribute__((target("avx2"))) void addScalarAvx2(double *Out, double C,
                                                   size_t N) {
  __m256d Vc = _mm256_set1_pd(C);
  size_t I = 0;
  for (; I + 4 <= N; I += 4)
    _mm256_storeu_pd(Out + I, _mm256_add_pd(_mm256_loadu_pd(Out + I), Vc));
  for (; I < N; ++I)
    Out[I] += C;
}

__attribute__((target("avx2"))) void standardizeAvx2(double *Dst,
                                                     const double *Src,
                                                     double Mean, double Scale,
                                                     size_t N) {
  __m256d Vm = _mm256_set1_pd(Mean);
  __m256d Vs = _mm256_set1_pd(Scale);
  size_t I = 0;
  for (; I + 4 <= N; I += 4) {
    __m256d Vx = _mm256_loadu_pd(Src + I);
    _mm256_storeu_pd(Dst + I, _mm256_div_pd(_mm256_sub_pd(Vx, Vm), Vs));
  }
  for (; I < N; ++I)
    Dst[I] = (Src[I] - Mean) / Scale;
}

#endif // OPPROX_SIMD_HAVE_AVX2

//===----------------------------------------------------------------------===//
// NEON: 2-wide double lanes, baseline on aarch64. vmulq/vaddq are the
// unfused forms (vfmaq would be the fused one and is deliberately not
// used).
//===----------------------------------------------------------------------===//

#ifdef OPPROX_SIMD_HAVE_NEON

void mulNeon(double *Dst, const double *A, const double *B, size_t N) {
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    vst1q_f64(Dst + I, vmulq_f64(vld1q_f64(A + I), vld1q_f64(B + I)));
  for (; I < N; ++I)
    Dst[I] = A[I] * B[I];
}

void axpyNeon(double *Out, double C, const double *T, size_t N) {
  float64x2_t Vc = vdupq_n_f64(C);
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    vst1q_f64(Out + I,
              vaddq_f64(vld1q_f64(Out + I), vmulq_f64(Vc, vld1q_f64(T + I))));
  for (; I < N; ++I)
    Out[I] += C * T[I];
}

void addScalarNeon(double *Out, double C, size_t N) {
  float64x2_t Vc = vdupq_n_f64(C);
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    vst1q_f64(Out + I, vaddq_f64(vld1q_f64(Out + I), Vc));
  for (; I < N; ++I)
    Out[I] += C;
}

void standardizeNeon(double *Dst, const double *Src, double Mean, double Scale,
                     size_t N) {
  float64x2_t Vm = vdupq_n_f64(Mean);
  float64x2_t Vs = vdupq_n_f64(Scale);
  size_t I = 0;
  for (; I + 2 <= N; I += 2)
    vst1q_f64(Dst + I, vdivq_f64(vsubq_f64(vld1q_f64(Src + I), Vm), Vs));
  for (; I < N; ++I)
    Dst[I] = (Src[I] - Mean) / Scale;
}

#endif // OPPROX_SIMD_HAVE_NEON

//===----------------------------------------------------------------------===//
// Tier resolution and dispatch.
//===----------------------------------------------------------------------===//

/// Parses OPPROX_SIMD. Unset/empty/"auto" -> no override; unknown values
/// are reported once and ignored.
bool parseRequestedTier(Tier &Out) {
  const char *Env = std::getenv("OPPROX_SIMD");
  if (!Env || !*Env || std::strcmp(Env, "auto") == 0)
    return false;
  if (std::strcmp(Env, "generic") == 0) {
    Out = Tier::Generic;
    return true;
  }
  if (std::strcmp(Env, "avx2") == 0) {
    Out = Tier::Avx2;
    return true;
  }
  if (std::strcmp(Env, "neon") == 0) {
    Out = Tier::Neon;
    return true;
  }
  logInfo("ignoring unknown OPPROX_SIMD value '%s' "
          "(expected auto|generic|avx2|neon)",
          Env);
  return false;
}

Tier detectBestTier() {
#ifdef OPPROX_SIMD_HAVE_AVX2
  if (__builtin_cpu_supports("avx2"))
    return Tier::Avx2;
#endif
#ifdef OPPROX_SIMD_HAVE_NEON
  return Tier::Neon;
#endif
  return Tier::Generic;
}

Tier resolveInitialTier() {
  Tier Requested;
  if (parseRequestedTier(Requested)) {
    if (simd::tierSupported(Requested))
      return Requested;
    logInfo("OPPROX_SIMD=%s is not available on this build/CPU; using "
            "generic kernels",
            simd::tierName(Requested));
    return Tier::Generic;
  }
  return detectBestTier();
}

/// The installed tier, lazily resolved. -1 means "not yet resolved";
/// resolution races are benign (every racer installs the same value).
std::atomic<int> ActiveTier{-1};

} // namespace

bool simd::tierSupported(Tier T) {
  switch (T) {
  case Tier::Generic:
    return true;
  case Tier::Avx2:
#ifdef OPPROX_SIMD_HAVE_AVX2
    return __builtin_cpu_supports("avx2");
#else
    return false;
#endif
  case Tier::Neon:
#ifdef OPPROX_SIMD_HAVE_NEON
    return true;
#else
    return false;
#endif
  }
  return false;
}

Tier simd::activeTier() {
  int T = ActiveTier.load(std::memory_order_relaxed);
  if (T < 0) {
    T = static_cast<int>(resolveInitialTier());
    ActiveTier.store(T, std::memory_order_relaxed);
  }
  return static_cast<Tier>(T);
}

Tier simd::setActiveTier(Tier T) {
  if (!tierSupported(T))
    T = Tier::Generic;
  ActiveTier.store(static_cast<int>(T), std::memory_order_relaxed);
  return T;
}

const char *simd::tierName(Tier T) {
  switch (T) {
  case Tier::Generic:
    return "generic";
  case Tier::Avx2:
    return "avx2";
  case Tier::Neon:
    return "neon";
  }
  return "generic";
}

const char *simd::activeTierName() { return tierName(activeTier()); }

void simd::mul(double *Dst, const double *A, const double *B, size_t N) {
  switch (activeTier()) {
#ifdef OPPROX_SIMD_HAVE_AVX2
  case Tier::Avx2:
    return mulAvx2(Dst, A, B, N);
#endif
#ifdef OPPROX_SIMD_HAVE_NEON
  case Tier::Neon:
    return mulNeon(Dst, A, B, N);
#endif
  default:
    return mulGeneric(Dst, A, B, N);
  }
}

void simd::axpy(double *Out, double C, const double *T, size_t N) {
  switch (activeTier()) {
#ifdef OPPROX_SIMD_HAVE_AVX2
  case Tier::Avx2:
    return axpyAvx2(Out, C, T, N);
#endif
#ifdef OPPROX_SIMD_HAVE_NEON
  case Tier::Neon:
    return axpyNeon(Out, C, T, N);
#endif
  default:
    return axpyGeneric(Out, C, T, N);
  }
}

void simd::addScalar(double *Out, double C, size_t N) {
  switch (activeTier()) {
#ifdef OPPROX_SIMD_HAVE_AVX2
  case Tier::Avx2:
    return addScalarAvx2(Out, C, N);
#endif
#ifdef OPPROX_SIMD_HAVE_NEON
  case Tier::Neon:
    return addScalarNeon(Out, C, N);
#endif
  default:
    return addScalarGeneric(Out, C, N);
  }
}

void simd::standardize(double *Dst, const double *Src, double Mean,
                       double Scale, size_t N) {
  switch (activeTier()) {
#ifdef OPPROX_SIMD_HAVE_AVX2
  case Tier::Avx2:
    return standardizeAvx2(Dst, Src, Mean, Scale, N);
#endif
#ifdef OPPROX_SIMD_HAVE_NEON
  case Tier::Neon:
    return standardizeNeon(Dst, Src, Mean, Scale, N);
#endif
  default:
    return standardizeGeneric(Dst, Src, Mean, Scale, N);
  }
}
