//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic, seed-driven fault-point registry for exercising the
/// serving path's error handling (see docs/RELIABILITY.md). Named fault
/// sites are compiled into the library at the places failures occur in
/// production -- artifact I/O, JSON parsing, model prediction outputs,
/// thread-pool task execution -- and stay dormant until armed:
///
///   OPPROX_FAULTS=json.read:1.0:42:2,model.predict.nan:0.5:7
///
/// Each entry is `site:probability:seed[:max]`: the site fires with the
/// given probability per visit, drawing from its own seeded Rng stream,
/// and stops after `max` injections (unlimited when omitted). `all`
/// addresses every registered site at once. Identical specs replay
/// identical fault sequences -- the property the deterministic-replay
/// tests in tests/FaultInjectionTests.cpp assert.
///
/// When nothing is armed (the production default) a fault point costs a
/// single relaxed atomic load and a predicted-untaken branch; no site
/// state is ever touched.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_FAULTINJECTION_H
#define OPPROX_SUPPORT_FAULTINJECTION_H

#include "support/Compiler.h"
#include "support/Error.h"
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

namespace opprox {

/// Canonical fault-site names. Every site the library compiles in is
/// listed here (and returned by allFaultSites()), so specs can be
/// validated and "exercise every site" harnesses can enumerate them.
namespace faults {
/// readFile() fails before touching the filesystem (simulated I/O error).
inline constexpr const char *JsonRead = "json.read";
/// Json::parse() rejects the document before scanning it.
inline constexpr const char *JsonParse = "json.parse";
/// OpproxArtifact::deserialize() sees corrupted bytes: the document is
/// truncated mid-file before parsing, exercising the real parse-error
/// path rather than a synthetic error return.
inline constexpr const char *ArtifactCorrupt = "artifact.corrupt";
/// OpproxArtifact::save() fails before writing.
inline constexpr const char *ArtifactWrite = "artifact.write";
/// OpproxRuntime::loadArtifact() fails one load attempt (retryable).
inline constexpr const char *RuntimeLoad = "runtime.load";
/// A PhaseModels prediction output is replaced with quiet NaN.
inline constexpr const char *PredictNan = "model.predict.nan";
/// A PhaseModels prediction output is replaced with +infinity.
inline constexpr const char *PredictInf = "model.predict.inf";
/// A thread-pool task dies on startup (throws FaultInjectedError).
inline constexpr const char *ThreadPoolTask = "threadpool.task";
/// The online controller loses one phase observation before ingesting
/// it (simulated dropped/late feedback; counted, never fatal).
inline constexpr const char *ControlObserve = "control.observe";
} // namespace faults

/// All registered site names, in deterministic (registration) order.
const std::vector<std::string> &allFaultSites();

/// Thrown by fault points that model sudden task death (currently only
/// threadpool.task). Travels through ThreadPool::parallelFor's
/// first-exception rethrow and submit()'s future, so callers exercise
/// the same propagation path a real task failure would take.
class FaultInjectedError : public std::runtime_error {
public:
  explicit FaultInjectedError(const std::string &Site)
      : std::runtime_error("fault injection: simulated failure at site '" +
                           Site + "'"),
        SiteName(Site) {}

  const std::string &site() const { return SiteName; }

private:
  std::string SiteName;
};

namespace detail {
/// True when any site of the global registry is armed. Exposed so the
/// faultPoint() fast path is one relaxed load with no function call into
/// the registry.
extern std::atomic<bool> GlobalFaultsArmed;
} // namespace detail

/// The fault-point registry: per-site probability, seeded Rng stream,
/// injection cap, and injection count. Thread-safe; deterministic given
/// the same spec and the same per-site visit sequence.
class FaultRegistry {
public:
  /// The process-wide registry every compiled-in fault point consults.
  /// On first use it arms itself from OPPROX_FAULTS when that is set; a
  /// malformed value is a fatal error (a typo silently disabling a fault
  /// harness would defeat the point of running one).
  static FaultRegistry &global();

  /// Test instances are independent of the global registry (and of the
  /// faultPoint() fast path, which only consults the global one).
  FaultRegistry();  // Out-of-line: Site is incomplete here, and the
  ~FaultRegistry(); // defaulted members would instantiate its deleter.
  FaultRegistry(const FaultRegistry &) = delete;
  FaultRegistry &operator=(const FaultRegistry &) = delete;

  /// Parses and arms \p Spec: comma-separated `site:prob:seed[:max]`
  /// entries (`all` fans one entry out to every registered site).
  /// Replaces any previous configuration. Returns a descriptive Error
  /// (leaving the registry disarmed) on malformed specs or unknown
  /// sites.
  std::optional<Error> configure(const std::string &Spec);

  /// Disarms every site and forgets all configuration and counts.
  void clear();

  /// True when at least one site is armed.
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  /// Visits \p Site: returns true when the site is armed, its Bernoulli
  /// draw fires, and its injection cap is not yet exhausted. Each true
  /// return counts into fault.injected_total and fault.injected.<site>.
  bool shouldFail(const char *Site);

  /// Total injections across all sites since configure().
  uint64_t injectedTotal() const;

  /// Injections at one site since configure().
  uint64_t injectedAt(const std::string &Site) const;

private:
  struct Site;

  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Site>> Sites;
  std::atomic<bool> Armed{false};
  std::atomic<uint64_t> InjectedTotal{0};
  /// True only for the global() instance, which mirrors its armed state
  /// into detail::GlobalFaultsArmed for the faultPoint() fast path.
  bool IsGlobal = false;
};

/// The fault-point gate every site compiles down to. Disarmed (the
/// default), this is one relaxed atomic load and an untaken branch.
inline bool faultPoint(const char *Site) {
  if (OPPROX_LIKELY(
          !detail::GlobalFaultsArmed.load(std::memory_order_relaxed)))
    return false;
  return FaultRegistry::global().shouldFail(Site);
}

/// faultPoint() that models task death: throws FaultInjectedError when
/// the site fires.
inline void throwOnFault(const char *Site) {
  if (OPPROX_UNLIKELY(faultPoint(Site)))
    throw FaultInjectedError(Site);
}

} // namespace opprox

#endif // OPPROX_SUPPORT_FAULTINJECTION_H
