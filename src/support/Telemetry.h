//===- support/Telemetry.h - Metrics registry + structured tracing -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The observability layer for the train/optimize pipeline (see
/// docs/OBSERVABILITY.md for the metric catalog and span naming scheme).
/// Dependency-free and thread-safe throughout:
///
///  - **MetricsRegistry** -- process-wide named counters, gauges, and
///    fixed-bucket histograms (with p50/p95/p99 estimates). Instrument
///    handles are stable for the life of the registry, so hot paths cache
///    a reference once and then touch only relaxed atomics. reset()
///    zeroes values in place -- it never invalidates handles.
///  - **TraceRecorder / TraceSpan** -- RAII wall-clock spans with nested
///    scopes, buffered per thread and exportable as Chrome trace-event
///    JSON (load the file in chrome://tracing or https://ui.perfetto.dev).
///    When the recorder is disabled (the default), constructing a span
///    costs one relaxed atomic load plus one clock read and records
///    nothing.
///  - **Metrics snapshot** -- a deterministic JSON document (name-sorted
///    instruments, insertion-ordered members via support/Json) written by
///    the --metrics-out flag of every tool and bench binary.
///  - **TelemetryOptions glue** -- the shared --trace-out/--metrics-out/
///    --log-level wiring (environment fallbacks OPPROX_TRACE,
///    OPPROX_METRICS, OPPROX_LOG_LEVEL) used by the CLIs, benches, and
///    examples.
///
/// Snapshots taken while workers are still recording are internally
/// consistent per instrument (each value is one atomic read) but not
/// across instruments; the pipeline only snapshots at stage boundaries.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_TELEMETRY_H
#define OPPROX_SUPPORT_TELEMETRY_H

#include "support/Error.h"
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace opprox {

class Json;
class FlagParser;

//===----------------------------------------------------------------------===//
// Metrics
//===----------------------------------------------------------------------===//

/// Monotone event count. All operations are relaxed atomics.
class Counter {
public:
  void add(uint64_t N = 1) { Count.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return Count.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  Counter() = default;
  std::atomic<uint64_t> Count{0};
};

/// Last-written (or high-water) instantaneous value.
class Gauge {
public:
  void set(double V) { Value.store(V, std::memory_order_relaxed); }

  /// Raises the gauge to \p V when larger (high-water marks such as
  /// queue depth).
  void setMax(double V);

  double value() const { return Value.load(std::memory_order_relaxed); }

private:
  friend class MetricsRegistry;
  Gauge() = default;
  std::atomic<double> Value{0.0};
};

/// Fixed-bucket histogram: per-bucket atomic counts plus count/sum/
/// min/max, with percentile estimates by linear interpolation inside the
/// selected bucket. Bucket bounds are fixed at registration, so record()
/// is lock-free and the memory footprint is constant.
class Histogram {
public:
  void record(double V);

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  double sum() const { return Sum.load(std::memory_order_relaxed); }
  double minValue() const;
  double maxValue() const;
  double mean() const;

  /// Value below which \p P percent of recordings fall (P in [0, 100]),
  /// interpolated within the containing bucket; exact at bucket
  /// boundaries. Returns 0 when empty.
  double percentile(double P) const;

  /// Finite upper bounds; bucket i covers (bounds[i-1], bounds[i]], with
  /// an implicit overflow bucket above the last bound.
  const std::vector<double> &bounds() const { return UpperBounds; }

  /// Per-bucket counts (bounds().size() + 1 entries, overflow last).
  std::vector<uint64_t> bucketCounts() const;

  /// Default bounds for millisecond latencies: 0.01ms .. 60s,
  /// roughly 1-2.5-5 per decade.
  static std::vector<double> latencyBoundsMs();

  /// Default bounds for nanosecond latencies (cache lookups, lock-held
  /// sections): 50ns .. 10ms.
  static std::vector<double> latencyBoundsNs();

  /// Default bounds for percentage quantities (QoS budgets): 0.1 .. 100.
  static std::vector<double> percentBounds();

  /// Fine-grained bounds for per-request stage latencies: 100ns .. 1s.
  /// Warm-cache serve stages sit well under a microsecond, which the
  /// 10us-floor latencyBoundsMs() grid cannot resolve.
  static std::vector<double> stageBoundsMs();

  /// Percentile estimate over a standalone bucket-count vector (e.g. the
  /// difference of two bucketCounts() captures). \p Counts must have
  /// Bounds.size() + 1 entries (overflow last). Interpolates linearly
  /// inside the selected bucket; the first bucket's lower edge is 0 and
  /// the overflow bucket collapses to the last finite bound (a
  /// conservative lower estimate, since no per-interval max is tracked).
  /// Returns 0 when the counts are all zero.
  static double percentileFromCounts(const std::vector<double> &Bounds,
                                     const std::vector<uint64_t> &Counts,
                                     double P);

private:
  friend class MetricsRegistry;
  explicit Histogram(std::vector<double> Bounds);

  std::vector<double> UpperBounds;
  std::vector<std::atomic<uint64_t>> Buckets; ///< UpperBounds.size() + 1.
  std::atomic<uint64_t> Count{0};
  std::atomic<double> Sum{0.0};
  std::atomic<double> Min;
  std::atomic<double> Max;
};

/// A flattened (name, value) metrics summary, name-sorted. Used to diff
/// training cost into artifact provenance.
using MetricsSummary = std::vector<std::pair<std::string, double>>;

/// Point-in-time capture of every monotone instrument (counter values,
/// histogram count/sum/bucket vectors) plus a steady-clock timestamp.
/// Feed it back to MetricsRegistry::deltaJson() to get a *windowed*
/// snapshot -- per-interval counts, rates per second, and interval
/// percentiles -- instead of lifetime aggregates. This is what the
/// serving tier's `{"stats": "delta"}` wire probe and `opprox-top` are
/// built on.
struct MetricsBaseline {
  struct HistogramState {
    uint64_t Count = 0;
    double Sum = 0.0;
    std::vector<uint64_t> Buckets;
  };
  std::chrono::steady_clock::time_point TakenAt{};
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, HistogramState> Histograms;
};

/// Named-instrument registry. Registration takes a mutex; returned
/// references stay valid for the registry's lifetime (the global one
/// never dies), so callers cache them and the hot path is atomics only.
class MetricsRegistry {
public:
  /// The process-wide registry every pipeline stage records into.
  /// Intentionally leaked so atexit exporters and thread-local tails can
  /// always reach it.
  static MetricsRegistry &global();

  /// Test instances are independent of the global registry.
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry &) = delete;
  MetricsRegistry &operator=(const MetricsRegistry &) = delete;

  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);

  /// Registers (or finds) a histogram. \p Bounds is used on first
  /// registration only; empty means Histogram::latencyBoundsMs().
  Histogram &histogram(const std::string &Name,
                       std::vector<double> Bounds = {});

  /// Deterministic snapshot: {"schema", "counters", "gauges",
  /// "histograms"} with instruments in name order; serializing the same
  /// state always yields the same bytes.
  Json snapshotJson() const;

  /// Captures the monotone state of every instrument for later use with
  /// deltaJson(). Cheap: one atomic read per counter/bucket.
  MetricsBaseline captureBaseline() const;

  /// Windowed snapshot since \p Since: {"schema": "opprox-metrics-delta-1",
  /// "interval_s", "counters" (per-window deltas), "rates_per_sec",
  /// "gauges" (current values), "histograms" (per-window count/sum/mean/
  /// p50/p95/p99 from bucket-count differences)}. Zero-delta counters and
  /// histograms are dropped, so idle windows serialize small. \p Since is
  /// advanced to the fresh capture, giving pollers back-to-back windows
  /// with no gap: `Json W = Reg.deltaJson(Base);` is the whole loop body.
  Json deltaJson(MetricsBaseline &Since) const;

  /// The monotone slice of the registry -- counters plus histogram
  /// "<name>.count"/"<name>.sum" -- suitable for before/after diffing.
  MetricsSummary monotoneSummary() const;

  /// after - before, per key (keys missing from \p Before count as 0);
  /// zero-valued entries are dropped. Both inputs must be name-sorted,
  /// as monotoneSummary() returns them.
  static MetricsSummary diffSummary(const MetricsSummary &Before,
                                    const MetricsSummary &After);

  /// Zeroes every instrument in place. Handles stay valid -- reset never
  /// removes instruments, so cached references cannot dangle.
  void reset();

private:
  mutable std::mutex Mutex;
  // std::map: name-sorted iteration gives deterministic snapshots.
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

/// One completed span or instant marker, timestamped in microseconds
/// since the recorder's epoch.
struct TraceEvent {
  std::string Name;
  std::string Category;
  uint64_t StartMicros = 0;
  uint64_t DurationMicros = 0;
  uint32_t ThreadId = 0; ///< Recorder-assigned dense id, stable per thread.
  char Phase = 'X';      ///< Chrome phase: 'X' complete, 'i' instant.
  std::vector<std::pair<std::string, double>> Args;
};

/// Collects TraceEvents into per-thread buffers and exports Chrome
/// trace-event JSON. Disabled by default; every TraceSpan checks one
/// relaxed atomic before doing anything else.
class TraceRecorder {
public:
  /// The process-wide recorder (leaked, like the metrics registry).
  static TraceRecorder &global();

  /// Test instances are independent of the global recorder.
  TraceRecorder();
  TraceRecorder(const TraceRecorder &) = delete;
  TraceRecorder &operator=(const TraceRecorder &) = delete;

  void enable() { Enabled.store(true, std::memory_order_relaxed); }
  void disable() { Enabled.store(false, std::memory_order_relaxed); }
  bool enabled() const { return Enabled.load(std::memory_order_relaxed); }

  /// Microseconds since the recorder's construction.
  uint64_t nowMicros() const;

  /// Appends \p Event (ThreadId is assigned here) to the calling
  /// thread's buffer. Called by TraceSpan; safe from any thread.
  void record(TraceEvent Event);

  /// Records an instant marker when enabled.
  void instant(std::string Name, std::string Category = "opprox");

  /// All recorded events merged across threads, ordered by (start,
  /// thread, duration descending) so enclosing spans precede their
  /// children.
  std::vector<TraceEvent> events() const;

  size_t eventCount() const;

  /// {"traceEvents": [...], "displayTimeUnit": "ms"} per the Chrome
  /// trace-event format; loadable in chrome://tracing.
  Json toChromeJson() const;

  /// Serialized toChromeJson() with a trailing newline.
  std::string chromeTraceText() const;

  std::optional<Error> writeChromeTrace(const std::string &Path) const;

  /// Drops all buffered events (thread ids are retained).
  void clear();

private:
  struct ThreadBuffer {
    uint32_t Tid;
    std::vector<TraceEvent> Events;
  };

  std::atomic<bool> Enabled{false};
  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex Mutex; ///< Guards Buffers; record() holds it briefly.
  std::map<std::thread::id, ThreadBuffer> Buffers;
  uint32_t NextTid = 1;
};

/// RAII wall-clock span. Construction snapshots the recorder's enabled
/// flag; destruction records a complete ('X') event when it was enabled.
/// Spans nest naturally: inner spans start later and end earlier, which
/// is exactly how the Chrome viewer reconstructs the scope tree.
///
/// seconds() works even when tracing is disabled, so call sites (e.g.
/// bench/table2_overhead) can use one span as both trace emitter and
/// stopwatch instead of keeping a parallel Timer.
class TraceSpan {
public:
  /// Opens a span on \p Recorder (nullptr = the global recorder).
  explicit TraceSpan(std::string Name, std::string Category = "opprox",
                     TraceRecorder *Recorder = nullptr);
  ~TraceSpan();

  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a numeric argument shown in the trace viewer's detail
  /// pane. No-op when the span is not recording.
  void arg(const std::string &Key, double Value);

  /// True when the span will be recorded: lets hot paths skip building
  /// arg keys entirely instead of paying for throwaway temporaries.
  bool recording() const { return Rec != nullptr; }

  /// Elapsed seconds since construction (recording or not).
  double seconds() const;

private:
  TraceRecorder *Rec = nullptr; ///< Null when not recording.
  std::string Name;
  std::string Category;
  std::vector<std::pair<std::string, double>> Args;
  uint64_t StartMicros = 0;
  std::chrono::steady_clock::time_point Start;
};

//===----------------------------------------------------------------------===//
// CLI / environment glue
//===----------------------------------------------------------------------===//

/// The shared telemetry surface of every binary: two output paths and a
/// log level. Empty paths mean "off".
struct TelemetryOptions {
  std::string TracePath;    ///< --trace-out / OPPROX_TRACE.
  std::string MetricsPath;  ///< --metrics-out / OPPROX_METRICS.
  std::string LogLevelText; ///< --log-level / OPPROX_LOG_LEVEL.
};

/// Registers --trace-out, --metrics-out, and --log-level on \p Flags,
/// bound to \p Opts.
void addTelemetryFlags(FlagParser &Flags, TelemetryOptions &Opts);

/// Applies environment fallbacks (OPPROX_TRACE, OPPROX_METRICS,
/// OPPROX_LOG_LEVEL) to unset options, sets the log level, enables the
/// global trace recorder when a trace path is configured, and installs
/// an atexit hook that exports both files at process exit. Returns false
/// (with a stderr diagnostic) on a malformed --log-level value.
bool initTelemetry(TelemetryOptions &Opts);

/// Writes the configured trace/metrics files immediately (also what the
/// atexit hook does). Returns false after logging a warning when a write
/// fails. Safe to call with both paths empty.
bool exportTelemetry(const TelemetryOptions &Opts);

} // namespace opprox

#endif // OPPROX_SUPPORT_TELEMETRY_H
