//===- support/Simd.h - Runtime-dispatched column kernels ------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The vector kernels under the optimizer's batch prediction path
/// (docs/ARCHITECTURE.md, "Optimizer hot path"). Every kernel is a pure
/// element-wise column operation, so each SIMD specialization performs
/// exactly the IEEE operation sequence of the generic loop on every
/// element -- no reassociation, no fused multiply-add -- and is
/// therefore bit-identical to it. That property (plus -ffp-contract=off
/// on the whole build, see the top-level CMakeLists) is what lets the
/// dispatch tier stay decision-irrelevant: OptimizerEquivalenceTests
/// proves generic and specialized scans return identical bits.
///
/// Tier selection: the best tier the CPU supports is picked once at
/// first use; `OPPROX_SIMD=auto|generic|avx2|neon` overrides it (an
/// unsupported request falls back to generic with a log line), and a
/// `-DOPPROX_DISABLE_SIMD` build compiles the specializations out
/// entirely. The active tier is exported to telemetry as
/// `optimize.simd_tier` and into bench output.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_SIMD_H
#define OPPROX_SUPPORT_SIMD_H

#include <cstddef>

namespace opprox {
namespace simd {

/// Instruction tiers the column kernels dispatch across. Values are
/// stable: they are exported as the `optimize.simd_tier` gauge.
enum class Tier : int {
  Generic = 0, ///< Plain loops; the semantic reference for the others.
  Avx2 = 1,    ///< 4-wide double vectors (x86-64 with AVX2).
  Neon = 2,    ///< 2-wide double vectors (aarch64 baseline).
};

/// The tier every kernel currently dispatches to. Resolved on first use
/// from CPU capability and OPPROX_SIMD; stable afterwards unless
/// setActiveTier() intervenes.
Tier activeTier();

/// Forces the dispatch tier (equivalence tests pin Generic and diff the
/// results against the specialized tier). Requests the hardware cannot
/// honor clamp to Generic; returns the tier actually installed.
Tier setActiveTier(Tier T);

/// True when this build/CPU can execute \p T's kernels.
bool tierSupported(Tier T);

const char *tierName(Tier T);
/// tierName(activeTier()) -- the string telemetry and benches report.
const char *activeTierName();

/// Dst[i] = A[i] * B[i].
void mul(double *Dst, const double *A, const double *B, size_t N);
/// Out[i] += C * T[i] (two roundings: multiply, then add -- never FMA).
void axpy(double *Out, double C, const double *T, size_t N);
/// Out[i] += C.
void addScalar(double *Out, double C, size_t N);
/// Dst[i] = (Src[i] - Mean) / Scale, the standardization expression.
void standardize(double *Dst, const double *Src, double Mean, double Scale,
                 size_t N);

} // namespace simd
} // namespace opprox

#endif // OPPROX_SUPPORT_SIMD_H
