//===- support/CommandLine.h - Minimal flag parsing ------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny --flag=value / --flag value parser for the example and benchmark
/// binaries. Unknown flags are an error so typos do not silently change an
/// experiment.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_COMMANDLINE_H
#define OPPROX_SUPPORT_COMMANDLINE_H

#include <map>
#include <string>
#include <vector>

namespace opprox {

/// Declarative flag registry. Register flags, then parse argv; values are
/// written straight into the bound variables.
class FlagParser {
public:
  void addFlag(const std::string &Name, double *Target,
               const std::string &Help);
  void addFlag(const std::string &Name, long *Target, const std::string &Help);
  void addFlag(const std::string &Name, std::string *Target,
               const std::string &Help);
  void addFlag(const std::string &Name, bool *Target, const std::string &Help);

  /// Parses argv. On error prints a diagnostic and usage to stderr and
  /// returns false. "--help" prints usage and returns false with no
  /// diagnostic.
  bool parse(int Argc, const char *const *Argv);

  /// Positional (non-flag) arguments, in order.
  const std::vector<std::string> &positional() const { return Positional; }

  void printUsage(const std::string &Program) const;

private:
  enum class KindTy { Double, Int, String, Bool };
  struct FlagInfo {
    KindTy Kind;
    void *Target;
    std::string Help;
  };
  std::map<std::string, FlagInfo> Flags;
  std::vector<std::string> Positional;
};

} // namespace opprox

#endif // OPPROX_SUPPORT_COMMANDLINE_H
