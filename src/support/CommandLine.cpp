//===- support/CommandLine.cpp --------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/StringUtils.h"
#include <cassert>
#include <cstdio>

using namespace opprox;

void FlagParser::addFlag(const std::string &Name, double *Target,
                         const std::string &Help) {
  assert(!Flags.count(Name) && "duplicate flag");
  Flags[Name] = {KindTy::Double, Target, Help};
}

void FlagParser::addFlag(const std::string &Name, long *Target,
                         const std::string &Help) {
  assert(!Flags.count(Name) && "duplicate flag");
  Flags[Name] = {KindTy::Int, Target, Help};
}

void FlagParser::addFlag(const std::string &Name, std::string *Target,
                         const std::string &Help) {
  assert(!Flags.count(Name) && "duplicate flag");
  Flags[Name] = {KindTy::String, Target, Help};
}

void FlagParser::addFlag(const std::string &Name, bool *Target,
                         const std::string &Help) {
  assert(!Flags.count(Name) && "duplicate flag");
  Flags[Name] = {KindTy::Bool, Target, Help};
}

bool FlagParser::parse(int Argc, const char *const *Argv) {
  std::string Program = Argc > 0 ? Argv[0] : "program";
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (!startsWith(Arg, "--")) {
      Positional.push_back(Arg);
      continue;
    }
    if (Arg == "--help") {
      printUsage(Program);
      return false;
    }
    std::string Name = Arg.substr(2);
    std::string Value;
    bool HasValue = false;
    size_t Eq = Name.find('=');
    if (Eq != std::string::npos) {
      Value = Name.substr(Eq + 1);
      Name = Name.substr(0, Eq);
      HasValue = true;
    }
    auto It = Flags.find(Name);
    if (It == Flags.end()) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n", Name.c_str());
      printUsage(Program);
      return false;
    }
    FlagInfo &Info = It->second;
    if (Info.Kind == KindTy::Bool && !HasValue) {
      *static_cast<bool *>(Info.Target) = true;
      continue;
    }
    if (!HasValue) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: flag '--%s' expects a value\n",
                     Name.c_str());
        return false;
      }
      Value = Argv[++I];
    }
    switch (Info.Kind) {
    case KindTy::Double: {
      double D;
      if (!parseDouble(Value, D)) {
        std::fprintf(stderr, "error: flag '--%s' expects a number, got '%s'\n",
                     Name.c_str(), Value.c_str());
        return false;
      }
      *static_cast<double *>(Info.Target) = D;
      break;
    }
    case KindTy::Int: {
      long L;
      if (!parseInt(Value, L)) {
        std::fprintf(stderr,
                     "error: flag '--%s' expects an integer, got '%s'\n",
                     Name.c_str(), Value.c_str());
        return false;
      }
      *static_cast<long *>(Info.Target) = L;
      break;
    }
    case KindTy::String:
      *static_cast<std::string *>(Info.Target) = Value;
      break;
    case KindTy::Bool:
      *static_cast<bool *>(Info.Target) =
          Value == "1" || Value == "true" || Value == "yes";
      break;
    }
  }
  return true;
}

void FlagParser::printUsage(const std::string &Program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", Program.c_str());
  for (const auto &[Name, Info] : Flags)
    std::fprintf(stderr, "  --%-24s %s\n", Name.c_str(), Info.Help.c_str());
}
