//===- support/Telemetry.cpp ----------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Telemetry.h"
#include "support/CommandLine.h"
#include "support/Json.h"
#include "support/Log.h"
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <limits>

using namespace opprox;

//===----------------------------------------------------------------------===//
// Gauge
//===----------------------------------------------------------------------===//

void Gauge::setMax(double V) {
  double Current = Value.load(std::memory_order_relaxed);
  while (V > Current &&
         !Value.compare_exchange_weak(Current, V, std::memory_order_relaxed))
    ;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

Histogram::Histogram(std::vector<double> Bounds)
    : UpperBounds(std::move(Bounds)), Buckets(UpperBounds.size() + 1),
      Min(std::numeric_limits<double>::infinity()),
      Max(-std::numeric_limits<double>::infinity()) {
  assert(std::is_sorted(UpperBounds.begin(), UpperBounds.end()) &&
         "histogram bounds must ascend");
}

void Histogram::record(double V) {
  size_t Bucket = static_cast<size_t>(
      std::lower_bound(UpperBounds.begin(), UpperBounds.end(), V) -
      UpperBounds.begin());
  Buckets[Bucket].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(V, std::memory_order_relaxed);
  double Seen = Min.load(std::memory_order_relaxed);
  while (V < Seen &&
         !Min.compare_exchange_weak(Seen, V, std::memory_order_relaxed))
    ;
  Seen = Max.load(std::memory_order_relaxed);
  while (V > Seen &&
         !Max.compare_exchange_weak(Seen, V, std::memory_order_relaxed))
    ;
}

double Histogram::minValue() const {
  return count() ? Min.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::maxValue() const {
  return count() ? Max.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::mean() const {
  uint64_t N = count();
  return N ? sum() / static_cast<double>(N) : 0.0;
}

std::vector<uint64_t> Histogram::bucketCounts() const {
  std::vector<uint64_t> Out(Buckets.size());
  for (size_t I = 0; I < Buckets.size(); ++I)
    Out[I] = Buckets[I].load(std::memory_order_relaxed);
  return Out;
}

double Histogram::percentile(double P) const {
  std::vector<uint64_t> Counts = bucketCounts();
  uint64_t Total = 0;
  for (uint64_t C : Counts)
    Total += C;
  if (Total == 0)
    return 0.0;
  double Lo = Min.load(std::memory_order_relaxed);
  double Hi = Max.load(std::memory_order_relaxed);
  if (P <= 0.0)
    return Lo;
  if (P >= 100.0)
    return Hi;

  double Target = P / 100.0 * static_cast<double>(Total);
  double Before = 0.0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    double InBucket = static_cast<double>(Counts[I]);
    if (InBucket == 0.0 || Before + InBucket < Target) {
      Before += InBucket;
      continue;
    }
    // Interpolate inside bucket I, whose edges are (bound[I-1], bound[I]];
    // the outermost edges are tightened to the observed extremes.
    double Lower = I == 0 ? Lo : UpperBounds[I - 1];
    double Upper = I < UpperBounds.size() ? UpperBounds[I] : Hi;
    Lower = std::max(Lower, Lo);
    Upper = std::min(std::max(Upper, Lower), Hi);
    double Fraction = (Target - Before) / InBucket;
    return std::clamp(Lower + (Upper - Lower) * Fraction, Lo, Hi);
  }
  return Hi;
}

std::vector<double> Histogram::latencyBoundsMs() {
  return {0.01, 0.025, 0.05, 0.1,  0.25, 0.5,  1,    2.5,   5,     10,   25,
          50,   100,   250,  500,  1000, 2500, 5000, 10000, 30000, 60000};
}

std::vector<double> Histogram::latencyBoundsNs() {
  return {50,    100,   250,   500,    1000,   2500,    5000,
          10000, 25000, 50000, 100000, 500000, 1000000, 10000000};
}

std::vector<double> Histogram::percentBounds() {
  return {0.1, 0.25, 0.5, 1, 2, 5, 10, 15, 20, 25, 50, 100};
}

std::vector<double> Histogram::stageBoundsMs() {
  return {0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
          0.05,   0.1,     0.25,   0.5,   1,      2.5,   5,    10,
          25,     50,      100,    250,   1000};
}

double Histogram::percentileFromCounts(const std::vector<double> &Bounds,
                                       const std::vector<uint64_t> &Counts,
                                       double P) {
  assert(Counts.size() == Bounds.size() + 1 &&
         "counts must carry one overflow bucket");
  uint64_t Total = 0;
  for (uint64_t C : Counts)
    Total += C;
  if (Total == 0 || Bounds.empty())
    return 0.0;

  auto LowerEdge = [&](size_t I) { return I == 0 ? 0.0 : Bounds[I - 1]; };
  // The overflow bucket has no upper edge; collapse it to the last finite
  // bound so interval percentiles stay a conservative lower estimate.
  auto UpperEdge = [&](size_t I) {
    return I < Bounds.size() ? Bounds[I] : Bounds.back();
  };

  if (P <= 0.0) {
    for (size_t I = 0; I < Counts.size(); ++I)
      if (Counts[I])
        return LowerEdge(I);
    return 0.0;
  }
  if (P >= 100.0) {
    for (size_t I = Counts.size(); I-- > 0;)
      if (Counts[I])
        return UpperEdge(I);
    return 0.0;
  }

  double Target = P / 100.0 * static_cast<double>(Total);
  double Before = 0.0;
  for (size_t I = 0; I < Counts.size(); ++I) {
    double InBucket = static_cast<double>(Counts[I]);
    if (InBucket == 0.0 || Before + InBucket < Target) {
      Before += InBucket;
      continue;
    }
    double Fraction = (Target - Before) / InBucket;
    return LowerEdge(I) + (UpperEdge(I) - LowerEdge(I)) * Fraction;
  }
  return UpperEdge(Counts.size() - 1);
}

//===----------------------------------------------------------------------===//
// MetricsRegistry
//===----------------------------------------------------------------------===//

MetricsRegistry &MetricsRegistry::global() {
  static MetricsRegistry *Registry = new MetricsRegistry; // Leaked: see header.
  return *Registry;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Counter> &Slot = Counters[Name];
  if (!Slot)
    Slot.reset(new Counter());
  return *Slot;
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Gauge> &Slot = Gauges[Name];
  if (!Slot)
    Slot.reset(new Gauge());
  return *Slot;
}

Histogram &MetricsRegistry::histogram(const std::string &Name,
                                      std::vector<double> Bounds) {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::unique_ptr<Histogram> &Slot = Histograms[Name];
  if (!Slot)
    Slot.reset(new Histogram(Bounds.empty() ? Histogram::latencyBoundsMs()
                                            : std::move(Bounds)));
  return *Slot;
}

Json MetricsRegistry::snapshotJson() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  Json Out = Json::object();
  Out.set("schema", "opprox-metrics-1");

  Json CounterObj = Json::object();
  for (const auto &[Name, C] : Counters)
    CounterObj.set(Name, static_cast<double>(C->value()));
  Out.set("counters", std::move(CounterObj));

  Json GaugeObj = Json::object();
  for (const auto &[Name, G] : Gauges)
    GaugeObj.set(Name, G->value());
  Out.set("gauges", std::move(GaugeObj));

  Json HistObj = Json::object();
  for (const auto &[Name, H] : Histograms) {
    Json Entry = Json::object();
    Entry.set("count", static_cast<double>(H->count()));
    Entry.set("sum", H->sum());
    Entry.set("min", H->minValue());
    Entry.set("max", H->maxValue());
    Entry.set("mean", H->mean());
    Entry.set("p50", H->percentile(50));
    Entry.set("p95", H->percentile(95));
    Entry.set("p99", H->percentile(99));
    Entry.set("bounds", Json::numberArray(H->bounds()));
    Entry.set("buckets", Json::numberArray(H->bucketCounts()));
    HistObj.set(Name, std::move(Entry));
  }
  Out.set("histograms", std::move(HistObj));
  return Out;
}

MetricsBaseline MetricsRegistry::captureBaseline() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsBaseline Out;
  Out.TakenAt = std::chrono::steady_clock::now();
  for (const auto &[Name, C] : Counters)
    Out.Counters[Name] = C->value();
  for (const auto &[Name, H] : Histograms) {
    MetricsBaseline::HistogramState State;
    State.Buckets = H->bucketCounts();
    // Derive the count from the bucket vector rather than the Count
    // atomic: record() bumps them independently, and the bucket sum is
    // what interval percentiles are computed from.
    for (uint64_t B : State.Buckets)
      State.Count += B;
    State.Sum = H->sum();
    Out.Histograms[Name] = std::move(State);
  }
  return Out;
}

Json MetricsRegistry::deltaJson(MetricsBaseline &Since) const {
  MetricsBaseline Now = captureBaseline();
  double IntervalS =
      std::chrono::duration<double>(Now.TakenAt - Since.TakenAt).count();
  double RateDivisor = std::max(IntervalS, 1e-9);

  Json Out = Json::object();
  Out.set("schema", "opprox-metrics-delta-1");
  Out.set("interval_s", IntervalS);

  Json CounterObj = Json::object();
  Json RateObj = Json::object();
  for (const auto &[Name, Value] : Now.Counters) {
    auto It = Since.Counters.find(Name);
    uint64_t Baseline = It == Since.Counters.end() ? 0 : It->second;
    uint64_t Delta = Value >= Baseline ? Value - Baseline : 0;
    if (Delta == 0)
      continue;
    CounterObj.set(Name, static_cast<double>(Delta));
    RateObj.set(Name, static_cast<double>(Delta) / RateDivisor);
  }
  Out.set("counters", std::move(CounterObj));
  Out.set("rates_per_sec", std::move(RateObj));

  Json GaugeObj = Json::object();
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Name, G] : Gauges)
      GaugeObj.set(Name, G->value());
  }
  Out.set("gauges", std::move(GaugeObj));

  Json HistObj = Json::object();
  for (const auto &[Name, State] : Now.Histograms) {
    auto It = Since.Histograms.find(Name);
    const MetricsBaseline::HistogramState *Base =
        It == Since.Histograms.end() ? nullptr : &It->second;
    std::vector<uint64_t> DeltaBuckets = State.Buckets;
    uint64_t DeltaCount = State.Count;
    double DeltaSum = State.Sum;
    if (Base && Base->Buckets.size() == State.Buckets.size()) {
      for (size_t I = 0; I < DeltaBuckets.size(); ++I)
        DeltaBuckets[I] -= std::min(Base->Buckets[I], DeltaBuckets[I]);
      DeltaCount -= std::min(Base->Count, DeltaCount);
      DeltaSum -= Base->Sum;
    }
    if (DeltaCount == 0)
      continue;
    std::vector<double> Bounds;
    {
      std::lock_guard<std::mutex> Lock(Mutex);
      auto HistIt = Histograms.find(Name);
      if (HistIt == Histograms.end())
        continue;
      Bounds = HistIt->second->bounds();
    }
    Json Entry = Json::object();
    Entry.set("count", static_cast<double>(DeltaCount));
    Entry.set("sum", DeltaSum);
    Entry.set("mean", DeltaSum / static_cast<double>(DeltaCount));
    Entry.set("p50", Histogram::percentileFromCounts(Bounds, DeltaBuckets, 50));
    Entry.set("p95", Histogram::percentileFromCounts(Bounds, DeltaBuckets, 95));
    Entry.set("p99", Histogram::percentileFromCounts(Bounds, DeltaBuckets, 99));
    HistObj.set(Name, std::move(Entry));
  }
  Out.set("histograms", std::move(HistObj));

  Since = std::move(Now);
  return Out;
}

MetricsSummary MetricsRegistry::monotoneSummary() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  MetricsSummary Out;
  for (const auto &[Name, C] : Counters)
    Out.emplace_back(Name, static_cast<double>(C->value()));
  for (const auto &[Name, H] : Histograms) {
    Out.emplace_back(Name + ".count", static_cast<double>(H->count()));
    Out.emplace_back(Name + ".sum", H->sum());
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

MetricsSummary MetricsRegistry::diffSummary(const MetricsSummary &Before,
                                            const MetricsSummary &After) {
  MetricsSummary Out;
  auto B = Before.begin();
  for (const auto &[Name, Value] : After) {
    while (B != Before.end() && B->first < Name)
      ++B;
    double Baseline = (B != Before.end() && B->first == Name) ? B->second : 0.0;
    double Delta = Value - Baseline;
    if (Delta != 0.0)
      Out.emplace_back(Name, Delta);
  }
  return Out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C->Count.store(0, std::memory_order_relaxed);
  for (auto &[Name, G] : Gauges)
    G->Value.store(0.0, std::memory_order_relaxed);
  for (auto &[Name, H] : Histograms) {
    for (std::atomic<uint64_t> &B : H->Buckets)
      B.store(0, std::memory_order_relaxed);
    H->Count.store(0, std::memory_order_relaxed);
    H->Sum.store(0.0, std::memory_order_relaxed);
    H->Min.store(std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
    H->Max.store(-std::numeric_limits<double>::infinity(),
                 std::memory_order_relaxed);
  }
}

//===----------------------------------------------------------------------===//
// TraceRecorder
//===----------------------------------------------------------------------===//

TraceRecorder::TraceRecorder() : Epoch(std::chrono::steady_clock::now()) {}

TraceRecorder &TraceRecorder::global() {
  static TraceRecorder *Recorder = new TraceRecorder; // Leaked: see header.
  return *Recorder;
}

uint64_t TraceRecorder::nowMicros() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Epoch)
          .count());
}

void TraceRecorder::record(TraceEvent Event) {
  std::lock_guard<std::mutex> Lock(Mutex);
  ThreadBuffer &Buffer = Buffers[std::this_thread::get_id()];
  if (Buffer.Tid == 0)
    Buffer.Tid = NextTid++;
  Event.ThreadId = Buffer.Tid;
  Buffer.Events.push_back(std::move(Event));
}

void TraceRecorder::instant(std::string Name, std::string Category) {
  if (!enabled())
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.StartMicros = nowMicros();
  E.Phase = 'i';
  record(std::move(E));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> Out;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    for (const auto &[Id, Buffer] : Buffers)
      Out.insert(Out.end(), Buffer.Events.begin(), Buffer.Events.end());
  }
  // Longest-first at equal start keeps enclosing spans ahead of the
  // children they contain.
  std::sort(Out.begin(), Out.end(),
            [](const TraceEvent &A, const TraceEvent &B) {
              if (A.StartMicros != B.StartMicros)
                return A.StartMicros < B.StartMicros;
              if (A.ThreadId != B.ThreadId)
                return A.ThreadId < B.ThreadId;
              if (A.DurationMicros != B.DurationMicros)
                return A.DurationMicros > B.DurationMicros;
              return A.Name < B.Name;
            });
  return Out;
}

size_t TraceRecorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  size_t N = 0;
  for (const auto &[Id, Buffer] : Buffers)
    N += Buffer.Events.size();
  return N;
}

Json TraceRecorder::toChromeJson() const {
  Json Events = Json::array();
  for (const TraceEvent &E : events()) {
    Json Entry = Json::object();
    Entry.set("name", E.Name);
    Entry.set("cat", E.Category);
    Entry.set("ph", std::string(1, E.Phase));
    Entry.set("ts", static_cast<double>(E.StartMicros));
    if (E.Phase == 'X')
      Entry.set("dur", static_cast<double>(E.DurationMicros));
    else if (E.Phase == 'i')
      Entry.set("s", "t"); // Instant scope: thread.
    Entry.set("pid", 1);
    Entry.set("tid", static_cast<double>(E.ThreadId));
    if (!E.Args.empty()) {
      Json Args = Json::object();
      for (const auto &[Key, Value] : E.Args)
        Args.set(Key, Value);
      Entry.set("args", std::move(Args));
    }
    Events.push(std::move(Entry));
  }
  Json Out = Json::object();
  Out.set("traceEvents", std::move(Events));
  Out.set("displayTimeUnit", "ms");
  return Out;
}

std::string TraceRecorder::chromeTraceText() const {
  return toChromeJson().dump() + "\n";
}

std::optional<Error> TraceRecorder::writeChromeTrace(
    const std::string &Path) const {
  return writeFile(Path, chromeTraceText());
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Id, Buffer] : Buffers)
    Buffer.Events.clear();
}

//===----------------------------------------------------------------------===//
// TraceSpan
//===----------------------------------------------------------------------===//

TraceSpan::TraceSpan(std::string Name, std::string Category,
                     TraceRecorder *Recorder)
    : Name(std::move(Name)), Category(std::move(Category)),
      Start(std::chrono::steady_clock::now()) {
  TraceRecorder &R = Recorder ? *Recorder : TraceRecorder::global();
  if (R.enabled()) {
    Rec = &R;
    StartMicros = R.nowMicros();
  }
}

TraceSpan::~TraceSpan() {
  if (!Rec)
    return;
  TraceEvent E;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.StartMicros = StartMicros;
  uint64_t End = Rec->nowMicros();
  E.DurationMicros = End > StartMicros ? End - StartMicros : 0;
  E.Phase = 'X';
  E.Args = std::move(Args);
  Rec->record(std::move(E));
}

void TraceSpan::arg(const std::string &Key, double Value) {
  if (Rec)
    Args.emplace_back(Key, Value);
}

double TraceSpan::seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

//===----------------------------------------------------------------------===//
// CLI / environment glue
//===----------------------------------------------------------------------===//

void opprox::addTelemetryFlags(FlagParser &Flags, TelemetryOptions &Opts) {
  Flags.addFlag("trace-out", &Opts.TracePath,
                "write a Chrome trace-event JSON here at exit "
                "(default: $OPPROX_TRACE)");
  Flags.addFlag("metrics-out", &Opts.MetricsPath,
                "write a JSON metrics snapshot here at exit "
                "(default: $OPPROX_METRICS)");
  Flags.addFlag("log-level", &Opts.LogLevelText,
                "stderr verbosity: quiet, info, or debug "
                "(default: $OPPROX_LOG_LEVEL, else info)");
}

namespace {
/// Options captured for the atexit exporter. Plain statics: initTelemetry
/// runs on the main thread before any worker exists.
TelemetryOptions AtExitOptions;
bool AtExitRegistered = false;
} // namespace

static void exportAtExit() { (void)exportTelemetry(AtExitOptions); }

bool opprox::initTelemetry(TelemetryOptions &Opts) {
  if (Opts.TracePath.empty())
    if (const char *Env = std::getenv("OPPROX_TRACE"))
      Opts.TracePath = Env;
  if (Opts.MetricsPath.empty())
    if (const char *Env = std::getenv("OPPROX_METRICS"))
      Opts.MetricsPath = Env;

  if (Opts.LogLevelText.empty()) {
    initLogLevelFromEnv();
  } else {
    LogLevel Level;
    if (!parseLogLevel(Opts.LogLevelText, Level)) {
      std::fprintf(stderr,
                   "error: bad --log-level '%s' (expected quiet, info, or "
                   "debug)\n",
                   Opts.LogLevelText.c_str());
      return false;
    }
    setLogLevel(Level);
  }

  if (!Opts.TracePath.empty())
    TraceRecorder::global().enable();

  AtExitOptions = Opts;
  if (!AtExitRegistered &&
      (!Opts.TracePath.empty() || !Opts.MetricsPath.empty())) {
    AtExitRegistered = true;
    std::atexit(exportAtExit);
  }
  return true;
}

bool opprox::exportTelemetry(const TelemetryOptions &Opts) {
  bool Ok = true;
  if (!Opts.TracePath.empty()) {
    if (std::optional<Error> E =
            TraceRecorder::global().writeChromeTrace(Opts.TracePath)) {
      std::fprintf(stderr, "warning: could not write trace %s: %s\n",
                   Opts.TracePath.c_str(), E->message().c_str());
      Ok = false;
    } else {
      logDebug("wrote %zu trace events to %s",
               TraceRecorder::global().eventCount(), Opts.TracePath.c_str());
    }
  }
  if (!Opts.MetricsPath.empty()) {
    std::string Snapshot =
        MetricsRegistry::global().snapshotJson().dump(2) + "\n";
    if (std::optional<Error> E = writeFile(Opts.MetricsPath, Snapshot)) {
      std::fprintf(stderr, "warning: could not write metrics %s: %s\n",
                   Opts.MetricsPath.c_str(), E->message().c_str());
      Ok = false;
    } else {
      logDebug("wrote metrics snapshot to %s", Opts.MetricsPath.c_str());
    }
  }
  return Ok;
}
