//===- support/Statistics.cpp ---------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"
#include <algorithm>
#include <cassert>
#include <cmath>

using namespace opprox;

void RunningStats::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStats::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::min() const {
  assert(N > 0 && "min of empty accumulator");
  return Min;
}

double RunningStats::max() const {
  assert(N > 0 && "max of empty accumulator");
  return Max;
}

void RunningStats::merge(const RunningStats &Other) {
  if (Other.N == 0)
    return;
  if (N == 0) {
    *this = Other;
    return;
  }
  size_t Total = N + Other.N;
  double Delta = Other.Mean - Mean;
  double NewMean =
      Mean + Delta * static_cast<double>(Other.N) / static_cast<double>(Total);
  M2 += Other.M2 + Delta * Delta * static_cast<double>(N) *
                       static_cast<double>(Other.N) /
                       static_cast<double>(Total);
  Mean = NewMean;
  N = Total;
  Min = std::min(Min, Other.Min);
  Max = std::max(Max, Other.Max);
}

double opprox::mean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

double opprox::stddev(const std::vector<double> &Values) {
  RunningStats S;
  for (double V : Values)
    S.add(V);
  return S.stddev();
}

double opprox::quantile(std::vector<double> Values, double Q) {
  assert(!Values.empty() && "quantile of empty vector");
  assert(Q >= 0.0 && Q <= 1.0 && "quantile outside [0,1]");
  std::sort(Values.begin(), Values.end());
  if (Values.size() == 1)
    return Values.front();
  double Pos = Q * static_cast<double>(Values.size() - 1);
  size_t Lo = static_cast<size_t>(Pos);
  size_t Hi = std::min(Lo + 1, Values.size() - 1);
  double Frac = Pos - static_cast<double>(Lo);
  return Values[Lo] * (1.0 - Frac) + Values[Hi] * Frac;
}

double opprox::median(std::vector<double> Values) {
  return quantile(std::move(Values), 0.5);
}

double opprox::pearson(const std::vector<double> &X,
                       const std::vector<double> &Y) {
  assert(X.size() == Y.size() && "mismatched series");
  size_t N = X.size();
  if (N < 2)
    return 0.0;
  double MeanX = mean(X), MeanY = mean(Y);
  double Cov = 0.0, VarX = 0.0, VarY = 0.0;
  for (size_t I = 0; I < N; ++I) {
    double DX = X[I] - MeanX, DY = Y[I] - MeanY;
    Cov += DX * DY;
    VarX += DX * DX;
    VarY += DY * DY;
  }
  if (VarX <= 0.0 || VarY <= 0.0)
    return 0.0;
  return Cov / std::sqrt(VarX * VarY);
}

double opprox::r2Score(const std::vector<double> &Actual,
                       const std::vector<double> &Predicted) {
  assert(Actual.size() == Predicted.size() && "mismatched series");
  assert(!Actual.empty() && "r2 of empty series");
  double MeanA = mean(Actual);
  double SSRes = 0.0, SSTot = 0.0;
  for (size_t I = 0; I < Actual.size(); ++I) {
    double R = Actual[I] - Predicted[I];
    double D = Actual[I] - MeanA;
    SSRes += R * R;
    SSTot += D * D;
  }
  if (SSTot <= 0.0)
    return SSRes <= 1e-12 ? 1.0 : 0.0;
  return 1.0 - SSRes / SSTot;
}
