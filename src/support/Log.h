//===- support/Log.h - Leveled stderr logging ------------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal leveled logger for the CLIs, benches, and examples. Three
/// levels -- quiet, info, debug -- selected with --log-level or the
/// OPPROX_LOG_LEVEL environment variable. Messages go to stderr so they
/// never contaminate machine-readable stdout (tables, JSON results).
///
/// The level is a process-wide atomic; logInfo()/logDebug() format into a
/// local buffer and emit with one fputs, so concurrent log lines from
/// pool workers interleave per line, never mid-line.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_LOG_H
#define OPPROX_SUPPORT_LOG_H

#include <string>

namespace opprox {

enum class LogLevel {
  Quiet = 0, ///< Errors only (callers print those themselves).
  Info = 1,  ///< Progress milestones; the default.
  Debug = 2, ///< Per-stage detail (fit times, cache behaviour).
};

/// Current process-wide level. Defaults to Info until set.
LogLevel currentLogLevel();
void setLogLevel(LogLevel Level);

/// Maps "quiet"/"info"/"debug" (case-sensitive, as documented in the
/// flag help) to a level. Returns false on anything else.
bool parseLogLevel(const std::string &Text, LogLevel &Out);

/// Canonical name of \p Level ("quiet", "info", "debug").
const char *logLevelName(LogLevel Level);

/// Applies OPPROX_LOG_LEVEL when set and well-formed; a malformed value
/// is ignored (the flag parser is where typos should fail loudly).
void initLogLevelFromEnv();

/// printf-style "opprox: ..." line at Info level.
void logInfo(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// printf-style "opprox[debug]: ..." line at Debug level.
void logDebug(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace opprox

#endif // OPPROX_SUPPORT_LOG_H
