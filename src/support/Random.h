//===- support/Random.h - Deterministic pseudo-random numbers --*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seedable PRNG used everywhere randomness is needed:
/// training-sample selection, synthetic workload generation, k-fold
/// shuffling. Xoshiro256** seeded through SplitMix64, so two Rng objects
/// with the same seed produce identical streams on every platform --
/// std::mt19937 distributions are not portable across standard libraries.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_RANDOM_H
#define OPPROX_SUPPORT_RANDOM_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace opprox {

/// Deterministic random number generator (xoshiro256**).
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [Lo, Hi).
  double uniform(double Lo, double Hi);

  /// Uniform integer in [0, Bound). \p Bound must be positive. Uses
  /// rejection sampling, so the result is unbiased.
  uint64_t below(uint64_t Bound);

  /// Uniform integer in the inclusive range [Lo, Hi].
  int64_t range(int64_t Lo, int64_t Hi);

  /// Standard normal deviate (Box-Muller; caches the spare value).
  double gaussian();

  /// Normal deviate with the given mean and standard deviation.
  double gaussian(double Mean, double Stddev);

  /// True with probability \p P.
  bool chance(double P) { return uniform() < P; }

  /// Fisher-Yates shuffle of \p Values.
  template <typename T> void shuffle(std::vector<T> &Values) {
    for (size_t I = Values.size(); I > 1; --I) {
      size_t J = static_cast<size_t>(below(I));
      std::swap(Values[I - 1], Values[J]);
    }
  }

  /// A derived generator whose stream is independent of this one. Useful
  /// for handing each subsystem its own reproducible stream.
  Rng split();

private:
  uint64_t State[4];
  double SpareGaussian = 0.0;
  bool HasSpareGaussian = false;
};

/// Derives an independent seed from \p Base and up to two stream
/// identifiers by SplitMix64-style mixing. This is how parallel code
/// hands every task its own reproducible RNG stream without any task
/// observing another's consumption: seed(task) depends only on
/// (Base, Stream, Substream), never on execution order or worker count.
/// Established derivations (docs/ARCHITECTURE.md, "Determinism
/// contract"):
///  - Profiler::collect: deriveSeed(ProfileOptions::Seed, InputIndex)
///    seeds input InputIndex's sampling plan;
///  - ModelBuilder::build: deriveSeed(ModelBuildOptions::Seed, ClassId,
///    Phase) seeds the (control-flow class, phase) model-fit task.
uint64_t deriveSeed(uint64_t Base, uint64_t Stream, uint64_t Substream = 0);

} // namespace opprox

#endif // OPPROX_SUPPORT_RANDOM_H
