//===- support/Socket.cpp -------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Socket.h"
#include "support/StringUtils.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace opprox;

void Socket::close() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
}

namespace {

Error errnoError(const char *What) {
  return Error(format("%s: %s", What, std::strerror(errno)));
}

/// Resolves the tiny set of host spellings the serving tier needs:
/// dotted-quad IPv4 literals plus "localhost". (No getaddrinfo: the
/// load generator and tests talk to numeric addresses, and DNS would
/// pull an unbounded dependency into the hot path.)
bool resolveIpv4(const std::string &Host, in_addr &Out) {
  std::string Addr = (Host == "localhost" || Host.empty()) ? "127.0.0.1" : Host;
  return ::inet_pton(AF_INET, Addr.c_str(), &Out) == 1;
}

} // namespace

Expected<Socket> opprox::listenTcp(const std::string &BindAddress,
                                   uint16_t Port, int Backlog) {
  in_addr Addr;
  if (!resolveIpv4(BindAddress, Addr))
    return Error(format("cannot parse bind address '%s' (numeric IPv4 or "
                        "'localhost')",
                        BindAddress.c_str()));

  Socket Sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!Sock.valid())
    return errnoError("socket");

  int One = 1;
  if (::setsockopt(Sock.fd(), SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One)) != 0)
    return errnoError("setsockopt(SO_REUSEADDR)");

  sockaddr_in Sin{};
  Sin.sin_family = AF_INET;
  Sin.sin_port = htons(Port);
  Sin.sin_addr = Addr;
  if (::bind(Sock.fd(), reinterpret_cast<sockaddr *>(&Sin), sizeof(Sin)) != 0)
    return Error(format("bind %s:%u: %s", BindAddress.c_str(),
                        static_cast<unsigned>(Port), std::strerror(errno)));
  if (::listen(Sock.fd(), Backlog) != 0)
    return errnoError("listen");
  return Sock;
}

Expected<uint16_t> opprox::boundPort(const Socket &Sock) {
  sockaddr_in Sin{};
  socklen_t Len = sizeof(Sin);
  if (::getsockname(Sock.fd(), reinterpret_cast<sockaddr *>(&Sin), &Len) != 0)
    return errnoError("getsockname");
  return static_cast<uint16_t>(ntohs(Sin.sin_port));
}

RecvResult opprox::acceptConnection(const Socket &Listener, Socket &Out) {
  RecvResult R;
  int Fd;
  do {
    Fd = ::accept(Listener.fd(), nullptr, nullptr);
  } while (Fd < 0 && errno == EINTR);
  if (Fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      R.Status = IoStatus::Timeout;
    } else {
      R.Status = IoStatus::Failed;
      R.Message = format("accept: %s", std::strerror(errno));
    }
    return R;
  }
  Out = Socket(Fd);
  R.Status = IoStatus::Ok;
  return R;
}

Expected<Socket> opprox::connectTcp(const std::string &Host, uint16_t Port) {
  in_addr Addr;
  if (!resolveIpv4(Host, Addr))
    return Error(format("cannot parse host '%s' (numeric IPv4 or "
                        "'localhost')",
                        Host.c_str()));

  Socket Sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!Sock.valid())
    return errnoError("socket");

  // Request/response lines are small; batching them behind Nagle only
  // adds latency.
  int One = 1;
  (void)::setsockopt(Sock.fd(), IPPROTO_TCP, TCP_NODELAY, &One, sizeof(One));

  sockaddr_in Sin{};
  Sin.sin_family = AF_INET;
  Sin.sin_port = htons(Port);
  Sin.sin_addr = Addr;
  int Rc;
  do {
    Rc = ::connect(Sock.fd(), reinterpret_cast<sockaddr *>(&Sin), sizeof(Sin));
  } while (Rc != 0 && errno == EINTR);
  if (Rc != 0)
    return Error(format("connect %s:%u: %s", Host.c_str(),
                        static_cast<unsigned>(Port), std::strerror(errno)));
  return Sock;
}

std::optional<Error> opprox::setRecvTimeoutMs(const Socket &Sock, long Millis) {
  timeval Tv{};
  Tv.tv_sec = Millis / 1000;
  Tv.tv_usec = (Millis % 1000) * 1000;
  if (::setsockopt(Sock.fd(), SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv)) != 0)
    return errnoError("setsockopt(SO_RCVTIMEO)");
  return std::nullopt;
}

std::optional<Error> opprox::sendAll(const Socket &Sock,
                                     const std::string &Data,
                                     long WriteTimeoutMs) {
  size_t Sent = 0;
  while (Sent < Data.size()) {
    ssize_t N = ::send(Sock.fd(), Data.data() + Sent, Data.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking socket with a full kernel buffer. A frame must
        // never be truncated mid-line (the wire protocol has no resync
        // point), so wait -- bounded -- for writability and resume.
        pollfd Pfd{};
        Pfd.fd = Sock.fd();
        Pfd.events = POLLOUT;
        int Rc;
        do {
          Rc = ::poll(&Pfd, 1, static_cast<int>(WriteTimeoutMs));
        } while (Rc < 0 && errno == EINTR);
        if (Rc > 0)
          continue;
        if (Rc == 0)
          return Error(format("send: peer accepted no data for %ld ms",
                              WriteTimeoutMs));
        return errnoError("poll(POLLOUT)");
      }
      return errnoError("send");
    }
    Sent += static_cast<size_t>(N);
  }
  return std::nullopt;
}

RecvResult opprox::recvSome(const Socket &Sock, std::string &Buffer,
                            size_t Capacity) {
  RecvResult R;
  std::vector<char> Chunk(Capacity);
  ssize_t N;
  do {
    N = ::recv(Sock.fd(), Chunk.data(), Chunk.size(), 0);
  } while (N < 0 && errno == EINTR);
  if (N < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      R.Status = IoStatus::Timeout;
    } else {
      R.Status = IoStatus::Failed;
      R.Message = format("recv: %s", std::strerror(errno));
    }
    return R;
  }
  if (N == 0) {
    R.Status = IoStatus::Eof;
    return R;
  }
  Buffer.append(Chunk.data(), static_cast<size_t>(N));
  R.Status = IoStatus::Ok;
  R.Bytes = static_cast<size_t>(N);
  return R;
}

//===----------------------------------------------------------------------===//
// LineFramer
//===----------------------------------------------------------------------===//

bool LineFramer::feed(const char *Data, size_t Len) {
  if (Overflowed)
    return false;
  // Compact once the consumed prefix dominates, so a long-lived
  // connection's buffer does not grow with total traffic.
  if (Consumed > 0 && Consumed >= Buffer.size() / 2) {
    Buffer.erase(0, Consumed);
    Consumed = 0;
  }
  // The cap applies per frame, terminated or not: an oversized line must
  // trip the flag before it could ever be handed out by next().
  for (size_t I = 0; I < Len; ++I) {
    if (Data[I] == '\n') {
      CurFrameBytes = 0;
    } else if (++CurFrameBytes > MaxFrameBytes) {
      Overflowed = true;
      return false;
    }
  }
  Buffer.append(Data, Len);
  return true;
}

bool LineFramer::next(std::string &Line) {
  size_t Nl = Buffer.find('\n', Consumed);
  if (Nl == std::string::npos)
    return false;
  size_t End = Nl;
  if (End > Consumed && Buffer[End - 1] == '\r')
    --End;
  Line.assign(Buffer, Consumed, End - Consumed);
  Consumed = Nl + 1;
  return true;
}
