//===- support/Table.cpp --------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Table.h"
#include "support/StringUtils.h"
#include <cassert>

using namespace opprox;

Table::Table(std::vector<std::string> Header) : Header(std::move(Header)) {
  assert(!this->Header.empty() && "table needs at least one column");
}

void Table::beginRow() {
  assert((Rows.empty() || Rows.back().size() == Header.size()) &&
         "previous row not fully populated");
  Rows.emplace_back();
}

void Table::addCell(std::string Text) {
  assert(!Rows.empty() && "addCell before beginRow");
  assert(Rows.back().size() < Header.size() && "row already full");
  Rows.back().push_back(std::move(Text));
}

void Table::addCell(double Value, int Precision) {
  addCell(format("%.*f", Precision, Value));
}

void Table::addCell(long Value) { addCell(format("%ld", Value)); }

void Table::addRow(std::vector<std::string> Cells) {
  assert(Cells.size() == Header.size() && "row width mismatch");
  beginRow();
  for (std::string &Cell : Cells)
    addCell(std::move(Cell));
}

void Table::print(std::FILE *Out) const {
  std::vector<size_t> Widths(Header.size());
  for (size_t C = 0; C < Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C < Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto PrintRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C)
      std::fprintf(Out, "%s%-*s", C ? "  " : "",
                   static_cast<int>(Widths[C]), Cells[C].c_str());
    std::fprintf(Out, "\n");
  };

  PrintRow(Header);
  size_t Total = 0;
  for (size_t W : Widths)
    Total += W + 2;
  for (size_t I = 0; I + 2 < Total; ++I)
    std::fputc('-', Out);
  std::fputc('\n', Out);
  for (const auto &Row : Rows)
    PrintRow(Row);
}

static std::string csvEscape(const std::string &Cell) {
  if (Cell.find_first_of(",\"\n") == std::string::npos)
    return Cell;
  std::string Escaped = "\"";
  for (char Ch : Cell) {
    if (Ch == '"')
      Escaped += '"';
    Escaped += Ch;
  }
  Escaped += '"';
  return Escaped;
}

std::string Table::toCsv() const {
  std::string Out;
  auto AppendRow = [&](const std::vector<std::string> &Cells) {
    for (size_t C = 0; C < Cells.size(); ++C) {
      if (C)
        Out += ',';
      Out += csvEscape(Cells[C]);
    }
    Out += '\n';
  };
  AppendRow(Header);
  for (const auto &Row : Rows)
    AppendRow(Row);
  return Out;
}

bool Table::writeCsv(const std::string &Path) const {
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  std::string Csv = toCsv();
  size_t Written = std::fwrite(Csv.data(), 1, Csv.size(), F);
  std::fclose(F);
  return Written == Csv.size();
}
