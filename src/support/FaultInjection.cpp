//===- support/FaultInjection.cpp -----------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"
#include "support/Random.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"
#include <cerrno>
#include <cstdlib>
#include <limits>

using namespace opprox;

std::atomic<bool> opprox::detail::GlobalFaultsArmed{true};

const std::vector<std::string> &opprox::allFaultSites() {
  static const std::vector<std::string> Sites = {
      faults::JsonRead,     faults::JsonParse,      faults::ArtifactCorrupt,
      faults::ArtifactWrite, faults::RuntimeLoad,    faults::PredictNan,
      faults::PredictInf,   faults::ThreadPoolTask, faults::ControlObserve};
  return Sites;
}

static bool isKnownSite(const std::string &Name) {
  for (const std::string &Site : allFaultSites())
    if (Site == Name)
      return true;
  return false;
}

/// One armed site: Bernoulli(Prob) per visit from a private seeded
/// stream, capped at MaxInjections. Guarded by the registry mutex.
struct FaultRegistry::Site {
  explicit Site(double Prob, uint64_t Seed, uint64_t Max, Counter &Injections)
      : Prob(Prob), Stream(Seed), MaxInjections(Max), Injections(Injections) {}

  double Prob;
  Rng Stream;
  uint64_t MaxInjections; ///< UINT64_MAX = unlimited.
  uint64_t Injected = 0;
  Counter &Injections; ///< fault.injected.<site>, cached at configure.
};

FaultRegistry::FaultRegistry() = default;
FaultRegistry::~FaultRegistry() = default;

FaultRegistry &FaultRegistry::global() {
  static FaultRegistry *Registry = [] {
    auto *R = new FaultRegistry();
    R->IsGlobal = true;
    if (const char *Env = std::getenv("OPPROX_FAULTS")) {
      if (std::optional<Error> E = R->configure(Env))
        reportFatalError(format("OPPROX_FAULTS: %s",
                                E->message().c_str()));
    } else {
      detail::GlobalFaultsArmed.store(false, std::memory_order_relaxed);
    }
    return R;
  }();
  return *Registry;
}

static std::optional<Error> parseProb(const std::string &Text, double &Out) {
  if (!parseDouble(Text, Out) || !(Out >= 0.0) || !(Out <= 1.0))
    return Error(format("fault probability '%s' is not in [0, 1]",
                        Text.c_str()));
  return std::nullopt;
}

static std::optional<Error> parseU64(const std::string &Text,
                                     const char *What, uint64_t &Out) {
  if (Text.empty() ||
      Text.find_first_not_of("0123456789") != std::string::npos)
    return Error(format("fault %s '%s' is not a non-negative integer", What,
                        Text.c_str()));
  errno = 0;
  Out = std::strtoull(Text.c_str(), nullptr, 10);
  if (errno == ERANGE)
    return Error(format("fault %s '%s' overflows 64 bits", What,
                        Text.c_str()));
  return std::nullopt;
}

std::optional<Error> FaultRegistry::configure(const std::string &Spec) {
  // Parse into a staging map first so a malformed entry leaves the
  // registry untouched (and disarmed only if it already was).
  std::map<std::string, std::unique_ptr<Site>> Staged;
  for (const std::string &Entry : split(Spec, ',')) {
    std::string Text = trim(Entry);
    if (Text.empty())
      continue;
    std::vector<std::string> Fields = split(Text, ':');
    if (Fields.size() < 2 || Fields.size() > 4)
      return Error(format("fault entry '%s' is not site:prob[:seed[:max]]",
                          Text.c_str()));
    std::string Name = trim(Fields[0]);
    double Prob = 0.0;
    if (std::optional<Error> E = parseProb(trim(Fields[1]), Prob))
      return E;
    uint64_t Seed = 0;
    if (Fields.size() >= 3)
      if (std::optional<Error> E = parseU64(trim(Fields[2]), "seed", Seed))
        return E;
    uint64_t Max = std::numeric_limits<uint64_t>::max();
    if (Fields.size() >= 4)
      if (std::optional<Error> E = parseU64(trim(Fields[3]), "cap", Max))
        return E;

    std::vector<std::string> Targets;
    if (Name == "all")
      Targets = allFaultSites();
    else if (isKnownSite(Name))
      Targets = {Name};
    else
      return Error(format("unknown fault site '%s' (known: %s, or 'all')",
                          Name.c_str(), join(allFaultSites(), ", ").c_str()));
    for (const std::string &Target : Targets) {
      // Under 'all' every site still draws an independent stream, so one
      // site's visit count never perturbs another's fault sequence.
      uint64_t SiteSeed =
          Name == "all" ? deriveSeed(Seed, std::hash<std::string>{}(Target))
                        : Seed;
      Staged[Target] = std::make_unique<Site>(
          Prob, SiteSeed, Max,
          MetricsRegistry::global().counter("fault.injected." + Target));
    }
  }

  std::lock_guard<std::mutex> Lock(Mutex);
  Sites = std::move(Staged);
  InjectedTotal.store(0, std::memory_order_relaxed);
  bool AnyArmed = !Sites.empty();
  Armed.store(AnyArmed, std::memory_order_relaxed);
  if (IsGlobal)
    detail::GlobalFaultsArmed.store(AnyArmed, std::memory_order_relaxed);
  return std::nullopt;
}

void FaultRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Sites.clear();
  InjectedTotal.store(0, std::memory_order_relaxed);
  Armed.store(false, std::memory_order_relaxed);
  if (IsGlobal)
    detail::GlobalFaultsArmed.store(false, std::memory_order_relaxed);
}

bool FaultRegistry::shouldFail(const char *SiteName) {
  if (!armed())
    return false;
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(SiteName);
  if (It == Sites.end())
    return false;
  Site &S = *It->second;
  if (S.Injected >= S.MaxInjections)
    return false;
  // Draw even for Prob 0/1 so the stream position depends only on the
  // visit count, keeping replays identical when a probability is edited.
  if (!(S.Stream.uniform() < S.Prob))
    return false;
  ++S.Injected;
  InjectedTotal.fetch_add(1, std::memory_order_relaxed);
  S.Injections.add();
  MetricsRegistry::global().counter("fault.injected_total").add();
  return true;
}

uint64_t FaultRegistry::injectedTotal() const {
  return InjectedTotal.load(std::memory_order_relaxed);
}

uint64_t FaultRegistry::injectedAt(const std::string &SiteName) const {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Sites.find(SiteName);
  return It == Sites.end() ? 0 : It->second->Injected;
}
