//===- support/Log.cpp ----------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Log.h"
#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

using namespace opprox;

static std::atomic<int> CurrentLevel{static_cast<int>(LogLevel::Info)};

LogLevel opprox::currentLogLevel() {
  return static_cast<LogLevel>(CurrentLevel.load(std::memory_order_relaxed));
}

void opprox::setLogLevel(LogLevel Level) {
  CurrentLevel.store(static_cast<int>(Level), std::memory_order_relaxed);
}

bool opprox::parseLogLevel(const std::string &Text, LogLevel &Out) {
  if (Text == "quiet")
    Out = LogLevel::Quiet;
  else if (Text == "info")
    Out = LogLevel::Info;
  else if (Text == "debug")
    Out = LogLevel::Debug;
  else
    return false;
  return true;
}

const char *opprox::logLevelName(LogLevel Level) {
  switch (Level) {
  case LogLevel::Quiet:
    return "quiet";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "info";
}

void opprox::initLogLevelFromEnv() {
  if (const char *Env = std::getenv("OPPROX_LOG_LEVEL")) {
    LogLevel Level;
    if (parseLogLevel(Env, Level))
      setLogLevel(Level);
  }
}

/// Formats and emits one line with a single fputs so concurrent callers
/// interleave per line.
static void emitLine(const char *Prefix, const char *Fmt, va_list Args) {
  char Buffer[1024];
  int Used = std::snprintf(Buffer, sizeof(Buffer), "%s", Prefix);
  if (Used < 0)
    return;
  std::vsnprintf(Buffer + Used, sizeof(Buffer) - static_cast<size_t>(Used),
                 Fmt, Args);
  std::fputs(Buffer, stderr);
  std::fputc('\n', stderr);
}

void opprox::logInfo(const char *Fmt, ...) {
  if (currentLogLevel() < LogLevel::Info)
    return;
  va_list Args;
  va_start(Args, Fmt);
  emitLine("opprox: ", Fmt, Args);
  va_end(Args);
}

void opprox::logDebug(const char *Fmt, ...) {
  if (currentLogLevel() < LogLevel::Debug)
    return;
  va_list Args;
  va_start(Args, Fmt);
  emitLine("opprox[debug]: ", Fmt, Args);
  va_end(Args);
}
