//===- support/StringUtils.h - String helpers ------------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string helpers: split/join/trim and printf-style formatting into
/// std::string. Nothing clever -- just what log parsing and table printing
/// need.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_STRINGUTILS_H
#define OPPROX_SUPPORT_STRINGUTILS_H

#include <string>
#include <vector>

namespace opprox {

/// Splits \p Text on \p Sep. Adjacent separators yield empty fields;
/// splitting the empty string yields one empty field.
std::vector<std::string> split(const std::string &Text, char Sep);

/// Joins \p Parts with \p Sep between consecutive elements.
std::string join(const std::vector<std::string> &Parts,
                 const std::string &Sep);

/// Removes leading and trailing ASCII whitespace.
std::string trim(const std::string &Text);

/// printf-style formatting into a std::string.
std::string format(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// True when \p Text begins with \p Prefix.
bool startsWith(const std::string &Text, const std::string &Prefix);

/// Parses a double; returns false (leaving \p Out untouched) on any
/// trailing garbage or empty input.
bool parseDouble(const std::string &Text, double &Out);

/// Parses a decimal integer with the same strictness as parseDouble.
bool parseInt(const std::string &Text, long &Out);

} // namespace opprox

#endif // OPPROX_SUPPORT_STRINGUTILS_H
