//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Wall-clock timer. Used only where the paper reports real time
/// (Table 2: training and optimization overhead); everywhere else the
/// project measures deterministic work units.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_TIMER_H
#define OPPROX_SUPPORT_TIMER_H

#include <chrono>

namespace opprox {

/// Measures elapsed wall-clock time from construction or the last reset.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction/reset.
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds since construction/reset.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace opprox

#endif // OPPROX_SUPPORT_TIMER_H
