//===- support/Signals.cpp ------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Signals.h"
#include "support/Error.h"

#include <atomic>
#include <cerrno>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

using namespace opprox;

namespace {

/// Write end of the active waiter's pipe; -1 when no waiter exists.
/// Written by the constructor/destructor thread and read by the handler,
/// which may run on any thread, so it must be a real atomic: volatile
/// sig_atomic_t is only blessed for same-thread handlers, and a plain
/// int would be a data race. Lock-free atomic loads are
/// async-signal-safe.
std::atomic<int> PipeWriteFd{-1};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler needs a lock-free read of the pipe fd");

extern "C" void signalPipeHandler(int Signo) {
  int SavedErrno = errno;
  int Fd = PipeWriteFd.load(std::memory_order_relaxed);
  if (Fd >= 0) {
    unsigned char Byte = static_cast<unsigned char>(Signo);
    // A full pipe (thousands of unconsumed signals) drops the byte;
    // the waiter is far behind anyway and will see the earlier ones.
    (void)!::write(Fd, &Byte, 1);
  }
  errno = SavedErrno;
}

/// Owns the write end for the lifetime of the process (the read end
/// belongs to the waiter). Recreated pipes just overwrite these.
int WriteFdStorage = -1;

} // namespace

SignalWaiter::SignalWaiter(std::initializer_list<int> Signals) {
  if (PipeWriteFd.load(std::memory_order_relaxed) >= 0)
    reportFatalError("only one SignalWaiter may exist at a time");

  int Fds[2];
  if (::pipe(Fds) != 0)
    reportFatalError("SignalWaiter: pipe() failed");
  // Nonblocking write end: a handler must never block the process.
  ::fcntl(Fds[1], F_SETFL, O_NONBLOCK);
  ReadEnd = Socket(Fds[0]);
  WriteFdStorage = Fds[1];
  PipeWriteFd.store(Fds[1], std::memory_order_relaxed);

  for (int Signo : Signals) {
    struct sigaction Action{};
    Action.sa_handler = signalPipeHandler;
    sigemptyset(&Action.sa_mask);
    Action.sa_flags = SA_RESTART;
    Saved S;
    S.Signo = Signo;
    if (::sigaction(Signo, &Action, &S.Action) != 0)
      reportFatalError("SignalWaiter: sigaction() failed");
    SavedActions.push_back(S);
  }
}

SignalWaiter::~SignalWaiter() {
  for (const Saved &S : SavedActions)
    ::sigaction(S.Signo, &S.Action, nullptr);
  PipeWriteFd.store(-1, std::memory_order_relaxed);
  if (WriteFdStorage >= 0) {
    ::close(WriteFdStorage);
    WriteFdStorage = -1;
  }
}

int SignalWaiter::wait(int TimeoutMs) {
  pollfd Pfd{};
  Pfd.fd = ReadEnd.fd();
  Pfd.events = POLLIN;
  int Rc;
  do {
    Rc = ::poll(&Pfd, 1, TimeoutMs);
  } while (Rc < 0 && errno == EINTR && TimeoutMs < 0);
  if (Rc <= 0)
    return 0; // Timeout (or EINTR with a finite timeout: report as one).
  unsigned char Byte = 0;
  ssize_t N;
  do {
    N = ::read(ReadEnd.fd(), &Byte, 1);
  } while (N < 0 && errno == EINTR);
  return N == 1 ? static_cast<int>(Byte) : 0;
}
