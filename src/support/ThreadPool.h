//===- support/ThreadPool.h - Reusable worker-thread pool ------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concurrency substrate shared by every parallel stage of the
/// training pipeline (profiling sweeps, k-fold cross-validation,
/// per-phase model fits). A fixed set of worker threads drains a FIFO
/// task queue; callers either submit() individual tasks and join on the
/// returned futures, or use parallelFor() to fan an index range across
/// the workers.
///
/// Design rules (see docs/ARCHITECTURE.md, "Threading model"):
///
///  - Determinism is the caller's job, not the pool's: tasks may finish
///    in any order, so callers write results into preallocated
///    per-index slots and reduce them in index order afterwards.
///  - A pool constructed with 0 workers degrades to inline execution on
///    the calling thread; code written against the pool never needs a
///    separate serial path.
///  - parallelFor() called from inside a task of the *same* pool runs
///    inline on that worker. Same-pool nesting therefore cannot
///    deadlock the queue, and inner loops (e.g. CV folds inside a
///    model-fit task) simply stay serial within their task. A worker of
///    a *different* pool fans out normally (the serve shards hand scan
///    chunks to the planner's scan pool this way); cross-pool handoff
///    must stay acyclic -- pool A's tasks may wait on pool B only if
///    B's tasks never wait on A.
///  - The first exception thrown by any task of a parallelFor() is
///    rethrown on the caller after all in-flight tasks drain; remaining
///    unstarted indices are abandoned. submit() delivers exceptions
///    through its future.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_THREADPOOL_H
#define OPPROX_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace opprox {

/// Fixed-size worker-thread pool with a FIFO queue, bulk parallelFor,
/// and future-returning task submission.
class ThreadPool {
public:
  /// Spawns \p NumWorkers worker threads. 0 spawns none: submit() and
  /// parallelFor() then execute inline on the calling thread, which
  /// makes a zero-worker pool the canonical "run serially" object.
  explicit ThreadPool(size_t NumWorkers);

  /// Joins all workers. Pending submitted tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t numWorkers() const { return Workers.size(); }

  /// Enqueues \p Task and returns a future that becomes ready when it
  /// completes (exceptions travel through the future). With 0 workers
  /// the task runs before submit() returns.
  std::future<void> submit(std::function<void()> Task);

  /// Runs Body(I) for every I in [0, N), distributing indices across
  /// the workers dynamically; the calling thread participates too, so a
  /// W-worker pool applies W+1 executors. Returns when every index has
  /// completed. Rethrows the first task exception. Called from inside a
  /// task of this same pool, runs the whole range inline; from a worker
  /// of a different pool it fans out normally (see file comment).
  void parallelFor(size_t N, const std::function<void(size_t)> &Body);

  /// True when the current thread is a pool worker executing a task
  /// (of any pool).
  static bool insideWorker();

  /// True when the current thread is one of *this* pool's workers;
  /// parallelFor uses this to inline same-pool nested calls.
  bool insideThisPool() const;

  /// Worker count requested by the environment: OPPROX_THREADS when set
  /// to a positive integer, otherwise std::thread::hardware_concurrency
  /// (at least 1). This counts *executors*, so parallel sections built
  /// on parallelFor() create pools with defaultWorkerCount()-1 workers
  /// plus the participating caller; resolveWorkers() does exactly that.
  static size_t defaultWorkerCount();

  /// Maps an options-style thread count (0 = auto-detect via
  /// defaultWorkerCount()) to the number of pool workers to spawn next
  /// to a participating caller: max(count, 1) - 1.
  static size_t resolveWorkers(size_t RequestedThreads);

private:
  void workerLoop();

  std::vector<std::thread> Workers;
  std::deque<std::packaged_task<void()>> Queue;
  std::mutex QueueMutex;
  std::condition_variable QueueCv;
  bool Stopping = false;
};

} // namespace opprox

#endif // OPPROX_SUPPORT_THREADPOOL_H
