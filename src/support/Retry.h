//===- support/Retry.h - Bounded retry with backoff ------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retry rung of the serving path's degradation ladder (see
/// docs/RELIABILITY.md): bounded attempts with exponential backoff
/// around an Expected-returning operation. Transient failures --
/// injected or real I/O hiccups -- are retried; a persistent failure
/// surfaces the final attempt's Error so the caller can fall to the
/// next rung (last-known-good artifact, then the exact schedule).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_RETRY_H
#define OPPROX_SUPPORT_RETRY_H

#include "support/Error.h"
#include <algorithm>
#include <chrono>
#include <cstddef>
#include <thread>

namespace opprox {

/// Bounded-retry shape shared by artifact load and save. The defaults
/// (one attempt, no backoff) are exactly the pre-hardening behavior.
struct RetryPolicy {
  /// Total attempts, including the first; clamped to at least 1.
  size_t MaxAttempts = 1;
  /// Sleep before the first retry; 0 disables sleeping (tests).
  double InitialBackoffMs = 0.0;
  /// Backoff growth per retry (exponential; 2.0 doubles each time).
  double Multiplier = 2.0;
};

/// Runs \p Attempt (returning Expected<T>) up to Policy.MaxAttempts
/// times. \p OnRetry runs before each retry with the 1-based
/// failed-attempt number and its Error -- callers hang logging and
/// retry-counter telemetry there. Returns the first success or the last
/// failure.
template <typename AttemptFn, typename OnRetryFn>
auto retryWithBackoff(const RetryPolicy &Policy, AttemptFn &&Attempt,
                      OnRetryFn &&OnRetry) -> decltype(Attempt()) {
  size_t Attempts = std::max<size_t>(Policy.MaxAttempts, 1);
  double BackoffMs = Policy.InitialBackoffMs;
  for (size_t A = 1;; ++A) {
    auto Result = Attempt();
    if (Result || A >= Attempts)
      return Result;
    OnRetry(A, Result.error());
    if (BackoffMs > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(BackoffMs));
    BackoffMs *= Policy.Multiplier;
  }
}

} // namespace opprox

#endif // OPPROX_SUPPORT_RETRY_H
