//===- support/Error.h - Lightweight error propagation ---------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exception-free error handling in the spirit of llvm::Expected. Library
/// code returns Expected<T> (a value or an error message); callers must
/// check before dereferencing. Errors are plain strings -- rich error
/// taxonomies are overkill for an autotuning library.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_ERROR_H
#define OPPROX_SUPPORT_ERROR_H

#include "support/Compiler.h"
#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace opprox {

/// A failure description. An empty message means "success" is not
/// representable: construct only for real failures.
class Error {
public:
  explicit Error(std::string Message) : Message(std::move(Message)) {
    assert(!this->Message.empty() && "errors must carry a message");
  }

  const std::string &message() const { return Message; }

private:
  std::string Message;
};

/// Either a value of type T or an Error. Modeled on llvm::Expected but
/// without the checked-flag machinery; asserts guard misuse in debug
/// builds.
template <typename T> class Expected {
public:
  /*implicit*/ Expected(T Value) : Value(std::move(Value)) {}
  /*implicit*/ Expected(Error E) : Err(std::move(E)) {}

  /// True when a value is present.
  explicit operator bool() const { return Value.has_value(); }

  T &get() {
    assert(Value && "getting value from errored Expected");
    return *Value;
  }
  const T &get() const {
    assert(Value && "getting value from errored Expected");
    return *Value;
  }

  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  /// The error; only valid when operator bool() is false.
  const Error &error() const {
    assert(Err && "no error present");
    return *Err;
  }

  /// Returns the contained value or aborts with the error message. For
  /// tool code where failure is fatal anyway.
  T &getOrDie() {
    if (OPPROX_UNLIKELY(!Value)) {
      std::fprintf(stderr, "fatal error: %s\n", Err->message().c_str());
      std::abort();
    }
    return *Value;
  }

private:
  std::optional<T> Value;
  std::optional<Error> Err;
};

/// Creates an Error with a printf-style formatted message.
Error makeError(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Prints "fatal error: <message>" to stderr and aborts. For invariant
/// violations that must terminate in every build type (asserts compile
/// out under NDEBUG); prefer returning Expected where the caller can
/// recover.
[[noreturn]] void reportFatalError(const Error &E);
[[noreturn]] void reportFatalError(const std::string &Message);

} // namespace opprox

#endif // OPPROX_SUPPORT_ERROR_H
