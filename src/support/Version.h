//===- support/Version.h - Library version string --------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The library version recorded in model artifacts as training
/// provenance, in git-describe style: a base version plus, when the
/// build system could run git, the commit the library was built from.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_VERSION_H
#define OPPROX_SUPPORT_VERSION_H

#include <string>

namespace opprox {

/// E.g. "opprox-0.3.0+8e63ee4" (or "opprox-0.3.0" outside a git
/// checkout). Stable within a build; recorded in artifacts so a model
/// file can always be traced back to the library that produced it.
std::string opproxVersion();

} // namespace opprox

#endif // OPPROX_SUPPORT_VERSION_H
