//===- support/Socket.h - TCP sockets + line framing -----------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The thin POSIX-socket layer under the serving tier (src/serve and
/// tools/opprox-serve): an RAII file-descriptor wrapper, TCP listen /
/// accept / connect helpers with Expected-based diagnostics, bounded
/// receive with timeouts, and an incremental newline-delimited framer
/// with a hard request-size cap.
///
/// Design rules:
///
///  - No hidden global state and no signals: sends use MSG_NOSIGNAL so a
///    peer that disappeared surfaces as an Error, never SIGPIPE.
///  - Timeouts and EOF are expected serving events, not failures, so
///    recvSome() reports them through IoStatus instead of Error; only
///    genuine socket errors become Errors.
///  - The framer never allocates beyond its cap: a client that streams
///    bytes without a newline is cut off at MaxFrameBytes (the server
///    counts it into serve.oversized and closes the connection).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_SOCKET_H
#define OPPROX_SUPPORT_SOCKET_H

#include "support/Error.h"
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace opprox {

/// Move-only owner of one socket (or pipe) file descriptor.
class Socket {
public:
  Socket() = default;
  explicit Socket(int Fd) : Fd(Fd) {}
  ~Socket() { close(); }

  Socket(Socket &&Other) noexcept : Fd(Other.Fd) { Other.Fd = -1; }
  Socket &operator=(Socket &&Other) noexcept {
    if (this != &Other) {
      close();
      Fd = Other.Fd;
      Other.Fd = -1;
    }
    return *this;
  }
  Socket(const Socket &) = delete;
  Socket &operator=(const Socket &) = delete;

  bool valid() const { return Fd >= 0; }
  int fd() const { return Fd; }

  /// Closes the descriptor now (idempotent).
  void close();

  /// Releases ownership without closing.
  int release() {
    int F = Fd;
    Fd = -1;
    return F;
  }

private:
  int Fd = -1;
};

/// Outcome class of one receive attempt. Timeouts and orderly EOF are
/// part of normal serving traffic, so they are states, not Errors.
enum class IoStatus {
  Ok,      ///< At least one byte arrived.
  Eof,     ///< Peer closed its end cleanly.
  Timeout, ///< Nothing arrived within the receive timeout.
  Failed,  ///< A real socket error (message in RecvResult::Message).
};

struct RecvResult {
  IoStatus Status = IoStatus::Failed;
  size_t Bytes = 0;       ///< Valid when Status == Ok.
  std::string Message;    ///< Valid when Status == Failed.
};

/// Creates a TCP listener bound to \p BindAddress:\p Port (port 0 picks
/// an ephemeral port; read it back with boundPort). SO_REUSEADDR is set
/// so restarting a server does not trip over TIME_WAIT.
Expected<Socket> listenTcp(const std::string &BindAddress, uint16_t Port,
                           int Backlog = 128);

/// The local port a listener (or connected socket) is bound to.
Expected<uint16_t> boundPort(const Socket &Sock);

/// Accepts one pending connection; call after poll/select says the
/// listener is readable. Timeout means no connection was pending.
RecvResult acceptConnection(const Socket &Listener, Socket &Out);

/// Connects to \p Host:\p Port (numeric IPv4 dotted quad or
/// "localhost").
Expected<Socket> connectTcp(const std::string &Host, uint16_t Port);

/// Sets SO_RCVTIMEO so recvSome() returns IoStatus::Timeout after
/// \p Millis without data; 0 blocks indefinitely.
std::optional<Error> setRecvTimeoutMs(const Socket &Sock, long Millis);

/// Writes all of \p Data, riding out partial writes, EINTR, and -- on a
/// non-blocking socket -- EAGAIN, by waiting up to \p WriteTimeoutMs for
/// writability between attempts. Either everything is sent or an Error
/// is returned; a partial frame is never silently left behind (callers
/// must close the connection on Error, since the peer may have received
/// a truncated line). Uses MSG_NOSIGNAL: a vanished peer is an Error,
/// never SIGPIPE.
std::optional<Error> sendAll(const Socket &Sock, const std::string &Data,
                             long WriteTimeoutMs = 5000);

/// Receives up to \p Capacity bytes into \p Buffer (appended).
RecvResult recvSome(const Socket &Sock, std::string &Buffer,
                    size_t Capacity = 4096);

/// Incremental newline-delimited framing with a size cap: feed() bytes
/// as they arrive, then drain complete lines with next(). A frame that
/// exceeds \p MaxFrameBytes before its newline arrives trips
/// overflowed() permanently -- the caller must close the connection
/// (the cap bounds per-connection memory against hostile clients).
class LineFramer {
public:
  explicit LineFramer(size_t MaxFrameBytes) : MaxFrameBytes(MaxFrameBytes) {}

  /// Appends received bytes. Returns false (and sets overflowed) when
  /// the unterminated tail would exceed the frame cap.
  bool feed(const char *Data, size_t Len);

  /// Pops the next complete line (newline stripped, including an
  /// optional preceding '\r'). Returns false when no full line is
  /// buffered.
  bool next(std::string &Line);

  /// True once a frame exceeded the cap; the framer stays unusable.
  bool overflowed() const { return Overflowed; }

  /// Bytes buffered but not yet returned (the unterminated tail plus
  /// any undrained complete lines).
  size_t buffered() const { return Buffer.size() - Consumed; }

private:
  size_t MaxFrameBytes;
  std::string Buffer;
  size_t Consumed = 0;      ///< Prefix of Buffer already handed out.
  size_t CurFrameBytes = 0; ///< Length of the frame being accumulated.
  bool Overflowed = false;
};

} // namespace opprox

#endif // OPPROX_SUPPORT_SOCKET_H
