//===- support/Statistics.h - Descriptive statistics -----------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streaming and batch descriptive statistics. Used for ROI computation
/// (Eq. 1 in the paper), confidence intervals (Sec. 3.6), and benchmark
/// reporting.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_STATISTICS_H
#define OPPROX_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace opprox {

/// Welford-style streaming accumulator for mean/variance/min/max.
class RunningStats {
public:
  void add(double X);

  size_t count() const { return N; }
  bool empty() const { return N == 0; }

  /// Mean of the observed values; 0 when empty.
  double mean() const { return N ? Mean : 0.0; }

  /// Unbiased sample variance; 0 with fewer than two observations.
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  double min() const;
  double max() const;

  /// Merges another accumulator into this one (parallel Welford).
  void merge(const RunningStats &Other);

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// Arithmetic mean of \p Values; 0 for an empty vector.
double mean(const std::vector<double> &Values);

/// Sample standard deviation of \p Values.
double stddev(const std::vector<double> &Values);

/// The \p Q quantile (0 <= Q <= 1) using linear interpolation between
/// order statistics. Copies and sorts internally.
double quantile(std::vector<double> Values, double Q);

/// Median shorthand for quantile(Values, 0.5).
double median(std::vector<double> Values);

/// Pearson correlation coefficient; 0 when either side is constant.
double pearson(const std::vector<double> &X, const std::vector<double> &Y);

/// Coefficient of determination of predictions vs. truth. Returns 1 for a
/// perfect fit; can be negative for fits worse than predicting the mean.
double r2Score(const std::vector<double> &Actual,
               const std::vector<double> &Predicted);

} // namespace opprox

#endif // OPPROX_SUPPORT_STATISTICS_H
