//===- support/Json.cpp ---------------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include "support/FaultInjection.h"
#include "support/StringUtils.h"
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace opprox;

/// Maximum object/array nesting the parser accepts. The parser recurses
/// per nesting level, so unbounded depth lets a hostile document (e.g.
/// a megabyte of '[') overflow the stack; artifacts nest a handful of
/// levels, so this bound is generous for every legitimate input while
/// keeping worst-case stack usage small and fixed.
static constexpr size_t kMaxParseDepth = 192;

//===----------------------------------------------------------------------===//
// Value access
//===----------------------------------------------------------------------===//

const Json *Json::find(const std::string &Key) const {
  assert(isObject() && "find on non-object");
  for (const auto &[Name, Value] : Members)
    if (Name == Key)
      return &Value;
  return nullptr;
}

void Json::set(const std::string &Key, Json Value) {
  assert(isObject() && "set on non-object");
  for (auto &[Name, Existing] : Members) {
    if (Name == Key) {
      Existing = std::move(Value);
      return;
    }
  }
  Members.emplace_back(Key, std::move(Value));
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

static void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

static void appendNumber(std::string &Out, double N) {
  assert(std::isfinite(N) && "JSON cannot represent NaN or infinity");
  if (N == static_cast<double>(static_cast<long long>(N)) &&
      std::fabs(N) < 1e15 && !(N == 0.0 && std::signbit(N))) {
    // Integral values print without an exponent or trailing digits; this
    // covers counts, indices, and levels.
    Out += format("%lld", static_cast<long long>(N));
    return;
  }
  // 17 significant digits round-trip any finite double exactly through a
  // correctly-rounded strtod.
  Out += format("%.17g", N);
}

void Json::dumpTo(std::string &Out, int Indent, int Depth) const {
  auto Newline = [&](int D) {
    if (Indent <= 0)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Indent * D), ' ');
  };
  switch (K) {
  case Kind::Null:
    Out += "null";
    break;
  case Kind::Bool:
    Out += BoolValue ? "true" : "false";
    break;
  case Kind::Number:
    appendNumber(Out, NumberValue);
    break;
  case Kind::String:
    appendEscaped(Out, Str);
    break;
  case Kind::Array: {
    if (Elements.empty()) {
      Out += "[]";
      break;
    }
    // Arrays of scalars stay on one line even when pretty-printing;
    // coefficient vectors would otherwise dominate the file.
    bool AllScalar = true;
    for (const Json &E : Elements)
      AllScalar = AllScalar && !E.isArray() && !E.isObject();
    Out += '[';
    for (size_t I = 0; I < Elements.size(); ++I) {
      if (I)
        Out += AllScalar && Indent > 0 ? ", " : ",";
      if (!AllScalar)
        Newline(Depth + 1);
      Elements[I].dumpTo(Out, Indent, Depth + 1);
    }
    if (!AllScalar)
      Newline(Depth);
    Out += ']';
    break;
  }
  case Kind::Object: {
    if (Members.empty()) {
      Out += "{}";
      break;
    }
    Out += '{';
    for (size_t I = 0; I < Members.size(); ++I) {
      if (I)
        Out += ',';
      Newline(Depth + 1);
      appendEscaped(Out, Members[I].first);
      Out += Indent > 0 ? ": " : ":";
      Members[I].second.dumpTo(Out, Indent, Depth + 1);
    }
    Newline(Depth);
    Out += '}';
    break;
  }
  }
}

std::string Json::dump(int Indent) const {
  std::string Out;
  dumpTo(Out, Indent, 0);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

/// Recursive-descent JSON parser tracking line/column for diagnostics.
class Parser {
public:
  explicit Parser(const std::string &Text) : Text(Text) {}

  Expected<Json> run() {
    Expected<Json> Value = parseValue();
    if (!Value)
      return Value;
    skipWhitespace();
    if (Pos != Text.size())
      return fail("trailing content after JSON document");
    return Value;
  }

private:
  Error fail(const std::string &Message) const {
    size_t Line = 1, Column = 1;
    for (size_t I = 0; I < Pos && I < Text.size(); ++I) {
      if (Text[I] == '\n') {
        ++Line;
        Column = 1;
      } else {
        ++Column;
      }
    }
    return Error(format("JSON parse error at line %zu, column %zu: %s",
                        Line, Column, Message.c_str()));
  }

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  Expected<Json> parseValue() {
    skipWhitespace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return parseString();
    if (C == 't' || C == 'f')
      return parseKeyword();
    if (C == 'n') {
      if (Text.compare(Pos, 4, "null") == 0) {
        Pos += 4;
        return Json();
      }
      return fail("invalid keyword");
    }
    return parseNumber();
  }

  Expected<Json> parseKeyword() {
    if (Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      return Json(true);
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      return Json(false);
    }
    return fail("invalid keyword");
  }

  Expected<Json> parseNumber() {
    size_t Start = Pos;
    if (consume('-'))
      ;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected a value");
    std::string Token = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double Value = std::strtod(Token.c_str(), &End);
    if (End != Token.c_str() + Token.size() || !std::isfinite(Value)) {
      Pos = Start;
      return fail(format("invalid number '%s'", Token.c_str()));
    }
    return Json(Value);
  }

  Expected<Json> parseString() {
    if (!consume('"'))
      return fail("expected '\"'");
    std::string Out;
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return Json(std::move(Out));
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("unescaped control character in string");
      if (static_cast<unsigned char>(C) >= 0x80) {
        // Structural UTF-8 validation: a valid leading byte followed by
        // the right number of continuation bytes. Catches truncated and
        // garbage byte sequences (binary data masquerading as JSON)
        // without decoding code points.
        unsigned char Lead = static_cast<unsigned char>(C);
        size_t Continuations;
        if (Lead >= 0xC2 && Lead <= 0xDF)
          Continuations = 1;
        else if (Lead >= 0xE0 && Lead <= 0xEF)
          Continuations = 2;
        else if (Lead >= 0xF0 && Lead <= 0xF4)
          Continuations = 3;
        else
          return fail("invalid UTF-8 byte in string");
        Out += C;
        for (size_t I = 0; I < Continuations; ++I) {
          if (Pos >= Text.size())
            return fail("truncated UTF-8 sequence in string");
          unsigned char Cont = static_cast<unsigned char>(Text[Pos]);
          if (Cont < 0x80 || Cont > 0xBF)
            return fail("invalid UTF-8 continuation byte in string");
          Out += Text[Pos++];
        }
        continue;
      }
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape sequence");
      char E = Text[Pos++];
      switch (E) {
      case '"':
        Out += '"';
        break;
      case '\\':
        Out += '\\';
        break;
      case '/':
        Out += '/';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'n':
        Out += '\n';
        break;
      case 'r':
        Out += '\r';
        break;
      case 't':
        Out += '\t';
        break;
      case 'u': {
        if (Pos + 4 > Text.size())
          return fail("truncated \\u escape");
        unsigned Code = 0;
        for (int I = 0; I < 4; ++I) {
          char H = Text[Pos++];
          Code <<= 4;
          if (H >= '0' && H <= '9')
            Code |= static_cast<unsigned>(H - '0');
          else if (H >= 'a' && H <= 'f')
            Code |= static_cast<unsigned>(H - 'a' + 10);
          else if (H >= 'A' && H <= 'F')
            Code |= static_cast<unsigned>(H - 'A' + 10);
          else
            return fail("invalid \\u escape");
        }
        // Encode as UTF-8. Surrogate pairs are not needed by artifacts;
        // lone surrogates encode as-is (WTF-8 style) rather than fail.
        if (Code < 0x80) {
          Out += static_cast<char>(Code);
        } else if (Code < 0x800) {
          Out += static_cast<char>(0xC0 | (Code >> 6));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        } else {
          Out += static_cast<char>(0xE0 | (Code >> 12));
          Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
          Out += static_cast<char>(0x80 | (Code & 0x3F));
        }
        break;
      }
      default:
        return fail(format("invalid escape '\\%c'", E));
      }
    }
  }

  Expected<Json> parseArray() {
    if (Depth >= kMaxParseDepth)
      return fail("nesting deeper than the supported maximum");
    ++Depth;
    Expected<Json> Out = parseArrayBody();
    --Depth;
    return Out;
  }

  Expected<Json> parseArrayBody() {
    consume('[');
    Json Out = Json::array();
    skipWhitespace();
    if (consume(']'))
      return Out;
    while (true) {
      Expected<Json> Element = parseValue();
      if (!Element)
        return Element;
      Out.push(std::move(*Element));
      skipWhitespace();
      if (consume(']'))
        return Out;
      if (!consume(','))
        return fail("expected ',' or ']' in array");
    }
  }

  Expected<Json> parseObject() {
    if (Depth >= kMaxParseDepth)
      return fail("nesting deeper than the supported maximum");
    ++Depth;
    Expected<Json> Out = parseObjectBody();
    --Depth;
    return Out;
  }

  Expected<Json> parseObjectBody() {
    consume('{');
    Json Out = Json::object();
    skipWhitespace();
    if (consume('}'))
      return Out;
    while (true) {
      skipWhitespace();
      Expected<Json> Key = parseString();
      if (!Key)
        return fail("expected string key in object");
      skipWhitespace();
      if (!consume(':'))
        return fail("expected ':' after object key");
      Expected<Json> Value = parseValue();
      if (!Value)
        return Value;
      // Duplicate keys are always a producer bug in our documents
      // (set() would silently keep only the last value), so reject them
      // rather than guess which value was meant.
      if (Out.find(Key->asString()))
        return fail(format("duplicate object key '%s'",
                           Key->asString().c_str()));
      Out.set(Key->asString(), std::move(*Value));
      skipWhitespace();
      if (consume('}'))
        return Out;
      if (!consume(','))
        return fail("expected ',' or '}' in object");
    }
  }

  const std::string &Text;
  size_t Pos = 0;
  size_t Depth = 0;
};

} // namespace

Expected<Json> Json::parse(const std::string &Text) {
  if (faultPoint(faults::JsonParse))
    return Error("fault injection: simulated JSON parse failure");
  return Parser(Text).run();
}

//===----------------------------------------------------------------------===//
// Typed field extraction
//===----------------------------------------------------------------------===//

Expected<const Json *> opprox::getMember(const Json &Obj,
                                         const std::string &Key) {
  if (!Obj.isObject())
    return Error(format("expected an object while reading field '%s'",
                        Key.c_str()));
  if (const Json *Member = Obj.find(Key))
    return Member;
  return Error(format("missing required field '%s'", Key.c_str()));
}

Expected<double> opprox::getNumber(const Json &Obj, const std::string &Key) {
  Expected<const Json *> Member = getMember(Obj, Key);
  if (!Member)
    return Member.error();
  if (!(*Member)->isNumber())
    return Error(format("field '%s' must be a number", Key.c_str()));
  return (*Member)->asNumber();
}

Expected<bool> opprox::getBool(const Json &Obj, const std::string &Key) {
  Expected<const Json *> Member = getMember(Obj, Key);
  if (!Member)
    return Member.error();
  if (!(*Member)->isBool())
    return Error(format("field '%s' must be a bool", Key.c_str()));
  return (*Member)->asBool();
}

Expected<std::string> opprox::getString(const Json &Obj,
                                        const std::string &Key) {
  Expected<const Json *> Member = getMember(Obj, Key);
  if (!Member)
    return Member.error();
  if (!(*Member)->isString())
    return Error(format("field '%s' must be a string", Key.c_str()));
  return (*Member)->asString();
}

Expected<size_t> opprox::getSize(const Json &Obj, const std::string &Key) {
  Expected<double> Value = getNumber(Obj, Key);
  if (!Value)
    return Value.error();
  if (*Value < 0 || *Value != std::floor(*Value))
    return Error(format("field '%s' must be a non-negative integer",
                        Key.c_str()));
  return static_cast<size_t>(*Value);
}

Expected<long> opprox::getInt(const Json &Obj, const std::string &Key) {
  Expected<double> Value = getNumber(Obj, Key);
  if (!Value)
    return Value.error();
  if (*Value != std::floor(*Value))
    return Error(format("field '%s' must be an integer", Key.c_str()));
  return static_cast<long>(*Value);
}

Expected<const Json *> opprox::getArray(const Json &Obj,
                                        const std::string &Key) {
  Expected<const Json *> Member = getMember(Obj, Key);
  if (!Member)
    return Member.error();
  if (!(*Member)->isArray())
    return Error(format("field '%s' must be an array", Key.c_str()));
  return *Member;
}

Expected<const Json *> opprox::getObject(const Json &Obj,
                                         const std::string &Key) {
  Expected<const Json *> Member = getMember(Obj, Key);
  if (!Member)
    return Member.error();
  if (!(*Member)->isObject())
    return Error(format("field '%s' must be an object", Key.c_str()));
  return *Member;
}

Expected<std::vector<double>> opprox::getNumberVector(const Json &Obj,
                                                      const std::string &Key) {
  Expected<const Json *> Arr = getArray(Obj, Key);
  if (!Arr)
    return Arr.error();
  std::vector<double> Out;
  Out.reserve((*Arr)->size());
  for (size_t I = 0; I < (*Arr)->size(); ++I) {
    const Json &E = (*Arr)->at(I);
    if (!E.isNumber())
      return Error(format("field '%s' element %zu must be a number",
                          Key.c_str(), I));
    Out.push_back(E.asNumber());
  }
  return Out;
}

Expected<std::vector<int>> opprox::getIntVector(const Json &Obj,
                                                const std::string &Key) {
  Expected<std::vector<double>> Values = getNumberVector(Obj, Key);
  if (!Values)
    return Values.error();
  std::vector<int> Out;
  Out.reserve(Values->size());
  for (size_t I = 0; I < Values->size(); ++I) {
    double V = (*Values)[I];
    if (V != std::floor(V))
      return Error(format("field '%s' element %zu must be an integer",
                          Key.c_str(), I));
    Out.push_back(static_cast<int>(V));
  }
  return Out;
}

Expected<std::vector<size_t>> opprox::getSizeVector(const Json &Obj,
                                                    const std::string &Key) {
  Expected<std::vector<double>> Values = getNumberVector(Obj, Key);
  if (!Values)
    return Values.error();
  std::vector<size_t> Out;
  Out.reserve(Values->size());
  for (size_t I = 0; I < Values->size(); ++I) {
    double V = (*Values)[I];
    if (V < 0 || V != std::floor(V))
      return Error(format("field '%s' element %zu must be a non-negative "
                          "integer",
                          Key.c_str(), I));
    Out.push_back(static_cast<size_t>(V));
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// File I/O
//===----------------------------------------------------------------------===//

Expected<std::string> opprox::readFile(const std::string &Path) {
  if (faultPoint(faults::JsonRead))
    return Error(format("fault injection: simulated I/O failure reading '%s'",
                        Path.c_str()));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Error(format("cannot open '%s' for reading: %s", Path.c_str(),
                        std::strerror(errno)));
  std::string Out;
  char Buffer[1 << 16];
  size_t N;
  while ((N = std::fread(Buffer, 1, sizeof(Buffer), F)) > 0)
    Out.append(Buffer, N);
  bool Failed = std::ferror(F) != 0;
  std::fclose(F);
  if (Failed)
    return Error(format("error while reading '%s'", Path.c_str()));
  return Out;
}

std::optional<Error> opprox::writeFile(const std::string &Path,
                                       const std::string &Contents) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return Error(format("cannot open '%s' for writing: %s", Path.c_str(),
                        std::strerror(errno)));
  size_t Written = std::fwrite(Contents.data(), 1, Contents.size(), F);
  bool CloseFailed = std::fclose(F) != 0;
  if (Written != Contents.size() || CloseFailed)
    return Error(format("error while writing '%s'", Path.c_str()));
  return std::nullopt;
}
