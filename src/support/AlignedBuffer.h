//===- support/AlignedBuffer.h - 64-byte-aligned scratch buffer -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A grow-only, cache-line-aligned array for the batch-kernel scratch
/// buffers (PolynomialRegression::Scratch, SelectedModel::BatchScratch).
/// Starting every column on a 64-byte boundary lets the SIMD kernels in
/// support/Simd.h use aligned vector loads for the bulk of each column,
/// and keeps concurrently-scanned scratch buffers from false-sharing
/// cache lines.
///
/// The contract mirrors Matrix::reshape: ensure() only reallocates when
/// the requested capacity exceeds what is already owned, so steady-state
/// batch evaluation is allocation-free; contents are unspecified after a
/// growing ensure(). Restricted to trivial element types -- these are
/// raw numeric scratch areas, never object storage.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_ALIGNEDBUFFER_H
#define OPPROX_SUPPORT_ALIGNEDBUFFER_H

#include <cassert>
#include <cstddef>
#include <cstdlib>
#include <type_traits>

namespace opprox {

template <typename T> class AlignedBuffer {
  static_assert(std::is_trivial_v<T>,
                "AlignedBuffer is raw scratch storage for trivial types");

public:
  /// Every allocation starts on a cache-line boundary.
  static constexpr size_t Alignment = 64;

  AlignedBuffer() = default;
  ~AlignedBuffer() { std::free(Data); }

  AlignedBuffer(const AlignedBuffer &) = delete;
  AlignedBuffer &operator=(const AlignedBuffer &) = delete;

  AlignedBuffer(AlignedBuffer &&Other) noexcept
      : Data(Other.Data), Capacity(Other.Capacity) {
    Other.Data = nullptr;
    Other.Capacity = 0;
  }
  AlignedBuffer &operator=(AlignedBuffer &&Other) noexcept {
    if (this != &Other) {
      std::free(Data);
      Data = Other.Data;
      Capacity = Other.Capacity;
      Other.Data = nullptr;
      Other.Capacity = 0;
    }
    return *this;
  }

  /// Guarantees capacity for \p N elements and returns the (aligned)
  /// storage. Growing discards previous contents -- callers treat this
  /// as per-call scratch, exactly like Matrix::reshape.
  T *ensure(size_t N) {
    if (N > Capacity) {
      std::free(Data);
      size_t Bytes = N * sizeof(T);
      // aligned_alloc requires the size to be a multiple of the
      // alignment; round up (the padding is never addressed).
      Bytes = (Bytes + Alignment - 1) / Alignment * Alignment;
      Data = static_cast<T *>(std::aligned_alloc(Alignment, Bytes));
      assert(Data && "aligned scratch allocation failed");
      Capacity = Bytes / sizeof(T);
    }
    return Data;
  }

  T *data() { return Data; }
  const T *data() const { return Data; }
  size_t capacity() const { return Capacity; }

  /// Column stride (in elements) that keeps every column of an N-row
  /// column-major block starting on an Alignment boundary.
  static size_t paddedStride(size_t N) {
    constexpr size_t PerLine = Alignment / sizeof(T);
    return (N + PerLine - 1) / PerLine * PerLine;
  }

private:
  T *Data = nullptr;
  size_t Capacity = 0;
};

} // namespace opprox

#endif // OPPROX_SUPPORT_ALIGNEDBUFFER_H
