//===- support/Compiler.h - Portability and diagnostics macros -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability macros shared across the project.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_COMPILER_H
#define OPPROX_SUPPORT_COMPILER_H

#include <cstdio>
#include <cstdlib>

/// Marks a point in code that must never be reached. Prints the message and
/// aborts; used instead of assert(false) so release builds still trap.
#define OPPROX_UNREACHABLE(Msg)                                                \
  do {                                                                         \
    std::fprintf(stderr, "UNREACHABLE executed at %s:%d: %s\n", __FILE__,      \
                 __LINE__, Msg);                                               \
    std::abort();                                                              \
  } while (false)

#if defined(__GNUC__) || defined(__clang__)
#define OPPROX_LIKELY(Expr) __builtin_expect(!!(Expr), 1)
#define OPPROX_UNLIKELY(Expr) __builtin_expect(!!(Expr), 0)
#else
#define OPPROX_LIKELY(Expr) (Expr)
#define OPPROX_UNLIKELY(Expr) (Expr)
#endif

#endif // OPPROX_SUPPORT_COMPILER_H
