//===- support/Json.h - Dependency-free JSON reader/writer -----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small JSON value type with a writer and an Expected<T>-based parser,
/// used by the model-artifact layer to persist trained models. Two
/// properties matter more than generality:
///
///  - **Exact double round-trip.** Numbers are emitted with %.17g, which
///    shortest-path strtod parses back to the identical bit pattern, so a
///    saved model predicts bit-identically to the in-memory one.
///  - **Deterministic output.** Objects preserve insertion order, so the
///    same value always serializes to the same bytes (stable diffs,
///    cacheable artifacts).
///
/// Parse failures are reported through Expected<Json> with a line/column
/// diagnostic -- no exceptions, matching the library-wide error contract.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_SUPPORT_JSON_H
#define OPPROX_SUPPORT_JSON_H

#include "support/Error.h"
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace opprox {

/// One JSON value: null, bool, number, string, array, or object.
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : K(Kind::Null) {}
  /*implicit*/ Json(bool B) : K(Kind::Bool), BoolValue(B) {}
  /*implicit*/ Json(double N) : K(Kind::Number), NumberValue(N) {}
  /*implicit*/ Json(int N) : Json(static_cast<double>(N)) {}
  /*implicit*/ Json(long N) : Json(static_cast<double>(N)) {}
  /*implicit*/ Json(size_t N) : Json(static_cast<double>(N)) {}
  /*implicit*/ Json(std::string S) : K(Kind::String), Str(std::move(S)) {}
  /*implicit*/ Json(const char *S) : K(Kind::String), Str(S) {}

  static Json object() {
    Json J;
    J.K = Kind::Object;
    return J;
  }
  static Json array() {
    Json J;
    J.K = Kind::Array;
    return J;
  }

  /// An array of numbers from any numeric range.
  template <typename T> static Json numberArray(const std::vector<T> &Values) {
    Json J = array();
    for (const T &V : Values)
      J.push(static_cast<double>(V));
    return J;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const {
    assert(isBool() && "not a bool");
    return BoolValue;
  }
  double asNumber() const {
    assert(isNumber() && "not a number");
    return NumberValue;
  }
  const std::string &asString() const {
    assert(isString() && "not a string");
    return Str;
  }

  // -- Array access ------------------------------------------------------

  size_t size() const { return isObject() ? Members.size() : Elements.size(); }

  const Json &at(size_t I) const {
    assert(isArray() && I < Elements.size() && "bad array access");
    return Elements[I];
  }

  /// Appends to an array.
  void push(Json Value) {
    assert(isArray() && "push on non-array");
    Elements.push_back(std::move(Value));
  }

  // -- Object access -----------------------------------------------------

  /// Member value, or null when absent. Linear scan: artifact objects are
  /// small and insertion-ordered.
  const Json *find(const std::string &Key) const;

  /// Sets (or replaces) an object member, preserving insertion order.
  void set(const std::string &Key, Json Value);

  const std::vector<std::pair<std::string, Json>> &members() const {
    assert(isObject() && "members of non-object");
    return Members;
  }

  // -- Serialization -----------------------------------------------------

  /// Renders the value. \p Indent > 0 pretty-prints with that many spaces
  /// per nesting level; 0 emits the compact single-line form.
  std::string dump(int Indent = 0) const;

  /// Parses one JSON document (trailing non-whitespace is an error).
  /// Errors carry a "line L, column C" location.
  static Expected<Json> parse(const std::string &Text);

private:
  void dumpTo(std::string &Out, int Indent, int Depth) const;

  Kind K;
  bool BoolValue = false;
  double NumberValue = 0.0;
  std::string Str;
  std::vector<Json> Elements;
  std::vector<std::pair<std::string, Json>> Members;
};

//===----------------------------------------------------------------------===//
// Typed field extraction
//===----------------------------------------------------------------------===//
//
// fromJson() implementations read fields through these helpers so every
// missing or mistyped field produces a uniform, descriptive Error instead
// of an assert or a crash.

/// The \p Key member of \p Obj, required to exist.
Expected<const Json *> getMember(const Json &Obj, const std::string &Key);

Expected<double> getNumber(const Json &Obj, const std::string &Key);
Expected<bool> getBool(const Json &Obj, const std::string &Key);
Expected<std::string> getString(const Json &Obj, const std::string &Key);

/// A non-negative integer-valued number field (sizes, counts, indices).
Expected<size_t> getSize(const Json &Obj, const std::string &Key);

/// An integer-valued number field that may be negative.
Expected<long> getInt(const Json &Obj, const std::string &Key);

/// The \p Key member, required to be an array / object.
Expected<const Json *> getArray(const Json &Obj, const std::string &Key);
Expected<const Json *> getObject(const Json &Obj, const std::string &Key);

/// Array-of-numbers fields.
Expected<std::vector<double>> getNumberVector(const Json &Obj,
                                              const std::string &Key);
Expected<std::vector<int>> getIntVector(const Json &Obj,
                                        const std::string &Key);
Expected<std::vector<size_t>> getSizeVector(const Json &Obj,
                                            const std::string &Key);

/// Reads a whole file; fails with a descriptive Error on I/O problems.
Expected<std::string> readFile(const std::string &Path);

/// Writes \p Contents to \p Path atomically enough for our purposes
/// (write + close, no temp-rename dance); nullopt on success.
std::optional<Error> writeFile(const std::string &Path,
                               const std::string &Contents);

} // namespace opprox

#endif // OPPROX_SUPPORT_JSON_H
