//===- approx/ApproximableBlock.h - AB descriptors -------------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Descriptors for approximable blocks (ABs): the compute-intensive
/// kernels a transformation can approximate, each exposing a discrete
/// approximation-level (AL) knob from 0 (exact) to a maximum (most
/// approximate) -- paper Secs. 1 and 3.1.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPROX_APPROXIMABLEBLOCK_H
#define OPPROX_APPROX_APPROXIMABLEBLOCK_H

#include <string>
#include <vector>

namespace opprox {

/// The four transformations studied in the paper (Sec. 3.2).
enum class ApproxTechniqueKind {
  LoopPerforation, ///< Skip a stride-controlled fraction of iterations.
  LoopTruncation,  ///< Drop trailing iterations.
  Memoization,     ///< Reuse a cached result for most iterations.
  ParameterTuning, ///< Reduce an accuracy-controlling input parameter.
};

/// Human-readable technique name ("loop perforation", ...).
const char *techniqueName(ApproxTechniqueKind Kind);

/// One approximable block of an application.
struct ApproximableBlock {
  std::string Name;
  ApproxTechniqueKind Technique;
  /// Levels run 0 (exact) .. MaxLevel (most approximate), inclusive.
  int MaxLevel = 5;

  int numLevels() const { return MaxLevel + 1; }
};

/// Product of numLevels over \p Blocks: the per-phase configuration count.
unsigned long long configurationCount(
    const std::vector<ApproximableBlock> &Blocks);

} // namespace opprox

#endif // OPPROX_APPROX_APPROXIMABLEBLOCK_H
