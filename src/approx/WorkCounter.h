//===- approx/WorkCounter.h - Deterministic work accounting ----*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper expresses speedup as the ratio of instructions executed in
/// the accurate vs. approximate run (Sec. 3.6). This counter is our
/// deterministic stand-in for the instruction count: application kernels
/// charge abstract work units as they execute, so "speedup" is exactly
/// reproducible and independent of machine noise.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPROX_WORKCOUNTER_H
#define OPPROX_APPROX_WORKCOUNTER_H

#include <cstdint>

namespace opprox {

/// Accumulates abstract work units during one application run.
///
/// Concurrency audit (parallel profiling): every WorkCounter is a local
/// of exactly one ApproxApp::run() invocation and is never shared across
/// threads, so its counter stays intentionally non-atomic -- making it
/// atomic would tax every kernel inner loop for a race that cannot
/// occur. Cross-run counters that *are* mutated from several worker
/// threads (Profiler::RunCount, GoldenCache hit/miss counters) are
/// std::atomic instead. Do not hoist a WorkCounter into shared state
/// without revisiting this.
class WorkCounter {
public:
  void add(uint64_t Units) { Total += Units; }
  uint64_t total() const { return Total; }

  /// Work since \p Mark; use with total() to attribute work to intervals.
  uint64_t since(uint64_t Mark) const { return Total - Mark; }

  /// Interval mark for online observation: returns the work accumulated
  /// since the previous takeInterval() (or construction/reset) and
  /// advances the mark, so successive calls partition total() exactly.
  /// This is how a host slices one run's work into the per-interval
  /// samples a phase detector consumes.
  uint64_t takeInterval() {
    uint64_t Delta = Total - Mark;
    Mark = Total;
    return Delta;
  }

  void reset() {
    Total = 0;
    Mark = 0;
  }

private:
  uint64_t Total = 0;
  uint64_t Mark = 0;
};

/// Speedup of an approximate run relative to the exact run, in the
/// paper's work-ratio sense. Returns 1 when either count is zero.
inline double speedupOf(uint64_t ExactWork, uint64_t ApproxWork) {
  if (ExactWork == 0 || ApproxWork == 0)
    return 1.0;
  return static_cast<double>(ExactWork) / static_cast<double>(ApproxWork);
}

} // namespace opprox

#endif // OPPROX_APPROX_WORKCOUNTER_H
