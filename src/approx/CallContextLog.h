//===- approx/CallContextLog.h - AB call-context capture -------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution log of approximable-block invocations, the runtime analogue
/// of the paper's instrumented log messages (Sec. 2, Sec. 3.3): per outer
/// iteration, the ordered sequence of ABs executed and the work each
/// performed. From it OPPROX extracts the outer-loop iteration count and
/// a control-flow signature used to classify input-dependent paths
/// (Sec. 3.4).
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPROX_CALLCONTEXTLOG_H
#define OPPROX_APPROX_CALLCONTEXTLOG_H

#include <cstdint>
#include <string>
#include <vector>

namespace opprox {

/// Ordered record of AB executions grouped by outer-loop iteration.
class CallContextLog {
public:
  /// Marks the start of a new outer-loop iteration.
  void beginIteration();

  /// Records that block \p BlockId ran, charging \p WorkUnits to it.
  void recordBlock(size_t BlockId, uint64_t WorkUnits);

  size_t numIterations() const { return IterationBlocks.size(); }

  /// Blocks executed (in order) during iteration \p Iter.
  const std::vector<size_t> &blocksInIteration(size_t Iter) const;

  /// Work charged during iteration \p Iter.
  uint64_t workInIteration(size_t Iter) const;

  /// Control-flow signature: the distinct per-iteration block sequences
  /// in first-appearance order, e.g. "0,1,2,3" or "0,2,1;0,1,2". Two runs
  /// with the same signature follow the same control flow.
  std::string signature() const;

  /// Total work across iterations [Begin, End) -- clamped to the log.
  uint64_t workInRange(size_t Begin, size_t End) const;

  void clear();

private:
  std::vector<std::vector<size_t>> IterationBlocks;
  std::vector<uint64_t> IterationWork;
};

} // namespace opprox

#endif // OPPROX_APPROX_CALLCONTEXTLOG_H
