//===- approx/PhaseSchedule.h - Per-phase approximation levels -*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The central artifact of phase-aware approximation: an assignment of an
/// approximation level to every (phase, block) pair, plus the mapping
/// from outer-loop iterations to phases. Phases split the *nominal*
/// (exact-run) iteration count into near-equal ranges; when the
/// approximate run iterates longer than nominal (paper Fig. 3), the
/// excess iterations belong to the final phase.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPROX_PHASESCHEDULE_H
#define OPPROX_APPROX_PHASESCHEDULE_H

#include "support/Error.h"
#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace opprox {

class Json;

/// Maps outer-loop iteration indices to phase indices. Follows the paper
/// (Sec. 3.5): I nominal iterations split into N phases of ~I/N, with the
/// remainder added to the final phase.
class PhaseMap {
public:
  PhaseMap(size_t NominalIterations, size_t NumPhases);

  size_t numPhases() const { return NumPhases; }
  size_t nominalIterations() const { return NominalIterations; }

  /// Phase of iteration \p Iteration (0-based). Iterations at or past the
  /// nominal count map to the last phase.
  size_t phaseOf(size_t Iteration) const;

  /// [begin, end) nominal-iteration range of \p Phase.
  std::pair<size_t, size_t> phaseRange(size_t Phase) const;

  /// Aggregates a per-iteration work trace (RunResult::WorkPerIteration)
  /// into per-phase totals: entry P sums the work of every iteration
  /// phaseOf() maps to P. Overrun iterations past the nominal count
  /// land in the final phase, matching phaseOf(). This is the
  /// observation side of the online control loop: it turns a run's raw
  /// trace into the per-phase work feedback the controller consumes.
  std::vector<uint64_t>
  splitWorkByPhase(const std::vector<uint64_t> &WorkPerIteration) const;

private:
  size_t NominalIterations;
  size_t NumPhases;
  size_t BaseLength; // NominalIterations / NumPhases.
};

/// An approximation level for every (phase, block) pair.
class PhaseSchedule {
public:
  /// All-exact schedule (level 0 everywhere).
  PhaseSchedule(size_t NumPhases, size_t NumBlocks);

  /// A schedule applying \p Levels identically in every phase -- the
  /// phase-agnostic configuration of prior work.
  static PhaseSchedule uniform(size_t NumPhases,
                               const std::vector<int> &Levels);

  /// A schedule approximating only \p Phase with \p Levels, all other
  /// phases exact -- the paper's per-phase probing runs.
  static PhaseSchedule singlePhase(size_t NumPhases, size_t Phase,
                                   const std::vector<int> &Levels);

  size_t numPhases() const { return NumPhases; }
  size_t numBlocks() const { return NumBlocks; }

  int level(size_t Phase, size_t Block) const {
    assert(Phase < NumPhases && Block < NumBlocks && "index out of range");
    return Levels[Phase * NumBlocks + Block];
  }
  void setLevel(size_t Phase, size_t Block, int Level);

  /// Levels of one phase as a vector (length numBlocks()).
  std::vector<int> phaseLevels(size_t Phase) const;

  /// Replaces all levels of one phase.
  void setPhaseLevels(size_t Phase, const std::vector<int> &PhaseLevels);

  /// Grafts the remaining phases of a tail re-solve onto this schedule:
  /// phases [FirstPhase, numPhases) take \p Tail's levels, earlier
  /// (already-executed) phases keep theirs. Dimensions must match; the
  /// online controller uses this to adopt a corrected plan without
  /// rewriting history.
  void overlayTail(const PhaseSchedule &Tail, size_t FirstPhase);

  /// True when every level is 0.
  bool isExact() const;

  /// True when every phase carries identical levels.
  bool isUniform() const;

  /// Compact rendering, e.g. "[2,0,1,0 | 0,0,0,0 | ...]". The runtime
  /// equivalent of the paper's per-phase environment variables.
  std::string toString() const;

  /// Artifact serialization: phase/block counts plus the row-major level
  /// matrix. fromJson rejects dimension mismatches and negative levels.
  Json toJson() const;
  static Expected<PhaseSchedule> fromJson(const Json &Value);

private:
  size_t NumPhases;
  size_t NumBlocks;
  std::vector<int> Levels; // Row-major: phase-major, block-minor.
};

} // namespace opprox

#endif // OPPROX_APPROX_PHASESCHEDULE_H
