//===- approx/CallContextLog.cpp ------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "approx/CallContextLog.h"
#include "support/StringUtils.h"
#include <algorithm>
#include <cassert>

using namespace opprox;

void CallContextLog::beginIteration() {
  IterationBlocks.emplace_back();
  IterationWork.push_back(0);
}

void CallContextLog::recordBlock(size_t BlockId, uint64_t WorkUnits) {
  assert(!IterationBlocks.empty() && "recordBlock before beginIteration");
  IterationBlocks.back().push_back(BlockId);
  IterationWork.back() += WorkUnits;
}

const std::vector<size_t> &
CallContextLog::blocksInIteration(size_t Iter) const {
  assert(Iter < IterationBlocks.size() && "iteration out of range");
  return IterationBlocks[Iter];
}

uint64_t CallContextLog::workInIteration(size_t Iter) const {
  assert(Iter < IterationWork.size() && "iteration out of range");
  return IterationWork[Iter];
}

std::string CallContextLog::signature() const {
  std::vector<std::string> Distinct;
  for (const std::vector<size_t> &Blocks : IterationBlocks) {
    std::string Seq;
    for (size_t B : Blocks) {
      if (!Seq.empty())
        Seq += ",";
      Seq += format("%zu", B);
    }
    if (std::find(Distinct.begin(), Distinct.end(), Seq) == Distinct.end())
      Distinct.push_back(Seq);
  }
  return join(Distinct, ";");
}

uint64_t CallContextLog::workInRange(size_t Begin, size_t End) const {
  End = std::min(End, IterationWork.size());
  uint64_t Sum = 0;
  for (size_t I = Begin; I < End; ++I)
    Sum += IterationWork[I];
  return Sum;
}

void CallContextLog::clear() {
  IterationBlocks.clear();
  IterationWork.clear();
}
