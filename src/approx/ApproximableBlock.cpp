//===- approx/ApproximableBlock.cpp ---------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "approx/ApproximableBlock.h"
#include "support/Compiler.h"

using namespace opprox;

const char *opprox::techniqueName(ApproxTechniqueKind Kind) {
  switch (Kind) {
  case ApproxTechniqueKind::LoopPerforation:
    return "loop perforation";
  case ApproxTechniqueKind::LoopTruncation:
    return "loop truncation";
  case ApproxTechniqueKind::Memoization:
    return "memoization";
  case ApproxTechniqueKind::ParameterTuning:
    return "parameter tuning";
  }
  OPPROX_UNREACHABLE("unknown technique kind");
}

unsigned long long opprox::configurationCount(
    const std::vector<ApproximableBlock> &Blocks) {
  unsigned long long Count = 1;
  for (const ApproximableBlock &AB : Blocks)
    Count *= static_cast<unsigned long long>(AB.numLevels());
  return Count;
}
