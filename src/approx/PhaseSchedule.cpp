//===- approx/PhaseSchedule.cpp -------------------------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "approx/PhaseSchedule.h"
#include "support/Json.h"
#include "support/StringUtils.h"

using namespace opprox;

PhaseMap::PhaseMap(size_t NominalIterations, size_t NumPhases)
    : NominalIterations(NominalIterations), NumPhases(NumPhases) {
  assert(NumPhases > 0 && "need at least one phase");
  BaseLength = NumPhases ? std::max<size_t>(1, NominalIterations / NumPhases)
                         : 1;
}

size_t PhaseMap::phaseOf(size_t Iteration) const {
  size_t Phase = Iteration / BaseLength;
  return Phase >= NumPhases ? NumPhases - 1 : Phase;
}

std::pair<size_t, size_t> PhaseMap::phaseRange(size_t Phase) const {
  assert(Phase < NumPhases && "phase out of range");
  size_t Begin = Phase * BaseLength;
  size_t End =
      Phase + 1 == NumPhases ? NominalIterations : (Phase + 1) * BaseLength;
  return {Begin, End};
}

std::vector<uint64_t> PhaseMap::splitWorkByPhase(
    const std::vector<uint64_t> &WorkPerIteration) const {
  std::vector<uint64_t> Totals(NumPhases, 0);
  for (size_t I = 0; I < WorkPerIteration.size(); ++I)
    Totals[phaseOf(I)] += WorkPerIteration[I];
  return Totals;
}

PhaseSchedule::PhaseSchedule(size_t NumPhases, size_t NumBlocks)
    : NumPhases(NumPhases), NumBlocks(NumBlocks),
      Levels(NumPhases * NumBlocks, 0) {
  assert(NumPhases > 0 && "need at least one phase");
}

PhaseSchedule PhaseSchedule::uniform(size_t NumPhases,
                                     const std::vector<int> &Levels) {
  PhaseSchedule S(NumPhases, Levels.size());
  for (size_t P = 0; P < NumPhases; ++P)
    S.setPhaseLevels(P, Levels);
  return S;
}

PhaseSchedule PhaseSchedule::singlePhase(size_t NumPhases, size_t Phase,
                                         const std::vector<int> &Levels) {
  PhaseSchedule S(NumPhases, Levels.size());
  S.setPhaseLevels(Phase, Levels);
  return S;
}

void PhaseSchedule::setLevel(size_t Phase, size_t Block, int Level) {
  assert(Phase < NumPhases && Block < NumBlocks && "index out of range");
  assert(Level >= 0 && "negative approximation level");
  Levels[Phase * NumBlocks + Block] = Level;
}

std::vector<int> PhaseSchedule::phaseLevels(size_t Phase) const {
  assert(Phase < NumPhases && "phase out of range");
  auto Begin = Levels.begin() +
               static_cast<std::ptrdiff_t>(Phase * NumBlocks);
  return std::vector<int>(Begin, Begin + static_cast<std::ptrdiff_t>(NumBlocks));
}

void PhaseSchedule::setPhaseLevels(size_t Phase,
                                   const std::vector<int> &PhaseLevels) {
  assert(PhaseLevels.size() == NumBlocks && "level count mismatch");
  for (size_t B = 0; B < NumBlocks; ++B)
    setLevel(Phase, B, PhaseLevels[B]);
}

void PhaseSchedule::overlayTail(const PhaseSchedule &Tail, size_t FirstPhase) {
  assert(Tail.NumPhases == NumPhases && Tail.NumBlocks == NumBlocks &&
         "overlay dimensions mismatch");
  assert(FirstPhase <= NumPhases && "first phase out of range");
  for (size_t P = FirstPhase; P < NumPhases; ++P)
    for (size_t B = 0; B < NumBlocks; ++B)
      setLevel(P, B, Tail.level(P, B));
}

bool PhaseSchedule::isExact() const {
  for (int L : Levels)
    if (L != 0)
      return false;
  return true;
}

bool PhaseSchedule::isUniform() const {
  for (size_t P = 1; P < NumPhases; ++P)
    for (size_t B = 0; B < NumBlocks; ++B)
      if (level(P, B) != level(0, B))
        return false;
  return true;
}

Json PhaseSchedule::toJson() const {
  Json Out = Json::object();
  Out.set("num_phases", NumPhases);
  Out.set("num_blocks", NumBlocks);
  Out.set("levels", Json::numberArray(Levels));
  return Out;
}

Expected<PhaseSchedule> PhaseSchedule::fromJson(const Json &Value) {
  Expected<size_t> NumPhases = getSize(Value, "num_phases");
  if (!NumPhases)
    return NumPhases.error();
  Expected<size_t> NumBlocks = getSize(Value, "num_blocks");
  if (!NumBlocks)
    return NumBlocks.error();
  Expected<std::vector<int>> Levels = getIntVector(Value, "levels");
  if (!Levels)
    return Levels.error();
  if (*NumPhases == 0)
    return Error("schedule needs at least one phase");
  if (*NumPhases > 4096 || *NumBlocks > 4096)
    return Error("schedule dimensions exceed the supported maximum");
  if (Levels->size() != *NumPhases * *NumBlocks)
    return Error(format("schedule of %zu phases x %zu blocks expects %zu "
                        "levels, found %zu",
                        *NumPhases, *NumBlocks, *NumPhases * *NumBlocks,
                        Levels->size()));
  for (int L : *Levels)
    if (L < 0)
      return Error("negative approximation level in schedule");
  PhaseSchedule Schedule(*NumPhases, *NumBlocks);
  Schedule.Levels = std::move(*Levels);
  return Schedule;
}

std::string PhaseSchedule::toString() const {
  std::string Out = "[";
  for (size_t P = 0; P < NumPhases; ++P) {
    if (P)
      Out += " | ";
    for (size_t B = 0; B < NumBlocks; ++B) {
      if (B)
        Out += ",";
      Out += format("%d", level(P, B));
    }
  }
  Out += "]";
  return Out;
}
