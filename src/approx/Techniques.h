//===- approx/Techniques.h - Approximation loop drivers --------*- C++ -*-===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four transformations of paper Sec. 3.2 as reusable loop drivers.
/// Level 0 always reproduces the exact loop; higher levels approximate
/// more aggressively. Applications instantiate these over their kernels.
///
//===----------------------------------------------------------------------===//

#ifndef OPPROX_APPROX_TECHNIQUES_H
#define OPPROX_APPROX_TECHNIQUES_H

#include <cassert>
#include <cstddef>

namespace opprox {

/// Loop perforation (Sidiroglou et al.): executes iterations with stride
/// Level+1, i.e. level 0 runs all N, level 1 every other, ... \p Body is
/// invoked as Body(I) for executed iterations only; the caller decides
/// how skipped iterations reuse results (typically: keep stale state).
template <typename BodyFn>
void perforatedLoop(size_t N, int Level, BodyFn Body) {
  assert(Level >= 0 && "negative approximation level");
  size_t Stride = static_cast<size_t>(Level) + 1;
  for (size_t I = 0; I < N; I += Stride)
    Body(I);
}

/// Rotating-offset perforation: like perforatedLoop, but the starting
/// offset advances with the outer-loop iteration, so every index is
/// refreshed at least once every Level+1 outer iterations. This is the
/// right variant for stateful kernels where a fixed offset would freeze
/// the skipped indices for an entire phase.
template <typename BodyFn>
void rotatingPerforatedLoop(size_t N, int Level, size_t OuterIteration,
                            BodyFn Body) {
  assert(Level >= 0 && "negative approximation level");
  size_t Stride = static_cast<size_t>(Level) + 1;
  for (size_t I = OuterIteration % Stride; I < N; I += Stride)
    Body(I);
}

/// Number of trailing iterations a truncated loop drops: a fraction
/// Level/(2*MaxLevel) of N, so the maximum level drops half the loop.
inline size_t truncationDrop(size_t N, int Level, int MaxLevel) {
  assert(Level >= 0 && Level <= MaxLevel && "level out of range");
  if (MaxLevel == 0)
    return 0;
  return N * static_cast<size_t>(Level) /
         (2 * static_cast<size_t>(MaxLevel));
}

/// Loop truncation: drops the last truncationDrop(N, Level, MaxLevel)
/// iterations (paper: "simply drop last few iterations").
template <typename BodyFn>
void truncatedLoop(size_t N, int Level, int MaxLevel, BodyFn Body) {
  size_t Limit = N - truncationDrop(N, Level, MaxLevel);
  for (size_t I = 0; I < Limit; ++I)
    Body(I);
}

/// Memoization: recomputes on iterations divisible by Level+1 and reuses
/// the cached result otherwise. \p Compute(I) produces and returns the
/// fresh value; \p Reuse(I, Cached) consumes the cached one.
template <typename T, typename ComputeFn, typename ReuseFn>
void memoizedLoop(size_t N, int Level, ComputeFn Compute, ReuseFn Reuse) {
  assert(Level >= 0 && "negative approximation level");
  size_t Period = static_cast<size_t>(Level) + 1;
  T Cached{};
  for (size_t I = 0; I < N; ++I) {
    if (I % Period == 0)
      Cached = Compute(I);
    else
      Reuse(I, Cached);
  }
}

/// Parameter tuning: scales an accuracy-controlling count down by 10% per
/// level (floor 10% of the original), e.g. the min-particles /
/// annealing-layers knobs the paper tunes in Bodytrack.
inline size_t tunedParameter(size_t Exact, int Level) {
  assert(Level >= 0 && "negative approximation level");
  size_t Scaled = Exact - Exact * static_cast<size_t>(Level) / 10;
  size_t Floor = Exact / 10;
  if (Scaled < Floor)
    Scaled = Floor;
  return Scaled > 0 ? Scaled : 1;
}

} // namespace opprox

#endif // OPPROX_APPROX_TECHNIQUES_H
