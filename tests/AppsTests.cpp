//===- tests/AppsTests.cpp - benchmark application tests ------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "apps/MiniFfmpeg.h"
#include "apps/MiniLulesh.h"
#include "apps/QoSMetrics.h"
#include "approx/WorkCounter.h"
#include <cmath>
#include <gtest/gtest.h>
#include <map>

using namespace opprox;

namespace {

/// Shared exact runs so the suite does not redo golden executions for
/// every assertion.
RunResult &exactRunOf(const std::string &Name) {
  static std::map<std::string, RunResult> Cache;
  auto It = Cache.find(Name);
  if (It == Cache.end()) {
    auto App = createApp(Name);
    It = Cache.emplace(Name, App->runExact(App->defaultInput())).first;
  }
  return It->second;
}

} // namespace

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(RegistryTest, AllFiveAppsPresent) {
  EXPECT_EQ(allAppNames(),
            (std::vector<std::string>{"lulesh", "comd", "ffmpeg", "bodytrack",
                                      "pso"}));
  for (const std::string &Name : allAppNames()) {
    auto App = createApp(Name);
    ASSERT_NE(App, nullptr);
    EXPECT_EQ(App->name(), Name);
  }
  EXPECT_EQ(createApp("nope"), nullptr);
  EXPECT_EQ(createAllApps().size(), 5u);
}

TEST(RegistryTest, BlockCountsMatchPaper) {
  // Table 1: 4 ABs for LULESH and Bodytrack, 3 for CoMD, PSO, FFmpeg.
  EXPECT_EQ(createApp("lulesh")->numBlocks(), 4u);
  EXPECT_EQ(createApp("bodytrack")->numBlocks(), 4u);
  EXPECT_EQ(createApp("comd")->numBlocks(), 3u);
  EXPECT_EQ(createApp("pso")->numBlocks(), 3u);
  EXPECT_EQ(createApp("ffmpeg")->numBlocks(), 3u);
}

//===----------------------------------------------------------------------===//
// Cross-application invariants
//===----------------------------------------------------------------------===//

class AppInvariantTest : public testing::TestWithParam<std::string> {};

TEST_P(AppInvariantTest, MetadataIsConsistent) {
  auto App = createApp(GetParam());
  EXPECT_FALSE(App->blocks().empty());
  EXPECT_EQ(App->defaultInput().size(), App->parameterNames().size());
  for (const auto &Input : App->trainingInputs())
    EXPECT_EQ(Input.size(), App->parameterNames().size());
  EXPECT_GE(App->trainingInputs().size(), 5u);
  for (const ApproximableBlock &AB : App->blocks()) {
    EXPECT_FALSE(AB.Name.empty());
    EXPECT_GE(AB.MaxLevel, 1);
  }
}

TEST_P(AppInvariantTest, ExactRunIsDeterministic) {
  auto App = createApp(GetParam());
  const RunResult &A = exactRunOf(GetParam());
  RunResult B = App->runExact(App->defaultInput());
  EXPECT_EQ(A.WorkUnits, B.WorkUnits);
  EXPECT_EQ(A.OuterIterations, B.OuterIterations);
  EXPECT_EQ(A.Output, B.Output);
  EXPECT_EQ(A.ControlFlowSignature, B.ControlFlowSignature);
}

TEST_P(AppInvariantTest, ExactRunProducesOutput) {
  const RunResult &R = exactRunOf(GetParam());
  EXPECT_GT(R.WorkUnits, 0u);
  EXPECT_GT(R.OuterIterations, 0u);
  EXPECT_FALSE(R.Output.empty());
  EXPECT_FALSE(R.ControlFlowSignature.empty());
  EXPECT_EQ(R.WorkPerIteration.size(), R.OuterIterations);
  for (double V : R.Output)
    EXPECT_TRUE(std::isfinite(V));
}

TEST_P(AppInvariantTest, ExactVsExactQosIsNegligible) {
  auto App = createApp(GetParam());
  const RunResult &R = exactRunOf(GetParam());
  // PSNR apps saturate at 99 dB, which maps to ~0.001%, not exactly 0.
  EXPECT_LT(App->qosDegradation(R, R), 0.01);
}

TEST_P(AppInvariantTest, ExactScheduleAcrossPhasesIsIdentical) {
  // A 4-phase all-exact schedule must reproduce the 1-phase exact run.
  auto App = createApp(GetParam());
  const RunResult &A = exactRunOf(GetParam());
  PhaseSchedule S(4, App->numBlocks());
  RunResult B = App->run(App->defaultInput(), S, A.OuterIterations);
  EXPECT_EQ(A.WorkUnits, B.WorkUnits);
  EXPECT_EQ(A.Output, B.Output);
}

TEST_P(AppInvariantTest, MaxApproximationReducesWork) {
  auto App = createApp(GetParam());
  const RunResult &Exact = exactRunOf(GetParam());
  PhaseSchedule S = PhaseSchedule::uniform(1, App->maxLevels());
  RunResult R = App->run(App->defaultInput(), S, Exact.OuterIterations);
  EXPECT_LT(R.WorkUnits, Exact.WorkUnits);
  EXPECT_GT(speedupOf(Exact.WorkUnits, R.WorkUnits), 1.2);
}

TEST_P(AppInvariantTest, ApproximationIsDeterministicToo) {
  auto App = createApp(GetParam());
  const RunResult &Exact = exactRunOf(GetParam());
  std::vector<int> Levels(App->numBlocks(), 2);
  PhaseSchedule S = PhaseSchedule::singlePhase(4, 1, Levels);
  RunResult A = App->run(App->defaultInput(), S, Exact.OuterIterations);
  RunResult B = App->run(App->defaultInput(), S, Exact.OuterIterations);
  EXPECT_EQ(A.WorkUnits, B.WorkUnits);
  EXPECT_EQ(A.Output, B.Output);
}

TEST_P(AppInvariantTest, ApproximationCausesSomeError) {
  auto App = createApp(GetParam());
  const RunResult &Exact = exactRunOf(GetParam());
  PhaseSchedule S = PhaseSchedule::uniform(1, App->maxLevels());
  RunResult R = App->run(App->defaultInput(), S, Exact.OuterIterations);
  EXPECT_GT(App->qosDegradation(Exact, R), 0.1);
}

TEST_P(AppInvariantTest, LastPhaseGentlerThanFirst) {
  // The paper's core observation (Figs. 4 and 9): approximating the
  // final phase degrades QoS less than approximating the first.
  auto App = createApp(GetParam());
  const RunResult &Exact = exactRunOf(GetParam());
  std::vector<int> Levels(App->numBlocks(), 2);
  RunResult First =
      App->run(App->defaultInput(),
               PhaseSchedule::singlePhase(4, 0, Levels),
               Exact.OuterIterations);
  RunResult Last =
      App->run(App->defaultInput(),
               PhaseSchedule::singlePhase(4, 3, Levels),
               Exact.OuterIterations);
  EXPECT_LT(App->qosDegradation(Exact, Last),
            App->qosDegradation(Exact, First) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(AllApps, AppInvariantTest,
                         testing::ValuesIn(allAppNames()),
                         [](const auto &Info) { return Info.param; });

//===----------------------------------------------------------------------===//
// LULESH specifics
//===----------------------------------------------------------------------===//

TEST(LuleshTest, NominalIterationsNearPaper) {
  // Calibrated to the paper's 921 exact outer-loop iterations.
  const RunResult &R = exactRunOf("lulesh");
  EXPECT_NEAR(static_cast<double>(R.OuterIterations), 921.0, 15.0);
}

TEST(LuleshTest, IterationCountRespondsToApproximation) {
  // Fig. 3: approximation changes the outer-loop iteration count.
  MiniLulesh App;
  const RunResult &Exact = exactRunOf("lulesh");
  PhaseSchedule S = PhaseSchedule::uniform(4, {3, 3, 3, 3});
  RunResult R = App.run(App.defaultInput(), S, Exact.OuterIterations);
  EXPECT_NE(R.OuterIterations, Exact.OuterIterations);
}

TEST(LuleshTest, MeshSizeScalesWork) {
  MiniLulesh App;
  RunResult Small = App.runExact({20, 11});
  RunResult Large = App.runExact({40, 11});
  EXPECT_GT(Large.WorkUnits, Small.WorkUnits);
}

TEST(LuleshTest, RegionsScaleForceCost) {
  MiniLulesh App;
  RunResult Few = App.runExact({30, 8});
  RunResult Many = App.runExact({30, 16});
  EXPECT_GT(Many.WorkUnits, Few.WorkUnits);
}

TEST(LuleshTest, EnergyConcentratedNearBlast) {
  const RunResult &R = exactRunOf("lulesh");
  // The first output bin (closest to the blast) carries the most energy.
  double MaxE = 0;
  for (double E : R.Output)
    MaxE = std::max(MaxE, E);
  EXPECT_DOUBLE_EQ(R.Output.front(), MaxE);
}

//===----------------------------------------------------------------------===//
// CoMD specifics
//===----------------------------------------------------------------------===//

TEST(ComdTest, IterationsFixedByInput) {
  auto App = createApp("comd");
  const RunResult &Exact = exactRunOf("comd");
  EXPECT_EQ(Exact.OuterIterations, 200u); // num_timesteps of the default.
  PhaseSchedule S = PhaseSchedule::uniform(4, App->maxLevels());
  RunResult R = App->run(App->defaultInput(), S, Exact.OuterIterations);
  EXPECT_EQ(R.OuterIterations, Exact.OuterIterations);
}

TEST(ComdTest, SpeedupPhaseInvariant) {
  // Fig. 10a: which phase is approximated barely changes CoMD's speedup.
  auto App = createApp("comd");
  const RunResult &Exact = exactRunOf("comd");
  std::vector<int> Levels(3, 3);
  std::vector<double> Speedups;
  for (size_t P = 0; P < 4; ++P) {
    RunResult R = App->run(App->defaultInput(),
                           PhaseSchedule::singlePhase(4, P, Levels),
                           Exact.OuterIterations);
    Speedups.push_back(speedupOf(Exact.WorkUnits, R.WorkUnits));
  }
  for (size_t P = 1; P < 4; ++P)
    EXPECT_NEAR(Speedups[P], Speedups[0], 0.12);
}

//===----------------------------------------------------------------------===//
// FFmpeg specifics
//===----------------------------------------------------------------------===//

TEST(FfmpegTest, FrameCountFromFpsAndDuration) {
  auto App = createApp("ffmpeg");
  EXPECT_EQ(exactRunOf("ffmpeg").OuterIterations, 150u); // 30 fps x 5 s.
  RunResult Short = App->runExact({15, 4, 4, 0});
  EXPECT_EQ(Short.OuterIterations, 60u);
}

TEST(FfmpegTest, FilterOrderChangesControlFlow) {
  // Fig. 7 / Sec. 3.4: swapping deflate and edge detection is a distinct
  // control flow with a distinct result.
  auto App = createApp("ffmpeg");
  RunResult A = App->runExact({30, 3, 4, 0});
  RunResult B = App->runExact({30, 3, 4, 1});
  EXPECT_NE(A.ControlFlowSignature, B.ControlFlowSignature);
  EXPECT_NE(A.Output, B.Output);
}

TEST(FfmpegTest, UsesPsnrMetric) {
  auto App = createApp("ffmpeg");
  EXPECT_TRUE(App->usesPsnr());
  const RunResult &Exact = exactRunOf("ffmpeg");
  EXPECT_DOUBLE_EQ(App->psnrValue(Exact, Exact), 99.0);
  PhaseSchedule S = PhaseSchedule::uniform(1, {2, 2, 2});
  RunResult R = App->run(App->defaultInput(), S, Exact.OuterIterations);
  double Db = App->psnrValue(Exact, R);
  EXPECT_GT(Db, 5.0);
  EXPECT_LT(Db, 99.0);
  // qosDegradation is the documented transform of PSNR.
  EXPECT_NEAR(App->qosDegradation(Exact, R), psnrToDegradationPercent(Db),
              1e-9);
}

TEST(FfmpegTest, EarlyPhaseErrorPersists) {
  // Fig. 9d: the delta encoder propagates first-phase errors, so PSNR for
  // phase-0 approximation is worse (lower) than for phase-3.
  auto App = createApp("ffmpeg");
  const RunResult &Exact = exactRunOf("ffmpeg");
  std::vector<int> Levels = {3, 3, 3};
  RunResult P0 = App->run(App->defaultInput(),
                          PhaseSchedule::singlePhase(4, 0, Levels),
                          Exact.OuterIterations);
  RunResult P3 = App->run(App->defaultInput(),
                          PhaseSchedule::singlePhase(4, 3, Levels),
                          Exact.OuterIterations);
  EXPECT_LT(App->psnrValue(Exact, P0), App->psnrValue(Exact, P3));
}

//===----------------------------------------------------------------------===//
// Bodytrack specifics
//===----------------------------------------------------------------------===//

TEST(BodytrackTest, IterationsAreFramesTimesLayers) {
  EXPECT_EQ(exactRunOf("bodytrack").OuterIterations, 48u); // 12 x 4.
  auto App = createApp("bodytrack");
  RunResult R = App->runExact({3, 96, 10});
  EXPECT_EQ(R.OuterIterations, 30u);
}

TEST(BodytrackTest, OutputIsPoseSequence) {
  const RunResult &R = exactRunOf("bodytrack");
  EXPECT_EQ(R.Output.size(), 12u * 5u); // frames x pose components.
}

TEST(BodytrackTest, MinParticlesKnobSavesWork) {
  auto App = createApp("bodytrack");
  const RunResult &Exact = exactRunOf("bodytrack");
  PhaseSchedule S = PhaseSchedule::uniform(1, {0, 0, 0, 5});
  RunResult R = App->run(App->defaultInput(), S, Exact.OuterIterations);
  EXPECT_LT(R.WorkUnits, Exact.WorkUnits);
}

//===----------------------------------------------------------------------===//
// PSO specifics
//===----------------------------------------------------------------------===//

TEST(PsoTest, ConvergesBeforeIterationCap) {
  const RunResult &R = exactRunOf("pso");
  EXPECT_LT(R.OuterIterations, 400u);
  EXPECT_GT(R.OuterIterations, 50u);
}

TEST(PsoTest, EarlyApproximationTriggersPrematureConvergence) {
  // Figs. 9b/10b: stale fitness in the first phase stalls the stagnation
  // detector -- the run stops much earlier, with a large error.
  auto App = createApp("pso");
  const RunResult &Exact = exactRunOf("pso");
  std::vector<int> Levels(3, 3);
  RunResult P0 = App->run(App->defaultInput(),
                          PhaseSchedule::singlePhase(4, 0, Levels),
                          Exact.OuterIterations);
  EXPECT_LT(P0.OuterIterations, Exact.OuterIterations / 2);
  EXPECT_GT(App->qosDegradation(Exact, P0), 10.0);
}

TEST(PsoTest, LatePhaseSpeedupSmallerThanEarly) {
  // Fig. 10b: speedup shrinks for later phases.
  auto App = createApp("pso");
  const RunResult &Exact = exactRunOf("pso");
  std::vector<int> Levels(3, 3);
  RunResult P0 = App->run(App->defaultInput(),
                          PhaseSchedule::singlePhase(4, 0, Levels),
                          Exact.OuterIterations);
  RunResult P3 = App->run(App->defaultInput(),
                          PhaseSchedule::singlePhase(4, 3, Levels),
                          Exact.OuterIterations);
  EXPECT_GT(speedupOf(Exact.WorkUnits, P0.WorkUnits),
            speedupOf(Exact.WorkUnits, P3.WorkUnits));
}
