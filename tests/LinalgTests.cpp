//===- tests/LinalgTests.cpp - linear algebra tests -----------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "linalg/Decompositions.h"
#include "linalg/LeastSquares.h"
#include "linalg/Matrix.h"
#include "support/Random.h"
#include <cmath>
#include <gtest/gtest.h>

using namespace opprox;

//===----------------------------------------------------------------------===//
// Matrix
//===----------------------------------------------------------------------===//

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix M(2, 3, 1.5);
  EXPECT_EQ(M.rows(), 2u);
  EXPECT_EQ(M.cols(), 3u);
  EXPECT_DOUBLE_EQ(M.at(1, 2), 1.5);
  M.at(0, 0) = -2.0;
  EXPECT_DOUBLE_EQ(M.at(0, 0), -2.0);
}

TEST(MatrixTest, FromRowsAndRowCol) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}, {5, 6}});
  EXPECT_EQ(M.row(1), (std::vector<double>{3, 4}));
  EXPECT_EQ(M.col(0), (std::vector<double>{1, 3, 5}));
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix M = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix I = Matrix::identity(2);
  EXPECT_DOUBLE_EQ(M.multiply(I).maxAbsDiff(M), 0.0);
  EXPECT_DOUBLE_EQ(I.multiply(M).maxAbsDiff(M), 0.0);
}

TEST(MatrixTest, KnownProduct) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  Matrix B = Matrix::fromRows({{5, 6}, {7, 8}});
  Matrix C = A.multiply(B);
  EXPECT_DOUBLE_EQ(C.at(0, 0), 19);
  EXPECT_DOUBLE_EQ(C.at(0, 1), 22);
  EXPECT_DOUBLE_EQ(C.at(1, 0), 43);
  EXPECT_DOUBLE_EQ(C.at(1, 1), 50);
}

TEST(MatrixTest, TransposeInvolution) {
  Matrix A = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
  Matrix T = A.transposed();
  EXPECT_EQ(T.rows(), 3u);
  EXPECT_EQ(T.cols(), 2u);
  EXPECT_DOUBLE_EQ(T.at(2, 1), 6);
  EXPECT_DOUBLE_EQ(T.transposed().maxAbsDiff(A), 0.0);
}

TEST(MatrixTest, MatVec) {
  Matrix A = Matrix::fromRows({{1, 2}, {3, 4}});
  std::vector<double> Y = A.multiply(std::vector<double>{1.0, -1.0});
  EXPECT_DOUBLE_EQ(Y[0], -1);
  EXPECT_DOUBLE_EQ(Y[1], -1);
}

TEST(MatrixTest, VectorHelpers) {
  EXPECT_DOUBLE_EQ(dot({1, 2, 3}, {4, 5, 6}), 32);
  EXPECT_DOUBLE_EQ(norm2({3, 4}), 5);
  EXPECT_EQ(axpy({1, 1}, {2, 3}, 2.0), (std::vector<double>{5, 7}));
}

//===----------------------------------------------------------------------===//
// QR decomposition
//===----------------------------------------------------------------------===//

TEST(QrTest, SolvesSquareSystem) {
  Matrix A = Matrix::fromRows({{2, 1}, {1, 3}});
  std::vector<double> X0 = {1.0, -2.0};
  auto X = QrDecomposition(A).solve(A.multiply(X0));
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 1.0, 1e-12);
  EXPECT_NEAR((*X)[1], -2.0, 1e-12);
}

TEST(QrTest, OverdeterminedConsistent) {
  Matrix A = Matrix::fromRows({{2, 1}, {1, 3}, {0, 1}});
  std::vector<double> X0 = {1.0, 2.0};
  auto X = QrDecomposition(A).solve(A.multiply(X0));
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 1.0, 1e-12);
  EXPECT_NEAR((*X)[1], 2.0, 1e-12);
}

TEST(QrTest, LeastSquaresMinimizesResidual) {
  // Inconsistent system: the LS solution of x = b over rows (1),(1) is
  // the mean.
  Matrix A = Matrix::fromRows({{1.0}, {1.0}});
  auto X = QrDecomposition(A).solve({1.0, 3.0});
  ASSERT_TRUE(X.has_value());
  EXPECT_NEAR((*X)[0], 2.0, 1e-12);
}

TEST(QrTest, DetectsRankDeficiency) {
  Matrix A = Matrix::fromRows({{1, 2}, {2, 4}, {3, 6}});
  QrDecomposition Qr(A);
  EXPECT_FALSE(Qr.isFullRank());
  EXPECT_FALSE(Qr.solve({1, 2, 3}).has_value());
}

TEST(QrTest, RFactorIsUpperTriangular) {
  Rng R(10);
  Matrix A(6, 4);
  for (size_t I = 0; I < 6; ++I)
    for (size_t J = 0; J < 4; ++J)
      A.at(I, J) = R.gaussian();
  Matrix RF = QrDecomposition(A).rFactor();
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < I; ++J)
      EXPECT_DOUBLE_EQ(RF.at(I, J), 0.0);
}

TEST(QrTest, RFactorReproducesNormalEquations) {
  // R^T R must equal A^T A for a full-rank A.
  Rng Rand(20);
  Matrix A(8, 3);
  for (size_t I = 0; I < 8; ++I)
    for (size_t J = 0; J < 3; ++J)
      A.at(I, J) = Rand.gaussian();
  Matrix R = QrDecomposition(A).rFactor();
  Matrix RtR = R.transposed().multiply(R);
  Matrix AtA = A.transposed().multiply(A);
  EXPECT_LT(RtR.maxAbsDiff(AtA), 1e-10);
}

/// Property sweep: random full-rank systems of several shapes solve to
/// high accuracy.
class QrPropertyTest : public testing::TestWithParam<std::pair<int, int>> {};

TEST_P(QrPropertyTest, RandomSystemsRecoverSolution) {
  auto [M, N] = GetParam();
  Rng Rand(static_cast<uint64_t>(M * 1000 + N));
  for (int Trial = 0; Trial < 10; ++Trial) {
    Matrix A(static_cast<size_t>(M), static_cast<size_t>(N));
    for (int I = 0; I < M; ++I)
      for (int J = 0; J < N; ++J)
        A.at(static_cast<size_t>(I), static_cast<size_t>(J)) =
            Rand.gaussian();
    std::vector<double> X0(static_cast<size_t>(N));
    for (double &V : X0)
      V = Rand.uniform(-5, 5);
    auto X = QrDecomposition(A).solve(A.multiply(X0));
    ASSERT_TRUE(X.has_value());
    for (int J = 0; J < N; ++J)
      EXPECT_NEAR((*X)[static_cast<size_t>(J)], X0[static_cast<size_t>(J)],
                  1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, QrPropertyTest,
                         testing::Values(std::pair{3, 3}, std::pair{5, 2},
                                         std::pair{10, 4}, std::pair{30, 7},
                                         std::pair{100, 12}));

//===----------------------------------------------------------------------===//
// Cholesky
//===----------------------------------------------------------------------===//

TEST(CholeskyTest, FactorizesSpd) {
  Matrix A = Matrix::fromRows({{4, 2}, {2, 3}});
  auto L = cholesky(A);
  ASSERT_TRUE(L.has_value());
  Matrix Rebuilt = L->multiply(L->transposed());
  EXPECT_LT(Rebuilt.maxAbsDiff(A), 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix A = Matrix::fromRows({{1, 2}, {2, 1}}); // Eigenvalues 3, -1.
  EXPECT_FALSE(cholesky(A).has_value());
}

TEST(CholeskyTest, SolveMatchesKnown) {
  Matrix A = Matrix::fromRows({{4, 2}, {2, 3}});
  std::vector<double> X0 = {1, 2};
  auto L = cholesky(A);
  ASSERT_TRUE(L.has_value());
  std::vector<double> X = choleskySolve(*L, A.multiply(X0));
  EXPECT_NEAR(X[0], 1.0, 1e-12);
  EXPECT_NEAR(X[1], 2.0, 1e-12);
}

//===----------------------------------------------------------------------===//
// Least squares front-end
//===----------------------------------------------------------------------===//

TEST(LeastSquaresTest, QrAndRidgeAgreeOnWellPosed) {
  Rng Rand(33);
  Matrix A(20, 3);
  for (size_t I = 0; I < 20; ++I)
    for (size_t J = 0; J < 3; ++J)
      A.at(I, J) = Rand.gaussian();
  std::vector<double> B = A.multiply(std::vector<double>{1, -2, 0.5});
  auto X = solveLeastSquares(A, B);
  ASSERT_TRUE(X.has_value());
  std::vector<double> XR = solveRidge(A, B, 1e-10);
  for (size_t J = 0; J < 3; ++J)
    EXPECT_NEAR((*X)[J], XR[J], 1e-6);
}

TEST(LeastSquaresTest, RidgeHandlesCollinear) {
  // Two identical columns: plain LS refuses, ridge returns a finite
  // solution that still fits.
  Matrix A = Matrix::fromRows({{1, 1}, {2, 2}, {3, 3}});
  std::vector<double> B = {2, 4, 6};
  EXPECT_FALSE(solveLeastSquares(A, B).has_value());
  std::vector<double> X = solveRidge(A, B, 1e-6);
  std::vector<double> Fit = A.multiply(X);
  for (size_t I = 0; I < 3; ++I)
    EXPECT_NEAR(Fit[I], B[I], 1e-3);
}

TEST(LeastSquaresTest, UnderdeterminedUsesRidgePath) {
  Matrix A = Matrix::fromRows({{1, 0, 1}});
  EXPECT_FALSE(solveLeastSquares(A, {2}).has_value());
  std::vector<double> X = solveRidge(A, {2}, 1e-8);
  EXPECT_NEAR(X[0] + X[2], 2.0, 1e-4);
}
