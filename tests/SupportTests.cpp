//===- tests/SupportTests.cpp - support library tests ---------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/AlignedBuffer.h"
#include "support/CommandLine.h"
#include "support/Error.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/Simd.h"
#include "support/StringUtils.h"
#include "support/Table.h"
#include "support/Timer.h"
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <gtest/gtest.h>
#include <set>
#include <vector>

using namespace opprox;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, SameSeedSameStream) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform(-3.5, 2.5);
    EXPECT_GE(U, -3.5);
    EXPECT_LT(U, 2.5);
  }
}

TEST(RngTest, UniformMeanNearHalf) {
  Rng R(99);
  double Sum = 0;
  for (int I = 0; I < 20000; ++I)
    Sum += R.uniform();
  EXPECT_NEAR(Sum / 20000, 0.5, 0.01);
}

TEST(RngTest, BelowStaysBelowBound) {
  Rng R(3);
  for (int I = 0; I < 1000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RngTest, BelowCoversAllValues) {
  Rng R(3);
  std::set<uint64_t> Seen;
  for (int I = 0; I < 500; ++I)
    Seen.insert(R.below(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RngTest, RangeInclusive) {
  Rng R(5);
  std::set<int64_t> Seen;
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.range(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng R(11);
  RunningStats S;
  for (int I = 0; I < 50000; ++I)
    S.add(R.gaussian());
  EXPECT_NEAR(S.mean(), 0.0, 0.02);
  EXPECT_NEAR(S.stddev(), 1.0, 0.02);
}

TEST(RngTest, GaussianScaled) {
  Rng R(12);
  RunningStats S;
  for (int I = 0; I < 50000; ++I)
    S.add(R.gaussian(5.0, 2.0));
  EXPECT_NEAR(S.mean(), 5.0, 0.05);
  EXPECT_NEAR(S.stddev(), 2.0, 0.05);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng R(1);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Shuffled = V;
  R.shuffle(Shuffled);
  std::multiset<int> A(V.begin(), V.end()), B(Shuffled.begin(),
                                              Shuffled.end());
  EXPECT_EQ(A, B);
}

TEST(RngTest, SplitIndependentStream) {
  Rng A(42);
  Rng B = A.split();
  // The split stream is deterministic but distinct.
  Rng A2(42);
  Rng B2 = A2.split();
  EXPECT_EQ(B.next(), B2.next());
  Rng C(42);
  EXPECT_NE(B.next(), C.next());
}

TEST(RngTest, ChanceExtremes) {
  Rng R(8);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatsTest, RunningBasics) {
  RunningStats S;
  EXPECT_TRUE(S.empty());
  for (double X : {1.0, 2.0, 3.0, 4.0})
    S.add(X);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.5);
  EXPECT_NEAR(S.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 4.0);
}

TEST(StatsTest, RunningMergeMatchesCombined) {
  Rng R(2);
  RunningStats A, B, All;
  for (int I = 0; I < 100; ++I) {
    double X = R.gaussian(3, 2);
    (I % 2 ? A : B).add(X);
    All.add(X);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-10);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-10);
  EXPECT_DOUBLE_EQ(A.min(), All.min());
  EXPECT_DOUBLE_EQ(A.max(), All.max());
}

TEST(StatsTest, MergeWithEmpty) {
  RunningStats A, B;
  A.add(1.0);
  A.merge(B);
  EXPECT_EQ(A.count(), 1u);
  B.merge(A);
  EXPECT_EQ(B.count(), 1u);
  EXPECT_DOUBLE_EQ(B.mean(), 1.0);
}

TEST(StatsTest, MeanAndStddev) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0}), 3.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 1e-3);
}

TEST(StatsTest, QuantileInterpolates) {
  std::vector<double> V = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(median(V), 2.5);
  EXPECT_DOUBLE_EQ(median({5.0}), 5.0);
}

TEST(StatsTest, PearsonKnownValues) {
  std::vector<double> X = {1, 2, 3, 4, 5};
  std::vector<double> Y = {2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(X, Y), 1.0, 1e-12);
  std::vector<double> Z = {10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(X, Z), -1.0, 1e-12);
  std::vector<double> C = {3, 3, 3, 3, 3};
  EXPECT_DOUBLE_EQ(pearson(X, C), 0.0);
}

TEST(StatsTest, R2PerfectAndMean) {
  std::vector<double> A = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(r2Score(A, A), 1.0);
  std::vector<double> MeanPred(4, 2.5);
  EXPECT_NEAR(r2Score(A, MeanPred), 0.0, 1e-12);
}

TEST(StatsTest, R2NegativeForBadFit) {
  std::vector<double> A = {1, 2, 3, 4};
  std::vector<double> Bad = {4, 3, 2, 1};
  EXPECT_LT(r2Score(A, Bad), 0.0);
}

//===----------------------------------------------------------------------===//
// StringUtils
//===----------------------------------------------------------------------===//

TEST(StringTest, SplitBasics) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(StringTest, JoinInvertsSplit) {
  std::string S = "x|yy|zzz";
  EXPECT_EQ(join(split(S, '|'), "|"), S);
  EXPECT_EQ(join({}, ","), "");
}

TEST(StringTest, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("hi"), "hi");
  EXPECT_EQ(trim(" \t\n "), "");
}

TEST(StringTest, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(StringTest, StartsWith) {
  EXPECT_TRUE(startsWith("foobar", "foo"));
  EXPECT_FALSE(startsWith("fo", "foo"));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringTest, ParseDouble) {
  double D = 0;
  EXPECT_TRUE(parseDouble(" 3.5 ", D));
  EXPECT_DOUBLE_EQ(D, 3.5);
  EXPECT_TRUE(parseDouble("-1e3", D));
  EXPECT_DOUBLE_EQ(D, -1000.0);
  EXPECT_FALSE(parseDouble("3.5x", D));
  EXPECT_FALSE(parseDouble("", D));
  EXPECT_DOUBLE_EQ(D, -1000.0); // Untouched on failure.
}

TEST(StringTest, ParseInt) {
  long L = 0;
  EXPECT_TRUE(parseInt("42", L));
  EXPECT_EQ(L, 42);
  EXPECT_TRUE(parseInt(" -7 ", L));
  EXPECT_EQ(L, -7);
  EXPECT_FALSE(parseInt("7.5", L));
  EXPECT_FALSE(parseInt("abc", L));
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, RowsAndCells) {
  Table T({"a", "b"});
  T.addRow({"1", "2"});
  T.beginRow();
  T.addCell(3.14159, 2);
  T.addCell(7L);
  EXPECT_EQ(T.numRows(), 2u);
  EXPECT_EQ(T.numColumns(), 2u);
}

TEST(TableTest, CsvOutput) {
  Table T({"x", "y"});
  T.addRow({"1", "hello"});
  EXPECT_EQ(T.toCsv(), "x,y\n1,hello\n");
}

TEST(TableTest, CsvEscapesCommasAndQuotes) {
  Table T({"v"});
  T.addRow({"a,b"});
  T.addRow({"say \"hi\""});
  std::string Csv = T.toCsv();
  EXPECT_NE(Csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(Csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(TableTest, WriteCsvRoundTrip) {
  Table T({"k", "v"});
  T.addRow({"alpha", "1"});
  std::string Path = testing::TempDir() + "/opprox_table_test.csv";
  ASSERT_TRUE(T.writeCsv(Path));
  std::FILE *F = std::fopen(Path.c_str(), "r");
  ASSERT_NE(F, nullptr);
  char Buf[256] = {};
  size_t Read = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  EXPECT_EQ(std::string(Buf, Read), "k,v\nalpha,1\n");
}

//===----------------------------------------------------------------------===//
// CommandLine
//===----------------------------------------------------------------------===//

TEST(FlagsTest, ParsesAllKinds) {
  double D = 0;
  long L = 0;
  std::string S;
  bool B = false;
  FlagParser P;
  P.addFlag("d", &D, "");
  P.addFlag("l", &L, "");
  P.addFlag("s", &S, "");
  P.addFlag("b", &B, "");
  const char *Argv[] = {"prog", "--d=1.5", "--l", "7", "--s=hi", "--b",
                        "positional"};
  ASSERT_TRUE(P.parse(7, Argv));
  EXPECT_DOUBLE_EQ(D, 1.5);
  EXPECT_EQ(L, 7);
  EXPECT_EQ(S, "hi");
  EXPECT_TRUE(B);
  ASSERT_EQ(P.positional().size(), 1u);
  EXPECT_EQ(P.positional()[0], "positional");
}

TEST(FlagsTest, RejectsUnknownFlag) {
  FlagParser P;
  const char *Argv[] = {"prog", "--nope"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(FlagsTest, RejectsBadNumber) {
  double D = 0;
  FlagParser P;
  P.addFlag("d", &D, "");
  const char *Argv[] = {"prog", "--d=abc"};
  EXPECT_FALSE(P.parse(2, Argv));
}

TEST(FlagsTest, MissingValueFails) {
  long L = 0;
  FlagParser P;
  P.addFlag("l", &L, "");
  const char *Argv[] = {"prog", "--l"};
  EXPECT_FALSE(P.parse(2, Argv));
}

//===----------------------------------------------------------------------===//
// Error / Expected
//===----------------------------------------------------------------------===//

TEST(ErrorTest, ExpectedValuePath) {
  Expected<int> E(42);
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_EQ(*E, 42);
  EXPECT_EQ(E.getOrDie(), 42);
}

TEST(ErrorTest, ExpectedErrorPath) {
  Expected<int> E(makeError("bad thing %d", 7));
  EXPECT_FALSE(static_cast<bool>(E));
  EXPECT_EQ(E.error().message(), "bad thing 7");
}

TEST(ErrorTest, MakeErrorFormats) {
  Error E = makeError("%s=%d", "x", 3);
  EXPECT_EQ(E.message(), "x=3");
}

//===----------------------------------------------------------------------===//
// Timer
//===----------------------------------------------------------------------===//

TEST(TimerTest, MonotoneNonNegative) {
  Timer T;
  double A = T.seconds();
  EXPECT_GE(A, 0.0);
  double B = T.seconds();
  EXPECT_GE(B, A);
  T.reset();
  EXPECT_LT(T.seconds(), 1.0);
}

//===----------------------------------------------------------------------===//
// AlignedBuffer + SIMD kernels
//===----------------------------------------------------------------------===//

TEST(AlignedBufferTest, EnsureReturnsAlignedGrowOnlyStorage) {
  AlignedBuffer<double> B;
  double *P = B.ensure(3);
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % AlignedBuffer<double>::Alignment,
            0u);
  P[0] = 1.0;
  P[2] = 3.0;
  // A smaller request must not reallocate (grow-only scratch contract).
  EXPECT_EQ(B.ensure(2), P);
  EXPECT_DOUBLE_EQ(P[0], 1.0);
  double *Q = B.ensure(4096);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(Q) % AlignedBuffer<double>::Alignment,
            0u);
  Q[4095] = 7.0; // The whole span must be writable.
}

TEST(AlignedBufferTest, PaddedStrideAlignsEveryColumn) {
  // Strides round N up so each column of a column-major block starts on
  // a 64-byte boundary: multiples of 8 doubles, and never smaller than N.
  EXPECT_EQ(AlignedBuffer<double>::paddedStride(0), 0u);
  for (size_t N : {1u, 7u, 8u, 9u, 63u, 64u, 100u}) {
    size_t Stride = AlignedBuffer<double>::paddedStride(N);
    EXPECT_GE(Stride, N);
    EXPECT_EQ(Stride % 8, 0u) << "N " << N;
    EXPECT_LT(Stride, N + 8) << "N " << N;
  }
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<double> A;
  double *P = A.ensure(16);
  P[15] = 2.5;
  AlignedBuffer<double> B = std::move(A);
  EXPECT_EQ(B.ensure(16), P);
  EXPECT_DOUBLE_EQ(P[15], 2.5);
}

TEST(SimdTest, TierControlClampsAndReports) {
  const simd::Tier Best = simd::activeTier();
  EXPECT_TRUE(simd::tierSupported(simd::Tier::Generic));
  EXPECT_TRUE(simd::tierSupported(Best));
  EXPECT_STREQ(simd::tierName(simd::Tier::Generic), "generic");
  EXPECT_STREQ(simd::activeTierName(), simd::tierName(Best));
  // Forcing generic always succeeds; an unsupported tier clamps to
  // generic instead of installing kernels the host cannot run.
  EXPECT_EQ(simd::setActiveTier(simd::Tier::Generic), simd::Tier::Generic);
#if defined(__aarch64__)
  simd::Tier Foreign = simd::Tier::Avx2;
#else
  simd::Tier Foreign = simd::Tier::Neon;
#endif
  EXPECT_FALSE(simd::tierSupported(Foreign));
  EXPECT_EQ(simd::setActiveTier(Foreign), simd::Tier::Generic);
  EXPECT_EQ(simd::setActiveTier(Best), Best);
}

TEST(SimdTest, KernelsMatchScalarReferenceBitwise) {
  // Each kernel against a plain scalar loop using the same expressions,
  // on sizes with every tail length, on every tier the host supports.
  const simd::Tier Best = simd::activeTier();
  Rng R(77);
  for (size_t N : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 16u, 33u, 100u}) {
    std::vector<double> A(N), B(N), RefMul(N), RefAdd(N), RefStd(N);
    for (size_t I = 0; I < N; ++I) {
      A[I] = R.uniform(-10, 10);
      B[I] = R.uniform(-10, 10);
    }
    double C = R.uniform(-2, 2), Mean = R.uniform(-1, 1),
           Scale = R.uniform(0.5, 2);
    for (size_t I = 0; I < N; ++I) {
      RefMul[I] = A[I] * B[I];
      RefAdd[I] = A[I] + C;
      RefStd[I] = (A[I] - Mean) / Scale;
    }
    for (simd::Tier T : {simd::Tier::Generic, Best}) {
      simd::setActiveTier(T);
      std::vector<double> Out(N);
      simd::mul(Out.data(), A.data(), B.data(), N);
      EXPECT_EQ(std::memcmp(Out.data(), RefMul.data(), N * sizeof(double)),
                0)
          << "mul, N " << N << ", tier " << simd::tierName(T);
      std::copy(A.begin(), A.end(), Out.begin());
      simd::axpy(Out.data(), C, B.data(), N);
      for (size_t I = 0; I < N; ++I) {
        double Want = A[I] + C * B[I];
        EXPECT_EQ(std::memcmp(&Out[I], &Want, sizeof(double)), 0)
            << "axpy, N " << N << ", tier " << simd::tierName(T);
      }
      std::copy(A.begin(), A.end(), Out.begin());
      simd::addScalar(Out.data(), C, N);
      EXPECT_EQ(std::memcmp(Out.data(), RefAdd.data(), N * sizeof(double)),
                0)
          << "addScalar, N " << N << ", tier " << simd::tierName(T);
      simd::standardize(Out.data(), A.data(), Mean, Scale, N);
      EXPECT_EQ(std::memcmp(Out.data(), RefStd.data(), N * sizeof(double)),
                0)
          << "standardize, N " << N << ", tier " << simd::tierName(T);
    }
  }
  simd::setActiveTier(Best);
}
