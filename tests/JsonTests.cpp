//===- tests/JsonTests.cpp - JSON reader/writer tests ---------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "support/Json.h"
#include <cmath>
#include <cstdint>
#include <cstring>
#include <gtest/gtest.h>
#include <limits>

using namespace opprox;

namespace {

/// Bitwise equality, so -0.0 vs 0.0 and every NaN-free pattern is checked
/// exactly rather than through operator==.
bool sameBits(double A, double B) {
  uint64_t Ab, Bb;
  std::memcpy(&Ab, &A, sizeof(double));
  std::memcpy(&Bb, &B, sizeof(double));
  return Ab == Bb;
}

} // namespace

TEST(JsonTest, ParsesPrimitives) {
  EXPECT_TRUE(Json::parse("null")->isNull());
  EXPECT_TRUE(Json::parse("true")->asBool());
  EXPECT_FALSE(Json::parse("false")->asBool());
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2")->asNumber(), -1250.0);
  EXPECT_EQ(Json::parse("\"hi\"")->asString(), "hi");
}

TEST(JsonTest, ParsesStringEscapes) {
  Expected<Json> J = Json::parse(R"("a\"b\\c\nd\teA")");
  ASSERT_TRUE(J);
  EXPECT_EQ(J->asString(), "a\"b\\c\nd\teA");
}

TEST(JsonTest, ParsesNestedStructures) {
  Expected<Json> J =
      Json::parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(J);
  ASSERT_TRUE(J->isObject());
  const Json *A = J->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->size(), 3u);
  EXPECT_DOUBLE_EQ(A->at(1).asNumber(), 2.0);
  EXPECT_TRUE(A->at(2).find("b")->asBool());
  EXPECT_TRUE(J->find("c")->find("d")->isNull());
  EXPECT_EQ(J->find("missing"), nullptr);
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
  Json Obj = Json::object();
  Obj.set("zebra", 1);
  Obj.set("alpha", 2);
  Obj.set("mid", 3);
  EXPECT_EQ(Obj.dump(), R"({"zebra":1,"alpha":2,"mid":3})");
  // Replacing a member keeps its original position.
  Obj.set("alpha", 9);
  EXPECT_EQ(Obj.dump(), R"({"zebra":1,"alpha":9,"mid":3})");
}

TEST(JsonTest, DumpIsDeterministic) {
  Json Obj = Json::object();
  Obj.set("values", Json::numberArray<double>({1.5, -2.25, 1e-3}));
  Obj.set("name", "det");
  EXPECT_EQ(Obj.dump(2), Obj.dump(2));
  // Parse of the dump dumps identically (full fixed point).
  Expected<Json> Back = Json::parse(Obj.dump(2));
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->dump(2), Obj.dump(2));
}

TEST(JsonTest, DoublesRoundTripBitExactly) {
  const double Cases[] = {0.0,
                          -0.0,
                          0.1,
                          1.0 / 3.0,
                          M_PI,
                          1e-308, // Near the subnormal boundary.
                          std::numeric_limits<double>::denorm_min(),
                          std::numeric_limits<double>::max(),
                          std::numeric_limits<double>::min(),
                          -123456789.123456789,
                          6.62607015e-34};
  for (double D : Cases) {
    Json Arr = Json::array();
    Arr.push(D);
    Expected<Json> Back = Json::parse(Arr.dump());
    ASSERT_TRUE(Back) << Back.error().message();
    EXPECT_TRUE(sameBits(Back->at(0).asNumber(), D))
        << "double " << D << " did not round-trip bit-exactly";
  }
}

TEST(JsonTest, ParseErrorsCarryLineAndColumn) {
  Expected<Json> J = Json::parse("{\n  \"a\": 1,\n  oops\n}");
  ASSERT_FALSE(J);
  EXPECT_NE(J.error().message().find("line 3"), std::string::npos)
      << J.error().message();
}

TEST(JsonTest, RejectsTruncatedDocuments) {
  for (const char *Text : {"{\"a\": ", "[1, 2", "\"unterminated", "{", "-"}) {
    Expected<Json> J = Json::parse(Text);
    EXPECT_FALSE(J) << "accepted truncated input: " << Text;
  }
}

TEST(JsonTest, RejectsTrailingGarbage) {
  Expected<Json> J = Json::parse("{\"a\": 1} extra");
  ASSERT_FALSE(J);
  EXPECT_NE(J.error().message().find("trailing"), std::string::npos)
      << J.error().message();
}

TEST(JsonTest, TypedGettersReportMissingAndMistypedFields) {
  Expected<Json> Obj = Json::parse(R"({"n": 1.5, "s": "x", "v": [1, "two"]})");
  ASSERT_TRUE(Obj);

  Expected<double> Missing = getNumber(*Obj, "absent");
  ASSERT_FALSE(Missing);
  EXPECT_NE(Missing.error().message().find("absent"), std::string::npos);

  Expected<std::string> Mistyped = getString(*Obj, "n");
  ASSERT_FALSE(Mistyped);

  // A non-integer where an integer is required.
  EXPECT_FALSE(getSize(*Obj, "n"));
  // A mixed-type array where numbers are required.
  EXPECT_FALSE(getNumberVector(*Obj, "v"));
}

TEST(JsonTest, SizeGetterRejectsNegatives) {
  Expected<Json> Obj = Json::parse(R"({"count": -3})");
  ASSERT_TRUE(Obj);
  EXPECT_FALSE(getSize(*Obj, "count"));
  Expected<long> AsInt = getInt(*Obj, "count");
  ASSERT_TRUE(AsInt);
  EXPECT_EQ(*AsInt, -3);
}

TEST(JsonTest, FileRoundTrip) {
  std::string Path = ::testing::TempDir() + "/opprox_json_test.json";
  Json Obj = Json::object();
  Obj.set("k", Json::numberArray<int>({1, 2, 3}));
  ASSERT_FALSE(writeFile(Path, Obj.dump(2) + "\n"));
  Expected<std::string> Text = readFile(Path);
  ASSERT_TRUE(Text);
  Expected<Json> Back = Json::parse(*Text);
  ASSERT_TRUE(Back);
  Expected<std::vector<int>> K = getIntVector(*Back, "k");
  ASSERT_TRUE(K);
  EXPECT_EQ(*K, (std::vector<int>{1, 2, 3}));
  std::remove(Path.c_str());

  Expected<std::string> Gone = readFile(Path + ".does-not-exist");
  ASSERT_FALSE(Gone);
  EXPECT_NE(Gone.error().message().find("cannot open"), std::string::npos)
      << Gone.error().message();
}
