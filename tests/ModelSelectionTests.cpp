//===- tests/ModelSelectionTests.cpp - Sec. 3.7 policy tests --------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/ModelSelection.h"
#include <cmath>
#include <cstring>
#include <gtest/gtest.h>

using namespace opprox;

namespace {

/// Target = quadratic in x; feature "noise" is pure noise.
Dataset makeWithNoiseFeature(size_t N, uint64_t Seed) {
  Rng R(Seed);
  Dataset D({"x", "noise"});
  for (size_t I = 0; I < N; ++I) {
    double X = R.uniform(-2, 2);
    double Noise = R.uniform(-5, 5);
    D.addSample({X, Noise}, 1 + X + 2 * X * X + R.gaussian(0, 0.02));
  }
  return D;
}

} // namespace

TEST(SelectTest, ReachesTargetOnCleanQuadratic) {
  Rng R(1);
  Dataset D = makeWithNoiseFeature(200, 2);
  ModelSelectOptions O;
  SelectedModel M = SelectedModel::train(D, O, R);
  EXPECT_GT(M.cvR2(), 0.95);
  EXPECT_GE(M.degree(), 2);
  EXPECT_NEAR(M.predict({1.0, 0.0}), 4.0, 0.2);
}

TEST(SelectTest, MicFilterDropsNoiseFeature) {
  Rng R(3);
  Dataset D = makeWithNoiseFeature(300, 4);
  ModelSelectOptions O;
  O.MicThreshold = 0.2;
  SelectedModel M = SelectedModel::train(D, O, R);
  ASSERT_EQ(M.keptFeatures().size(), 1u);
  EXPECT_EQ(M.keptFeatures()[0], 0u); // "x" survives, "noise" dropped.
}

TEST(SelectTest, FilterDisabledKeepsAll) {
  Rng R(5);
  Dataset D = makeWithNoiseFeature(100, 6);
  ModelSelectOptions O;
  O.MicThreshold = 0.0;
  SelectedModel M = SelectedModel::train(D, O, R);
  EXPECT_EQ(M.keptFeatures().size(), 2u);
}

TEST(SelectTest, AllFeaturesUselessKeepsAll) {
  // Target independent of both features: nothing clears the MIC bar, so
  // the policy keeps everything rather than fitting on nothing.
  Rng R(7);
  Dataset D({"a", "b"});
  for (int I = 0; I < 100; ++I)
    D.addSample({R.uniform(), R.uniform()}, R.uniform());
  ModelSelectOptions O;
  O.MicThreshold = 0.5;
  SelectedModel M = SelectedModel::train(D, O, R);
  EXPECT_EQ(M.keptFeatures().size(), 2u);
}

TEST(SelectTest, SubcategorySplitOnPiecewiseData) {
  // A step discontinuity no global low-degree polynomial can fit well:
  // the Sec. 3.7 fallback splits on the informative feature.
  Rng R(8);
  Dataset D({"x"});
  for (int I = 0; I < 300; ++I) {
    double X = R.uniform(0, 10);
    double T = X < 5 ? std::sin(3 * X) : 40 + X * X;
    D.addSample({X}, T + R.gaussian(0, 0.01));
  }
  ModelSelectOptions O;
  O.MaxDegree = 2;
  O.TargetR2 = 0.999;
  SelectedModel M = SelectedModel::train(D, O, R);
  EXPECT_GE(M.numSubmodels(), 2u);
}

TEST(SelectTest, PredictBatchMatchesPredictBitwiseAcrossSplits) {
  // A forced-split model exercises the gather/scatter batch path: rows
  // route to different submodels, yet every row's result must be
  // bit-identical to the scalar predict.
  Rng R(11);
  Dataset D({"x", "y"});
  for (int I = 0; I < 300; ++I) {
    double X = R.uniform(0, 10);
    double Y = R.uniform(-1, 1);
    double T = (X < 5 ? std::sin(3 * X) : 40 + X * X) + 0.5 * Y;
    D.addSample({X, Y}, T + R.gaussian(0, 0.01));
  }
  ModelSelectOptions O;
  O.MaxDegree = 2;
  O.TargetR2 = 0.999;
  SelectedModel M = SelectedModel::train(D, O, R);
  ASSERT_GE(M.numSubmodels(), 2u) << "dataset failed to force a split";

  size_t N = 64;
  Matrix X(N, 2);
  for (size_t I = 0; I < N; ++I) {
    X.at(I, 0) = R.uniform(0, 10); // Straddles the split boundary.
    X.at(I, 1) = R.uniform(-1, 1);
  }
  SelectedModel::BatchScratch S;
  std::vector<double> Out;
  M.predictBatch(X, Out, S);
  ASSERT_EQ(Out.size(), N);
  for (size_t I = 0; I < N; ++I) {
    double Scalar = M.predict({X.at(I, 0), X.at(I, 1)});
    EXPECT_EQ(std::memcmp(&Out[I], &Scalar, sizeof(double)), 0)
        << "row " << I << ": " << Out[I] << " vs " << Scalar;
  }
}

TEST(SelectTest, BoundsOverContainsPredictionsAcrossSplits) {
  Rng R(12);
  Dataset D({"x"});
  for (int I = 0; I < 300; ++I) {
    double X = R.uniform(0, 10);
    double T = X < 5 ? std::sin(3 * X) : 40 + X * X;
    D.addSample({X}, T + R.gaussian(0, 0.01));
  }
  ModelSelectOptions O;
  O.MaxDegree = 2;
  O.TargetR2 = 0.999;
  SelectedModel M = SelectedModel::train(D, O, R);
  ASSERT_GE(M.numSubmodels(), 2u);

  // Boxes straddling the split boundary must hull every reachable
  // submodel's range.
  for (int Trial = 0; Trial < 20; ++Trial) {
    double A = R.uniform(0, 10), B = R.uniform(0, 10);
    std::vector<double> Lo = {std::min(A, B)};
    std::vector<double> Hi = {std::max(A, B)};
    auto [BLo, BHi] = M.boundsOver(Lo, Hi);
    ASSERT_LE(BLo, BHi);
    for (int S = 0; S < 50; ++S) {
      double P = M.predict({R.uniform(Lo[0], Hi[0])});
      EXPECT_GE(P, BLo) << "trial " << Trial;
      EXPECT_LE(P, BHi) << "trial " << Trial;
    }
  }
}

TEST(SelectTest, NoSplitWhenDataScarce) {
  Rng R(9);
  Dataset D({"x"});
  for (int I = 0; I < 30; ++I) {
    double X = R.uniform(0, 10);
    D.addSample({X}, X < 5 ? 0.0 : 100.0);
  }
  ModelSelectOptions O;
  O.MinSubcategorySamples = 50; // More than available.
  SelectedModel M = SelectedModel::train(D, O, R);
  EXPECT_EQ(M.numSubmodels(), 1u);
}

TEST(SelectTest, BoundsBracketPrediction) {
  Rng R(10);
  Dataset D = makeWithNoiseFeature(150, 11);
  ModelSelectOptions O;
  SelectedModel M = SelectedModel::train(D, O, R);
  std::vector<double> X = {0.7, 1.0};
  double Pred = M.predict(X);
  EXPECT_LE(M.lowerBound(X, 0.99), Pred);
  EXPECT_GE(M.upperBound(X, 0.99), Pred);
  // Higher coverage -> wider interval.
  EXPECT_LE(M.upperBound(X, 0.5), M.upperBound(X, 0.99));
}

TEST(SelectTest, ConfidenceIntervalHasResiduals) {
  Rng R(12);
  Dataset D = makeWithNoiseFeature(100, 13);
  ModelSelectOptions O;
  SelectedModel M = SelectedModel::train(D, O, R);
  EXPECT_GT(M.confidence().numResiduals(), 50u);
}

TEST(SelectTest, OutOfFoldIntervalCoversFreshData) {
  // The 0.95 interval from out-of-fold residuals should cover roughly
  // >= 90% of fresh draws from the same process.
  Rng R(14);
  Dataset Train = makeWithNoiseFeature(300, 15);
  ModelSelectOptions O;
  SelectedModel M = SelectedModel::train(Train, O, R);
  Dataset Fresh = makeWithNoiseFeature(300, 16);
  double HW = M.confidence().halfWidth(0.95);
  size_t Covered = 0;
  for (size_t I = 0; I < Fresh.numSamples(); ++I)
    Covered += std::fabs(M.predict(Fresh.sample(I)) - Fresh.target(I)) <= HW;
  EXPECT_GT(static_cast<double>(Covered) / Fresh.numSamples(), 0.85);
}

/// Degree escalation should stop at (or near) the generating degree.
class SelectDegreeTest : public testing::TestWithParam<int> {};

TEST_P(SelectDegreeTest, EscalatesToGeneratingDegree) {
  int TrueDegree = GetParam();
  Rng R(static_cast<uint64_t>(20 + TrueDegree));
  Dataset D({"x"});
  for (int I = 0; I < 220; ++I) {
    double X = R.uniform(-1.5, 1.5);
    // Pure monomial: lower degrees cannot reach the strict target.
    D.addSample({X}, std::pow(X, TrueDegree) + R.gaussian(0, 0.001));
  }
  ModelSelectOptions O;
  O.TargetR2 = 0.999;
  SelectedModel M = SelectedModel::train(D, O, R);
  EXPECT_GE(M.degree(), TrueDegree);
  EXPECT_GT(M.cvR2(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(Degrees, SelectDegreeTest, testing::Range(2, 6));
