//===- tests/MlTests.cpp - ML building-block tests ------------------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "ml/ConfidenceInterval.h"
#include "ml/CrossValidation.h"
#include "ml/Dataset.h"
#include "ml/DecisionTree.h"
#include "ml/Mic.h"
#include "ml/PolynomialFeatures.h"
#include "ml/PolynomialRegression.h"
#include "support/AlignedBuffer.h"
#include "support/Simd.h"
#include <cmath>
#include <cstring>
#include <gtest/gtest.h>
#include <set>

using namespace opprox;

//===----------------------------------------------------------------------===//
// Dataset
//===----------------------------------------------------------------------===//

TEST(DatasetTest, AddAndAccess) {
  Dataset D({"a", "b"});
  D.addSample({1, 2}, 10);
  D.addSample({3, 4}, 20);
  EXPECT_EQ(D.numSamples(), 2u);
  EXPECT_EQ(D.numFeatures(), 2u);
  EXPECT_DOUBLE_EQ(D.target(1), 20);
  EXPECT_EQ(D.featureColumn(1), (std::vector<double>{2, 4}));
  EXPECT_EQ(D.featureIndex("b"), 1u);
}

TEST(DatasetTest, SelectFeaturesAndRows) {
  Dataset D({"a", "b", "c"});
  D.addSample({1, 2, 3}, 1);
  D.addSample({4, 5, 6}, 2);
  Dataset F = D.selectFeatures({2, 0});
  EXPECT_EQ(F.featureNames(), (std::vector<std::string>{"c", "a"}));
  EXPECT_EQ(F.sample(1), (std::vector<double>{6, 4}));
  Dataset R = D.selectRows({1});
  EXPECT_EQ(R.numSamples(), 1u);
  EXPECT_DOUBLE_EQ(R.target(0), 2);
}

//===----------------------------------------------------------------------===//
// PolynomialFeatures
//===----------------------------------------------------------------------===//

TEST(PolyFeatTest, TermCounts) {
  EXPECT_EQ(PolynomialFeatures::countTerms(2, 2), 6u);   // 1,x,y,x2,xy,y2.
  EXPECT_EQ(PolynomialFeatures::countTerms(3, 1), 4u);
  EXPECT_EQ(PolynomialFeatures::countTerms(1, 5), 6u);
  EXPECT_EQ(PolynomialFeatures::countTerms(4, 0), 1u);
  PolynomialFeatures B(2, 2);
  EXPECT_EQ(B.numTerms(), 6u);
}

TEST(PolyFeatTest, ExpandMatchesMonomials) {
  PolynomialFeatures B(2, 2);
  std::vector<double> E = B.expand({2.0, 3.0});
  // Every monomial of degree <= 2 must appear exactly once.
  std::multiset<double> Got(E.begin(), E.end());
  std::multiset<double> Want = {1, 2, 3, 4, 6, 9};
  EXPECT_EQ(Got, Want);
}

TEST(PolyFeatTest, DegreeZeroIsConstant) {
  PolynomialFeatures B(3, 0);
  EXPECT_EQ(B.numTerms(), 1u);
  EXPECT_EQ(B.expand({5, 6, 7}), (std::vector<double>{1.0}));
}

TEST(PolyFeatTest, TermNames) {
  PolynomialFeatures B(2, 2);
  std::set<std::string> Names;
  for (size_t T = 0; T < B.numTerms(); ++T)
    Names.insert(B.termName(T, {"u", "v"}));
  EXPECT_TRUE(Names.count("1"));
  EXPECT_TRUE(Names.count("u*v"));
  EXPECT_TRUE(Names.count("v^2"));
}

//===----------------------------------------------------------------------===//
// PolynomialRegression
//===----------------------------------------------------------------------===//

namespace {
Dataset makeQuadratic(size_t N, double Noise, uint64_t Seed) {
  Rng R(Seed);
  Dataset D({"x", "y"});
  for (size_t I = 0; I < N; ++I) {
    double X = R.uniform(-2, 2), Y = R.uniform(-2, 2);
    double T = 3 + 2 * X - Y + 0.5 * X * Y + X * X;
    D.addSample({X, Y}, T + (Noise > 0 ? R.gaussian(0, Noise) : 0.0));
  }
  return D;
}
} // namespace

TEST(PolyRegTest, RecoversNoiselessQuadratic) {
  Dataset D = makeQuadratic(100, 0.0, 1);
  PolynomialRegression::Options O;
  O.Degree = 2;
  PolynomialRegression M = PolynomialRegression::fit(D, O);
  EXPECT_NEAR(M.r2(D), 1.0, 1e-9);
  EXPECT_NEAR(M.predict({1, 1}), 5.5, 1e-8);
  EXPECT_NEAR(M.predict({-1, 2}), 3 - 2 - 2 - 1 + 1, 1e-8);
}

TEST(PolyRegTest, StandardizationDoesNotChangeFit) {
  Dataset D = makeQuadratic(80, 0.1, 2);
  PolynomialRegression::Options O;
  O.Degree = 2;
  PolynomialRegression A = PolynomialRegression::fit(D, O);
  O.Standardize = false;
  PolynomialRegression B = PolynomialRegression::fit(D, O);
  EXPECT_NEAR(A.predict({0.5, -0.5}), B.predict({0.5, -0.5}), 1e-6);
}

TEST(PolyRegTest, UnderdeterminedFallsBackToRidge) {
  // 3 samples, degree 2 over 2 features = 6 terms: must not crash.
  Dataset D({"x", "y"});
  D.addSample({0, 0}, 1);
  D.addSample({1, 0}, 2);
  D.addSample({0, 1}, 3);
  PolynomialRegression::Options O;
  O.Degree = 2;
  PolynomialRegression M = PolynomialRegression::fit(D, O);
  // Ridge interpolates the training points closely.
  EXPECT_NEAR(M.predict({1, 0}), 2.0, 0.2);
}

TEST(PolyRegTest, LinearDegreeUnderfitsQuadratic) {
  Dataset D = makeQuadratic(100, 0.0, 3);
  PolynomialRegression::Options O;
  O.Degree = 1;
  PolynomialRegression M = PolynomialRegression::fit(D, O);
  EXPECT_LT(M.r2(D), 0.95);
}

TEST(PolyRegTest, PredictAllMatchesPredict) {
  Dataset D = makeQuadratic(20, 0.0, 4);
  PolynomialRegression::Options O;
  O.Degree = 2;
  PolynomialRegression M = PolynomialRegression::fit(D, O);
  std::vector<double> All = M.predictAll(D);
  for (size_t I = 0; I < D.numSamples(); ++I)
    EXPECT_DOUBLE_EQ(All[I], M.predict(D.sample(I)));
}

TEST(PolyRegTest, PredictBatchMatchesPredictBitwise) {
  Dataset D = makeQuadratic(60, 0.05, 7);
  PolynomialRegression::Options O;
  O.Degree = 3;
  PolynomialRegression M = PolynomialRegression::fit(D, O);

  Rng R(8);
  size_t N = 37; // Deliberately not a round batch size.
  Matrix X(N, 2);
  for (size_t I = 0; I < N; ++I) {
    X.at(I, 0) = R.uniform(-3, 3);
    X.at(I, 1) = R.uniform(-3, 3);
  }
  PolynomialRegression::Scratch S;
  std::vector<double> Out;
  M.predictBatch(X, Out, S);
  ASSERT_EQ(Out.size(), N);
  for (size_t I = 0; I < N; ++I) {
    double Scalar = M.predict({X.at(I, 0), X.at(I, 1)});
    EXPECT_EQ(std::memcmp(&Out[I], &Scalar, sizeof(double)), 0)
        << "row " << I << ": " << Out[I] << " vs " << Scalar;
  }

  // Batch composition must not change bits: the same row evaluated in a
  // batch of one gives the identical double.
  Matrix One(1, 2);
  One.at(0, 0) = X.at(5, 0);
  One.at(0, 1) = X.at(5, 1);
  std::vector<double> Single;
  M.predictBatch(One, Single, S);
  EXPECT_EQ(std::memcmp(&Single[0], &Out[5], sizeof(double)), 0);
}

TEST(PolyRegTest, SimdTiersMatchGenericBitwise) {
  // The vector kernels use the same expressions as the generic loops
  // (independent lanes, two-rounding axpy, no FMA), so every tier must
  // produce the generic bits exactly -- across degrees, batch sizes with
  // unaligned tails, and both batch entry points. On a host whose best
  // tier is already Generic this degenerates to a self-comparison; the
  // CI AVX2 leg carries the real cross-tier check.
  const simd::Tier Best = simd::activeTier();
  for (int Degree : {1, 2, 3, 4}) {
    Dataset D = makeQuadratic(70, 0.05, 11 + static_cast<uint64_t>(Degree));
    PolynomialRegression::Options O;
    O.Degree = Degree;
    PolynomialRegression M = PolynomialRegression::fit(D, O);

    for (size_t N : {1u, 3u, 5u, 7u, 8u, 13u, 31u, 100u}) {
      Rng R(1000 * static_cast<uint64_t>(Degree) + N);
      Matrix X(N, 2);
      for (size_t I = 0; I < N; ++I) {
        X.at(I, 0) = R.uniform(-3, 3);
        X.at(I, 1) = R.uniform(-3, 3);
      }

      PolynomialRegression::Scratch SG, SB;
      std::vector<double> OutG, OutB;
      ASSERT_EQ(simd::setActiveTier(simd::Tier::Generic),
                simd::Tier::Generic);
      M.predictBatch(X, OutG, SG);
      simd::setActiveTier(Best);
      M.predictBatch(X, OutB, SB);
      ASSERT_EQ(OutG.size(), N);
      ASSERT_EQ(OutB.size(), N);
      for (size_t I = 0; I < N; ++I)
        EXPECT_EQ(std::memcmp(&OutG[I], &OutB[I], sizeof(double)), 0)
            << "degree " << Degree << ", batch " << N << ", row " << I;

      // The columnar entry point, fed deliberately misaligned columns
      // (offset by one double) so the unaligned loads are exercised.
      size_t Stride = N + 1;
      std::vector<double> Cols(1 + 2 * Stride);
      for (size_t I = 0; I < N; ++I) {
        Cols[1 + I] = X.at(I, 0);
        Cols[1 + Stride + I] = X.at(I, 1);
      }
      std::vector<double> ColG, ColB;
      simd::setActiveTier(simd::Tier::Generic);
      M.predictBatchColumns(Cols.data() + 1, Stride, N, ColG, SG);
      simd::setActiveTier(Best);
      M.predictBatchColumns(Cols.data() + 1, Stride, N, ColB, SB);
      for (size_t I = 0; I < N; ++I) {
        EXPECT_EQ(std::memcmp(&ColG[I], &ColB[I], sizeof(double)), 0)
            << "columns, degree " << Degree << ", batch " << N;
        EXPECT_EQ(std::memcmp(&ColG[I], &OutG[I], sizeof(double)), 0)
            << "columns vs rows, degree " << Degree << ", batch " << N;
      }
    }
  }
  simd::setActiveTier(Best);
}

TEST(PolyRegTest, BoundsOverContainsBoxPredictions) {
  Dataset D = makeQuadratic(80, 0.1, 9);
  PolynomialRegression::Options O;
  O.Degree = 3;
  PolynomialRegression M = PolynomialRegression::fit(D, O);

  Rng R(10);
  for (int Trial = 0; Trial < 20; ++Trial) {
    double X0 = R.uniform(-2, 2), X1 = R.uniform(-2, 2);
    std::vector<double> Lo = {std::min(X0, X1) - R.uniform(0, 1),
                              R.uniform(-2, 0)};
    std::vector<double> Hi = {Lo[0] + R.uniform(0, 2),
                              Lo[1] + R.uniform(0, 2)};
    auto [BLo, BHi] = M.boundsOver(Lo, Hi);
    ASSERT_LE(BLo, BHi);
    for (int S = 0; S < 50; ++S) {
      double P = M.predict({R.uniform(Lo[0], Hi[0]),
                            R.uniform(Lo[1], Hi[1])});
      EXPECT_GE(P, BLo) << "trial " << Trial;
      EXPECT_LE(P, BHi) << "trial " << Trial;
    }
    // A degenerate (point) box still brackets the point prediction.
    auto [PLo, PHi] = M.boundsOver(Lo, Lo);
    double Point = M.predict(Lo);
    EXPECT_GE(Point, PLo);
    EXPECT_LE(Point, PHi);
  }
}

/// Degree sweep: exact recovery of a 1-D polynomial of each degree.
class PolyDegreeTest : public testing::TestWithParam<int> {};

TEST_P(PolyDegreeTest, ExactRecoveryAtMatchingDegree) {
  int Degree = GetParam();
  Rng R(static_cast<uint64_t>(Degree));
  Dataset D({"x"});
  for (int I = 0; I < 80; ++I) {
    double X = R.uniform(-1.5, 1.5);
    double T = 0;
    for (int K = 0; K <= Degree; ++K)
      T += std::pow(X, K) * (K + 1);
    D.addSample({X}, T);
  }
  PolynomialRegression::Options O;
  O.Degree = Degree;
  PolynomialRegression M = PolynomialRegression::fit(D, O);
  EXPECT_GT(M.r2(D), 1.0 - 1e-8) << "degree " << Degree;
}

INSTANTIATE_TEST_SUITE_P(Degrees, PolyDegreeTest, testing::Range(1, 7));

//===----------------------------------------------------------------------===//
// Cross-validation
//===----------------------------------------------------------------------===//

TEST(CvTest, FoldsPartitionIndices) {
  Rng R(5);
  auto Folds = kFoldIndices(23, 5, R);
  EXPECT_EQ(Folds.size(), 5u);
  std::set<size_t> All;
  for (const auto &Fold : Folds) {
    EXPECT_FALSE(Fold.empty());
    for (size_t I : Fold) {
      EXPECT_TRUE(All.insert(I).second) << "duplicate index";
      EXPECT_LT(I, 23u);
    }
  }
  EXPECT_EQ(All.size(), 23u);
}

TEST(CvTest, FoldsClampToSampleCount) {
  Rng R(5);
  auto Folds = kFoldIndices(3, 10, R);
  EXPECT_EQ(Folds.size(), 3u);
}

TEST(CvTest, CleanDataScoresHigh) {
  Dataset D = makeQuadratic(150, 0.02, 6);
  PolynomialRegression::Options O;
  O.Degree = 2;
  Rng R(7);
  EXPECT_GT(crossValidatedR2(D, O, 10, R), 0.99);
}

TEST(CvTest, WrongDegreeScoresLower) {
  Dataset D = makeQuadratic(150, 0.02, 8);
  PolynomialRegression::Options O;
  O.Degree = 1;
  Rng R(7);
  EXPECT_LT(crossValidatedR2(D, O, 10, R), 0.95);
}

TEST(CvTest, TrainTestSplitDisjointAndComplete) {
  Rng R(9);
  std::vector<size_t> Train, Test;
  trainTestSplit(100, 0.3, R, Train, Test);
  EXPECT_EQ(Test.size(), 30u);
  EXPECT_EQ(Train.size(), 70u);
  std::set<size_t> All(Train.begin(), Train.end());
  for (size_t I : Test)
    EXPECT_TRUE(All.insert(I).second);
  EXPECT_EQ(All.size(), 100u);
}

//===----------------------------------------------------------------------===//
// ConfidenceInterval
//===----------------------------------------------------------------------===//

TEST(ConfidenceTest, HalfWidthQuantiles) {
  // |residuals| = 1..10.
  std::vector<double> R;
  for (int I = 1; I <= 10; ++I)
    R.push_back(I % 2 ? I : -I);
  ConfidenceInterval CI = ConfidenceInterval::fromResiduals(R);
  EXPECT_DOUBLE_EQ(CI.halfWidth(1.0), 10.0);
  EXPECT_DOUBLE_EQ(CI.halfWidth(0.5), 5.0);
  EXPECT_DOUBLE_EQ(CI.halfWidth(0.0), 0.0);
}

TEST(ConfidenceTest, BoundsBracketPrediction) {
  ConfidenceInterval CI = ConfidenceInterval::fromResiduals({1, -2, 3});
  EXPECT_DOUBLE_EQ(CI.upperBound(10.0, 1.0), 13.0);
  EXPECT_DOUBLE_EQ(CI.lowerBound(10.0, 1.0), 7.0);
}

TEST(ConfidenceTest, EmptyResidualsAreZeroWidth) {
  ConfidenceInterval CI;
  EXPECT_DOUBLE_EQ(CI.halfWidth(0.99), 0.0);
}

TEST(ConfidenceTest, CoverageProperty) {
  // Gaussian residuals: the p=0.9 half width must cover ~90% of a fresh
  // sample from the same distribution.
  Rng R(11);
  std::vector<double> Residuals;
  for (int I = 0; I < 2000; ++I)
    Residuals.push_back(R.gaussian(0, 2));
  ConfidenceInterval CI = ConfidenceInterval::fromResiduals(Residuals);
  double HW = CI.halfWidth(0.9);
  size_t Covered = 0;
  for (int I = 0; I < 2000; ++I)
    Covered += std::fabs(R.gaussian(0, 2)) <= HW;
  EXPECT_NEAR(static_cast<double>(Covered) / 2000, 0.9, 0.03);
}

//===----------------------------------------------------------------------===//
// DecisionTree
//===----------------------------------------------------------------------===//

TEST(TreeTest, PureLabelsYieldSingleLeaf) {
  std::vector<std::vector<double>> X = {{1}, {2}, {3}};
  std::vector<int> Y = {7, 7, 7};
  DecisionTree T = DecisionTree::fit(X, Y);
  EXPECT_EQ(T.numNodes(), 1u);
  EXPECT_EQ(T.predict({99}), 7);
}

TEST(TreeTest, SimpleThresholdSplit) {
  std::vector<std::vector<double>> X = {{1}, {2}, {3}, {10}, {11}, {12}};
  std::vector<int> Y = {0, 0, 0, 1, 1, 1};
  DecisionTree T = DecisionTree::fit(X, Y);
  EXPECT_EQ(T.predict({0}), 0);
  EXPECT_EQ(T.predict({20}), 1);
  EXPECT_EQ(T.depth(), 1u);
  EXPECT_EQ(T.numLeaves(), 2u);
}

TEST(TreeTest, LearnsConjunctionWithTwoLevels) {
  // a AND b requires two nested splits (greedy CART cannot learn XOR,
  // but conjunctions it handles exactly).
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (double A : {0.0, 0.3, 0.7, 1.0})
    for (double B : {0.0, 0.3, 0.7, 1.0}) {
      X.push_back({A, B});
      Y.push_back(A > 0.5 && B > 0.5 ? 1 : 0);
    }
  DecisionTree T = DecisionTree::fit(X, Y);
  EXPECT_DOUBLE_EQ(T.accuracy(X, Y), 1.0);
  EXPECT_GE(T.depth(), 2u);
}

TEST(TreeTest, MaxDepthLimitsTree) {
  Rng R(13);
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int I = 0; I < 200; ++I) {
    double A = R.uniform(), B = R.uniform();
    X.push_back({A, B});
    Y.push_back(static_cast<int>(A * 4) ^ static_cast<int>(B * 4));
  }
  DecisionTree::Options O;
  O.MaxDepth = 2;
  DecisionTree T = DecisionTree::fit(X, Y, O);
  EXPECT_LE(T.depth(), 2u);
}

TEST(TreeTest, MinSamplesLeafRespected) {
  std::vector<std::vector<double>> X = {{1}, {2}, {3}, {4}};
  std::vector<int> Y = {0, 1, 0, 1};
  DecisionTree::Options O;
  O.MinSamplesLeaf = 3;
  DecisionTree T = DecisionTree::fit(X, Y, O);
  // No split can give both sides >= 3 samples out of 4.
  EXPECT_EQ(T.numNodes(), 1u);
}

TEST(TreeTest, MultiClassSeparable) {
  std::vector<std::vector<double>> X;
  std::vector<int> Y;
  for (int C = 0; C < 4; ++C)
    for (int I = 0; I < 10; ++I) {
      X.push_back({C * 10.0 + I * 0.1, 0.0});
      Y.push_back(C);
    }
  DecisionTree T = DecisionTree::fit(X, Y);
  EXPECT_DOUBLE_EQ(T.accuracy(X, Y), 1.0);
  EXPECT_EQ(T.predict({15.0, 0.0}), 1);
}

TEST(TreeTest, DumpMentionsFeatureNames) {
  std::vector<std::vector<double>> X = {{1, 0}, {5, 0}};
  std::vector<int> Y = {0, 1};
  DecisionTree T = DecisionTree::fit(X, Y);
  std::string Dump = T.dump({"speed", "mass"});
  EXPECT_NE(Dump.find("speed"), std::string::npos);
  EXPECT_NE(Dump.find("leaf"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// MIC
//===----------------------------------------------------------------------===//

namespace {
std::pair<std::vector<double>, std::vector<double>> micSeries(
    uint64_t Seed, const char *Kind) {
  Rng R(Seed);
  std::vector<double> X, Y;
  for (int I = 0; I < 400; ++I) {
    double XV = R.uniform(-3, 3);
    X.push_back(XV);
    if (std::string(Kind) == "independent")
      Y.push_back(R.uniform(-3, 3));
    else if (std::string(Kind) == "linear")
      Y.push_back(2 * XV + 1);
    else if (std::string(Kind) == "quadratic")
      Y.push_back(XV * XV);
    else
      Y.push_back(std::sin(2 * XV));
  }
  return {X, Y};
}
} // namespace

TEST(MicTest, IndependentNearZero) {
  auto [X, Y] = micSeries(1, "independent");
  EXPECT_LT(mic(X, Y), 0.25);
}

TEST(MicTest, LinearNearOne) {
  auto [X, Y] = micSeries(2, "linear");
  EXPECT_GT(mic(X, Y), 0.9);
}

TEST(MicTest, QuadraticHigh) {
  auto [X, Y] = micSeries(3, "quadratic");
  EXPECT_GT(mic(X, Y), 0.7);
}

TEST(MicTest, SineHigherThanNoise) {
  auto [X, Y] = micSeries(4, "sine");
  auto [XN, YN] = micSeries(5, "independent");
  EXPECT_GT(mic(X, Y), mic(XN, YN) + 0.2);
}

TEST(MicTest, ConstantSeriesZero) {
  std::vector<double> X(100, 1.0), Y;
  Rng R(6);
  for (int I = 0; I < 100; ++I)
    Y.push_back(R.uniform());
  EXPECT_DOUBLE_EQ(mic(X, Y), 0.0);
}

TEST(MicTest, TinySampleZero) {
  EXPECT_DOUBLE_EQ(mic({1, 2, 3}, {1, 2, 3}), 0.0);
}

TEST(MicTest, EqualFrequencyBinsBalanced) {
  std::vector<double> V;
  for (int I = 0; I < 12; ++I)
    V.push_back(I);
  size_t Used = 0;
  std::vector<size_t> Bins = equalFrequencyBins(V, 4, Used);
  EXPECT_EQ(Used, 4u);
  std::vector<int> Counts(4, 0);
  for (size_t B : Bins)
    ++Counts[B];
  for (int C : Counts)
    EXPECT_EQ(C, 3);
}

TEST(MicTest, TiesShareABin) {
  std::vector<double> V = {1, 1, 1, 1, 2, 3};
  size_t Used = 0;
  std::vector<size_t> Bins = equalFrequencyBins(V, 3, Used);
  EXPECT_EQ(Bins[0], Bins[3]); // All the 1s together.
}

TEST(MicTest, MutualInformationOfIdenticalBins) {
  // X == Y with 2 uniform bins: MI = 1 bit.
  std::vector<size_t> B = {0, 1, 0, 1, 0, 1, 0, 1};
  EXPECT_NEAR(mutualInformation(B, B, 2, 2), 1.0, 1e-12);
}

TEST(MicTest, MutualInformationOfIndependentBins) {
  std::vector<size_t> X = {0, 0, 1, 1};
  std::vector<size_t> Y = {0, 1, 0, 1};
  EXPECT_NEAR(mutualInformation(X, Y, 2, 2), 0.0, 1e-12);
}
