//===- tests/ControllerConcurrencyTests.cpp - control vs. shards ----------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// TSan-facing suite (run under the sanitizer CI job): online controllers
// ingesting drifting feedback race serve-shard-style optimize calls
// through one shared OpproxRuntime -- one planner, one schedule cache,
// one scan pool. The contract: a controller instance belongs to one
// thread (OnlineController.h documents non-thread-safety), but any
// number of controllers and plain optimize callers may hammer the
// shared planner concurrently, and every decision stays bit-identical
// to a serial replay.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "control/ControlSim.h"
#include "core/OfflineTrainer.h"
#include "core/OpproxRuntime.h"
#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace opprox;
using namespace opprox::control;

namespace {

/// One cheap trained artifact shared by every test in this file.
const OpproxArtifact &testArtifact() {
  static OpproxArtifact Art = [] {
    auto App = createApp("pso");
    OpproxTrainOptions Opts;
    Opts.Profiling.RandomJointSamples = 6;
    Opts.TrainingInputs = {{30, 5}, {45, 6}};
    return OfflineTrainer::train(*App, Opts).Artifact;
  }();
  return Art;
}

std::vector<double> testInput() { return {30, 5}; }

ControllerOptions reactiveOptions() {
  ControllerOptions Opts;
  Opts.Optimize.Conservative = false;
  Opts.DistrustFactor = 0.0;
  Opts.RatioAlpha = 1.0;
  return Opts;
}

DriftSpec suddenDrift(double Magnitude) {
  DriftSpec D;
  D.DriftKind = DriftSpec::Kind::Sudden;
  D.Magnitude = Magnitude;
  D.Onset = 0.0;
  return D;
}

} // namespace

TEST(ControllerConcurrencyTest, FeedbackIngestionRacesShardOptimizesSafely) {
  // The serving topology under --online-control: shard threads answer
  // plain optimize requests while controller-carrying requests re-solve
  // tails -- all through the same planner, schedule cache, and shared
  // scan pool (ScanThreads 2 makes cache-miss solves fan out, so pool
  // workers of different origins interleave).
  OpproxRuntime Rt = OpproxRuntime::fromArtifact(testArtifact());
  PlannerOptions Planner;
  Planner.ScanThreads = 2;
  Rt.configurePlanner(Planner);

  constexpr int OptimizerThreads = 3;
  constexpr int ControllerThreads = 3;
  constexpr int RoundsPerThread = 8;

  // Serial reference decisions, established before going concurrent.
  std::vector<std::string> SerialSchedules;
  for (int Round = 0; Round < RoundsPerThread; ++Round) {
    double Budget = 2.0 + Round;
    SerialSchedules.push_back(
        Rt.optimizeDetailed(testInput(), Budget).Schedule.toString());
  }
  Expected<SimOutcome> SerialSim = runScriptedSim(
      Rt, testInput(), 10.0, suddenDrift(4.0), reactiveOptions());
  ASSERT_TRUE(static_cast<bool>(SerialSim)) << SerialSim.error().message();

  std::atomic<bool> Start{false};
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;

  for (int T = 0; T < OptimizerThreads; ++T)
    Threads.emplace_back([&, T] {
      while (!Start.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int Round = 0; Round < RoundsPerThread; ++Round) {
        double Budget = 2.0 + ((Round + T) % RoundsPerThread);
        OptimizationResult R = Rt.optimizeDetailed(testInput(), Budget);
        size_t Index = static_cast<size_t>((Round + T) % RoundsPerThread);
        if (R.Schedule.toString() != SerialSchedules[Index])
          Mismatches.fetch_add(1, std::memory_order_relaxed);
        // Tail re-solves from every phase share the same cache shards.
        size_t First = 1 + static_cast<size_t>(Round) % 3;
        Expected<OptimizationResult> Tail =
            Rt.tryOptimizeTail(testInput(), Budget, First);
        if (!Tail)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });

  for (int T = 0; T < ControllerThreads; ++T)
    Threads.emplace_back([&] {
      while (!Start.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int Round = 0; Round < RoundsPerThread; ++Round) {
        // Each iteration runs a full drifting control loop -- initial
        // solve, distrusts, tail re-solves -- against the shared
        // runtime. One controller per iteration, never shared.
        Expected<SimOutcome> O = runScriptedSim(
            Rt, testInput(), 10.0, suddenDrift(4.0), reactiveOptions());
        if (!O ||
            O->FinalSchedule.toString() !=
                SerialSim->FinalSchedule.toString() ||
            O->Stats.Corrections != SerialSim->Stats.Corrections)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });

  Start.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
}

TEST(ControllerConcurrencyTest, MixedDriftTracesStayDeterministicUnderLoad) {
  // Different drift kinds re-solve from different phases with different
  // budgets: the cache sees a broad key mix while every thread checks
  // its own trace against a serial replay.
  OpproxRuntime Rt = OpproxRuntime::fromArtifact(testArtifact());
  PlannerOptions Planner;
  Planner.ScanThreads = 2;
  Rt.configurePlanner(Planner);

  std::vector<DriftSpec> Specs;
  Specs.push_back(suddenDrift(2.0));
  Specs.push_back(suddenDrift(-0.9));
  {
    DriftSpec Gradual;
    Gradual.DriftKind = DriftSpec::Kind::Gradual;
    Gradual.Magnitude = 4.0;
    Gradual.Onset = 0.25;
    Specs.push_back(Gradual);
  }
  {
    DriftSpec Noise;
    Noise.DriftKind = DriftSpec::Kind::Noise;
    Noise.Magnitude = 2.0;
    Noise.Seed = 7;
    Specs.push_back(Noise);
  }

  std::vector<SimOutcome> Serial;
  for (const DriftSpec &Spec : Specs) {
    Expected<SimOutcome> O = runScriptedSim(Rt, testInput(), 10.0, Spec,
                                            reactiveOptions());
    ASSERT_TRUE(static_cast<bool>(O)) << O.error().message();
    Serial.push_back(std::move(*O));
  }

  std::atomic<bool> Start{false};
  std::atomic<int> Mismatches{0};
  std::vector<std::thread> Threads;
  for (size_t T = 0; T < Specs.size(); ++T)
    Threads.emplace_back([&, T] {
      while (!Start.load(std::memory_order_acquire))
        std::this_thread::yield();
      for (int Round = 0; Round < 6; ++Round) {
        Expected<SimOutcome> O = runScriptedSim(
            Rt, testInput(), 10.0, Specs[T], reactiveOptions());
        if (!O || O->ScheduleTrace != Serial[T].ScheduleTrace ||
            O->Stats.Distrusts != Serial[T].Stats.Distrusts)
          Mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  Start.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0);
}
