//===- tests/IntegrationTests.cpp - end-to-end pipeline tests -------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/Opprox.h"
#include "core/OracleBaseline.h"
#include <gtest/gtest.h>

using namespace opprox;

TEST(IntegrationTest, TrainOptimizeEvaluatePso) {
  auto App = createApp("pso");
  OpproxTrainOptions Opts;
  Opts.Profiling.RandomJointSamples = 12;
  Opprox Tuner = Opprox::train(*App, Opts);
  EXPECT_EQ(Tuner.numPhases(), 4u);
  EXPECT_GT(Tuner.trainingRuns(), 100u);
  EXPECT_EQ(Tuner.trainingData().size(), Tuner.trainingRuns());

  const std::vector<double> In = App->defaultInput();
  PhaseSchedule S = Tuner.optimize(In, 20.0);
  EvalOutcome Truth = evaluateSchedule(*App, Tuner.golden(), In, S);
  EXPECT_GT(Truth.Speedup, 1.0);
  // Ground truth may exceed the budget by model error, but not wildly.
  EXPECT_LT(Truth.QosDegradation, 60.0);
}

TEST(IntegrationTest, AutoPhaseDetectionPath) {
  auto App = createApp("pso");
  OpproxTrainOptions Opts;
  Opts.NumPhases = 0; // Run Algorithm 1.
  Opts.PhaseDetection.ProbeConfigs = 3;
  Opts.Profiling.RandomJointSamples = 8;
  Opprox Tuner = Opprox::train(*App, Opts);
  EXPECT_TRUE(Tuner.numPhases() == 2 || Tuner.numPhases() == 4 ||
              Tuner.numPhases() == 8);
}

TEST(IntegrationTest, ExplicitTrainingInputsRespected) {
  auto App = createApp("pso");
  OpproxTrainOptions Opts;
  Opts.TrainingInputs = {{30, 5}, {60, 8}};
  Opts.Profiling.RandomJointSamples = 6;
  Opprox Tuner = Opprox::train(*App, Opts);
  // (3 blocks x 5 local + 6 joint) x 5 schedules x 2 inputs = 210.
  EXPECT_EQ(Tuner.trainingData().size(), 210u);
}

TEST(IntegrationTest, TrainingDataCsvRoundTripsExactly) {
  auto App = createApp("pso");
  OpproxTrainOptions Opts;
  Opts.TrainingInputs = {App->defaultInput()};
  Opts.Profiling.RandomJointSamples = 4;
  Opprox Tuner = Opprox::train(*App, Opts);

  std::vector<std::string> BlockNames;
  for (const ApproximableBlock &AB : App->blocks())
    BlockNames.push_back(AB.Name);
  std::string Csv =
      Tuner.trainingData().toCsv(App->parameterNames(), BlockNames);
  Expected<TrainingSet> Back =
      TrainingSet::fromCsv(Csv, App->parameterNames().size(),
                           App->numBlocks());
  ASSERT_TRUE(static_cast<bool>(Back));
  ASSERT_EQ(Back->size(), Tuner.trainingData().size());
  for (size_t I = 0; I < Back->size(); ++I) {
    EXPECT_EQ((*Back)[I].Levels, Tuner.trainingData()[I].Levels);
    EXPECT_EQ((*Back)[I].Phase, Tuner.trainingData()[I].Phase);
    EXPECT_NEAR((*Back)[I].Speedup, Tuner.trainingData()[I].Speedup, 1e-9);
  }
}

TEST(IntegrationTest, PhaseAwareBeatsOracleAtTightBudgetOnPso) {
  // The paper's headline (Fig. 14): under tight budgets, phase-aware
  // schedules reach speedups the phase-agnostic oracle cannot, because
  // late-phase-only approximation is cheap in error. PSO is our
  // strongest instance of this effect.
  auto App = createApp("pso");
  OpproxTrainOptions Opts;
  Opts.Profiling.RandomJointSamples = 16;
  Opprox Tuner = Opprox::train(*App, Opts);
  const std::vector<double> In = App->defaultInput();

  auto Measured = measureAllUniformConfigs(*App, Tuner.golden(), In);
  OracleResult Oracle = selectOracle(Measured, 20.0);
  PhaseSchedule S = Tuner.optimize(In, 20.0);
  EvalOutcome Truth = evaluateSchedule(*App, Tuner.golden(), In, S);
  EXPECT_GT(Truth.Speedup, Oracle.Best.Speedup);
}

TEST(IntegrationTest, TrainedModelsCoverEveryClassAndPhase) {
  auto App = createApp("ffmpeg"); // Two control-flow classes.
  OpproxTrainOptions Opts;
  Opts.TrainingInputs = {{15, 2, 4, 0}, {15, 2, 4, 1}};
  Opts.Profiling.RandomJointSamples = 4;
  Opprox Tuner = Opprox::train(*App, Opts);
  EXPECT_EQ(Tuner.model().numClasses(), 2u);
  for (int C = 0; C < 2; ++C)
    for (size_t P = 0; P < Tuner.numPhases(); ++P)
      EXPECT_GE(Tuner.model().phaseModelsForClass(C, P).roi(), 0.0);
}
