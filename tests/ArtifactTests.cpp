//===- tests/ArtifactTests.cpp - model-artifact layer tests ---------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// The contract under test (see core/ModelArtifact.h): serialization is
// deterministic, models round-trip bit-exactly so a loaded runtime
// optimizes identically to the trainer that saved it, and every way an
// artifact file can be bad -- missing, truncated, corrupted, wrong
// schema version, wrong application -- surfaces a descriptive Error
// rather than a crash.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/OfflineTrainer.h"
#include "core/Opprox.h"
#include "core/OpproxRuntime.h"
#include "support/Json.h"
#include "support/Telemetry.h"
#include <cstdio>
#include <fstream>
#include <gtest/gtest.h>

using namespace opprox;

namespace {

/// Cheap but complete training options: two light inputs per app (for
/// FFmpeg, one per filter order so both control-flow classes train) and a
/// thin joint sweep, so every app trains in well under a second while
/// still exercising multi-phase, multi-class models.
OpproxTrainOptions cheapOptions(const std::string &AppName) {
  OpproxTrainOptions Opts;
  Opts.Profiling.RandomJointSamples = 6;
  if (AppName == "pso")
    Opts.TrainingInputs = {{30, 5}, {45, 6}};
  else if (AppName == "lulesh")
    Opts.TrainingInputs = {{20, 8}, {20, 16}};
  else if (AppName == "comd")
    Opts.TrainingInputs = {{3, 1.52, 60}, {3, 1.60, 80}};
  else if (AppName == "ffmpeg")
    Opts.TrainingInputs = {{15, 4, 4, 0}, {15, 4, 4, 1}};
  else if (AppName == "bodytrack")
    Opts.TrainingInputs = {{3, 96, 10}, {4, 96, 14}};
  return Opts;
}

OpproxArtifact trainArtifact(const std::string &AppName) {
  auto App = createApp(AppName);
  OfflineTrainer::Result R =
      OfflineTrainer::train(*App, cheapOptions(AppName));
  return std::move(R.Artifact);
}

std::string tempPath(const std::string &Name) {
  return ::testing::TempDir() + "/" + Name;
}

} // namespace

TEST(ArtifactTest, RoundTripIsDeterministicForEveryApp) {
  for (const std::string &Name : allAppNames()) {
    OpproxArtifact Art = trainArtifact(Name);
    std::string First = Art.serialize();
    Expected<OpproxArtifact> Back = OpproxArtifact::deserialize(First);
    ASSERT_TRUE(Back) << Name << ": " << Back.error().message();
    // Byte-exact fixed point: reserializing the loaded artifact yields
    // the identical document.
    EXPECT_EQ(Back->serialize(), First) << Name;
    EXPECT_EQ(Back->AppName, Name);
    EXPECT_EQ(Back->numPhases(), Art.numPhases());
    EXPECT_EQ(Back->MaxLevels, Art.MaxLevels);
    EXPECT_EQ(Back->Provenance.TrainingRuns, Art.Provenance.TrainingRuns);
  }
}

TEST(ArtifactTest, LoadedRuntimeOptimizesBitIdentically) {
  for (const std::string &Name : allAppNames()) {
    auto App = createApp(Name);
    OfflineTrainer::Result R = OfflineTrainer::train(*App, cheapOptions(Name));
    OpproxRuntime Trained = OpproxRuntime::fromArtifact(R.Artifact);

    std::string Path = tempPath(Name + "-roundtrip.opprox.json");
    ASSERT_FALSE(R.Artifact.save(Path));
    Expected<OpproxRuntime> Loaded = OpproxRuntime::load(Path);
    ASSERT_TRUE(Loaded) << Name << ": " << Loaded.error().message();

    const std::vector<double> Input = App->defaultInput();
    for (double Budget : {5.0, 20.0}) {
      OptimizationResult A = Trained.optimizeDetailed(Input, Budget);
      OptimizationResult B = Loaded->optimizeDetailed(Input, Budget);
      EXPECT_EQ(A.Schedule.toString(), B.Schedule.toString())
          << Name << " at budget " << Budget;
      EXPECT_EQ(A.ConfigsEvaluated, B.ConfigsEvaluated);
      ASSERT_EQ(A.Decisions.size(), B.Decisions.size());
      for (size_t P = 0; P < A.Decisions.size(); ++P) {
        // Bit-exact model round-trip implies bit-exact predictions.
        EXPECT_EQ(A.Decisions[P].PredictedSpeedup,
                  B.Decisions[P].PredictedSpeedup);
        EXPECT_EQ(A.Decisions[P].PredictedQos, B.Decisions[P].PredictedQos);
        EXPECT_EQ(A.Decisions[P].AllocatedBudget,
                  B.Decisions[P].AllocatedBudget);
      }
    }
    std::remove(Path.c_str());
  }
}

TEST(ArtifactTest, MissingFileIsADescriptiveError) {
  Expected<OpproxArtifact> Art =
      OpproxArtifact::load(tempPath("no-such-artifact.opprox.json"));
  ASSERT_FALSE(Art);
  EXPECT_NE(Art.error().message().find("cannot open"), std::string::npos)
      << Art.error().message();
}

TEST(ArtifactTest, TruncatedFileIsADescriptiveError) {
  OpproxArtifact Art = trainArtifact("pso");
  std::string Text = Art.serialize();
  std::string Path = tempPath("truncated.opprox.json");
  {
    std::ofstream Out(Path);
    Out << Text.substr(0, Text.size() / 2);
  }
  Expected<OpproxArtifact> Back = OpproxArtifact::load(Path);
  ASSERT_FALSE(Back);
  EXPECT_NE(Back.error().message().find("JSON parse error"),
            std::string::npos)
      << Back.error().message();
  std::remove(Path.c_str());
}

TEST(ArtifactTest, CorruptedJsonIsADescriptiveError) {
  // Well-formed JSON that is not an artifact at all.
  Expected<OpproxArtifact> NoTag =
      OpproxArtifact::deserialize("{\"hello\": \"world\"}\n");
  ASSERT_FALSE(NoTag);
  EXPECT_NE(NoTag.error().message().find("format"), std::string::npos)
      << NoTag.error().message();
  Expected<OpproxArtifact> WrongTag =
      OpproxArtifact::deserialize("{\"format\": \"something-else\"}\n");
  ASSERT_FALSE(WrongTag);
  EXPECT_NE(WrongTag.error().message().find("not an OPPROX artifact"),
            std::string::npos)
      << WrongTag.error().message();

  // A real artifact with one structural field damaged.
  OpproxArtifact Art = trainArtifact("pso");
  Expected<Json> Doc = Json::parse(Art.serialize());
  ASSERT_TRUE(Doc);
  Json App = *Doc->find("app");
  App.set("max_levels", Json::numberArray<int>({5})); // Wrong block count.
  Doc->set("app", App);
  Expected<OpproxArtifact> Damaged = OpproxArtifact::fromJson(*Doc);
  ASSERT_FALSE(Damaged);
}

TEST(ArtifactTest, WrongSchemaMajorVersionIsRejected) {
  OpproxArtifact Art = trainArtifact("pso");
  Expected<Json> Doc = Json::parse(Art.serialize());
  ASSERT_TRUE(Doc);
  Json Version = Json::object();
  Version.set("major", OpproxArtifact::SchemaMajor + 1);
  Version.set("minor", 0);
  Doc->set("schema_version", Version);
  Expected<OpproxArtifact> Back = OpproxArtifact::fromJson(*Doc);
  ASSERT_FALSE(Back);
  EXPECT_NE(Back.error().message().find("is not supported"),
            std::string::npos)
      << Back.error().message();
}

TEST(ArtifactTest, MinorVersionBumpStaysReadable) {
  OpproxArtifact Art = trainArtifact("pso");
  Expected<Json> Doc = Json::parse(Art.serialize());
  ASSERT_TRUE(Doc);
  Json Version = Json::object();
  Version.set("major", OpproxArtifact::SchemaMajor);
  Version.set("minor", OpproxArtifact::SchemaMinor + 7);
  Doc->set("schema_version", Version);
  EXPECT_TRUE(OpproxArtifact::fromJson(*Doc));
}

TEST(ArtifactTest, CrossApplicationLoadIsRejected) {
  OpproxArtifact Art = trainArtifact("pso");
  auto Other = createApp("lulesh");
  std::optional<Error> Err = Art.validateFor(*Other);
  ASSERT_TRUE(Err.has_value());
  EXPECT_NE(Err->message().find("trained for application"),
            std::string::npos)
      << Err->message();
  // And the matching app passes.
  auto Same = createApp("pso");
  EXPECT_FALSE(Art.validateFor(*Same).has_value());
}

TEST(ArtifactTest, TrainCachedRetrainsOverCorruptCache) {
  auto App = createApp("pso");
  std::string Path = tempPath("corrupt-cache.opprox.json");
  {
    std::ofstream Out(Path);
    Out << "{\"not\": \"an artifact\"";
  }
  Expected<Opprox> Tuner = Opprox::trainCached(*App, cheapOptions("pso"), Path);
  ASSERT_TRUE(Tuner) << Tuner.error().message();
  // The corrupt file was replaced by a freshly trained artifact.
  EXPECT_FALSE(Tuner->trainingData().empty());
  Expected<OpproxArtifact> Reloaded = OpproxArtifact::load(Path);
  ASSERT_TRUE(Reloaded) << Reloaded.error().message();
  EXPECT_EQ(Reloaded->AppName, "pso");
  std::remove(Path.c_str());
}

TEST(ArtifactTest, TrainCachedServesMatchingCache) {
  auto App = createApp("pso");
  std::string Path = tempPath("warm-cache.opprox.json");
  Expected<Opprox> Cold = Opprox::trainCached(*App, cheapOptions("pso"), Path);
  ASSERT_TRUE(Cold) << Cold.error().message();
  EXPECT_FALSE(Cold->trainingData().empty());

  Expected<Opprox> Warm = Opprox::trainCached(*App, cheapOptions("pso"), Path);
  ASSERT_TRUE(Warm) << Warm.error().message();
  // Served from cache: no profiling happened, same schedules.
  EXPECT_TRUE(Warm->trainingData().empty());
  const std::vector<double> Input = App->defaultInput();
  EXPECT_EQ(Warm->optimize(Input, 10.0).toString(),
            Cold->optimize(Input, 10.0).toString());
  std::remove(Path.c_str());
}

TEST(ArtifactTest, PhaseScheduleRoundTripsAndValidates) {
  PhaseSchedule S(3, 2);
  S.setLevel(0, 1, 4);
  S.setLevel(2, 0, 1);
  Expected<PhaseSchedule> Back = PhaseSchedule::fromJson(S.toJson());
  ASSERT_TRUE(Back) << Back.error().message();
  EXPECT_EQ(Back->toString(), S.toString());

  // Dimension mismatch and negative levels are rejected.
  Json Bad = S.toJson();
  Bad.set("num_phases", 4);
  EXPECT_FALSE(PhaseSchedule::fromJson(Bad));
  Json Negative = S.toJson();
  Negative.set("levels", Json::numberArray<int>({0, 0, 0, -1, 0, 0}));
  EXPECT_FALSE(PhaseSchedule::fromJson(Negative));
}

TEST(ArtifactTest, ProvenanceRecordsTrainingConfiguration) {
  auto App = createApp("pso");
  OpproxTrainOptions Opts = cheapOptions("pso");
  Opts.Profiling.Seed = 0xDEADBEEFCAFEF00Dull; // Above 2^53: string field.
  OfflineTrainer::Result R = OfflineTrainer::train(*App, Opts);
  const ArtifactProvenance &P = R.Artifact.Provenance;
  EXPECT_EQ(P.ProfileSeed, Opts.Profiling.Seed);
  EXPECT_EQ(P.RandomJointSamples, Opts.Profiling.RandomJointSamples);
  EXPECT_GT(P.TrainingRuns, 0u);
  EXPECT_FALSE(P.PhaseCountDetected); // NumPhases was fixed at 4.
  EXPECT_FALSE(P.LibraryVersion.empty());

  // The big seed survives serialization exactly.
  Expected<OpproxArtifact> Back =
      OpproxArtifact::deserialize(R.Artifact.serialize());
  ASSERT_TRUE(Back) << Back.error().message();
  EXPECT_EQ(Back->Provenance.ProfileSeed, 0xDEADBEEFCAFEF00Dull);
}

//===----------------------------------------------------------------------===//
// Schema 1.2: precomputed budget grids
//===----------------------------------------------------------------------===//

namespace {

/// Trains pso with the budget-grid sweep enabled over a short budget
/// list; the resulting artifact carries the schema-1.2 section.
OpproxArtifact trainGriddedArtifact() {
  auto App = createApp("pso");
  OpproxTrainOptions Opts = cheapOptions("pso");
  Opts.BudgetGrid.Enabled = true;
  Opts.BudgetGrid.Budgets = {2.0, 10.0, 25.0};
  return std::move(OfflineTrainer::train(*App, Opts).Artifact);
}

} // namespace

TEST(ArtifactTest, BudgetGridsRoundTripBitExactly) {
  OpproxArtifact Art = trainGriddedArtifact();
  ASSERT_FALSE(Art.BudgetGrids.empty());
  size_t Points = 0;
  for (const BudgetGrid &Grid : Art.BudgetGrids)
    Points += Grid.Points.size();
  ASSERT_GT(Points, 0u);

  // Byte-exact fixed point, grids included: deserialize and reserialize
  // yields the identical document, so every grid double (budgets,
  // predictions, allocated budgets) survived the %.17g round trip.
  std::string First = Art.serialize();
  ASSERT_NE(First.find("budget_grids"), std::string::npos);
  Expected<OpproxArtifact> Back = OpproxArtifact::deserialize(First);
  ASSERT_TRUE(Back) << Back.error().message();
  ASSERT_EQ(Back->BudgetGrids.size(), Art.BudgetGrids.size());
  EXPECT_EQ(Back->serialize(), First);
}

TEST(ArtifactTest, LegacyMinorSchemaLoadsWithGridsAbsent) {
  // A 1.1 artifact predates budget_grids entirely: loading one must
  // succeed with no grids, leaving every request on the compute path.
  OpproxArtifact Art = trainArtifact("pso"); // No grids requested.
  EXPECT_TRUE(Art.BudgetGrids.empty());
  Expected<Json> Doc = Json::parse(Art.serialize());
  ASSERT_TRUE(Doc);
  ASSERT_EQ(Doc->find("budget_grids"), nullptr);
  Json Version = Json::object();
  Version.set("major", OpproxArtifact::SchemaMajor);
  Version.set("minor", 1);
  Doc->set("schema_version", Version);
  Expected<OpproxArtifact> Back = OpproxArtifact::fromJson(*Doc);
  ASSERT_TRUE(Back) << Back.error().message();
  EXPECT_TRUE(Back->BudgetGrids.empty());
}

TEST(ArtifactTest, CorruptGridSectionDegradesToMissPath) {
  // budget_grids is an optional acceleration, so a damaged section must
  // degrade the artifact to grid-less (every request recomputes) rather
  // than fail the load -- but the degradation has to be visible in
  // telemetry, not silent.
  OpproxArtifact Art = trainGriddedArtifact();
  Counter &LoadErrors =
      MetricsRegistry::global().counter("cache.grid_load_errors");

  // Structurally wrong: the member is not even an array.
  Expected<Json> Doc = Json::parse(Art.serialize());
  ASSERT_TRUE(Doc);
  Doc->set("budget_grids", std::string("corrupt"));
  uint64_t Before = LoadErrors.value();
  Expected<OpproxArtifact> NotArray = OpproxArtifact::fromJson(*Doc);
  ASSERT_TRUE(NotArray) << NotArray.error().message();
  EXPECT_TRUE(NotArray->BudgetGrids.empty());
  EXPECT_GT(LoadErrors.value(), Before);

  // One malformed grid object poisons only the grid section, and still
  // only the grid section.
  Expected<Json> Doc2 = Json::parse(Art.serialize());
  ASSERT_TRUE(Doc2);
  Json Grids = Json::array();
  Grids.push(Json::object()); // A grid with every field missing.
  Doc2->set("budget_grids", std::move(Grids));
  Before = LoadErrors.value();
  Expected<OpproxArtifact> BadGrid = OpproxArtifact::fromJson(*Doc2);
  ASSERT_TRUE(BadGrid) << BadGrid.error().message();
  EXPECT_TRUE(BadGrid->BudgetGrids.empty());
  EXPECT_GT(LoadErrors.value(), Before);

  // The degraded artifact still optimizes: the miss path does not care
  // that the grids were dropped.
  OpproxRuntime Rt = OpproxRuntime::fromArtifact(*BadGrid);
  OptimizationResult R = Rt.optimizeDetailed(BadGrid->DefaultInput, 10.0);
  EXPECT_FALSE(R.Decisions.empty());
}
