//===- tests/OptimizerTests.cpp - Algorithm 2 and oracle tests ------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/Evaluator.h"
#include "core/Opprox.h"
#include "core/OracleBaseline.h"
#include <gtest/gtest.h>

using namespace opprox;

namespace {

/// Shared trained OPPROX instance on PSO for this file.
Opprox &tuner() {
  static std::unique_ptr<ApproxApp> App = createApp("pso");
  static Opprox Instance = [] {
    OpproxTrainOptions Opts;
    Opts.Profiling.RandomJointSamples = 16;
    return Opprox::train(*App, Opts);
  }();
  return Instance;
}

} // namespace

//===----------------------------------------------------------------------===//
// selectOracle on synthetic data
//===----------------------------------------------------------------------===//

TEST(OracleSelectTest, PicksBestWithinBudget) {
  std::vector<MeasuredConfig> M(3);
  M[0].Levels = {0};
  M[0].Speedup = 1.0;
  M[0].QosDegradation = 0.0;
  M[1].Levels = {1};
  M[1].Speedup = 2.0;
  M[1].QosDegradation = 8.0;
  M[2].Levels = {2};
  M[2].Speedup = 3.0;
  M[2].QosDegradation = 25.0;
  OracleResult R = selectOracle(M, 10.0);
  EXPECT_TRUE(R.FoundNonTrivial);
  EXPECT_EQ(R.Best.Levels, (std::vector<int>{1}));
  EXPECT_EQ(R.ConfigsSearched, 3u);
}

TEST(OracleSelectTest, NothingFitsFallsBackToExact) {
  std::vector<MeasuredConfig> M(1);
  M[0].Levels = {3};
  M[0].Speedup = 5.0;
  M[0].QosDegradation = 50.0;
  OracleResult R = selectOracle(M, 1.0);
  EXPECT_FALSE(R.FoundNonTrivial);
  EXPECT_DOUBLE_EQ(R.Best.Speedup, 1.0);
}

TEST(OracleSelectTest, SlowdownConfigsNeverChosen) {
  std::vector<MeasuredConfig> M(1);
  M[0].Levels = {1};
  M[0].Speedup = 0.8; // A slowdown within budget is still worse than exact.
  M[0].QosDegradation = 0.1;
  OracleResult R = selectOracle(M, 10.0);
  EXPECT_FALSE(R.FoundNonTrivial);
  EXPECT_DOUBLE_EQ(R.Best.Speedup, 1.0);
}

//===----------------------------------------------------------------------===//
// measureAllUniformConfigs
//===----------------------------------------------------------------------===//

TEST(OracleMeasureTest, CoversWholeSpaceWithExactFirst) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  auto Measured =
      measureAllUniformConfigs(*App, Golden, App->defaultInput());
  EXPECT_EQ(Measured.size(), 216u); // 6^3.
  EXPECT_EQ(Measured.front().Levels, (std::vector<int>{0, 0, 0}));
  EXPECT_DOUBLE_EQ(Measured.front().Speedup, 1.0);
  EXPECT_DOUBLE_EQ(Measured.front().QosDegradation, 0.0);
}

//===----------------------------------------------------------------------===//
// Evaluator
//===----------------------------------------------------------------------===//

TEST(EvaluatorTest, ExactScheduleIsNeutral) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  PhaseSchedule Exact(4, App->numBlocks());
  EvalOutcome Out =
      evaluateSchedule(*App, Golden, App->defaultInput(), Exact);
  EXPECT_DOUBLE_EQ(Out.Speedup, 1.0);
  EXPECT_DOUBLE_EQ(Out.QosDegradation, 0.0);
}

TEST(EvaluatorTest, ReportsPsnrForFfmpeg) {
  auto App = createApp("ffmpeg");
  GoldenCache Golden(*App);
  PhaseSchedule S = PhaseSchedule::uniform(4, {1, 1, 1});
  EvalOutcome Out = evaluateSchedule(*App, Golden, App->defaultInput(), S);
  EXPECT_GT(Out.Psnr, 0.0);
  EXPECT_LT(Out.Psnr, 99.0);
}

//===----------------------------------------------------------------------===//
// Algorithm 2 (optimizeSchedule via the Opprox facade)
//===----------------------------------------------------------------------===//

TEST(OptimizerTest, ScheduleHasTrainedShape) {
  PhaseSchedule S = tuner().optimize(tuner().app().defaultInput(), 10.0);
  EXPECT_EQ(S.numPhases(), tuner().numPhases());
  EXPECT_EQ(S.numBlocks(), tuner().app().numBlocks());
}

TEST(OptimizerTest, ZeroBudgetMeansExact) {
  PhaseSchedule S = tuner().optimize(tuner().app().defaultInput(), 0.0);
  EXPECT_TRUE(S.isExact());
}

TEST(OptimizerTest, PredictedSpeedupMonotoneInBudget) {
  const std::vector<double> In = tuner().app().defaultInput();
  double Prev = 0.0;
  for (double Budget : {2.0, 5.0, 10.0, 20.0, 40.0}) {
    OptimizationResult R = tuner().optimizeDetailed(In, Budget);
    double Total = 0.0;
    for (const PhaseDecision &D : R.Decisions)
      Total += D.PredictedSpeedup;
    EXPECT_GE(Total, Prev - 1e-9) << "budget " << Budget;
    Prev = Total;
  }
}

TEST(OptimizerTest, NormalizedRoiSumsToOne) {
  OptimizationResult R =
      tuner().optimizeDetailed(tuner().app().defaultInput(), 10.0);
  double Sum = 0.0;
  for (double Share : R.NormalizedRoi)
    Sum += Share;
  EXPECT_NEAR(Sum, 1.0, 1e-9);
}

TEST(OptimizerTest, PredictedQosStaysWithinBudget) {
  // Algorithm 2's invariant: the sum of per-phase *predicted* QoS never
  // exceeds the budget (ground truth may, model error permitting).
  const std::vector<double> In = tuner().app().defaultInput();
  for (double Budget : {5.0, 10.0, 20.0}) {
    OptimizationResult R = tuner().optimizeDetailed(In, Budget);
    double Total = 0.0;
    for (const PhaseDecision &D : R.Decisions)
      Total += D.PredictedQos;
    EXPECT_LE(Total, Budget + 1e-6) << "budget " << Budget;
  }
}

TEST(OptimizerTest, SearchCountsConfigurations) {
  OptimizationResult R =
      tuner().optimizeDetailed(tuner().app().defaultInput(), 10.0);
  // 4 phases x 6^3 configurations.
  EXPECT_EQ(R.ConfigsEvaluated, 4u * 216u);
}

TEST(OptimizerTest, NonConservativeModeAtLeastAsAggressive) {
  const std::vector<double> In = tuner().app().defaultInput();
  OptimizeOptions Aggressive;
  Aggressive.Conservative = false;
  OptimizationResult A = tuner().optimizeDetailed(In, 10.0, Aggressive);
  OptimizationResult C = tuner().optimizeDetailed(In, 10.0);
  double SumA = 0, SumC = 0;
  for (size_t P = 0; P < A.Decisions.size(); ++P) {
    SumA += A.Decisions[P].PredictedSpeedup;
    SumC += C.Decisions[P].PredictedSpeedup;
  }
  // Without confidence margins more configurations fit, so the predicted
  // objective cannot be worse... measured conservatively (speedups are
  // computed with different bounds, so compare feasible-set size via the
  // schedules being at least as approximate in total level mass).
  int MassA = 0, MassC = 0;
  for (size_t P = 0; P < A.Schedule.numPhases(); ++P)
    for (size_t B = 0; B < A.Schedule.numBlocks(); ++B) {
      MassA += A.Schedule.level(P, B);
      MassC += C.Schedule.level(P, B);
    }
  EXPECT_GE(MassA, MassC);
}

TEST(OptimizerTest, GroundTruthSpeedupBeatsExactAtLargeBudget) {
  const std::vector<double> In = tuner().app().defaultInput();
  PhaseSchedule S = tuner().optimize(In, 20.0);
  EvalOutcome Truth =
      evaluateSchedule(tuner().app(), tuner().golden(), In, S);
  EXPECT_GT(Truth.Speedup, 1.0);
}

TEST(OptimizerTest, ValidatedScheduleRespectsBudgetOnGroundTruth) {
  // The validate-and-backoff extension must never ship an over-budget
  // schedule (cross-phase interactions included).
  const std::vector<double> In = tuner().app().defaultInput();
  for (double Budget : {2.0, 5.0, 20.0}) {
    PhaseSchedule S = tuner().optimizeValidated(In, Budget);
    EvalOutcome Truth =
        evaluateSchedule(tuner().app(), tuner().golden(), In, S);
    EXPECT_LE(Truth.QosDegradation, Budget + 1e-9) << "budget " << Budget;
    EXPECT_GE(Truth.Speedup, 1.0);
  }
}

TEST(OptimizerTest, ValidatedBackoffPreservesHighRoiPhases) {
  // When backoff fires it strips low-ROI phases first, so any surviving
  // approximation sits in phases with at least the stripped phases' ROI.
  const std::vector<double> In = tuner().app().defaultInput();
  PhaseSchedule S = tuner().optimizeValidated(In, 5.0);
  double MinKeptRoi = 1e300, MaxStrippedRoi = -1e300;
  OptimizationResult Raw = tuner().optimizeDetailed(In, 5.0);
  for (size_t P = 0; P < S.numPhases(); ++P) {
    bool RawApprox = false, KeptApprox = false;
    for (size_t B = 0; B < S.numBlocks(); ++B) {
      RawApprox |= Raw.Schedule.level(P, B) != 0;
      KeptApprox |= S.level(P, B) != 0;
    }
    double Roi = tuner().model().phaseModels(In, P).roi();
    if (KeptApprox) {
      MinKeptRoi = std::min(MinKeptRoi, Roi);
    } else if (RawApprox) {
      MaxStrippedRoi = std::max(MaxStrippedRoi, Roi);
    }
  }
  if (MaxStrippedRoi > -1e300 && MinKeptRoi < 1e300) {
    EXPECT_GE(MinKeptRoi, MaxStrippedRoi);
  }
}
