//===- tests/ControlDetectorTests.cpp - online phase detection ------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
// The contract under test (control/PhaseDetector.h): boundaries are a
// pure function of the sample stream and the options -- a replayed trace
// detects bit-identical boundaries -- the first interval opens phase 0
// without flagging, hysteresis keeps one noisy interval from splitting a
// phase, MaxPhases caps detection, and the static-N fallback reproduces
// the offline PhaseMap slicing exactly.
//
//===----------------------------------------------------------------------===//

#include "approx/PhaseSchedule.h"
#include "control/PhaseDetector.h"
#include "support/Telemetry.h"
#include <gtest/gtest.h>

using namespace opprox;
using namespace opprox::control;

namespace {

IntervalSample sample(uint64_t Work, size_t Iters, double Qos = 0.0) {
  IntervalSample S;
  S.WorkUnits = Work;
  S.Iterations = Iters;
  S.QosDelta = Qos;
  return S;
}

/// Feeds \p Samples in order and returns the per-interval boundary flags.
std::vector<bool> feed(PhaseDetector &D,
                       const std::vector<IntervalSample> &Samples) {
  std::vector<bool> Flags;
  Flags.reserve(Samples.size());
  for (const IntervalSample &S : Samples)
    Flags.push_back(D.observe(S));
  return Flags;
}

} // namespace

TEST(PhaseDetectorTest, FirstIntervalOpensPhaseZeroWithoutFlagging) {
  PhaseDetector D;
  EXPECT_EQ(D.numDetectedPhases(), 0u);
  EXPECT_EQ(D.currentPhase(), 0u);
  EXPECT_FALSE(D.observe(sample(1000, 10)));
  EXPECT_EQ(D.numDetectedPhases(), 1u);
  EXPECT_EQ(D.currentPhase(), 0u);
  ASSERT_EQ(D.phaseStarts().size(), 1u);
  EXPECT_EQ(D.phaseStarts()[0], 0u);
  EXPECT_EQ(D.iterationsSeen(), 10u);
}

TEST(PhaseDetectorTest, SteadySignatureStaysOnePhase) {
  PhaseDetector D;
  for (int I = 0; I < 40; ++I)
    EXPECT_FALSE(D.observe(sample(1000, 10, 0.5)));
  EXPECT_EQ(D.numDetectedPhases(), 1u);
  EXPECT_EQ(D.iterationsSeen(), 400u);
}

TEST(PhaseDetectorTest, SuddenWorkShiftFlagsBoundaryAtTheShiftIteration) {
  PhaseDetector D;
  for (int I = 0; I < 4; ++I)
    EXPECT_FALSE(D.observe(sample(1000, 10)));
  // Work per iteration doubles: relative distance 1.0 >> 0.25.
  EXPECT_TRUE(D.observe(sample(2000, 10)));
  EXPECT_EQ(D.numDetectedPhases(), 2u);
  EXPECT_EQ(D.currentPhase(), 1u);
  ASSERT_EQ(D.phaseStarts().size(), 2u);
  // The boundary is the first iteration of the diverging interval.
  EXPECT_EQ(D.phaseStarts()[1], 40u);
}

TEST(PhaseDetectorTest, QosDimensionAloneCanFlagABoundary) {
  PhaseDetector D;
  // Work stays flat; only the QoS-proxy delta shifts.
  for (int I = 0; I < 4; ++I)
    EXPECT_FALSE(D.observe(sample(1000, 10, 1.0)));
  EXPECT_TRUE(D.observe(sample(1000, 10, 3.0)));
  EXPECT_EQ(D.numDetectedPhases(), 2u);
}

TEST(PhaseDetectorTest, SubThresholdDriftNeverSplits) {
  PhaseDetector D;
  // +20% work per iteration: below the 0.25 default threshold.
  for (int I = 0; I < 4; ++I)
    EXPECT_FALSE(D.observe(sample(1000, 10)));
  EXPECT_FALSE(D.observe(sample(1200, 10)));
  EXPECT_EQ(D.numDetectedPhases(), 1u);
}

TEST(PhaseDetectorTest, HysteresisAbsorbsEarlyNoise) {
  // MinIntervalsPerPhase = 2 (default): the interval right after a
  // fresh phase opened cannot flag, however divergent, so one noisy
  // interval cannot split a phase in two.
  PhaseDetector D;
  for (int I = 0; I < 3; ++I)
    D.observe(sample(1000, 10));
  EXPECT_TRUE(D.observe(sample(4000, 10)));  // Boundary: phase 1 opens.
  EXPECT_FALSE(D.observe(sample(1000, 10))); // Divergent but absorbed.
  EXPECT_EQ(D.numDetectedPhases(), 2u);
}

TEST(PhaseDetectorTest, MinIntervalsGateDelaysTheFirstPossibleBoundary) {
  PhaseDetectorOptions Opts;
  Opts.MinIntervalsPerPhase = 4;
  PhaseDetector D(Opts);
  D.observe(sample(1000, 10));
  // Intervals 2..4 diverge hugely but the phase has not yet absorbed
  // MinIntervalsPerPhase intervals, so nothing may flag. They drag the
  // centroid, so the boundary needs a signature far from the mix.
  EXPECT_FALSE(D.observe(sample(9000, 10)));
  EXPECT_FALSE(D.observe(sample(9000, 10)));
  EXPECT_FALSE(D.observe(sample(9000, 10)));
  EXPECT_TRUE(D.observe(sample(90000, 10)));
  EXPECT_EQ(D.numDetectedPhases(), 2u);
}

TEST(PhaseDetectorTest, MaxPhasesCapStopsFlagging) {
  PhaseDetectorOptions Opts;
  Opts.MaxPhases = 3;
  PhaseDetector D(Opts);
  uint64_t Work = 1000;
  size_t Boundaries = 0;
  for (int Phase = 0; Phase < 8; ++Phase) {
    for (int I = 0; I < 4; ++I)
      if (D.observe(sample(Work, 10)))
        ++Boundaries;
    Work *= 4; // Each burst is unmistakably a new signature.
  }
  EXPECT_EQ(Boundaries, 2u); // Phases 1 and 2 opened; the cap ate the rest.
  EXPECT_EQ(D.numDetectedPhases(), 3u);
  EXPECT_EQ(D.currentPhase(), 2u);
}

TEST(PhaseDetectorTest, StaticFallbackReplaysThePhaseMapSlicing) {
  const size_t Nominal = 103, Phases = 4;
  PhaseDetectorOptions Opts;
  Opts.StaticPhases = Phases;
  Opts.NominalIterations = Nominal;
  PhaseDetector D(Opts);
  // Deliver wildly varying signatures one iteration at a time: the
  // fallback must ignore them and cut exactly where the offline map
  // does.
  for (size_t I = 0; I < Nominal; ++I)
    D.observe(sample(I % 7 == 0 ? 50000 : 10, 1, (I % 3) * 2.0));
  PhaseMap Map(Nominal, Phases);
  ASSERT_EQ(D.numDetectedPhases(), Phases);
  for (size_t P = 0; P < Phases; ++P)
    EXPECT_EQ(D.phaseStarts()[P], Map.phaseRange(P).first) << "phase " << P;
}

TEST(PhaseDetectorTest, StaticFallbackHonorsTheMaxPhasesCap) {
  PhaseDetectorOptions Opts;
  Opts.StaticPhases = 8;
  Opts.NominalIterations = 80;
  Opts.MaxPhases = 2;
  PhaseDetector D(Opts);
  for (size_t I = 0; I < 80; ++I)
    D.observe(sample(10, 1));
  EXPECT_EQ(D.numDetectedPhases(), 2u);
}

TEST(PhaseDetectorTest, ReplayedTraceDetectsBitIdenticalBoundaries) {
  // Determinism is the detector's headline property: boundaries are a
  // pure function of (stream, options).
  std::vector<IntervalSample> Trace;
  uint64_t State = 0x9e3779b97f4a7c15ull; // Fixed-seed xorshift stream.
  for (int I = 0; I < 200; ++I) {
    State ^= State << 13;
    State ^= State >> 7;
    State ^= State << 17;
    Trace.push_back(sample(100 + State % 5000, 1 + State % 9,
                           static_cast<double>(State % 100) / 10.0));
  }
  PhaseDetector A, B;
  std::vector<bool> FlagsA = feed(A, Trace);
  std::vector<bool> FlagsB = feed(B, Trace);
  EXPECT_EQ(FlagsA, FlagsB);
  EXPECT_EQ(A.phaseStarts(), B.phaseStarts());
  EXPECT_EQ(A.numDetectedPhases(), B.numDetectedPhases());
  EXPECT_EQ(A.iterationsSeen(), B.iterationsSeen());
}

TEST(PhaseDetectorTest, ZeroIterationIntervalsAreClampedToOne) {
  PhaseDetector D;
  D.observe(sample(1000, 0)); // Degenerate host input: treated as 1 iter.
  EXPECT_EQ(D.iterationsSeen(), 1u);
  D.observe(sample(1000, 0));
  EXPECT_EQ(D.iterationsSeen(), 2u);
  EXPECT_EQ(D.numDetectedPhases(), 1u);
}

TEST(PhaseDetectorTest, EveryBoundaryCountsDetectedPhasesTelemetry) {
  Counter &C = MetricsRegistry::global().counter("control.detected_phases");
  uint64_t Before = C.value();
  PhaseDetector D;
  for (int I = 0; I < 4; ++I)
    D.observe(sample(1000, 10));
  D.observe(sample(8000, 10)); // Boundary 1.
  for (int I = 0; I < 4; ++I)
    D.observe(sample(8000, 10));
  D.observe(sample(1000, 10)); // Boundary 2.
  EXPECT_EQ(C.value() - Before, 2u);
  // Opening phase 0 is not a boundary and must not count.
  EXPECT_EQ(D.numDetectedPhases(), 3u);
}
