//===- tests/ThreadPoolTests.cpp - thread-pool substrate tests ------------===//
//
// Part of the OPPROX reproduction project, under the MIT License.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the ThreadPool substrate (task ordering, exception
/// propagation, degenerate worker counts, nested parallelism) and the
/// determinism contract of the parallel training pipeline: profiling and
/// model building must produce bit-identical results for any worker
/// count.
///
//===----------------------------------------------------------------------===//

#include "apps/AppRegistry.h"
#include "core/AppModel.h"
#include "core/Profiler.h"
#include "support/Random.h"
#include "support/ThreadPool.h"
#include <atomic>
#include <gtest/gtest.h>
#include <numeric>
#include <stdexcept>

using namespace opprox;

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (size_t Workers : {0u, 1u, 4u, 8u}) {
    ThreadPool Pool(Workers);
    constexpr size_t N = 1000;
    std::vector<std::atomic<int>> Counts(N);
    Pool.parallelFor(N, [&](size_t I) {
      Counts[I].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t I = 0; I < N; ++I)
      ASSERT_EQ(Counts[I].load(), 1) << "index " << I << " with " << Workers
                                     << " workers";
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOneElementRanges) {
  ThreadPool Pool(3);
  Pool.parallelFor(0, [](size_t) { FAIL() << "body called for empty range"; });
  size_t Calls = 0;
  Pool.parallelFor(1, [&](size_t I) {
    EXPECT_EQ(I, 0u);
    ++Calls; // Single-element ranges run inline on the caller.
  });
  EXPECT_EQ(Calls, 1u);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.numWorkers(), 0u);
  std::thread::id Caller = std::this_thread::get_id();
  std::vector<std::thread::id> Seen(5);
  Pool.parallelFor(5, [&](size_t I) { Seen[I] = std::this_thread::get_id(); });
  for (const std::thread::id &Id : Seen)
    EXPECT_EQ(Id, Caller);
  bool Ran = false;
  std::future<void> F = Pool.submit([&] { Ran = true; });
  EXPECT_TRUE(Ran) << "0-worker submit completes before returning";
  F.get();
}

TEST(ThreadPoolTest, SubmittedTasksCompleteViaFutures) {
  ThreadPool Pool(2);
  std::atomic<int> Sum{0};
  std::vector<std::future<void>> Futures;
  for (int I = 1; I <= 10; ++I)
    Futures.push_back(Pool.submit([&Sum, I] { Sum.fetch_add(I); }));
  for (std::future<void> &F : Futures)
    F.get();
  EXPECT_EQ(Sum.load(), 55);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool Pool(1);
  std::future<void> F =
      Pool.submit([] { throw std::runtime_error("task failed"); });
  EXPECT_THROW(F.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  for (size_t Workers : {0u, 4u}) {
    ThreadPool Pool(Workers);
    std::atomic<size_t> Executed{0};
    try {
      Pool.parallelFor(100, [&](size_t I) {
        Executed.fetch_add(1, std::memory_order_relaxed);
        if (I == 7)
          throw std::runtime_error("boom");
      });
      FAIL() << "exception not propagated with " << Workers << " workers";
    } catch (const std::runtime_error &E) {
      EXPECT_STREQ(E.what(), "boom");
    }
    // Unclaimed indices are abandoned after the throw; everything that
    // started still finished (no torn state, no hang).
    EXPECT_GE(Executed.load(), 1u);
    EXPECT_LE(Executed.load(), 100u);
  }
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool Pool(2);
  std::atomic<int> Inner{0};
  // Outer tasks occupy every worker; a queue-blocking nested fan-out
  // would deadlock here. The inline rule makes it finish.
  Pool.parallelFor(8, [&](size_t) {
    Pool.parallelFor(8, [&](size_t) {
      Inner.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(Inner.load(), 64);
}

TEST(ThreadPoolTest, ResolveWorkersLeavesRoomForTheCaller) {
  EXPECT_EQ(ThreadPool::resolveWorkers(1), 0u); // Serial: caller only.
  EXPECT_EQ(ThreadPool::resolveWorkers(4), 3u); // 3 workers + caller.
  EXPECT_GE(ThreadPool::defaultWorkerCount(), 1u);
}

//===----------------------------------------------------------------------===//
// Determinism contract
//===----------------------------------------------------------------------===//

namespace {

/// Collects PSO training data with the given thread count.
TrainingSet collectWith(size_t NumThreads) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  Profiler Prof(*App, Golden);
  ProfileOptions Opts;
  Opts.NumPhases = 2;
  Opts.RandomJointSamples = 6;
  Opts.NumThreads = NumThreads;
  return Prof.collect(App->trainingInputs(), Opts);
}

std::string csvOf(const TrainingSet &Set) {
  return Set.toCsv({"swarm_size", "dimension"},
                   {"fitness_eval", "velocity_update", "position_update"});
}

} // namespace

TEST(DeterminismTest, ParallelCollectMatchesSerialBitForBit) {
  TrainingSet Serial = collectWith(1);
  TrainingSet Parallel = collectWith(8);
  ASSERT_EQ(Serial.size(), Parallel.size());
  // CSV serializes every field with %.17g, so string equality is
  // bit-identity of the whole set, in order.
  EXPECT_EQ(csvOf(Serial), csvOf(Parallel));
}

TEST(DeterminismTest, ParallelModelBuildMatchesSerial) {
  TrainingSet Data = collectWith(1);
  ModelBuildOptions Opts;
  Opts.NumThreads = 1;
  AppModel Serial = ModelBuilder::build(Data, 2, 3, Opts);
  Opts.NumThreads = 8;
  AppModel Parallel = ModelBuilder::build(Data, 2, 3, Opts);

  const std::vector<double> Input = {45, 6};
  for (size_t Phase = 0; Phase < 2; ++Phase) {
    const PhaseModels &S = Serial.phaseModelsForClass(0, Phase);
    const PhaseModels &P = Parallel.phaseModelsForClass(0, Phase);
    EXPECT_DOUBLE_EQ(S.roi(), P.roi());
    EXPECT_DOUBLE_EQ(S.speedupCvR2(), P.speedupCvR2());
    EXPECT_DOUBLE_EQ(S.qosCvR2(), P.qosCvR2());
    for (int Level : {0, 2, 5}) {
      std::vector<int> Levels(3, Level);
      EXPECT_DOUBLE_EQ(S.predictSpeedup(Input, Levels),
                       P.predictSpeedup(Input, Levels));
      EXPECT_DOUBLE_EQ(S.predictQos(Input, Levels),
                       P.predictQos(Input, Levels));
      EXPECT_DOUBLE_EQ(S.predictIterations(Input, Levels),
                       P.predictIterations(Input, Levels));
    }
  }
}

TEST(DeterminismTest, GoldenCacheComputesEachInputOnceUnderContention) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  const std::vector<double> Input = App->defaultInput();
  ThreadPool Pool(8);
  std::vector<const RunResult *> Results(16);
  Pool.parallelFor(Results.size(),
                   [&](size_t I) { Results[I] = &Golden.exactRun(Input); });
  for (const RunResult *R : Results)
    EXPECT_EQ(R, Results[0]) << "all callers must see the same entry";
  EXPECT_EQ(Golden.numCached(), 1u);
  EXPECT_EQ(Golden.misses(), 1u);
  EXPECT_EQ(Golden.hits(), Results.size() - 1);
}

TEST(DeterminismTest, ObserverSeesMonotonicProgressAndFinalTotal) {
  auto App = createApp("pso");
  GoldenCache Golden(*App);
  Profiler Prof(*App, Golden);
  ProfileOptions Opts;
  Opts.NumPhases = 2;
  Opts.RandomJointSamples = 2;
  Opts.NumThreads = 4;
  size_t LastCompleted = 0;
  size_t Calls = 0;
  bool Monotonic = true;
  Opts.Observer = [&](const ProfileProgress &P) {
    // Serialized under the profiler's observer mutex, but completion
    // counts may arrive slightly out of order; only the envelope is
    // guaranteed.
    Monotonic = Monotonic && P.RunsCompleted >= 1 &&
                P.RunsCompleted <= P.TotalRuns && P.ElapsedSeconds >= 0.0;
    LastCompleted = std::max(LastCompleted, P.RunsCompleted);
    ++Calls;
  };
  TrainingSet Set = Prof.collect({App->defaultInput()}, Opts);
  EXPECT_TRUE(Monotonic);
  EXPECT_EQ(Calls, Set.size());
  EXPECT_EQ(LastCompleted, Set.size());
}

TEST(DeterminismTest, DeriveSeedSeparatesStreams) {
  EXPECT_NE(deriveSeed(1, 0), deriveSeed(1, 1));
  EXPECT_NE(deriveSeed(1, 0), deriveSeed(2, 0));
  EXPECT_NE(deriveSeed(1, 0, 0), deriveSeed(1, 0, 1));
  EXPECT_EQ(deriveSeed(7, 3, 2), deriveSeed(7, 3, 2));
}
